// Election: the mapping system's leaderless operational mode (§4.2). Every
// host starts an active mapper; probes carry interface addresses; a host
// that hears from a higher address passivates (it keeps answering probes
// but stops mapping); the highest address completes its map and wins. "The
// master/slave mode is faster but introduces a single point of failure,
// whereas the election mode is more robust ... but has a performance cost."
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sanmap/internal/cluster"
	"sanmap/internal/election"
	"sanmap/internal/isomorph"
	"sanmap/internal/mapper"
	"sanmap/internal/simnet"
)

func main() {
	sys := cluster.CConfig(nil)
	net := sys.Net
	depth := net.DepthBound(sys.Mapper())

	// Reference: master/slave mode from the utility host.
	sn := simnet.NewDefault(net)
	m, err := mapper.Run(sn.Endpoint(sys.Mapper()), mapper.WithDepth(depth))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("master/slave: %s maps %v in %v\n",
		net.NameOf(sys.Mapper()), m.Network, m.Stats.Elapsed)

	// Election mode, five times with different interface address draws:
	// different winners, different vantage points, same (correct) map.
	fmt.Println("\nelection mode (all 36 hosts map concurrently):")
	for seed := int64(1); seed <= 5; seed++ {
		res, err := election.Run(net, election.Config{
			Model:  simnet.CircuitModel,
			Timing: simnet.DefaultTiming(),
			Mapper: mapper.DefaultConfig(depth),
			Rng:    rand.New(rand.NewSource(seed)),
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := isomorph.MustEqualCore(res.Map.Network, net); err != nil {
			log.Fatalf("winner's map wrong: %v", err)
		}
		fmt.Printf("  draw %d: winner %-8s finished in %v; %d mappers passivated, %d completed; %d probes total\n",
			seed, res.Winner, res.Elapsed, res.Passivated, res.Completed,
			res.Probes.TotalProbes())
	}
	fmt.Println("\nevery election yields a verified map; the cost over master/slave is the")
	fmt.Println("probe storm before passivation and the winner's possibly worse vantage point")
}
