// Reconfigure: the paper's motivating scenario (§1) — "these networks
// should be dynamically reconfigurable, automatically adapting to the
// addition or removal of hosts, switches and links". The example maps the
// NOW subcluster C, then mutates the physical network three times (a link
// fails, a new switch with hosts is added, a host moves) and shows that
// simply re-running the mapper keeps the routing tables correct, with no
// topology knowledge configured anywhere.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sanmap/internal/cluster"
	"sanmap/internal/isomorph"
	"sanmap/internal/mapper"
	"sanmap/internal/routes"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// prevMap carries the last verified map so each remap can report what the
// periodic mapper would announce: the diff between consecutive maps.
var prevMap *mapper.Map

// remap runs one full map-verify-route cycle against the current network
// and reports the change relative to the previous map.
func remap(net *topology.Network, h0 topology.NodeID, note string) {
	sn := simnet.NewDefault(net)
	m, err := mapper.Run(sn.Endpoint(h0), mapper.WithDepth(net.DepthBound(h0)))
	if err != nil {
		log.Fatalf("%s: mapping: %v", note, err)
	}
	if err := isomorph.MustEqualCore(m.Network, net); err != nil {
		log.Fatalf("%s: verification: %v", note, err)
	}
	tab, err := routes.Compute(m.Network, routes.DefaultConfig())
	if err != nil {
		log.Fatalf("%s: routes: %v", note, err)
	}
	if err := tab.VerifyDeadlockFree(); err != nil {
		log.Fatalf("%s: deadlock: %v", note, err)
	}
	if err := tab.VerifyDelivery(m.Network); err != nil {
		log.Fatalf("%s: delivery: %v", note, err)
	}
	change := "initial map"
	if prevMap != nil {
		change = topology.Compare(prevMap.Network, m.Network).String()
	}
	prevMap = m
	fmt.Printf("%-38s mapped %v with %4d probes in %v; routes ok\n%-38s map diff: %s\n",
		note+":", m.Network, m.Stats.Probes.TotalProbes(), m.Stats.Elapsed, "", change)
}

func main() {
	rng := rand.New(rand.NewSource(7))
	sys := cluster.CConfig(rng)
	net := sys.Net
	h0 := sys.Mapper()
	remap(net, h0, "initial subcluster C")

	// 1. A switch-to-switch cable fails (pick a non-bridge wire so the
	// network stays connected — the paper's C already lost one this way:
	// "The third was faulty and removed, but never replaced").
	bridges := map[int]bool{}
	for _, wi := range net.Bridges() {
		bridges[wi] = true
	}
	failed := -1
	net.WiresIndexed(func(wi int, w topology.Wire) {
		if failed >= 0 || bridges[wi] {
			return
		}
		if net.KindOf(w.A.Node) == topology.SwitchNode && net.KindOf(w.B.Node) == topology.SwitchNode {
			failed = wi
		}
	})
	if failed < 0 {
		log.Fatal("no removable cable found")
	}
	if err := net.RemoveWire(failed); err != nil {
		log.Fatal(err)
	}
	remap(net, h0, "after a cable failure")

	// 2. A new leaf switch with three hosts is cabled to two middle
	// switches ("leaving room for additional switches ... or hosts").
	leaf := net.AddSwitch("C-Lnew")
	attached := 0
	for _, s := range net.Switches() {
		if s != leaf && net.Degree(s) < topology.SwitchPorts && attached < 2 {
			if _, _, _, err := net.ConnectFree(leaf, s); err == nil {
				attached++
			}
		}
	}
	if attached < 2 {
		log.Fatal("could not attach the new switch")
	}
	for i := 0; i < 3; i++ {
		h := net.AddHost(fmt.Sprintf("NewNode%d", i))
		if _, _, _, err := net.ConnectFree(h, leaf); err != nil {
			log.Fatal(err)
		}
	}
	remap(net, h0, "after adding a switch + 3 hosts")

	// 3. A host moves to the new switch: unplug, replug.
	mover := net.Hosts()[1]
	if w := net.WireAt(mover, topology.HostPort); w >= 0 {
		if err := net.RemoveWire(w); err != nil {
			log.Fatal(err)
		}
	}
	if _, _, _, err := net.ConnectFree(mover, leaf); err != nil {
		log.Fatal(err)
	}
	remap(net, h0, "after moving a host")
}
