// Quickstart: build a small switched network, discover its topology with
// the Berkeley mapping algorithm using in-band probes only, verify the
// reconstruction, and compute deadlock-free UP*/DOWN* routes from the map —
// the paper's complete pipeline in ~60 lines.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sanmap/internal/dot"
	"sanmap/internal/isomorph"
	"sanmap/internal/mapper"
	"sanmap/internal/routes"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

func main() {
	// A little fat tree: 4 leaf switches with 3 hosts each, 2 middle
	// switches, 1 root. Ports are assigned randomly — the mapper never
	// learns absolute port numbers, only relative turns.
	rng := rand.New(rand.NewSource(42))
	net := topology.MustFatTree(topology.FatTreeSpec{
		LeafSwitches: 4, HostsPerLeaf: 3,
		MidSwitches: 2, RootSwitches: 1,
		UplinksPerLeaf: 2, UplinksPerMid: 2,
	}, rng)
	fmt.Println("actual network:", net)

	// The mapper host sends probes through a simulated Myrinet with
	// circuit-switched collision semantics (the paper's stricter model).
	h0 := net.Hosts()[0]
	sn := simnet.NewDefault(net)
	depth := net.DepthBound(h0) // the paper's Q+D bound
	m, err := mapper.Run(sn.Endpoint(h0), mapper.WithDepth(depth))
	if err != nil {
		log.Fatalf("mapping failed: %v", err)
	}
	fmt.Printf("mapped from %s with %d probes in %v (simulated)\n",
		net.NameOf(h0), m.Stats.Probes.TotalProbes(), m.Stats.Elapsed)

	// Theorem 1: the map is isomorphic to N−F.
	if err := isomorph.MustEqualCore(m.Network, net); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Println("verified: map is isomorphic to the actual network")
	fmt.Print(dot.ASCII(m.Network))

	// §5.5: derive mutually deadlock-free routes from the map and verify
	// them — up*/down* compliance, acyclic channel dependencies, and
	// delivery of every source route.
	tab, err := routes.Compute(m.Network, routes.DefaultConfig())
	if err != nil {
		log.Fatalf("route computation failed: %v", err)
	}
	for name, check := range map[string]error{
		"up*/down*":        tab.VerifyUpDown(),
		"deadlock freedom": tab.VerifyDeadlockFree(),
		"delivery":         tab.VerifyDelivery(m.Network),
	} {
		if check != nil {
			log.Fatalf("%s: %v", name, check)
		}
	}
	src := m.Network.Hosts()[0]
	dst := m.Network.Hosts()[len(m.Network.Hosts())-1]
	r, _ := tab.Route(src, dst)
	fmt.Printf("routes verified; e.g. %s -> %s takes turns %v\n",
		m.Network.NameOf(src), m.Network.NameOf(dst), r)
}
