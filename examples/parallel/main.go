// Parallel: the §6 future-work idea made concrete — "every network host
// could map local regions, and upon discovering another host exchange
// their partial maps. The central question is how to merge such local views
// into a stable, globally-consistent one." Three hosts at different corners
// of the 100-node system each map with a reduced probe depth (a local
// region), and mapper.MergeMaps fuses the partial views using the same
// host-anchored deduction machinery the single mapper uses internally.
package main

import (
	"fmt"
	"log"

	"sanmap/internal/cluster"
	"sanmap/internal/isomorph"
	"sanmap/internal/mapper"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

func main() {
	sys := cluster.CABConfig(nil)
	net := sys.Net
	fullDepth := net.DepthBound(sys.Mapper())

	// Pick one vantage host in each subcluster (hosts are created in
	// subcluster order C, A, B).
	hosts := net.Hosts()
	vantage := []topology.NodeID{hosts[0], hosts[40], hosts[80]}

	fmt.Printf("full system: %v, full probe depth %d\n", net, fullDepth)
	localDepth := 5 // deep enough for regions to overlap, far below the full bound
	fmt.Printf("three mappers probe only to depth %d:\n", localDepth)

	var partials []*mapper.Map
	var slowest int64
	for _, h := range vantage {
		sn := simnet.NewDefault(net)
		m, err := mapper.Run(sn.Endpoint(h), mapper.WithDepth(localDepth))
		if err != nil {
			log.Fatalf("partial map from %s: %v", net.NameOf(h), err)
		}
		fmt.Printf("  %-8s sees %v (%d probes, %v)\n",
			net.NameOf(h), m.Network, m.Stats.Probes.TotalProbes(), m.Stats.Elapsed)
		partials = append(partials, m)
		if ms := m.Stats.Elapsed.Milliseconds(); ms > slowest {
			slowest = ms
		}
	}

	merged, err := mapper.MergeMaps(partials...)
	if err != nil {
		log.Fatalf("merge: %v", err)
	}
	fmt.Printf("merged view: %v (mappers ran concurrently: wall time = slowest = %dms)\n",
		merged.Network, slowest)

	if err := isomorph.MustEqualCore(merged.Network, net); err != nil {
		fmt.Printf("merged view incomplete (regions did not overlap enough): %v\n", err)
		fmt.Println("increase the local depth or add vantage points")
		return
	}
	fmt.Println("merged view verified: isomorphic to N-F, assembled from partial maps")

	// Compare against one full-depth mapper from the same first vantage.
	sn := simnet.NewDefault(net)
	solo, err := mapper.Run(sn.Endpoint(vantage[0]), mapper.WithDepth(fullDepth))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single mapper for reference: %d probes, %v\n",
		solo.Stats.Probes.TotalProbes(), solo.Stats.Elapsed)
}
