// Crosstraffic: the paper's open problem (§6) — "the accurate mapping of
// system area networks in the presence of application cross-traffic". The
// example maps the NOW subcluster C while every host streams worms along
// deadlock-free routes at increasing offered loads, and reports how map
// accuracy and mapping time respond. The paper reports "some evidence that
// the algorithm can oftentimes correctly map the network even in the face
// of heavy application cross-traffic" (§7) — the sweep shows where that
// stops being true.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"sanmap/internal/cluster"
	"sanmap/internal/isomorph"
	"sanmap/internal/mapper"
	"sanmap/internal/simnet"
	"sanmap/internal/workload"
)

func main() {
	sys := cluster.CConfig(nil)
	net := sys.Net
	h0 := sys.Mapper()
	depth := net.DepthBound(h0)
	core, _ := net.Core()

	fmt.Println("mapping subcluster C under uniform cross-traffic")
	fmt.Printf("%-8s %-10s %-10s %-12s %s\n", "load", "accuracy", "traffic", "map time", "notes")
	for _, load := range []float64{0, 0.01, 0.05, 0.1, 0.25, 0.5, 0.8} {
		pattern := workload.Uniform
		m, tstats, took, err := workload.MapUnderTraffic(net, h0,
			simnet.CircuitModel, simnet.DefaultTiming(),
			mapper.DefaultConfig(depth), workload.Config{
				Pattern:  pattern,
				Load:     load,
				MsgBytes: 4096,
				Duration: 12 * time.Second, // longer than any mapping run here
				Rng:      rand.New(rand.NewSource(int64(load*1000) + 1)),
			})
		if err != nil {
			fmt.Printf("%-8.2f %-10s %-10s %-12v mapping failed: %v\n",
				load, "0.00", "-", took.Round(time.Millisecond), err)
			continue
		}
		sim := isomorph.Compare(m.Network, core)
		notes := "exact map"
		if !sim.Isomorphic {
			notes = fmt.Sprintf("hosts %.0f%%, switches x%.2f, links x%.2f",
				100*sim.HostRecall, sim.SwitchRatio, sim.LinkRatio)
		}
		delivered := "-"
		if tstats.Sent > 0 {
			delivered = fmt.Sprintf("%.0f%% ok", 100*float64(tstats.Delivered)/float64(tstats.Sent))
		}
		fmt.Printf("%-8.2f %-10.2f %-10s %-12v %s\n",
			load, sim.Score(), delivered, took.Round(time.Millisecond), notes)
	}
	fmt.Println("\naccuracy 1.00 = isomorphic to N-F; traffic = worms delivered vs sent")
	fmt.Println("heavier load costs mapping time first (blocked probes retry as timeouts),")
	fmt.Println("and only extreme load corrupts the map itself")
}
