// Deadlock: why the paper computes UP*/DOWN* routes from its maps instead
// of plain shortest paths (§5.5). Under wormhole/circuit switching a
// message holds every link it has acquired while waiting for the next one
// ("should a message block ... the rest of the message may remain in the
// network, occupying switch and link resources", §1.1), so routes whose
// channel-dependency graph has a cycle can genuinely deadlock. This example
// runs all-at-once permutation traffic on a 4x4 torus twice — with naive
// shortest-path routes and with UP*/DOWN* routes from the same network —
// and counts real deadlocks, broken by the hardware's 50 ms mechanism.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sanmap/internal/routes"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
	"sanmap/internal/wormsim"
)

func run(net *topology.Network, tab *routes.Table, label string) {
	hosts := net.Hosts()
	totalDead, totalDelivered, cycles := 0, 0, 0
	for shift := 1; shift < len(hosts); shift++ {
		s := wormsim.New(net, simnet.DefaultTiming())
		for i, src := range hosts {
			dst := hosts[(i+shift)%len(hosts)]
			if dst == src {
				continue
			}
			route, ok := tab.Route(src, dst)
			if !ok {
				log.Fatalf("no route %s -> %s", net.NameOf(src), net.NameOf(dst))
			}
			if err := s.Inject(0, src, route); err != nil {
				log.Fatal(err)
			}
		}
		st := s.Run()
		totalDead += st.Deadlocked
		totalDelivered += st.Delivered
		cycles += st.CyclesBroken
	}
	verdict := "no deadlocks"
	if totalDead > 0 {
		verdict = fmt.Sprintf("%d worms destroyed breaking %d circular waits", totalDead, cycles)
	}
	fmt.Printf("%-16s delivered %4d worms, %s\n", label+":", totalDelivered, verdict)
}

func main() {
	rng := rand.New(rand.NewSource(1))
	net := topology.MustTorus(4, 4, 1, rng)
	fmt.Printf("permutation traffic on a 4x4 torus (%v), all %d shifts\n\n",
		net, net.NumHosts()-1)

	naive, err := routes.ShortestPaths(net)
	if err != nil {
		log.Fatal(err)
	}
	if err := naive.VerifyDeadlockFree(); err != nil {
		fmt.Println("shortest paths: channel-dependency graph HAS a cycle — deadlock possible")
	}
	run(net, naive, "shortest paths")

	safe, err := routes.Compute(net, routes.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := safe.VerifyDeadlockFree(); err != nil {
		log.Fatalf("UP*/DOWN* dependency cycle!? %v", err)
	}
	fmt.Println("\nup*/down*: channel-dependency graph verified acyclic — deadlock impossible")
	run(net, safe, "up*/down*")

	fmt.Println("\nthe dependency-graph verdicts (static) and the wormhole simulation")
	fmt.Println("(dynamic) agree: this is Dally-Seitz, and it is why maps matter")
}
