GO ?= go

# Packages with concurrency-sensitive code (the pipelined probe engine and
# everything layered on it) get a dedicated race-detector lane.
RACE_PKGS = ./internal/simnet/... ./internal/mapper/... ./internal/connet/... ./internal/election/...

.PHONY: build vet test race bench ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) vet ./...
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -bench . -benchtime 1x -run ^$$ .

ci: build vet test race
