GO ?= go

# Packages with concurrency-sensitive code (the pipelined probe engine and
# everything layered on it, plus the event queue, worm simulator, experiment
# drivers, active-message layer and telemetry) get a dedicated race-detector
# lane.
RACE_PKGS = ./internal/simnet/... ./internal/mapper/... ./internal/connet/... \
	./internal/election/... ./internal/eventq/... ./internal/wormsim/... \
	./internal/experiments/... ./internal/amlayer/... ./internal/obs/... \
	./internal/mapd/... ./internal/workload/... ./internal/loadsim/... \
	./internal/place/...

.PHONY: build vet lint lint-json trace-smoke test race chaos crash-smoke load-smoke bench bench-smoke bench-gate bench-large bench-baseline ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs go vet plus the repo's own analyzers (cmd/sanlint: determinism,
# epochcheck, goroutine, hotpath, lockcheck, senterr — see DESIGN.md §8 and
# §13), then checks that the tree is gofmt-clean and go.mod/go.sum are tidy.
#
# Annotation grammar recognised by the analyzers:
#   //sanlint:hotpath        (func)  body must be allocation-free; exports the fact
#   //sanlint:epoch          (field) cache-epoch counter for epochcheck
#   //sanlint:topostate      (field) epoch-guarded state for epochcheck
#   //sanlint:guards a,b     (field) mutex field protecting sibling fields a,b
#   //sanlint:daemon         (func)  may launch unjoined goroutines
lint: vet
	$(GO) run ./cmd/sanlint ./...
	@fmt=$$(gofmt -l .); if [ -n "$$fmt" ]; then \
		echo "gofmt needed on:"; echo "$$fmt"; exit 1; fi
	$(GO) mod tidy -diff

# trace-smoke is the golden-trace lane: a chaos run on a pinned seed must
# emit a Chrome trace sidecar byte-identical to the checked-in fixture
# (see OBSERVABILITY.md). Catches nondeterminism anywhere in the mapper,
# fault or telemetry stack. Regenerate the fixture after an intentional
# change with:
#   $(GO) run ./cmd/sanmap -gen now-c -chaos seed=3 -trace cmd/sanmap/testdata/trace-chaos-seed3.json
# lint-json archives the full finding set (normally empty) as a stable JSON
# artifact so CI can diff lint output between commits.
lint-json:
	$(GO) run ./cmd/sanlint -json ./... > sanlint-findings.json || \
		{ cat sanlint-findings.json; exit 1; }
	@echo wrote sanlint-findings.json

trace-smoke:
	@tmp=$$(mktemp); \
	$(GO) run ./cmd/sanmap -gen now-c -chaos seed=3 -trace $$tmp > /dev/null && \
	diff -u cmd/sanmap/testdata/trace-chaos-seed3.json $$tmp && \
	echo "trace-smoke: golden chaos trace is byte-identical"; \
	status=$$?; rm -f $$tmp; exit $$status

test:
	$(GO) test ./...

race:
	$(GO) vet ./...
	$(GO) test -race $(RACE_PKGS)

# chaos is the golden-seed fault-injection lane: deterministic schedules,
# byte-reproducible logs, self-healing remaps checked against the surviving
# core (see DESIGN.md §9). Every test here pins fixed seeds, so a failure is
# a real regression, never flake.
chaos:
	$(GO) test -run 'Chaos|Fault|Heal|Remap|Backoff|Crash|Injector|Classify|LinkFilter' \
		./internal/faults/... ./internal/mapper/... ./internal/simnet/... \
		./internal/wormsim/... ./internal/election/... ./internal/experiments/...

# crash-smoke is the kill/restart lane (DESIGN.md §14): sanmapd — run as a
# real OS process — is killed at every successive WAL append and restarted
# onto the same state directory. The surviving committed epochs must be
# byte-identical to an uninterrupted daemon's (checkpoints included), the
# final heal must resume from its WAL rather than start over, and no WAL
# may outlive its epoch's commit.
crash-smoke:
	$(GO) test -count=1 -v -run 'TestCrashRestart' ./internal/mapd/

# load-smoke is the golden-seed traffic lane (WORKLOADS.md): the default
# sanload run — seeded plan, replay, cut, stale table, remap, healed replay,
# placement — must reproduce the checked-in report byte for byte. Catches
# nondeterminism anywhere in the workload/loadsim/place stack. Regenerate
# after an intentional change with:
#   $(GO) run ./cmd/sanload > cmd/sanload/testdata/load-smoke.txt
load-smoke:
	$(GO) test -count=1 -v -run 'TestLoadSmokeGolden' ./cmd/sanload/

bench:
	$(GO) test -bench . -benchtime 1x -run ^$$ .

# bench-smoke runs every benchmark once and pushes the output through the
# sanbench parser — catching benchmarks that panic, b.Fatal, or emit
# malformed measurement lines, without paying for steady-state timing.
bench-smoke:
	$(GO) test -bench . -benchtime 1x -run ^$$ . | $(GO) run ./cmd/sanbench > /dev/null

# bench-large is the datacenter-scale lane (DESIGN.md §11): the 1004-switch
# fat-tree must map inside the 10-second wall-clock gate and re-render
# byte-identically (TestMapFatTree1k), the CSR traversals must stay
# allocation-free (TestIndexZeroAlloc), and the fattree-1k benchmark runs
# once through the sanbench parser so the lane lands in recorded baselines.
bench-large:
	$(GO) test -run TestMapFatTree1k -v ./internal/mapper/
	$(GO) test -run TestIndexZeroAlloc ./internal/topology/
	$(GO) test -bench 'FatTree1k|Index.*1k' -benchtime 1x -run ^$$ . | \
		$(GO) run ./cmd/sanbench > /dev/null

# bench-gate is the wall-clock regression gate (DESIGN.md §12): re-measure
# the gated lanes — the window-8 probe pipeline and the 1k-switch fat-tree
# — and check them against the committed baseline's gates block. Fails on a
# >15% ns/op regression or a broken relative gate (window8 must stay within
# 2x the serial loop's wall clock). Runs use -count so sanbench can gate on
# per-lane minima, the statistic that survives shared-runner noise.
BENCH_BASELINE ?= BENCH_a0bca40.json
bench-gate:
	@{ $(GO) test -bench PipelinedVsSerial -benchtime 100x -count 3 -run ^$$ . && \
	   $(GO) test -bench LoadReplay -benchtime 100x -count 3 -run ^$$ . && \
	   $(GO) test -bench MapFatTree1k -benchtime 20x -count 3 -run ^$$ . ; } | \
		$(GO) run ./cmd/sanbench -gate $(BENCH_BASELINE)

# bench-baseline records a benchstat-compatible JSON baseline for the
# current revision: BENCH_<rev>.json, with duplicate -count measurements
# collapsed to minima and the bench_gates.json policy embedded (and
# self-checked — a run that breaks its own gates is not a valid baseline).
# The 1k-scale lanes run separately at 20x: one op is a full datacenter map.
# Compare later with
#   go run ./cmd/sanbench -text BENCH_<rev>.json > old.txt && benchstat old.txt new.txt
REV := $(shell git rev-parse --short HEAD 2>/dev/null || echo dev)
bench-baseline:
	@{ $(GO) test -bench . -skip 1k -benchtime 100x -count 5 -run ^$$ . && \
	   $(GO) test -bench 1k -benchtime 20x -count 3 -run ^$$ . ; } | \
		$(GO) run ./cmd/sanbench -rev $(REV) -min -gates bench_gates.json -o BENCH_$(REV).json
	@echo wrote BENCH_$(REV).json

ci: build lint lint-json trace-smoke test race chaos crash-smoke load-smoke bench-smoke bench-gate bench-large
