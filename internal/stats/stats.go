package stats

import (
	"fmt"
	"sort"
	"time"
)

// Durations summarises repeated timing measurements.
type Durations struct {
	values []time.Duration
}

// Add appends one measurement.
func (d *Durations) Add(v time.Duration) { d.values = append(d.values, v) }

// N reports the number of measurements.
func (d *Durations) N() int { return len(d.values) }

// Min returns the smallest measurement (0 when empty).
func (d *Durations) Min() time.Duration {
	if len(d.values) == 0 {
		return 0
	}
	m := d.values[0]
	for _, v := range d.values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest measurement (0 when empty).
func (d *Durations) Max() time.Duration {
	var m time.Duration
	for _, v := range d.values {
		if v > m {
			m = v
		}
	}
	return m
}

// Avg returns the mean measurement (0 when empty).
func (d *Durations) Avg() time.Duration {
	if len(d.values) == 0 {
		return 0
	}
	var sum time.Duration
	for _, v := range d.values {
		sum += v
	}
	return sum / time.Duration(len(d.values))
}

// Median returns the middle measurement (0 when empty).
func (d *Durations) Median() time.Duration {
	if len(d.values) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), d.values...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// MinAvgMax renders the Fig 7 "min / avg / max" cell in milliseconds.
func (d *Durations) MinAvgMax() string {
	return fmt.Sprintf("%s / %s / %s", Ms(d.Min()), Ms(d.Avg()), Ms(d.Max()))
}

// Ms formats a duration as integer milliseconds, the paper's unit.
func Ms(v time.Duration) string {
	return fmt.Sprintf("%d", v.Milliseconds())
}

// Series is an (x, y) sequence for the figure reproductions.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Append adds one point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len reports the number of points.
func (s *Series) Len() int { return len(s.X) }

// TSV renders the series as tab-separated "x\ty" lines with a header.
func (s *Series) TSV() string {
	out := fmt.Sprintf("# %s\n", s.Name)
	for i := range s.X {
		out += fmt.Sprintf("%g\t%g\n", s.X[i], s.Y[i])
	}
	return out
}

// ASCIIPlot renders a crude terminal plot of the series (y downsampled into
// the given number of rows), good enough to eyeball the Fig 8/9 shapes.
func ASCIIPlot(series []*Series, width, height int) string {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	minX, maxX, maxY := 0.0, 0.0, 0.0
	first := true
	for _, s := range series {
		for i := range s.X {
			if first {
				minX, maxX = s.X[i], s.X[i]
				first = false
			}
			if s.X[i] < minX {
				minX = s.X[i]
			}
			if s.X[i] > maxX {
				maxX = s.X[i]
			}
			if s.Y[i] > maxY {
				maxY = s.Y[i]
			}
		}
	}
	if first || maxX == minX || maxY == 0 {
		return "(no data)\n"
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = make([]byte, width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	marks := []byte{'*', '+', 'o', 'x', '#', '@'}
	for si, s := range series {
		mark := marks[si%len(marks)]
		for i := range s.X {
			c := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			r := height - 1 - int(s.Y[i]/maxY*float64(height-1))
			grid[r][c] = mark
		}
	}
	out := ""
	for r := range grid {
		out += string(grid[r]) + "\n"
	}
	out += fmt.Sprintf("x: %g..%g  ymax: %g  (", minX, maxX, maxY)
	for si, s := range series {
		if si > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%c=%s", marks[si%len(marks)], s.Name)
	}
	return out + ")\n"
}
