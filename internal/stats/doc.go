// Package stats provides the small summary helpers the experiment harness
// uses: min/avg/max aggregation over repeated runs (the format of the
// paper's Fig 7) and simple series utilities for Fig 8/9-style plots.
//
// Durations accumulates repeated virtual-time measurements and reports
// Min/Avg/Max/Median — the Fig 7 table cells. Series collects (x, y)
// points and renders them as TSV or as the crude ASCII plots the sanexp
// figures print. benchfmt.go parses `go test -bench` output lines
// (including the repo's custom probes/op and sim-ms/op metrics) for
// cmd/sanbench's baseline snapshots.
//
// Scope note: this package summarises *experiment outputs* after a run
// completes. Live run telemetry — per-probe counters, phase spans,
// virtual-time histograms — belongs to internal/obs (see
// OBSERVABILITY.md); the experiment harness reads obs registries and
// feeds the numbers here for presentation.
package stats
