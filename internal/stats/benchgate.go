package stats

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Wall-clock gating. A committed baseline (BENCH_<rev>.json) carries a
// gates block; CI re-measures the gated lanes and fails when a fresh value
// breaks an absolute ceiling, a relative gate within the fresh run, or a
// tolerance band against the baseline's own recorded value. Benchmarks on a
// shared runner are noisy, so gate runs use -count N and gating reads the
// per-name minimum — the stable statistic for a lower-bounded quantity.

// BenchGate is one wall-clock gate. Names are benchmark result names
// without the -P GOMAXPROCS suffix, so a baseline recorded on one machine
// gates runs on another. Any combination of the three bounds may be set.
type BenchGate struct {
	// Name selects the gated result; Unit the metric (e.g. "ns/op").
	Name string `json:"name"`
	Unit string `json:"unit"`
	// Max, when positive, is an absolute ceiling on the fresh value.
	Max float64 `json:"max,omitempty"`
	// RelativeTo and MaxRatio, when set, bound the ratio of the fresh
	// value over the fresh value of another result in the same run —
	// e.g. window8 ns/op at most 2x serial ns/op.
	RelativeTo string  `json:"relative_to,omitempty"`
	MaxRatio   float64 `json:"max_ratio,omitempty"`
	// MaxRegress, when positive, is the tolerated fractional regression
	// over the baseline's recorded value: fresh <= base * (1+MaxRegress).
	MaxRegress float64 `json:"max_regress,omitempty"`
}

// BaseName strips the -P GOMAXPROCS suffix go test appends to benchmark
// names, so gate lookups are machine-independent.
func BaseName(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// SortResults orders the results by name (then iteration count), making the
// baseline JSON deterministic across runs and map-iteration order.
func (s *BenchSet) SortResults() {
	sort.SliceStable(s.Results, func(i, j int) bool {
		if s.Results[i].Name != s.Results[j].Name {
			return s.Results[i].Name < s.Results[j].Name
		}
		return s.Results[i].Iterations < s.Results[j].Iterations
	})
}

// CollapseMin merges duplicate result names — a `-count N` run — into one
// result per name holding each unit's minimum across the repeats, then
// sorts. Minima combine across repeats (the merged result is not any single
// run), which is exactly the noise-robust reading wall-clock gates want.
func (s *BenchSet) CollapseMin() {
	byName := map[string]int{}
	out := s.Results[:0]
	for _, r := range s.Results {
		i, ok := byName[r.Name]
		if !ok {
			byName[r.Name] = len(out)
			out = append(out, r)
			continue
		}
		m := &out[i]
		if r.Iterations > m.Iterations {
			m.Iterations = r.Iterations
		}
		for u, v := range r.Metrics {
			if cur, ok := m.Metrics[u]; !ok || v < cur {
				m.Metrics[u] = v
			}
		}
	}
	s.Results = out
	s.SortResults()
}

// MetricOf returns the named result's metric, matching names without the
// -P suffix and taking the minimum when a -count run recorded several.
func (s *BenchSet) MetricOf(name, unit string) (float64, bool) {
	best, found := 0.0, false
	for _, r := range s.Results {
		if BaseName(r.Name) != name {
			continue
		}
		v, ok := r.Metrics[unit]
		if !ok {
			continue
		}
		if !found || v < best {
			best, found = v, true
		}
	}
	return best, found
}

// CheckGates evaluates base's gates against the fresh run, returning one
// error per violation. Passing the same set as both checks a new baseline
// against its own absolute and relative gates (regression gates then
// trivially hold).
func CheckGates(base, fresh *BenchSet) []error {
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	for _, g := range base.Gates {
		v, ok := fresh.MetricOf(g.Name, g.Unit)
		if !ok {
			fail("gate %s: fresh run has no %s", g.Name, g.Unit)
			continue
		}
		if g.Max > 0 && v > g.Max {
			fail("gate %s: %s %.0f exceeds ceiling %.0f", g.Name, g.Unit, v, g.Max)
		}
		if g.RelativeTo != "" && g.MaxRatio > 0 {
			ref, ok := fresh.MetricOf(g.RelativeTo, g.Unit)
			switch {
			case !ok || ref <= 0:
				fail("gate %s: fresh run has no usable %s for %s", g.Name, g.Unit, g.RelativeTo)
			case v > ref*g.MaxRatio:
				fail("gate %s: %s %.0f is %.2fx %s (%.0f), above the %.2fx bound",
					g.Name, g.Unit, v, v/ref, g.RelativeTo, ref, g.MaxRatio)
			}
		}
		if g.MaxRegress > 0 {
			bv, ok := base.MetricOf(g.Name, g.Unit)
			switch {
			case !ok || bv <= 0:
				fail("gate %s: baseline has no usable %s to regress against", g.Name, g.Unit)
			case v > bv*(1+g.MaxRegress):
				fail("gate %s: %s regressed %.1f%% (%.0f -> %.0f), tolerance %.0f%%",
					g.Name, g.Unit, 100*(v/bv-1), bv, v, 100*g.MaxRegress)
			}
		}
	}
	return errs
}
