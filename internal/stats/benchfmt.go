package stats

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// BenchResult is one `go test -bench` measurement line: a benchmark name
// (with the -P GOMAXPROCS suffix kept, as benchstat expects), an iteration
// count, and a set of (unit -> value) metrics such as ns/op, B/op,
// allocs/op, or custom b.ReportMetric units like probes/op.
type BenchResult struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// BenchSet is a parsed benchmark run: the `key: value` configuration lines
// (goos, goarch, pkg, cpu — sanbench adds goamd64 and ncpu) plus every
// measurement, in input order until SortResults or CollapseMin imposes the
// deterministic name order baselines are committed in. Rev is filled by the
// caller (typically a VCS revision) and rides along in the JSON so baseline
// files are self-describing; Gates carries the wall-clock gates CI enforces
// against the file (see CheckGates).
type BenchSet struct {
	Rev     string            `json:"rev,omitempty"`
	Config  map[string]string `json:"config,omitempty"`
	Gates   []BenchGate       `json:"gates,omitempty"`
	Results []BenchResult     `json:"results"`
}

// ParseBench reads `go test -bench` output. Unrecognised lines (test chatter,
// PASS/ok trailers) are skipped; malformed Benchmark lines are an error so a
// truncated run can't masquerade as a baseline.
func ParseBench(r io.Reader) (*BenchSet, error) {
	set := &BenchSet{Config: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "Benchmark"):
			res, err := parseBenchLine(line)
			if err != nil {
				return nil, err
			}
			set.Results = append(set.Results, res)
		case isBenchConfig(line):
			k, v, _ := strings.Cut(line, ":")
			set.Config[k] = strings.TrimSpace(v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(set.Results) == 0 {
		return nil, fmt.Errorf("benchfmt: no Benchmark lines in input")
	}
	return set, nil
}

// isBenchConfig recognises the `key: value` preamble go test prints before
// measurements. Keys are lowercase words (goos, goarch, pkg, cpu).
func isBenchConfig(line string) bool {
	k, _, ok := strings.Cut(line, ":")
	if !ok || k == "" {
		return false
	}
	for _, c := range k {
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func parseBenchLine(line string) (BenchResult, error) {
	f := strings.Fields(line)
	// Name iterations, then (value, unit) pairs.
	if len(f) < 4 || len(f)%2 != 0 {
		return BenchResult{}, fmt.Errorf("benchfmt: malformed line %q", line)
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return BenchResult{}, fmt.Errorf("benchfmt: bad iteration count in %q: %v", line, err)
	}
	res := BenchResult{Name: f[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return BenchResult{}, fmt.Errorf("benchfmt: bad value in %q: %v", line, err)
		}
		res.Metrics[f[i+1]] = v
	}
	return res, nil
}

// canonical metric order for FormatBench; anything else follows sorted.
var benchUnitOrder = map[string]int{"ns/op": 0, "MB/s": 1, "B/op": 2, "allocs/op": 3}

// FormatBench renders the set back into the text format benchstat and
// `benchcmp`-style tools consume, so a JSON baseline can be compared against
// a fresh run with stock tooling.
func FormatBench(set *BenchSet) string {
	var b strings.Builder
	for _, k := range []string{"goos", "goarch", "pkg", "cpu"} {
		if v, ok := set.Config[k]; ok {
			fmt.Fprintf(&b, "%s: %s\n", k, v)
		}
	}
	for _, r := range set.Results {
		units := make([]string, 0, len(r.Metrics))
		for u := range r.Metrics {
			units = append(units, u)
		}
		sort.Slice(units, func(i, j int) bool {
			oi, iok := benchUnitOrder[units[i]]
			oj, jok := benchUnitOrder[units[j]]
			if iok != jok {
				return iok
			}
			if iok && jok && oi != oj {
				return oi < oj
			}
			return units[i] < units[j]
		})
		fmt.Fprintf(&b, "%s\t%d", r.Name, r.Iterations)
		for _, u := range units {
			fmt.Fprintf(&b, "\t%s %s", strconv.FormatFloat(r.Metrics[u], 'f', -1, 64), u)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
