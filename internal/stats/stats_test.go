package stats

import (
	"strings"
	"testing"
	"time"
)

func TestDurations(t *testing.T) {
	var d Durations
	if d.Min() != 0 || d.Max() != 0 || d.Avg() != 0 || d.Median() != 0 {
		t.Error("empty aggregates should be zero")
	}
	for _, v := range []time.Duration{30, 10, 20} {
		d.Add(v * time.Millisecond)
	}
	if d.N() != 3 {
		t.Errorf("N = %d", d.N())
	}
	if d.Min() != 10*time.Millisecond || d.Max() != 30*time.Millisecond {
		t.Errorf("min/max %v/%v", d.Min(), d.Max())
	}
	if d.Avg() != 20*time.Millisecond || d.Median() != 20*time.Millisecond {
		t.Errorf("avg/median %v/%v", d.Avg(), d.Median())
	}
	if got := d.MinAvgMax(); got != "10 / 20 / 30" {
		t.Errorf("MinAvgMax = %q", got)
	}
}

func TestSeries(t *testing.T) {
	s := &Series{Name: "probes"}
	s.Append(1, 10)
	s.Append(2, 20)
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	tsv := s.TSV()
	if !strings.Contains(tsv, "# probes") || !strings.Contains(tsv, "2\t20") {
		t.Errorf("TSV = %q", tsv)
	}
}

func TestASCIIPlot(t *testing.T) {
	a := &Series{Name: "a"}
	b := &Series{Name: "b"}
	for i := 0; i < 10; i++ {
		a.Append(float64(i), float64(i*i))
		b.Append(float64(i), float64(10*i))
	}
	out := ASCIIPlot([]*Series{a, b}, 40, 10)
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Errorf("plot lacks marks:\n%s", out)
	}
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Errorf("plot lacks legend:\n%s", out)
	}
	if got := ASCIIPlot(nil, 10, 5); !strings.Contains(got, "no data") {
		t.Errorf("empty plot: %q", got)
	}
}
