package stats

import (
	"strings"
	"testing"
)

const benchSample = `goos: linux
goarch: amd64
pkg: sanmap
cpu: AMD EPYC
BenchmarkEvalRoute-8   	95019072	        10.05 ns/op	       0 B/op	       0 allocs/op
BenchmarkRandomizedTrials/serial-8	       1	 4834210 ns/op	      5015 probes/op
PASS
ok  	sanmap	2.872s
`

func TestParseBench(t *testing.T) {
	set, err := ParseBench(strings.NewReader(benchSample))
	if err != nil {
		t.Fatal(err)
	}
	if set.Config["goos"] != "linux" || set.Config["cpu"] != "AMD EPYC" {
		t.Errorf("config = %v", set.Config)
	}
	if len(set.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(set.Results))
	}
	r := set.Results[0]
	if r.Name != "BenchmarkEvalRoute-8" || r.Iterations != 95019072 {
		t.Errorf("result 0: %+v", r)
	}
	if r.Metrics["ns/op"] != 10.05 || r.Metrics["allocs/op"] != 0 {
		t.Errorf("metrics 0: %v", r.Metrics)
	}
	if m := set.Results[1].Metrics; m["probes/op"] != 5015 {
		t.Errorf("custom metric lost: %v", m)
	}
}

func TestParseBenchErrors(t *testing.T) {
	for _, in := range []string{
		"PASS\nok sanmap 1s\n",              // no measurements
		"BenchmarkX-8 notanumber 1 ns/op\n", // bad iterations
		"BenchmarkX-8 10 fast ns/op\n",      // bad value
		"BenchmarkX-8 10 3.5\n",             // value with no unit
	} {
		if _, err := ParseBench(strings.NewReader(in)); err == nil {
			t.Errorf("ParseBench(%q) = nil error", in)
		}
	}
}

// TestBenchRoundTrip: parse -> format -> parse is the identity, so a JSON
// baseline re-rendered for benchstat means what the original run measured.
func TestBenchRoundTrip(t *testing.T) {
	set, err := ParseBench(strings.NewReader(benchSample))
	if err != nil {
		t.Fatal(err)
	}
	text := FormatBench(set)
	again, err := ParseBench(strings.NewReader(text))
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text)
	}
	if len(again.Results) != len(set.Results) {
		t.Fatalf("result count changed: %d -> %d", len(set.Results), len(again.Results))
	}
	for i := range set.Results {
		a, b := set.Results[i], again.Results[i]
		if a.Name != b.Name || a.Iterations != b.Iterations {
			t.Errorf("result %d header changed: %+v -> %+v", i, a, b)
		}
		for u, v := range a.Metrics {
			if b.Metrics[u] != v {
				t.Errorf("result %d metric %s: %v -> %v", i, u, v, b.Metrics[u])
			}
		}
	}
	if !strings.Contains(text, "goos: linux") {
		t.Errorf("config lines missing:\n%s", text)
	}
}
