package stats

import (
	"strings"
	"testing"
)

func TestBaseName(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkMap-64":             "BenchmarkMap",
		"BenchmarkMap":                "BenchmarkMap",
		"BenchmarkMap/window8-4":      "BenchmarkMap/window8",
		"BenchmarkMap/weird-suffix":   "BenchmarkMap/weird-suffix",
		"BenchmarkPipelined/serial-1": "BenchmarkPipelined/serial",
	} {
		if got := BaseName(in); got != want {
			t.Errorf("BaseName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCollapseMinAndSort(t *testing.T) {
	set := &BenchSet{Results: []BenchResult{
		{Name: "BenchmarkB-4", Iterations: 100, Metrics: map[string]float64{"ns/op": 300, "allocs/op": 7}},
		{Name: "BenchmarkA-4", Iterations: 100, Metrics: map[string]float64{"ns/op": 50}},
		{Name: "BenchmarkB-4", Iterations: 200, Metrics: map[string]float64{"ns/op": 250, "allocs/op": 9}},
	}}
	set.CollapseMin()
	if len(set.Results) != 2 {
		t.Fatalf("collapsed to %d results, want 2", len(set.Results))
	}
	if set.Results[0].Name != "BenchmarkA-4" || set.Results[1].Name != "BenchmarkB-4" {
		t.Fatalf("not sorted: %q, %q", set.Results[0].Name, set.Results[1].Name)
	}
	b := set.Results[1]
	if b.Metrics["ns/op"] != 250 || b.Metrics["allocs/op"] != 7 || b.Iterations != 200 {
		t.Errorf("min-merge wrong: %+v", b)
	}
}

func mkSet(vals map[string]float64) *BenchSet {
	s := &BenchSet{}
	for name, v := range vals {
		s.Results = append(s.Results, BenchResult{
			Name: name + "-8", Iterations: 100, Metrics: map[string]float64{"ns/op": v}})
	}
	s.SortResults()
	return s
}

func TestCheckGates(t *testing.T) {
	gates := []BenchGate{
		{Name: "BenchmarkW8", Unit: "ns/op", RelativeTo: "BenchmarkSerial", MaxRatio: 2.0, MaxRegress: 0.15},
		{Name: "BenchmarkSerial", Unit: "ns/op", MaxRegress: 0.15},
		{Name: "BenchmarkAbs", Unit: "ns/op", Max: 1000},
	}
	base := mkSet(map[string]float64{"BenchmarkW8": 180, "BenchmarkSerial": 100, "BenchmarkAbs": 900})
	base.Gates = gates

	// A baseline passes against itself (regression gates compare 1:1).
	if errs := CheckGates(base, base); len(errs) != 0 {
		t.Fatalf("self-check failed: %v", errs)
	}
	// Fresh run inside every band.
	ok := mkSet(map[string]float64{"BenchmarkW8": 190, "BenchmarkSerial": 105, "BenchmarkAbs": 950})
	if errs := CheckGates(base, ok); len(errs) != 0 {
		t.Fatalf("in-band run failed: %v", errs)
	}
	// Ratio break: W8 jumps over 2x the fresh serial (and over the band).
	bad := mkSet(map[string]float64{"BenchmarkW8": 260, "BenchmarkSerial": 101, "BenchmarkAbs": 950})
	errs := CheckGates(base, bad)
	if len(errs) != 2 {
		t.Fatalf("ratio+regress break: got %d errors (%v), want 2", len(errs), errs)
	}
	// Regression break on the serial lane only.
	slow := mkSet(map[string]float64{"BenchmarkW8": 180, "BenchmarkSerial": 120, "BenchmarkAbs": 950})
	errs = CheckGates(base, slow)
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "BenchmarkSerial") {
		t.Fatalf("regress break: %v", errs)
	}
	// Absolute ceiling break.
	big := mkSet(map[string]float64{"BenchmarkW8": 180, "BenchmarkSerial": 100, "BenchmarkAbs": 1200})
	errs = CheckGates(base, big)
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "ceiling") {
		t.Fatalf("ceiling break: %v", errs)
	}
	// Missing lane in the fresh run.
	missing := mkSet(map[string]float64{"BenchmarkSerial": 100, "BenchmarkAbs": 900})
	if errs = CheckGates(base, missing); len(errs) != 1 {
		t.Fatalf("missing lane: %v", errs)
	}
}

func TestMetricOfTakesMin(t *testing.T) {
	s := &BenchSet{Results: []BenchResult{
		{Name: "BenchmarkX-4", Metrics: map[string]float64{"ns/op": 120}},
		{Name: "BenchmarkX-4", Metrics: map[string]float64{"ns/op": 90}},
		{Name: "BenchmarkX-4", Metrics: map[string]float64{"ns/op": 110}},
	}}
	if v, ok := s.MetricOf("BenchmarkX", "ns/op"); !ok || v != 90 {
		t.Fatalf("MetricOf = %v, %v; want 90, true", v, ok)
	}
	if _, ok := s.MetricOf("BenchmarkY", "ns/op"); ok {
		t.Fatal("MetricOf found a missing benchmark")
	}
}
