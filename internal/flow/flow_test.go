package flow

import (
	"math/rand"
	"testing"
)

func TestMaxFlowDiamond(t *testing.T) {
	// s -> a, s -> b, a -> t, b -> t, a -> b: classic diamond, max flow 2.
	g := New(4)
	s, a, b, tt := 0, 1, 2, 3
	g.AddArc(s, a, 1, 0)
	g.AddArc(s, b, 1, 0)
	g.AddArc(a, tt, 1, 0)
	g.AddArc(b, tt, 1, 0)
	g.AddArc(a, b, 1, 0)
	if got := g.MaxFlow(s, tt, -1); got != 2 {
		t.Errorf("max flow %d, want 2", got)
	}
}

func TestMaxFlowLimit(t *testing.T) {
	g := New(2)
	g.AddArc(0, 1, 10, 0)
	if got := g.MaxFlow(0, 1, 3); got != 3 {
		t.Errorf("limited flow %d, want 3", got)
	}
}

func TestMinCostPrefersCheapPath(t *testing.T) {
	// Two disjoint paths of costs 1 and 3; one unit should take the cheap
	// one, two units both.
	g := New(4)
	g.AddArc(0, 1, 1, 1)
	g.AddArc(1, 3, 1, 0)
	g.AddArc(0, 2, 1, 3)
	g.AddArc(2, 3, 1, 0)
	pushed, cost, err := g.MinCostFlow(0, 3, 1)
	if err != nil || pushed != 1 || cost != 1 {
		t.Errorf("1 unit: pushed=%d cost=%d err=%v", pushed, cost, err)
	}
	pushed, cost, err = g.MinCostFlow(0, 3, 1) // second unit on the same graph
	if err != nil || pushed != 1 || cost != 3 {
		t.Errorf("2nd unit: pushed=%d cost=%d err=%v", pushed, cost, err)
	}
}

func TestMinCostStopsAtCapacity(t *testing.T) {
	g := New(2)
	g.AddArc(0, 1, 2, 5)
	pushed, cost, err := g.MinCostFlow(0, 1, 10)
	if err != nil || pushed != 2 || cost != 10 {
		t.Errorf("pushed=%d cost=%d err=%v", pushed, cost, err)
	}
}

// TestUndirectedEdgeNeverBothDirections: with positive costs, a min-cost
// flow over AddEdge pairs uses at most one direction of each edge — the
// property Definition 2's "does not repeat an edge in either direction"
// computation relies on.
func TestUndirectedEdgeNeverBothDirections(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(5)
		g := New(n + 1)
		type pair struct{ fwd, rev int }
		var pairs []pair
		// Random connected-ish undirected graph.
		for i := 1; i < n; i++ {
			f, r := g.AddEdge(rng.Intn(i), i, 1, 1)
			pairs = append(pairs, pair{f, r})
		}
		for k := 0; k < n; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				f, r := g.AddEdge(a, b, 1, 1)
				pairs = append(pairs, pair{f, r})
			}
		}
		// Sink arcs from two random nodes.
		t1, t2 := rng.Intn(n), rng.Intn(n)
		g.AddArc(t1, n, 1, 0)
		g.AddArc(t2, n, 1, 0)
		src := rng.Intn(n)
		if _, _, err := g.MinCostFlow(src, n, 2); err != nil {
			t.Fatal(err)
		}
		for _, p := range pairs {
			if g.Flow(p.fwd) > 0 && g.Flow(p.rev) > 0 {
				t.Fatalf("trial %d: both directions of an undirected edge carry flow", trial)
			}
		}
	}
}

// TestMinCostEqualsMaxFlowValue: the amount pushed by MinCostFlow matches
// MaxFlow on the same network (cost optimisation must not lose throughput).
func TestMinCostEqualsMaxFlowValue(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(5)
		build := func() *Graph {
			g := New(n)
			r := rand.New(rand.NewSource(int64(trial)))
			for i := 1; i < n; i++ {
				g.AddEdge(r.Intn(i), i, int64(1+r.Intn(2)), int64(1+r.Intn(4)))
			}
			for k := 0; k < n; k++ {
				a, b := r.Intn(n), r.Intn(n)
				if a != b {
					g.AddArc(a, b, int64(1+r.Intn(2)), int64(1+r.Intn(4)))
				}
			}
			return g
		}
		s, d := 0, n-1
		mf := build().MaxFlow(s, d, -1)
		pushed, _, err := build().MinCostFlow(s, d, 1<<30)
		if err != nil {
			t.Fatal(err)
		}
		if pushed != mf {
			t.Fatalf("trial %d: mincost pushed %d, maxflow %d", trial, pushed, mf)
		}
	}
}

func TestAddArcValidation(t *testing.T) {
	g := New(2)
	for _, f := range []func(){
		func() { g.AddArc(-1, 0, 1, 0) },
		func() { g.AddArc(0, 2, 1, 0) },
		func() { g.AddArc(0, 1, -1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
