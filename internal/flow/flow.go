package flow

import (
	"errors"
	"math"
)

// Graph is a directed flow network built incrementally with AddArc.
// The zero value is not usable; create instances with New.
type Graph struct {
	n    int
	to   []int32
	cap  []int64
	cost []int64
	// head[v] lists indices into the arc arrays for arcs leaving v.
	head [][]int32
}

// New returns an empty flow network on n vertices numbered 0..n-1.
func New(n int) *Graph {
	return &Graph{n: n, head: make([][]int32, n)}
}

// N reports the number of vertices.
func (g *Graph) N() int { return g.n }

// AddArc inserts a directed arc u->v with the given capacity and per-unit
// cost, together with its zero-capacity residual reverse arc. It returns the
// index of the forward arc; index^1 is always the reverse arc.
func (g *Graph) AddArc(u, v int, capacity, cost int64) int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic("flow: arc endpoint out of range")
	}
	if capacity < 0 {
		panic("flow: negative capacity")
	}
	i := len(g.to)
	g.to = append(g.to, int32(v), int32(u))
	g.cap = append(g.cap, capacity, 0)
	g.cost = append(g.cost, cost, -cost)
	g.head[u] = append(g.head[u], int32(i))
	g.head[v] = append(g.head[v], int32(i+1))
	return i
}

// AddEdge inserts an undirected unit-ish edge: one arc in each direction,
// each with its own capacity. For positive costs a minimum-cost flow never
// uses both directions of such a pair (the two traversals would cancel with
// a cost saving), which is exactly the "do not repeat an edge in either
// direction" constraint of the paper's Definition 2.
func (g *Graph) AddEdge(u, v int, capacity, cost int64) (fwd, rev int) {
	fwd = g.AddArc(u, v, capacity, cost)
	rev = g.AddArc(v, u, capacity, cost)
	return fwd, rev
}

// Flow reports the flow currently carried by the arc returned by AddArc.
func (g *Graph) Flow(arc int) int64 { return g.cap[arc^1] }

// ErrNegativeCycle is returned when the cost relaxation fails to settle,
// which for the graphs built here indicates a programming error.
var ErrNegativeCycle = errors.New("flow: negative cycle detected")

// MaxFlow pushes as much flow as possible (up to limit; limit<0 means
// unbounded) from s to t, ignoring costs, and returns the amount pushed.
// It uses BFS augmentation (Edmonds-Karp), sufficient at this scale.
func (g *Graph) MaxFlow(s, t int, limit int64) int64 {
	if limit < 0 {
		limit = math.MaxInt64
	}
	var total int64
	prev := make([]int32, g.n)
	queue := make([]int32, 0, g.n)
	for total < limit {
		for i := range prev {
			prev[i] = -1
		}
		prev[s] = -2
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 && prev[t] == -1 {
			u := queue[0]
			queue = queue[1:]
			for _, ai := range g.head[u] {
				v := g.to[ai]
				if g.cap[ai] > 0 && prev[v] == -1 {
					prev[v] = ai
					queue = append(queue, v)
				}
			}
		}
		if prev[t] == -1 {
			break
		}
		// Find bottleneck along the path, then apply it.
		push := limit - total
		for v := int32(t); v != int32(s); {
			ai := prev[v]
			if g.cap[ai] < push {
				push = g.cap[ai]
			}
			v = g.to[ai^1]
		}
		for v := int32(t); v != int32(s); {
			ai := prev[v]
			g.cap[ai] -= push
			g.cap[ai^1] += push
			v = g.to[ai^1]
		}
		total += push
	}
	return total
}

// MinCostFlow pushes up to limit units from s to t along successively
// cheapest augmenting paths and returns the units pushed and their total
// cost. Costs may not be negative on forward arcs.
func (g *Graph) MinCostFlow(s, t int, limit int64) (pushed, cost int64, err error) {
	dist := make([]int64, g.n)
	inQueue := make([]bool, g.n)
	prev := make([]int32, g.n)
	for pushed < limit {
		for i := range dist {
			dist[i] = math.MaxInt64
			prev[i] = -1
		}
		dist[s] = 0
		queue := []int32{int32(s)}
		inQueue[s] = true
		relaxations := 0
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			inQueue[u] = false
			du := dist[u]
			for _, ai := range g.head[u] {
				if g.cap[ai] <= 0 {
					continue
				}
				v := g.to[ai]
				if nd := du + g.cost[ai]; nd < dist[v] {
					dist[v] = nd
					prev[v] = ai
					if !inQueue[v] {
						inQueue[v] = true
						queue = append(queue, v)
					}
					relaxations++
					if relaxations > 4*g.n*len(g.to) {
						return pushed, cost, ErrNegativeCycle
					}
				}
			}
		}
		if dist[t] == math.MaxInt64 {
			break
		}
		push := limit - pushed
		for v := int32(t); v != int32(s); {
			ai := prev[v]
			if g.cap[ai] < push {
				push = g.cap[ai]
			}
			v = g.to[ai^1]
		}
		for v := int32(t); v != int32(s); {
			ai := prev[v]
			g.cap[ai] -= push
			g.cap[ai^1] += push
			v = g.to[ai^1]
		}
		pushed += push
		cost += push * dist[t]
	}
	return pushed, cost, nil
}
