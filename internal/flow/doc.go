// Package flow implements small-scale maximum-flow and minimum-cost-flow
// solvers used by the topology analyses of the SPAA'97 mapping paper.
//
// Lemma 1 of the paper characterises the unmappable region F of a network
// via the Max-Flow Min-Cut theorem ("Let v be a source of flow 2, and
// attach a sink to all hosts ... give all edges capacity 1"), and the probe
// depth bound Q(v) (Definition 2) is the minimum total length of an
// edge-disjoint path pair from the mapper through v and on to a host —
// a 2-unit minimum-cost flow. Networks of interest have at most a few
// thousand nodes, so the classic successive-shortest-path algorithm with an
// SPFA (queue-based Bellman-Ford) inner loop is more than fast enough and
// keeps the implementation dependency-free.
//
// The solvers are deliberately generic — a Graph built with AddArc, MaxFlow
// and MinCostFlow on top — so other capacity arguments can reuse them: the
// topology analyses (internal/topology) drive them for mappability and
// depth bounds, and they pair naturally with the demand matrices of
// internal/workload when reasoning about how much traffic a cut can
// actually carry (the bandwidth budget internal/place prunes against).
package flow
