// Package connet is the concurrent (contended) network transport: multiple
// hosts probe and send application traffic at the same time over one
// topology, with per-directed-link occupancy, blocking, and the Myrinet
// forward-reset timeout. It runs on the desim engine and drives the paper's
// election-mode measurements (Fig 7's second timing column), the §6
// parallel-mapping extension, and the §6 "mapping in the presence of
// application cross-traffic" experiments.
//
// The fidelity level is link reservation: a worm reserves each directed
// link it crosses for its serialisation time starting at the head's arrival
// there. A worm whose head must wait longer than the blocked-port reset
// (55 ms in switch ROMs) is destroyed, like the hardware would. Worm
// self-collision, route failures and silent hosts come from the simnet
// evaluator, so the quiescent semantics embed exactly.
package connet

import (
	"time"

	"sanmap/internal/desim"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// Net is the shared contended network. All endpoints must run as processes
// of the same desim engine; the engine's one-process-at-a-time execution is
// the synchronisation.
type Net struct {
	quiet  *simnet.Net // route evaluation + silent-host bookkeeping
	timing simnet.Timing
	// busyUntil records, per directed link, when its current reservation
	// ends.
	busyUntil map[simnet.DirectedHop]time.Duration
	// Blocked counts worms destroyed by the forward-reset timeout.
	Blocked int64
	// Delayed counts worms that waited for at least one link.
	Delayed int64
	// Worms counts all injected worms (probes, replies and traffic).
	Worms int64
}

// New wraps a topology. The collision model governs worm self-collision
// exactly as in the quiescent transport.
func New(topo *topology.Network, model simnet.Model, timing simnet.Timing) *Net {
	return &Net{
		quiet:     simnet.New(topo, model, timing),
		timing:    timing,
		busyUntil: make(map[simnet.DirectedHop]time.Duration),
	}
}

// Quiet exposes the underlying quiescent evaluator (for responder setup).
func (n *Net) Quiet() *simnet.Net { return n.quiet }

// Topology returns the shared topology.
func (n *Net) Topology() *topology.Network { return n.quiet.Topology() }

// send injects a worm at virtual time t and walks it hop by hop against
// the link reservations. It returns the delivery time and whether the worm
// survived contention. The route-level result (failure modes,
// self-collision) must already have been computed by the caller.
func (n *Net) send(t time.Duration, hops []simnet.DirectedHop, msgBytes int) (time.Duration, bool) {
	n.Worms++
	occupancy := time.Duration(msgBytes) * n.timing.ByteTime
	arr := t
	delayed := false
	for _, hop := range hops {
		if b, ok := n.busyUntil[hop]; ok && b > arr {
			wait := b - arr
			if wait > n.timing.BlockedPortReset {
				n.Blocked++
				return 0, false
			}
			arr = b
			delayed = true
		}
		n.busyUntil[hop] = arr + occupancy
		arr += n.timing.SwitchLatency
	}
	if delayed {
		n.Delayed++
	}
	return arr + occupancy, true
}

// Endpoint binds the contended net to one host and one simulation process.
// It implements simnet.RawProber: each probe advances the process's virtual
// time by the probe's true round-trip (or the response timeout).
type Endpoint struct {
	net   *Net
	host  topology.NodeID
	proc  *desim.Proc
	stats simnet.Stats
	// OnHostProbe, when set, fires for every delivered host probe with the
	// source and destination hosts — the hook the election protocol uses to
	// exchange interface addresses (§4.2: "the participants elect a leader
	// by comparing network interface addresses carried in every message").
	OnHostProbe func(src, dst topology.NodeID)
}

// Endpoint creates a prober for host h bound to process proc.
func (n *Net) Endpoint(h topology.NodeID, proc *desim.Proc) *Endpoint {
	if n.quiet.Topology().KindOf(h) != topology.HostNode {
		panic("connet: endpoint must be a host")
	}
	return &Endpoint{net: n, host: h, proc: proc}
}

// Host returns the bound host.
func (e *Endpoint) Host() topology.NodeID { return e.host }

// LocalHost implements simnet.Prober.
func (e *Endpoint) LocalHost() string { return e.net.quiet.Topology().NameOf(e.host) }

// Clock implements simnet.Prober: the process's virtual time.
func (e *Endpoint) Clock() time.Duration { return e.proc.Now() }

// Stats implements the optional probe-counter interface.
func (e *Endpoint) Stats() simnet.Stats { return e.stats }

// probe is the shared implementation: evaluate the route, contend the worm
// (and the reply worm for host probes), sleep the process accordingly.
func (e *Endpoint) probe(route simnet.Route, wantLoopback bool) (dest topology.NodeID, ok bool) {
	e.proc.Sleep(e.net.timing.HostOverhead)
	res, hops := e.net.quiet.EvalPath(e.host, route)
	now := e.proc.Now()

	fail := func() (topology.NodeID, bool) {
		e.proc.Sleep(e.net.timing.ResponseTimeout)
		return topology.None, false
	}
	if wantLoopback {
		if res.Outcome != simnet.Delivered || res.Dest != e.host {
			return fail()
		}
		at, alive := e.net.send(now, hops, simnet.MessageBytes(len(route)))
		if !alive {
			return fail()
		}
		e.proc.Sleep(at - now)
		return e.host, true
	}
	// Host probe: outbound worm, then a reply over the reversed path.
	if res.Outcome != simnet.Delivered || !e.net.quiet.Responds(res.Dest) {
		return fail()
	}
	at, alive := e.net.send(now, hops, simnet.MessageBytes(len(route)))
	if !alive {
		return fail()
	}
	// The responder daemon turns the message around after its own overhead.
	replyStart := at + e.net.timing.HostOverhead
	back, alive := e.net.send(replyStart, reverseHops(hops), simnet.MessageBytes(len(route)))
	if !alive {
		return fail()
	}
	if e.OnHostProbe != nil {
		e.OnHostProbe(e.host, res.Dest)
	}
	e.proc.Sleep(back - now)
	return res.Dest, true
}

// SwitchProbe implements simnet.Prober.
func (e *Endpoint) SwitchProbe(turns simnet.Route) bool {
	_, ok := e.probe(turns.Loopback(), true)
	e.stats.SwitchProbes++
	if ok {
		e.stats.SwitchHits++
	}
	return ok
}

// HostProbe implements simnet.Prober.
func (e *Endpoint) HostProbe(turns simnet.Route) (string, bool) {
	dest, ok := e.probe(turns, false)
	e.stats.HostProbes++
	if !ok {
		return "", false
	}
	e.stats.HostHits++
	return e.net.quiet.Topology().NameOf(dest), true
}

// RawLoopback implements simnet.RawProber.
func (e *Endpoint) RawLoopback(route simnet.Route) bool {
	_, ok := e.probe(route, true)
	e.stats.SwitchProbes++
	if ok {
		e.stats.SwitchHits++
	}
	return ok
}

// SendWorm injects an application traffic worm of the given payload size
// from the endpoint's host along a precomputed source route. It returns
// whether the worm was delivered (route valid, no contention kill) and
// advances virtual time by the transmission time at the source (cut-through
// injection: the host is busy for the serialisation time, not the full
// transit).
func (e *Endpoint) SendWorm(route simnet.Route, payloadBytes int) bool {
	res, hops := e.net.quiet.EvalPath(e.host, route)
	if res.Outcome != simnet.Delivered {
		return false
	}
	now := e.proc.Now()
	msgBytes := simnet.MessageBytes(len(route)) + payloadBytes
	occupied := time.Duration(msgBytes) * e.net.timing.ByteTime
	_, alive := e.net.send(now, hops, msgBytes)
	e.proc.Sleep(occupied)
	return alive
}

func reverseHops(hops []simnet.DirectedHop) []simnet.DirectedHop {
	out := make([]simnet.DirectedHop, len(hops))
	for i, h := range hops {
		out[len(hops)-1-i] = simnet.DirectedHop{Wire: h.Wire, FromA: !h.FromA}
	}
	return out
}
