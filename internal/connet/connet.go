package connet

import (
	"time"

	"sanmap/internal/desim"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// Net is the shared contended network. All endpoints must run as processes
// of the same desim engine; the engine's one-process-at-a-time execution is
// the synchronisation.
type Net struct {
	quiet  *simnet.Net // route evaluation + silent-host bookkeeping
	timing simnet.Timing
	// busyUntil records, per directed link, when its current reservation
	// ends.
	busyUntil map[simnet.DirectedHop]time.Duration
	// Blocked counts worms destroyed by the forward-reset timeout.
	Blocked int64
	// Delayed counts worms that waited for at least one link.
	Delayed int64
	// Worms counts all injected worms (probes, replies and traffic).
	Worms int64
}

// New wraps a topology. The collision model governs worm self-collision
// exactly as in the quiescent transport.
func New(topo *topology.Network, model simnet.Model, timing simnet.Timing) *Net {
	return &Net{
		quiet:     simnet.New(topo, model, timing),
		timing:    timing,
		busyUntil: make(map[simnet.DirectedHop]time.Duration),
	}
}

// Quiet exposes the underlying quiescent evaluator (for responder setup).
func (n *Net) Quiet() *simnet.Net { return n.quiet }

// Topology returns the shared topology.
func (n *Net) Topology() *topology.Network { return n.quiet.Topology() }

// send injects a worm at virtual time t and walks it hop by hop against
// the link reservations. It returns the delivery time and whether the worm
// survived contention. The route-level result (failure modes,
// self-collision) must already have been computed by the caller.
func (n *Net) send(t time.Duration, hops []simnet.DirectedHop, msgBytes int) (time.Duration, bool) {
	n.Worms++
	occupancy := time.Duration(msgBytes) * n.timing.ByteTime
	arr := t
	delayed := false
	for _, hop := range hops {
		if b, ok := n.busyUntil[hop]; ok && b > arr {
			wait := b - arr
			if wait > n.timing.BlockedPortReset {
				n.Blocked++
				return 0, false
			}
			arr = b
			delayed = true
		}
		n.busyUntil[hop] = arr + occupancy
		arr += n.timing.SwitchLatency
	}
	if delayed {
		n.Delayed++
	}
	return arr + occupancy, true
}

// Endpoint binds the contended net to one host and one simulation process.
// It implements simnet.RawProber: each probe advances the process's virtual
// time by the probe's true round-trip (or the response timeout).
type Endpoint struct {
	net   *Net
	host  topology.NodeID
	proc  *desim.Proc
	stats simnet.Stats
	// OnHostProbe, when set, fires for every delivered host probe with the
	// source and destination hosts — the hook the election protocol uses to
	// exchange interface addresses (§4.2: "the participants elect a leader
	// by comparing network interface addresses carried in every message").
	OnHostProbe func(src, dst topology.NodeID)
}

// Endpoint creates a prober for host h bound to process proc.
func (n *Net) Endpoint(h topology.NodeID, proc *desim.Proc) *Endpoint {
	if n.quiet.Topology().KindOf(h) != topology.HostNode {
		panic("connet: endpoint must be a host")
	}
	return &Endpoint{net: n, host: h, proc: proc}
}

// Host returns the bound host.
func (e *Endpoint) Host() topology.NodeID { return e.host }

// LocalHost implements simnet.Prober.
func (e *Endpoint) LocalHost() string { return e.net.quiet.Topology().NameOf(e.host) }

// Clock implements simnet.Prober: the process's virtual time.
func (e *Endpoint) Clock() time.Duration { return e.proc.Now() }

// MaxPorts reports the fabric's largest port count, so mappers can
// discover the switch radix to plan for.
func (e *Endpoint) MaxPorts() int { return e.net.quiet.Topology().MaxPorts() }

// Stats implements the optional probe-counter interface.
func (e *Endpoint) Stats() simnet.Stats { return e.stats }

// submit is the shared implementation: pay the per-probe host overhead,
// evaluate the route, inject the worm (and the reply worm for host probes)
// into the contended links, and compute the virtual completion time. It
// does NOT sleep until the response: Collect does, which is what lets a
// pipelined caller keep several probes' timeouts in flight while other
// processes' traffic continues to contend the links at the true injection
// times.
func (e *Endpoint) submit(p simnet.Probe) simnet.ProbeResult {
	r := simnet.ProbeResult{Probe: p}
	timeout := e.net.timing.ResponseTimeout
	if p.Timeout > 0 {
		timeout = p.Timeout
	}
	var route simnet.Route
	wantLoopback := false
	switch p.Kind {
	case simnet.ProbeSwitch:
		route = p.Route.Loopback()
		wantLoopback = true
		e.stats.SwitchProbes++
	case simnet.ProbeRaw:
		route = p.Route
		wantLoopback = true
		e.stats.SwitchProbes++
	case simnet.ProbeHost:
		route = p.Route
		e.stats.HostProbes++
	default:
		r.Err = simnet.ErrUnsupported
		r.Done = e.proc.Now()
		return r
	}
	issue := e.proc.Now()
	e.proc.Sleep(e.net.timing.HostOverhead)
	res, hops := e.net.quiet.EvalPath(e.host, route)
	now := e.proc.Now()

	fail := func(err error) simnet.ProbeResult {
		r.Err = err
		r.Done = now + timeout
		r.Latency = r.Done - issue
		return r
	}
	done := time.Duration(0)
	if wantLoopback {
		if res.Outcome != simnet.Delivered || res.Dest != e.host {
			return fail(simnet.ErrTimeout)
		}
		at, alive := e.net.send(now, hops, simnet.MessageBytes(len(route)))
		if !alive {
			return fail(simnet.ErrTimeout)
		}
		done = at
		e.stats.SwitchHits++
	} else {
		// Host probe: outbound worm, then a reply over the reversed path.
		if res.Outcome != simnet.Delivered {
			return fail(simnet.ErrTimeout)
		}
		if !e.net.quiet.Responds(res.Dest) {
			return fail(simnet.ErrNoResponder)
		}
		at, alive := e.net.send(now, hops, simnet.MessageBytes(len(route)))
		if !alive {
			return fail(simnet.ErrTimeout)
		}
		// The responder daemon turns the message around after its own
		// overhead.
		replyStart := at + e.net.timing.HostOverhead
		back, alive := e.net.send(replyStart, reverseHops(hops), simnet.MessageBytes(len(route)))
		if !alive {
			return fail(simnet.ErrTimeout)
		}
		if e.OnHostProbe != nil {
			e.OnHostProbe(e.host, res.Dest)
		}
		done = back
		e.stats.HostHits++
		r.Host = e.net.quiet.Topology().NameOf(res.Dest)
	}
	r.OK = true
	r.Done = done
	r.Latency = r.Done - issue
	return r
}

// Submit implements simnet.AsyncProber. The worm is injected (and contends
// for links) at submission time; the result's Done carries the response's
// arrival, which Collect waits out.
func (e *Endpoint) Submit(p simnet.Probe) <-chan simnet.ProbeResult {
	ch := make(chan simnet.ProbeResult, 1)
	ch <- e.submit(p)
	close(ch)
	return ch
}

// SubmitDirect implements simnet.DirectProber: the injection happens at
// call time exactly as in Submit, without the channel round-trip.
func (e *Endpoint) SubmitDirect(p simnet.Probe) simnet.ProbeResult { return e.submit(p) }

// Collect implements simnet.AsyncProber: sleep the process until the
// result's completion time (no-op if it already passed).
func (e *Endpoint) Collect(r simnet.ProbeResult) {
	if d := r.Done - e.proc.Now(); d > 0 {
		e.proc.Sleep(d)
	}
}

// Probes implements simnet.AsyncProber.
func (e *Endpoint) Probes() simnet.ProbeCaps {
	return simnet.CapHost | simnet.CapSwitch | simnet.CapRaw
}

// Sleep implements simnet.Sleeper: retry-backoff waits advance the bound
// process's virtual clock, so other processes' traffic keeps flowing while
// this endpoint backs off.
func (e *Endpoint) Sleep(d time.Duration) {
	if d > 0 {
		e.proc.Sleep(d)
	}
}

// SwitchProbe implements simnet.Prober.
func (e *Endpoint) SwitchProbe(turns simnet.Route) bool {
	r := e.submit(simnet.Probe{Kind: simnet.ProbeSwitch, Route: turns})
	e.Collect(r)
	return r.OK
}

// HostProbe implements simnet.Prober.
func (e *Endpoint) HostProbe(turns simnet.Route) (string, bool) {
	r := e.submit(simnet.Probe{Kind: simnet.ProbeHost, Route: turns})
	e.Collect(r)
	return r.Host, r.OK
}

// RawLoopback implements simnet.RawProber.
func (e *Endpoint) RawLoopback(route simnet.Route) bool {
	r := e.submit(simnet.Probe{Kind: simnet.ProbeRaw, Route: route})
	e.Collect(r)
	return r.OK
}

// SendWorm injects an application traffic worm of the given payload size
// from the endpoint's host along a precomputed source route. It returns
// whether the worm was delivered (route valid, no contention kill) and
// advances virtual time by the transmission time at the source (cut-through
// injection: the host is busy for the serialisation time, not the full
// transit).
func (e *Endpoint) SendWorm(route simnet.Route, payloadBytes int) bool {
	res, hops := e.net.quiet.EvalPath(e.host, route)
	if res.Outcome != simnet.Delivered {
		return false
	}
	now := e.proc.Now()
	msgBytes := simnet.MessageBytes(len(route)) + payloadBytes
	occupied := time.Duration(msgBytes) * e.net.timing.ByteTime
	_, alive := e.net.send(now, hops, msgBytes)
	e.proc.Sleep(occupied)
	return alive
}

func reverseHops(hops []simnet.DirectedHop) []simnet.DirectedHop {
	out := make([]simnet.DirectedHop, len(hops))
	for i, h := range hops {
		out[len(hops)-1-i] = simnet.DirectedHop{Wire: h.Wire, FromA: !h.FromA}
	}
	return out
}
