package connet

import (
	"testing"
	"time"

	"sanmap/internal/desim"
	"sanmap/internal/isomorph"
	"sanmap/internal/mapper"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

func lineNet() (*topology.Network, topology.NodeID, topology.NodeID) {
	n := &topology.Network{}
	s0 := n.AddSwitch("s0")
	s1 := n.AddSwitch("s1")
	h0 := n.AddHost("h0")
	h1 := n.AddHost("h1")
	n.MustConnect(h0, 0, s0, 2)
	n.MustConnect(s0, 5, s1, 3)
	n.MustConnect(s1, 6, h1, 0)
	return n, h0, h1
}

// TestProbesMatchQuiescentSemantics: with a single prober and no traffic,
// the contended transport must answer exactly like the quiescent one.
func TestProbesMatchQuiescentSemantics(t *testing.T) {
	net, h0, _ := lineNet()
	eng := desim.New()
	cn := New(net, simnet.CircuitModel, simnet.DefaultTiming())
	var gotHost string
	var okHost, okSwitch, badProbe bool
	eng.Spawn("m", func(p *desim.Proc) {
		ep := cn.Endpoint(h0, p)
		gotHost, okHost = ep.HostProbe(simnet.Route{3, 3})
		okSwitch = ep.SwitchProbe(simnet.Route{3})
		_, badProbe = ep.HostProbe(simnet.Route{1})
	})
	eng.Run()
	if !okHost || gotHost != "h1" {
		t.Errorf("host probe: %q %v", gotHost, okHost)
	}
	if !okSwitch {
		t.Error("switch probe failed")
	}
	if badProbe {
		t.Error("dead-end probe answered")
	}
}

// TestProbeAdvancesVirtualTime: timeouts cost more than hits, as in the
// quiescent transport.
func TestProbeAdvancesVirtualTime(t *testing.T) {
	net, h0, _ := lineNet()
	timing := simnet.DefaultTiming()
	measure := func(route simnet.Route) time.Duration {
		eng := desim.New()
		cn := New(net, simnet.CircuitModel, timing)
		var took time.Duration
		eng.Spawn("m", func(p *desim.Proc) {
			ep := cn.Endpoint(h0, p)
			ep.HostProbe(route)
			took = p.Now()
		})
		eng.Run()
		return took
	}
	hit := measure(simnet.Route{3, 3})
	miss := measure(simnet.Route{1})
	if hit >= miss {
		t.Errorf("hit %v should cost less than miss %v", hit, miss)
	}
	if miss != timing.HostOverhead+timing.ResponseTimeout {
		t.Errorf("miss cost %v", miss)
	}
}

// TestContentionDelays: two senders pushing worms over the same directed
// link serialise on it; the pair takes longer than one sender alone.
// (Opposite directions of a link are independent, as in a real crossbar.)
func TestContentionDelays(t *testing.T) {
	net, h0, h1 := lineNet()
	// Second host on s0 whose worms share the s0->s1 directed link with h0.
	h2 := net.AddHost("h2")
	net.MustConnect(h2, 0, net.Lookup("s0"), 1)

	run := func(both bool) *Net {
		eng := desim.New()
		cn := New(net, simnet.CircuitModel, simnet.DefaultTiming())
		worker := func(h topology.NodeID, route simnet.Route) func(*desim.Proc) {
			return func(p *desim.Proc) {
				ep := cn.Endpoint(h, p)
				for i := 0; i < 50; i++ {
					ep.SendWorm(route, 4096)
				}
			}
		}
		eng.Spawn("a", worker(h0, simnet.Route{3, 3})) // s0@2 -> s1 -> h1
		if both {
			eng.Spawn("b", worker(h2, simnet.Route{4, 3})) // s0@1 -> s1 -> h1
		}
		eng.Run()
		return cn
	}
	if solo := run(false); solo.Delayed != 0 {
		t.Errorf("solo back-to-back worms should never queue, Delayed=%d", solo.Delayed)
	}
	duo := run(true)
	if duo.Delayed == 0 && duo.Blocked == 0 {
		t.Errorf("contending senders never queued: %+v", *duo)
	}
	_ = h1
}

// TestMappingOverContendedTransport: a full Berkeley run over connet (no
// traffic) reproduces the quiescent result.
func TestMappingOverContendedTransport(t *testing.T) {
	net, h0, _ := lineNet()
	eng := desim.New()
	cn := New(net, simnet.CircuitModel, simnet.DefaultTiming())
	var m *mapper.Map
	var err error
	eng.Spawn("mapper", func(p *desim.Proc) {
		m, err = mapper.Run(cn.Endpoint(h0, p), mapper.WithDepth(net.DepthBound(h0)))
	})
	eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if e := isomorph.MustEqualCore(m.Network, net); e != nil {
		t.Fatal(e)
	}
	if cn.Worms == 0 {
		t.Error("no worms accounted")
	}
}
