// Package connet is the concurrent (contended) network transport: multiple
// hosts probe and send application traffic at the same time over one
// topology, with per-directed-link occupancy, blocking, and the Myrinet
// forward-reset timeout. It runs on the desim engine and drives the paper's
// election-mode measurements (Fig 7's second timing column), the §6
// parallel-mapping extension, and the §6 "mapping in the presence of
// application cross-traffic" experiments.
//
// The fidelity level is link reservation: a worm reserves each directed
// link it crosses for its serialisation time starting at the head's arrival
// there. A worm whose head must wait longer than the blocked-port reset
// (55 ms in switch ROMs) is destroyed, like the hardware would — but the
// reservations its earlier hops already placed persist, so a killed worm
// still congests the prefix of its path. Worm self-collision, route
// failures and silent hosts come from the simnet evaluator, so the
// quiescent semantics embed exactly.
//
// Endpoints carry Spawn/Send/Recv process-level primitives; SpawnPlan
// replays an internal/workload traffic plan through them. When only
// aggregate route quality matters — millions of worms, no interacting
// processes — internal/loadsim reimplements this package's reservation
// rule on flat arrays; its tests pin the two transports to identical
// per-worm arithmetic.
package connet
