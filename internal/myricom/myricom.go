// Package myricom implements the Myricom mapping algorithm of §4 of the
// SPAA'97 paper — the baseline the Berkeley algorithm is evaluated against.
//
// The Myricom algorithm "aggressively looks for replicates as it explores
// the network": it keeps a frontier of candidate switches, and before
// exploring a candidate it sends *comparison probes* of the form
// T1..Tn X −Sm..−S1 against every already-explored switch B (route S): the
// message reaches the candidate over T, takes one spanning turn X, and if
// that turn lands on the port B was entered on over S, the reversed S route
// carries the message home. A returned message proves candidate == B, and X
// reveals the offset between the two switches' relative port frames. New
// switches are explored with up to 14 loop-cable probes (T X −X −T,
// catching loopback plugs), then host probes, then switch probes — the
// per-category message accounting of Fig 10 (loop / host / sw / comp).
// Unlike the Berkeley algorithm's lazy deduction, "merging two switches
// never produces new ones to merge".
package myricom

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// Stats counts messages by the categories of Fig 10.
type Stats struct {
	Loop    int64 // loop-cable probes
	Host    int64 // host probes
	Switch  int64 // switch (loopback) probes
	Compare int64 // switch-disambiguation comparison probes
	Matches int64 // comparisons that identified a replicate
	Elapsed time.Duration
	// Pipeline carries the probe-engine counters when Config.Pipeline
	// activated the pipelined explore path.
	Pipeline simnet.WindowStats
}

// Total is the total message count, the paper's comparison metric.
func (s Stats) Total() int64 { return s.Loop + s.Host + s.Switch + s.Compare }

// Config parameterises a run.
type Config struct {
	// Depth bounds candidate route lengths, like the Berkeley SearchDepth.
	Depth int
	// CompareWindow restricts comparison probes to explored switches whose
	// route length differs by at most this much from the candidate's (one
	// of the paper's "variety of heuristics to reduce the total number of
	// probes"; BFS order makes same-depth collisions overwhelmingly
	// likely). Negative disables the heuristic (compare against all).
	CompareWindow int
	// MaxCandidates aborts pathological runs (0 = default 1<<16).
	MaxCandidates int
	// Cancel, when non-nil, is polled between candidates; returning true
	// aborts the run with ErrCanceled (election-mode passivation, §4.2).
	Cancel func() bool
	// Pipeline configures the pipelined probe engine. With Window > 1 and a
	// transport implementing simnet.AsyncProber with raw/host/switch
	// capability, each switch exploration issues its probes through a
	// simnet.ProbeWindow in three phases (loop-cable probes for every turn,
	// host probes for the loop misses, switch probes for the host misses) —
	// exactly the probes the serial scan sends, so the map and the Fig 10
	// message counts are unchanged; only the virtual time shrinks.
	Pipeline simnet.WindowConfig
}

// ErrCanceled reports a run aborted by Config.Cancel.
var ErrCanceled = errors.New("myricom: run canceled")

// DefaultConfig mirrors the paper's setup. The comparison window is
// disabled by default: a window can miss replicates reached over routes of
// different lengths (irregular fat trees have them), producing duplicate
// switches; the O(N²)-with-large-constant comparison bill that results is
// exactly the behaviour §4.2 describes.
func DefaultConfig(depth int) Config {
	return Config{Depth: depth, CompareWindow: -1, MaxCandidates: 1 << 16}
}

// Map is the result of a Myricom mapping run.
type Map struct {
	Network *topology.Network
	Mapper  topology.NodeID
	Stats   Stats
	// Reflectors lists loopback plugs found, as ends in Network.
	Reflectors []topology.End
}

// swRecord is an explored switch. Frame index 0 is the entry port of its
// exploration route.
type swRecord struct {
	id     int
	route  simnet.Route
	hostAt map[int]string
	loopAt map[int]bool
	usedAt map[int]bool // any occupied frame index (for window/export)
	// swCandAt marks frame indices where this switch's exploration saw
	// another switch. A replicate candidate necessarily enters through one
	// of these ports, which is what lets compare() prune its X scan.
	swCandAt map[int]bool
}

func (r *swRecord) use(idx int) { r.usedAt[idx] = true }

// swEdge is a resolved switch-to-switch cable with both frame indices.
type swEdge struct {
	a  *swRecord
	ai int
	b  *swRecord
	bi int
}

// candidate is a frontier entry: a probe route believed to reach a switch,
// hanging off parent's frame index parentIdx.
type candidate struct {
	route     simnet.Route
	parent    *swRecord
	parentIdx int
}

type runner struct {
	p     simnet.RawProber
	cfg   Config
	stats Stats
	done  []*swRecord
	edges []swEdge
	win   *simnet.ProbeWindow
}

// Run executes the Myricom algorithm.
func Run(p simnet.RawProber, cfg Config) (*Map, error) {
	if cfg.Depth < 1 {
		return nil, fmt.Errorf("myricom: Depth must be >= 1")
	}
	if cfg.MaxCandidates == 0 {
		cfg.MaxCandidates = 1 << 16
	}
	r := &runner{p: p, cfg: cfg}
	if cfg.Pipeline.Window > 1 {
		if ap, ok := p.(simnet.AsyncProber); ok &&
			ap.Probes().Has(simnet.CapRaw|simnet.CapHost|simnet.CapSwitch) {
			r.win = simnet.NewProbeWindow(ap, cfg.Pipeline)
		}
	}
	start := p.Clock()

	frontier := []candidate{{route: simnet.Route{}}}
	popped := 0
	for len(frontier) > 0 {
		if cfg.Cancel != nil && cfg.Cancel() {
			return nil, ErrCanceled
		}
		c := frontier[0]
		frontier = frontier[1:]
		if popped++; popped > cfg.MaxCandidates {
			return nil, fmt.Errorf("myricom: exceeded MaxCandidates")
		}
		if match, off := r.compare(c); match != nil {
			// Candidate == match, entered on match's frame index off.
			if c.parent != nil {
				r.addEdge(c.parent, c.parentIdx, match, off)
			}
			continue
		}
		rec := &swRecord{id: len(r.done), route: c.route,
			hostAt: make(map[int]string), loopAt: make(map[int]bool),
			usedAt: make(map[int]bool), swCandAt: make(map[int]bool)}
		r.done = append(r.done, rec)
		if c.parent != nil {
			r.addEdge(c.parent, c.parentIdx, rec, 0)
			rec.swCandAt[0] = true // the entry cable leads to the parent switch
		} else {
			// The first switch's entry port is the mapper's own cable; the
			// mapper knows its own identity without probing.
			rec.hostAt[0] = p.LocalHost()
			rec.use(0)
		}
		frontier = append(frontier, r.explore(rec)...)
	}

	r.stats.Elapsed = p.Clock() - start
	if r.win != nil {
		r.stats.Pipeline = r.win.Stats()
	}
	return r.export()
}

// addEdge records a switch-switch cable, deduplicating rediscoveries from
// the far side.
func (r *runner) addEdge(a *swRecord, ai int, b *swRecord, bi int) {
	if a.id > b.id || (a.id == b.id && ai > bi) {
		a, ai, b, bi = b, bi, a, ai
	}
	for _, e := range r.edges {
		if e.a == a && e.ai == ai && e.b == b && e.bi == bi {
			return
		}
	}
	r.edges = append(r.edges, swEdge{a: a, ai: ai, b: b, bi: bi})
	a.use(ai)
	b.use(bi)
}

// compare sends comparison probes testing the candidate against explored
// switches (most recent first, within the depth window); on a hit it
// returns the match and the candidate's entry index in the match's frame.
//
// Derivation of the offset: the probe exits the candidate's entry port p
// with turn x; success requires the port p+x to be the very port the match
// was entered on over S (call it q), because only then does −Sm..−S1
// retrace S. So p = q − x: in the match's frame (where q is index 0) the
// candidate's entry sits at index −x.
func (r *runner) compare(c candidate) (*swRecord, int) {
	if c.parent == nil {
		return nil, 0 // the first switch has nothing to compare against
	}
	// Scan explored switches nearest in route length first (BFS order makes
	// same-depth replicates overwhelmingly likely), most recent first
	// within a length class.
	order := make([]*swRecord, 0, len(r.done))
	for i := len(r.done) - 1; i >= 0; i-- {
		order = append(order, r.done[i])
	}
	sortByLenDiff(order, len(c.route))
	for _, b := range order {
		if r.cfg.CompareWindow >= 0 {
			d := len(c.route) - len(b.route)
			if d < -r.cfg.CompareWindow || d > r.cfg.CompareWindow {
				continue
			}
		}
		rev := b.route.Reversed()
		for x := simnet.Turn(-simnet.MaxTurn); x <= simnet.MaxTurn; x++ {
			if x == 0 {
				continue
			}
			// X-scan pruning: success means the candidate entered b on
			// frame index -x, and a replicate's entry port must be one
			// where b's own exploration saw a switch. Ports b never saw a
			// switch on cannot match, so their probes are skipped.
			if !b.swCandAt[-int(x)] {
				continue
			}
			probe := make(simnet.Route, 0, len(c.route)+1+len(rev))
			probe = append(probe, c.route...)
			probe = append(probe, x)
			probe = append(probe, rev...)
			r.stats.Compare++
			if r.p.RawLoopback(probe) {
				r.stats.Matches++
				return b, -int(x)
			}
		}
	}
	return nil, 0
}

// sortByLenDiff stably sorts records by |len(route) − n| ascending.
func sortByLenDiff(recs []*swRecord, n int) {
	abs := func(x int) int {
		if x < 0 {
			return -x
		}
		return x
	}
	sort.SliceStable(recs, func(i, j int) bool {
		return abs(len(recs[i].route)-n) < abs(len(recs[j].route)-n)
	})
}

// preProbe holds the prefetched responses for one turn of an exploration.
type preProbe struct {
	loop               bool
	host               string
	hostOK             bool
	sw                 bool
	hostDone, swMapped bool
}

// prefetchExplore issues one exploration's probes through the pipelined
// window in three phases mirroring the serial short-circuit order: the
// loop-cable probe for every turn, host probes for the loop misses, switch
// probes for the host misses. The serial scan's decisions depend only on
// each turn's own responses, so this is exactly the probe set the serial
// loop sends — same map, same Fig 10 counts, overlapped timeouts.
func (r *runner) prefetchExplore(rec *swRecord, turns []simnet.Turn,
	loopRoute func(simnet.Turn) simnet.Route) map[simnet.Turn]*preProbe {
	if r.win == nil {
		return nil
	}
	pre := make(map[simnet.Turn]*preProbe, len(turns))
	batch := make([]simnet.Probe, len(turns))
	for i, t := range turns {
		batch[i] = simnet.Probe{Kind: simnet.ProbeRaw, Route: loopRoute(t)}
	}
	var hostTurns []simnet.Turn
	for i, res := range r.win.Do(batch) {
		pre[turns[i]] = &preProbe{loop: res.OK}
		if !res.OK {
			hostTurns = append(hostTurns, turns[i])
		}
	}
	batch = batch[:0]
	for _, t := range hostTurns {
		batch = append(batch, simnet.Probe{Kind: simnet.ProbeHost, Route: rec.route.Extend(t)})
	}
	var swTurns []simnet.Turn
	for i, res := range r.win.Do(batch) {
		p := pre[hostTurns[i]]
		p.hostDone = true
		p.hostOK, p.host = res.OK, res.Host
		if !res.OK {
			swTurns = append(swTurns, hostTurns[i])
		}
	}
	batch = batch[:0]
	for _, t := range swTurns {
		batch = append(batch, simnet.Probe{Kind: simnet.ProbeSwitch, Route: rec.route.Extend(t)})
	}
	for i, res := range r.win.Do(batch) {
		p := pre[swTurns[i]]
		p.swMapped = true
		p.sw = res.OK
	}
	return pre
}

// explore probes all ports of a newly-accepted switch: loop-cable probes,
// host probes, then switch probes for the remainder (up to 14 each, §4.2's
// message accounting). With the pipelined engine active, the probes are
// prefetched through the window and the loop below only applies them.
func (r *runner) explore(rec *swRecord) []candidate {
	var out []candidate
	if len(rec.route) >= r.cfg.Depth {
		return nil
	}
	revT := rec.route.Reversed()
	// Loop-cable probe: T t −t −T. A loopback plug reflects the message
	// straight back in; −t returns it to the entry port; −T walks home.
	loopRoute := func(t simnet.Turn) simnet.Route {
		probe := make(simnet.Route, 0, len(rec.route)*2+2)
		probe = append(probe, rec.route...)
		probe = append(probe, t, -t)
		probe = append(probe, revT...)
		return probe
	}
	turns := make([]simnet.Turn, 0, 2*simnet.MaxTurn)
	for t := simnet.Turn(-simnet.MaxTurn); t <= simnet.MaxTurn; t++ {
		if t != 0 {
			turns = append(turns, t)
		}
	}
	pre := r.prefetchExplore(rec, turns, loopRoute)
	for _, t := range turns {
		idx := int(t)
		p := pre[t]
		r.stats.Loop++
		loopHit := false
		if p != nil {
			loopHit = p.loop
		} else {
			loopHit = r.p.RawLoopback(loopRoute(t))
		}
		if loopHit {
			rec.loopAt[idx] = true
			rec.use(idx)
			continue
		}
		r.stats.Host++
		var host string
		var hostHit bool
		if p != nil && p.hostDone {
			host, hostHit = p.host, p.hostOK
		} else {
			host, hostHit = r.p.HostProbe(rec.route.Extend(t))
		}
		if hostHit {
			rec.hostAt[idx] = host
			rec.use(idx)
			continue
		}
		r.stats.Switch++
		swHit := false
		if p != nil && p.swMapped {
			swHit = p.sw
		} else {
			swHit = r.p.SwitchProbe(rec.route.Extend(t))
		}
		if swHit {
			rec.use(idx)
			rec.swCandAt[idx] = true
			out = append(out, candidate{route: rec.route.Extend(t), parent: rec, parentIdx: idx})
		}
	}
	return out
}

// export assembles the final map, normalising each switch's frame indices
// into concrete ports 0..7 (any offset inside the feasible window yields
// identical relative routes).
func (r *runner) export() (*Map, error) {
	net := &topology.Network{}
	ids := make([]topology.NodeID, len(r.done))
	base := make([]int, len(r.done))
	for i, rec := range r.done {
		ids[i] = net.AddSwitch(fmt.Sprintf("y%d", i))
		minIdx := 0
		for idx := range rec.usedAt {
			if idx < minIdx {
				minIdx = idx
			}
		}
		base[i] = -minIdx
	}
	m := &Map{Network: net}
	hostIDs := make(map[string]topology.NodeID)
	for i, rec := range r.done {
		for idx, host := range rec.hostAt {
			h, ok := hostIDs[host]
			if !ok {
				h = net.AddHost(host)
				hostIDs[host] = h
			}
			if _, err := net.Connect(ids[i], idx+base[i], h, topology.HostPort); err != nil {
				return nil, fmt.Errorf("myricom: export host edge: %w", err)
			}
		}
		for idx := range rec.loopAt {
			if err := net.AddReflector(ids[i], idx+base[i]); err != nil {
				return nil, fmt.Errorf("myricom: export reflector: %w", err)
			}
			m.Reflectors = append(m.Reflectors, topology.End{Node: ids[i], Port: idx + base[i]})
		}
	}
	for _, e := range r.edges {
		if _, err := net.Connect(ids[e.a.id], e.ai+base[e.a.id], ids[e.b.id], e.bi+base[e.b.id]); err != nil {
			return nil, fmt.Errorf("myricom: export switch edge: %w", err)
		}
	}
	m.Stats = r.stats
	mapperID := net.Lookup(r.p.LocalHost())
	if mapperID == topology.None {
		return nil, fmt.Errorf("myricom: mapping host missing from its own map")
	}
	m.Mapper = mapperID
	return m, nil
}
