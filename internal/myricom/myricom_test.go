package myricom

import (
	"math/rand"
	"testing"

	"sanmap/internal/cluster"
	"sanmap/internal/isomorph"
	"sanmap/internal/mapper"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// runOn maps net from its first host (or the given one) under the packet
// model — the regime §4's algorithm is designed for.
func runOn(t *testing.T, net *topology.Network, h0 topology.NodeID, model simnet.Model) *Map {
	t.Helper()
	sn := simnet.New(net, model, simnet.DefaultTiming())
	m, err := Run(sn.Endpoint(h0), DefaultConfig(net.DepthBound(h0)))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := m.Network.Validate(); err != nil {
		t.Fatalf("invalid map: %v", err)
	}
	return m
}

func TestMyricomBasicTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	nets := map[string]*topology.Network{
		"line": topology.MustLine(4, 2, rng),
		"star": topology.MustStar(4, 3, rng),
		"ring": topology.MustRing(5, 2, rng),
	}
	for name, net := range nets {
		net := net
		t.Run(name, func(t *testing.T) {
			m := runOn(t, net, net.Hosts()[0], simnet.PacketModel)
			if err := isomorph.MustEqualCore(m.Network, net); err != nil {
				t.Fatalf("%v\nactual: %v\nmapped: %v", err, net, m.Network)
			}
		})
	}
}

func TestMyricomClusterC(t *testing.T) {
	sys := cluster.CConfig(nil)
	m := runOn(t, sys.Net, sys.Mapper(), simnet.PacketModel)
	if err := isomorph.MustEqualCore(m.Network, sys.Net); err != nil {
		t.Fatalf("%v\nactual: %v\nmapped: %v", err, sys.Net, m.Network)
	}
	// Fig 10 shape: comparisons dominate the message budget.
	s := m.Stats
	if s.Compare < s.Loop || s.Compare < s.Switch {
		t.Errorf("expected comparison probes to dominate: %+v", s)
	}
}

// TestMyricomLoopbackPlugs: the loop-probe machinery must find loopback
// plugs and place them in the map.
func TestMyricomLoopbackPlugs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := topology.MustLine(3, 2, rng)
	sw := net.Switches()
	if err := net.AddReflector(sw[1], net.FreePort(sw[1])); err != nil {
		t.Fatal(err)
	}
	m := runOn(t, net, net.Hosts()[0], simnet.PacketModel)
	if len(m.Reflectors) != 1 {
		t.Fatalf("found %d reflectors, want 1 (map %v)", len(m.Reflectors), m.Network)
	}
	if got := len(m.Network.Reflectors()); got != 1 {
		t.Errorf("map carries %d reflectors, want 1", got)
	}
}

// TestMyricomVsBerkeleyMessages reproduces the core Fig 10 comparison: on
// the same cluster configuration, the Myricom algorithm sends several times
// the messages of the Berkeley algorithm.
func TestMyricomVsBerkeleyMessages(t *testing.T) {
	sys := cluster.CConfig(nil)
	h0 := sys.Mapper()
	depth := sys.Net.DepthBound(h0)

	snB := simnet.NewDefault(sys.Net)
	berk, err := mapper.Run(snB.Endpoint(h0), mapper.WithDepth(depth))
	if err != nil {
		t.Fatalf("berkeley: %v", err)
	}
	snM := simnet.New(sys.Net, simnet.PacketModel, simnet.DefaultTiming())
	myri, err := Run(snM.Endpoint(h0), DefaultConfig(depth))
	if err != nil {
		t.Fatalf("myricom: %v", err)
	}
	bTotal := berk.Stats.Probes.TotalProbes()
	mTotal := myri.Stats.Total()
	if mTotal <= bTotal {
		t.Errorf("expected Myricom to send more messages: myricom=%d berkeley=%d", mTotal, bTotal)
	}
	ratio := float64(mTotal) / float64(bTotal)
	if ratio < 1.5 || ratio > 20 {
		t.Errorf("message ratio %.1f outside plausible band (paper: 3.2)", ratio)
	}
	t.Logf("C: myricom=%d berkeley=%d ratio=%.1f (paper: 1449/450=3.2)", mTotal, bTotal, ratio)
	t.Logf("myricom categories: loop=%d host=%d sw=%d comp=%d",
		myri.Stats.Loop, myri.Stats.Host, myri.Stats.Switch, myri.Stats.Compare)
}

// TestMyricomSelfLoopCable: a two-port cable on one switch is discovered as
// a candidate that comparison probes resolve to the same switch.
func TestMyricomSelfLoopCable(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := topology.MustLine(3, 2, rng)
	sw := net.Switches()
	if _, _, _, err := net.ConnectFree(sw[1], sw[1]); err != nil {
		t.Fatal(err)
	}
	m := runOn(t, net, net.Hosts()[0], simnet.PacketModel)
	if err := isomorph.MustEqualCore(m.Network, net); err != nil {
		t.Fatalf("%v\nactual: %v\nmapped: %v", err, net, m.Network)
	}
}

// TestMyricomAllCollisionModels: on the leveled NOW fat tree the algorithm
// maps correctly under every worm semantics — comparison probes retrace
// explored routes in reverse, which even the circuit model permits (only
// same-direction reuse blocks).
func TestMyricomAllCollisionModels(t *testing.T) {
	sys := cluster.CConfig(nil)
	for name, model := range map[string]simnet.Model{
		"packet":     simnet.PacketModel,
		"cutthrough": simnet.CutThroughModel,
		"circuit":    simnet.CircuitModel,
	} {
		m := runOn(t, sys.Net, sys.Mapper(), model)
		if err := isomorph.MustEqualCore(m.Network, sys.Net); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestMyricomMapsF: the Myricom algorithm has no prune stage, so it maps
// hostless switch-bridge regions (F) that Theorem 1 excludes from the
// Berkeley algorithm's output — its map is isomorphic to all of N, a
// genuine behavioural difference between the two mappers.
func TestMyricomMapsF(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	net := topology.MustStar(3, 2, rng)
	topology.WithTail(net, net.Switches()[1], 2, rng)
	if len(net.F()) != 2 {
		t.Fatalf("|F| = %d, want 2", len(net.F()))
	}
	m := runOn(t, net, net.Hosts()[0], simnet.PacketModel)
	// Isomorphic to the FULL network, including the tail.
	if ok, reason := isomorph.Check(m.Network, net); !ok {
		t.Fatalf("myricom map should include F: %s\nactual: %v\nmapped: %v",
			reason, net, m.Network)
	}
	// ...whereas the core comparison (what Berkeley produces) must differ.
	core, _ := net.Core()
	if ok, _ := isomorph.Check(m.Network, core); ok {
		t.Fatal("myricom map unexpectedly equals the pruned core")
	}
}
