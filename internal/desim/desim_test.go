package desim

import (
	"testing"
	"time"
)

// TestDeterministicInterleave: processes interleave strictly by virtual
// time with FIFO tie-breaking, independent of goroutine scheduling.
func TestDeterministicInterleave(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		e := New()
		var log []string
		e.Spawn("a", func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Sleep(10 * time.Millisecond)
				log = append(log, "a")
			}
		})
		e.Spawn("b", func(p *Proc) {
			for i := 0; i < 2; i++ {
				p.Sleep(15 * time.Millisecond)
				log = append(log, "b")
			}
		})
		end := e.Run()
		// a wakes at 10, 20, 30; b at 15, 30. The t=30 tie goes to b: its
		// wakeup was enqueued at t=15, before a's third at t=20.
		want := []string{"a", "b", "a", "b", "a"}
		if len(log) != len(want) {
			t.Fatalf("trial %d: log %v", trial, log)
		}
		for i := range want {
			if log[i] != want[i] {
				t.Fatalf("trial %d: log %v, want %v", trial, log, want)
			}
		}
		if end != 30*time.Millisecond {
			t.Fatalf("trial %d: end time %v", trial, end)
		}
	}
}

// TestSharedStateNoRaces: only one process runs at a time, so unsynchronised
// shared counters stay consistent (run with -race).
func TestSharedStateNoRaces(t *testing.T) {
	e := New()
	counter := 0
	for i := 0; i < 20; i++ {
		e.Spawn("w", func(p *Proc) {
			for j := 0; j < 50; j++ {
				v := counter
				p.Sleep(time.Duration(j%3) * time.Microsecond)
				counter = v + 1
			}
		})
	}
	e.Run()
	// Interleaved read-sleep-write loses increments deterministically; the
	// point here is only that -race stays silent and the run terminates.
	if counter == 0 {
		t.Fatal("no process ran")
	}
}

// TestSpawnAt and nested spawn.
func TestSpawnAt(t *testing.T) {
	e := New()
	var order []string
	e.SpawnAt(5*time.Millisecond, "late", func(p *Proc) {
		order = append(order, "late")
	})
	e.Spawn("early", func(p *Proc) {
		order = append(order, "early")
		p.eng.Spawn("child", func(q *Proc) {
			q.Sleep(time.Millisecond)
			order = append(order, "child")
		})
	})
	e.Run()
	want := []string{"early", "child", "late"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

// TestKill: a killed sleeping process never runs again.
func TestKill(t *testing.T) {
	e := New()
	var victim *Proc
	ran := false
	e.Spawn("victim", func(p *Proc) {
		victim = p
		p.Sleep(10 * time.Millisecond)
		ran = true
	})
	e.Spawn("killer", func(p *Proc) {
		p.Sleep(time.Millisecond)
		victim.Kill()
	})
	e.Run()
	if ran {
		t.Fatal("killed process ran")
	}
}

// TestZeroAndNegativeSleep.
func TestZeroAndNegativeSleep(t *testing.T) {
	e := New()
	n := 0
	e.Spawn("z", func(p *Proc) {
		p.Sleep(0)
		n++
		p.Sleep(-time.Second)
		n++
	})
	if end := e.Run(); end != 0 {
		t.Fatalf("end %v, want 0", end)
	}
	if n != 2 {
		t.Fatalf("n=%d", n)
	}
}
