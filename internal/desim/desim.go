// Package desim is a small deterministic discrete-event simulation engine.
// Each simulated process is a goroutine; the engine runs exactly one
// process at a time and hands control between them in virtual-time order,
// so shared state needs no locking and runs are reproducible. It drives the
// paper's concurrent-mapping experiments: the election operational mode
// (§4.2), multi-mapper parallel mapping (§6), and mapping under application
// cross-traffic (§6).
package desim

import (
	"fmt"
	"time"

	"sanmap/internal/eventq"
)

// Engine schedules processes over virtual time.
type Engine struct {
	now    time.Duration
	events *eventq.Heap[event]
	seq    int64
	// yield receives a token whenever the running process blocks or ends.
	yield   chan struct{}
	running int // live processes
	started bool
}

// New returns an idle engine at time zero.
func New() *Engine {
	return &Engine{yield: make(chan struct{}), events: eventq.New(eventLess)}
}

// Proc is the handle a process uses to interact with virtual time.
type Proc struct {
	eng  *Engine
	name string
	wake chan struct{}
	dead bool
}

// Name returns the process name.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.eng.now }

type event struct {
	at    time.Duration
	seq   int64
	p     *Proc
	start func(*Proc) // non-nil for process launches
}

// eventLess orders by virtual time, sequence number breaking ties so equal
// timestamps dispatch in scheduling order.
func eventLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) push(ev event) {
	ev.seq = e.seq
	e.seq++
	e.events.Push(ev)
}

// Spawn registers a process to start at the current virtual time (or at
// Run's start). Spawning after Run has returned is an error.
func (e *Engine) Spawn(name string, f func(*Proc)) {
	p := &Proc{eng: e, name: name, wake: make(chan struct{})}
	e.running++
	// Each live process owns at most one pending event, so the live count
	// is the queue's high-water mark; Reserve's doubling growth keeps
	// per-spawn tracking O(n) overall.
	e.events.Reserve(e.running)
	e.push(event{at: e.now, p: p, start: f})
}

// SpawnAt registers a process to start at the given virtual time.
func (e *Engine) SpawnAt(at time.Duration, name string, f func(*Proc)) {
	if at < e.now {
		at = e.now
	}
	p := &Proc{eng: e, name: name, wake: make(chan struct{})}
	e.running++
	e.events.Reserve(e.running)
	e.push(event{at: at, p: p, start: f})
}

// Run executes events until none remain, then returns the final virtual
// time. It panics if called twice.
func (e *Engine) Run() time.Duration {
	if e.started {
		panic("desim: Run called twice")
	}
	e.started = true
	for e.events.Len() > 0 {
		ev := e.events.Pop()
		if ev.p.dead {
			continue
		}
		e.now = ev.at
		if ev.start != nil {
			go func(p *Proc, f func(*Proc)) {
				defer func() {
					p.dead = true
					e.running--
					e.yield <- struct{}{}
				}()
				f(p)
			}(ev.p, ev.start)
		} else {
			ev.p.wake <- struct{}{}
		}
		<-e.yield
	}
	return e.now
}

// Sleep suspends the process for d of virtual time. Negative durations
// sleep zero. Other processes run while this one sleeps.
func (p *Proc) Sleep(d time.Duration) {
	if p.dead {
		panic(fmt.Sprintf("desim: process %s slept after death", p.name))
	}
	if d < 0 {
		d = 0
	}
	p.eng.push(event{at: p.eng.now + d, p: p})
	p.eng.yield <- struct{}{}
	<-p.wake
}

// Kill marks a process so its pending wakeups are discarded. Intended for
// cancelling a sleeping process from another process; the killed goroutine
// leaks by design if it never wakes (runs end with the program in these
// simulations). Killing the running process is not supported.
func (p *Proc) Kill() { p.dead = true }
