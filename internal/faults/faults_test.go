package faults

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"sanmap/internal/mapper"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// twoSwitchLine builds H0 -- S0 -- S1 -- H1 with known port numbers, so
// tests can write routes and wire indices by hand:
//
//	wire 0: H0[0]--S0[0]   wire 1: S0[1]--S1[1]   wire 2: S1[2]--H1[0]
//
// The H0→H1 route is {+1, +1}.
func twoSwitchLine(t *testing.T) (*topology.Network, topology.NodeID, topology.NodeID) {
	t.Helper()
	n := &topology.Network{}
	s0 := n.AddSwitch("S0")
	s1 := n.AddSwitch("S1")
	h0 := n.AddHost("H0")
	h1 := n.AddHost("H1")
	for _, c := range [][4]int{
		{int(h0), 0, int(s0), 0},
		{int(s0), 1, int(s1), 1},
		{int(s1), 2, int(h1), 0},
	} {
		if _, err := n.Connect(topology.NodeID(c[0]), c[1], topology.NodeID(c[2]), c[3]); err != nil {
			t.Fatalf("Connect: %v", err)
		}
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return n, h0, s1
}

func TestClassifyLinkDown(t *testing.T) {
	net, h0, _ := twoSwitchLine(t)
	sn := simnet.NewDefault(net)
	inj := Attach(sn, Schedule{Events: []Event{{At: 1, Kind: LinkCut, Wire: 1}}})
	inj.ApplyAll()

	ep := sn.Endpoint(h0)
	r := <-ep.Submit(simnet.Probe{Kind: simnet.ProbeHost, Route: simnet.Route{1, 1}})
	if r.OK {
		t.Fatalf("probe across cut link succeeded: %+v", r)
	}
	if !errors.Is(r.Err, ErrLinkDown) {
		t.Errorf("want ErrLinkDown in %v", r.Err)
	}
	if !errors.Is(r.Err, simnet.ErrTimeout) {
		t.Errorf("want ErrTimeout wrapped alongside the sentinel in %v", r.Err)
	}
	if errors.Is(r.Err, ErrSwitchDead) {
		t.Errorf("ErrSwitchDead misclassification in %v", r.Err)
	}
}

func TestClassifySwitchDead(t *testing.T) {
	net, h0, s1 := twoSwitchLine(t)
	sn := simnet.NewDefault(net)
	inj := Attach(sn, Schedule{Events: []Event{{At: 1, Kind: SwitchDown, Node: s1}}})
	inj.ApplyAll()

	ep := sn.Endpoint(h0)
	r := <-ep.Submit(simnet.Probe{Kind: simnet.ProbeHost, Route: simnet.Route{1, 1}})
	if r.OK {
		t.Fatalf("probe through dead switch succeeded: %+v", r)
	}
	if !errors.Is(r.Err, ErrSwitchDead) {
		t.Errorf("want ErrSwitchDead in %v", r.Err)
	}
	if !errors.Is(r.Err, simnet.ErrTimeout) {
		t.Errorf("want ErrTimeout wrapped alongside the sentinel in %v", r.Err)
	}
}

func TestSwitchRestartRestoresService(t *testing.T) {
	net, h0, s1 := twoSwitchLine(t)
	sn := simnet.NewDefault(net)
	inj := Attach(sn, Schedule{Events: []Event{
		{At: 1, Kind: SwitchDown, Node: s1},
		{At: 2, Kind: SwitchUp, Node: s1},
	}})
	inj.ApplyAll()

	ep := sn.Endpoint(h0)
	if host, ok := ep.HostProbe(simnet.Route{1, 1}); !ok || host != "H1" {
		t.Fatalf("probe after restart: host=%q ok=%v", host, ok)
	}
}

func TestLinkFlapRestoresService(t *testing.T) {
	net, h0, _ := twoSwitchLine(t)
	sn := simnet.NewDefault(net)
	inj := Attach(sn, Schedule{Events: []Event{
		{At: 1, Kind: LinkCut, Wire: 1},
		{At: 2, Kind: LinkRestore, Wire: 1},
	}})
	inj.ApplyAll()

	ep := sn.Endpoint(h0)
	if host, ok := ep.HostProbe(simnet.Route{1, 1}); !ok || host != "H1" {
		t.Fatalf("probe after flap restore: host=%q ok=%v", host, ok)
	}
	// The flap must be on the record even though it healed.
	var sawCut, sawRestore bool
	for _, rec := range inj.Log() {
		switch rec.What {
		case "link-cut":
			sawCut = true
		case "link-restore":
			sawRestore = true
		}
	}
	if !sawCut || !sawRestore {
		t.Errorf("log misses flap events:\n%s", FormatLog(inj.Log()))
	}
}

func TestProbeLossClassification(t *testing.T) {
	net, h0, _ := twoSwitchLine(t)
	sn := simnet.NewDefault(net)
	Attach(sn, Schedule{LossRate: 1, Seed: 7})

	ep := sn.Endpoint(h0)
	r := <-ep.Submit(simnet.Probe{Kind: simnet.ProbeHost, Route: simnet.Route{1, 1}})
	if r.OK {
		t.Fatalf("probe under LossRate=1 succeeded")
	}
	if !errors.Is(r.Err, simnet.ErrTimeout) {
		t.Errorf("lost response must classify as timeout, got %v", r.Err)
	}
	if errors.Is(r.Err, simnet.ErrTruncated) {
		t.Errorf("loss misclassified as truncation: %v", r.Err)
	}
}

func TestProbeTruncationClassification(t *testing.T) {
	net, h0, _ := twoSwitchLine(t)
	sn := simnet.NewDefault(net)
	Attach(sn, Schedule{TruncRate: 1, Seed: 7})

	ep := sn.Endpoint(h0)
	r := <-ep.Submit(simnet.Probe{Kind: simnet.ProbeHost, Route: simnet.Route{1, 1}})
	if r.OK {
		t.Fatalf("probe under TruncRate=1 succeeded")
	}
	if !errors.Is(r.Err, simnet.ErrTruncated) {
		t.Errorf("want ErrTruncated, got %v", r.Err)
	}
}

func TestEmptyScheduleByteIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ref := topology.MustRing(5, 2, rng)

	run := func(attach bool) (string, simnet.Stats) {
		sn := simnet.NewDefault(ref.Clone())
		if attach {
			Attach(sn, Schedule{})
		}
		h0 := sn.Topology().Hosts()[0]
		m, err := mapper.Run(sn.Endpoint(h0), mapper.WithDepth(sn.Topology().DepthBound(h0)))
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return m.Network.String(), sn.Stats()
	}
	bare, bareStats := run(false)
	inj, injStats := run(true)
	if bare != inj {
		t.Errorf("empty schedule changed the map:\nbare: %s\nwith: %s", bare, inj)
	}
	if bareStats != injStats {
		t.Errorf("empty schedule changed transport stats: %+v vs %+v", bareStats, injStats)
	}
}

func TestInjectorLogDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ref := topology.MustRing(6, 2, rng)
	sched := Generate(ref, 42, Profile{Cuts: 1, Flaps: 1, LossRate: 0.02})

	run := func() (string, string) {
		sn := simnet.NewDefault(ref.Clone())
		inj := Attach(sn, sched)
		h0 := sn.Topology().Hosts()[0]
		m, err := mapper.RunResult(sn.Endpoint(h0),
			mapper.WithDepth(sn.Topology().DepthBound(h0)+4),
			mapper.WithConfirm(2))
		if err != nil {
			t.Fatalf("RunResult: %v", err)
		}
		return m.Network.String(), FormatLog(inj.Log())
	}
	m1, l1 := run()
	m2, l2 := run()
	if m1 != m2 {
		t.Errorf("maps differ across identical chaos runs:\n%s\n%s", m1, m2)
	}
	if l1 != l2 {
		t.Errorf("fault logs differ across identical chaos runs:\n%s---\n%s", l1, l2)
	}
}

func TestGenerateDeterministicAndConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ref := topology.MustRing(8, 1, rng)
	a := Generate(ref, 99, Profile{Cuts: 2, Flaps: 1, SwitchKills: 1, Restart: true})
	b := Generate(ref, 99, Profile{Cuts: 2, Flaps: 1, SwitchKills: 1, Restart: true})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Generate not deterministic:\n%+v\n%+v", a, b)
	}
	if len(a.Events) == 0 {
		t.Fatalf("Generate produced no events")
	}
	for _, ev := range a.Events {
		if ev.At <= 0 {
			t.Errorf("event at non-positive time: %+v", ev)
		}
	}
	// Permanent cuts alone must not disconnect the network (they are drawn
	// from non-bridge wires against the running sandbox).
	clone := ref.Clone()
	for _, ev := range a.Events {
		if ev.Kind == LinkCut {
			restored := false
			for _, r := range a.Events {
				if r.Kind == LinkRestore && r.Wire == ev.Wire {
					restored = true
				}
			}
			if !restored {
				if err := clone.RemoveWire(ev.Wire); err != nil {
					t.Fatalf("RemoveWire(%d): %v", ev.Wire, err)
				}
			}
		}
	}
	if !clone.IsConnected() {
		t.Errorf("permanent cuts disconnected the network")
	}
}

func TestSurvivingCore(t *testing.T) {
	net, h0, s1 := twoSwitchLine(t)
	// Kill S1: H1 goes with it; the surviving core seen from H0 is H0--S0,
	// whose core prunes the now degree-1 S0... leaving exactly the component
	// containing H0 minus F.
	sn := simnet.NewDefault(net)
	inj := Attach(sn, Schedule{Events: []Event{{At: 1, Kind: SwitchDown, Node: s1}}})
	inj.ApplyAll()
	core := SurvivingCore(sn.Topology(), h0)
	if core.NumHosts() != 1 {
		t.Errorf("surviving core hosts = %d, want 1: %v", core.NumHosts(), core)
	}
	if core.Lookup("H1") != topology.None {
		t.Errorf("dead side host H1 leaked into surviving core")
	}
}

func TestCrossTrafficQuantised(t *testing.T) {
	net, h0, _ := twoSwitchLine(t)
	sn := simnet.NewDefault(net)
	Attach(sn, Schedule{CrossRate: 0.5, CrossQuantum: time.Millisecond, Seed: 1})
	ep := sn.Endpoint(h0)
	// Under a 50% per-hop rate some probes must fail and some succeed over
	// enough quanta; determinism is covered by TestInjectorLogDeterminism.
	hits, misses := 0, 0
	for i := 0; i < 40; i++ {
		if _, ok := ep.HostProbe(simnet.Route{1, 1}); ok {
			hits++
		} else {
			misses++
		}
	}
	if hits == 0 || misses == 0 {
		t.Errorf("cross-traffic at 0.5 gave hits=%d misses=%d; busy set looks stuck", hits, misses)
	}
}
