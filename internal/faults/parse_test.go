package faults

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

func TestParseProfileGrammar(t *testing.T) {
	p, seed, err := ParseProfile("seed=9,cuts=2,flaps=1,kills=1,restart=true,loss=0.25,trunc=0.5,cross=0.125,window=2.5")
	if err != nil {
		t.Fatal(err)
	}
	if seed != 9 {
		t.Errorf("seed = %d, want 9", seed)
	}
	want := Profile{
		Cuts: 2, Flaps: 1, SwitchKills: 1, Restart: true,
		LossRate: 0.25, TruncRate: 0.5, CrossRate: 0.125,
		Window: 2500 * time.Microsecond, Protect: topology.None,
	}
	if p != want {
		t.Errorf("profile = %+v, want %+v", p, want)
	}
}

func TestParseProfileDefaultsAndErrors(t *testing.T) {
	// A bare seed gets the default mixed load.
	p, seed, err := ParseProfile("seed=3")
	if err != nil {
		t.Fatal(err)
	}
	if seed != 3 || p.Cuts != 1 || p.Flaps != 1 || p.LossRate != 0.02 {
		t.Errorf("bare seed: got seed=%d %+v", seed, p)
	}
	if p.Protect != topology.None {
		t.Errorf("Protect = %v, want None", p.Protect)
	}
	for _, bad := range []string{"cuts", "bogus=1", "cuts=x", "seed=-1"} {
		if _, _, err := ParseProfile(bad); err == nil {
			t.Errorf("ParseProfile(%q) accepted", bad)
		}
	}
}

func TestProfileStructural(t *testing.T) {
	cases := []struct {
		spec string
		want bool
	}{
		{"seed=1,cuts=2", true},
		{"seed=1,kills=1,restart=true", true},
		{"seed=1,cuts=1,loss=0.1", false},
		{"seed=1,cuts=1,trunc=0.1", false},
		{"seed=1,cuts=1,cross=0.1", false},
		{"seed=1", false}, // default load includes loss
	}
	for _, c := range cases {
		p, _, err := ParseProfile(c.spec)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Structural(); got != c.want {
			t.Errorf("Structural(%q) = %v, want %v", c.spec, got, c.want)
		}
	}
}

// TestSetOnRecordHook: the suspicion hook observes exactly the records
// the injector logs, in order, and a nil hook uninstalls cleanly.
func TestSetOnRecordHook(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := topology.MustRing(8, 1, rng)
	sn := simnet.NewDefault(n)
	sched := Generate(n, 5, Profile{Cuts: 1, Protect: topology.None})
	inj := NewInjector(sn, sched)
	var seen []string
	inj.SetOnRecord(func(r Record) { seen = append(seen, r.What) })
	inj.ApplyAll()
	if len(seen) == 0 {
		t.Fatal("hook saw no records")
	}
	log := inj.Log()
	if len(seen) != len(log) {
		t.Fatalf("hook saw %d records, log has %d", len(seen), len(log))
	}
	for i, r := range log {
		if seen[i] != r.What {
			t.Errorf("record %d: hook saw %q, log says %q", i, seen[i], r.What)
		}
	}
	cut := false
	for _, w := range seen {
		if strings.HasPrefix(w, "link-cut") && !strings.HasSuffix(w, "-noop") {
			cut = true
		}
	}
	if !cut {
		t.Errorf("no applied link-cut in %v", seen)
	}
	inj.SetOnRecord(nil) // must not panic on further records
	inj.Advance(time.Hour)
}
