package faults

import (
	"math/rand"
	"sort"
	"time"

	"sanmap/internal/topology"
)

// Profile shapes a generated fault schedule. The zero value means "no
// structural events"; rates are copied into the schedule verbatim.
type Profile struct {
	// Cuts is the number of permanent link cuts. Only switch-switch wires
	// that are not bridges at cut time are eligible, so the cuts thin the
	// network without disconnecting it — the regime where the healed map
	// must still be isomorphic to the surviving core.
	Cuts int
	// Flaps is the number of transient link cuts: each flapped wire is
	// restored FlapDown after it drops.
	Flaps int
	// FlapDown is how long a flapped link stays down (default 2ms).
	FlapDown time.Duration
	// SwitchKills is the number of switches killed mid-run.
	SwitchKills int
	// Restart restores killed switches RestartAfter after their death.
	Restart bool
	// RestartAfter is the switch restart delay (default 5ms).
	RestartAfter time.Duration
	// Window bounds event times: all initial events land in (0, Window]
	// (default 10ms — early in a map, so healing has faults to find).
	Window time.Duration
	// Protect, when not topology.None, shields the named host's attachment
	// switch from SwitchKills (killing the mapper's own first hop turns
	// every probe into a miss, a scenario tested separately).
	Protect topology.NodeID

	// Stochastic per-probe rates, copied into the Schedule.
	LossRate  float64
	TruncRate float64
	CrossRate float64
}

// Generate draws a reproducible fault schedule for the network from the
// seed. The same (network, seed, profile) triple always yields the same
// schedule; event times and victims come from a seeded PRNG only.
func Generate(net *topology.Network, seed uint64, p Profile) Schedule {
	if p.FlapDown <= 0 {
		p.FlapDown = 2 * time.Millisecond
	}
	if p.RestartAfter <= 0 {
		p.RestartAfter = 5 * time.Millisecond
	}
	if p.Window <= 0 {
		p.Window = 10 * time.Millisecond
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	at := func() time.Duration {
		return time.Duration(1 + rng.Int63n(int64(p.Window)))
	}

	// The sandbox tracks the post-cut structure so bridge recomputation
	// sees earlier cuts; used guards wires claimed by any event.
	sandbox := net.Clone()
	used := make(map[int]bool)
	var events []Event

	for c := 0; c < p.Cuts; c++ {
		cands := cuttable(sandbox, used)
		if len(cands) == 0 {
			break
		}
		w := cands[rng.Intn(len(cands))]
		if err := sandbox.RemoveWire(w); err != nil {
			continue
		}
		used[w] = true
		events = append(events, Event{At: at(), Kind: LinkCut, Wire: w})
	}
	for f := 0; f < p.Flaps; f++ {
		cands := cuttable(sandbox, used)
		if len(cands) == 0 {
			break
		}
		w := cands[rng.Intn(len(cands))]
		used[w] = true // flaps restore, but never overlap another event's wire
		down := at()
		events = append(events,
			Event{At: down, Kind: LinkCut, Wire: w},
			Event{At: down + p.FlapDown, Kind: LinkRestore, Wire: w})
	}
	if p.SwitchKills > 0 {
		protect := topology.None
		if p.Protect != topology.None {
			if end, ok := net.Neighbor(p.Protect, 0); ok {
				protect = end.Node
			}
		}
		var switches []topology.NodeID
		for _, nid := range sandbox.Switches() {
			if nid != protect {
				switches = append(switches, nid)
			}
		}
		for k := 0; k < p.SwitchKills && len(switches) > 0; k++ {
			j := rng.Intn(len(switches))
			victim := switches[j]
			switches = append(switches[:j], switches[j+1:]...)
			down := at()
			events = append(events, Event{At: down, Kind: SwitchDown, Node: victim})
			if p.Restart {
				events = append(events, Event{At: down + p.RestartAfter, Kind: SwitchUp, Node: victim})
			}
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return Schedule{
		Events:    events,
		LossRate:  p.LossRate,
		TruncRate: p.TruncRate,
		CrossRate: p.CrossRate,
		Seed:      seed,
	}
}

// cuttable lists switch-switch wires that are not bridges of the sandbox
// and not already claimed, in ascending index order.
func cuttable(sandbox *topology.Network, used map[int]bool) []int {
	bridge := make(map[int]bool)
	for _, b := range sandbox.Bridges() {
		bridge[b] = true
	}
	var out []int
	sandbox.WiresIndexed(func(idx int, w topology.Wire) {
		if used[idx] || bridge[idx] {
			return
		}
		if sandbox.KindOf(w.A.Node) != topology.SwitchNode || sandbox.KindOf(w.B.Node) != topology.SwitchNode {
			return
		}
		if w.A.Node == w.B.Node {
			return // self-loop cables are not connectivity
		}
		out = append(out, idx)
	})
	sort.Ints(out)
	return out
}
