package faults

// SplitMix64 is the repo's sequential seeded generator: the splitmix64
// stream (state advances by the golden-ratio increment, outputs pass the
// mix64 finalizer also used for keyed decisions). It implements
// math/rand's Source and Source64, so call sites that consume a stream —
// topology generation, sanwatch's mutation loop — write
//
//	rng := rand.New(faults.NewSource(seed))
//
// instead of rand.NewSource, keeping every subsystem on one documented
// convention (see the package comment). The zero value is a valid source
// seeded with 0.
type SplitMix64 struct {
	state uint64
}

// NewSource returns a splitmix64 source seeded with seed.
func NewSource(seed uint64) *SplitMix64 { return &SplitMix64{state: seed} }

// Uint64 returns the next value of the stream.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	x := s.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Int63 returns the top 63 bits of the next value (math/rand.Source).
func (s *SplitMix64) Int63() int64 { return int64(s.Uint64() >> 1) }

// Seed resets the stream (math/rand.Source).
func (s *SplitMix64) Seed(seed int64) { s.state = uint64(seed) }
