package faults

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"sanmap/internal/obs"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// Sentinel errors classifying injected probe failures. They are always
// wrapped together with the transport-level sentinel the mapper observes
// (simnet.ErrTimeout), so errors.Is answers both "did the probe miss?" and
// "why, per injected ground truth?".
var (
	// ErrLinkDown reports a probe lost to a cut link on its path.
	ErrLinkDown = errors.New("faults: link down")
	// ErrSwitchDead reports a probe lost at a dead switch on its path.
	ErrSwitchDead = errors.New("faults: switch dead")
)

// EventKind enumerates scheduled structural faults.
type EventKind uint8

const (
	// LinkCut removes a wire (by its generation-time index).
	LinkCut EventKind = iota
	// LinkRestore reconnects a previously cut wire between the same ends.
	LinkRestore
	// SwitchDown removes every wire incident to a switch (switch death).
	SwitchDown
	// SwitchUp reconnects the wires a SwitchDown removed (switch restart).
	SwitchUp
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case LinkCut:
		return "link-cut"
	case LinkRestore:
		return "link-restore"
	case SwitchDown:
		return "switch-down"
	case SwitchUp:
		return "switch-up"
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// Event is one scheduled structural fault, applied when virtual time
// reaches At. Wire indices refer to the topology's indexing at schedule
// construction time (RemoveWire keeps indices stable; a wire recreated by a
// restore gets a fresh index that the injector tracks internally).
type Event struct {
	At   time.Duration
	Kind EventKind
	Wire int             // LinkCut / LinkRestore
	Node topology.NodeID // SwitchDown / SwitchUp
}

// Schedule declares a deterministic fault load: structural events in
// virtual time plus per-probe stochastic fault rates decided by Seed.
type Schedule struct {
	// Events are applied in At order as the transport clock advances.
	Events []Event
	// LossRate is the probability that a probe's response is dropped in
	// flight (the probe looks like "nothing" and costs the full timeout).
	LossRate float64
	// TruncRate is the probability that the probe worm itself is truncated
	// (dropped tail flit / CRC failure) before reaching its destination.
	TruncRate float64
	// CrossRate is the per-hop probability that background cross-traffic
	// holds a link the probe needs, destroying the probe — the paper's
	// non-quiescent regime, where worms can deadlock on each other.
	CrossRate float64
	// CrossQuantum is the refresh period of the cross-traffic busy set
	// (default 1ms): within one quantum a link is consistently busy or
	// free, so retries spaced by backoff can route around a busy spell.
	CrossQuantum time.Duration
	// Seed drives every stochastic decision.
	Seed uint64
}

// Empty reports whether the schedule injects nothing at all.
func (s Schedule) Empty() bool {
	return len(s.Events) == 0 && s.LossRate == 0 && s.TruncRate == 0 && s.CrossRate == 0
}

// Record is one FaultLog entry: an applied structural event or a
// probe-level fault, in virtual-time order.
type Record struct {
	At   time.Duration
	What string
	Wire int             // wire index, -1 when not applicable
	Node topology.NodeID // node involved, topology.None when not applicable
	Seq  uint64          // probe sequence number for probe-level faults
}

// String renders one log line.
func (r Record) String() string {
	s := fmt.Sprintf("%v %s", r.At, r.What)
	if r.Wire >= 0 {
		s += fmt.Sprintf(" wire=%d", r.Wire)
	}
	if r.Node != topology.None {
		s += fmt.Sprintf(" node=%d", r.Node)
	}
	if r.Seq > 0 {
		s += fmt.Sprintf(" probe=%d", r.Seq)
	}
	return s
}

// FormatLog renders a fault log one record per line.
func FormatLog(log []Record) string {
	out := ""
	for _, r := range log {
		out += r.String() + "\n"
	}
	return out
}

// Injector applies a Schedule to a quiescent transport. It implements
// simnet.Injector; install it with net.SetInjector (or use Attach).
type Injector struct {
	topo  *topology.Network
	sched Schedule

	events []Event // sorted copy of sched.Events
	next   int     // first unapplied event
	now    time.Duration
	seq    uint64 // probe sequence number (FilterProbe calls)

	// cut records wires removed by LinkCut, keyed by generation-time
	// index; remap translates those indices to current ones after a
	// restore re-created the wire; removed marks every current index this
	// injector has removed (RemoveWire keeps dead indices reserved).
	cut     map[int]topology.Wire
	remap   map[int]int
	removed map[int]bool
	// dead holds, per dead switch, the wires its death removed.
	dead map[topology.NodeID][]topology.Wire
	// downEnds attributes every currently-unwired (node, port) we unplugged
	// to the event kind responsible, for probe-failure classification.
	downEnds map[topology.End]EventKind

	log []Record

	// onRecord, when non-nil, observes every Record as it is logged — the
	// suspicion signal a serving daemon's remap loop listens to. It fires
	// synchronously on the probing goroutine, so hooks must be cheap and
	// must not probe.
	onRecord func(Record)

	// obs mirror (Instrument): tr receives one cat-"faults" instant per
	// record; m classifies records into counters. Both stay nil-safe
	// no-ops on an uninstrumented injector.
	tr *obs.Tracer
	m  injectorMetrics
}

// injectorMetrics is the injector's obs handle set.
type injectorMetrics struct {
	applied *obs.Counter
	noop    *obs.Counter
	loss    *obs.Counter
	trunc   *obs.Counter
	cross   *obs.Counter
}

// NewInjector prepares an injector over the transport's topology. The
// caller still installs it with net.SetInjector; Attach does both.
func NewInjector(net *simnet.Net, sched Schedule) *Injector {
	if sched.CrossQuantum <= 0 {
		sched.CrossQuantum = time.Millisecond
	}
	events := append([]Event(nil), sched.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return &Injector{
		topo:     net.Topology(),
		sched:    sched,
		events:   events,
		cut:      make(map[int]topology.Wire),
		remap:    make(map[int]int),
		removed:  make(map[int]bool),
		dead:     make(map[topology.NodeID][]topology.Wire),
		downEnds: make(map[topology.End]EventKind),
	}
}

// Attach builds an injector for the schedule and installs it on the
// transport in one step.
func Attach(net *simnet.Net, sched Schedule) *Injector {
	i := NewInjector(net, sched)
	net.SetInjector(i)
	return i
}

// Instrument mirrors the injector's fault log onto the unified
// observability layer: every Record additionally lands on tr as a
// cat-"faults" instant and is classified into the faults.* counters of
// reg (see internal/obs). Either argument may be nil. Returns the
// injector for chaining: faults.Attach(net, sched).Instrument(tr, reg).
func (i *Injector) Instrument(tr *obs.Tracer, reg *obs.Registry) *Injector {
	i.tr = tr
	i.m = injectorMetrics{
		applied: reg.Counter("faults.events.applied"),
		noop:    reg.Counter("faults.events.noop"),
		loss:    reg.Counter("faults.probe.loss"),
		trunc:   reg.Counter("faults.probe.trunc"),
		cross:   reg.Counter("faults.probe.cross"),
	}
	return i
}

// Log returns the fault records accumulated so far, in virtual-time order.
func (i *Injector) Log() []Record { return i.log }

// SetOnRecord installs the suspicion hook: f observes every fault record
// (applied events, no-ops, probe-level faults) the moment it is logged.
// A nil f uninstalls. The serving daemon (internal/mapd) uses this to
// notice faults landing mid-probe and schedule a heal attempt.
func (i *Injector) SetOnRecord(f func(Record)) { i.onRecord = f }

// Probes reports how many probes the injector has inspected.
func (i *Injector) Probes() uint64 { return i.seq }

// ApplyAll force-applies every remaining scheduled event regardless of the
// clock — used by harnesses that stage "map clean, then fault, then heal"
// experiments without running the clock through the schedule window.
func (i *Injector) ApplyAll() {
	for i.next < len(i.events) {
		i.apply(i.events[i.next])
		i.next++
	}
}

// Advance applies every scheduled event with At <= now (simnet.Injector).
func (i *Injector) Advance(now time.Duration) {
	i.now = now
	for i.next < len(i.events) && i.events[i.next].At <= now {
		i.apply(i.events[i.next])
		i.next++
	}
}

func (i *Injector) record(at time.Duration, what string, wire int, node topology.NodeID, seq uint64) {
	rec := Record{At: at, What: what, Wire: wire, Node: node, Seq: seq}
	i.log = append(i.log, rec)
	if i.onRecord != nil {
		i.onRecord(rec)
	}
	switch {
	case strings.HasSuffix(what, "-noop"):
		i.m.noop.Inc()
	case what == "probe-loss":
		i.m.loss.Inc()
	case what == "probe-trunc":
		i.m.trunc.Inc()
	case what == "cross-collision":
		i.m.cross.Inc()
	default:
		i.m.applied.Inc()
	}
	if i.tr != nil {
		var args [3]obs.Arg
		n := 0
		if wire >= 0 {
			args[n] = obs.Int("wire", wire)
			n++
		}
		if node != topology.None {
			args[n] = obs.Int("node", int(node))
			n++
		}
		if seq > 0 {
			args[n] = obs.Int64("probe", int64(seq))
			n++
		}
		i.tr.Instant("faults", what, at, args[:n]...)
	}
}

// apply performs one structural event. Impossible events (cutting an
// already-dead wire, restarting a live switch) are logged as no-ops rather
// than failing: overlapping fault schedules are legitimate chaos.
func (i *Injector) apply(ev Event) {
	switch ev.Kind {
	case LinkCut:
		cur := ev.Wire
		if r, ok := i.remap[ev.Wire]; ok {
			cur = r
		}
		if _, gone := i.cut[ev.Wire]; gone || i.removed[cur] || cur < 0 {
			i.record(ev.At, "link-cut-noop", ev.Wire, topology.None, 0)
			return
		}
		wire := i.topo.WireByIndex(cur)
		if err := i.topo.RemoveWire(cur); err != nil {
			i.record(ev.At, "link-cut-noop", ev.Wire, topology.None, 0)
			return
		}
		i.removed[cur] = true
		i.cut[ev.Wire] = wire
		i.downEnds[wire.A] = LinkCut
		i.downEnds[wire.B] = LinkCut
		i.record(ev.At, "link-cut", ev.Wire, topology.None, 0)
	case LinkRestore:
		wire, ok := i.cut[ev.Wire]
		if !ok {
			i.record(ev.At, "link-restore-noop", ev.Wire, topology.None, 0)
			return
		}
		ni, err := i.topo.Connect(wire.A.Node, wire.A.Port, wire.B.Node, wire.B.Port)
		if err != nil {
			i.record(ev.At, "link-restore-noop", ev.Wire, topology.None, 0)
			return
		}
		delete(i.cut, ev.Wire)
		i.remap[ev.Wire] = ni
		delete(i.downEnds, wire.A)
		delete(i.downEnds, wire.B)
		i.record(ev.At, "link-restore", ev.Wire, topology.None, 0)
	case SwitchDown:
		if _, gone := i.dead[ev.Node]; gone || i.topo.KindOf(ev.Node) != topology.SwitchNode {
			i.record(ev.At, "switch-down-noop", -1, ev.Node, 0)
			return
		}
		var cutWires []topology.Wire
		for port := 0; port < i.topo.NumPorts(ev.Node); port++ {
			w := i.topo.WireAt(ev.Node, port)
			if w < 0 {
				continue
			}
			wire := i.topo.WireByIndex(w)
			if err := i.topo.RemoveWire(w); err != nil {
				continue
			}
			i.removed[w] = true
			cutWires = append(cutWires, wire)
			i.downEnds[wire.A] = SwitchDown
			i.downEnds[wire.B] = SwitchDown
		}
		i.dead[ev.Node] = cutWires
		i.record(ev.At, "switch-down", -1, ev.Node, 0)
	case SwitchUp:
		cutWires, ok := i.dead[ev.Node]
		if !ok {
			i.record(ev.At, "switch-up-noop", -1, ev.Node, 0)
			return
		}
		for _, wire := range cutWires {
			if _, err := i.topo.Connect(wire.A.Node, wire.A.Port, wire.B.Node, wire.B.Port); err != nil {
				continue
			}
			delete(i.downEnds, wire.A)
			delete(i.downEnds, wire.B)
		}
		delete(i.dead, ev.Node)
		i.record(ev.At, "switch-up", -1, ev.Node, 0)
	}
}

// mix64 is the splitmix64 finalizer — the seeded deterministic hash behind
// every stochastic decision (sanlint's determinism analyzer forbids global
// rand and wall clocks in simulation code).
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// salts separating the independent stochastic decision streams.
const (
	saltTrunc = 0x74727563 // "truc"
	saltLoss  = 0x6c6f7373 // "loss"
	saltCross = 0x78747261 // "xtra"
)

// roll returns a uniform [0,1) draw for this probe and decision stream.
func (i *Injector) roll(salt uint64) float64 {
	h := mix64(i.sched.Seed ^ (i.seq * 0x9e3779b97f4a7c15) ^ salt)
	return float64(h>>11) / float64(1<<53)
}

// collision scans the probe's hops against the cross-traffic busy set: a
// link is busy for a whole CrossQuantum when its seeded per-quantum draw
// falls under CrossRate. Returns the busy wire index, or -1.
func (i *Injector) collision(hops []simnet.DirectedHop) int {
	q := uint64(i.now / i.sched.CrossQuantum)
	for _, h := range hops {
		dir := uint64(0)
		if h.FromA {
			dir = 1
		}
		key := mix64(i.sched.Seed ^ saltCross ^ (uint64(int64(h.Wire)) * 0xbf58476d1ce4e5b9) ^ (q << 1) ^ dir)
		if float64(key>>11)/float64(1<<53) < i.sched.CrossRate {
			return h.Wire
		}
	}
	return -1
}

// FilterProbe decides the fate of one classified probe (simnet.Injector).
// Successful probes are subjected to truncation, loss and cross-traffic
// rolls; failed probes are attributed to injected structural faults when
// the failing hop matches a port this injector unplugged.
func (i *Injector) FilterProbe(kind simnet.ProbeKind, route simnet.Route, ok bool, res simnet.Result, hops []simnet.DirectedHop) error {
	i.seq++
	if !ok {
		return i.classify(route, res)
	}
	if i.sched.TruncRate > 0 && i.roll(saltTrunc) < i.sched.TruncRate {
		i.record(i.now, "probe-trunc", -1, topology.None, i.seq)
		return fmt.Errorf("faults: probe %d truncated in flight: %w", i.seq, simnet.ErrTruncated)
	}
	if i.sched.LossRate > 0 && i.roll(saltLoss) < i.sched.LossRate {
		i.record(i.now, "probe-loss", -1, topology.None, i.seq)
		return fmt.Errorf("faults: response to probe %d dropped: %w", i.seq, simnet.ErrTimeout)
	}
	if i.sched.CrossRate > 0 {
		if w := i.collision(hops); w >= 0 {
			i.record(i.now, "cross-collision", w, topology.None, i.seq)
			return fmt.Errorf("faults: probe %d destroyed by cross-traffic on wire %d: %w", i.seq, w, simnet.ErrTimeout)
		}
	}
	return nil
}

// classify attributes an evaluator-reported failure to injected ground
// truth: when the failing hop tried to exit through a port this injector
// unplugged, the returned error wraps both the structural sentinel
// (ErrLinkDown / ErrSwitchDead) and simnet.ErrTimeout. Failures with other
// causes (route simply wrong) return nil and keep their original error.
func (i *Injector) classify(route simnet.Route, res simnet.Result) error {
	var end topology.End
	switch res.Outcome {
	case simnet.SourceUnwired:
		end = topology.End{Node: res.Dest, Port: 0}
	case simnet.NoSuchWire:
		if res.FailTurn < 0 {
			// First hop out of the source host: its single port is 0.
			end = topology.End{Node: res.Dest, Port: 0}
		} else {
			if res.FailTurn >= len(route) {
				return nil
			}
			end = topology.End{Node: res.Dest, Port: res.EntryPort + int(route[res.FailTurn])}
		}
	default:
		return nil
	}
	kind, known := i.downEnds[end]
	if !known {
		return nil
	}
	name := i.topo.NameOf(end.Node)
	if kind == SwitchDown {
		return fmt.Errorf("faults: probe %d lost at dead switch (%s port %d): %w (%w)",
			i.seq, name, end.Port, ErrSwitchDead, simnet.ErrTimeout)
	}
	return fmt.Errorf("faults: probe %d lost on cut link (%s port %d): %w (%w)",
		i.seq, name, end.Port, ErrLinkDown, simnet.ErrTimeout)
}

// SurvivingCore returns the canonical mappable reference graph after
// faults: the core (N − F) of the connected component containing from.
// This is what a degraded mapper can still hope to reconstruct — everything
// faults disconnected from the mapping host is out of reach by definition.
func SurvivingCore(net *topology.Network, from topology.NodeID) *topology.Network {
	label, _ := net.Components()
	keep := label[from]
	sub, _ := net.Filter(func(id topology.NodeID) bool { return label[id] == keep })
	core, _ := sub.Core()
	return core
}
