package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"sanmap/internal/topology"
)

// ParseProfile parses the "-chaos" spec shared by sanmap, sanwatch and
// sanmapd: comma-separated key=value pairs, e.g. "seed=7" or
// "seed=3,cuts=2,flaps=1,loss=0.02". Unknown keys are errors. A spec that
// names no fault at all (bare "seed=N") gets the default mixed load of one
// cut, one flap and 2% loss. Protect comes back as topology.None; callers
// that want the mapper's attachment switch shielded set it before
// Generate.
func ParseProfile(spec string) (Profile, uint64, error) {
	p := Profile{Protect: topology.None}
	seed := uint64(1)
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return Profile{}, 0, fmt.Errorf("chaos: %q is not key=value", kv)
		}
		var err error
		switch k {
		case "seed":
			seed, err = strconv.ParseUint(v, 10, 64)
		case "cuts":
			p.Cuts, err = strconv.Atoi(v)
		case "flaps":
			p.Flaps, err = strconv.Atoi(v)
		case "kills":
			p.SwitchKills, err = strconv.Atoi(v)
		case "restart":
			p.Restart, err = strconv.ParseBool(v)
		case "loss":
			p.LossRate, err = strconv.ParseFloat(v, 64)
		case "trunc":
			p.TruncRate, err = strconv.ParseFloat(v, 64)
		case "cross":
			p.CrossRate, err = strconv.ParseFloat(v, 64)
		case "window":
			var ms float64
			ms, err = strconv.ParseFloat(v, 64)
			p.Window = time.Duration(ms * float64(time.Millisecond))
		default:
			return Profile{}, 0, fmt.Errorf("chaos: unknown key %q", k)
		}
		if err != nil {
			return Profile{}, 0, fmt.Errorf("chaos: bad value for %s: %v", k, err)
		}
	}
	if p.Cuts == 0 && p.Flaps == 0 && p.SwitchKills == 0 &&
		p.LossRate == 0 && p.TruncRate == 0 && p.CrossRate == 0 {
		// Bare "seed=N" gets a default mixed fault load.
		p.Cuts, p.Flaps, p.LossRate = 1, 1, 0.02
	}
	return p, seed, nil
}

// Structural reports whether the profile is free of stochastic per-probe
// rates. Only structural schedules resume deterministically across a
// process restart: the stochastic rolls key on the injector's probe
// sequence number, which restarts from zero with the process.
func (p Profile) Structural() bool {
	return p.LossRate == 0 && p.TruncRate == 0 && p.CrossRate == 0
}
