// Package faults is the deterministic fault-injection layer for the
// simulated network: the machinery for exercising exactly the regime the
// paper's Theorem 1 assumes away. §2 proves the mapping algorithm correct
// only for a quiescent, fault-free network and §5 concedes that Myricom's
// production mapper must instead survive links and switches that die or
// appear mid-map; this package injects those conditions on purpose, on a
// schedule, reproducibly.
//
// Faults are declared as a Schedule in virtual time: structural events
// (link cuts, link restores, switch death and restart) applied when the
// transport's clock reaches their timestamps, plus per-probe stochastic
// faults (response loss, worm truncation, cross-traffic collisions) decided
// by a seeded hash of the probe sequence number. Nothing reads the wall
// clock or global rand, so a (topology, schedule) pair replays the same
// byte-identical run forever — which is what makes golden chaos tests and
// the `make chaos` CI lane possible.
//
// The Injector implements simnet.Injector by mutating the topology itself
// (RemoveWire / Connect): the topology's structural version feeds the
// evaluator's memo key, so fault application invalidates cached route state
// automatically, with no extra bookkeeping in the hot path.
//
// # The seeding convention
//
// This package is where the repo's randomness convention is defined:
// every stochastic decision anywhere in the simulator derives from
// splitmix64 over an explicit caller-supplied seed. The two forms are
//
//   - the keyed hash (the package-private mix64 finalizer): decisions
//     addressed by position — probe sequence number, wire index, time
//     quantum — are hashed independently, so one decision can be replayed
//     or audited without generating its predecessors;
//   - the sequential stream (SplitMix64 / NewSource): code that wants a
//     conventional generator draws from a splitmix64 *rand.Rand source
//     instead of math/rand's default LCG.
//
// Both forms exist because both are needed: hashes for decision streams
// that must be stable under reordering (the injector can roll probe N's
// loss without having rolled probes 1..N−1), the sequential source for
// call sites that genuinely consume a stream (topology generation,
// sanwatch's mutation loop). Never seed from the wall clock, never touch
// global math/rand — sanlint's determinism analyzer (rule D2) enforces
// the negative half, and the golden-file CI lanes would catch the drift
// anyway.
//
// # Observability
//
// An Injector instrumented with Instrument mirrors its Record log onto
// the unified observability layer (internal/obs): one cat-"faults"
// instant per record and counters faults.events.applied,
// faults.events.noop, faults.probe.loss, faults.probe.trunc and
// faults.probe.cross. The Record log remains the ground-truth API; the
// obs mirror is what lands fault marks on the same timeline as the
// mapper's spans in a Chrome trace.
package faults
