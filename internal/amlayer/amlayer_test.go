package amlayer

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"sanmap/internal/routes"
	"sanmap/internal/simnet"
)

// randomMessage builds an arbitrary-but-valid message for property tests.
func randomMessage(rng *rand.Rand) Message {
	types := []MsgType{THostProbe, TProbeReply, TLoopback, TRouteUpdate, TData}
	m := Message{Type: types[rng.Intn(len(types))]}
	nr := rng.Intn(20)
	for i := 0; i < nr; i++ {
		t := simnet.Turn(rng.Intn(15) - 7)
		m.Route = append(m.Route, t)
	}
	np := rng.Intn(64)
	if np > 0 {
		m.Payload = make([]byte, np)
		rng.Read(m.Payload)
	}
	return m
}

// TestEncodeDecodeRoundTrip is the framing property test.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		m := randomMessage(rng)
		b, err := Encode(m)
		if err != nil {
			t.Fatalf("encode %+v: %v", m, err)
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.Type != m.Type || !got.Route.Equal(m.Route) || !bytes.Equal(got.Payload, m.Payload) {
			t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", m, got)
		}
	}
}

// TestCRCDetectsBitFlips: every single-bit corruption of the framed bytes
// must be rejected (CRC-8 catches all single-bit errors).
func TestCRCDetectsBitFlips(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		m := randomMessage(rng)
		b, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(b)-1; i++ { // skip framing flits (checked separately)
			for bit := 0; bit < 8; bit++ {
				corrupt := append([]byte(nil), b...)
				corrupt[i] ^= 1 << bit
				if got, err := Decode(corrupt); err == nil {
					// A flip inside the route area may still decode if it
					// keeps the CRC... it cannot: CRC-8 detects all
					// single-bit errors over the covered region.
					t.Fatalf("trial %d: flip at byte %d bit %d accepted: %+v", trial, i, bit, got)
				}
			}
		}
	}
}

// TestDecodeFraming rejects bad flits and truncations.
func TestDecodeFraming(t *testing.T) {
	m := NewHostProbe(simnet.Route{1, -2, 3}, "Node0", 7)
	b, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":      {},
		"tiny":       {headerFlit, 0, tailFlit},
		"bad header": append([]byte{0x00}, b[1:]...),
		"bad tail":   append(append([]byte(nil), b[:len(b)-1]...), 0x00),
		"truncated":  b[:len(b)-3],
	}
	for name, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("%s: decode accepted invalid input", name)
		}
	}
}

// TestBuildReply inverts the probe route and carries the host name.
func TestBuildReply(t *testing.T) {
	probe := NewHostProbe(simnet.Route{2, -1, 4}, "Util-C", 99)
	name, seq, err := ProbeSender(probe)
	if err != nil || name != "Util-C" || seq != 99 {
		t.Fatalf("ProbeSender: %q %d %v", name, seq, err)
	}
	reply, err := BuildReply(probe, "Node17")
	if err != nil {
		t.Fatal(err)
	}
	if want := (simnet.Route{-4, 1, -2}); !reply.Route.Equal(want) {
		t.Errorf("reply route %v, want %v", reply.Route, want)
	}
	if string(reply.Payload) != "Node17" {
		t.Errorf("reply payload %q", reply.Payload)
	}
	if _, err := BuildReply(reply, "x"); err == nil {
		t.Error("BuildReply accepted a non-probe")
	}
}

// TestRouteTableRoundTrip uses testing/quick over generated route maps.
func TestRouteTableRoundTrip(t *testing.T) {
	f := func(entries map[string][]int8) bool {
		ht := &routes.HostTable{Host: "h", Routes: map[string]simnet.Route{}}
		for name, turns := range entries {
			r := make(simnet.Route, 0, len(turns))
			for _, v := range turns {
				r = append(r, simnet.Turn(((int(v)%7)+7)%7+1)) // legal 1..7
			}
			ht.Routes[name] = r
		}
		msg, err := EncodeRouteTable(ht, simnet.Route{1, 2})
		if err != nil {
			return false
		}
		// Round trip through the wire framing too.
		wire, err := Encode(msg)
		if err != nil {
			return false
		}
		back, err := Decode(wire)
		if err != nil {
			return false
		}
		got, err := DecodeRouteTable(back)
		if err != nil {
			return false
		}
		if len(got) != len(ht.Routes) {
			return false
		}
		for name, r := range ht.Routes {
			if !got[name].Equal(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestCRC8KnownVectors pins the CRC-8/0x07 implementation.
func TestCRC8KnownVectors(t *testing.T) {
	cases := []struct {
		in   string
		want byte
	}{
		{"", 0x00},
		{"123456789", 0xF4}, // standard CRC-8 check value
		{"a", 0x20},
	}
	for _, c := range cases {
		if got := CRC8([]byte(c.in)); got != c.want {
			t.Errorf("CRC8(%q) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

// TestEncodeRejectsOversizedRoute.
func TestEncodeRejectsOversizedRoute(t *testing.T) {
	m := Message{Type: TData, Route: make(simnet.Route, 256)}
	if _, err := Encode(m); err == nil {
		t.Error("accepted 256-turn route")
	}
	m = Message{Type: TData, Route: simnet.Route{9}}
	if _, err := Encode(m); err == nil {
		t.Error("accepted out-of-range turn")
	}
}
