// Package amlayer implements the wire format of the paper's Myrinet
// messages (§1.1: "Messages have a header flit, routing flits, a data
// payload, an 8-bit CRC, and a tail flit") and the payloads the mapping
// system exchanges: probes carrying their own route (so a receiver can
// invert it for the reply), probe replies carrying the unique host name,
// and the route-table update messages the master "distributes ... to all
// network interfaces" (§5.5).
//
// The Berkeley mapper is "written using essentially the same active message
// primitives available to standard client/server and parallel programs"
// (§4.2); this package is that layer's framing.
package amlayer

import (
	"encoding/binary"
	"errors"
	"fmt"

	"sanmap/internal/simnet"
)

// MsgType is the header flit's message class.
type MsgType byte

// Message classes used by the mapping system.
const (
	// THostProbe asks the receiving host to reply with its identity.
	THostProbe MsgType = 0x11
	// TProbeReply carries the responder's unique host name.
	TProbeReply MsgType = 0x12
	// TLoopback is a switch-probe / comparison-probe body; it is consumed
	// by the original sender when it loops back.
	TLoopback MsgType = 0x13
	// TRouteUpdate distributes a host's route table.
	TRouteUpdate MsgType = 0x14
	// TData is application payload.
	TData MsgType = 0x15

	headerFlit = 0x7E
	tailFlit   = 0x7F
)

// Message is a decoded Myrinet-style message.
type Message struct {
	Type MsgType
	// Route is the routing-flit string as injected at the source. Switches
	// would consume these in flight; the copy here is what lets a receiver
	// invert the route for its reply, exactly as the mapper's probes do.
	Route simnet.Route
	// Payload is the data body.
	Payload []byte
}

// CRC8 computes the CRC-8 (polynomial x^8+x^2+x+1, 0x07) of data — the
// 8-bit CRC of the Myrinet message format.
func CRC8(data []byte) byte {
	var crc byte
	for _, b := range data {
		crc ^= b
		for i := 0; i < 8; i++ {
			if crc&0x80 != 0 {
				crc = crc<<1 ^ 0x07
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// Errors returned by Decode.
var (
	ErrTruncated = errors.New("amlayer: truncated message")
	ErrFraming   = errors.New("amlayer: bad header or tail flit")
	ErrCRC       = errors.New("amlayer: CRC mismatch")
	ErrRoute     = errors.New("amlayer: illegal routing flit")
)

// Encode frames a message: header flit, type, route length, routing flits
// (one signed byte per turn), payload length (uvarint), payload, CRC-8 over
// everything after the header, tail flit.
func Encode(m Message) ([]byte, error) {
	if len(m.Route) > 255 {
		return nil, fmt.Errorf("amlayer: route too long (%d turns)", len(m.Route))
	}
	for _, t := range m.Route {
		if t < -simnet.MaxTurn || t > simnet.MaxTurn {
			return nil, ErrRoute
		}
	}
	out := make([]byte, 0, 4+len(m.Route)+len(m.Payload)+binary.MaxVarintLen64+2)
	out = append(out, headerFlit, byte(m.Type), byte(len(m.Route)))
	for _, t := range m.Route {
		out = append(out, byte(int8(t)))
	}
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(m.Payload)))
	out = append(out, lenBuf[:n]...)
	out = append(out, m.Payload...)
	out = append(out, CRC8(out[1:]), tailFlit)
	return out, nil
}

// Decode parses and verifies a framed message.
func Decode(b []byte) (Message, error) {
	if len(b) < 5 {
		return Message{}, ErrTruncated
	}
	if b[0] != headerFlit || b[len(b)-1] != tailFlit {
		return Message{}, ErrFraming
	}
	body := b[1 : len(b)-2]
	if CRC8(body) != b[len(b)-2] {
		return Message{}, ErrCRC
	}
	m := Message{Type: MsgType(body[0])}
	nr := int(body[1])
	rest := body[2:]
	if len(rest) < nr {
		return Message{}, ErrTruncated
	}
	if nr > 0 {
		m.Route = make(simnet.Route, nr)
		for i := 0; i < nr; i++ {
			t := simnet.Turn(int8(rest[i]))
			if t < -simnet.MaxTurn || t > simnet.MaxTurn {
				return Message{}, ErrRoute
			}
			m.Route[i] = t
		}
	}
	rest = rest[nr:]
	plen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) != plen {
		return Message{}, ErrTruncated
	}
	if plen > 0 {
		m.Payload = append([]byte(nil), rest[n:]...)
	}
	return m, nil
}

// BuildReply constructs the responder daemon's answer to a host probe: a
// TProbeReply carrying the host's unique name, routed over the inverse of
// the probe's route.
func BuildReply(probe Message, hostName string) (Message, error) {
	if probe.Type != THostProbe {
		return Message{}, fmt.Errorf("amlayer: cannot reply to message type %#x", probe.Type)
	}
	return Message{
		Type:    TProbeReply,
		Route:   probe.Route.Reversed(),
		Payload: []byte(hostName),
	}, nil
}

// NewHostProbe builds the host-probe message for a turn prefix.
func NewHostProbe(turns simnet.Route, mapperName string, seq uint32) Message {
	payload := make([]byte, 4+len(mapperName))
	binary.BigEndian.PutUint32(payload, seq)
	copy(payload[4:], mapperName)
	return Message{Type: THostProbe, Route: turns.Clone(), Payload: payload}
}

// ProbeSender parses a host-probe payload back into (mapper name, seq).
func ProbeSender(m Message) (name string, seq uint32, err error) {
	if m.Type != THostProbe {
		return "", 0, fmt.Errorf("amlayer: not a host probe: %#x", m.Type)
	}
	if len(m.Payload) < 4 {
		return "", 0, ErrTruncated
	}
	return string(m.Payload[4:]), binary.BigEndian.Uint32(m.Payload), nil
}
