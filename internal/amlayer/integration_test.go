package amlayer_test

// The full system pipeline of the paper, end to end over the wire format:
// map the network with probes, compute UP*/DOWN* routes from the map,
// encode one route table per interface, deliver each table IN-BAND over the
// simulated network using the map-derived route to that host, have the
// host daemon decode and install it, and finally have every host send data
// to every other host using only its installed routes. "Once the master or
// elected leader generates a network map, it derives mutually deadlock-free
// routes from it and distributes them throughout the system."

import (
	"testing"

	"sanmap/internal/amlayer"
	"sanmap/internal/cluster"
	"sanmap/internal/mapper"
	"sanmap/internal/routes"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

func TestFullDistributionPipeline(t *testing.T) {
	sys := cluster.CConfig(nil)
	net := sys.Net
	master := sys.Mapper()

	// 1. Map.
	sn := simnet.NewDefault(net)
	m, err := mapper.Run(sn.Endpoint(master), mapper.WithDepth(net.DepthBound(master)))
	if err != nil {
		t.Fatalf("mapping: %v", err)
	}

	// 2. Routes from the map; per-interface tables.
	cfg := routes.DefaultConfig()
	cfg.IgnoreHosts = []topology.NodeID{m.Network.Lookup(net.NameOf(sys.Utility))}
	tab, err := routes.Compute(m.Network, cfg)
	if err != nil {
		t.Fatalf("routes: %v", err)
	}
	perHost := tab.Distribute()

	// 3. One daemon per host; distribute each table in-band: the update
	// message carries the master's route to that host and must survive the
	// wire (encode/decode/CRC) and the network (evaluate the route on the
	// ACTUAL topology).
	daemons := make(map[string]*amlayer.Daemon, len(perHost))
	masterName := net.NameOf(master)
	for name, ht := range perHost {
		daemons[name] = amlayer.NewDaemon(name)
		if name == masterName {
			// The master installs its own table locally.
			msg, err := amlayer.EncodeRouteTable(ht, nil)
			if err != nil {
				t.Fatal(err)
			}
			wire, err := amlayer.Encode(msg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := daemons[name].Handle(wire); err != nil {
				t.Fatal(err)
			}
			continue
		}
		// Master's route to this host, from the master's own table.
		route, ok := tab.Route(m.Network.Lookup(masterName), m.Network.Lookup(name))
		if !ok {
			t.Fatalf("master has no route to %s", name)
		}
		// The update worm must be deliverable on the actual network.
		res := sn.Eval(master, route)
		if res.Outcome != simnet.Delivered || net.NameOf(res.Dest) != name {
			t.Fatalf("route update to %s undeliverable: %v", name, res.Outcome)
		}
		msg, err := amlayer.EncodeRouteTable(ht, route)
		if err != nil {
			t.Fatal(err)
		}
		wire, err := amlayer.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		reply, err := daemons[name].Handle(wire)
		if err != nil {
			t.Fatalf("daemon %s rejected update: %v", name, err)
		}
		if reply != nil {
			t.Fatalf("route update should not produce a reply")
		}
	}

	// 4. Every host reaches every other host using only installed routes,
	// evaluated on the actual network.
	hosts := net.Hosts()
	sent := 0
	for _, src := range hosts {
		d := daemons[net.NameOf(src)]
		if d.KnownDestinations() != len(hosts)-1 {
			t.Fatalf("%s installed %d routes, want %d",
				net.NameOf(src), d.KnownDestinations(), len(hosts)-1)
		}
		for _, dst := range hosts {
			if src == dst {
				continue
			}
			route, ok := d.Route(net.NameOf(dst))
			if !ok {
				t.Fatalf("%s has no route to %s", net.NameOf(src), net.NameOf(dst))
			}
			res := sn.Eval(src, route)
			if res.Outcome != simnet.Delivered || res.Dest != dst {
				t.Fatalf("installed route %s -> %s fails: %v at %d",
					net.NameOf(src), net.NameOf(dst), res.Outcome, res.Dest)
			}
			// And the payload survives the wire format.
			data := amlayer.Message{Type: amlayer.TData, Route: route,
				Payload: []byte("hello from " + net.NameOf(src))}
			wire, err := amlayer.Encode(data)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := daemons[net.NameOf(dst)].Handle(wire); err != nil {
				t.Fatal(err)
			}
			sent++
		}
	}
	if sent != len(hosts)*(len(hosts)-1) {
		t.Fatalf("sent %d messages", sent)
	}
	// Every daemon saw the data it was addressed.
	for _, d := range daemons {
		if d.Data != int64(len(hosts)-1) {
			t.Fatalf("daemon %s delivered %d payloads, want %d", d.Host(), d.Data, len(hosts)-1)
		}
	}
}

// TestDaemonHandlesProbesAndGarbage covers the responder paths.
func TestDaemonHandlesProbesAndGarbage(t *testing.T) {
	d := amlayer.NewDaemon("Node5")
	probe := amlayer.NewHostProbe(simnet.Route{1, -2}, "UtilC", 3)
	wire, err := amlayer.Encode(probe)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := d.Handle(wire)
	if err != nil || reply == nil {
		t.Fatalf("Handle(probe): %v %v", reply, err)
	}
	rm, err := amlayer.Decode(reply)
	if err != nil {
		t.Fatal(err)
	}
	if rm.Type != amlayer.TProbeReply || string(rm.Payload) != "Node5" {
		t.Fatalf("reply %+v", rm)
	}
	if want := (simnet.Route{2, -1}); !rm.Route.Equal(want) {
		t.Fatalf("reply route %v, want %v", rm.Route, want)
	}
	if d.Probes != 1 {
		t.Fatalf("probe count %d", d.Probes)
	}
	// Corrupted frame: dropped with error, no reply.
	wire[len(wire)/2] ^= 0x40
	if _, err := d.Handle(wire); err == nil {
		t.Fatal("daemon accepted a corrupted frame")
	}
}
