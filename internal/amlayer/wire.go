package amlayer

import (
	"time"

	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// WireNet runs the mapping system's probes through the real message layer:
// every host probe is encoded into the Myrinet frame format, carried by the
// simulator, decoded and answered by the destination host's Daemon, and the
// reply is routed back over the inverted route and decoded by the mapper.
// Switch probes loop back as framed TLoopback messages. It implements the
// same simnet.Prober contract as the built-in transport, so the mappers run
// over it unchanged — which is how the tests show the whole system works
// end-to-end over the wire format, including CRC rejection of corrupted
// frames.
type WireNet struct {
	sn      *simnet.Net
	daemons map[topology.NodeID]*Daemon
	// Corrupt, when non-nil, may mutate (a copy of) each outbound frame —
	// fault injection for link bit errors. Returning the frame unchanged
	// passes it through.
	Corrupt func(frame []byte) []byte
	// Rejected counts frames the receiving side dropped (CRC/framing).
	Rejected int64
	seq      uint32
}

// NewWireNet builds the wire transport over a quiescent simulator, with one
// responder daemon per host.
func NewWireNet(sn *simnet.Net) *WireNet {
	w := &WireNet{sn: sn, daemons: make(map[topology.NodeID]*Daemon)}
	for _, h := range sn.Topology().Hosts() {
		w.daemons[h] = NewDaemon(sn.Topology().NameOf(h))
	}
	return w
}

// Daemon returns host h's responder (for assertions and route installs).
func (w *WireNet) Daemon(h topology.NodeID) *Daemon { return w.daemons[h] }

// Prober binds the wire transport to a source host.
func (w *WireNet) Prober(h topology.NodeID) *WireProber {
	return &WireProber{net: w, host: h}
}

// WireProber implements simnet.Prober over WireNet.
type WireProber struct {
	net  *WireNet
	host topology.NodeID
}

// LocalHost implements simnet.Prober.
func (p *WireProber) LocalHost() string { return p.net.sn.Topology().NameOf(p.host) }

// Clock implements simnet.Prober.
func (p *WireProber) Clock() time.Duration { return p.net.sn.Clock() }

// MaxPorts reports the fabric's largest port count, so mappers can
// discover the switch radix to plan for.
func (p *WireProber) MaxPorts() int { return p.net.sn.Topology().MaxPorts() }

// Stats exposes the underlying transport counters.
func (p *WireProber) Stats() simnet.Stats { return p.net.sn.Stats() }

// transmit frames msg, optionally corrupts it, and carries it over the
// simulated network. It returns the destination's decoded view (nil when
// the physical route failed or the frame was rejected).
func (w *WireNet) transmit(src topology.NodeID, msg Message) (dst topology.NodeID, frame []byte, ok bool) {
	raw, err := Encode(msg)
	if err != nil {
		return topology.None, nil, false
	}
	if w.Corrupt != nil {
		raw = w.Corrupt(append([]byte(nil), raw...))
	}
	res := w.sn.Eval(src, msg.Route)
	if res.Outcome != simnet.Delivered {
		return topology.None, nil, false
	}
	return res.Dest, raw, true
}

// HostProbe implements simnet.Prober: frame → network → daemon → framed
// reply → network → decode.
func (p *WireProber) HostProbe(turns simnet.Route) (string, bool) {
	w := p.net
	timing := w.sn.Timing()
	w.seq++
	msg := NewHostProbe(turns, p.LocalHost(), w.seq)
	rtt := 2 * timing.TransitTime(len(turns)+1, simnet.MessageBytes(len(turns)))

	fail := func() (string, bool) {
		w.sn.AccountProbe(true, 0, false)
		return "", false
	}
	dst, frame, ok := w.transmit(p.host, msg)
	if !ok {
		return fail()
	}
	daemon := w.daemons[dst]
	if daemon == nil || !w.sn.Responds(dst) {
		return fail()
	}
	replyFrame, err := daemon.Handle(frame)
	if err != nil {
		w.Rejected++
		return fail()
	}
	if replyFrame == nil {
		return fail()
	}
	reply, err := Decode(replyFrame)
	if err != nil || reply.Type != TProbeReply {
		w.Rejected++
		return fail()
	}
	// The reply rides the inverted route back; it must reach the prober.
	back := w.sn.Eval(dst, reply.Route)
	if back.Outcome != simnet.Delivered || back.Dest != p.host {
		return fail()
	}
	w.sn.AccountProbe(true, rtt, true)
	return string(reply.Payload), true
}

// SwitchProbe implements simnet.Prober: the loopback frame must physically
// return to the sender and still decode.
func (p *WireProber) SwitchProbe(turns simnet.Route) bool {
	w := p.net
	timing := w.sn.Timing()
	w.seq++
	route := turns.Loopback()
	msg := Message{Type: TLoopback, Route: route}
	dst, frame, ok := w.transmit(p.host, msg)
	hit := ok && dst == p.host
	if hit {
		if _, err := Decode(frame); err != nil {
			w.Rejected++
			hit = false
		}
	}
	rtt := timing.TransitTime(2*(len(turns)+1), simnet.MessageBytes(len(route)))
	if hit {
		w.sn.AccountProbe(false, rtt, true)
	} else {
		w.sn.AccountProbe(false, 0, false)
	}
	return hit
}
