package amlayer

import (
	"encoding/binary"
	"fmt"
	"sort"

	"sanmap/internal/routes"
	"sanmap/internal/simnet"
)

// Route-table distribution (§5.5: the master "derives mutually deadlock-free
// routes from [the map] and distributes them throughout the system").
// A TRouteUpdate payload serialises one interface's routes:
//
//	uvarint(#entries) then per entry:
//	  uvarint(len(name)) name bytes
//	  uvarint(#turns)    one signed byte per turn
//
// Entries are sorted by destination name for deterministic encoding.

// EncodeRouteTable serialises a host's route table into a TRouteUpdate
// message to be source-routed to that host.
func EncodeRouteTable(ht *routes.HostTable, routeToHost simnet.Route) (Message, error) {
	names := make([]string, 0, len(ht.Routes))
	for n := range ht.Routes {
		names = append(names, n)
	}
	sort.Strings(names)
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	put(uint64(len(names)))
	for _, name := range names {
		put(uint64(len(name)))
		buf = append(buf, name...)
		r := ht.Routes[name]
		put(uint64(len(r)))
		for _, t := range r {
			if t < -simnet.MaxTurn || t > simnet.MaxTurn {
				return Message{}, ErrRoute
			}
			buf = append(buf, byte(int8(t)))
		}
	}
	return Message{Type: TRouteUpdate, Route: routeToHost.Clone(), Payload: buf}, nil
}

// DecodeRouteTable parses a TRouteUpdate payload back into a route map.
func DecodeRouteTable(m Message) (map[string]simnet.Route, error) {
	if m.Type != TRouteUpdate {
		return nil, fmt.Errorf("amlayer: not a route update: %#x", m.Type)
	}
	buf := m.Payload
	get := func() (uint64, error) {
		v, n := binary.Uvarint(buf)
		if n <= 0 {
			return 0, ErrTruncated
		}
		buf = buf[n:]
		return v, nil
	}
	count, err := get()
	if err != nil {
		return nil, err
	}
	out := make(map[string]simnet.Route, count)
	for i := uint64(0); i < count; i++ {
		nameLen, err := get()
		if err != nil {
			return nil, err
		}
		if uint64(len(buf)) < nameLen {
			return nil, ErrTruncated
		}
		name := string(buf[:nameLen])
		buf = buf[nameLen:]
		turns, err := get()
		if err != nil {
			return nil, err
		}
		if uint64(len(buf)) < turns {
			return nil, ErrTruncated
		}
		r := make(simnet.Route, turns)
		for j := uint64(0); j < turns; j++ {
			t := simnet.Turn(int8(buf[j]))
			if t < -simnet.MaxTurn || t > simnet.MaxTurn {
				return nil, ErrRoute
			}
			r[j] = t
		}
		buf = buf[turns:]
		out[name] = r
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("amlayer: %d trailing bytes in route update", len(buf))
	}
	return out, nil
}
