package amlayer

import (
	"fmt"

	"sanmap/internal/simnet"
)

// Daemon is the per-host responder process of the mapping system: the
// user-level handler that answers host probes with the host's unique name
// (§2.3), accepts the route-table updates the master distributes (§5.5),
// and hands application data up. It is a pure message transformer — the
// transport (simnet / connet) moves the bytes.
type Daemon struct {
	host   string
	routes map[string]simnet.Route
	// Probes counts host probes answered; Updates counts route tables
	// installed; Data counts payload messages delivered.
	Probes, Updates, Data int64
	// Delivered receives application payloads when non-nil.
	Delivered func(payload []byte)
}

// NewDaemon returns a responder for the named host.
func NewDaemon(host string) *Daemon {
	return &Daemon{host: host, routes: make(map[string]simnet.Route)}
}

// Host returns the daemon's host name.
func (d *Daemon) Host() string { return d.host }

// Handle processes one received wire message and returns the encoded reply
// to inject, or nil when the message needs no response. Undecodable
// messages (framing or CRC failures) are dropped with an error, as the
// hardware CRC check would.
func (d *Daemon) Handle(raw []byte) ([]byte, error) {
	m, err := Decode(raw)
	if err != nil {
		return nil, err
	}
	switch m.Type {
	case THostProbe:
		d.Probes++
		reply, err := BuildReply(m, d.host)
		if err != nil {
			return nil, err
		}
		return Encode(reply)
	case TRouteUpdate:
		table, err := DecodeRouteTable(m)
		if err != nil {
			return nil, err
		}
		d.routes = table
		d.Updates++
		return nil, nil
	case TData:
		d.Data++
		if d.Delivered != nil {
			d.Delivered(m.Payload)
		}
		return nil, nil
	case TProbeReply, TLoopback:
		// Replies are consumed by the prober; loopbacks by their sender.
		return nil, nil
	}
	return nil, fmt.Errorf("amlayer: daemon %s: unknown message type %#x", d.host, m.Type)
}

// Route returns the installed source route to the named destination.
func (d *Daemon) Route(dst string) (simnet.Route, bool) {
	r, ok := d.routes[dst]
	return r, ok
}

// KnownDestinations returns the number of installed routes.
func (d *Daemon) KnownDestinations() int { return len(d.routes) }
