package amlayer_test

import (
	"math/rand"
	"testing"

	"sanmap/internal/amlayer"
	"sanmap/internal/cluster"
	"sanmap/internal/isomorph"
	"sanmap/internal/mapper"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// TestMapOverWireTransport: the Berkeley mapper runs unchanged over the
// framed wire transport — every probe and reply passes Encode/Decode and
// the host daemons — and still reconstructs the network exactly.
func TestMapOverWireTransport(t *testing.T) {
	sys := cluster.CConfig(nil)
	net := sys.Net
	h0 := sys.Mapper()
	sn := simnet.NewDefault(net)
	w := amlayer.NewWireNet(sn)

	m, err := mapper.Run(w.Prober(h0), mapper.WithDepth(net.DepthBound(h0)))
	if err != nil {
		t.Fatalf("mapping over wire: %v", err)
	}
	if err := isomorph.MustEqualCore(m.Network, net); err != nil {
		t.Fatal(err)
	}
	if w.Rejected != 0 {
		t.Errorf("clean links rejected %d frames", w.Rejected)
	}
	// Every answered host probe went through a daemon.
	answered := int64(0)
	for _, h := range net.Hosts() {
		answered += w.Daemon(h).Probes
	}
	if answered != m.Stats.Probes.HostHits {
		t.Errorf("daemons answered %d probes, transport recorded %d hits",
			answered, m.Stats.Probes.HostHits)
	}
}

// TestWireMatchesBuiltinTransport: the wire transport must be behaviourally
// identical to the built-in prober — same probe counts, isomorphic maps.
func TestWireMatchesBuiltinTransport(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := topology.MustRandomConnected(4, 6, 2, rng)
	h0 := net.Hosts()[0]
	depth := net.DepthBound(h0)

	snA := simnet.NewDefault(net)
	builtin, err := mapper.Run(snA.Endpoint(h0), mapper.WithDepth(depth))
	if err != nil {
		t.Fatal(err)
	}
	snB := simnet.NewDefault(net)
	wire, err := mapper.Run(amlayer.NewWireNet(snB).Prober(h0), mapper.WithDepth(depth))
	if err != nil {
		t.Fatal(err)
	}
	if builtin.Stats.Probes != wire.Stats.Probes {
		t.Errorf("probe stats diverge: builtin %+v, wire %+v",
			builtin.Stats.Probes, wire.Stats.Probes)
	}
	if ok, reason := isomorph.Check(builtin.Network, wire.Network); !ok {
		t.Errorf("maps diverge: %s", reason)
	}
}

// TestWireCorruption: randomly flipped bits are caught by the CRC — the
// daemons reject the frames, the probes read as timeouts, and the mapper
// degrades gracefully (valid, possibly incomplete map; no contradictions).
func TestWireCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	net := topology.MustStar(3, 3, rng)
	h0 := net.Hosts()[0]
	sn := simnet.NewDefault(net)
	w := amlayer.NewWireNet(sn)
	flips := rand.New(rand.NewSource(11))
	w.Corrupt = func(frame []byte) []byte {
		if flips.Float64() < 0.3 {
			i := 1 + flips.Intn(len(frame)-2) // keep framing flits intact
			frame[i] ^= 1 << uint(flips.Intn(8))
		}
		return frame
	}
	m, err := mapper.Run(w.Prober(h0), mapper.WithDepth(net.DepthBound(h0)))
	if err != nil {
		t.Fatalf("mapping over noisy wire: %v", err)
	}
	if err := m.Network.Validate(); err != nil {
		t.Fatalf("invalid map: %v", err)
	}
	if m.Stats.Inconsistent != 0 {
		t.Errorf("%d contradictions from CRC-dropped frames", m.Stats.Inconsistent)
	}
	if w.Rejected == 0 {
		t.Error("corruption injected but nothing rejected")
	}
	for _, name := range m.Network.SortedHostNames() {
		if net.Lookup(name) == topology.None {
			t.Errorf("phantom host %q", name)
		}
	}
}
