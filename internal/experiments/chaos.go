// The chaos figure: §5's engineering claim made quantitative. The paper's
// production story ("Mapping is redone whenever the network configuration
// changes", with Myricom remapping from scratch each time) is tested here by
// injecting the same deterministic fault schedules into three pipelines —
// incremental self-healing remap, full Berkeley remap from scratch, and the
// Myricom mapper from scratch — and comparing probe cost and map accuracy
// (isomorph similarity to the surviving core N−F) across fault severities.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"sanmap/internal/faults"
	"sanmap/internal/isomorph"
	"sanmap/internal/topology"

	"sanmap/internal/mapper"
	"sanmap/internal/myricom"
	"sanmap/internal/simnet"
)

// ChaosRow aggregates one fault severity across seeds: mean probe counts
// and accuracy for the three pipelines. Probes for the heal pipeline count
// only the post-fault remap (the initial map is sunk cost shared by every
// "configuration changed" event); the from-scratch pipelines pay their full
// cost every time.
type ChaosRow struct {
	Label string
	Seeds int

	HealProbes, FullProbes, MyriProbes float64 // mean probes per remap
	HealScore, FullScore, MyriScore    float64 // mean similarity to N−F
	HealIso, FullIso, MyriIso          int     // runs isomorphic to N−F
}

// chaosProfile is one severity step of the sweep.
type chaosProfile struct {
	label string
	p     faults.Profile
}

func chaosProfiles() []chaosProfile {
	return []chaosProfile{
		{"no faults", faults.Profile{}},
		{"1 link cut", faults.Profile{Cuts: 1}},
		{"2 link cuts", faults.Profile{Cuts: 2}},
		{"3 cuts + flap", faults.Profile{Cuts: 3, Flaps: 1}},
		{"2 cuts + 2% loss", faults.Profile{Cuts: 2, LossRate: 0.02}},
	}
}

// chaosTrial runs all three pipelines over one (severity, seed) cell on
// identical topologies and fault schedules.
type chaosTrial struct {
	healProbes, fullProbes, myriProbes int64
	healScore, fullScore, myriScore    float64
	healIso, fullIso, myriIso          bool
}

func runChaosTrial(prof faults.Profile, seed uint64) (chaosTrial, error) {
	var tr chaosTrial
	base := topology.MustTorus(3, 3, 1, rand.New(rand.NewSource(int64(seed))))
	h0 := base.Hosts()[0]
	// Healing and post-fault from-scratch maps may need longer routes than
	// the clean diameter bound once cuts stretch the surviving paths.
	depth := base.DepthBound(h0) + base.NumSwitches()
	sched := faults.Generate(base, seed, prof)

	score := func(m *topology.Network, want *topology.Network) (float64, bool) {
		ok, _ := isomorph.Check(m, want)
		return isomorph.Compare(m, want).Score(), ok
	}

	// Pipeline 1: incremental heal. Map the clean network, then the faults
	// land ("the network configuration changes"), then Remap updates the
	// existing model in place.
	{
		sn := simnet.NewDefault(base.Clone())
		s, err := mapper.NewSession(sn.Endpoint(h0),
			mapper.WithDepth(depth), mapper.WithConfirm(2))
		if err != nil {
			return tr, err
		}
		if _, err := s.Map(); err != nil {
			return tr, fmt.Errorf("clean map: %w", err)
		}
		inj := faults.Attach(sn, sched)
		inj.ApplyAll()
		sn.Reconfigure()
		before := sn.Stats().TotalProbes()
		res, err := s.Remap()
		if err != nil {
			return tr, fmt.Errorf("heal remap: %w", err)
		}
		tr.healProbes = sn.Stats().TotalProbes() - before
		want := faults.SurvivingCore(sn.Topology(), h0)
		tr.healScore, tr.healIso = score(res.Network, want)
	}

	// Pipeline 2: full Berkeley remap from scratch on the faulted network,
	// under the same stochastic probe faults.
	{
		sn := simnet.NewDefault(base.Clone())
		inj := faults.Attach(sn, sched)
		inj.ApplyAll()
		sn.Reconfigure()
		// A from-scratch mapper wedged by faults (inconsistent model, export
		// failure) is a legitimate outcome of this experiment: it pays its
		// probes and delivers no map.
		m, err := mapper.Run(sn.Endpoint(h0), mapper.WithDepth(depth), mapper.WithConfirm(2))
		tr.fullProbes = sn.Stats().TotalProbes()
		if err == nil {
			want := faults.SurvivingCore(sn.Topology(), h0)
			tr.fullScore, tr.fullIso = score(m.Network, want)
		}
	}

	// Pipeline 3: the Myricom mapper from scratch — the paper's production
	// answer to configuration changes.
	{
		sn := simnet.NewDefault(base.Clone())
		inj := faults.Attach(sn, sched)
		inj.ApplyAll()
		sn.Reconfigure()
		m, err := myricom.Run(sn.Endpoint(h0), myricom.DefaultConfig(depth))
		tr.myriProbes = sn.Stats().TotalProbes()
		if err == nil {
			want := faults.SurvivingCore(sn.Topology(), h0)
			tr.myriScore, tr.myriIso = score(m.Network, want)
		}
	}
	return tr, nil
}

// ChaosSweep runs the three remap pipelines across the severity ladder,
// seeds per severity, on the worker pool. Deterministic for a fixed seed
// set and any worker count.
func ChaosSweep(seeds []uint64, workers int) ([]ChaosRow, error) {
	profs := chaosProfiles()
	rows := make([]ChaosRow, len(profs))
	type cell struct {
		prof int
		tr   chaosTrial
	}
	cells, err := Sweep(len(profs)*len(seeds), workers, func(trial int) (cell, error) {
		pi, si := trial/len(seeds), trial%len(seeds)
		tr, err := runChaosTrial(profs[pi].p, seeds[si])
		return cell{prof: pi, tr: tr}, err
	})
	if err != nil {
		return nil, err
	}
	for _, c := range cells {
		r := &rows[c.prof]
		r.Seeds++
		r.HealProbes += float64(c.tr.healProbes)
		r.FullProbes += float64(c.tr.fullProbes)
		r.MyriProbes += float64(c.tr.myriProbes)
		r.HealScore += c.tr.healScore
		r.FullScore += c.tr.fullScore
		r.MyriScore += c.tr.myriScore
		if c.tr.healIso {
			r.HealIso++
		}
		if c.tr.fullIso {
			r.FullIso++
		}
		if c.tr.myriIso {
			r.MyriIso++
		}
	}
	for i := range rows {
		rows[i].Label = profs[i].label
		if n := float64(rows[i].Seeds); n > 0 {
			rows[i].HealProbes /= n
			rows[i].FullProbes /= n
			rows[i].MyriProbes /= n
			rows[i].HealScore /= n
			rows[i].FullScore /= n
			rows[i].MyriScore /= n
		}
	}
	return rows, nil
}

// FormatChaos renders the chaos comparison table.
func FormatChaos(rows []ChaosRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos — remap cost and accuracy under injected faults (3×3 torus, 9 hosts)\n")
	fmt.Fprintf(&b, "probes per remap (accuracy vs surviving core; iso = runs isomorphic to N−F)\n\n")
	fmt.Fprintf(&b, "%-18s %26s %26s %26s\n", "", "incremental heal", "berkeley from scratch", "myricom from scratch")
	fmt.Fprintf(&b, "%-18s %10s %9s %5s %10s %9s %5s %10s %9s %5s\n",
		"fault load", "probes", "accuracy", "iso", "probes", "accuracy", "iso", "probes", "accuracy", "iso")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %10.1f %9.3f %2d/%-2d %10.1f %9.3f %2d/%-2d %10.1f %9.3f %2d/%-2d\n",
			r.Label,
			r.HealProbes, r.HealScore, r.HealIso, r.Seeds,
			r.FullProbes, r.FullScore, r.FullIso, r.Seeds,
			r.MyriProbes, r.MyriScore, r.MyriIso, r.Seeds)
	}
	b.WriteString("\npaper §5: \"the network is remapped\" on every configuration change — updating an\n")
	b.WriteString("existing map costs a fraction of either from-scratch mapper at equal accuracy.\n")
	return b.String()
}
