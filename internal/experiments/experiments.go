// Package experiments regenerates every table and figure of the SPAA'97
// paper's evaluation (§5): the subcluster component counts (Fig 3), the
// network maps (Figs 4, 5), probe counts and hit ratios (Fig 6), mapping
// times in both operational modes (Fig 7), the model-graph growth series
// (Fig 8), the responder-scaling sweep (Fig 9), the Myricom algorithm
// comparison (Fig 10), and the §5.5 route computation. Each experiment
// returns structured data plus a formatted report that quotes the paper's
// reference numbers next to the measured ones.
//
// Absolute times are simulated (see simnet.Timing); the claims under test
// are the paper's shapes: who wins, by what factor, and where the curves
// bend.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"sanmap/internal/cluster"
	"sanmap/internal/dot"
	"sanmap/internal/isomorph"
	"sanmap/internal/mapper"
	"sanmap/internal/myricom"
	"sanmap/internal/obs"
	"sanmap/internal/routes"
	"sanmap/internal/simnet"
	"sanmap/internal/stats"
	"sanmap/internal/topology"
)

// Systems returns the paper's three measured configurations in order.
func Systems(seed int64) []NamedSystem {
	rng := func() *rand.Rand {
		if seed == 0 {
			return nil
		}
		return rand.New(rand.NewSource(seed))
	}
	return []NamedSystem{
		{"C", cluster.CConfig(rng())},
		{"C+A", cluster.CAConfig(rng())},
		{"C+A+B", cluster.CABConfig(rng())},
	}
}

// NamedSystem pairs a configuration with its paper name.
type NamedSystem struct {
	Name string
	Sys  *cluster.System
}

// mapOnce runs the Berkeley mapper on sys and verifies Theorem 1.
func mapOnce(sys *cluster.System, snapshots bool) (*mapper.Map, *simnet.Net, error) {
	return mapOnceObs(sys, snapshots, nil, nil)
}

// mapOnceObs is mapOnce with the run recorded onto the observability
// layer (either argument may be nil).
func mapOnceObs(sys *cluster.System, snapshots bool, tr *obs.Tracer, reg *obs.Registry) (*mapper.Map, *simnet.Net, error) {
	net := sys.Net
	h0 := sys.Mapper()
	sn := simnet.NewDefault(net)
	m, err := mapper.Run(sn.Endpoint(h0),
		mapper.WithDepth(net.DepthBound(h0)), mapper.WithSnapshots(snapshots),
		mapper.WithTracer(tr), mapper.WithMetrics(reg))
	if err != nil {
		return nil, nil, err
	}
	if err := isomorph.MustEqualCore(m.Network, net); err != nil {
		return nil, nil, fmt.Errorf("map verification: %w", err)
	}
	return m, sn, nil
}

// ---------------------------------------------------------------- Fig 3

// Fig3Row is one row of the component-count table.
type Fig3Row struct {
	Subcluster string
	Measured   topology.Stats
	Paper      topology.Stats
}

// Fig3 builds each subcluster and reports its component counts.
func Fig3() []Fig3Row {
	var out []Fig3Row
	for _, s := range []cluster.Subcluster{cluster.A, cluster.B, cluster.C} {
		out = append(out, Fig3Row{
			Subcluster: string(s),
			Measured:   cluster.Build(nil, s).Net.Stats(),
			Paper:      cluster.PaperStats(s),
		})
	}
	return out
}

// FormatFig3 renders the table.
func FormatFig3(rows []Fig3Row) string {
	var b strings.Builder
	b.WriteString("Fig 3 — subcluster components (measured | paper)\n")
	fmt.Fprintf(&b, "%-10s %22s | %s\n", "Subcluster", "interfaces/switches/links", "paper")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8d/%d/%d | %d/%d/%d\n", r.Subcluster,
			r.Measured.Hosts, r.Measured.Switches, r.Measured.Links,
			r.Paper.Hosts, r.Paper.Switches, r.Paper.Links)
	}
	return b.String()
}

// ------------------------------------------------------------- Fig 4, 5

// Fig4 maps subcluster C and renders the result (the paper's Fig 4 is the
// automatically-generated map of C). It returns the ASCII rendering and the
// DOT document.
func Fig4() (ascii, dotSrc string, err error) {
	m, _, err := mapOnce(Systems(0)[0].Sys, false)
	if err != nil {
		return "", "", err
	}
	return dot.ASCII(m.Network), dot.Graph(m.Network, "subcluster C (mapped)"), nil
}

// Fig5 maps the full 100-node system and renders it.
func Fig5() (ascii, dotSrc string, err error) {
	m, _, err := mapOnce(Systems(0)[2].Sys, false)
	if err != nil {
		return "", "", err
	}
	return dot.ASCII(m.Network), dot.Graph(m.Network, "100-node NOW (mapped)"), nil
}

// ---------------------------------------------------------------- Fig 6

// Fig6Row is one row of the probe-count table.
type Fig6Row struct {
	System       string
	HostProbes   int64
	HostHits     int64
	SwitchProbes int64
	SwitchHits   int64
	// Paper reference values.
	PaperHostProbes, PaperHostHits     int64
	PaperSwitchProbes, PaperSwitchHits int64
}

var fig6Paper = map[string][4]int64{
	// host probes, host hits, switch probes, switch hits
	"C":     {200, 107, 250, 157},
	"C+A":   {412, 216, 491, 295},
	"C+A+B": {804, 324, 1207, 727},
}

// Fig6 maps the three systems and reports probe counts and hit ratios.
func Fig6() ([]Fig6Row, error) {
	var out []Fig6Row
	for _, ns := range Systems(0) {
		m, _, err := mapOnce(ns.Sys, false)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", ns.Name, err)
		}
		p := m.Stats.Probes
		ref := fig6Paper[ns.Name]
		out = append(out, Fig6Row{
			System:     ns.Name,
			HostProbes: p.HostProbes, HostHits: p.HostHits,
			SwitchProbes: p.SwitchProbes, SwitchHits: p.SwitchHits,
			PaperHostProbes: ref[0], PaperHostHits: ref[1],
			PaperSwitchProbes: ref[2], PaperSwitchHits: ref[3],
		})
	}
	return out, nil
}

func pct(hit, total int64) string {
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%d%%", 100*hit/total)
}

// FormatFig6 renders the table.
func FormatFig6(rows []Fig6Row) string {
	var b strings.Builder
	b.WriteString("Fig 6 — host and switch probe message hit ratios (measured | paper)\n")
	fmt.Fprintf(&b, "%-7s %9s %6s %6s %9s %6s %6s | paper: host ratio, switch ratio\n",
		"System", "host", "hits", "ratio", "switch", "hits", "ratio")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-7s %9d %6d %6s %9d %6d %6s | %d/%d=%s, %d/%d=%s\n",
			r.System,
			r.HostProbes, r.HostHits, pct(r.HostHits, r.HostProbes),
			r.SwitchProbes, r.SwitchHits, pct(r.SwitchHits, r.SwitchProbes),
			r.PaperHostProbes, r.PaperHostHits, pct(r.PaperHostHits, r.PaperHostProbes),
			r.PaperSwitchProbes, r.PaperSwitchHits, pct(r.PaperSwitchHits, r.PaperSwitchProbes))
	}
	return b.String()
}

// ---------------------------------------------------------------- Fig 7

// Fig7Row is one row of the mapping-times table.
type Fig7Row struct {
	System string
	Master stats.Durations
	// Pipelined is the master-mode time with the pipelined probe engine
	// active (an extension beyond the paper — the serial Master column is
	// the paper-comparable one).
	Pipelined stats.Durations
	Election  stats.Durations
	// Pipeline carries the probe-engine counters of the last pipelined run.
	Pipeline simnet.WindowStats
	// Paper reference strings (ms min/avg/max).
	PaperMaster, PaperElection string
}

// Fig7 measures master-mode and election-mode mapping times over `runs`
// repetitions, varying the random cabling embedding and election addresses
// per run (the real system's variation came from rerunning on live
// hardware). The pipelined column uses the default window of 8.
func Fig7(runs int) ([]Fig7Row, error) {
	return Fig7Windowed(runs, 8)
}

// Fig7Windowed is Fig7 with an explicit pipeline window (values <= 1 make
// the pipelined column degenerate to a serial rerun). The trials run
// serially; Fig7Sweep spreads them over a worker pool.
func Fig7Windowed(runs, window int) ([]Fig7Row, error) {
	return Fig7Sweep(runs, window, 1)
}

// FormatFig7 renders the table, plus the pipelined-engine extension column
// (serial master time vs the same mapping with timeouts overlapped).
func FormatFig7(rows []Fig7Row) string {
	var b strings.Builder
	b.WriteString("Fig 7 — mapping times, ms min/avg/max (measured | paper)\n")
	fmt.Fprintf(&b, "%-7s %-22s %-22s %-22s | paper master | paper election\n",
		"System", "master", "pipelined", "election")
	for i := range rows {
		r := &rows[i]
		fmt.Fprintf(&b, "%-7s %-22s %-22s %-22s | %s | %s\n",
			r.System, r.Master.MinAvgMax(), r.Pipelined.MinAvgMax(),
			r.Election.MinAvgMax(), r.PaperMaster, r.PaperElection)
	}
	for i := range rows {
		r := &rows[i]
		speedup := float64(r.Master.Avg()) / float64(r.Pipelined.Avg())
		fmt.Fprintf(&b, "%-7s pipelined speedup %.1fx, engine: %s\n",
			r.System, speedup, r.Pipeline.String())
	}
	return b.String()
}

// ---------------------------------------------------------------- Fig 8

// Fig8 runs an instrumented mapping of C+A+B and returns the per-switch-
// exploration series of model-graph nodes, edges and frontier size.
func Fig8() ([]mapper.Snapshot, error) {
	return Fig8Obs(nil, nil)
}

// Fig8Obs is Fig8 with the mapping run recorded onto the observability
// layer: the trace carries the explore/prune spans and per-probe instants
// whose density Fig 8's growth curve summarises. Either argument may be
// nil.
func Fig8Obs(tr *obs.Tracer, reg *obs.Registry) ([]mapper.Snapshot, error) {
	m, _, err := mapOnceObs(Systems(0)[2].Sys, true, tr, reg)
	if err != nil {
		return nil, err
	}
	return m.Series, nil
}

// FormatFig8 renders the series as an ASCII plot plus summary landmarks.
func FormatFig8(series []mapper.Snapshot) string {
	nodes := &stats.Series{Name: "#nodes"}
	edges := &stats.Series{Name: "#edges"}
	frontier := &stats.Series{Name: "#frontier"}
	peak := 0
	for _, s := range series {
		nodes.Append(float64(s.Exploration), float64(s.Vertices))
		edges.Append(float64(s.Exploration), float64(s.Edges))
		frontier.Append(float64(s.Exploration), float64(s.Frontier))
		if s.Vertices > peak {
			peak = s.Vertices
		}
	}
	last := series[len(series)-1]
	var b strings.Builder
	b.WriteString("Fig 8 — model graph growth during a C+A+B mapping\n")
	b.WriteString(stats.ASCIIPlot([]*stats.Series{edges, nodes, frontier}, 72, 16))
	fmt.Fprintf(&b, "explorations: %d (paper: ~250)  peak model nodes: %d (paper: ~750)\n",
		last.Exploration, peak)
	fmt.Fprintf(&b, "final: %d nodes, %d edges, frontier 0 (paper: 140 actual nodes after the prune plummet)\n",
		last.Vertices, last.Edges)
	return b.String()
}

// ---------------------------------------------------------------- Fig 9

// Fig9Point is one measurement of the responder sweep.
type Fig9Point struct {
	Responders int
	Time       time.Duration
	Probes     int64
}

// Fig9 sweeps the number of hosts running (responding) mappers from 1 to
// the full system, in subcluster order and in random order, on the C+A+B
// system. The mapper host always responds. step controls the sweep
// granularity.
func Fig9(step int, seed int64) (ordered, random []Fig9Point, err error) {
	return Fig9AtDepth(step, seed, 0)
}

// Fig9AtDepth is Fig9 with an explicit probe depth (0 = the proven Q+D
// bound). The paper does not state its production depth; smaller depths
// shrink the replicate tail that dominates the low-responder points, which
// is the sensitivity EXPERIMENTS.md discusses. The per-k mappings run
// serially; Fig9Sweep spreads them over a worker pool.
func Fig9AtDepth(step int, seed int64, depth int) (ordered, random []Fig9Point, err error) {
	return Fig9Sweep(step, seed, depth, 1)
}

// FormatFig9 renders the two curves and the paper's landmarks.
func FormatFig9(ordered, random []Fig9Point) string {
	so := &stats.Series{Name: "subcluster order"}
	sr := &stats.Series{Name: "random order"}
	for _, p := range ordered {
		so.Append(float64(p.Responders), p.Time.Seconds())
	}
	for _, p := range random {
		sr.Append(float64(p.Responders), p.Time.Seconds())
	}
	var b strings.Builder
	b.WriteString("Fig 9 — time to map C+A+B vs number of hosts running a mapper\n")
	b.WriteString(stats.ASCIIPlot([]*stats.Series{so, sr}, 72, 14))
	first, last := ordered[0].Time, ordered[len(ordered)-1].Time
	fmt.Fprintf(&b, "1 responder: %v; all responding: %v; speedup %.1fx (paper: ~8x)\n",
		first.Round(time.Millisecond), last.Round(time.Millisecond),
		float64(first)/float64(last))
	// Random-placement landmarks (paper: within 2x of min after 15 random
	// mappers, 1.5x after 20).
	min := random[len(random)-1].Time
	within := func(factor float64) int {
		for _, p := range random {
			if float64(p.Time) <= factor*float64(min) {
				return p.Responders
			}
		}
		return -1
	}
	fmt.Fprintf(&b, "random placement: within 2x of min after %d mappers (paper: 15), within 1.5x after %d (paper: 20)\n",
		within(2), within(1.5))
	return b.String()
}

// --------------------------------------------------------------- Fig 10

// Fig10Row is one row of the Myricom comparison table.
type Fig10Row struct {
	System   string
	Stats    myricom.Stats
	Berkeley int64         // Berkeley total messages on the same system
	BerkTime time.Duration // Berkeley mapping time
	// Paper reference values: loop, host, sw, comp, total, time(ms).
	Paper [6]int64
}

var fig10Paper = map[string][6]int64{
	"C":     {134, 713, 152, 450, 1449, 1414},
	"C+A":   {283, 1484, 329, 1234, 3330, 2197},
	"C+A+B": {424, 2293, 611, 5089, 8413, 4009},
}

// Fig10 runs the Myricom algorithm on the three systems (packet collision
// model — the regime the firmware mapper is designed for) and the Berkeley
// algorithm for the ratio comparisons of §5.4. The systems run serially;
// Fig10Sweep spreads them over a worker pool.
func Fig10() ([]Fig10Row, error) {
	return Fig10Sweep(1)
}

// FormatFig10 renders the table with the §5.4 ratios.
func FormatFig10(rows []Fig10Row) string {
	var b strings.Builder
	b.WriteString("Fig 10 — Myricom algorithm performance (measured | paper)\n")
	fmt.Fprintf(&b, "%-7s %6s %6s %6s %6s %7s %9s | %-28s | msg ratio vs Berkeley (paper)\n",
		"System", "loop", "host", "sw", "comp", "total", "time", "paper l/h/s/c/total/ms")
	paperRatio := map[string]string{"C": "3.2", "C+A": "3.6", "C+A+B": "5.4"}
	for _, r := range rows {
		ratio := float64(r.Stats.Total()) / float64(r.Berkeley)
		fmt.Fprintf(&b, "%-7s %6d %6d %6d %6d %7d %9s | %d/%d/%d/%d/%d/%dms | %.1fx (%sx)\n",
			r.System, r.Stats.Loop, r.Stats.Host, r.Stats.Switch, r.Stats.Compare,
			r.Stats.Total(), stats.Ms(r.Stats.Elapsed)+"ms",
			r.Paper[0], r.Paper[1], r.Paper[2], r.Paper[3], r.Paper[4], r.Paper[5],
			ratio, paperRatio[r.System])
		tratio := float64(r.Stats.Elapsed) / float64(r.BerkTime)
		fmt.Fprintf(&b, "%-7s time vs Berkeley: %.1fx (paper: %s)\n", "",
			tratio, map[string]string{"C": "5.5x", "C+A": "3.9x", "C+A+B": "3.9x"}[r.System])
	}
	return b.String()
}

// ------------------------------------------------------------ §5.5 routes

// RoutesReport runs the full §5.5 pipeline on a freshly mapped C+A+B and
// summarises the route set.
func RoutesReport() (string, error) {
	sys := cluster.CABConfig(nil)
	m, _, err := mapOnce(&cluster.System{Net: sys.Net, Utility: sys.Utility, Parts: sys.Parts}, false)
	if err != nil {
		return "", err
	}
	cfg := routes.DefaultConfig()
	if u := m.Network.Lookup(sys.Net.NameOf(sys.Utility)); u != topology.None {
		cfg.IgnoreHosts = []topology.NodeID{u}
	}
	tab, err := routes.Compute(m.Network, cfg)
	if err != nil {
		return "", err
	}
	if err := tab.VerifyUpDown(); err != nil {
		return "", err
	}
	if err := tab.VerifyDeadlockFree(); err != nil {
		return "", err
	}
	if err := tab.VerifyDelivery(m.Network); err != nil {
		return "", err
	}
	hosts := m.Network.NumHosts()
	pairs := 0
	maxLen := 0
	tab.Pairs(func(_, _ topology.NodeID, wires []int, _ simnet.Route) {
		pairs++
		if len(wires) > maxLen {
			maxLen = len(wires)
		}
	})
	var b strings.Builder
	b.WriteString("§5.5 — UP*/DOWN* deadlock-free routes on the mapped 100-node system\n")
	fmt.Fprintf(&b, "root: %s (chosen far from all hosts, utility host ignored)\n",
		m.Network.NameOf(tab.Root))
	fmt.Fprintf(&b, "routes: %d ordered host pairs (%d hosts), longest path %d wires\n",
		pairs, hosts, maxLen)
	fmt.Fprintf(&b, "dominant switches relabelled: %d\n", len(tab.Dominant))
	b.WriteString("verified: up*/down* compliance, channel-dependency acyclicity, delivery of every route\n")
	return b.String(), nil
}
