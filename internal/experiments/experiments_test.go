package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestFig3Exact: component counts must match the paper exactly.
func TestFig3Exact(t *testing.T) {
	for _, r := range Fig3() {
		if r.Measured != r.Paper {
			t.Errorf("subcluster %s: %+v, paper %+v", r.Subcluster, r.Measured, r.Paper)
		}
	}
}

// TestFig4And5Render: the map figures render with plausible content.
func TestFig4And5Render(t *testing.T) {
	ascii, dotSrc, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ascii, "36 hosts, 13 switches, 64 links") {
		t.Errorf("fig 4 summary wrong:\n%s", ascii)
	}
	if !strings.Contains(dotSrc, "graph") {
		t.Error("fig 4 DOT missing")
	}
	ascii5, _, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ascii5, "100 hosts, 40 switches, 193 links") {
		t.Errorf("fig 5 summary wrong:\n%s", ascii5)
	}
}

// TestFig6Shape: the reproduction bands — hit ratios in the tens of
// percent, declining host ratio with system size, total probes growing
// superlinearly but staying within ~3x of the paper's totals.
func TestFig6Shape(t *testing.T) {
	rows, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows: %d", len(rows))
	}
	for i, r := range rows {
		total := r.HostProbes + r.SwitchProbes
		paperTotal := r.PaperHostProbes + r.PaperSwitchProbes
		if total < paperTotal/3 || total > paperTotal*3 {
			t.Errorf("%s: total probes %d outside 3x band of paper's %d", r.System, total, paperTotal)
		}
		if i > 0 {
			prev := rows[i-1]
			if total <= prev.HostProbes+prev.SwitchProbes {
				t.Errorf("probe totals must grow with system size")
			}
		}
	}
	// Host hit ratio declines from C to C+A+B (paper: 53% -> 40%).
	first := float64(rows[0].HostHits) / float64(rows[0].HostProbes)
	last := float64(rows[2].HostHits) / float64(rows[2].HostProbes)
	if last >= first {
		t.Errorf("host hit ratio should decline with size: %.2f -> %.2f", first, last)
	}
}

// TestFig7Shape: times grow with system size; election is slower than
// master on every system; magnitudes within 3x of the paper's averages.
func TestFig7Shape(t *testing.T) {
	rows, err := Fig7(3)
	if err != nil {
		t.Fatal(err)
	}
	paperAvg := map[string][2]time.Duration{
		"C":     {256 * time.Millisecond, 278 * time.Millisecond},
		"C+A":   {522 * time.Millisecond, 577 * time.Millisecond},
		"C+A+B": {1011 * time.Millisecond, 1298 * time.Millisecond},
	}
	var prevMaster time.Duration
	for i := range rows {
		r := &rows[i]
		if r.Election.Avg() <= r.Master.Avg() {
			t.Errorf("%s: election (%v) should be slower than master (%v)",
				r.System, r.Election.Avg(), r.Master.Avg())
		}
		if r.Master.Avg() <= prevMaster {
			t.Errorf("%s: times should grow with system size", r.System)
		}
		prevMaster = r.Master.Avg()
		ref := paperAvg[r.System]
		if got := r.Master.Avg(); got < ref[0]/3 || got > ref[0]*3 {
			t.Errorf("%s master avg %v outside 3x of paper %v", r.System, got, ref[0])
		}
		if got := r.Election.Avg(); got < ref[1]/3 || got > ref[1]*3 {
			t.Errorf("%s election avg %v outside 3x of paper %v", r.System, got, ref[1])
		}
	}
}

// TestFig8Shape: the model graph peaks well above the actual node count and
// the final prune lands on exactly the actual core (140 nodes, 193 edges).
func TestFig8Shape(t *testing.T) {
	series, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	peak := 0
	for _, s := range series {
		if s.Vertices > peak {
			peak = s.Vertices
		}
	}
	last := series[len(series)-1]
	if last.Vertices != 140 || last.Edges != 193 {
		t.Errorf("final model %d nodes / %d edges, want 140/193", last.Vertices, last.Edges)
	}
	if peak < 2*140 {
		t.Errorf("peak model nodes %d; expected substantial replication before merging", peak)
	}
	if last.Frontier != 0 {
		t.Errorf("frontier %d at completion", last.Frontier)
	}
}

// TestFig9Shape: adding responders speeds mapping up dramatically; the
// final point is the fastest; random placement converges faster than
// subcluster order early on.
func TestFig9Shape(t *testing.T) {
	ordered, random, err := Fig9(20, 1)
	if err != nil {
		t.Fatal(err)
	}
	first, last := ordered[0].Time, ordered[len(ordered)-1].Time
	if speedup := float64(first) / float64(last); speedup < 4 {
		t.Errorf("responder speedup %.1fx; paper saw ~8x", speedup)
	}
	// At the same responder count early in the sweep, random placement
	// should not be slower than subcluster order (it spreads anchors).
	if len(random) > 1 && len(ordered) > 1 {
		if random[1].Time > ordered[1].Time*2 {
			t.Errorf("random placement much slower than ordered at k=%d: %v vs %v",
				random[1].Responders, random[1].Time, ordered[1].Time)
		}
	}
}

// TestFig10Shape: the Myricom algorithm sends several times the Berkeley
// algorithm's messages, comparisons dominate at scale, and the ratio grows
// into the paper's band.
func TestFig10Shape(t *testing.T) {
	rows, err := Fig10()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		ratio := float64(r.Stats.Total()) / float64(r.Berkeley)
		if ratio < 2 || ratio > 12 {
			t.Errorf("%s: message ratio %.1f outside plausible band (paper 3.2-5.4)", r.System, ratio)
		}
		if r.Stats.Compare < r.Stats.Loop+r.Stats.Host+r.Stats.Switch {
			t.Errorf("%s: comparisons should dominate: %+v", r.System, r.Stats)
		}
	}
	// Comparison probes grow superlinearly (paper: 450 -> 1234 -> 5089).
	if !(rows[0].Stats.Compare < rows[1].Stats.Compare && rows[1].Stats.Compare < rows[2].Stats.Compare) {
		t.Error("comparison counts should grow with system size")
	}
}

// TestRoutesReport: the §5.5 pipeline verifies end to end.
func TestRoutesReport(t *testing.T) {
	report, err := RoutesReport()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, "9900 ordered host pairs") {
		t.Errorf("unexpected report:\n%s", report)
	}
	if !strings.Contains(report, "verified") {
		t.Errorf("missing verification line:\n%s", report)
	}
}

// TestFormatters smoke-tests every report renderer against live data so the
// sanexp output paths stay covered.
func TestFormatters(t *testing.T) {
	if out := FormatFig3(Fig3()); !strings.Contains(out, "Fig 3") {
		t.Error("FormatFig3")
	}
	rows6, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if out := FormatFig6(rows6); !strings.Contains(out, "ratio") {
		t.Error("FormatFig6")
	}
	rows7, err := Fig7(1)
	if err != nil {
		t.Fatal(err)
	}
	if out := FormatFig7(rows7); !strings.Contains(out, "master") {
		t.Error("FormatFig7")
	}
	s8, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if out := FormatFig8(s8); !strings.Contains(out, "peak model nodes") {
		t.Error("FormatFig8")
	}
	ordered, random, err := Fig9(40, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out := FormatFig9(ordered, random); !strings.Contains(out, "speedup") {
		t.Error("FormatFig9")
	}
	rows10, err := Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if out := FormatFig10(rows10); !strings.Contains(out, "Berkeley") {
		t.Error("FormatFig10")
	}
}
