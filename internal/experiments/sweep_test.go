package experiments

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
)

// TestSweepOrderAndBound: results come back indexed by trial, and the pool
// never runs more than the requested number of trials at once.
func TestSweepOrderAndBound(t *testing.T) {
	const n, workers = 64, 4
	var inFlight, peak int32
	got, err := Sweep(n, workers, func(trial int) (int, error) {
		cur := atomic.AddInt32(&inFlight, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if cur <= p || atomic.CompareAndSwapInt32(&peak, p, cur) {
				break
			}
		}
		defer atomic.AddInt32(&inFlight, -1)
		return trial * trial, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("trial %d = %d, want %d", i, v, i*i)
		}
	}
	if peak > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", peak, workers)
	}
}

// TestSweepError: the reported error is the lowest-index failure, matching
// what a serial run stops on.
func TestSweepError(t *testing.T) {
	for _, workers := range []int{1, 8} {
		_, err := Sweep(32, workers, func(trial int) (int, error) {
			if trial == 7 || trial == 21 {
				return 0, fmt.Errorf("trial %d failed", trial)
			}
			return trial, nil
		})
		if err == nil || err.Error() != "trial 7 failed" {
			t.Errorf("workers=%d: err = %v, want trial 7's", workers, err)
		}
	}
}

// TestSweepEmpty: zero trials is a clean no-op.
func TestSweepEmpty(t *testing.T) {
	got, err := Sweep(0, 4, func(int) (int, error) { return 0, errors.New("never") })
	if err != nil || got != nil {
		t.Errorf("Sweep(0) = %v, %v; want nil, nil", got, err)
	}
}

// TestFig7SweepDeterministic locks the sweep determinism contract on a real
// experiment: the parallel Fig 7 report is byte-identical to the serial one.
func TestFig7SweepDeterministic(t *testing.T) {
	serial, err := Fig7Sweep(2, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Fig7Sweep(2, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("parallel Fig 7 rows differ from serial")
	}
	if s, p := FormatFig7(serial), FormatFig7(parallel); s != p {
		t.Fatalf("parallel Fig 7 report not byte-identical:\n--- serial ---\n%s--- parallel ---\n%s", s, p)
	}
}

// TestRandomizedTrialsDeterministic: per-trial seeding makes the randomized
// sweep independent of the worker count.
func TestRandomizedTrialsDeterministic(t *testing.T) {
	serial, err := RandomizedTrials(4, 100, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RandomizedTrials(4, 100, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel randomized trials differ from serial:\n%v\n%v", serial, parallel)
	}
}
