// The parallel sweep runner: every multi-trial experiment (Fig 7's
// per-system repetitions, Fig 9's responder scaling, Fig 10's system table,
// the randomized-trial extension) routes its independent trials through
// Sweep, which runs them on a bounded worker pool.
//
// Determinism contract: trials are pure functions of their index (any
// randomness comes from a per-trial seeded RNG), results are collected by
// trial index, and reductions iterate in index order — so the output of a
// parallel sweep is byte-identical to the serial run, for any worker count.
package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"sanmap/internal/cluster"
	"sanmap/internal/election"
	"sanmap/internal/isomorph"
	"sanmap/internal/mapper"
	"sanmap/internal/myricom"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// Sweep runs fn for every trial in [0, n) and returns the results indexed
// by trial. workers bounds the number of concurrent trials; values <= 1
// run serially on the calling goroutine. Trials must be independent: fn
// must not mutate state shared between trials (shared inputs may be read
// concurrently). On failure the error of the lowest-index failing trial is
// returned — the same error a serial run would stop on — though in
// parallel mode later trials may still have run.
func Sweep[T any](n, workers int, fn func(trial int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i], errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// DefaultWorkers resolves a -parallel flag value: positive values pass
// through, anything else means one worker per CPU.
func DefaultWorkers(requested int) int {
	if requested > 0 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// ---------------------------------------------------------------- Fig 7

// fig7Trial is the measurement of one (system, run) cell.
type fig7Trial struct {
	master    time.Duration
	pipelined time.Duration
	election  time.Duration
	pipeline  simnet.WindowStats
}

// Fig7Sweep is Fig7Windowed with the (system × run) trials spread over a
// worker pool. Each trial builds its own system from a per-run seed, so
// trials share nothing; the reduction walks trials in index order and the
// rows are byte-identical to the serial run.
func Fig7Sweep(runs, window, workers int) ([]Fig7Row, error) {
	paper := map[string][2]string{
		"C":     {"248 / 256 / 265", "277 / 278 / 282"},
		"C+A":   {"499 / 522 / 555", "569 / 577 / 587"},
		"C+A+B": {"981 / 1011 / 1208", "1065 / 1298 / 3332"},
	}
	builders := []struct {
		name  string
		build func(*rand.Rand) *cluster.System
	}{
		{"C", cluster.CConfig},
		{"C+A", cluster.CAConfig},
		{"C+A+B", cluster.CABConfig},
	}
	trials, err := Sweep(len(builders)*runs, workers, func(trial int) (fig7Trial, error) {
		bl := builders[trial/runs]
		run := trial % runs
		rng := rand.New(rand.NewSource(int64(run) + 1))
		sys := bl.build(rng)
		net := sys.Net
		h0 := sys.Mapper()
		depth := net.DepthBound(h0)
		var t fig7Trial

		sn := simnet.NewDefault(net)
		m, err := mapper.Run(sn.Endpoint(h0), mapper.WithDepth(depth))
		if err != nil {
			return t, fmt.Errorf("%s master run %d: %w", bl.name, run, err)
		}
		if err := isomorph.MustEqualCore(m.Network, net); err != nil {
			return t, fmt.Errorf("%s master run %d: %w", bl.name, run, err)
		}
		t.master = m.Stats.Elapsed

		snP := simnet.NewDefault(net)
		mp, err := mapper.Run(snP.Endpoint(h0),
			mapper.WithDepth(depth), mapper.WithPipeline(window))
		if err != nil {
			return t, fmt.Errorf("%s pipelined run %d: %w", bl.name, run, err)
		}
		if err := isomorph.MustEqualCore(mp.Network, net); err != nil {
			return t, fmt.Errorf("%s pipelined run %d: %w", bl.name, run, err)
		}
		t.pipelined = mp.Stats.Elapsed
		t.pipeline = mp.Stats.Pipeline

		res, err := election.Run(net, election.Config{
			Model:  simnet.CircuitModel,
			Timing: simnet.DefaultTiming(),
			Mapper: mapper.DefaultConfig(depth),
			Rng:    rand.New(rand.NewSource(int64(run)*7919 + 17)),
		})
		if err != nil {
			return t, fmt.Errorf("%s election run %d: %w", bl.name, run, err)
		}
		if err := isomorph.MustEqualCore(res.Map.Network, net); err != nil {
			return t, fmt.Errorf("%s election run %d: %w", bl.name, run, err)
		}
		t.election = res.Elapsed
		return t, nil
	})
	if err != nil {
		return nil, err
	}
	var out []Fig7Row
	for bi, bl := range builders {
		row := Fig7Row{System: bl.name,
			PaperMaster: paper[bl.name][0], PaperElection: paper[bl.name][1]}
		for run := 0; run < runs; run++ {
			t := trials[bi*runs+run]
			row.Master.Add(t.master)
			row.Pipelined.Add(t.pipelined)
			row.Pipeline = t.pipeline
			row.Election.Add(t.election)
		}
		out = append(out, row)
	}
	return out, nil
}

// ---------------------------------------------------------------- Fig 9

// Fig9Sweep is Fig9AtDepth with the per-k mappings (both curves) spread
// over a worker pool. The system, host orders and sampled k values are
// fixed up front; each trial builds its own transport over the shared
// read-only topology, so any worker count produces byte-identical curves.
func Fig9Sweep(step int, seed int64, depth, workers int) (ordered, random []Fig9Point, err error) {
	if step < 1 {
		step = 1
	}
	sys := cluster.CABConfig(nil)
	net := sys.Net
	h0 := sys.Mapper()
	if depth == 0 {
		depth = net.DepthBound(h0)
	}
	var hosts []topology.NodeID
	for _, h := range net.Hosts() {
		if h != h0 {
			hosts = append(hosts, h)
		}
	}
	// Ordered: hosts come out of the builder in subcluster order (C, A, B),
	// matching "additional mappers were run in order of increasing node
	// number ... filling out each subcluster completely".
	shuffled := append([]topology.NodeID(nil), hosts...)
	rand.New(rand.NewSource(seed)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	// Sample k = 1, 1+step, ... and always include the full-system point
	// (every host responding).
	total := len(hosts) + 1
	var ks []int
	for k := 1; k <= total; k += step {
		ks = append(ks, k)
	}
	if ks[len(ks)-1] != total {
		ks = append(ks, total)
	}
	// Trials [0, len(ks)) walk the ordered curve, the rest the random one.
	pts, err := Sweep(2*len(ks), workers, func(trial int) (Fig9Point, error) {
		order := hosts
		if trial >= len(ks) {
			order = shuffled
		}
		k := ks[trial%len(ks)]
		sn := simnet.NewDefault(net)
		responding := map[topology.NodeID]bool{h0: true}
		for i := 0; i < k-1 && i < len(order); i++ {
			responding[order[i]] = true
		}
		for _, h := range net.Hosts() {
			if !responding[h] {
				sn.SetResponder(h, false)
			}
		}
		m, err := mapper.Run(sn.Endpoint(h0),
			mapper.WithDepth(depth), mapper.WithMaxVertices(1<<21))
		if err != nil {
			return Fig9Point{}, fmt.Errorf("k=%d: %w", k, err)
		}
		return Fig9Point{Responders: k, Time: m.Stats.Elapsed,
			Probes: m.Stats.Probes.TotalProbes()}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return pts[:len(ks)], pts[len(ks):], nil
}

// --------------------------------------------------------------- Fig 10

// Fig10Sweep is Fig10 with one trial per system. Each trial rebuilds its
// own system, so the three mappings run concurrently without sharing.
func Fig10Sweep(workers int) ([]Fig10Row, error) {
	names := []string{"C", "C+A", "C+A+B"}
	return Sweep(len(names), workers, func(trial int) (Fig10Row, error) {
		ns := Systems(0)[trial]
		net := ns.Sys.Net
		h0 := ns.Sys.Mapper()
		depth := net.DepthBound(h0)

		snM := simnet.New(net, simnet.PacketModel, simnet.DefaultTiming())
		my, err := myricom.Run(snM.Endpoint(h0), myricom.DefaultConfig(depth))
		if err != nil {
			return Fig10Row{}, fmt.Errorf("%s myricom: %w", ns.Name, err)
		}
		if err := isomorph.MustEqualCore(my.Network, net); err != nil {
			return Fig10Row{}, fmt.Errorf("%s myricom map: %w", ns.Name, err)
		}
		snB := simnet.NewDefault(net)
		berk, err := mapper.Run(snB.Endpoint(h0), mapper.WithDepth(depth))
		if err != nil {
			return Fig10Row{}, fmt.Errorf("%s berkeley: %w", ns.Name, err)
		}
		return Fig10Row{
			System:   ns.Name,
			Stats:    my.Stats,
			Berkeley: berk.Stats.Probes.TotalProbes(),
			BerkTime: berk.Stats.Elapsed,
			Paper:    fig10Paper[ns.Name],
		}, nil
	})
}

// ---------------------------------------------------- randomized trials

// RandomizedTrial is one run of the §6 coupon-collector hybrid mapper.
type RandomizedTrial struct {
	Probes  int64
	SimTime time.Duration
}

// RandomizedTrials runs independent randomized-hybrid mappings of a
// hypercube (the extension benchmark's expander-ish topology), each with
// its own seed-derived RNG, through the sweep runner. Trial i uses seed
// seed+i, so results are reproducible and independent of the worker count.
func RandomizedTrials(trials, couponProbes int, seed int64, workers int) ([]RandomizedTrial, error) {
	net := topology.MustHypercube(4, 1, rand.New(rand.NewSource(seed)))
	h0 := net.Hosts()[0]
	depth := net.DepthBound(h0)
	return Sweep(trials, workers, func(trial int) (RandomizedTrial, error) {
		sn := simnet.NewDefault(net)
		m, err := mapper.RandomizedRun(sn.Endpoint(h0), mapper.RandomizedConfig{
			Config:       mapper.DefaultConfig(depth),
			CouponProbes: couponProbes,
			Rng:          rand.New(rand.NewSource(seed + int64(trial))),
		})
		if err != nil {
			return RandomizedTrial{}, fmt.Errorf("trial %d: %w", trial, err)
		}
		if err := isomorph.MustEqualCore(m.Network, net); err != nil {
			return RandomizedTrial{}, fmt.Errorf("trial %d: %w", trial, err)
		}
		return RandomizedTrial{Probes: m.Stats.Probes.TotalProbes(),
			SimTime: m.Stats.Elapsed}, nil
	})
}

// HostQRow is the probe bound seen from one candidate mapper host.
type HostQRow struct {
	Host string
	Q    int
}

// HostQTable computes Q(h) for every host of net — the per-candidate probe
// bound a deployment would consult to place the master mapper — with one
// trial per host. The topology is only read, so trials parallelise freely;
// rows come back in host order regardless of worker count.
func HostQTable(net *topology.Network, workers int) ([]HostQRow, error) {
	hosts := net.Hosts()
	return Sweep(len(hosts), workers, func(trial int) (HostQRow, error) {
		h := hosts[trial]
		q, _ := net.Q(h)
		return HostQRow{Host: net.NameOf(h), Q: q}, nil
	})
}
