package experiments

import "testing"

// TestChaosSweepGolden pins the chaos experiment's qualitative claims under
// fixed seeds: the incremental heal always reconstructs the surviving core,
// costs a fraction of either from-scratch remap, and the whole sweep is
// deterministic for any worker count (the `make chaos` CI lane).
func TestChaosSweepGolden(t *testing.T) {
	seeds := []uint64{1, 2}
	rows, err := ChaosSweep(seeds, 1)
	if err != nil {
		t.Fatalf("ChaosSweep: %v", err)
	}
	if len(rows) == 0 {
		t.Fatal("empty sweep")
	}
	for _, r := range rows {
		if r.Seeds != len(seeds) {
			t.Fatalf("%s: ran %d seeds, want %d", r.Label, r.Seeds, len(seeds))
		}
		// The headline: under every fault load the self-healing pipeline
		// reconstructs the surviving core exactly, never panics or hangs.
		if r.HealIso != r.Seeds {
			t.Errorf("%s: healed map not isomorphic to surviving core in %d/%d runs",
				r.Label, r.Seeds-r.HealIso, r.Seeds)
		}
		if r.HealScore < 1 {
			t.Errorf("%s: heal accuracy %.3f < 1", r.Label, r.HealScore)
		}
		// §5: updating an existing map beats mapping from scratch — by a
		// wide margin, for both from-scratch mappers.
		if r.HealProbes*2 >= r.FullProbes {
			t.Errorf("%s: heal (%.1f probes) not measurably cheaper than full berkeley remap (%.1f)",
				r.Label, r.HealProbes, r.FullProbes)
		}
		if r.HealProbes*2 >= r.MyriProbes {
			t.Errorf("%s: heal (%.1f probes) not measurably cheaper than myricom remap (%.1f)",
				r.Label, r.HealProbes, r.MyriProbes)
		}
	}

	// Determinism across worker counts: the parallel sweep must render
	// byte-identically to the serial one.
	par, err := ChaosSweep(seeds, 4)
	if err != nil {
		t.Fatalf("parallel ChaosSweep: %v", err)
	}
	if FormatChaos(rows) != FormatChaos(par) {
		t.Errorf("chaos sweep not deterministic across worker counts:\nserial:\n%s\nparallel:\n%s",
			FormatChaos(rows), FormatChaos(par))
	}
}
