package eventq

import (
	"container/heap"
	"math/rand"
	"testing"
)

// ev is the discrete-event shape both queues are exercised with: a virtual
// time plus a tie-breaking sequence number, giving a strict total order
// consistent with the time.
type ev struct {
	at  int64
	seq int64
}

func evLess(a, b ev) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func evAt(e ev) int64 { return e.at }

// refHeap is the container/heap oracle the typed queues are cross-checked
// against.
type refHeap []ev

func (h refHeap) Len() int           { return len(h) }
func (h refHeap) Less(i, j int) bool { return evLess(h[i], h[j]) }
func (h refHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)        { *h = append(*h, x.(ev)) }
func (h *refHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// queue abstracts Heap and Bucketed so the adversarial schedules run
// identically against both.
type queue interface {
	Len() int
	Push(ev)
	Pop() ev
	Peek() (ev, bool)
}

type heapQ struct{ *Heap[ev] }
type bucketQ struct{ *Bucketed[ev] }

// adversarySchedule drives q and the container/heap oracle through the same
// randomized push/pop schedule, checking every pop and peek. Push times
// respect the discrete-event invariant (never before the last popped item)
// but are otherwise drawn from the given increment distribution — which the
// adversarial cases choose to stress bucket boundaries, massive same-bucket
// bursts, tie-breaks, and overflow/rebase jumps.
func adversarySchedule(t *testing.T, q queue, rng *rand.Rand, ops int, incr func(*rand.Rand) int64) {
	t.Helper()
	ref := &refHeap{}
	var now, seq int64
	for i := 0; i < ops; i++ {
		if q.Len() != ref.Len() {
			t.Fatalf("op %d: Len = %d, oracle %d", i, q.Len(), ref.Len())
		}
		if q.Len() == 0 || rng.Intn(2) == 0 {
			e := ev{at: now + incr(rng), seq: seq}
			seq++
			q.Push(e)
			heap.Push(ref, e)
			continue
		}
		if v, ok := q.Peek(); !ok || v != (*ref)[0] {
			t.Fatalf("op %d: Peek = %+v, %v; oracle %+v", i, v, ok, (*ref)[0])
		}
		got, want := q.Pop(), heap.Pop(ref).(ev)
		if got != want {
			t.Fatalf("op %d: Pop = %+v, oracle %+v", i, got, want)
		}
		now = got.at
	}
	for ref.Len() > 0 {
		got, want := q.Pop(), heap.Pop(ref).(ev)
		if got != want {
			t.Fatalf("drain: Pop = %+v, oracle %+v", got, want)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
}

// The adversarial increment distributions. Width below is always 550 (the
// wormsim configuration: SwitchLatency in nanoseconds).
var adversaries = map[string]func(*rand.Rand) int64{
	// Everything lands in the current or next bucket; maximal insertion-sort
	// pressure and head-index churn.
	"same-bucket-burst": func(rng *rand.Rand) int64 { return rng.Int63n(2) },
	// Exact timestamp ties: ordering decided purely by the sequence number.
	"all-ties": func(rng *rand.Rand) int64 { return 0 },
	// Steps straddling bucket boundaries.
	"boundary": func(rng *rand.Rand) int64 {
		return 550*rng.Int63n(3) + []int64{0, 1, 549}[rng.Intn(3)]
	},
	// Mostly near events with occasional 55 ms jumps far past the horizon —
	// the wormsim break-timer shape; forces overflow migration and rebase.
	"overflow-spikes": func(rng *rand.Rand) int64 {
		if rng.Intn(8) == 0 {
			return 55_000_000 + rng.Int63n(1000)
		}
		return rng.Int63n(1100)
	},
	// Every event beyond the horizon: the calendar degenerates to its
	// overflow heap and must still match the oracle.
	"all-overflow": func(rng *rand.Rand) int64 { return 200_000 + rng.Int63n(100_000) },
	// Wide uniform spread across and beyond the window.
	"uniform-wide": func(rng *rand.Rand) int64 { return rng.Int63n(550 * 400) },
}

func TestBucketedAdversarialVsContainerHeap(t *testing.T) {
	for name, incr := range adversaries {
		t.Run(name, func(t *testing.T) {
			q := bucketQ{NewBucketed[ev](550, 256, evAt, evLess)}
			adversarySchedule(t, q, rand.New(rand.NewSource(42)), 20000, incr)
		})
	}
}

func TestHeapAdversarialVsContainerHeap(t *testing.T) {
	for name, incr := range adversaries {
		t.Run(name, func(t *testing.T) {
			q := heapQ{New(evLess)}
			adversarySchedule(t, q, rand.New(rand.NewSource(42)), 20000, incr)
		})
	}
}

// TestBucketedPreRunInjection covers the wormsim Inject pattern: events
// pushed at descending times before any pop. The first push anchors the
// window, so earlier pushes clamp into the cursor bucket; the in-bucket
// sort must still produce the global order.
func TestBucketedPreRunInjection(t *testing.T) {
	q := NewBucketed[ev](550, 256, evAt, evLess)
	ref := &refHeap{}
	rng := rand.New(rand.NewSource(7))
	for seq := int64(0); seq < 4000; seq++ {
		e := ev{at: rng.Int63n(1_000_000), seq: seq}
		q.Push(e)
		heap.Push(ref, e)
	}
	for ref.Len() > 0 {
		got, want := q.Pop(), heap.Pop(ref).(ev)
		if got != want {
			t.Fatalf("Pop = %+v, oracle %+v", got, want)
		}
	}
}

// TestBucketedRebaseJump pins the rebase-on-empty paths: draining the
// window with only far-future items left re-anchors the calendar, and a
// push into an empty queue re-anchors without touching the overflow heap.
func TestBucketedRebaseJump(t *testing.T) {
	q := NewBucketed[ev](550, 16, evAt, evLess)
	q.Push(ev{at: 10, seq: 0})
	q.Push(ev{at: 55_000_000, seq: 1}) // far beyond the 16-bucket horizon
	q.Push(ev{at: 55_000_100, seq: 2})
	if got := q.Pop(); got.seq != 0 {
		t.Fatalf("first pop seq = %d", got.seq)
	}
	if got := q.Pop(); got.seq != 1 {
		t.Fatalf("post-rebase pop seq = %d", got.seq)
	}
	// Queue non-empty (seq 2 migrated into the window); a near push lands
	// relative to the rebased anchor.
	q.Push(ev{at: 55_000_050, seq: 3})
	if got := q.Pop(); got.seq != 3 {
		t.Fatalf("pop after rebase push seq = %d", got.seq)
	}
	if got := q.Pop(); got.seq != 2 {
		t.Fatalf("final pop seq = %d", got.seq)
	}
	// Empty-queue push far from the stale anchor must re-anchor, not
	// overflow.
	q.Push(ev{at: 9_999_999_999, seq: 4})
	if v, ok := q.Peek(); !ok || v.seq != 4 {
		t.Fatalf("Peek after empty-jump = %+v, %v", v, ok)
	}
	if q.overflow.Len() != 0 {
		t.Fatalf("empty-queue push landed in overflow")
	}
	if got := q.Pop(); got.seq != 4 {
		t.Fatalf("pop after empty-jump seq = %d", got.seq)
	}
}

func TestBucketedReset(t *testing.T) {
	q := NewBucketed[ev](550, 16, evAt, evLess)
	for i := int64(0); i < 100; i++ {
		q.Push(ev{at: i * 100, seq: i})
	}
	q.Push(ev{at: 55_000_000, seq: 100})
	q.Pop()
	q.Reset()
	if q.Len() != 0 {
		t.Fatalf("Len after Reset = %d", q.Len())
	}
	q.Push(ev{at: 5, seq: 0})
	if got := q.Pop(); got.at != 5 {
		t.Fatalf("pop after Reset = %+v", got)
	}
}

// TestBucketedNoAllocs locks the steady-state property: once the buckets
// and overflow heap have grown to their high-water marks, push/pop churn
// allocates nothing. A recorded schedule is replayed after Reset, so every
// run revisits exactly the warm run's bucket occupancy.
func TestBucketedNoAllocs(t *testing.T) {
	q := NewBucketedEv()
	rng := rand.New(rand.NewSource(3))
	type op struct {
		push bool
		e    ev
	}
	var sched []op
	var now, seq int64
	for i := 0; i < 4096; i++ {
		if q.Len() == 0 || rng.Intn(2) == 0 {
			d := rng.Int63n(1100)
			if rng.Intn(16) == 0 {
				d = 55_000_000
			}
			e := ev{at: now + d, seq: seq}
			seq++
			q.Push(e)
			sched = append(sched, op{push: true, e: e})
		} else {
			now = q.Pop().at
			sched = append(sched, op{})
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		q.Reset()
		for _, o := range sched {
			if o.push {
				q.Push(o.e)
			} else {
				q.Pop()
			}
		}
	})
	if allocs != 0 {
		t.Errorf("AllocsPerRun = %v, want 0", allocs)
	}
}

// NewBucketedEv builds the wormsim-shaped queue used by the alloc test and
// benchmarks.
func NewBucketedEv() *Bucketed[ev] { return NewBucketed[ev](550, 256, evAt, evLess) }

func TestHeapReserveSetFix(t *testing.T) {
	h := New(evLess)
	h.Reserve(64)
	if got := cap(h.items); got < 64 {
		t.Fatalf("cap after Reserve = %d", got)
	}
	allocs := testing.AllocsPerRun(10, func() {
		for i := int64(0); i < 64; i++ {
			h.Push(ev{at: 64 - i, seq: i})
		}
		h.Reset()
	})
	if allocs != 0 {
		t.Errorf("AllocsPerRun after Reserve = %v, want 0", allocs)
	}
	for i := int64(0); i < 32; i++ {
		h.Push(ev{at: i, seq: i})
	}
	// Retime an arbitrary slot to the front via Set, then verify At sees it
	// at the minimum and the pop order is restored.
	h.Set(20, ev{at: -1, seq: 99})
	if got := h.At(0); got.seq != 99 {
		t.Fatalf("At(0) after Set = %+v", got)
	}
	prev := ev{at: -2}
	for h.Len() > 0 {
		e := h.Pop()
		if evLess(e, prev) {
			t.Fatalf("out of order after Set: %+v after %+v", e, prev)
		}
		prev = e
	}
}

// BenchmarkEventq is the ladder from the tuning notes: classic hold-model
// churn (pop one, push one a random increment ahead) at steady queue sizes
// 1e2..1e6, for the typed heap, the calendar queue, and the container/heap
// baseline the package exists to beat.
func BenchmarkEventq(b *testing.B) {
	sizes := []int{100, 1_000, 10_000, 100_000, 1_000_000}
	incr := func(rng *rand.Rand) int64 {
		if rng.Intn(16) == 0 {
			return 55_000_000
		}
		return rng.Int63n(1100)
	}
	// Hold model: prefill n events on an increasing schedule, churn n
	// pop+push rounds so the population settles into its steady-state
	// spread (recent pushes within one max-increment of the clock), then
	// time the churn. Prefilling at a pinned clock instead would cram the
	// whole population into an instant — a shape no simulation produces,
	// and a quadratic worst case for any calendar queue.
	hold := func(b *testing.B, q queue, n int) {
		rng := rand.New(rand.NewSource(1))
		var at, seq int64
		for i := 0; i < n; i++ {
			at += incr(rng)
			q.Push(ev{at: at, seq: seq})
			seq++
		}
		churn := func(k int) {
			for i := 0; i < k; i++ {
				e := q.Pop()
				q.Push(ev{at: e.at + incr(rng), seq: seq})
				seq++
			}
		}
		churn(n)
		b.ResetTimer()
		churn(b.N)
	}
	for _, n := range sizes {
		name := map[int]string{100: "n=1e2", 1_000: "n=1e3", 10_000: "n=1e4",
			100_000: "n=1e5", 1_000_000: "n=1e6"}[n]
		b.Run("heap/"+name, func(b *testing.B) {
			hold(b, heapQ{New(evLess)}, n)
		})
		b.Run("bucketed/"+name, func(b *testing.B) {
			hold(b, bucketQ{NewBucketedEv()}, n)
		})
		b.Run("stdheap/"+name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			ref := &refHeap{}
			var at, seq int64
			for i := 0; i < n; i++ {
				at += incr(rng)
				heap.Push(ref, ev{at: at, seq: seq})
				seq++
			}
			churn := func(k int) {
				for i := 0; i < k; i++ {
					e := heap.Pop(ref).(ev)
					heap.Push(ref, ev{at: e.at + incr(rng), seq: seq})
					seq++
				}
			}
			churn(n)
			b.ResetTimer()
			churn(b.N)
		})
	}
}
