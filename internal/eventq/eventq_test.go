package eventq

import (
	"math/rand"
	"sort"
	"testing"
)

func TestHeapOrdering(t *testing.T) {
	h := New(func(a, b int) bool { return a < b })
	rng := rand.New(rand.NewSource(1))
	var want []int
	for i := 0; i < 1000; i++ {
		v := rng.Intn(500)
		h.Push(v)
		want = append(want, v)
	}
	sort.Ints(want)
	for i, w := range want {
		if got := h.Pop(); got != w {
			t.Fatalf("pop %d = %d, want %d", i, got, w)
		}
	}
	if h.Len() != 0 {
		t.Errorf("len = %d after draining", h.Len())
	}
}

func TestHeapStabilityViaSeq(t *testing.T) {
	// Discrete-event heaps break ties with a sequence number; equal
	// timestamps must come out in insertion order.
	type ev struct {
		at  int
		seq int
	}
	h := New(func(a, b ev) bool {
		if a.at != b.at {
			return a.at < b.at
		}
		return a.seq < b.seq
	})
	for seq := 0; seq < 64; seq++ {
		h.Push(ev{at: seq % 4, seq: seq})
	}
	prev := ev{at: -1, seq: -1}
	for h.Len() > 0 {
		e := h.Pop()
		if e.at < prev.at || (e.at == prev.at && e.seq < prev.seq) {
			t.Fatalf("out of order: %+v after %+v", e, prev)
		}
		prev = e
	}
}

func TestHeapPeekAndReset(t *testing.T) {
	h := New(func(a, b int) bool { return a < b })
	if _, ok := h.Peek(); ok {
		t.Error("Peek on empty heap reported ok")
	}
	h.Push(3)
	h.Push(1)
	if v, ok := h.Peek(); !ok || v != 1 {
		t.Errorf("Peek = %d, %v; want 1, true", v, ok)
	}
	if h.Len() != 2 {
		t.Errorf("Peek consumed an item: len %d", h.Len())
	}
	h.Reset()
	if h.Len() != 0 {
		t.Errorf("len after Reset = %d", h.Len())
	}
	h.Push(7)
	if got := h.Pop(); got != 7 {
		t.Errorf("pop after Reset = %d", got)
	}
}

// TestHeapNoBoxingAllocs locks the property the package exists for: pushes
// and pops after warm-up perform no allocations at all.
func TestHeapNoBoxingAllocs(t *testing.T) {
	type ev struct {
		at  int64
		seq int64
	}
	h := New(func(a, b ev) bool { return a.at < b.at })
	for i := 0; i < 128; i++ {
		h.Push(ev{at: int64(128 - i)})
	}
	h.Reset()
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			h.Push(ev{at: int64(64 - i), seq: int64(i)})
		}
		for h.Len() > 0 {
			h.Pop()
		}
	})
	if allocs != 0 {
		t.Errorf("AllocsPerRun = %v, want 0", allocs)
	}
}
