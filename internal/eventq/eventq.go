// Package eventq provides a typed binary min-heap for discrete-event
// simulators. Unlike container/heap, whose interface methods force every
// Push/Pop through an `any` conversion (one heap allocation per event for
// value types), this heap is generic over the element type: events are
// stored inline in a slice and no boxing ever happens. The desim engine and
// the wormsim hold-and-wait simulator both schedule through it; their event
// types stay plain structs.
package eventq

// Heap is a typed binary min-heap ordered by the less function given to New.
// The zero value is not usable; construct with New. Heaps are not safe for
// concurrent use.
type Heap[T any] struct {
	less  func(a, b T) bool
	items []T
}

// New returns an empty heap ordered by less (a min-heap when less is
// "strictly before").
func New[T any](less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{less: less}
}

// Len reports the number of queued items.
//
//sanlint:hotpath
func (h *Heap[T]) Len() int { return len(h.items) }

// Push inserts v. Amortised O(log n), zero allocations once the backing
// slice has grown to the high-water mark.
//
//sanlint:hotpath
func (h *Heap[T]) Push(v T) {
	h.items = append(h.items, v)
	h.up(len(h.items) - 1)
}

// Pop removes and returns the minimum item. It panics on an empty heap;
// guard with Len.
//
//sanlint:hotpath
func (h *Heap[T]) Pop() T {
	n := len(h.items) - 1
	top := h.items[0]
	h.items[0] = h.items[n]
	var zero T
	h.items[n] = zero // release references held by pointerful event types
	h.items = h.items[:n]
	if n > 0 {
		h.down(0)
	}
	return top
}

// Peek returns the minimum item without removing it; ok is false when the
// heap is empty.
//
//sanlint:hotpath
func (h *Heap[T]) Peek() (v T, ok bool) {
	if len(h.items) == 0 {
		return v, false
	}
	return h.items[0], true
}

// Reserve grows the backing slice's capacity to hold at least n items, so a
// simulator that knows its high-water mark pays for growth once instead of
// across the first run's pushes. Growth at least doubles, so callers may
// track a rising high-water mark with repeated Reserve calls without
// triggering quadratic copying.
func (h *Heap[T]) Reserve(n int) {
	if cap(h.items) >= n {
		return
	}
	if d := 2 * cap(h.items); n < d {
		n = d
	}
	items := make([]T, len(h.items), n)
	copy(items, h.items)
	h.items = items
}

// At returns the item at heap slot i (0 is the minimum; other slots are in
// heap order, not sorted order). It panics if i is out of range.
//
//sanlint:hotpath
func (h *Heap[T]) At(i int) T { return h.items[i] }

// Set replaces the item at heap slot i and restores heap order, the typed
// equivalent of container/heap.Fix. O(log n), no allocation.
//
//sanlint:hotpath
func (h *Heap[T]) Set(i int, v T) {
	h.items[i] = v
	h.Fix(i)
}

// Fix re-establishes heap order after the item at slot i changed in place
// (via Set, or externally when T holds pointers).
//
//sanlint:hotpath
func (h *Heap[T]) Fix(i int) {
	h.down(i)
	h.up(i)
}

// Reset empties the heap but keeps the backing slice, so a reused simulator
// re-fills it without reallocating.
//
//sanlint:hotpath
func (h *Heap[T]) Reset() {
	var zero T
	for i := range h.items {
		h.items[i] = zero
	}
	h.items = h.items[:0]
}

//sanlint:hotpath
func (h *Heap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

//sanlint:hotpath
func (h *Heap[T]) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(h.items[l], h.items[small]) {
			small = l
		}
		if r < n && h.less(h.items[r], h.items[small]) {
			small = r
		}
		if small == i {
			return
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
}
