package eventq

// Bucketed is a calendar queue: a window of fixed-width time buckets plus an
// overflow heap for events beyond the window's horizon. Discrete-event
// simulators whose event times cluster within a few bucket widths of "now"
// (wormsim: every hop schedules SwitchLatency ahead, every delivery a
// serialisation time ahead) pop in O(1) and push with a short insertion-sort
// run, versus the heap's O(log n) sift touching log n cache lines. Sparse
// far-future events (deadlock-break timers 55 ms out) land in the overflow
// heap and migrate into the window when the calendar drains up to them.
//
// The pop order is the exact total order of less — identical to Heap with
// the same function — provided less is a strict total order consistent with
// at (less(a, b) implies at(a) <= at(b); simulators get this by ordering on
// (time, sequence)). As in any discrete-event queue, items must not be
// pushed "in the past": a pushed item must not sort before the most
// recently popped one.
//
// Like every calendar queue, a push into one bucket costs O(items already
// queued in that bucket that sort later); the simulators stay fast because
// their in-flight event populations are bounded (one or two pending events
// per worm or process) — a workload that schedules an unbounded burst onto
// a single instant wants the plain Heap instead.
//
// The zero value is not usable; construct with NewBucketed. Not safe for
// concurrent use.
type Bucketed[T any] struct {
	less  func(a, b T) bool
	at    func(T) int64
	width int64

	// buckets[i] covers [base + i*width, base + (i+1)*width); items sorted
	// ascending by less, consumed front-to-back via head. cursor is the
	// first bucket that may still hold items.
	buckets  []bucket[T]
	base     int64
	cursor   int
	inWindow int

	overflow *Heap[T] // items at or beyond base + len(buckets)*width
}

type bucket[T any] struct {
	items []T
	head  int
}

// NewBucketed returns an empty calendar queue of nb buckets of the given
// width (in the same ticks as at; both must be positive), ordered by less.
// Event times must be non-negative.
func NewBucketed[T any](width int64, nb int, at func(T) int64, less func(a, b T) bool) *Bucketed[T] {
	if width <= 0 || nb <= 0 {
		panic("eventq: NewBucketed needs positive width and bucket count")
	}
	return &Bucketed[T]{
		less:     less,
		at:       at,
		width:    width,
		buckets:  make([]bucket[T], nb),
		overflow: New(less),
	}
}

// Len reports the number of queued items.
//
//sanlint:hotpath
func (q *Bucketed[T]) Len() int { return q.inWindow + q.overflow.Len() }

// Reserve pre-sizes the overflow heap for n far-future items (e.g. one
// pending timeout per in-flight worm), so a simulator that knows its
// high-water mark pays for growth once.
func (q *Bucketed[T]) Reserve(n int) { q.overflow.Reserve(n) }

// Push inserts v. Amortised O(run) where run is the number of queued items
// in v's bucket that sort after v — near zero for the near-sorted pushes of
// a simulation loop. Zero allocations once the buckets have grown to their
// high-water marks.
//
//sanlint:hotpath
func (q *Bucketed[T]) Push(v T) {
	t := q.at(v)
	if q.Len() == 0 {
		// Empty queue: re-anchor the window at v's bucket so a long jump
		// (the next event is far in the future) costs nothing.
		q.base = t - t%q.width
		q.cursor = 0
	}
	idx := int((t - q.base) / q.width)
	if idx < q.cursor {
		// At-or-before the current bucket (an immediate wake-up at "now"):
		// the in-bucket sort by less puts it in its exact place.
		idx = q.cursor
	}
	if idx >= len(q.buckets) {
		q.overflow.Push(v)
		return
	}
	q.insert(idx, v)
}

//sanlint:hotpath
func (q *Bucketed[T]) insert(idx int, v T) {
	// Append through the receiver (not a *bucket alias) so the hotpath
	// analyzer can see the slice is owned storage growing to a high-water
	// mark, not an escaping allocation.
	q.buckets[idx].items = append(q.buckets[idx].items, v)
	b := &q.buckets[idx]
	for i := len(b.items) - 1; i > b.head; i-- {
		if !q.less(b.items[i], b.items[i-1]) {
			break
		}
		b.items[i], b.items[i-1] = b.items[i-1], b.items[i]
	}
	q.inWindow++
}

// Pop removes and returns the minimum item. It panics on an empty queue;
// guard with Len.
//
//sanlint:hotpath
func (q *Bucketed[T]) Pop() T {
	for q.inWindow > 0 {
		b := &q.buckets[q.cursor]
		if b.head < len(b.items) {
			v := b.items[b.head]
			var zero T
			b.items[b.head] = zero // release references held by event types
			b.head++
			if b.head == len(b.items) {
				b.items = b.items[:0]
				b.head = 0
			}
			q.inWindow--
			return v
		}
		q.cursor++
	}
	if q.overflow.Len() == 0 {
		panic("eventq: Pop on empty Bucketed")
	}
	// Window drained; jump the calendar to the earliest far-future item and
	// migrate everything inside the new horizon out of the overflow heap.
	q.rebase()
	return q.Pop()
}

// Peek returns the minimum item without removing it; ok is false when the
// queue is empty. It may advance the internal cursor past drained buckets
// but never changes the queue's contents.
//
//sanlint:hotpath
func (q *Bucketed[T]) Peek() (v T, ok bool) {
	for q.inWindow > 0 {
		b := &q.buckets[q.cursor]
		if b.head < len(b.items) {
			return b.items[b.head], true
		}
		q.cursor++
	}
	return q.overflow.Peek()
}

// rebase re-anchors the window at the overflow minimum's bucket and pulls
// every overflow item inside the new horizon into the window.
//
//sanlint:hotpath
func (q *Bucketed[T]) rebase() {
	m, _ := q.overflow.Peek()
	t := q.at(m)
	q.base = t - t%q.width
	q.cursor = 0
	horizon := q.base + int64(len(q.buckets))*q.width
	for {
		v, ok := q.overflow.Peek()
		if !ok || q.at(v) >= horizon {
			return
		}
		q.overflow.Pop()
		q.insert(int((q.at(v)-q.base)/q.width), v)
	}
}

// Reset empties the queue but keeps every bucket's backing slice and the
// overflow heap's, so a reused simulator re-fills without reallocating.
func (q *Bucketed[T]) Reset() {
	var zero T
	for i := range q.buckets {
		b := &q.buckets[i]
		for j := b.head; j < len(b.items); j++ {
			b.items[j] = zero
		}
		b.items = b.items[:0]
		b.head = 0
	}
	q.base, q.cursor, q.inWindow = 0, 0, 0
	q.overflow.Reset()
}
