package mapd

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"sanmap/internal/topology"
)

// ErrFenced is returned by Store.Commit when the epoch's parent is no
// longer the latest committed epoch: some other job (a newer mapper, or a
// faster resumed one) committed first. The losing job must discard its
// result — its WAL is stale — and, if it still wants to heal, start a new
// job from the winner's epoch.
var ErrFenced = errors.New("mapd: commit fenced: parent is not the latest epoch")

// ErrBadEpoch wraps any parse or checksum failure on an epoch file.
var ErrBadEpoch = errors.New("mapd: bad epoch file")

// EpochMeta is the header of a committed epoch.
type EpochMeta struct {
	Number uint64 // 1-based, dense: Number == Parent+1
	Parent uint64 // 0 for the initial map
	Job    uint64 // the job that committed this epoch (fencing token)
	// Resumed records that the committing job continued from a WAL or
	// epoch checkpoint after a crash rather than mapping from scratch.
	Resumed bool
	// VClock is the committing process's virtual clock at commit time.
	// Informational: it restarts at zero with each process.
	VClock time.Duration
	// Probes is the probe spend of the committing job's final process
	// segment (a resumed job counts only post-resume probes).
	Probes int64
	// Confidence, Partial, Suspects and SuspectIDs mirror the
	// mapper.Result fields the degradation ladder keys on.
	Confidence float64
	Partial    bool
	Suspects   []string
	SuspectIDs []topology.NodeID
}

// Epoch is one committed map: metadata plus the serialized network (the
// topology file format) and the mapper session checkpoint that produced
// it, from which the next remap resumes.
type Epoch struct {
	EpochMeta
	NetText    []byte
	Checkpoint []byte
}

// Store is the on-disk epoch sequence: dir/epoch-%06d.san files, each
// fully checksummed and committed via write-temp-then-rename so a crash
// never leaves a torn epoch — only a missing one, which the WAL covers.
type Store struct {
	dir     string
	epochs  []*Epoch // valid epochs, ascending by number
	corrupt int      // files that failed checksum or parse at Open
}

// OpenStore opens (creating if necessary) the epoch store in dir and
// loads every valid epoch. Corrupt files are skipped, not deleted: the
// daemon serves from the newest valid epoch and recovery re-derives the
// rest.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("mapd: state dir: %w", err)
	}
	st := &Store{dir: dir}
	paths, err := filepath.Glob(filepath.Join(dir, "epoch-*.san"))
	if err != nil {
		return nil, err
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		ep, err := parseEpoch(data)
		if err != nil {
			st.corrupt++
			continue
		}
		st.epochs = append(st.epochs, ep)
	}
	sort.Slice(st.epochs, func(i, j int) bool {
		return st.epochs[i].Number < st.epochs[j].Number
	})
	return st, nil
}

// Dir returns the state directory.
func (st *Store) Dir() string { return st.dir }

// Corrupt reports how many epoch files failed validation at open.
func (st *Store) Corrupt() int { return st.corrupt }

// Latest returns the newest valid epoch, or nil if none committed yet.
func (st *Store) Latest() *Epoch {
	if len(st.epochs) == 0 {
		return nil
	}
	return st.epochs[len(st.epochs)-1]
}

// Epochs returns the valid epochs in ascending order.
func (st *Store) Epochs() []*Epoch { return st.epochs }

// NextJobID returns a job ID strictly greater than every job recorded in
// any epoch or WAL file in the store — the fencing token for a new map or
// remap job. Derived from disk, not a clock, so it is deterministic and
// survives restarts.
func (st *Store) NextJobID() uint64 {
	var max uint64
	for _, ep := range st.epochs {
		if ep.Job > max {
			max = ep.Job
		}
	}
	paths, _ := filepath.Glob(filepath.Join(st.dir, "wal-*.log"))
	for _, p := range paths {
		base := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(p), "wal-"), ".log")
		if j, err := strconv.ParseUint(base, 10, 64); err == nil && j > max {
			max = j
		}
	}
	return max + 1
}

// Commit durably writes ep as the next epoch. The fencing rule: ep.Parent
// must equal the latest committed epoch number (0 when the store is
// empty), checked against the directory, not just memory, so a stale
// resumed mapper that lost the race gets ErrFenced instead of clobbering
// the winner.
func (st *Store) Commit(ep *Epoch) error {
	latest := st.diskLatest()
	if ep.Parent != latest {
		return fmt.Errorf("%w (parent %d, latest %d)", ErrFenced, ep.Parent, latest)
	}
	if ep.Number != ep.Parent+1 {
		return fmt.Errorf("mapd: epoch %d must be parent %d + 1", ep.Number, ep.Parent)
	}
	data := encodeEpoch(ep)
	final := filepath.Join(st.dir, fmt.Sprintf("epoch-%06d.san", ep.Number))
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, data, 0o666); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	st.epochs = append(st.epochs, ep)
	return nil
}

// diskLatest scans the directory for the highest epoch file number. This
// is the fencing ground truth; the in-memory slice can be behind when a
// concurrent (stale, resumed) process raced us.
func (st *Store) diskLatest() uint64 {
	paths, _ := filepath.Glob(filepath.Join(st.dir, "epoch-*.san"))
	var max uint64
	for _, p := range paths {
		base := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(p), "epoch-"), ".san")
		if n, err := strconv.ParseUint(base, 10, 64); err == nil && n > max {
			max = n
		}
	}
	return max
}

const epochMagic = "sanmapd-epoch 1"

// encodeEpoch renders the epoch file: a text header, the two raw
// sections with byte-length framing, and a trailing CRC-32 (IEEE) over
// everything before the crc line.
func encodeEpoch(ep *Epoch) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s\n", epochMagic)
	fmt.Fprintf(&b, "epoch %d\n", ep.Number)
	fmt.Fprintf(&b, "parent %d\n", ep.Parent)
	fmt.Fprintf(&b, "job %d\n", ep.Job)
	fmt.Fprintf(&b, "resumed %d\n", b2i(ep.Resumed))
	fmt.Fprintf(&b, "vclock %d\n", int64(ep.VClock))
	fmt.Fprintf(&b, "probes %d\n", ep.Probes)
	fmt.Fprintf(&b, "confidence %s\n", strconv.FormatFloat(ep.Confidence, 'g', -1, 64))
	fmt.Fprintf(&b, "partial %d\n", b2i(ep.Partial))
	fmt.Fprintf(&b, "suspects %d\n", len(ep.Suspects))
	for _, s := range ep.Suspects {
		fmt.Fprintf(&b, "suspect %q\n", s)
	}
	fmt.Fprintf(&b, "suspect-ids %d", len(ep.SuspectIDs))
	for _, id := range ep.SuspectIDs {
		fmt.Fprintf(&b, " %d", id)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "network %d\n", len(ep.NetText))
	b.Write(ep.NetText)
	fmt.Fprintf(&b, "checkpoint %d\n", len(ep.Checkpoint))
	b.Write(ep.Checkpoint)
	fmt.Fprintf(&b, "crc %08x\n", crc32.ChecksumIEEE(b.Bytes()))
	return b.Bytes()
}

// parseEpoch validates the checksum and decodes one epoch file.
func parseEpoch(data []byte) (*Epoch, error) {
	i := bytes.LastIndex(data, []byte("\ncrc "))
	if i < 0 {
		return nil, fmt.Errorf("%w: no crc trailer", ErrBadEpoch)
	}
	body, trailer := data[:i+1], data[i+1:]
	var want uint32
	if _, err := fmt.Sscanf(string(trailer), "crc %08x\n", &want); err != nil {
		return nil, fmt.Errorf("%w: bad crc trailer", ErrBadEpoch)
	}
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("%w: crc mismatch %08x != %08x", ErrBadEpoch, got, want)
	}
	p := &epochParser{data: body}
	if p.line() != epochMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadEpoch)
	}
	ep := &Epoch{}
	ep.Number = p.uintField("epoch")
	ep.Parent = p.uintField("parent")
	ep.Job = p.uintField("job")
	ep.Resumed = p.uintField("resumed") != 0
	ep.VClock = time.Duration(p.uintField("vclock"))
	ep.Probes = int64(p.uintField("probes"))
	if v, ok := strings.CutPrefix(p.line(), "confidence "); ok {
		ep.Confidence, _ = strconv.ParseFloat(v, 64)
	} else {
		p.fail("confidence")
	}
	ep.Partial = p.uintField("partial") != 0
	for n := p.uintField("suspects"); n > 0 && p.err == nil; n-- {
		v, ok := strings.CutPrefix(p.line(), "suspect ")
		if !ok {
			p.fail("suspect")
			break
		}
		s, err := strconv.Unquote(v)
		if err != nil {
			p.fail("suspect quote")
			break
		}
		ep.Suspects = append(ep.Suspects, s)
	}
	if f := strings.Fields(p.line()); len(f) >= 2 && f[0] == "suspect-ids" {
		for _, s := range f[2:] {
			id, err := strconv.Atoi(s)
			if err != nil {
				p.fail("suspect-ids")
				break
			}
			ep.SuspectIDs = append(ep.SuspectIDs, topology.NodeID(id))
		}
	} else {
		p.fail("suspect-ids")
	}
	ep.NetText = p.section("network")
	ep.Checkpoint = p.section("checkpoint")
	if p.err != nil {
		return nil, p.err
	}
	if ep.Number == 0 || ep.Number != ep.Parent+1 {
		return nil, fmt.Errorf("%w: epoch %d with parent %d", ErrBadEpoch, ep.Number, ep.Parent)
	}
	return ep, nil
}

type epochParser struct {
	data []byte
	pos  int
	err  error
}

func (p *epochParser) fail(what string) {
	if p.err == nil {
		p.err = fmt.Errorf("%w: missing or malformed %s", ErrBadEpoch, what)
	}
}

// line returns the next newline-terminated line, without the newline.
func (p *epochParser) line() string {
	if p.err != nil || p.pos >= len(p.data) {
		p.fail("line")
		return ""
	}
	i := bytes.IndexByte(p.data[p.pos:], '\n')
	if i < 0 {
		p.fail("newline")
		return ""
	}
	s := string(p.data[p.pos : p.pos+i])
	p.pos += i + 1
	return s
}

func (p *epochParser) uintField(key string) uint64 {
	v, ok := strings.CutPrefix(p.line(), key+" ")
	if !ok {
		p.fail(key)
		return 0
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		p.fail(key)
		return 0
	}
	return n
}

// section reads a "key <len>" line followed by exactly len raw bytes.
func (p *epochParser) section(key string) []byte {
	n := p.uintField(key)
	if p.err != nil {
		return nil
	}
	if p.pos+int(n) > len(p.data) {
		p.fail(key + " body")
		return nil
	}
	out := append([]byte(nil), p.data[p.pos:p.pos+int(n)]...)
	p.pos += int(n)
	return out
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
