package mapd

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sanmap/internal/faults"
	"sanmap/internal/genspec"
	"sanmap/internal/mapper"
	"sanmap/internal/obs"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// Config parameterizes a Server. Zero values get defaults from New.
type Config struct {
	Gen   string // genspec topology spec
	Seed  int64  // topology build seed
	Chaos string // fault profile (faults.ParseProfile grammar), "" for none
	Depth int    // base probe depth; 0 derives DepthBound(h0)
	// Mapper overrides the mapping host by name ("" picks the utility
	// host, then the first attached host).
	Mapper string

	StateDir string // epoch store + WAL directory (required)
	Listen   string // "unix:PATH", a path, or "host:port"; "" disables the front-end
	Once     bool   // exit after initial convergence instead of serving

	// CrashAfter kills the process (exit code 7) at the n-th WAL append
	// — the daemon's own crash-injection hook, driven by the kill/restart
	// harness. 0 disables.
	CrashAfter int

	// Heal loop tuning: attempts per suspicion burst, and the capped
	// exponential backoff between attempts. The backoff is charged to the
	// simulation's virtual clock, never the wall clock, so healing is
	// deterministic and tests are fast.
	HealAttempts   int
	HealBackoff    time.Duration
	HealBackoffCap time.Duration

	// Interrupt, when non-nil, makes Run return cleanly on a received
	// signal (cmd/sanmapd wires SIGINT/SIGTERM here).
	Interrupt <-chan os.Signal

	Tracer  *obs.Tracer
	Metrics *obs.Registry
	Out     io.Writer // status lines; nil discards

	// exit overrides the crash hook's os.Exit for in-process tests.
	exit func()
}

// Server owns the live map: a single world-loop goroutine runs every
// mapping job and fault injection, while any number of connection
// goroutines answer queries from an atomically swapped Snapshot. The two
// sides share nothing else.
type Server struct {
	cfg   Config
	store *Store
	crash *crashHook
	w     *world

	snap atomic.Pointer[Snapshot]
	cmds chan command
	stop chan struct{}
	once sync.Once

	ln net.Listener
	wg sync.WaitGroup

	queries     atomic.Int64
	refused     atomic.Int64
	failedReads atomic.Int64

	mu     sync.Mutex //sanlint:guards conns,closed
	conns  map[net.Conn]struct{}
	closed bool
}

// command is a state-changing request handed from a connection goroutine
// to the world loop. reply is buffered so the world never blocks sending.
type command struct {
	op    string // "inject" or "remap"
	spec  string
	reply chan cmdReply
}

type cmdReply struct {
	msg   string
	epoch uint64
	err   error
}

// New builds a server, opens its store, constructs the simulated world
// and, when cfg.Listen is set, starts listening (but not accepting —
// Run does that). The listening address is printed to cfg.Out so
// harnesses using port 0 can find it.
func New(cfg Config) (*Server, error) {
	if cfg.StateDir == "" {
		return nil, fmt.Errorf("mapd: StateDir is required")
	}
	if cfg.Gen == "" {
		cfg.Gen = "now-c"
	}
	if cfg.HealAttempts <= 0 {
		cfg.HealAttempts = 3
	}
	if cfg.HealBackoff <= 0 {
		cfg.HealBackoff = 2 * time.Millisecond
	}
	if cfg.HealBackoffCap <= 0 {
		cfg.HealBackoffCap = 50 * time.Millisecond
	}
	if cfg.Out == nil {
		cfg.Out = io.Discard
	}
	if cfg.exit == nil {
		cfg.exit = func() { os.Exit(crashExitCode) }
	}
	store, err := OpenStore(cfg.StateDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		store: store,
		crash: &crashHook{after: cfg.CrashAfter, exit: cfg.exit},
		cmds:  make(chan command),
		stop:  make(chan struct{}),
		conns: make(map[net.Conn]struct{}),
	}
	if s.w, err = s.buildWorld(); err != nil {
		return nil, err
	}
	if store.Corrupt() > 0 {
		fmt.Fprintf(cfg.Out, "sanmapd: skipped %d corrupt epoch file(s)\n", store.Corrupt())
	}
	if cfg.Listen != "" {
		nw, addr := splitListen(cfg.Listen)
		ln, err := net.Listen(nw, addr)
		if err != nil {
			return nil, fmt.Errorf("mapd: listen: %w", err)
		}
		s.ln = ln
		fmt.Fprintf(cfg.Out, "sanmapd: listening on %v\n", ln.Addr())
	}
	return s, nil
}

// Addr returns the front-end listener address (nil without Listen).
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Store exposes the epoch store (read-only use by harnesses).
func (s *Server) Store() *Store { return s.store }

// Snapshot returns the currently served snapshot, nil before the first
// epoch is available.
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// Close asks Run to return. Safe from any goroutine, idempotent.
func (s *Server) Close() { s.once.Do(func() { close(s.stop) }) }

// Run recovers to a converged epoch and then serves. The calling
// goroutine becomes the world loop: it owns the simulated network, the
// injector and the mapper session; nothing else touches them.
func (s *Server) Run() error {
	if s.ln != nil {
		s.wg.Add(1)
		go s.acceptLoop()
	}
	defer s.shutdown()
	if err := s.w.converge(); err != nil {
		return err
	}
	if s.cfg.Once {
		fmt.Fprintf(s.cfg.Out, "sanmapd: converged at epoch %d; exiting\n", s.store.Latest().Number)
		return nil
	}
	for {
		select {
		case c := <-s.cmds:
			s.w.handleCmd(c)
		case <-s.stop:
			fmt.Fprintf(s.cfg.Out, "sanmapd: stop requested; shutting down\n")
			return nil
		case sig := <-s.cfg.Interrupt:
			fmt.Fprintf(s.cfg.Out, "sanmapd: %v; shutting down\n", sig)
			return nil
		}
	}
}

// shutdown unblocks every helper goroutine and joins them.
func (s *Server) shutdown() {
	s.Close() // release conn goroutines waiting on the world loop
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// track registers a connection for shutdown teardown; false means the
// server is already closing and the caller must drop the conn.
func (s *Server) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) untrack(c net.Conn) {
	c.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, c)
}

// splitListen resolves the -listen spec: "unix:PATH" or anything with a
// path separator is a unix socket, the rest is a TCP host:port.
func splitListen(s string) (network, addr string) {
	if a, ok := strings.CutPrefix(s, "unix:"); ok {
		return "unix", a
	}
	if strings.Contains(s, "/") {
		return "unix", s
	}
	return "tcp", s
}

// world is the single-goroutine side of the server: the simulated
// network, its fault injector and the long-lived mapper session. Only
// the goroutine that called Run touches it.
type world struct {
	s      *Server
	topo   *topology.Network
	sn     *simnet.Net
	ep     *simnet.Endpoint
	inj    *faults.Injector
	h0     topology.NodeID
	h0Name string
	depth  int

	// sched is the -chaos schedule. Its structural events are withheld
	// during the initial map (only per-probe rates run) and force-applied
	// after epoch 1 commits, so a crash-restarted map replays against the
	// same pristine network and recovery is deterministic.
	sched        faults.Schedule
	chaosApplied bool

	// suspicion counts injector fault records (minus no-ops); handled is
	// the watermark of the last completed heal. suspicion > handled
	// schedules a heal.
	suspicion int
	handled   int

	session *mapper.Session
	m       worldMetrics
}

type worldMetrics struct {
	commits      *obs.Counter
	walAppends   *obs.Counter
	resumed      *obs.Counter
	fenced       *obs.Counter
	healAttempts *obs.Counter
	latest       *obs.Gauge
	level        *obs.Gauge
	suspicion    *obs.Gauge
}

func (s *Server) buildWorld() (*world, error) {
	rng := rand.New(faults.NewSource(uint64(s.cfg.Seed)))
	res, err := genspec.Build(s.cfg.Gen, rng)
	if err != nil {
		return nil, err
	}
	topo := res.Net
	h0 := pickMapper(topo, res.Utility, s.cfg.Mapper)
	if h0 == topology.None {
		return nil, fmt.Errorf("mapd: no attached mapping host in %q", s.cfg.Gen)
	}
	depth := s.cfg.Depth
	if depth <= 0 {
		depth = topo.DepthBound(h0)
	}
	// Healing routes can need more depth than the clean bound once cuts
	// lengthen the surviving paths; the margin must be identical across
	// restarts (it is part of the checkpoint's config echo).
	depth += topo.NumSwitches()

	reg := s.cfg.Metrics
	w := &world{
		s: s, topo: topo, h0: h0, h0Name: topo.NameOf(h0), depth: depth,
		sn: simnet.NewDefault(topo),
		m: worldMetrics{
			commits:      reg.Counter("mapd.epoch.commits"),
			walAppends:   reg.Counter("mapd.wal.appends"),
			resumed:      reg.Counter("mapd.job.resumed"),
			fenced:       reg.Counter("mapd.job.fenced"),
			healAttempts: reg.Counter("mapd.heal.attempts"),
			latest:       reg.Gauge("mapd.epoch.latest"),
			level:        reg.Gauge("mapd.serve.level"),
			suspicion:    reg.Gauge("mapd.suspicion"),
		},
	}
	w.ep = w.sn.Endpoint(h0)
	if s.cfg.Chaos != "" {
		p, seed, err := faults.ParseProfile(s.cfg.Chaos)
		if err != nil {
			return nil, err
		}
		p.Protect = h0
		w.sched = faults.Generate(topo, seed, p)
		if s.cfg.CrashAfter > 0 && !p.Structural() {
			fmt.Fprintf(s.cfg.Out, "sanmapd: warning: -crash-after with stochastic fault rates is not replay-deterministic (probe sequence restarts with the process)\n")
		}
		// Per-probe rates afflict the initial map too; events wait for
		// applyChaos.
		rates := w.sched
		rates.Events = nil
		w.attachInjector(rates)
	}
	return w, nil
}

// pickMapper chooses the mapping host: the named override, else the
// generator's utility host, else the first host with an attached wire.
func pickMapper(topo *topology.Network, utility, override string) topology.NodeID {
	if override != "" {
		if u := topo.Lookup(override); u != topology.None && topo.WireAt(u, topology.HostPort) >= 0 {
			return u
		}
		return topology.None
	}
	if utility != "" {
		if u := topo.Lookup(utility); u != topology.None && topo.WireAt(u, topology.HostPort) >= 0 {
			return u
		}
	}
	for _, h := range topo.Hosts() {
		if topo.WireAt(h, topology.HostPort) >= 0 {
			return h
		}
	}
	return topology.None
}

func (w *world) out() io.Writer { return w.s.cfg.Out }

func (w *world) attachInjector(sched faults.Schedule) {
	w.inj = faults.Attach(w.sn, sched).Instrument(w.s.cfg.Tracer, w.s.cfg.Metrics)
	w.inj.SetOnRecord(w.onRecord)
}

// onRecord is the suspicion signal: every effective fault record bumps
// the counter the continuous remap loop keys on. Runs on the world
// goroutine (records fire inside probe evaluation or ApplyAll).
func (w *world) onRecord(rec faults.Record) {
	if strings.HasSuffix(rec.What, "-noop") {
		return
	}
	w.suspicion++
	w.m.suspicion.Set(int64(w.suspicion))
}

// applyChaos force-applies the withheld structural fault events. Called
// once epoch 1 exists — freshly committed or recovered from disk — so
// every process observes the same damaged network.
func (w *world) applyChaos() {
	if w.chaosApplied || w.s.cfg.Chaos == "" {
		return
	}
	w.attachInjector(w.sched)
	w.inj.ApplyAll()
	w.sn.Reconfigure()
	w.chaosApplied = true
	fmt.Fprintf(w.out(), "sanmapd: applied %d scheduled fault events\n", len(w.sched.Events))
}

// converge is crash recovery plus initial convergence: make sure an
// initial-map epoch exists (resuming an interrupted map job from its
// WAL), then, under -chaos, apply the faults and heal to the repaired
// epoch (resuming an interrupted remap job likewise). Publishes a
// serving snapshot at each committed epoch.
func (w *world) converge() error {
	st := w.s.store
	walSt, err := loadWAL(st.Dir())
	if err != nil {
		return err
	}
	latest := st.Latest()
	var latestN uint64
	if latest != nil {
		latestN = latest.Number
	}
	if walSt != nil && walSt.Parent != latestN {
		// Job-ID fencing: this WAL's job heals from an epoch that is no
		// longer the tip, so its work is superseded. Discard.
		fmt.Fprintf(w.out(), "sanmapd: discarding fenced wal job %d (parent %d, latest %d)\n",
			walSt.Job, walSt.Parent, latestN)
		w.m.fenced.Inc()
		walSt = nil
	}
	var keep uint64
	if walSt != nil {
		keep = walSt.Job
	}
	for _, p := range staleWALs(st.Dir(), keep) {
		os.Remove(p)
	}

	if latest != nil {
		fmt.Fprintf(w.out(), "sanmapd: recovered %d epoch(s), latest %d\n", len(st.Epochs()), latestN)
		w.publish(latest)
	}
	if latest == nil {
		if err := w.mapJob(walSt); err != nil {
			return err
		}
		walSt = nil
		latest = st.Latest()
	}
	if w.s.cfg.Chaos != "" {
		w.applyChaos()
		if latest.Number < 2 {
			return w.heal("chaos", walSt)
		}
	}
	return nil
}

// mapJob runs (or resumes) the initial-map job and commits epoch 1.
func (w *world) mapJob(resume *walState) error {
	st := w.s.store
	var wal *WAL
	var err error
	resumed := false
	if resume != nil {
		target := resume.VClock
		if resume.Last != nil {
			sess, rerr := mapper.RestoreSession(w.ep, resume.Last.Checkpoint, w.sessionOpts()...)
			if rerr != nil {
				return fmt.Errorf("mapd: restore map job %d: %w", resume.Job, rerr)
			}
			w.session = sess
			target = resume.Last.VClock
		}
		w.alignClock(target)
		if wal, err = resumeWAL(resume, w.s.crash, w.m.walAppends); err != nil {
			return err
		}
		resumed = true
		w.m.resumed.Inc()
		fmt.Fprintf(w.out(), "sanmapd: resuming map job %d (%d wal step(s))\n", resume.Job, resume.Steps)
	} else {
		if wal, err = createWAL(st.Dir(), st.NextJobID(), w.s.crash, w.m.walAppends); err != nil {
			return err
		}
		if err = wal.Begin(0, int64(w.sn.Clock()), "initial-map"); err != nil {
			return err
		}
	}
	if w.session == nil {
		if w.session, err = mapper.NewSession(w.ep, w.sessionOpts()...); err != nil {
			return err
		}
	}
	res, probes, err := w.runJob(wal, func() (*mapper.Result, error) { return w.session.Map() })
	if err != nil {
		return err
	}
	return w.commit(wal, 0, resumed, probes, res)
}

// heal is the continuous remap loop's active phase: remap until the
// result is clean (not partial, no suspects, no new suspicion raised
// mid-remap) or attempts run out, with capped exponential backoff —
// charged to virtual time — between attempts. The first attempt may
// resume an interrupted remap job from its WAL.
func (w *world) heal(reason string, resume *walState) error {
	backoff := w.s.cfg.HealBackoff
	for attempt := 1; ; attempt++ {
		w.m.healAttempts.Inc()
		before := w.suspicion
		res, err := w.remapJob(reason, resume)
		resume = nil
		if err != nil {
			return err
		}
		clean := !res.Partial && len(res.Suspect) == 0 && w.suspicion == before
		if clean || attempt >= w.s.cfg.HealAttempts {
			w.handled = w.suspicion
			if !clean {
				fmt.Fprintf(w.out(), "sanmapd: heal attempts exhausted (%d); serving degraded\n", attempt)
			}
			return nil
		}
		fmt.Fprintf(w.out(), "sanmapd: heal attempt %d still suspicious; backing off %v\n", attempt, backoff)
		w.sn.AdvanceClock(backoff)
		if backoff *= 2; backoff > w.s.cfg.HealBackoffCap {
			backoff = w.s.cfg.HealBackoffCap
		}
	}
}

// remapJob runs (or resumes) one remap job and commits the next epoch.
func (w *world) remapJob(reason string, resume *walState) (*mapper.Result, error) {
	st := w.s.store
	latest := st.Latest()
	var wal *WAL
	var err error
	resumed := false
	if resume != nil {
		ckpt, src, target := latest.Checkpoint, fmt.Sprintf("epoch %d", latest.Number), resume.VClock
		if resume.Last != nil {
			ckpt, src, target = resume.Last.Checkpoint, fmt.Sprintf("wal step %d", resume.Steps), resume.Last.VClock
		}
		sess, rerr := mapper.RestoreSession(w.ep, ckpt, w.sessionOpts()...)
		if rerr != nil {
			return nil, fmt.Errorf("mapd: restore remap job %d: %w", resume.Job, rerr)
		}
		w.session = sess
		w.alignClock(target)
		if wal, err = resumeWAL(resume, w.s.crash, w.m.walAppends); err != nil {
			return nil, err
		}
		resumed = true
		w.m.resumed.Inc()
		fmt.Fprintf(w.out(), "sanmapd: resuming remap job %d from %s\n", resume.Job, src)
	} else {
		if err = w.ensureSession(); err != nil {
			return nil, err
		}
		if wal, err = createWAL(st.Dir(), st.NextJobID(), w.s.crash, w.m.walAppends); err != nil {
			return nil, err
		}
		if err = wal.Begin(latest.Number, int64(w.sn.Clock()), reason); err != nil {
			return nil, err
		}
	}
	res, probes, err := w.runJob(wal, func() (*mapper.Result, error) { return w.session.Remap() })
	if err != nil {
		return nil, err
	}
	if err := w.commit(wal, latest.Number, resumed, probes, res); err != nil {
		return nil, err
	}
	return res, nil
}

// alignClock fast-forwards the virtual clock to the persisted timeline
// position of the record a resumed job continues from. A restarted
// process's clock begins at zero; without this the resumed segment would
// log virtual timestamps shifted by everything the dead processes already
// spent, and the committed checkpoint's observation log would differ from
// an uninterrupted run's byte-for-byte.
func (w *world) alignClock(target int64) {
	if d := time.Duration(target) - w.sn.Clock(); d > 0 {
		w.sn.AdvanceClock(d)
	}
}

// ensureSession lazily restores the mapper session from the latest
// epoch's embedded checkpoint — the boot path when no WAL survived.
func (w *world) ensureSession() error {
	if w.session != nil {
		return nil
	}
	latest := w.s.store.Latest()
	sess, err := mapper.RestoreSession(w.ep, latest.Checkpoint, w.sessionOpts()...)
	if err != nil {
		return fmt.Errorf("mapd: restore session from epoch %d: %w", latest.Number, err)
	}
	w.session = sess
	fmt.Fprintf(w.out(), "sanmapd: session restored from epoch %d checkpoint\n", latest.Number)
	return nil
}

func (w *world) sessionOpts() []mapper.Option {
	return []mapper.Option{
		mapper.WithDepth(w.depth),
		mapper.WithConfirm(2),
		mapper.WithTracer(w.s.cfg.Tracer),
		mapper.WithMetrics(w.s.cfg.Metrics),
	}
}

// runJob drives one mapper call with the WAL step hook installed: every
// step boundary durably logs a full session checkpoint (and gives the
// crash hook its window) before the job proceeds.
func (w *world) runJob(wal *WAL, f func() (*mapper.Result, error)) (*mapper.Result, int64, error) {
	base := w.sn.Stats().TotalProbes()
	w.session.OnStep(func(stp mapper.Step) error {
		ckpt, err := w.session.Checkpoint()
		if err != nil {
			return err
		}
		return wal.Step(stepRecord{
			Kind: stp.Kind, Round: stp.Round, Dropped: stp.Dropped,
			Probes:     w.sn.Stats().TotalProbes() - base,
			VClock:     int64(w.sn.Clock()),
			Checkpoint: ckpt,
		})
	})
	res, err := f()
	w.session.OnStep(nil)
	if err != nil {
		wal.Close()
		return nil, 0, err
	}
	return res, w.sn.Stats().TotalProbes() - base, nil
}

// commit writes the next epoch (fenced against concurrent committers),
// discharges the WAL and publishes the serving snapshot.
func (w *world) commit(wal *WAL, parent uint64, resumed bool, probes int64, res *mapper.Result) error {
	ckpt, err := w.session.Checkpoint()
	if err != nil {
		wal.Close()
		return err
	}
	var netBuf bytes.Buffer
	if err := res.Network.Write(&netBuf); err != nil {
		wal.Close()
		return err
	}
	ep := &Epoch{
		EpochMeta: EpochMeta{
			Number: parent + 1, Parent: parent, Job: wal.job, Resumed: resumed,
			VClock: w.sn.Clock(), Probes: probes,
			Confidence: res.Confidence, Partial: res.Partial,
			Suspects: res.Suspect, SuspectIDs: res.SuspectIDs,
		},
		NetText:    netBuf.Bytes(),
		Checkpoint: ckpt,
	}
	if err := w.s.store.Commit(ep); err != nil {
		wal.Remove() // fenced or invalid — this job is dead either way
		return err
	}
	wal.Remove()
	w.m.commits.Inc()
	w.m.latest.Set(int64(ep.Number))
	if w.s.cfg.Tracer != nil {
		w.s.cfg.Tracer.Instant("mapd", "commit", w.sn.Clock(),
			obs.Int("epoch", int(ep.Number)), obs.Int("probes", int(probes)))
	}
	w.publish(ep)
	return nil
}

// publish swaps in the immutable serving snapshot for ep. On a snapshot
// build failure the previous snapshot keeps serving (degradation ladder
// rung 0: serve what we have).
func (w *world) publish(ep *Epoch) {
	snap, err := buildSnapshot(ep)
	if err != nil {
		fmt.Fprintf(w.out(), "sanmapd: epoch %d unservable: %v\n", ep.Number, err)
		return
	}
	snap.Metrics = w.metricsSnapshot()
	w.m.level.Set(int64(snap.Level))
	w.s.snap.Store(snap)
	fmt.Fprintf(w.out(), "sanmapd: serving epoch %d (%s, confidence %.3f, %v)\n",
		ep.Number, levelName(snap.Level), ep.Confidence, snap.Net)
}

// metricsSnapshot freezes the registry into a plain map so connection
// goroutines can serve metrics without touching the live registry.
func (w *world) metricsSnapshot() map[string]int64 {
	out := make(map[string]int64)
	w.s.cfg.Metrics.EachCounter(func(n string, v int64) { out[n] = v })
	w.s.cfg.Metrics.EachGauge(func(n string, v int64) { out[n] = v })
	return out
}

// handleCmd executes one state-changing client command on the world loop.
func (w *world) handleCmd(c command) {
	var rep cmdReply
	switch c.op {
	case "inject":
		n, err := w.inject(c.spec)
		if err != nil {
			rep.err = err
			break
		}
		if w.suspicion > w.handled {
			if err := w.heal("inject", nil); err != nil {
				rep.err = err
				break
			}
		}
		rep.msg = fmt.Sprintf("%d fault event(s) applied", n)
	case "remap":
		rep.err = w.heal("manual", nil)
		if rep.err == nil {
			rep.msg = "remapped"
		}
	default:
		rep.err = fmt.Errorf("mapd: unknown command %q", c.op)
	}
	if latest := w.s.store.Latest(); latest != nil {
		rep.epoch = latest.Number
	}
	c.reply <- rep
}

// inject generates and force-applies a fault schedule against the
// current (possibly already damaged) topology. Flap pairs cancel out
// under ApplyAll; this is the structural-faults entry point.
func (w *world) inject(spec string) (int, error) {
	p, seed, err := faults.ParseProfile(spec)
	if err != nil {
		return 0, err
	}
	p.Protect = w.h0
	sched := faults.Generate(w.sn.Topology(), seed, p)
	w.attachInjector(sched)
	w.inj.ApplyAll()
	w.sn.Reconfigure()
	w.chaosApplied = true
	return len(sched.Events), nil
}
