package mapd

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"sanmap/internal/topology"
)

func testEpoch(n uint64) *Epoch {
	return &Epoch{
		EpochMeta: EpochMeta{
			Number: n, Parent: n - 1, Job: n,
			Resumed: n%2 == 0, VClock: 17 * time.Millisecond, Probes: 136,
			Confidence: 0.875, Partial: n%2 == 1,
			Suspects:   []string{`m1[3]--m2[0]`, "odd \"name\"\nwith newline"},
			SuspectIDs: []topology.NodeID{3, 9},
		},
		NetText:    []byte("hosts 2\nswitches 1\n... not parsed by the store ...\n"),
		Checkpoint: []byte("sanmap-checkpoint 1\nopaque to the store\n"),
	}
}

func TestEpochEncodeParseRoundTrip(t *testing.T) {
	ep := testEpoch(3)
	got, err := parseEpoch(encodeEpoch(ep))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ep, got) {
		t.Fatalf("round trip:\nin  %+v\nout %+v", ep, got)
	}
	// Empty optional fields survive too.
	min := &Epoch{EpochMeta: EpochMeta{Number: 1, Confidence: 1}}
	got, err = parseEpoch(encodeEpoch(min))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(min, got) {
		t.Fatalf("minimal round trip:\nin  %+v\nout %+v", min, got)
	}
}

func TestEpochChecksumRejectsFlips(t *testing.T) {
	data := encodeEpoch(testEpoch(1))
	for _, i := range []int{0, len(data) / 2, len(data) - 12} {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x40
		if _, err := parseEpoch(bad); !errors.Is(err, ErrBadEpoch) {
			t.Errorf("flip at %d: got %v, want ErrBadEpoch", i, err)
		}
	}
	if _, err := parseEpoch(data[:len(data)-4]); !errors.Is(err, ErrBadEpoch) {
		t.Errorf("truncated file: got %v", err)
	}
}

func TestStoreCommitAndReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Latest() != nil {
		t.Fatal("empty store has a latest epoch")
	}
	if err := st.Commit(testEpoch(1)); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(testEpoch(2)); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := st2.Latest(); got == nil || got.Number != 2 {
		t.Fatalf("Latest after reopen: %+v", got)
	}
	if len(st2.Epochs()) != 2 || st2.Corrupt() != 0 {
		t.Fatalf("reopen: %d epochs, %d corrupt", len(st2.Epochs()), st2.Corrupt())
	}
}

func TestStoreSkipsCorruptEpochs(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for n := uint64(1); n <= 2; n++ {
		if err := st.Commit(testEpoch(n)); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt the newest file: the store must fall back to epoch 1.
	path := filepath.Join(dir, "epoch-000002.san")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0xff
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := st2.Latest(); got == nil || got.Number != 1 {
		t.Fatalf("Latest with corrupt newest: %+v", got)
	}
	if st2.Corrupt() != 1 {
		t.Fatalf("Corrupt() = %d, want 1", st2.Corrupt())
	}
}

// TestStoreCommitFencing: a commit whose parent is no longer the on-disk
// latest must fail with ErrFenced — even when the store's own memory is
// stale because another process committed behind its back.
func TestStoreCommitFencing(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(testEpoch(1)); err != nil {
		t.Fatal(err)
	}
	// Wrong parent, checked against memory and disk alike.
	if err := st.Commit(testEpoch(3)); !errors.Is(err, ErrFenced) {
		t.Fatalf("parent skip: got %v, want ErrFenced", err)
	}
	// A second process (simulated via a second Store handle) wins the race.
	other, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Commit(testEpoch(2)); err != nil {
		t.Fatal(err)
	}
	// The loser's view says "latest is 1", but the disk says 2: fenced.
	if err := st.Commit(testEpoch(2)); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale commit: got %v, want ErrFenced", err)
	}
}

func TestNextJobID(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.NextJobID(); got != 1 {
		t.Fatalf("empty store NextJobID = %d, want 1", got)
	}
	ep := testEpoch(1)
	ep.Job = 5
	if err := st.Commit(ep); err != nil {
		t.Fatal(err)
	}
	if got := st.NextJobID(); got != 6 {
		t.Fatalf("after epoch job 5: NextJobID = %d, want 6", got)
	}
	// A leftover WAL from a dead job must fence its ID too, even without
	// an epoch: job IDs never repeat.
	w, err := createWAL(dir, 9, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Begin(1, 0, "test"); err != nil {
		t.Fatal(err)
	}
	w.Close()
	if got := st.NextJobID(); got != 10 {
		t.Fatalf("with wal-9: NextJobID = %d, want 10", got)
	}
}
