package mapd

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
)

// Client is a minimal line-delimited JSON client for the sanmapd
// front-end, shared by cmd/sanwatch's -daemon mode and the tests.
type Client struct {
	c  net.Conn
	br *bufio.Reader
}

// Dial connects to a -listen address (same spec grammar: "unix:PATH", a
// path, or host:port).
func Dial(listen string) (*Client, error) {
	nw, addr := splitListen(listen)
	c, err := net.Dial(nw, addr)
	if err != nil {
		return nil, err
	}
	return &Client{c: c, br: bufio.NewReader(c)}, nil
}

// Call sends one request and decodes the daemon's reply.
func (cl *Client) Call(req map[string]any) (map[string]any, error) {
	line, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	if _, err := cl.c.Write(append(line, '\n')); err != nil {
		return nil, fmt.Errorf("mapd: call: %w", err)
	}
	resp, err := cl.br.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("mapd: reply: %w", err)
	}
	var out map[string]any
	if err := json.Unmarshal(resp, &out); err != nil {
		return nil, fmt.Errorf("mapd: reply: %w", err)
	}
	return out, nil
}

// Close closes the connection.
func (cl *Client) Close() error { return cl.c.Close() }
