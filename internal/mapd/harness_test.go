package mapd

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestMain doubles as the sanmapd re-exec helper: when SANMAPD_HELPER is
// set the test binary becomes a real daemon process (argument vector in
// the variable, unit-separated), which is how the kill/restart harness
// crashes and reboots sanmapd as an actual OS process rather than a
// goroutine.
func TestMain(m *testing.M) {
	if args := os.Getenv("SANMAPD_HELPER"); args != "" {
		os.Exit(Main(strings.Split(args, "\x1f"), os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// runDaemon execs this test binary as a sanmapd process and returns its
// exit code and combined output.
func runDaemon(t *testing.T, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "SANMAPD_HELPER="+strings.Join(args, "\x1f"))
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode(), string(out)
	}
	t.Fatalf("exec daemon: %v\n%s", err, out)
	return -1, ""
}

// netSection extracts the serialized network from a committed epoch.
func netSection(t *testing.T, ep *Epoch) string {
	t.Helper()
	if ep == nil {
		t.Fatal("nil epoch")
	}
	return string(ep.NetText)
}

// TestCrashRestartConvergesByteIdentical is the crash harness from the
// issue: kill sanmapd at the 1st, 2nd, 3rd, ... WAL append — every
// durable point there is — restarting onto the same state directory each
// time, and require that the surviving committed epochs are byte-for-byte
// the same maps an uninterrupted daemon produces.
func TestCrashRestartConvergesByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	base := []string{
		"-gen", "now-c", "-seed", "1", "-chaos", "seed=5,cuts=2", "-once",
	}
	refDir := t.TempDir()
	if code, out := runDaemon(t, append([]string{"-state", refDir}, base...)...); code != 0 {
		t.Fatalf("reference run exited %d:\n%s", code, out)
	}

	crashDir := t.TempDir()
	converged := false
	crashes := 0
	var lastOut string
	for n := 1; n <= 64; n++ {
		code, out := runDaemon(t, append([]string{
			"-state", crashDir, "-crash-after", fmt.Sprint(n)}, base...)...)
		lastOut = out
		switch code {
		case crashExitCode:
			crashes++
		case 0:
			converged = true
		default:
			t.Fatalf("crash run n=%d exited %d:\n%s", n, code, out)
		}
		if converged {
			break
		}
	}
	if !converged {
		t.Fatalf("no convergence after 64 crash points:\n%s", lastOut)
	}
	if crashes == 0 {
		t.Fatal("crash hook never fired — harness tested nothing")
	}

	ref, err := OpenStore(refDir)
	if err != nil {
		t.Fatal(err)
	}
	crash, err := OpenStore(crashDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Epochs()) != len(crash.Epochs()) || len(ref.Epochs()) < 2 {
		t.Fatalf("epoch counts differ: ref %d, crash-looped %d",
			len(ref.Epochs()), len(crash.Epochs()))
	}
	for i, re := range ref.Epochs() {
		ce := crash.Epochs()[i]
		if netSection(t, re) != netSection(t, ce) {
			t.Errorf("epoch %d: crash-looped network differs from uninterrupted run", re.Number)
		}
		if !bytes.Equal(re.Checkpoint, ce.Checkpoint) {
			t.Errorf("epoch %d: crash-looped checkpoint differs from uninterrupted run", re.Number)
		}
	}

	// Resumability must have been exercised and must pay: the final
	// epoch of the crash loop comes from a resumed job whose last process
	// segment spent fewer probes than the uninterrupted heal.
	refFinal, crashFinal := ref.Latest(), crash.Latest()
	if !crashFinal.Resumed {
		t.Error("final crash-looped epoch was not committed by a resumed job")
	}
	if refFinal.Probes <= 0 {
		t.Fatalf("reference heal spent %d probes — profile too weak", refFinal.Probes)
	}
	if crashFinal.Probes >= refFinal.Probes {
		t.Errorf("resumed remap spent %d probes, from-scratch spends %d — resume saved nothing",
			crashFinal.Probes, refFinal.Probes)
	}

	// No WAL survives a committed convergence.
	if leftovers := staleWALs(crashDir, 0); len(leftovers) != 0 {
		t.Errorf("stale WALs after convergence: %v", leftovers)
	}
}

// TestCrashRestartInterruptedInitialMap crashes inside the very first
// map job (before any epoch exists) and checks the restart recovers it
// from the WAL and still commits the identical epoch 1.
func TestCrashRestartInterruptedInitialMap(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	base := []string{"-gen", "now-c", "-seed", "1", "-once"}
	refDir := t.TempDir()
	if code, out := runDaemon(t, append([]string{"-state", refDir}, base...)...); code != 0 {
		t.Fatalf("reference run exited %d:\n%s", code, out)
	}

	dir := t.TempDir()
	if code, _ := runDaemon(t, append([]string{
		"-state", dir, "-crash-after", "1"}, base...)...); code != crashExitCode {
		t.Fatalf("crash-after=1 exited %d, want %d", code, crashExitCode)
	}
	code, out := runDaemon(t, append([]string{"-state", dir}, base...)...)
	if code != 0 {
		t.Fatalf("restart exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "resuming map job") {
		t.Fatalf("restart did not resume the interrupted map job:\n%s", out)
	}

	ref, err := OpenStore(refDir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if netSection(t, ref.Latest()) != netSection(t, got.Latest()) {
		t.Error("recovered initial map differs from uninterrupted run")
	}
}
