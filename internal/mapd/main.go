package mapd

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sanmap/internal/genspec"
	"sanmap/internal/obs"
)

// Main is the sanmapd entry point, factored here so cmd/sanmapd stays a
// one-line wrapper and the kill/restart harness can re-exec the test
// binary as a real daemon process. Returns the process exit code.
func Main(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sanmapd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	gen := fs.String("gen", "now-c", "generator spec: "+genspec.Specs())
	seed := fs.Int64("seed", 1, "topology build seed")
	chaos := fs.String("chaos", "", "fault profile to converge against (key=value[,key=value...]; see sanmap -chaos)")
	depth := fs.Int("depth", 0, "base probe depth (0 = derive from the topology)")
	mapperHost := fs.String("mapper", "", "mapping host name (default: utility host, else first host)")
	state := fs.String("state", "", "state directory for epochs and WAL (required)")
	listen := fs.String("listen", "", "query front-end: unix:PATH or host:port (port 0 picks one)")
	once := fs.Bool("once", false, "exit after initial convergence instead of serving")
	crashAfter := fs.Int("crash-after", 0, "crash injection: kill the process at the n-th WAL append")
	healAttempts := fs.Int("heal-attempts", 3, "max remap attempts per suspicion burst")
	healBackoff := fs.Duration("heal-backoff", 2*time.Millisecond, "initial virtual-time backoff between heal attempts")
	healBackoffCap := fs.Duration("heal-backoff-cap", 50*time.Millisecond, "virtual-time backoff cap")
	tele := obs.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *state == "" {
		fmt.Fprintln(stderr, "sanmapd: -state is required")
		return 2
	}
	if err := tele.Begin(); err != nil {
		fmt.Fprintln(stderr, "sanmapd:", err)
		return 1
	}
	// The daemon always keeps a registry for its own epoch/WAL/heal
	// metrics, even when no -metrics sidecar was requested.
	reg := tele.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	srv, err := New(Config{
		Gen: *gen, Seed: *seed, Chaos: *chaos, Depth: *depth, Mapper: *mapperHost,
		StateDir: *state, Listen: *listen, Once: *once, CrashAfter: *crashAfter,
		HealAttempts: *healAttempts, HealBackoff: *healBackoff, HealBackoffCap: *healBackoffCap,
		Interrupt: sigc, Tracer: tele.Tracer, Metrics: reg, Out: stdout,
	})
	if err != nil {
		fmt.Fprintln(stderr, "sanmapd:", err)
		return 1
	}
	runErr := srv.Run()
	if err := tele.Finish(); err != nil {
		fmt.Fprintln(stderr, "sanmapd:", err)
		return 1
	}
	if runErr != nil {
		fmt.Fprintln(stderr, "sanmapd:", runErr)
		return 1
	}
	return 0
}
