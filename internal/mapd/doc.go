// Package mapd is the mapping-as-a-service layer: a long-running daemon
// (cmd/sanmapd) that owns a live map of a simulated system area network
// and survives its own crashes.
//
// Three mechanisms cooperate (DESIGN.md §14):
//
//   - The epoch store (store.go) persists every completed Map/Remap as a
//     numbered, checksummed epoch file — a bookmark the daemon can always
//     serve from — committed via write-temp-then-rename. Each epoch embeds
//     the mapper.Session checkpoint that produced it, so the next remap
//     starts from committed state even in a fresh process.
//
//   - The write-ahead log (wal.go) records in-flight remap steps: after
//     every verification sweep and explore drain the session checkpoint
//     (scoped re-explore frontier, surviving edge sets, probe spend) is
//     appended as a checksummed record. A daemon killed mid-remap resumes
//     from the last record instead of restarting — monotone progress —
//     and unique job IDs fence a stale resumed mapper off a newer epoch.
//
//   - The query front-end (query.go) serves route/topology/epoch queries
//     over a unix or tcp socket in line-delimited JSON, always against an
//     atomically-swapped immutable Snapshot of the latest epoch; queries
//     never block on healing. A degradation ladder annotates responses as
//     confidence drops and, at the bottom rung, refuses only routes that
//     cross suspect edges. The `load` op goes beyond "what is the route":
//     it replays a canned seeded traffic plan over the epoch's table with
//     internal/loadsim and reports route quality — throughput, latency
//     percentiles, peak link utilisation, deadlock freedom — cached per
//     snapshot (see WORKLOADS.md).
//
// The continuous remap loop (server.go) is driven by internal/faults
// suspicion records, with capped exponential backoff (charged to virtual
// time) between heal attempts. Crash injection for the daemon itself —
// -crash-after n kills the process at the n-th WAL append — powers the
// kill/restart harness (harness_test.go), which asserts the final
// committed map is byte-identical to an uninterrupted run's.
package mapd
