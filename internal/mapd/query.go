package mapd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"sanmap/internal/loadsim"
	"sanmap/internal/routes"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
	"sanmap/internal/workload"
)

// Serving levels: the degradation ladder. Full serves everything from a
// clean epoch; Annotated serves everything but stamps responses with the
// reduced confidence; Guarded additionally refuses routes that cross the
// suspect region (and serves everything else).
const (
	LevelFull = iota
	LevelAnnotated
	LevelGuarded
)

func levelName(l int) string {
	switch l {
	case LevelFull:
		return "full"
	case LevelAnnotated:
		return "annotated"
	case LevelGuarded:
		return "guarded"
	}
	return "unknown"
}

// Snapshot is one immutable serving state: an epoch's network, its
// precomputed route table, and the degradation-ladder classification.
// Connection goroutines read it lock-free via an atomic pointer; the
// world loop swaps in a fresh one at each commit and never mutates a
// published snapshot.
type Snapshot struct {
	Epoch      uint64
	Job        uint64
	Resumed    bool
	VClock     time.Duration
	Probes     int64
	Confidence float64
	Partial    bool
	Suspects   []string
	SuspectIDs map[topology.NodeID]bool
	Level      int
	Net        *topology.Network
	Table      *routes.Table // nil when route computation failed
	Metrics    map[string]int64

	// Route quality under the canned load replay, measured lazily on the
	// first `load` query and cached for the snapshot's lifetime (the
	// snapshot is immutable, so the replay is too).
	loadOnce sync.Once
	quality  map[string]any
}

// buildSnapshot materializes the serving state for a committed epoch.
// The route table is computed here, once, on the world loop — queries
// only ever read it.
func buildSnapshot(ep *Epoch) (*Snapshot, error) {
	topo, err := topology.ReadFrom(bytes.NewReader(ep.NetText))
	if err != nil {
		return nil, fmt.Errorf("mapd: epoch %d network: %w", ep.Number, err)
	}
	snap := &Snapshot{
		Epoch: ep.Number, Job: ep.Job, Resumed: ep.Resumed,
		VClock: ep.VClock, Probes: ep.Probes,
		Confidence: ep.Confidence, Partial: ep.Partial,
		Suspects:   ep.Suspects,
		SuspectIDs: make(map[topology.NodeID]bool, len(ep.SuspectIDs)),
		Net:        topo,
	}
	for _, id := range ep.SuspectIDs {
		snap.SuspectIDs[id] = true
	}
	switch {
	case ep.Partial || len(ep.SuspectIDs) > 0:
		snap.Level = LevelGuarded
	case ep.Confidence < 1:
		snap.Level = LevelAnnotated
	}
	if tab, err := routes.Compute(topo, routes.DefaultConfig()); err == nil {
		snap.Table = tab
	}
	return snap, nil
}

// request is one line-delimited JSON query.
type request struct {
	Op   string `json:"op"`
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	Spec string `json:"spec,omitempty"`
}

// acceptLoop admits connections until the listener closes at shutdown.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		if !s.track(c) {
			c.Close()
			return
		}
		s.wg.Add(1)
		go s.serveConn(c)
	}
}

// serveConn answers one client's queries. Reads hit only the atomic
// snapshot; state changes are forwarded to the world loop.
func (s *Server) serveConn(c net.Conn) {
	defer s.wg.Done()
	defer s.untrack(c)
	sc := bufio.NewScanner(c)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	enc := json.NewEncoder(c)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var req request
		var resp map[string]any
		if err := json.Unmarshal(line, &req); err != nil {
			resp = map[string]any{"ok": false, "error": "bad request: " + err.Error()}
		} else {
			resp = s.handle(req)
		}
		s.queries.Add(1)
		if ok, _ := resp["ok"].(bool); !ok {
			if refused, _ := resp["refused"].(bool); refused {
				s.refused.Add(1)
			} else {
				s.failedReads.Add(1)
			}
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// handle dispatches one request. Must stay safe for concurrent calls:
// reads touch only the snapshot, writes go through the command channel.
func (s *Server) handle(req request) map[string]any {
	snap := s.snap.Load()
	switch req.Op {
	case "ping":
		resp := map[string]any{"ok": true, "op": "ping"}
		if snap != nil {
			resp["epoch"] = snap.Epoch
		}
		return resp
	case "epoch":
		if snap == nil {
			return noEpoch("epoch")
		}
		return map[string]any{
			"ok": true, "op": "epoch",
			"epoch": snap.Epoch, "job": snap.Job, "resumed": snap.Resumed,
			"level": levelName(snap.Level), "confidence": snap.Confidence,
			"partial": snap.Partial, "suspects": len(snap.Suspects),
			"probes": snap.Probes, "vclock_ns": int64(snap.VClock),
		}
	case "topo":
		if snap == nil {
			return noEpoch("topo")
		}
		var b bytes.Buffer
		if err := snap.Net.Write(&b); err != nil {
			return map[string]any{"ok": false, "op": "topo", "error": err.Error()}
		}
		return map[string]any{
			"ok": true, "op": "topo", "epoch": snap.Epoch,
			"hosts": snap.Net.NumHosts(), "switches": snap.Net.NumSwitches(),
			"wires": snap.Net.NumWires(), "network": b.String(),
		}
	case "route":
		return routeAnswer(snap, req.From, req.To)
	case "metrics":
		if snap == nil {
			return noEpoch("metrics")
		}
		return map[string]any{
			"ok": true, "op": "metrics", "epoch": snap.Epoch,
			"metrics": snap.Metrics,
			"queries": s.queries.Load(), "refused": s.refused.Load(),
			"failed_reads": s.failedReads.Load(),
		}
	case "load":
		return loadAnswer(snap)
	case "inject", "remap":
		return s.worldCmd(req)
	case "stop":
		s.Close()
		return map[string]any{"ok": true, "op": "stop"}
	}
	return map[string]any{"ok": false, "error": fmt.Sprintf("unknown op %q", req.Op)}
}

// worldCmd hands a state change to the world loop and waits for its
// reply, bailing out if the server shuts down first.
func (s *Server) worldCmd(req request) map[string]any {
	cmd := command{op: req.Op, spec: req.Spec, reply: make(chan cmdReply, 1)}
	select {
	case s.cmds <- cmd:
	case <-s.stop:
		return map[string]any{"ok": false, "op": req.Op, "error": "server shutting down"}
	}
	select {
	case rep := <-cmd.reply:
		if rep.err != nil {
			return map[string]any{"ok": false, "op": req.Op, "error": rep.err.Error(), "epoch": rep.epoch}
		}
		return map[string]any{"ok": true, "op": req.Op, "result": rep.msg, "epoch": rep.epoch}
	case <-s.stop:
		return map[string]any{"ok": false, "op": req.Op, "error": "server shutting down"}
	}
}

func noEpoch(op string) map[string]any {
	return map[string]any{"ok": false, "op": op, "error": "no epoch committed yet"}
}

// routeAnswer computes one route response against a snapshot, applying
// the degradation ladder: annotation below full confidence, refusal —
// and only refusal — for routes crossing the suspect region at the
// guarded level.
func routeAnswer(snap *Snapshot, from, to string) map[string]any {
	resp := map[string]any{"op": "route", "from": from, "to": to}
	if snap == nil {
		resp["ok"] = false
		resp["error"] = "no epoch committed yet"
		return resp
	}
	resp["epoch"] = snap.Epoch
	if snap.Level != LevelFull {
		resp["degraded"] = levelName(snap.Level)
		resp["confidence"] = snap.Confidence
	}
	src, dst := snap.Net.Lookup(from), snap.Net.Lookup(to)
	if src == topology.None || dst == topology.None {
		resp["ok"] = false
		resp["error"] = "unknown host"
		return resp
	}
	if snap.Table == nil {
		resp["ok"] = false
		resp["error"] = "no route table for this epoch"
		return resp
	}
	route, ok := snap.Table.Route(src, dst)
	if !ok {
		resp["ok"] = false
		resp["error"] = "no route"
		return resp
	}
	wires, _ := snap.Table.WirePath(src, dst)
	if snap.Level == LevelGuarded {
		if bad := crossesSuspect(snap, src, dst, wires); bad != topology.None {
			resp["ok"] = false
			resp["refused"] = true
			resp["error"] = fmt.Sprintf("route crosses suspect node %s", snap.Net.NameOf(bad))
			return resp
		}
	}
	resp["ok"] = true
	resp["route"] = route.String()
	resp["hops"] = len(wires)
	return resp
}

// loadAnswer reports route quality of the served epoch: a canned seeded
// traffic plan (uniform, light load) replayed over the snapshot's route
// table via internal/loadsim, so operators can ask not just "what is the
// route" but "how good are this epoch's routes under load". The replay is
// a pure function of the epoch's network, so answers are deterministic and
// cached on the snapshot; degraded epochs carry the same annotation the
// route op uses.
func loadAnswer(snap *Snapshot) map[string]any {
	resp := map[string]any{"op": "load"}
	if snap == nil {
		return noEpoch("load")
	}
	resp["epoch"] = snap.Epoch
	if snap.Level != LevelFull {
		resp["degraded"] = levelName(snap.Level)
		resp["confidence"] = snap.Confidence
	}
	if snap.Table == nil {
		resp["ok"] = false
		resp["error"] = "no route table for this epoch"
		return resp
	}
	snap.loadOnce.Do(func() { snap.quality = measureQuality(snap) })
	if snap.quality == nil {
		resp["ok"] = false
		resp["error"] = "load replay failed (fewer than two hosts?)"
		return resp
	}
	for k, v := range snap.quality {
		resp[k] = v
	}
	resp["ok"] = true
	return resp
}

// loadProbePlan is the canned replay: light uniform traffic, fixed seed,
// just long enough to light up every route.
func loadProbePlan(net *topology.Network) *workload.Plan {
	return workload.NewPlan(net, workload.PlanConfig{
		Pattern: workload.Uniform, Load: 0.2, MsgBytes: 512,
		Duration: 200 * time.Microsecond,
		ByteTime: simnet.DefaultTiming().ByteTime, Seed: 1,
	})
}

// measureQuality runs the canned replay and flattens the report.
func measureQuality(snap *Snapshot) map[string]any {
	eng, err := loadsim.New(snap.Net, snap.Table, simnet.DefaultTiming(), 512)
	if err != nil {
		return nil
	}
	rep, err := eng.Run(loadProbePlan(snap.Net))
	if err != nil {
		return nil
	}
	return map[string]any{
		"deadlock_free":   rep.DeadlockFree,
		"sent":            rep.Sent,
		"delivered":       rep.Delivered,
		"lost":            rep.Lost,
		"blocked":         rep.Blocked,
		"throughput_bps":  rep.ThroughputBps,
		"p50_ns":          int64(rep.P50),
		"p99_ns":          int64(rep.P99),
		"max_latency_ns":  int64(rep.MaxLatency),
		"peak_util_ppm":   rep.MaxUtilPPM(),
		"congested_links": len(rep.Links),
		"makespan_ns":     int64(rep.Makespan),
	}
}

// crossesSuspect returns the first suspect node the route touches
// (endpoints included), or topology.None.
func crossesSuspect(snap *Snapshot, src, dst topology.NodeID, wires []int) topology.NodeID {
	if snap.SuspectIDs[src] {
		return src
	}
	if snap.SuspectIDs[dst] {
		return dst
	}
	for _, wi := range wires {
		w := snap.Net.WireByIndex(wi)
		if snap.SuspectIDs[w.A.Node] {
			return w.A.Node
		}
		if snap.SuspectIDs[w.B.Node] {
			return w.B.Node
		}
	}
	return topology.None
}
