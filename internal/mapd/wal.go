package mapd

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"sanmap/internal/mapper"
	"sanmap/internal/obs"
)

// The WAL holds the in-flight state of one map or remap job: a begin
// record naming the job and the epoch it heals from, then one step record
// per completed mapper phase (initial-map drain, verification sweep,
// re-explore drain), each embedding a full session checkpoint. Records
// are length- and CRC-framed; recovery truncates a torn tail (the crash
// window is inside a single append) and resumes from the last whole
// record. The file is wal-<job>.log and is removed after its epoch
// commits, so a WAL on disk always means "job in flight or dead".
//
// Record payloads, binary little-endian:
//
//	begin: 'B' | u64 job | u64 parent | i64 vclock | u32 len | reason bytes
//	step:  'S' | u8 kind | i32 round | i32 dropped | i64 probes | i64 vclock |
//	       u32 len | checkpoint bytes
//
// vclock is the simulation's virtual clock at the record's boundary; a
// resumed process re-aligns its clock to it so the healed timeline — and
// with it every timestamp the session logs — replays identically to an
// uninterrupted run.

// crashHook implements -crash-after n: the n-th durable WAL append in
// this process kills it, after the bytes hit the disk — modelling a
// daemon that dies at the worst moment but never loses acknowledged
// writes. The counter is shared across all WALs a process opens.
type crashHook struct {
	after int
	n     int
	exit  func() // os.Exit(crashExitCode) in production, overridable in tests
}

// crashExitCode distinguishes an injected crash from real failures.
const crashExitCode = 7

func (c *crashHook) note() {
	if c == nil || c.after <= 0 {
		return
	}
	c.n++
	if c.n == c.after {
		c.exit()
	}
}

// WAL is an open, appendable write-ahead log for one job.
type WAL struct {
	f       *os.File
	path    string
	job     uint64
	crash   *crashHook
	appends *obs.Counter
}

// stepRecord is one persisted mapper step.
type stepRecord struct {
	Kind       mapper.StepKind
	Round      int
	Dropped    int
	Probes     int64 // job probe spend up to this step (this process segment)
	VClock     int64 // virtual clock (ns) when the step completed
	Checkpoint []byte
}

// walState is the result of recovering a WAL from disk.
type walState struct {
	Path   string
	Job    uint64
	Parent uint64
	Reason string
	VClock int64 // virtual clock (ns) when the job began
	Steps  int
	Last   *stepRecord // nil when only the begin record survived
	valid  int64       // byte offset past the last whole record
}

func walPath(dir string, job uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%d.log", job))
}

// createWAL starts a fresh log for job, truncating any leftover.
func createWAL(dir string, job uint64, crash *crashHook, appends *obs.Counter) (*WAL, error) {
	f, err := os.OpenFile(walPath(dir, job), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o666)
	if err != nil {
		return nil, fmt.Errorf("mapd: wal: %w", err)
	}
	return &WAL{f: f, path: f.Name(), job: job, crash: crash, appends: appends}, nil
}

// resumeWAL reopens a recovered log for appending, truncating any torn
// tail past the last whole record.
func resumeWAL(st *walState, crash *crashHook, appends *obs.Counter) (*WAL, error) {
	f, err := os.OpenFile(st.Path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("mapd: wal: %w", err)
	}
	if err := f.Truncate(st.valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("mapd: wal: %w", err)
	}
	if _, err := f.Seek(st.valid, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("mapd: wal: %w", err)
	}
	return &WAL{f: f, path: st.Path, job: st.Job, crash: crash, appends: appends}, nil
}

// Begin appends the job header. parent is the epoch this job heals from
// (0 for the initial map); vclock is the virtual time the job starts at;
// reason is a short human-readable tag.
func (w *WAL) Begin(parent uint64, vclock int64, reason string) error {
	var b bytes.Buffer
	b.WriteByte('B')
	le64(&b, w.job)
	le64(&b, parent)
	le64(&b, uint64(vclock))
	le32(&b, uint32(len(reason)))
	b.WriteString(reason)
	return w.append(b.Bytes())
}

// Step appends one mapper step with its embedded checkpoint.
func (w *WAL) Step(rec stepRecord) error {
	var b bytes.Buffer
	b.WriteByte('S')
	b.WriteByte(byte(rec.Kind))
	le32(&b, uint32(int32(rec.Round)))
	le32(&b, uint32(int32(rec.Dropped)))
	le64(&b, uint64(rec.Probes))
	le64(&b, uint64(rec.VClock))
	le32(&b, uint32(len(rec.Checkpoint)))
	b.Write(rec.Checkpoint)
	return w.append(b.Bytes())
}

// append frames, writes and syncs one record, then gives the crash hook
// its chance. The frame is u32 payload length, u32 payload CRC-32 (IEEE),
// payload.
func (w *WAL) append(payload []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	if _, err := w.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("mapd: wal append: %w", err)
	}
	if _, err := w.f.Write(payload); err != nil {
		return fmt.Errorf("mapd: wal append: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("mapd: wal sync: %w", err)
	}
	w.appends.Inc()
	w.crash.note()
	return nil
}

// Close closes the file without removing it (the job is still in flight).
func (w *WAL) Close() error { return w.f.Close() }

// Remove closes and deletes the log — the job's epoch has committed (or
// the job is fenced) and the WAL's promise is discharged.
func (w *WAL) Remove() error {
	w.f.Close()
	return os.Remove(w.path)
}

// loadWAL recovers the newest WAL in dir (highest job number), or nil if
// none exists. Torn or corrupt tails are noted in the returned state and
// truncated by resumeWAL; a log whose begin record is unreadable is
// treated as absent.
func loadWAL(dir string) (*walState, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		return nil, err
	}
	sort.Slice(paths, func(i, j int) bool {
		return walJobOf(paths[i]) < walJobOf(paths[j])
	})
	for i := len(paths) - 1; i >= 0; i-- {
		st, err := readWAL(paths[i])
		if err != nil {
			return nil, err
		}
		if st != nil {
			return st, nil
		}
	}
	return nil, nil
}

// staleWALs returns the paths of every WAL in dir except keep (0 keeps
// none) — used to sweep fenced jobs' leftovers at recovery.
func staleWALs(dir string, keep uint64) []string {
	paths, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	var out []string
	for _, p := range paths {
		if walJobOf(p) != keep || keep == 0 {
			out = append(out, p)
		}
	}
	return out
}

func walJobOf(path string) uint64 {
	base := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(path), "wal-"), ".log")
	j, _ := strconv.ParseUint(base, 10, 64)
	return j
}

// readWAL parses one log, stopping at the first torn or corrupt record.
// Returns nil (no error) when not even the begin record is whole.
func readWAL(path string) (*walState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	st := &walState{Path: path}
	pos := 0
	for {
		payload, next, ok := walFrame(data, pos)
		if !ok {
			break
		}
		if !st.decode(payload) {
			break
		}
		pos = next
		st.valid = int64(pos)
	}
	if st.Job == 0 { // no whole begin record
		return nil, nil
	}
	return st, nil
}

// walFrame extracts the framed record at pos, reporting false on a torn
// or corrupt frame.
func walFrame(data []byte, pos int) (payload []byte, next int, ok bool) {
	if pos+8 > len(data) {
		return nil, 0, false
	}
	n := int(binary.LittleEndian.Uint32(data[pos:]))
	sum := binary.LittleEndian.Uint32(data[pos+4:])
	if pos+8+n > len(data) {
		return nil, 0, false
	}
	payload = data[pos+8 : pos+8+n]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, 0, false
	}
	return payload, pos + 8 + n, true
}

// decode applies one record payload to the state, reporting false on a
// malformed record (treated like a torn tail).
func (st *walState) decode(p []byte) bool {
	if len(p) < 1 {
		return false
	}
	switch p[0] {
	case 'B':
		if len(p) < 29 {
			return false
		}
		st.Job = binary.LittleEndian.Uint64(p[1:])
		st.Parent = binary.LittleEndian.Uint64(p[9:])
		st.VClock = int64(binary.LittleEndian.Uint64(p[17:]))
		n := int(binary.LittleEndian.Uint32(p[25:]))
		if 29+n != len(p) {
			return false
		}
		st.Reason = string(p[29:])
		return st.Job != 0
	case 'S':
		if st.Job == 0 || len(p) < 30 {
			return false
		}
		rec := &stepRecord{
			Kind:    mapper.StepKind(p[1]),
			Round:   int(int32(binary.LittleEndian.Uint32(p[2:]))),
			Dropped: int(int32(binary.LittleEndian.Uint32(p[6:]))),
			Probes:  int64(binary.LittleEndian.Uint64(p[10:])),
			VClock:  int64(binary.LittleEndian.Uint64(p[18:])),
		}
		n := int(binary.LittleEndian.Uint32(p[26:]))
		if 30+n != len(p) {
			return false
		}
		rec.Checkpoint = append([]byte(nil), p[30:]...)
		st.Last = rec
		st.Steps++
		return true
	default:
		return false
	}
}

func le32(b *bytes.Buffer, v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	b.Write(buf[:])
}

func le64(b *bytes.Buffer, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	b.Write(buf[:])
}
