package mapd

import (
	"os"
	"testing"

	"sanmap/internal/mapper"
)

func writeTestWAL(t *testing.T, dir string, job uint64, crash *crashHook, steps int) *WAL {
	t.Helper()
	w, err := createWAL(dir, job, crash, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Begin(job-1, 42, "chaos"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < steps; i++ {
		err := w.Step(stepRecord{
			Kind: mapper.StepSweep, Round: i, Dropped: 3 - i, Probes: int64(100 * (i + 1)),
			VClock:     int64(1000 * (i + 1)),
			Checkpoint: []byte("checkpoint image " + string(rune('a'+i))),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return w
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w := writeTestWAL(t, dir, 4, nil, 2)
	w.Close()

	st, err := loadWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st == nil {
		t.Fatal("loadWAL found nothing")
	}
	if st.Job != 4 || st.Parent != 3 || st.Reason != "chaos" || st.VClock != 42 || st.Steps != 2 {
		t.Fatalf("state %+v", st)
	}
	if st.Last == nil || st.Last.Round != 1 || st.Last.Dropped != 2 ||
		st.Last.Probes != 200 || st.Last.VClock != 2000 ||
		string(st.Last.Checkpoint) != "checkpoint image b" {
		t.Fatalf("last step %+v", st.Last)
	}
}

// TestWALTornTailTruncated: a crash mid-append leaves a torn frame;
// recovery must return the last whole record and resumeWAL must truncate
// the tail so new appends land on a clean boundary.
func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	w := writeTestWAL(t, dir, 2, nil, 2)
	w.Close()

	whole, err := os.ReadFile(walPath(dir, 2))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < 24; cut += 7 {
		torn := whole[:len(whole)-cut]
		if err := os.WriteFile(walPath(dir, 2), torn, 0o666); err != nil {
			t.Fatal(err)
		}
		st, err := loadWAL(dir)
		if err != nil {
			t.Fatal(err)
		}
		if st == nil || st.Steps != 1 {
			t.Fatalf("cut %d: recovered %+v, want 1 whole step", cut, st)
		}
		if st.Last.Probes != 100 {
			t.Fatalf("cut %d: last step %+v", cut, st.Last)
		}

		// Resume, append a replacement step, and re-recover: the torn
		// bytes must be gone.
		rw, err := resumeWAL(st, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := rw.Step(stepRecord{Kind: mapper.StepExplore, Round: 7, Probes: 700}); err != nil {
			t.Fatal(err)
		}
		rw.Close()
		st2, err := loadWAL(dir)
		if err != nil {
			t.Fatal(err)
		}
		if st2.Steps != 2 || st2.Last.Round != 7 || st2.Last.Probes != 700 {
			t.Fatalf("cut %d: after resume %+v last %+v", cut, st2, st2.Last)
		}
	}
}

// TestWALCorruptFrameStopsRecovery: a bit flip inside an acknowledged
// record fails its CRC; recovery keeps everything before it.
func TestWALCorruptFrameStopsRecovery(t *testing.T) {
	dir := t.TempDir()
	w := writeTestWAL(t, dir, 3, nil, 2)
	w.Close()
	data, err := os.ReadFile(walPath(dir, 3))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-5] ^= 1 // inside the final step's checkpoint
	if err := os.WriteFile(walPath(dir, 3), data, 0o666); err != nil {
		t.Fatal(err)
	}
	st, err := loadWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st == nil || st.Steps != 1 {
		t.Fatalf("recovered %+v, want the one intact step", st)
	}
}

// TestWALLoadsNewestJob: with several leftover logs, recovery picks the
// highest job number and staleWALs lists the rest for sweeping.
func TestWALLoadsNewestJob(t *testing.T) {
	dir := t.TempDir()
	for _, job := range []uint64{2, 10, 7} {
		w := writeTestWAL(t, dir, job, nil, 1)
		w.Close()
	}
	st, err := loadWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st == nil || st.Job != 10 {
		t.Fatalf("loadWAL picked %+v, want job 10", st)
	}
	stale := staleWALs(dir, 10)
	if len(stale) != 2 {
		t.Fatalf("staleWALs(keep=10) = %v", stale)
	}
	if got := staleWALs(dir, 0); len(got) != 3 {
		t.Fatalf("staleWALs(keep=0) = %v", got)
	}
}

// TestCrashHookFiresOnNthAppend: the -crash-after hook triggers exactly
// at the n-th durable append, counted across every record kind.
func TestCrashHookFiresOnNthAppend(t *testing.T) {
	dir := t.TempDir()
	fired := 0
	crash := &crashHook{after: 3, exit: func() { fired++ }}
	w := writeTestWAL(t, dir, 1, crash, 4) // 1 begin + 4 steps = 5 appends
	w.Close()
	if fired != 1 {
		t.Fatalf("crash hook fired %d times, want exactly once", fired)
	}
	if crash.n != 5 {
		t.Fatalf("hook counted %d appends, want 5", crash.n)
	}
	// Disabled hook (after=0) never fires.
	quiet := &crashHook{exit: func() { t.Error("disabled hook fired") }}
	w2 := writeTestWAL(t, t.TempDir(), 1, quiet, 2)
	w2.Close()
}

// TestWALRemoveDischarges: Remove deletes the file so recovery finds
// nothing — the committed epoch has taken over the job's promise.
func TestWALRemoveDischarges(t *testing.T) {
	dir := t.TempDir()
	w := writeTestWAL(t, dir, 6, nil, 1)
	if err := w.Remove(); err != nil {
		t.Fatal(err)
	}
	st, err := loadWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st != nil {
		t.Fatalf("recovered %+v after Remove", st)
	}
}
