package mapd

import (
	"sync"
	"testing"
	"time"

	"sanmap/internal/obs"
	"sanmap/internal/routes"
	"sanmap/internal/topology"
)

// startServer builds and runs an in-process server, returning it plus a
// join function that stops it and surfaces Run's error.
func startServer(t *testing.T, cfg Config) (*Server, func()) {
	t.Helper()
	if cfg.StateDir == "" {
		cfg.StateDir = t.TempDir()
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Run() }()
	return srv, func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Run: %v", err)
		}
	}
}

// waitSnap blocks until the server publishes its first serving snapshot.
func waitSnap(t *testing.T, srv *Server) *Snapshot {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if snap := srv.Snapshot(); snap != nil {
			return snap
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("server never published a snapshot")
	return nil
}

func dialServer(t *testing.T, srv *Server) *Client {
	t.Helper()
	cl, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func TestServerServesQueries(t *testing.T) {
	srv, join := startServer(t, Config{Gen: "now-c", Seed: 1, Listen: "127.0.0.1:0"})
	defer join()
	waitSnap(t, srv)
	cl := dialServer(t, srv)

	ping, err := cl.Call(map[string]any{"op": "ping"})
	if err != nil {
		t.Fatal(err)
	}
	if ping["ok"] != true {
		t.Fatalf("ping: %v", ping)
	}

	ep, err := cl.Call(map[string]any{"op": "epoch"})
	if err != nil {
		t.Fatal(err)
	}
	if ep["ok"] != true || ep["epoch"].(float64) != 1 || ep["level"] != "full" {
		t.Fatalf("epoch: %v", ep)
	}

	topoResp, err := cl.Call(map[string]any{"op": "topo"})
	if err != nil {
		t.Fatal(err)
	}
	if topoResp["ok"] != true || topoResp["hosts"].(float64) <= 0 {
		t.Fatalf("topo: %v", topoResp)
	}

	// A route between two real hosts of the served snapshot.
	snap := srv.Snapshot()
	hosts := snap.Net.Hosts()
	if len(hosts) < 2 {
		t.Fatalf("only %d hosts", len(hosts))
	}
	from, to := snap.Net.NameOf(hosts[0]), snap.Net.NameOf(hosts[len(hosts)-1])
	route, err := cl.Call(map[string]any{"op": "route", "from": from, "to": to})
	if err != nil {
		t.Fatal(err)
	}
	if route["ok"] != true || route["route"] == "" {
		t.Fatalf("route %s->%s: %v", from, to, route)
	}
	if _, degraded := route["degraded"]; degraded {
		t.Fatalf("clean epoch served degraded: %v", route)
	}

	bad, err := cl.Call(map[string]any{"op": "route", "from": from, "to": "no-such-host"})
	if err != nil {
		t.Fatal(err)
	}
	if bad["ok"] != false {
		t.Fatalf("unknown host accepted: %v", bad)
	}

	met, err := cl.Call(map[string]any{"op": "metrics"})
	if err != nil {
		t.Fatal(err)
	}
	if met["ok"] != true {
		t.Fatalf("metrics: %v", met)
	}
	mm := met["metrics"].(map[string]any)
	if mm["mapd.epoch.commits"].(float64) != 1 {
		t.Fatalf("commit counter: %v", mm)
	}
}

// TestServerInjectHeals: a client-driven structural fault raises
// suspicion, the continuous remap loop heals, and the epoch advances —
// while the query side keeps serving throughout.
func TestServerInjectHeals(t *testing.T) {
	srv, join := startServer(t, Config{Gen: "now-c", Seed: 1, Listen: "127.0.0.1:0"})
	defer join()
	cl := dialServer(t, srv)

	// Concurrent readers hammer route queries through the inject+heal
	// window; none may observe a failed read (refusals are acceptable —
	// they are the guarded ladder working — but there is no window with
	// no snapshot).
	stop := make(chan struct{})
	var readers sync.WaitGroup
	snap := waitSnap(t, srv)
	hosts := snap.Net.Hosts()
	from, to := snap.Net.NameOf(hosts[0]), snap.Net.NameOf(hosts[len(hosts)-1])
	for i := 0; i < 3; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			rcl, err := Dial(srv.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer rcl.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := rcl.Call(map[string]any{"op": "route", "from": from, "to": to})
				if err != nil {
					t.Error(err)
					return
				}
				if resp["epoch"] == nil {
					t.Errorf("route served without an epoch: %v", resp)
					return
				}
			}
		}()
	}

	inj, err := cl.Call(map[string]any{"op": "inject", "spec": "seed=5,cuts=2"})
	if err != nil {
		t.Fatal(err)
	}
	close(stop)
	readers.Wait()
	if inj["ok"] != true {
		t.Fatalf("inject: %v", inj)
	}
	if got := inj["epoch"].(float64); got < 2 {
		t.Fatalf("inject did not heal to a new epoch: %v", inj)
	}
	if srv.failedReads.Load() != 0 {
		t.Fatalf("%d failed reads during heal", srv.failedReads.Load())
	}

	// The remap op always produces a fresh epoch on demand.
	before := srv.Store().Latest().Number
	rm, err := cl.Call(map[string]any{"op": "remap"})
	if err != nil {
		t.Fatal(err)
	}
	if rm["ok"] != true || uint64(rm["epoch"].(float64)) != before+1 {
		t.Fatalf("remap from epoch %d: %v", before, rm)
	}
}

// TestServerRestartServesPreviousEpoch: a fresh server over an existing
// state dir serves the recovered epoch immediately, before any remapping.
func TestServerRestartServesPreviousEpoch(t *testing.T) {
	dir := t.TempDir()
	srv, join := startServer(t, Config{Gen: "now-c", Seed: 1, StateDir: dir, Once: true})
	join()
	if srv.Store().Latest() == nil {
		t.Fatal("no epoch committed")
	}

	srv2, join2 := startServer(t, Config{Gen: "now-c", Seed: 1, StateDir: dir, Listen: "127.0.0.1:0"})
	defer join2()
	cl := dialServer(t, srv2)
	ep, err := cl.Call(map[string]any{"op": "epoch"})
	if err != nil {
		t.Fatal(err)
	}
	if ep["ok"] != true || ep["epoch"].(float64) != 1 {
		t.Fatalf("recovered epoch: %v", ep)
	}
	if srv2.Store().NextJobID() < 2 {
		t.Fatalf("job IDs restarted: next %d", srv2.Store().NextJobID())
	}
}

// TestRouteAnswerDegradationLadder drives routeAnswer against crafted
// snapshots: annotated serving stamps confidence, guarded serving refuses
// exactly the routes crossing suspect nodes and serves the rest.
func TestRouteAnswerDegradationLadder(t *testing.T) {
	// h0 -- s0 -- s1 -- h1, plus h2 on s0: h0->h2 avoids s1.
	n := &topology.Network{}
	s0 := n.AddSwitch("s0")
	s1 := n.AddSwitch("s1")
	h0 := n.AddHost("h0")
	h1 := n.AddHost("h1")
	h2 := n.AddHost("h2")
	n.MustConnect(h0, 0, s0, 0)
	n.MustConnect(s0, 1, s1, 1)
	n.MustConnect(s1, 2, h1, 0)
	n.MustConnect(s0, 3, h2, 0)
	tab, err := routes.Compute(n, routes.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	snap := &Snapshot{
		Epoch: 3, Confidence: 0.9, Level: LevelGuarded,
		SuspectIDs: map[topology.NodeID]bool{s1: true},
		Net:        n, Table: tab,
	}

	refused := routeAnswer(snap, "h0", "h1")
	if refused["ok"] != false || refused["refused"] != true {
		t.Fatalf("route across suspect not refused: %v", refused)
	}
	served := routeAnswer(snap, "h0", "h2")
	if served["ok"] != true {
		t.Fatalf("clean route refused at guarded level: %v", served)
	}
	if served["degraded"] != "guarded" || served["confidence"].(float64) != 0.9 {
		t.Fatalf("guarded response not annotated: %v", served)
	}

	snap.Level = LevelAnnotated
	snap.SuspectIDs = nil
	ann := routeAnswer(snap, "h0", "h1")
	if ann["ok"] != true || ann["degraded"] != "annotated" {
		t.Fatalf("annotated response: %v", ann)
	}

	snap.Level = LevelFull
	full := routeAnswer(snap, "h0", "h1")
	if full["ok"] != true {
		t.Fatalf("full response: %v", full)
	}
	if _, deg := full["degraded"]; deg {
		t.Fatalf("full-level response annotated: %v", full)
	}

	if none := routeAnswer(nil, "h0", "h1"); none["ok"] != false {
		t.Fatalf("nil snapshot served: %v", none)
	}
}

// TestServerMapperOverride: -mapper picks the session host; a bogus name
// is a construction error, not a silent fallback.
func TestServerMapperOverride(t *testing.T) {
	if _, err := New(Config{Gen: "now-c", Seed: 1, StateDir: t.TempDir(),
		Mapper: "no-such-host", Metrics: obs.NewRegistry()}); err == nil {
		t.Fatal("bogus -mapper accepted")
	}
}

// TestSplitListen covers the -listen grammar.
func TestSplitListen(t *testing.T) {
	cases := []struct{ in, nw, addr string }{
		{"unix:/tmp/x.sock", "unix", "/tmp/x.sock"},
		{"/tmp/y.sock", "unix", "/tmp/y.sock"},
		{"127.0.0.1:0", "tcp", "127.0.0.1:0"},
		{"localhost:9999", "tcp", "localhost:9999"},
	}
	for _, c := range cases {
		nw, addr := splitListen(c.in)
		if nw != c.nw || addr != c.addr {
			t.Errorf("splitListen(%q) = %q,%q want %q,%q", c.in, nw, addr, c.nw, c.addr)
		}
	}
}

// TestLoadQuery: the load op replays the canned plan over the served
// epoch's routes, reports quality, answers identically on repeat (the
// replay is cached on the snapshot), and degrades gracefully when no
// table exists.
func TestLoadQuery(t *testing.T) {
	srv, join := startServer(t, Config{Gen: "now-c", Seed: 1, Listen: "127.0.0.1:0"})
	defer join()
	waitSnap(t, srv)
	cl := dialServer(t, srv)

	q, err := cl.Call(map[string]any{"op": "load"})
	if err != nil {
		t.Fatal(err)
	}
	if q["ok"] != true || q["deadlock_free"] != true {
		t.Fatalf("load: %v", q)
	}
	if q["sent"].(float64) <= 0 || q["delivered"].(float64) <= 0 {
		t.Fatalf("load replayed no traffic: %v", q)
	}
	if q["throughput_bps"].(float64) <= 0 || q["p50_ns"].(float64) <= 0 {
		t.Fatalf("load quality empty: %v", q)
	}
	if _, degraded := q["degraded"]; degraded {
		t.Fatalf("clean epoch served degraded load report: %v", q)
	}

	again, err := cl.Call(map[string]any{"op": "load"})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"sent", "delivered", "p50_ns", "peak_util_ppm", "makespan_ns"} {
		if q[k] != again[k] {
			t.Errorf("load %s changed between queries: %v -> %v", k, q[k], again[k])
		}
	}

	// Tableless snapshot: the answer is an error, not a panic.
	if resp := loadAnswer(&Snapshot{Epoch: 9}); resp["ok"] != false {
		t.Errorf("tableless snapshot served a load report: %v", resp)
	}
	if resp := loadAnswer(nil); resp["ok"] != false {
		t.Errorf("nil snapshot served a load report: %v", resp)
	}
}
