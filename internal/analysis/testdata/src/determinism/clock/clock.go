// Package clock provides the cross-package taint sources for the parent
// fixture: Stamp reads the wall clock directly, Wrap reaches it through a
// same-package helper — both export NondetFacts for callers to trip over.
package clock

import "time"

// Stamp reads the wall clock.
func Stamp() int64 {
	return time.Now().Unix() // want "time.Now is nondeterministic"
}

// Wrap reaches the clock through Stamp.
func Wrap() int64 {
	return Stamp() + 1
}
