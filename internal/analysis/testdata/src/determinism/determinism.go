// Package determinism holds fixtures for the determinism analyzer:
// wall-clock reads, global math/rand, and order-sensitive map iteration.
package determinism

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"sanmap/internal/analysis/testdata/src/determinism/clock"
)

// badClock reads the wall clock.
func badClock() int64 {
	t := time.Now() // want "time.Now is nondeterministic"
	return t.Unix()
}

// goodClock derives times without touching the wall clock.
func goodClock() time.Time {
	return time.Unix(0, 0).Add(3 * time.Second)
}

// badGlobalRand draws from the process-global generator.
func badGlobalRand(n int) int {
	rand.Shuffle(n, func(i, j int) {}) // want "global math/rand Shuffle draws from process-global state"
	return rand.Intn(n)                // want "global math/rand Intn draws from process-global state"
}

// goodSeededRand threads an explicit generator built from a seed.
func goodSeededRand(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}

// badAppendOrder records keys in iteration order and never sorts them.
func badAppendOrder(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to keys inside map iteration records keys in randomized order"
	}
	return keys
}

// goodCollectThenSort sorts the collected keys before use.
func goodCollectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// badPrintOrder writes formatted output per key.
func badPrintOrder(m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(os.Stderr, "%s=%d\n", k, v) // want "fmt.Fprintf inside map iteration writes in randomized key order"
	}
}

// badBuilderOrder appends to a string builder per key.
func badBuilderOrder(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want "Builder.WriteString inside map iteration writes in randomized key order"
	}
	return b.String()
}

// badChannelOrder publishes values on a channel in iteration order.
func badChannelOrder(m map[string]int, out chan<- string) {
	for k := range m {
		out <- k // want "channel send inside map iteration publishes values in randomized order"
	}
}

// badEarlyReturn returns the first offending key, which depends on which
// key the runtime happens to visit first.
func badEarlyReturn(m map[string]int) (string, bool) {
	for k, v := range m {
		if v < 0 {
			return k, true // want "return inside map iteration depends on which key is visited first"
		}
	}
	return "", false
}

type recorder struct{ events []string }

func (r *recorder) note(s string) { r.events = append(r.events, s) }

// badEffectfulCall feeds per-key values into an effectful callee.
func badEffectfulCall(m map[string]int, r *recorder) {
	for k := range m {
		r.note(k) // want "call passes map-iteration state to an effectful function in randomized order"
	}
}

// badDerivedTaint launders the range variable through a local before
// passing it on: taint propagates through the assignment.
func badDerivedTaint(m map[string]int, r *recorder) {
	for k, v := range m {
		label := fmt.Sprint(k, v)
		r.note(label) // want "call passes map-iteration state to an effectful function in randomized order"
	}
}

func alive(v int) bool { return v > 0 }

// goodAccumulate folds order-independently: counters, min/max, writes into
// other maps, and guard calls in condition position are all fine.
func goodAccumulate(m map[string]int) (int, int) {
	total, max := 0, 0
	seen := make(map[string]bool)
	for k, v := range m {
		if alive(v) { // condition position: exempt guard call
			total += v
		}
		if v > max {
			max = v
		}
		seen[k] = true
	}
	return total, max
}

// badCrossStamp imports taint directly: the callee package reads the wall
// clock, and the import edge is where virtual time would leak.
func badCrossStamp() int64 {
	return clock.Stamp() // want "call to clock.Stamp reaches time.Now"
}

// badCrossWrap imports taint through a helper chain in the clock package;
// the chain is spelled out in the finding.
func badCrossWrap() int64 {
	return clock.Wrap() // want "call to clock.Wrap reaches Stamp -> time.Now"
}
