// Fixture for the goroutine analyzer: every go statement needs a provable
// join (g1 WaitGroup, g2 done channel, g3 signalling callee — including one
// proven by a fact exported from the worker sub-package) unless the launch
// is covered by a //sanlint:daemon annotation (g4).
package goroutine

import (
	"sync"

	"sanmap/internal/analysis/testdata/src/goroutine/worker"
)

// g1 good: Add before the launch, Done inside, Wait after.
func waitGroupGood() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// g1 bad: the closure calls Done but nothing ever Adds.
func waitGroupNoAdd() {
	var wg sync.WaitGroup
	go func() { // want "wg.Add is not called before the go statement"
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// bad: nothing in the closure signals completion at all.
func fireAndForget() {
	go func() { // want "fire-and-forget goroutine"
		work()
	}()
}

// g2 good: done channel closed by the goroutine, received by the launcher.
func doneChannelGood() {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	<-done
}

// g2 bad: the goroutine sends on a local channel nobody receives from.
func doneChannelDropped() {
	done := make(chan struct{})
	go func() { // want "signals on done but this function never receives from it"
		done <- struct{}{}
	}()
	_ = done
}

// g2 good: collecting over a results channel is a join.
func collectGood() {
	results := make(chan int)
	go func() {
		for i := 0; i < 3; i++ {
			results <- i
		}
		close(results)
	}()
	for r := range results {
		work()
		_ = r
	}
}

// g3 good: the callee takes the WaitGroup at the call site.
func namedWithWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	go runner(&wg)
	wg.Wait()
}

func runner(wg *sync.WaitGroup) {
	defer wg.Done()
	work()
}

// g3 bad: the callee signals nothing.
func namedNoJoin() {
	go work() // want "go work has no provable join"
}

// g3 bad: a dynamic callee cannot be proven to signal.
func dynamic(f func()) {
	go f() // want "dynamic call has no provable join"
}

// g3 cross-package good: worker exports the fact that (*Pool).Work signals
// completion through its receiver's WaitGroup, so no call-site handle is
// needed.
func poolJoin() {
	p := worker.NewPool()
	p.Track()
	go p.Work()
	p.Wait()
}

// g4 good: a daemon launcher owns deliberately unjoined goroutines.
//
//sanlint:daemon
func daemonLauncher() {
	go work()
	go func() {
		work()
	}()
}

// g4 good: launching a function that is itself declared a daemon.
func launchDaemonCallee() {
	go backgroundLoop()
}

// backgroundLoop runs forever by design.
//
//sanlint:daemon
func backgroundLoop() {
	for {
		work()
	}
}

func work() {}
