// Package worker exercises the cross-package CompletesFact: its methods
// signal completion through the receiver, so launches in the parent fixture
// are joinable without a call-site WaitGroup or channel.
package worker

import "sync"

// Pool tracks outstanding work on an internal WaitGroup.
type Pool struct {
	wg sync.WaitGroup
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// Track registers one unit of work before it is launched.
func (p *Pool) Track() { p.wg.Add(1) }

// Work runs one unit and marks it done on the pool's WaitGroup.
func (p *Pool) Work() {
	defer p.wg.Done()
}

// Wait blocks until every tracked unit has completed.
func (p *Pool) Wait() { p.wg.Wait() }
