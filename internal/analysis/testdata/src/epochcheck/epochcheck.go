// Package epochcheck holds fixtures for the epochcheck analyzer: methods
// writing //sanlint:topostate fields must bump the //sanlint:epoch field.
package epochcheck

// Net mirrors the shape of simnet.Net: guarded topology-bearing state plus
// an epoch counter keying a memo.
type Net struct {
	links  []int          //sanlint:topostate
	silent map[int]bool   //sanlint:topostate
	names  map[int]string //sanlint:topostate
	clock  int            // unguarded
	epoch  uint64         //sanlint:epoch
}

// Reconfigure is a bump delegate: it writes the epoch directly.
func (n *Net) Reconfigure() { n.epoch++ }

// Good: direct bump in the same method.
func (n *Net) AddLink(l int) {
	n.links = append(n.links, l)
	n.epoch++
}

// Good: bump through a delegate method.
func (n *Net) SetSilent(h int) {
	if n.silent == nil {
		n.silent = make(map[int]bool)
	}
	n.silent[h] = true
	n.Reconfigure()
}

// Good: unguarded fields need no bump.
func (n *Net) Tick() { n.clock++ }

// Good: writes rooted at another instance are out of scope.
func (n *Net) Clone() *Net {
	c := &Net{}
	c.links = append([]int(nil), n.links...)
	return c
}

// Bad: mutates guarded state without bumping.
func (n *Net) RemoveLink() {
	n.links = n.links[:len(n.links)-1] // want "method RemoveLink writes topology-bearing field links but never bumps epoch field epoch"
}

// Bad: delete on a guarded map without bumping.
func (n *Net) ClearSilent(h int) {
	delete(n.silent, h) // want "method ClearSilent writes topology-bearing field silent but never bumps epoch field epoch"
}

// Bad: indexed write into a guarded map without bumping.
func (n *Net) Rename(id int, name string) {
	n.names[id] = name // want "method Rename writes topology-bearing field names but never bumps epoch field epoch"
}
