// Package sub publishes the lock order MuX < MuY for the cross-package L4
// case in the parent fixture.
package sub

import "sync"

var MuX sync.Mutex
var MuY sync.Mutex

// XY acquires MuY while holding MuX.
func XY() {
	MuX.Lock()
	MuY.Lock()
	MuY.Unlock()
	MuX.Unlock()
}
