// Fixture for the lockcheck analyzer: unlock discipline (L1, L2), guarded
// fields (L3), and lock-order cycles (L4) — including an order established
// transitively through a callee and one imported from the sub package.
package lockcheck

import (
	"sync"

	"sanmap/internal/analysis/testdata/src/lockcheck/sub"
)

var muA sync.Mutex
var muB sync.Mutex

// L1: locked, never unlocked.
func l1Bad() {
	muA.Lock() // want "muA is locked but never unlocked in this function"
	sink(1)
}

func l1GoodDefer() {
	muA.Lock()
	defer muA.Unlock()
	sink(1)
}

func l1GoodExplicit() {
	muA.Lock()
	sink(1)
	muA.Unlock()
}

// L2: return on a path between Lock and its explicit Unlock.
func l2Bad(x bool) int {
	muA.Lock()
	if x {
		return 1 // want "return while muA may still be held"
	}
	muA.Unlock()
	return 0
}

func l2GoodDefer(x bool) int {
	muA.Lock()
	defer muA.Unlock()
	if x {
		return 1
	}
	return 0
}

// A deferred literal that unlocks counts as a deferred unlock.
func l2GoodDeferredLit(x bool) int {
	muA.Lock()
	defer func() { muA.Unlock() }()
	if x {
		return 1
	}
	return 0
}

// L3: //sanlint:guards discipline.
type counter struct {
	//sanlint:guards n
	mu sync.Mutex
	n  int
}

func (c *counter) IncBad() {
	c.n++ // want "field n is guarded by mu"
}

func (c *counter) IncGood() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// *Locked helpers run under the caller's lock by convention.
func (c *counter) bumpLocked() {
	c.n++
}

// Annotation validation: naming a non-field is itself a finding.
type badGuards struct {
	//sanlint:guards missing
	mu sync.Mutex // want "names missing, which is not a field of badGuards" "lists no valid sibling fields"
	n  int
}

// L4: inconsistent order between muA and muB — both sites are flagged.
func abOrder() {
	muA.Lock()
	muB.Lock() // want "acquiring .*muB while holding .*muA creates a lock-order cycle"
	muB.Unlock()
	muA.Unlock()
}

func baOrder() {
	muB.Lock()
	muA.Lock() // want "acquiring .*muA while holding .*muB creates a lock-order cycle"
	muA.Unlock()
	muB.Unlock()
}

// L4 transitive: cdOrder holds muC across a call that locks muD, so the
// order C < D exists even though cdOrder never touches muD directly.
var muC sync.Mutex
var muD sync.Mutex

func lockD() {
	muD.Lock()
	defer muD.Unlock()
	sink(2)
}

func cdOrder() {
	muC.Lock()
	lockD() // want "acquiring .*muD while holding .*muC creates a lock-order cycle"
	muC.Unlock()
}

func dcOrder() {
	muD.Lock()
	muC.Lock() // want "acquiring .*muC while holding .*muD creates a lock-order cycle"
	muC.Unlock()
	muD.Unlock()
}

// L4 cross-package: sub establishes MuX < MuY; taking them in reverse here
// is flagged against the imported package fact.
func crossOrder() {
	sub.MuY.Lock()
	sub.MuX.Lock() // want "acquiring .*MuX while holding .*MuY creates a lock-order cycle"
	sub.MuX.Unlock()
	sub.MuY.Unlock()
}

// Consistent order, never reversed: no finding.
func consistent() {
	muA.Lock()
	muC.Lock()
	muC.Unlock()
	muA.Unlock()
}

func sink(int) {}

var keepBadGuards badGuards

func init() { keepBadGuards.n = 0 }
