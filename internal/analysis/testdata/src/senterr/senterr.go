// Package senterr holds fixtures for the senterr analyzer: sentinel errors
// must be matched with errors.Is, never compared by identity.
package senterr

import (
	"errors"
	"fmt"
)

// Sentinels in the repo convention: package-level error vars named Err*.
var (
	ErrTimeout     = errors.New("probe timed out")
	ErrNoResponder = errors.New("silent host")
	// Fault-layer sentinels: injected failures wrap both a classification
	// sentinel and the transport sentinel the mapper observes, so callers
	// must use errors.Is — identity can never match the wrapped chain.
	ErrLinkDown   = errors.New("link down")
	ErrSwitchDead = errors.New("switch dead")
	ErrTruncated  = errors.New("worm truncated")
)

// errInternal is package-level but not exported-sentinel-named; identity
// comparison of it is outside this analyzer's contract.
var errInternal = errors.New("internal")

func probe() error { return fmt.Errorf("wrapped: %w", ErrTimeout) }

// Bad: identity comparisons of sentinels.
func bad() int {
	err := probe()
	if err == ErrTimeout { // want "sentinel error ErrTimeout compared with ==; use errors.Is"
		return 1
	}
	if ErrNoResponder != err { // want "sentinel error ErrNoResponder compared with !=; use errors.Is"
		return 2
	}
	switch err {
	case ErrTimeout: // want "sentinel error ErrTimeout used as switch case"
		return 3
	case nil:
		return 4
	}
	return 0
}

// Good: errors.Is, nil comparisons, and non-sentinel identity checks.
func good() int {
	err := probe()
	if errors.Is(err, ErrTimeout) {
		return 1
	}
	if err == nil {
		return 2
	}
	if err == errInternal {
		return 3
	}
	var localErr = errors.New("local")
	if err == localErr {
		return 4
	}
	return 0
}

// inject mimics the fault layer: the returned error wraps the ground-truth
// classification sentinel AND the transport-level sentinel together.
func inject() error {
	return fmt.Errorf("probe lost on cut link: %w (%w)", ErrLinkDown, ErrTimeout)
}

// Bad: identity comparison can never see through the double wrap.
func badInjected() int {
	err := inject()
	if err == ErrLinkDown { // want "sentinel error ErrLinkDown compared with ==; use errors.Is"
		return 1
	}
	if err == ErrSwitchDead { // want "sentinel error ErrSwitchDead compared with ==; use errors.Is"
		return 2
	}
	if ErrTruncated == err { // want "sentinel error ErrTruncated compared with ==; use errors.Is"
		return 3
	}
	return 0
}

// Good: errors.Is classifies both wrapped sentinels independently.
func goodInjected() int {
	err := inject()
	if errors.Is(err, ErrLinkDown) && errors.Is(err, ErrTimeout) {
		return 1
	}
	if errors.Is(err, ErrSwitchDead) || errors.Is(err, ErrTruncated) {
		return 2
	}
	return 0
}
