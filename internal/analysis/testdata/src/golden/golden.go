// Package golden is the fixture tree for cmd/sanlint's golden output test:
// one deliberate finding per analyzer, plus a determinism violation that the
// scope filter must drop (this package is not in the reproducibility scope).
// The findings are asserted byte-for-byte against cmd/sanlint/testdata, so
// edits here must regenerate that golden file.
package golden

import (
	"errors"
	"sync"
	"time"
)

// ErrStale is the sentinel for the senterr case.
var ErrStale = errors.New("stale")

// identityCompare compares a sentinel with == (senterr).
func identityCompare(err error) bool {
	return err == ErrStale
}

// hotAlloc allocates on an annotated hot path (hotpath).
//
//sanlint:hotpath
func hotAlloc(n int) []int {
	return make([]int, n)
}

// store writes guarded topology state without bumping the epoch (epochcheck).
type store struct {
	topo  map[string]int //sanlint:topostate
	epoch uint64         //sanlint:epoch
}

func (s *store) writeTopo() {
	s.topo = nil
}

var mu sync.Mutex

// lockLeak locks without ever unlocking (lockcheck L1).
func lockLeak() {
	mu.Lock()
}

// fireAndForget launches an unjoined goroutine (goroutine); the wall-clock
// read inside it is a determinism finding that the scope filter drops.
func fireAndForget() {
	go func() {
		_ = time.Now()
	}()
}

func keep() {
	_ = identityCompare(nil)
	_ = hotAlloc(1)
	(&store{}).writeTopo()
	lockLeak()
	fireAndForget()
}

var _ = keep
