// Package hotpath holds fixtures for the hotpath analyzer: functions
// annotated //sanlint:hotpath must stay allocation-free.
package hotpath

import (
	"fmt"

	xhelper "sanmap/internal/analysis/testdata/src/hotpath/helper"
)

// scratch mimics the eval kernel's reusable buffer owner.
type scratch struct {
	hops   []int
	lookup map[int]int
	// filter mimics the fault layer's injection hook: a cold func-valued
	// field the hot path consults behind a nil check.
	filter func(int) bool
}

// sink defeats "unused" only; it is not part of the checked surface.
var sink any

//sanlint:hotpath
func (s *scratch) reset() {
	s.hops = s.hops[:0]
}

// Good: appends rooted at the receiver or a parameter reuse owned buffers,
// struct literals stay on the stack, and panic guards may format freely.
//
//sanlint:hotpath
func (s *scratch) step(buf []int, v int) []int {
	if v < 0 {
		panic(fmt.Sprintf("hotpath: negative step %d", v))
	}
	s.hops = append(s.hops, v)
	buf = append(buf, v)
	type pair struct{ a, b int }
	p := pair{a: v, b: v}
	s.reset()
	return append(buf, p.a)
}

// Good: the nil-injector fast path. A call through a func-valued field is
// not a call to an unannotated same-package function, so a hot path may
// gate optional fault hooks behind a nil check with zero diagnostics — the
// pattern simnet's injection points and wormsim's link filter rely on.
//
//sanlint:hotpath
func (s *scratch) gated(v int) bool {
	if s.filter != nil && s.filter(v) {
		return false
	}
	s.hops = append(s.hops, v)
	return true
}

// Bad: every allocation class the analyzer guards against.
//
//sanlint:hotpath
func (s *scratch) badAllocs(v int) {
	m := map[int]int{v: v} // want "composite literal allocates a map"
	_ = m
	xs := []int{v} // want "composite literal allocates a slice"
	_ = xs
	s.lookup = make(map[int]int) // want "make allocates"
	p := new(int)                // want "new allocates"
	_ = p
}

//sanlint:hotpath
func (s *scratch) badAppend(v int) {
	var local []int
	local = append(local, v) // want "append to a slice not owned by the receiver or a parameter"
	_ = local
}

//sanlint:hotpath
func (s *scratch) badClosure() func() int {
	n := 0
	return func() int { // want "function literal may escape"
		n++
		return n
	}
}

//sanlint:hotpath
func (s *scratch) badBoxing(v int) {
	sink = any(v) // want "conversion to interface type any boxes its operand"
}

//sanlint:hotpath
func (s *scratch) badDefer() {
	defer s.reset() // want "defer allocates and delays the hot path"
	go s.reset()    // want "goroutine launch on the hot path"
}

//sanlint:hotpath
func badConcat(a, b string) string {
	return a + b // want "string concatenation allocates"
}

// helper is deliberately unannotated.
func helper(v int) int { return v + 1 }

//sanlint:hotpath
func badCallee(v int) int {
	return helper(v) // want "call to unannotated same-package function helper"
}

// The metrics fast path (internal/obs's contract, in miniature): handles
// are registered once at setup and mutated through annotated, nil-safe
// methods, so an instrumented hot function stays diagnostic-free.

// counter mimics an obs.Counter handle: pre-registered, nil-safe.
type counter struct{ v int64 }

//sanlint:hotpath
func (c *counter) inc() {
	if c == nil {
		return
	}
	c.v++
}

//sanlint:hotpath
func (c *counter) add(d int64) {
	if c == nil {
		return
	}
	c.v += d
}

// histogram mimics an obs.Histogram: fixed buckets owned by the handle.
type histogram struct {
	bounds []int64
	counts []int64
}

//sanlint:hotpath
func (h *histogram) observe(v int64) {
	if h == nil {
		return
	}
	for i, b := range h.bounds {
		if v < b {
			h.counts[i]++
			return
		}
	}
}

// metrics holds the pre-registered handles a subsystem stores at setup.
type metrics struct {
	submitted *counter
	missWait  *histogram
}

// Good: the instrumented fast path — counter add and histogram observe
// through pre-registered handles are annotated calls on owned state.
//
//sanlint:hotpath
func (m *metrics) fastPath(latency int64) {
	m.submitted.inc()
	m.submitted.add(1)
	m.missWait.observe(latency)
}

// The CSR index fast path (internal/topology's contract, in miniature):
// flat adjacency arrays with per-node offsets plus scratch arenas sized at
// build time, so accessors reslice owned arrays and traversals append only
// to receiver-rooted buffers.

// csrIndex mimics topology.Index: off/nbr are the packed adjacency, queue
// is the reusable BFS arena.
type csrIndex struct {
	off   []int32
	nbr   []int32
	queue []int32
}

// Good: accessors that reslice the index's own arrays allocate nothing.
//
//sanlint:hotpath
func (ix *csrIndex) neighbors(id int) []int32 {
	return ix.nbr[ix.off[id]:ix.off[id+1]]
}

//sanlint:hotpath
func (ix *csrIndex) degree(id int) int {
	return int(ix.off[id+1] - ix.off[id])
}

// Good: arena-style BFS — the queue appends are rooted at the receiver
// (capacity sized at build time) and dist is caller-owned.
//
//sanlint:hotpath
func (ix *csrIndex) bfsInto(src int32, dist []int32) []int32 {
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	ix.queue = append(ix.queue[:0], src)
	for head := 0; head < len(ix.queue); head++ {
		u := ix.queue[head]
		for _, v := range ix.neighbors(int(u)) {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				ix.queue = append(ix.queue, v)
			}
		}
	}
	return dist
}

// Bad: a traversal that sizes fresh scratch per call instead of reusing
// the index's arenas — the allocation pattern the CSR rework removed.
//
//sanlint:hotpath
func (ix *csrIndex) badFreshScratch(src int32) []int32 {
	dist := make([]int32, len(ix.off)-1) // want "make allocates"
	var queue []int32
	queue = append(queue, src) // want "append to a slice not owned by the receiver or a parameter"
	_ = queue
	return dist
}

// register is the setup-time path: deliberately unannotated, it may
// allocate freely — which is exactly why the hot path must not call it.
func register(name string) *counter { return &counter{} }

// Bad: lazy registration — looking a handle up (or creating it) inside
// the hot function instead of storing it at setup.
//
//sanlint:hotpath
func (m *metrics) badLazyRegister(kind string) {
	c := register("probe." + kind) // want "string concatenation allocates" "call to unannotated same-package function register"
	c.inc()
}

// h7 interprocedural: a hot function may call into another package only
// when the callee's exported fact proves it allocation-free.
//
//sanlint:hotpath
func (s *scratch) crossPackage(buf []int, v int) []int {
	buf = xhelper.Fast(buf, v) // good: AllocFreeFact imported from helper
	extra := xhelper.Alloc(v)  // want "call to .*helper.Alloc which is not provably allocation-free"
	return append(buf, extra...)
}
