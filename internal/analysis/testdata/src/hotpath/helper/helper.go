// Package helper provides the cross-package callees for the h7 cases in
// the parent fixture: Fast carries the exported allocation-free fact,
// Alloc does not.
package helper

// Fast reuses the caller's buffer; the annotation exports the fact that
// proves it safe to call from another package's hot path.
//
//sanlint:hotpath
func Fast(buf []int, v int) []int {
	return append(buf, v)
}

// Alloc is an ordinary allocating helper, deliberately unannotated.
func Alloc(n int) []int {
	return make([]int, n)
}
