package senterr_test

import (
	"testing"

	"sanmap/internal/analysis/analysistest"
	"sanmap/internal/analysis/senterr"
)

func TestSenterr(t *testing.T) {
	analysistest.Run(t, analysistest.Testdata(), senterr.Analyzer, "senterr")
}
