// Package senterr defines the sanlint analyzer that forbids comparing
// sentinel errors with == or !=. The Prober API's sentinels (ErrTimeout,
// ErrNoResponder, ErrUnsupported, the mapper's ErrCanceled family, ...) may
// be wrapped by transports and retry layers, so identity comparison silently
// stops matching; errors.Is is the contract.
package senterr

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"sanmap/internal/analysis"
)

// Analyzer flags ==/!= comparisons and switch cases whose operand is a
// package-level error variable named Err*.
var Analyzer = &analysis.Analyzer{
	Name: "senterr",
	Doc: "sentinel errors must be compared with errors.Is, never == or != " +
		"(wrapped errors break identity comparison)",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if name := sentinelName(pass, n.X); name != "" {
					pass.Reportf(n.Pos(), "sentinel error %s compared with %s; use errors.Is", name, n.Op)
				} else if name := sentinelName(pass, n.Y); name != "" {
					pass.Reportf(n.Pos(), "sentinel error %s compared with %s; use errors.Is", name, n.Op)
				}
			case *ast.SwitchStmt:
				if n.Tag == nil || !isErrorType(pass.TypesInfo.TypeOf(n.Tag)) {
					return true
				}
				for _, clause := range n.Body.List {
					cc, ok := clause.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, v := range cc.List {
						if name := sentinelName(pass, v); name != "" {
							pass.Reportf(v.Pos(), "sentinel error %s used as switch case (identity comparison); use errors.Is", name)
						}
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

// sentinelName reports the name of the sentinel error the expression refers
// to, or "". A sentinel is a package-level variable of type error whose name
// starts with Err (the stdlib and repo convention).
func sentinelName(pass *analysis.Pass, e ast.Expr) string {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return ""
	}
	obj := pass.TypesInfo.Uses[id]
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return ""
	}
	// Package-level: the variable's parent scope is its package scope.
	if v.Parent() != v.Pkg().Scope() {
		return ""
	}
	if !strings.HasPrefix(v.Name(), "Err") || !isErrorType(v.Type()) {
		return ""
	}
	return v.Name()
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
