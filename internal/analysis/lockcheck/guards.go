package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"sanmap/internal/analysis"
)

// guardContract is the declared protection of one struct: the annotated
// mutex field and the sibling fields it guards.
type guardContract struct {
	mutexField string
	guarded    map[string]bool
}

// checkGuards enforces L3: fields listed in a `//sanlint:guards a,b`
// annotation on a mutex field may be touched by the struct's methods only
// after locking that mutex in the same body, or from *Locked helpers.
func checkGuards(pass *analysis.Pass) {
	contracts := collectGuardContracts(pass)
	if len(contracts) == 0 {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 || fd.Body == nil {
				continue
			}
			names := fd.Recv.List[0].Names
			if len(names) != 1 || names[0].Name == "_" {
				continue
			}
			recv := pass.TypesInfo.Defs[names[0]]
			if recv == nil {
				continue
			}
			tn := guardReceiverTypeName(recv.Type())
			if tn == nil {
				continue
			}
			c, ok := contracts[tn]
			if !ok {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue // callers-hold-the-lock convention
			}
			checkGuardedBody(pass, fd, recv, c)
		}
	}
}

// collectGuardContracts finds structs with a //sanlint:guards mutex field
// and validates the annotation.
func collectGuardContracts(pass *analysis.Pass) map[*types.TypeName]*guardContract {
	out := make(map[*types.TypeName]*guardContract)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				siblings := make(map[string]bool)
				for _, field := range st.Fields.List {
					for _, name := range field.Names {
						siblings[name.Name] = true
					}
				}
				for _, field := range st.Fields.List {
					arg, ok := analysis.FieldAnnotationArg(field, "guards")
					if !ok {
						continue
					}
					if len(field.Names) != 1 {
						pass.Reportf(field.Pos(), "lockcheck: //sanlint:guards must annotate exactly one named mutex field")
						continue
					}
					if !isMutexType(pass.TypesInfo.TypeOf(field.Type)) {
						pass.Reportf(field.Pos(), "lockcheck: //sanlint:guards on %s, which is not a sync.Mutex or sync.RWMutex", field.Names[0].Name)
						continue
					}
					c := &guardContract{mutexField: field.Names[0].Name, guarded: make(map[string]bool)}
					for _, name := range strings.Split(arg, ",") {
						name = strings.TrimSpace(name)
						if name == "" {
							continue
						}
						if !siblings[name] {
							pass.Reportf(field.Pos(), "lockcheck: //sanlint:guards names %s, which is not a field of %s", name, ts.Name.Name)
							continue
						}
						c.guarded[name] = true
					}
					if len(c.guarded) == 0 {
						pass.Reportf(field.Pos(), "lockcheck: //sanlint:guards on %s lists no valid sibling fields", field.Names[0].Name)
						continue
					}
					if tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
						out[tn] = c
					}
				}
			}
		}
	}
	return out
}

// checkGuardedBody flags guarded-field accesses in fd that precede any lock
// of the guarding mutex.
func checkGuardedBody(pass *analysis.Pass, fd *ast.FuncDecl, recv types.Object, c *guardContract) {
	ops := collectOps(pass, fd)
	lockedBefore := func(pos token.Pos) bool {
		for _, op := range ops {
			if op.isLock() && op.pos < pos && opFieldName(op) == c.mutexField {
				return true
			}
		}
		return false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		field := receiverFieldOf(pass, sel, recv)
		if field == "" || !c.guarded[field] {
			return true
		}
		if !lockedBefore(sel.Pos()) {
			pass.Reportf(sel.Pos(), "lockcheck: field %s is guarded by %s (//sanlint:guards) but accessed before any %s.Lock in this method; lock it first or move the access into a *Locked helper",
				field, c.mutexField, c.mutexField)
		}
		return false // one finding per selector chain
	})
}

// opFieldName returns the struct field a mutex op locks (r.mu.Lock() →
// "mu"), or "" when the mutex is not a field.
func opFieldName(op *lockOp) string {
	v, ok := op.id.(*types.Var)
	if !ok || !v.IsField() {
		return ""
	}
	return v.Name()
}

// receiverFieldOf returns the first-level field name when sel is rooted at
// the receiver object: recv.f, recv.f.g, recv.f[i] — "" otherwise.
func receiverFieldOf(pass *analysis.Pass, sel *ast.SelectorExpr, recv types.Object) string {
	var first *ast.SelectorExpr
	var e ast.Expr = sel
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			first = x
			e = ast.Unparen(x.X)
		case *ast.IndexExpr:
			e = ast.Unparen(x.X)
		case *ast.SliceExpr:
			e = ast.Unparen(x.X)
		case *ast.StarExpr:
			e = ast.Unparen(x.X)
		case *ast.Ident:
			if first != nil && pass.TypesInfo.Uses[x] == recv {
				return first.Sel.Name
			}
			return ""
		default:
			return ""
		}
	}
}

// guardReceiverTypeName unwraps *T / T receivers to the named type.
func guardReceiverTypeName(t types.Type) *types.TypeName {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}
