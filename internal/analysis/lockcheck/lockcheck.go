// Package lockcheck defines the sanlint analyzer that guards the mutex
// discipline the upcoming daemon work (ROADMAP items 2–3) will lean on:
// long-lived sessions and merge protocols mean shared state behind locks,
// and a lock bug is exactly the kind of failure the byte-reproducibility
// lanes cannot catch (the golden seeds never race). Four rules:
//
//   - L1 missing unlock: a function that locks a mutex must also unlock it
//     somewhere in the same function — by defer or explicitly. Functions
//     whose own name is a lock-method name (Lock, RLock, ...) are exempt:
//     they are lock wrappers by construction.
//   - L2 return while held: between a Lock and its first matching Unlock
//     (when the unlock is not deferred), a return statement leaks the
//     function while the mutex is held on that path; use defer.
//   - L3 guarded fields: a mutex field annotated `//sanlint:guards a,b`
//     declares that it protects the sibling fields a and b. Methods of the
//     struct may touch a guarded field only after locking the mutex in the
//     same body, or from helpers named *Locked (the callers-hold-the-lock
//     convention).
//   - L4 lock-order cycles: acquiring B while holding A orders A before B.
//     Orders are collected per function — including locks acquired
//     transitively by callees, via the callgraph result and each
//     function's exported AcquiresFact — published as a package fact, and
//     merged across the program; an acquisition whose reverse order exists
//     anywhere in the merged graph is a deadlock waiting for a schedule.
//
// Mutex identity is static: a receiver or struct field mutex is identified
// as pkg.Type.field (instances of the same field conflate — the classic
// approximation), a package-level mutex as pkg.var. Mutexes held in local
// variables participate in L1/L2 within the function but not in the
// cross-function order graph. Locks taken inside non-deferred function
// literals belong to the literal, not the enclosing function; a
// `defer func() { mu.Unlock() }()` counts as a deferred unlock.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"sanmap/internal/analysis"
	"sanmap/internal/analysis/callgraph"
)

// AcquiresFact records the mutexes a function may acquire, directly or
// through its static callees — the interprocedural input to L4.
type AcquiresFact struct {
	Mutexes []string
}

func (*AcquiresFact) AFact() {}

func (f *AcquiresFact) String() string { return "acquires " + strings.Join(f.Mutexes, ",") }

// LockOrderFact is a package fact: the "A before B" acquisition orders the
// package establishes, as "A < B" strings. Later packages merge every
// exported order graph and flag local edges whose reverse is reachable.
type LockOrderFact struct {
	Edges []string
}

func (*LockOrderFact) AFact() {}

func (f *LockOrderFact) String() string { return "orders " + strings.Join(f.Edges, "; ") }

// Analyzer enforces mutex discipline: unlock-on-all-paths, //sanlint:guards
// field protection, and a consistent program-wide lock acquisition order.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc: "mutexes must be unlocked in the locking function (prefer defer), " +
		"//sanlint:guards fields accessed only under their mutex, and " +
		"acquisition order must be consistent program-wide (no lock-order " +
		"cycles, followed through the call graph)",
	Requires:  []*analysis.Analyzer{callgraph.Analyzer},
	FactTypes: []analysis.Fact{&AcquiresFact{}, &LockOrderFact{}},
	Run:       run,
}

// lockOp is one Lock/Unlock-family call in a function body.
type lockOp struct {
	pos      token.Pos
	method   string // Lock, RLock, TryLock, Unlock, RUnlock, TryRLock
	key      string // stable mutex key, "" for locals
	id       types.Object
	display  string // source-ish rendering for messages
	deferred bool
}

func (op *lockOp) isLock() bool {
	return op.method == "Lock" || op.method == "RLock" || op.method == "TryLock" || op.method == "TryRLock"
}

func run(pass *analysis.Pass) (any, error) {
	g, _ := pass.ResultOf[callgraph.Analyzer].(*callgraph.Graph)
	if g == nil {
		return nil, nil
	}

	// Transitive acquisition sets: direct locks per function, then a
	// fixpoint over the call graph seeded with imported facts at
	// cross-package edges.
	keys := make([]string, 0, len(g.Decls))
	for key := range g.Decls {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	acquires := make(map[string]map[string]bool, len(keys))
	opsOf := make(map[string][]*lockOp, len(keys))
	for _, key := range keys {
		ops := collectOps(pass, g.Decls[key])
		opsOf[key] = ops
		set := make(map[string]bool)
		for _, op := range ops {
			if op.isLock() && op.key != "" {
				set[op.key] = true
			}
		}
		acquires[key] = set
	}
	for changed := true; changed; {
		changed = false
		for _, key := range keys {
			set := acquires[key]
			for _, callee := range g.Callees[key] {
				var more []string
				if local, ok := acquires[analysis.ObjectKey(callee)]; ok {
					for m := range local {
						more = append(more, m)
					}
				} else if callee.Pkg() != pass.Pkg && pass.InModule(callee.Pkg()) {
					var fact AcquiresFact
					if pass.ImportObjectFact(callee, &fact) {
						more = fact.Mutexes
					}
				}
				for _, m := range more {
					if !set[m] {
						set[m] = true
						changed = true
					}
				}
			}
		}
	}
	for _, key := range keys {
		if set := acquires[key]; len(set) > 0 {
			pass.ExportObjectFact(g.Funcs[key], &AcquiresFact{Mutexes: sortedKeys(set)})
		}
	}

	// Per-function rules L1/L2, and the local order edges for L4.
	type edge struct{ before, after string }
	localEdges := make(map[edge]token.Pos)
	for _, key := range keys {
		fd := g.Decls[key]
		ops := opsOf[key]
		if len(ops) > 0 && !isLockWrapper(fd) {
			checkUnlockDiscipline(pass, fd, ops)
		}
		for e, pos := range orderEdges(pass, g, fd, ops, acquires) {
			le := edge{before: e[0], after: e[1]}
			if old, ok := localEdges[le]; !ok || pos < old {
				localEdges[le] = pos
			}
		}
	}

	// L4: merge every package's published orders with ours and flag local
	// edges whose reverse order is reachable. Packages are analyzed in
	// dependency order, so a cross-package inconsistency is reported in
	// whichever package the driver reaches second.
	merged := make(map[string][]string)
	for _, pf := range pass.AllPackageFacts() {
		lof, ok := pf.Fact.(*LockOrderFact)
		if !ok {
			continue
		}
		for _, e := range lof.Edges {
			if before, after, ok := strings.Cut(e, " < "); ok {
				merged[before] = append(merged[before], after)
			}
		}
	}
	var published []string
	for e := range localEdges {
		merged[e.before] = append(merged[e.before], e.after)
		published = append(published, e.before+" < "+e.after)
	}
	sort.Strings(published)
	if len(published) > 0 {
		pass.ExportPackageFact(&LockOrderFact{Edges: published})
	}
	type report struct {
		pos token.Pos
		e   edge
	}
	var reports []report
	for e, pos := range localEdges {
		if reachable(merged, e.after, e.before) {
			reports = append(reports, report{pos, e})
		}
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].pos < reports[j].pos })
	for _, r := range reports {
		pass.Reportf(r.pos, "lockcheck: acquiring %s while holding %s creates a lock-order cycle (the reverse order exists elsewhere in the program)",
			r.e.after, r.e.before)
	}

	checkGuards(pass)
	return nil, nil
}

// collectOps gathers the mutex operations of fd's body attributable to fd
// itself: ops inside non-deferred function literals belong to the literal
// and are skipped; ops inside a deferred call (including a deferred
// immediately-invoked literal) are marked deferred.
func collectOps(pass *analysis.Pass, fd *ast.FuncDecl) []*lockOp {
	var ops []*lockOp
	var scan func(n ast.Node, deferred bool)
	scan = func(n ast.Node, deferred bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				scan(n.Call, true)
				return false
			case *ast.FuncLit:
				return deferred // deferred literal: its body runs at defer time
			case *ast.CallExpr:
				if op := mutexOp(pass, n); op != nil {
					op.deferred = deferred
					ops = append(ops, op)
				}
			}
			return true
		})
	}
	scan(fd.Body, false)
	sort.Slice(ops, func(i, j int) bool { return ops[i].pos < ops[j].pos })
	return ops
}

// mutexOp classifies a call as a sync.Mutex / sync.RWMutex method call and
// resolves the mutex's identity.
func mutexOp(pass *analysis.Pass, call *ast.CallExpr) *lockOp {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil
	}
	switch fn.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock", "Unlock", "RUnlock":
	default:
		return nil
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil || !isMutexType(sig.Recv().Type()) {
		return nil
	}
	key, id := mutexIdentity(pass, sel)
	return &lockOp{
		pos:     call.Pos(),
		method:  fn.Name(),
		key:     key,
		id:      id,
		display: types.ExprString(sel.X),
	}
}

// mutexIdentity resolves the receiver expression of a mutex method call to
// a stable key (pkg.Type.field for struct fields — including promoted
// embedded mutexes — pkg.var for package-level mutexes, "" for locals) and
// an object identity for in-function matching.
func mutexIdentity(pass *analysis.Pass, sel *ast.SelectorExpr) (string, types.Object) {
	// Promoted embedded mutex: x.Lock() where x is a struct embedding
	// sync.Mutex. The method selection's index path names the embedded
	// field chain.
	if s, ok := pass.TypesInfo.Selections[sel]; ok && len(s.Index()) > 1 {
		t := s.Recv()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			if st, ok := named.Underlying().(*types.Struct); ok {
				field := st.Field(s.Index()[0])
				return fieldKey(field, named.Obj()), field
			}
		}
		return "", nil
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[x]
		if obj == nil {
			return "", nil
		}
		if key := analysis.ObjectKey(obj); key != "" {
			return key, obj // package-level mutex
		}
		return "", obj // local
	case *ast.SelectorExpr:
		obj := pass.TypesInfo.Uses[x.Sel]
		v, ok := obj.(*types.Var)
		if !ok {
			return "", obj
		}
		if !v.IsField() {
			return analysis.ObjectKey(v), v // pkg.Mu through an import
		}
		if s, ok := pass.TypesInfo.Selections[x]; ok {
			t := s.Recv()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return fieldKey(v, named.Obj()), v
			}
		}
		return "", v
	}
	return "", nil
}

func fieldKey(field *types.Var, owner *types.TypeName) string {
	if field.Pkg() == nil {
		return ""
	}
	return field.Pkg().Path() + "." + owner.Name() + "." + field.Name()
}

func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false
	}
	return named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex"
}

// isLockWrapper exempts functions that exist to wrap a lock operation.
func isLockWrapper(fd *ast.FuncDecl) bool {
	switch fd.Name.Name {
	case "Lock", "RLock", "TryLock", "TryRLock", "Unlock", "RUnlock":
		return true
	}
	return false
}

// checkUnlockDiscipline enforces L1 and L2 for one function.
func checkUnlockDiscipline(pass *analysis.Pass, fd *ast.FuncDecl, ops []*lockOp) {
	// Group ops by identity (object when known, else display text).
	type group struct {
		display         string
		locks           []*lockOp // non-deferred lock ops
		unlocks         []token.Pos
		deferredUnlocks bool
		anyUnlock       bool
	}
	groups := make(map[any]*group)
	order := []any(nil)
	idOf := func(op *lockOp) any {
		if op.id != nil {
			return op.id
		}
		return op.display
	}
	for _, op := range ops {
		id := idOf(op)
		grp := groups[id]
		if grp == nil {
			grp = &group{display: op.display}
			groups[id] = grp
			order = append(order, id)
		}
		if op.isLock() {
			if !op.deferred {
				grp.locks = append(grp.locks, op)
			}
		} else {
			grp.anyUnlock = true
			if op.deferred {
				grp.deferredUnlocks = true
			} else {
				grp.unlocks = append(grp.unlocks, op.pos)
			}
		}
	}
	returns := returnPositions(fd)
	for _, id := range order {
		grp := groups[id]
		if len(grp.locks) == 0 {
			continue
		}
		if !grp.anyUnlock {
			pass.Reportf(grp.locks[0].pos, "lockcheck: %s is locked but never unlocked in this function; add defer %s.Unlock() (or an unlock on every path)",
				grp.display, grp.display)
			continue
		}
		if grp.deferredUnlocks {
			continue
		}
		// L2: a return between a lock and its next explicit unlock leaks
		// the mutex on that path.
		for _, lk := range grp.locks {
			next := token.Pos(-1)
			for _, up := range grp.unlocks {
				if up > lk.pos {
					next = up
					break
				}
			}
			if next < 0 {
				continue
			}
			for _, r := range returns {
				if lk.pos < r && r < next {
					pass.Reportf(r, "lockcheck: return while %s may still be held (locked at an earlier statement); unlock before returning or use defer",
						grp.display)
				}
			}
		}
	}
}

// returnPositions collects the return statements of fd's own body, skipping
// nested function literals.
func returnPositions(fd *ast.FuncDecl) []token.Pos {
	var out []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			out = append(out, n.Pos())
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// orderEdges computes the "A before B" acquisition orders fd establishes:
// locking B while A is held, and calling — while A is held — a function
// whose transitive acquisition set contains B.
func orderEdges(pass *analysis.Pass, g *callgraph.Graph, fd *ast.FuncDecl, ops []*lockOp, acquires map[string]map[string]bool) map[[2]string]token.Pos {
	edges := make(map[[2]string]token.Pos)
	heldAt := func(pos token.Pos) []string {
		var held []string
		for _, a := range ops {
			if !a.isLock() || a.deferred || a.key == "" || a.pos >= pos {
				continue
			}
			released := false
			for _, u := range ops {
				if !u.isLock() && !u.deferred && idEq(u, a) && a.pos < u.pos && u.pos < pos {
					released = true
					break
				}
			}
			if !released {
				held = append(held, a.key)
			}
		}
		return held
	}
	record := func(before, after string, pos token.Pos) {
		if before == after {
			return
		}
		e := [2]string{before, after}
		if old, ok := edges[e]; !ok || pos < old {
			edges[e] = pos
		}
	}
	for _, b := range ops {
		if !b.isLock() || b.deferred || b.key == "" {
			continue
		}
		for _, a := range heldAt(b.pos) {
			record(a, b.key, b.pos)
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.StaticCallee(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		var calleeAcquires []string
		if local, ok := acquires[analysis.ObjectKey(fn)]; ok {
			calleeAcquires = sortedKeys(local)
		} else if fn.Pkg() != pass.Pkg && pass.InModule(fn.Pkg()) {
			var fact AcquiresFact
			if pass.ImportObjectFact(fn, &fact) {
				calleeAcquires = fact.Mutexes
			}
		}
		if len(calleeAcquires) == 0 {
			return true
		}
		for _, a := range heldAt(call.Pos()) {
			for _, b := range calleeAcquires {
				record(a, b, call.Pos())
			}
		}
		return true
	})
	return edges
}

func idEq(a, b *lockOp) bool {
	if a.id != nil && b.id != nil {
		return a.id == b.id
	}
	return a.display == b.display
}

// reachable reports whether to is reachable from from in the order graph.
func reachable(graph map[string][]string, from, to string) bool {
	seen := map[string]bool{from: true}
	stack := []string{from}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == to {
			return true
		}
		for _, m := range graph[n] {
			if !seen[m] {
				seen[m] = true
				stack = append(stack, m)
			}
		}
	}
	return false
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
