package lockcheck_test

import (
	"testing"

	"sanmap/internal/analysis/analysistest"
	"sanmap/internal/analysis/lockcheck"
)

func TestLockcheck(t *testing.T) {
	analysistest.Run(t, analysistest.Testdata(), lockcheck.Analyzer, "lockcheck")
}
