package analysis

import (
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// A Fact is a typed datum an analyzer attaches to an object (function,
// named type, package-level variable) or to a whole package while analyzing
// the package that declares it, and imports back when analyzing dependents.
// Facts are how the interprocedural rules cross package boundaries: hotpath
// exports "this function is provably allocation-free", determinism exports
// "this function reaches time.Now", lockcheck exports acquisition sets and
// lock-order edges.
//
// Fact types must be pointers to structs; each analyzer sees only its own
// facts (the store is keyed by analyzer and concrete fact type).
type Fact interface {
	// AFact marks the type as a fact; it has no behaviour.
	AFact()
}

// An ObjectFact pairs a fact with the stable key of the object it describes;
// the driver exposes the full set for `sanlint -fact-debug`.
type ObjectFact struct {
	Key      string // ObjectKey of the described object
	Analyzer string
	Fact     Fact
}

// A PackageFact pairs a fact with the import path of the package it
// describes. Package facts carry whole-package summaries (e.g. lockcheck's
// lock-order edges) that have no single carrier object.
type PackageFact struct {
	Path     string
	Analyzer string
	Fact     Fact
}

// ObjectKey returns a stable, program-wide identity for the kinds of object
// facts attach to. The loader type-checks target packages twice (without and
// with in-package test files), producing distinct types.Object identities
// for the same declaration, so facts cannot key on object pointers; the
// fully-qualified name is identical across both checks:
//
//	functions and methods:    (sanmap/internal/simnet.*Net).Eval
//	named types:              sanmap/internal/topology.Network
//	package-level variables:  sanmap/internal/simnet.ErrTimeout
//
// Objects outside these kinds (locals, struct fields, imports) have no
// stable key; ObjectKey returns "" and the fact APIs reject them.
func ObjectKey(obj types.Object) string {
	switch o := obj.(type) {
	case *types.Func:
		// Methods of generic types are used through instantiations; the
		// annotation and the fact live on the generic origin.
		return o.Origin().FullName()
	case *types.TypeName:
		if o.Pkg() != nil {
			return o.Pkg().Path() + "." + o.Name()
		}
	case *types.Var:
		if !o.IsField() && o.Parent() != nil && o.Pkg() != nil && o.Parent() == o.Pkg().Scope() {
			return o.Pkg().Path() + "." + o.Name()
		}
	}
	return ""
}

// factStore is the program-wide fact table one Run call accumulates.
// Packages are analyzed in dependency order, so when a pass imports a fact
// its dependency's pass has already exported it.
type factStore struct {
	obj map[objFactKey]Fact
	pkg map[pkgFactKey]Fact
	// loaded records the import paths type-checked from source this run:
	// the in-module universe the interprocedural rules can reason about.
	loaded map[string]bool
}

type objFactKey struct {
	key      string
	analyzer string
	typ      reflect.Type
}

type pkgFactKey struct {
	path     string
	analyzer string
	typ      reflect.Type
}

func newFactStore() *factStore {
	return &factStore{
		obj:    make(map[objFactKey]Fact),
		pkg:    make(map[pkgFactKey]Fact),
		loaded: make(map[string]bool),
	}
}

// factType validates that fact is a pointer to struct and returns its type.
func factType(fact Fact) reflect.Type {
	t := reflect.TypeOf(fact)
	if t == nil || t.Kind() != reflect.Pointer {
		panic(fmt.Sprintf("analysis: fact %T must be a pointer to a struct", fact))
	}
	return t
}

// ExportObjectFact records fact for obj. The object must be a function, a
// named type, or a package-level variable of the package under analysis.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	key := ObjectKey(obj)
	if key == "" {
		panic(fmt.Sprintf("analysis: %s: cannot attach a fact to %v (no stable key)", p.Analyzer.Name, obj))
	}
	p.prog.obj[objFactKey{key, p.Analyzer.Name, factType(fact)}] = fact
}

// ImportObjectFact copies the fact previously exported for obj (by this
// analyzer, in this or an earlier pass) into the pointer fact and reports
// whether one was found.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	key := ObjectKey(obj)
	if key == "" {
		return false
	}
	return p.importObjectFactKey(key, fact)
}

func (p *Pass) importObjectFactKey(key string, fact Fact) bool {
	stored, ok := p.prog.obj[objFactKey{key, p.Analyzer.Name, factType(fact)}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

// ExportPackageFact records fact for the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	p.prog.pkg[pkgFactKey{p.ImportPath, p.Analyzer.Name, factType(fact)}] = fact
}

// ImportPackageFact copies the fact exported for the package at path into
// fact and reports whether one was found.
func (p *Pass) ImportPackageFact(path string, fact Fact) bool {
	stored, ok := p.prog.pkg[pkgFactKey{path, p.Analyzer.Name, factType(fact)}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

// AllPackageFacts returns every package fact this analyzer has exported so
// far (across all packages analyzed before and including this one), sorted
// by package path. Whole-program accumulators — lockcheck's global
// lock-order graph — fold over this.
func (p *Pass) AllPackageFacts() []PackageFact {
	var out []PackageFact
	for k, f := range p.prog.pkg {
		if k.analyzer == p.Analyzer.Name {
			out = append(out, PackageFact{Path: k.path, Analyzer: k.analyzer, Fact: f})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// InModule reports whether pkg was type-checked from source during this run
// — i.e. it belongs to the module under analysis, so the interprocedural
// rules may demand facts of its declarations. Standard-library packages are
// loaded from export data and are never in-module.
func (p *Pass) InModule(pkg *types.Package) bool {
	return pkg != nil && p.prog.loaded[pkg.Path()]
}
