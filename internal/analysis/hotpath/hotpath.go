// Package hotpath defines the sanlint analyzer that keeps annotated
// functions allocation-free. The eval kernel (simnet.evalRoute and the
// evalScratch helpers), the eventq heap and the wormsim step loop are
// guarded by runtime testing.AllocsPerRun gates; this analyzer enforces the
// same contract statically, so a heap allocation introduced on the hot path
// fails `make lint` before it ever reaches a benchmark.
//
// A function annotated //sanlint:hotpath must not contain:
//
//   - map, slice or channel composite literals, or make()/new() of them
//     (h1: guaranteed heap allocation);
//   - function literals except immediately-invoked ones (h2: closures
//     capture and escape);
//   - append whose destination is not rooted at the receiver or a
//     parameter — appending to anything else cannot reuse a caller-owned
//     scratch buffer (h3);
//   - explicit conversions to interface types (h4: boxing);
//   - defer or go statements (h5);
//   - string concatenation (h6);
//   - calls to functions that are not provably allocation-free (h7): a
//     same-package callee must carry the //sanlint:hotpath annotation, and
//     a callee in another in-module package must carry the exported
//     AllocFreeFact — which it earns by being annotated, so the hot path
//     is annotated transitively across package boundaries (closing the
//     simnet→eventq→wormsim gap the per-package rule used to punt on).
//     Stdlib callees and dynamic calls (interface methods, func values)
//     remain outside the annotation's static reach and are left to the
//     runtime AllocsPerRun gates.
//
// Arguments of panic(...) are exempt from every rule: panics are cold
// guard paths (the eval kernel formats its invariant violations there).
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"sanmap/internal/analysis"
)

// AllocFreeFact marks a function proven allocation-free: it carries the
// //sanlint:hotpath annotation, so this analyzer has checked its body. The
// fact is what h7 demands of cross-package callees.
type AllocFreeFact struct{}

func (*AllocFreeFact) AFact()         {}
func (*AllocFreeFact) String() string { return "allocfree" }

// Analyzer enforces zero-allocation discipline on //sanlint:hotpath funcs.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "//sanlint:hotpath functions must stay allocation-free: no " +
		"map/slice/chan literals, escaping closures, foreign appends, " +
		"interface boxing, defer/go, string concatenation, or calls to " +
		"functions not provably allocation-free (transitive annotation, " +
		"across packages)",
	FactTypes: []analysis.Fact{&AllocFreeFact{}},
	Run:       run,
}

func run(pass *analysis.Pass) (any, error) {
	// Annotated function objects, for the transitive-annotation rule h7.
	// Exporting the fact first makes every annotated function visible to
	// dependent packages analyzed later in the program order.
	annotated := make(map[types.Object]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && analysis.FuncIsHotpath(fd) {
				obj := pass.TypesInfo.Defs[fd.Name]
				annotated[obj] = true
				if fn, ok := obj.(*types.Func); ok {
					pass.ExportObjectFact(fn, &AllocFreeFact{})
				}
			}
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !analysis.FuncIsHotpath(fd) || fd.Body == nil {
				continue
			}
			c := &checker{pass: pass, owned: ownedObjects(pass, fd), annotated: annotated}
			c.walk(fd.Body)
		}
	}
	return nil, nil
}

// ownedObjects collects the receiver and parameter objects of fd: the roots
// through which a hot function may legitimately grow caller-owned buffers.
func ownedObjects(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	owned := make(map[types.Object]bool)
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					owned[obj] = true
				}
			}
		}
	}
	add(fd.Recv)
	add(fd.Type.Params)
	return owned
}

type checker struct {
	pass      *analysis.Pass
	owned     map[types.Object]bool
	annotated map[types.Object]bool
}

func (c *checker) walk(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPanic(c.pass, n) {
				return false // cold guard path: skip the arguments entirely
			}
			c.checkCall(n)
		case *ast.CompositeLit:
			switch c.pass.TypesInfo.TypeOf(n).Underlying().(type) {
			case *types.Map, *types.Slice, *types.Chan:
				c.pass.Reportf(n.Pos(), "hotpath: composite literal allocates a %s", typeKind(c.pass.TypesInfo.TypeOf(n)))
			}
		case *ast.FuncLit:
			c.pass.Reportf(n.Pos(), "hotpath: function literal may escape (closure allocation)")
			return false
		case *ast.DeferStmt:
			c.pass.Reportf(n.Pos(), "hotpath: defer allocates and delays the hot path")
		case *ast.GoStmt:
			c.pass.Reportf(n.Pos(), "hotpath: goroutine launch on the hot path")
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(c.pass.TypesInfo.TypeOf(n)) {
				c.pass.Reportf(n.Pos(), "hotpath: string concatenation allocates")
			}
		}
		return true
	})
}

func (c *checker) checkCall(call *ast.CallExpr) {
	// Conversions: flag only conversions to interface types (boxing).
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if at := c.pass.TypesInfo.TypeOf(call.Args[0]); at != nil && !types.IsInterface(at) {
				c.pass.Reportf(call.Pos(), "hotpath: conversion to interface type %s boxes its operand", tv.Type)
			}
		}
		return
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj := c.pass.TypesInfo.Uses[fun]
		if b, ok := obj.(*types.Builtin); ok {
			c.checkBuiltin(b.Name(), call)
			return
		}
		c.checkCallee(call, obj)
	case *ast.SelectorExpr:
		c.checkCallee(call, c.pass.TypesInfo.Uses[fun.Sel])
	case *ast.FuncLit:
		// Immediately-invoked literal: the walk still visits the FuncLit
		// node and flags it; nothing extra here.
	}
}

// checkBuiltin flags allocating builtins and foreign appends.
func (c *checker) checkBuiltin(name string, call *ast.CallExpr) {
	switch name {
	case "make", "new":
		c.pass.Reportf(call.Pos(), "hotpath: %s allocates", name)
	case "append":
		if len(call.Args) == 0 {
			return
		}
		if root := rootObject(c.pass, call.Args[0]); root == nil || !c.owned[root] {
			c.pass.Reportf(call.Pos(), "hotpath: append to a slice not owned by the receiver or a parameter may allocate")
		}
	}
}

// checkCallee enforces h7: a same-package callee must be annotated, and a
// callee in another in-module package must carry the exported
// allocation-free fact. Stdlib callees and dynamic calls stay exempt.
func (c *checker) checkCallee(call *ast.CallExpr, obj types.Object) {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	// Methods of generic types are used through instantiations; compare
	// against the generic declaration the annotation sits on.
	fn = fn.Origin()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
		return // dynamic dispatch: outside the annotation's static reach
	}
	if fn.Pkg() == c.pass.Pkg {
		if !c.annotated[fn] {
			c.pass.Reportf(call.Pos(), "hotpath: call to unannotated same-package function %s (annotate it //sanlint:hotpath or move it off the hot path)", fn.Name())
		}
		return
	}
	if !c.pass.InModule(fn.Pkg()) {
		return // stdlib: left to the runtime AllocsPerRun gates
	}
	if !c.pass.ImportObjectFact(fn, &AllocFreeFact{}) {
		c.pass.Reportf(call.Pos(), "hotpath: call to %s.%s which is not provably allocation-free (annotate it //sanlint:hotpath or move it off the hot path)", fn.Pkg().Path(), fn.Name())
	}
}

// rootObject walks selector/index/slice/star chains to the base identifier's
// object: the owner of the storage being appended to.
func rootObject(pass *analysis.Pass, expr ast.Expr) types.Object {
	e := ast.Unparen(expr)
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = ast.Unparen(x.X)
		case *ast.IndexExpr:
			e = ast.Unparen(x.X)
		case *ast.SliceExpr:
			e = ast.Unparen(x.X)
		case *ast.StarExpr:
			e = ast.Unparen(x.X)
		case *ast.Ident:
			return pass.TypesInfo.Uses[x]
		default:
			return nil
		}
	}
}

func isPanic(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func typeKind(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Map:
		return "map"
	case *types.Slice:
		return "slice"
	case *types.Chan:
		return "channel"
	}
	return "value"
}
