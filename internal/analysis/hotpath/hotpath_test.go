package hotpath_test

import (
	"testing"

	"sanmap/internal/analysis/analysistest"
	"sanmap/internal/analysis/hotpath"
)

func TestHotpath(t *testing.T) {
	analysistest.Run(t, analysistest.Testdata(), hotpath.Analyzer, "hotpath")
}
