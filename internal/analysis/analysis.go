// Package analysis is a small, dependency-free static-analysis framework
// modelled on golang.org/x/tools/go/analysis. The repo vendors no external
// modules, so the subset of the x/tools API that the sanlint analyzers need
// is reimplemented here on top of the standard library: an Analyzer is a
// named check with a Run function, a Pass hands it one type-checked package,
// and diagnostics are collected positions with messages.
//
// Since PR 8 the framework is whole-program: the loader returns the full
// in-module dependency closure in dependency order, analyzers export typed
// Facts on objects and packages (facts.go) and import them when analyzing
// dependents, and an analyzer may Require others — most usefully the
// callgraph analyzer — whose per-package results arrive via Pass.ResultOf.
// That is what lets hotpath's h7 and the determinism taint follow calls
// across package boundaries, and lockcheck accumulate a global lock-order
// graph.
//
// The framework also defines the `//sanlint:` annotation grammar shared by
// the analyzers (see DESIGN.md §8 and §13):
//
//	//sanlint:hotpath    on a function: the body must be allocation-free
//	//sanlint:epoch      on a struct field: the invalidation counter
//	//sanlint:topostate  on a struct field: writes must bump the epoch field
//	//sanlint:guards a,b on a mutex field: it guards the sibling fields a, b
//	//sanlint:daemon     on a function: may launch unjoined goroutines
//
// Annotations are directive comments (no space after //), so gofmt leaves
// them alone, exactly like //go:noinline.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one static check. Run is invoked once per package — in
// dependency order across the program — and reports findings through the
// Pass. Its optional result value (e.g. the callgraph) is made available to
// same-package passes of analyzers that list it in Requires.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and fixture expectations.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Requires lists analyzers that must run on the same package first;
	// their results are available through Pass.ResultOf.
	Requires []*Analyzer
	// FactTypes declares the fact types this analyzer exports, one zero
	// value per type (documentation and -fact-debug labelling).
	FactTypes []Fact
	// Run executes the check over one type-checked package and optionally
	// returns a result for dependent analyzers.
	Run func(*Pass) (any, error)
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
	// Package is the import path of the package the finding was reported
	// in; cmd/sanlint uses it to scope the determinism analyzer.
	Package string
}

// A Pass connects an Analyzer to one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the parsed files of the package, including in-package
	// _test.go files (external test packages are not loaded).
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
	ImportPath string
	// ResultOf holds the same-package results of the analyzers listed in
	// Analyzer.Requires.
	ResultOf map[*Analyzer]any

	prog        *factStore
	diagnostics []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
		Package:  p.ImportPath,
	})
}

// A Result is the outcome of one whole-program Run: the diagnostics of the
// target (non-DepOnly) packages, sorted by position, plus the accumulated
// fact tables for -fact-debug.
type Result struct {
	Diagnostics []Diagnostic
	store       *factStore
}

// ObjectFacts returns every exported object fact, sorted by object key then
// analyzer then fact type — a stable ordering for the -fact-debug dump.
func (r *Result) ObjectFacts() []ObjectFact {
	var out []ObjectFact
	for k, f := range r.store.obj {
		out = append(out, ObjectFact{Key: k.key, Analyzer: k.analyzer, Fact: f})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return fmt.Sprintf("%T", a.Fact) < fmt.Sprintf("%T", b.Fact)
	})
	return out
}

// PackageFacts returns every exported package fact, sorted by path then
// analyzer then fact type.
func (r *Result) PackageFacts() []PackageFact {
	var out []PackageFact
	for k, f := range r.store.pkg {
		out = append(out, PackageFact{Path: k.path, Analyzer: k.analyzer, Fact: f})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Path != b.Path {
			return a.Path < b.Path
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return fmt.Sprintf("%T", a.Fact) < fmt.Sprintf("%T", b.Fact)
	})
	return out
}

// Run applies the analyzers (plus their transitive Requires) to every
// package in pkgs, which must be in dependency order as returned by Load:
// facts exported while analyzing a dependency are importable by its
// dependents. Dependency-only packages are analyzed for their facts but
// their diagnostics are discarded; only findings in the target packages are
// returned, sorted by file, line, column, then analyzer name. The error
// aggregates analyzer failures (not findings; findings are the
// diagnostics).
func Run(pkgs []*Package, analyzers []*Analyzer) (*Result, error) {
	ordered, err := expandRequires(analyzers)
	if err != nil {
		return nil, err
	}
	store := newFactStore()
	for _, pkg := range pkgs {
		store.loaded[pkg.ImportPath] = true
	}

	res := &Result{store: store}
	var errs []string
	for _, pkg := range pkgs {
		results := make(map[*Analyzer]any)
		for _, a := range ordered {
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.TypesInfo,
				ImportPath: pkg.ImportPath,
				ResultOf:   make(map[*Analyzer]any, len(a.Requires)),
				prog:       store,
			}
			for _, req := range a.Requires {
				pass.ResultOf[req] = results[req]
			}
			out, err := a.Run(pass)
			if err != nil {
				errs = append(errs, fmt.Sprintf("%s on %s: %v", a.Name, pkg.ImportPath, err))
				continue
			}
			results[a] = out
			if !pkg.DepOnly && requested(analyzers, a) {
				res.Diagnostics = append(res.Diagnostics, pass.diagnostics...)
			}
		}
	}
	sortDiagnostics(firstFset(pkgs), res.Diagnostics)
	if len(errs) > 0 {
		return res, fmt.Errorf("analysis: %s", strings.Join(errs, "; "))
	}
	return res, nil
}

// requested reports whether a was asked for directly (diagnostics of
// analyzers pulled in only as Requires dependencies are not reported).
func requested(analyzers []*Analyzer, a *Analyzer) bool {
	for _, x := range analyzers {
		if x == a {
			return true
		}
	}
	return false
}

// expandRequires returns the analyzers plus their transitive requirements
// in an order where every requirement precedes its dependents.
func expandRequires(analyzers []*Analyzer) ([]*Analyzer, error) {
	var out []*Analyzer
	state := make(map[*Analyzer]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(a *Analyzer) error
	visit = func(a *Analyzer) error {
		switch state[a] {
		case 1:
			return fmt.Errorf("analysis: requirement cycle through %s", a.Name)
		case 2:
			return nil
		}
		state[a] = 1
		for _, req := range a.Requires {
			if err := visit(req); err != nil {
				return err
			}
		}
		state[a] = 2
		out = append(out, a)
		return nil
	}
	for _, a := range analyzers {
		if err := visit(a); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func firstFset(pkgs []*Package) *token.FileSet {
	if len(pkgs) > 0 {
		return pkgs[0].Fset // Load shares one FileSet across the program
	}
	return token.NewFileSet()
}

func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// annotationPrefix introduces every sanlint directive comment.
const annotationPrefix = "//sanlint:"

// HasAnnotation reports whether the comment group carries the directive
// //sanlint:<name>, with or without an argument. Directive comments must
// start the line exactly (no leading space after //), mirroring the //go:
// convention.
func HasAnnotation(cg *ast.CommentGroup, name string) bool {
	_, ok := AnnotationArg(cg, name)
	return ok
}

// AnnotationArg returns the argument of the directive //sanlint:<name> in
// the comment group — the text after the directive word, e.g. "model,epoch"
// in `//sanlint:guards model,epoch` — and whether the directive is present
// at all. Argument-free directives return ("", true).
func AnnotationArg(cg *ast.CommentGroup, name string) (string, bool) {
	if cg == nil {
		return "", false
	}
	want := annotationPrefix + name
	for _, c := range cg.List {
		text := strings.TrimSpace(c.Text)
		if text == want {
			return "", true
		}
		if rest, ok := strings.CutPrefix(text, want+" "); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// FieldHasAnnotation checks both the doc comment above a struct field and
// the trailing comment on its line.
func FieldHasAnnotation(f *ast.Field, name string) bool {
	return HasAnnotation(f.Doc, name) || HasAnnotation(f.Comment, name)
}

// FieldAnnotationArg returns the argument of the field's directive, looking
// at both the doc comment and the trailing line comment.
func FieldAnnotationArg(f *ast.Field, name string) (string, bool) {
	if arg, ok := AnnotationArg(f.Doc, name); ok {
		return arg, ok
	}
	return AnnotationArg(f.Comment, name)
}

// FuncIsHotpath reports whether the function declaration is annotated
// //sanlint:hotpath.
func FuncIsHotpath(fd *ast.FuncDecl) bool { return HasAnnotation(fd.Doc, "hotpath") }

// StaticCallee resolves call to the concrete function or method it invokes,
// or nil when the callee is dynamic (an interface method, a func-typed
// variable or field), a builtin, or a type conversion. Methods of generic
// types resolve to their generic origin — the declaration annotations and
// facts live on.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return nil // conversion
	}
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	fn = fn.Origin()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) {
			return nil // dynamic dispatch
		}
	}
	return fn
}

// FuncIsDaemon reports whether the function declaration is annotated
// //sanlint:daemon — exempt from the goroutine-lifecycle join rule.
func FuncIsDaemon(fd *ast.FuncDecl) bool { return HasAnnotation(fd.Doc, "daemon") }
