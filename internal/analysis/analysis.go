// Package analysis is a small, dependency-free static-analysis framework
// modelled on golang.org/x/tools/go/analysis. The repo vendors no external
// modules, so the subset of the x/tools API that the sanlint analyzers need
// is reimplemented here on top of the standard library: an Analyzer is a
// named check with a Run function, a Pass hands it one type-checked package,
// and diagnostics are collected positions with messages.
//
// The framework also defines the `//sanlint:` annotation grammar shared by
// the analyzers (see DESIGN.md §8):
//
//	//sanlint:hotpath    on a function: the body must be allocation-free
//	//sanlint:epoch      on a struct field: the invalidation counter
//	//sanlint:topostate  on a struct field: writes must bump the epoch field
//
// Annotations are directive comments (no space after //), so gofmt leaves
// them alone, exactly like //go:noinline.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one static check. Run is invoked once per package and
// reports findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and fixture expectations.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run executes the check over one type-checked package.
	Run func(*Pass) error
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// A Pass connects an Analyzer to one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the parsed files of the package, including in-package
	// _test.go files (external test packages are not loaded).
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diagnostics []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Run applies each analyzer to each package and returns every diagnostic,
// sorted by file position. The error aggregates analyzer failures (not
// findings; findings are the diagnostics).
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	var errs []string
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			if err := a.Run(pass); err != nil {
				errs = append(errs, fmt.Sprintf("%s on %s: %v", a.Name, pkg.ImportPath, err))
				continue
			}
			diags = append(diags, pass.diagnostics...)
		}
		sortDiagnostics(pkg.Fset, diags)
	}
	if len(errs) > 0 {
		return diags, fmt.Errorf("analysis: %s", strings.Join(errs, "; "))
	}
	return diags, nil
}

func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
}

// annotationPrefix introduces every sanlint directive comment.
const annotationPrefix = "//sanlint:"

// HasAnnotation reports whether the comment group carries the directive
// //sanlint:<name>. Directive comments must start the line exactly (no
// leading space after //), mirroring the //go: convention.
func HasAnnotation(cg *ast.CommentGroup, name string) bool {
	if cg == nil {
		return false
	}
	want := annotationPrefix + name
	for _, c := range cg.List {
		text := strings.TrimSpace(c.Text)
		if text == want {
			return true
		}
	}
	return false
}

// FieldHasAnnotation checks both the doc comment above a struct field and
// the trailing comment on its line.
func FieldHasAnnotation(f *ast.Field, name string) bool {
	return HasAnnotation(f.Doc, name) || HasAnnotation(f.Comment, name)
}

// FuncIsHotpath reports whether the function declaration is annotated
// //sanlint:hotpath.
func FuncIsHotpath(fd *ast.FuncDecl) bool { return HasAnnotation(fd.Doc, "hotpath") }
