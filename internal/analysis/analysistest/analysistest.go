// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against `// want` expectations embedded in the fixtures,
// mirroring golang.org/x/tools/go/analysis/analysistest.
//
// Expectation syntax: a line that should trigger diagnostics carries a
// trailing comment of one or more double-quoted regular expressions,
//
//	x := badThing() // want "first finding" "second finding"
//
// Every expectation must be matched by a diagnostic on that line, and every
// diagnostic must be matched by an expectation; either mismatch fails the
// test. Fixture packages live under testdata/src/<name> and must type-check.
//
// A fixture may be multi-package: subdirectories of testdata/src/<name> are
// loaded along with the root (the whole `./...` subtree, dependencies
// ordered first), so cross-package rules — interprocedural hotpath h7,
// determinism taint through helper packages — are testable by making the
// root package import its fixture-local helpers. Want comments are honored
// in every package of the subtree.
package analysistest

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"sanmap/internal/analysis"
)

// expectation is one `// want` regexp, anchored to a file line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads the `./...` subtree at testdata/src/<pkg>, applies the analyzer
// whole-program (dependencies first, facts propagating), and reports
// mismatches between its diagnostics and the fixtures' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", pkg)
	pkgs, err := analysis.Load(dir, "./...")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	var fixture []*analysis.Package
	for _, p := range pkgs {
		if !p.DepOnly {
			fixture = append(fixture, p)
		}
	}
	if len(fixture) == 0 {
		t.Fatalf("fixture %s: loaded no packages", dir)
	}

	var wants []*expectation
	for _, p := range fixture {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					wants = append(wants, parseWants(t, p.Fset, c)...)
				}
			}
		}
	}

	res, err := analysis.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	fset := fixture[0].Fset
	for _, d := range res.Diagnostics {
		pos := fset.Position(d.Pos)
		if !claim(wants, pos, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// claim marks the first unmatched expectation on the diagnostic's line whose
// regexp matches the message.
func claim(wants []*expectation, pos token.Position, msg string) bool {
	for _, w := range wants {
		if w.matched || w.line != pos.Line || w.file != pos.Filename {
			continue
		}
		if w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// parseWants extracts the expectations from one comment.
func parseWants(t *testing.T, fset *token.FileSet, c *ast.Comment) []*expectation {
	t.Helper()
	text := strings.TrimPrefix(c.Text, "//")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, "want ") {
		return nil
	}
	pos := fset.Position(c.Pos())
	rest := strings.TrimSpace(strings.TrimPrefix(text, "want"))
	var out []*expectation
	for rest != "" {
		if rest[0] != '"' {
			t.Fatalf("%s: malformed want comment (expected quoted regexp): %s", pos, c.Text)
		}
		end := strings.Index(rest[1:], `"`)
		if end < 0 {
			t.Fatalf("%s: unterminated regexp in want comment: %s", pos, c.Text)
		}
		pat := rest[1 : 1+end]
		re, err := regexp.Compile(pat)
		if err != nil {
			t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
		}
		out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
		rest = strings.TrimSpace(rest[end+2:])
	}
	if len(out) == 0 {
		t.Fatalf("%s: want comment carries no regexps: %s", pos, c.Text)
	}
	return out
}

// Testdata returns the conventional testdata directory for the caller's
// package: ../testdata relative to the analyzer package directory, i.e. the
// analyzers share one fixture tree under internal/analysis/testdata.
func Testdata() string { return filepath.Join("..", "testdata") }
