// Package determinism defines the sanlint analyzer that guards the repo's
// headline reproducibility property: identical inputs produce byte-identical
// maps, figures and DOT renderings, on any worker count. Three failure
// classes are flagged:
//
//   - wall-clock reads: time.Now threads real time into virtual-time
//     experiments;
//   - the global math/rand generator: rand.Int, rand.Shuffle et al. draw
//     from process-global state; randomized experiments must thread an
//     explicit *rand.Rand so a seed reproduces the run;
//   - order-sensitive map iteration: `for k, v := range m` visits keys in
//     randomized order, so a body that publishes anything order-dependent
//     makes output differ run to run.
//
// A map-range body is order-sensitive when it contains (with K/V the range
// variables and anything derived from them tainted):
//
//	D1  append to a slice declared outside the loop, unless that slice is
//	    passed to a sort.* / slices.Sort* call later in the same function
//	    (the collect-then-sort idiom);
//	D2  a write to an output sink: fmt.Print*/Fprint*, strings.Builder or
//	    bytes.Buffer Write methods, io.WriteString, or a channel send;
//	D3  a return statement referencing a tainted variable (which mismatch
//	    is reported first depends on iteration order);
//	D4  any other call passing a tainted value — except builtins,
//	    conversions, sort calls, panic arguments, and calls in condition
//	    position (if/for/switch conditions are pure-read by convention:
//	    think liveAny(es) guards). Effectful callees invoked per-element
//	    observe iteration order; pure per-key uses in condition position do
//	    not.
//
// Pure accumulation — counters, min/max folds, writes into other maps —
// passes: those are order-independent.
//
// Since PR 8 the wall-clock and global-rand rules are interprocedural: the
// analyzer exports a NondetFact for every function that reaches time.Now or
// the global generator — directly, through same-package helpers (a local
// fixpoint over the callgraph result), or through already-tainted functions
// in dependency packages (imported facts). A call that crosses a package
// boundary into a tainted function is flagged at that call site: the
// virtual-time entry point, not the helper package the source hides in.
package determinism

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"sanmap/internal/analysis"
	"sanmap/internal/analysis/callgraph"
)

// NondetFact marks a function that reaches a nondeterministic source. Path
// is the call chain down to the source, e.g. ["Stamp", "time.Now"].
type NondetFact struct {
	Path []string
}

func (*NondetFact) AFact() {}

func (f *NondetFact) String() string { return "reaches " + strings.Join(f.Path, " -> ") }

// Analyzer flags nondeterministic constructs: wall-clock time, the global
// math/rand generator (both followed through helper calls across package
// boundaries), and order-sensitive map iteration.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "experiments must be reproducible: no time.Now or global " +
		"math/rand reach (even through helper packages), no map iteration " +
		"that publishes order-dependent output",
	Requires:  []*analysis.Analyzer{callgraph.Analyzer},
	FactTypes: []analysis.Fact{&NondetFact{}},
	Run:       run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	g, _ := pass.ResultOf[callgraph.Analyzer].(*callgraph.Graph)
	if g != nil {
		taint(pass, g)
	}
	return nil, nil
}

// taint computes which local functions reach a nondeterministic source,
// exports their facts, and flags calls that import taint from another
// package — the entry points where real time would leak into virtual time.
func taint(pass *analysis.Pass, g *callgraph.Graph) {
	keys := make([]string, 0, len(g.Decls))
	for key := range g.Decls {
		keys = append(keys, key)
	}
	sort.Strings(keys)

	// Seed: functions calling time.Now / global math/rand directly.
	nondet := make(map[string][]string)
	for _, key := range keys {
		src := ""
		ast.Inspect(g.Decls[key].Body, func(n ast.Node) bool {
			if src != "" {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if s := globalSourceName(pass, call); s != "" {
					src = s
					return false
				}
			}
			return true
		})
		if src != "" {
			nondet[key] = []string{src}
		}
	}

	// Fixpoint over the local call graph, seeding from imported facts at
	// cross-package edges. Sorted iteration keeps the recorded chains (and
	// so the -fact-debug dump) deterministic.
	for changed := true; changed; {
		changed = false
		for _, key := range keys {
			if nondet[key] != nil {
				continue
			}
			for _, callee := range g.Callees[key] {
				var chain []string
				if local := nondet[analysis.ObjectKey(callee)]; local != nil {
					chain = local
				} else if callee.Pkg() != pass.Pkg && pass.InModule(callee.Pkg()) {
					var fact NondetFact
					if pass.ImportObjectFact(callee, &fact) {
						chain = fact.Path
					}
				}
				if chain != nil {
					nondet[key] = append([]string{chainName(pass, callee)}, chain...)
					changed = true
					break
				}
			}
		}
	}
	for _, key := range keys {
		if chain := nondet[key]; chain != nil {
			pass.ExportObjectFact(g.Funcs[key], &NondetFact{Path: chain})
		}
	}

	// Report at the import edge: a call into another in-module package
	// whose callee carries taint. Intra-package reaches are not re-flagged
	// here — their root source (or their own import edge) already is.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.StaticCallee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg() == pass.Pkg || !pass.InModule(fn.Pkg()) {
				return true
			}
			var fact NondetFact
			if pass.ImportObjectFact(fn, &fact) {
				pass.Reportf(call.Pos(), "call to %s reaches %s; thread the virtual clock or an explicit *rand.Rand instead",
					chainName(pass, fn), strings.Join(fact.Path, " -> "))
			}
			return true
		})
	}
}

// chainName renders a callee for taint chains: package-qualified when the
// function lives elsewhere, bare within the package under analysis.
func chainName(pass *analysis.Pass, fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if tn := recvTypeName(sig.Recv().Type()); tn != "" {
			name = tn + "." + name
		}
	}
	if fn.Pkg() != nil && fn.Pkg() != pass.Pkg {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

// recvTypeName unwraps *T / T receivers to the named type's name.
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkGlobalSource(pass, n)
		case *ast.RangeStmt:
			if isMapType(pass.TypesInfo.TypeOf(n.X)) {
				checkMapRange(pass, body, n)
			}
		}
		return true
	})
}

// checkGlobalSource flags time.Now and package-level math/rand functions.
func checkGlobalSource(pass *analysis.Pass, call *ast.CallExpr) {
	switch src := globalSourceName(pass, call); src {
	case "":
	case "time.Now":
		pass.Reportf(call.Pos(), "time.Now is nondeterministic; thread the virtual clock (simnet.Net.Clock) or an explicit time source")
	default:
		pass.Reportf(call.Pos(), "global math/rand %s draws from process-global state; thread an explicit *rand.Rand so the seed reproduces the run", strings.TrimPrefix(src, "rand."))
	}
}

// globalSourceName classifies a call as a nondeterministic source: it
// returns "time.Now", "rand.<Name>" for the package-level math/rand
// functions, or "".
func globalSourceName(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	// Methods (e.g. (*rand.Rand).Intn) have a receiver; only package-level
	// functions draw from global state.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" {
			return "time.Now"
		}
	case "math/rand", "math/rand/v2":
		// Constructors (New, NewSource, NewPCG, ...) build explicit
		// generators — that is exactly the sanctioned pattern.
		if strings.HasPrefix(fn.Name(), "New") {
			return ""
		}
		return "rand." + fn.Name()
	}
	return ""
}

// checkMapRange applies the D1–D4 sink rules to one map-range loop.
func checkMapRange(pass *analysis.Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt) {
	taint := make(map[types.Object]bool)
	addTaint := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				taint[obj] = true
			} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
				taint[obj] = true
			}
		}
	}
	if rs.Key != nil {
		addTaint(rs.Key)
	}
	if rs.Value != nil {
		addTaint(rs.Value)
	}
	// Propagate taint through assignments inside the body until stable:
	// v := expr(tainted) taints v; inner `range tainted` taints its vars.
	for changed := true; changed; {
		changed = false
		ast.Inspect(rs.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					var rhs ast.Expr
					if len(n.Rhs) == len(n.Lhs) {
						rhs = n.Rhs[i]
					} else if len(n.Rhs) == 1 {
						rhs = n.Rhs[0]
					}
					if rhs == nil || !mentionsTaint(pass, taint, rhs) {
						continue
					}
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						obj := pass.TypesInfo.Defs[id]
						if obj == nil {
							obj = pass.TypesInfo.Uses[id]
						}
						if obj != nil && !taint[obj] {
							taint[obj] = true
							changed = true
						}
					}
				}
			case *ast.RangeStmt:
				if n != rs && mentionsTaint(pass, taint, n.X) {
					for _, e := range []ast.Expr{n.Key, n.Value} {
						if e == nil {
							continue
						}
						if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
							if obj := pass.TypesInfo.Defs[id]; obj != nil && !taint[obj] {
								taint[obj] = true
								changed = true
							}
						}
					}
				}
			}
			return true
		})
	}

	v := &rangeVisitor{pass: pass, funcBody: funcBody, rs: rs, taint: taint}
	v.stmt(rs.Body)
}

// rangeVisitor walks a map-range body tracking condition position.
type rangeVisitor struct {
	pass     *analysis.Pass
	funcBody *ast.BlockStmt
	rs       *ast.RangeStmt
	taint    map[types.Object]bool
}

// stmt dispatches over statements. Condition expressions (if/for/switch)
// are deliberately not visited: calls there are read-only guards, exempt
// from D4 by design.
func (v *rangeVisitor) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			v.stmt(st)
		}
	case *ast.IfStmt:
		v.stmt(s.Init)
		// Condition position: calls there are read-only guards (D4 exempt).
		v.stmt(s.Body)
		v.stmt(s.Else)
	case *ast.ForStmt:
		v.stmt(s.Init)
		v.stmt(s.Post)
		v.stmt(s.Body)
	case *ast.RangeStmt:
		v.stmt(s.Body)
	case *ast.SwitchStmt:
		v.stmt(s.Init)
		v.stmt(s.Body)
	case *ast.TypeSwitchStmt:
		v.stmt(s.Init)
		v.stmt(s.Body)
	case *ast.CaseClause:
		for _, st := range s.Body {
			v.stmt(st)
		}
	case *ast.SendStmt:
		v.pass.Reportf(s.Pos(), "channel send inside map iteration publishes values in randomized order (D2); collect and sort first")
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if mentionsTaint(v.pass, v.taint, r) {
				v.pass.Reportf(s.Pos(), "return inside map iteration depends on which key is visited first (D3); iterate sorted keys")
				return
			}
		}
		for _, r := range s.Results {
			v.expr(r)
		}
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
				v.checkAppend(s, call)
			}
			v.expr(rhs)
		}
		for _, lhs := range s.Lhs {
			v.expr(lhs)
		}
	case *ast.ExprStmt:
		v.expr(s.X)
	case *ast.IncDecStmt, *ast.BranchStmt, *ast.EmptyStmt:
		// Order-independent or control-only.
	case *ast.DeclStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				v.checkCallSink(call)
			}
			return true
		})
	case *ast.DeferStmt:
		v.checkCallSink(s.Call)
	case *ast.GoStmt:
		v.checkCallSink(s.Call)
	case *ast.LabeledStmt:
		v.stmt(s.Stmt)
	case *ast.SelectStmt:
		v.stmt(s.Body)
	case *ast.CommClause:
		for _, st := range s.Body {
			v.stmt(st)
		}
	}
}

// expr scans an expression for call sinks, exempting calls in condition
// position (the caller routes conditions around this).
func (v *rangeVisitor) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if isPanicCall(v.pass, call) {
				return false
			}
			if v.checkCallSink(call) {
				return false // one finding per call chain is enough
			}
		}
		return true
	})
}

// checkAppend handles D1: append into a slice declared outside the loop.
func (v *rangeVisitor) checkAppend(as *ast.AssignStmt, call *ast.CallExpr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return
	}
	if b, ok := v.pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return
	}
	if len(call.Args) == 0 {
		return
	}
	target, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		// Appends into selector/index targets (receiver fields etc.) are
		// out of D1's scope; D4 still sees effectful calls.
		return
	}
	obj := v.pass.TypesInfo.Uses[target]
	if obj == nil {
		return
	}
	// Declared inside the loop body: loop-local accumulation, fine.
	if v.rs.Body.Pos() <= obj.Pos() && obj.Pos() <= v.rs.Body.End() {
		return
	}
	if sortedLater(v.pass, v.funcBody, v.rs, obj) {
		return
	}
	v.pass.Reportf(call.Pos(), "append to %s inside map iteration records keys in randomized order (D1); sort it before use (collect-then-sort)", target.Name)
}

// checkCallSink handles D2 and D4 for one call; it reports whether a
// diagnostic was emitted.
func (v *rangeVisitor) checkCallSink(call *ast.CallExpr) bool {
	if tv, ok := v.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return false // conversion
	}
	if kind := outputSink(v.pass, call); kind != "" {
		v.pass.Reportf(call.Pos(), "%s inside map iteration writes in randomized key order (D2); iterate sorted keys", kind)
		return true
	}
	if isSortCall(v.pass, call) || isPureFormat(v.pass, call) {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if _, ok := v.pass.TypesInfo.Uses[fun].(*types.Builtin); ok {
			return false
		}
	}
	// D4: effectful call fed by the iteration.
	tainted := false
	for _, a := range call.Args {
		if mentionsTaint(v.pass, v.taint, a) {
			tainted = true
			break
		}
	}
	if !tainted {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && mentionsTaint(v.pass, v.taint, sel.X) {
			tainted = true
		}
	}
	if tainted {
		v.pass.Reportf(call.Pos(), "call passes map-iteration state to an effectful function in randomized order (D4); iterate sorted keys or move the call out of the loop")
	}
	return tainted
}

// outputSink classifies calls that write ordered output (D2).
func outputSink(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		recv := sig.Recv().Type()
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
		}
		if named, ok := recv.(*types.Named); ok {
			owner := named.Obj()
			if owner.Pkg() != nil && strings.HasPrefix(fn.Name(), "Write") {
				switch owner.Pkg().Path() + "." + owner.Name() {
				case "strings.Builder", "bytes.Buffer":
					return owner.Name() + "." + fn.Name()
				}
			}
		}
		return ""
	}
	switch fn.Pkg().Path() {
	case "fmt":
		if strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint") {
			return "fmt." + fn.Name()
		}
	case "io":
		if fn.Name() == "WriteString" {
			return "io.WriteString"
		}
	}
	return ""
}

// sortedLater reports whether obj is passed to a sort call positioned after
// the range statement in the same function (collect-then-sort idiom).
func sortedLater(pass *analysis.Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || !isSortCall(pass, call) {
			return !found
		}
		for _, a := range call.Args {
			ast.Inspect(a, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// isPureFormat recognises fmt.Sprint*/Errorf: they only build values, so
// they are not D4 sinks themselves — whatever consumes the result is.
func isPureFormat(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return false
	}
	return strings.HasPrefix(fn.Name(), "Sprint") || fn.Name() == "Errorf"
}

// isSortCall recognises sort.* and slices.Sort* calls.
func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		return true
	case "slices":
		return strings.HasPrefix(fn.Name(), "Sort")
	}
	return false
}

// mentionsTaint reports whether the expression references a tainted object.
func mentionsTaint(pass *analysis.Pass, taint map[types.Object]bool, e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil && taint[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func isPanicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}
