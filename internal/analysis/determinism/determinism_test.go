package determinism_test

import (
	"testing"

	"sanmap/internal/analysis/analysistest"
	"sanmap/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, analysistest.Testdata(), determinism.Analyzer, "determinism")
}
