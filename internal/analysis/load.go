package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
)

// A Package is one parsed and type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
	// DepOnly marks packages loaded only because a target depends on them:
	// analyzers run over them to compute facts, but their diagnostics are
	// not reported.
	DepOnly bool
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath  string
	Dir         string
	Standard    bool
	DepOnly     bool
	GoFiles     []string
	TestGoFiles []string
	Imports     []string
	TestImports []string
}

// Load resolves the patterns with the go command (run in dir; "" means the
// current directory), parses every matched package plus its in-module
// dependencies, and type-checks them from source in dependency order.
// Standard-library imports are satisfied from compiler export data, so no
// network access or third-party machinery is needed. In-package test files
// of the matched packages are included; external _test packages are not.
//
// The whole in-module closure is returned — dependencies first
// (topologically sorted by imports, ties broken by import path), so a
// driver running analyzers over the slice in order sees every dependency's
// facts before its dependents. Packages pulled in only as dependencies are
// marked DepOnly.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}

	// In-package test files may import module packages outside the plain
	// dependency closure; list those too (their deps join the same map).
	known := make(map[string]*listedPackage, len(listed))
	for _, lp := range listed {
		known[lp.ImportPath] = lp
	}
	var extra []string
	seen := make(map[string]bool)
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard {
			continue
		}
		for _, imp := range lp.TestImports {
			if _, ok := known[imp]; !ok && !seen[imp] && imp != "C" {
				seen[imp] = true
				extra = append(extra, imp)
			}
		}
	}
	if len(extra) > 0 {
		more, err := goList(dir, extra...)
		if err != nil {
			return nil, err
		}
		for _, lp := range more {
			if _, ok := known[lp.ImportPath]; !ok {
				lp.DepOnly = true
				known[lp.ImportPath] = lp
				listed = append(listed, lp)
			}
		}
	}

	// Topologically sort the in-module packages by their plain imports so
	// both type-checking and fact propagation see dependencies first. (Test
	// imports are not edges: in-package test files are added in phase 2,
	// after every package has been checked once.) Kahn's algorithm with a
	// lexicographic frontier keeps the order deterministic.
	listed = topoSort(listed)

	fset := token.NewFileSet()
	checked := make(map[string]*types.Package)
	std := importer.Default()
	imp := importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		if pkg, ok := checked[path]; ok {
			return pkg, nil
		}
		return std.Import(path)
	})

	check := func(lp *listedPackage, withTests bool) (*Package, error) {
		files := lp.GoFiles
		if withTests {
			files = append(append([]string(nil), lp.GoFiles...), lp.TestGoFiles...)
		}
		var parsed []*ast.File
		for _, name := range files {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: parse %s: %w", name, err)
			}
			parsed = append(parsed, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{
			Importer: imp,
			Sizes:    types.SizesFor("gc", runtime.GOARCH),
		}
		tpkg, err := conf.Check(lp.ImportPath, fset, parsed, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-check %s: %w", lp.ImportPath, err)
		}
		return &Package{
			ImportPath: lp.ImportPath,
			Dir:        lp.Dir,
			Fset:       fset,
			Files:      parsed,
			Types:      tpkg,
			TypesInfo:  info,
			DepOnly:    lp.DepOnly,
		}, nil
	}

	// Phase 1: type-check the plain build closure in topological order, no
	// test files yet.
	plain := make(map[string]*Package)
	for _, lp := range listed {
		if lp.Standard {
			continue
		}
		pkg, err := check(lp, false)
		if err != nil {
			return nil, err
		}
		checked[lp.ImportPath] = pkg.Types
		plain[lp.ImportPath] = pkg
	}

	// Phase 2: re-check each target that has in-package test files, now with
	// those files included. Every module package — including test-only
	// imports of later targets — is in `checked`, so ordering no longer
	// matters. The re-check shadows the phase-1 entry only for this
	// package's own Pass; importers still see the phase-1 result, which is
	// identical for exported declarations. (The re-check mints fresh
	// types.Object identities, which is why facts key on ObjectKey strings
	// rather than object pointers.)
	var out []*Package
	for _, lp := range listed {
		if lp.Standard {
			continue
		}
		pkg := plain[lp.ImportPath]
		if !lp.DepOnly && len(lp.TestGoFiles) > 0 {
			var err error
			pkg, err = check(lp, true)
			if err != nil {
				return nil, err
			}
		}
		out = append(out, pkg)
	}
	return out, nil
}

// topoSort orders the non-standard listed packages dependencies-first by
// their Imports edges; standard packages are dropped (they are loaded from
// export data, not analyzed). The frontier is popped in import-path order,
// so the result is deterministic regardless of go list's emission order.
func topoSort(listed []*listedPackage) []*listedPackage {
	byPath := make(map[string]*listedPackage, len(listed))
	indeg := make(map[string]int)
	dependents := make(map[string][]string)
	for _, lp := range listed {
		if lp.Standard {
			continue
		}
		byPath[lp.ImportPath] = lp
		indeg[lp.ImportPath] += 0
	}
	for _, lp := range byPath {
		for _, imp := range lp.Imports {
			if _, ok := byPath[imp]; ok {
				indeg[lp.ImportPath]++
				dependents[imp] = append(dependents[imp], lp.ImportPath)
			}
		}
	}
	var frontier []string
	for path, d := range indeg {
		if d == 0 {
			frontier = append(frontier, path)
		}
	}
	sort.Strings(frontier)
	var out []*listedPackage
	for len(frontier) > 0 {
		path := frontier[0]
		frontier = frontier[1:]
		out = append(out, byPath[path])
		var ready []string
		for _, dep := range dependents[path] {
			if indeg[dep]--; indeg[dep] == 0 {
				ready = append(ready, dep)
			}
		}
		sort.Strings(ready)
		frontier = mergeSorted(frontier, ready)
	}
	// Import cycles cannot occur in valid Go; if go list ever hands us one,
	// append the remainder sorted so nothing is silently dropped.
	if len(out) < len(byPath) {
		var rest []string
		for path, d := range indeg {
			if d > 0 {
				rest = append(rest, path)
			}
		}
		sort.Strings(rest)
		for _, path := range rest {
			out = append(out, byPath[path])
		}
	}
	return out
}

// mergeSorted merges two sorted string slices.
func mergeSorted(a, b []string) []string {
	if len(b) == 0 {
		return a
	}
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	return append(append(out, a[i:]...), b[j:]...)
}

// goList runs `go list -deps -json` over the patterns in dir.
func goList(dir string, patterns ...string) ([]*listedPackage, error) {
	args := append([]string{"list", "-deps", "-json=ImportPath,Dir,Standard,DepOnly,GoFiles,TestGoFiles,Imports,TestImports"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var out []*listedPackage
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %w", err)
		}
		out = append(out, lp)
	}
	return out, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
