// Package goroutine defines the sanlint analyzer that forbids
// fire-and-forget goroutines: every `go` statement must have a provable
// join, so a test or a shutting-down daemon can always wait for the work it
// started. The mapping-as-a-service roadmap (continuous remap loops, many
// concurrent client sessions, cooperative mappers) will multiply goroutine
// launch sites; an unjoined goroutine is a leak under the race detector and
// a nondeterminism hazard for the byte-identity lanes.
//
// A `go` statement is considered joined when one of these holds:
//
//   - g1 WaitGroup: the goroutine (a function literal) calls Done on a
//     *sync.WaitGroup, and — when the WaitGroup is a local variable — the
//     launching function calls Add on it before the `go` statement.
//     WaitGroups owned elsewhere (parameters, struct fields) are accepted:
//     the owner carries the Add/Wait bookkeeping.
//   - g2 done channel: the goroutine sends on or closes a channel, and —
//     when the channel is a local variable — the launching function
//     receives from it. Channels owned elsewhere are accepted.
//   - g3 signalling callee: `go f(...)` where f (resolved statically)
//     takes a *sync.WaitGroup or channel argument at the call site, or
//     carries the exported CompletesFact: its body signals completion
//     through a parameter or its receiver. The fact crosses package
//     boundaries, so `go worker.Run(wg)` joins even though worker's Done
//     call is in another package.
//   - g4 daemon exemption: the launching function — or the statically
//     resolved callee — is annotated //sanlint:daemon, declaring a
//     deliberately unjoined background goroutine (the annotation is the
//     audit trail).
//
// Anything else — a bare closure that signals nothing, a dynamic call
// through a func value with no WaitGroup or channel in sight — is flagged.
package goroutine

import (
	"go/ast"
	"go/token"
	"go/types"

	"sanmap/internal/analysis"
)

// CompletesFact marks a function that signals completion through its
// parameters or receiver: it calls Done on a *sync.WaitGroup it was handed,
// or sends on / closes a channel it was handed (directly or as a receiver
// field). `go` statements running such a function are joinable by their
// caller.
type CompletesFact struct{}

func (*CompletesFact) AFact()         {}
func (*CompletesFact) String() string { return "completes" }

// DaemonFact marks a function annotated //sanlint:daemon, so launches of it
// from other packages inherit the exemption.
type DaemonFact struct{}

func (*DaemonFact) AFact()         {}
func (*DaemonFact) String() string { return "daemon" }

// Analyzer enforces the goroutine-lifecycle join rule.
var Analyzer = &analysis.Analyzer{
	Name: "goroutine",
	Doc: "every go statement needs a provable join (WaitGroup Done with a " +
		"prior Add, a received-from or caller-owned done channel, or a " +
		"callee that signals completion); fire-and-forget goroutines are " +
		"only allowed in //sanlint:daemon functions",
	FactTypes: []analysis.Fact{&CompletesFact{}, &DaemonFact{}},
	Run:       run,
}

func run(pass *analysis.Pass) (any, error) {
	// Export facts first so `go` statements checked below (and in dependent
	// packages) can rely on them, declaration order notwithstanding.
	daemons := make(map[types.Object]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			fn, _ := obj.(*types.Func)
			if analysis.FuncIsDaemon(fd) {
				daemons[obj] = true
				if fn != nil {
					pass.ExportObjectFact(fn, &DaemonFact{})
				}
			}
			if fd.Body != nil && fn != nil && signalsCompletion(pass, fd) {
				pass.ExportObjectFact(fn, &CompletesFact{})
			}
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || analysis.FuncIsDaemon(fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					checkGo(pass, fd, g, daemons)
				}
				return true
			})
		}
	}
	return nil, nil
}

// checkGo validates one go statement inside fd.
func checkGo(pass *analysis.Pass, fd *ast.FuncDecl, g *ast.GoStmt, daemons map[types.Object]bool) {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		checkClosure(pass, fd, g, lit)
		return
	}

	// Named (or dynamic) callee: a WaitGroup or channel among the call-site
	// arguments is a join handle regardless of how the callee resolves.
	for _, arg := range g.Call.Args {
		if t := pass.TypesInfo.TypeOf(arg); isWaitGroupPtr(t) || isChan(t) {
			return
		}
	}
	fn := analysis.StaticCallee(pass.TypesInfo, g.Call)
	if fn == nil {
		pass.Reportf(g.Pos(), "goroutine: go through a dynamic call has no provable join; pass a *sync.WaitGroup or channel, launch a named worker, or annotate the launching function //sanlint:daemon")
		return
	}
	if daemons[types.Object(fn)] || pass.ImportObjectFact(fn, &DaemonFact{}) {
		return
	}
	if pass.ImportObjectFact(fn, &CompletesFact{}) {
		return
	}
	if fn.Pkg() == pass.Pkg {
		// Same package: the fact for fn was exported above if it signals.
		pass.Reportf(g.Pos(), "goroutine: go %s has no provable join: it signals completion through neither a parameter nor its receiver; add a WaitGroup/done channel or annotate it //sanlint:daemon", fn.Name())
		return
	}
	pass.Reportf(g.Pos(), "goroutine: go %s.%s has no provable join: pass a *sync.WaitGroup or channel, or annotate the launching function //sanlint:daemon", pkgName(fn), fn.Name())
}

// checkClosure validates a `go func(){...}()` launch.
func checkClosure(pass *analysis.Pass, fd *ast.FuncDecl, g *ast.GoStmt, lit *ast.FuncLit) {
	wgs, chans := closureSignals(pass, lit)
	if len(wgs) == 0 && len(chans) == 0 {
		pass.Reportf(g.Pos(), "goroutine: fire-and-forget goroutine: nothing in the closure signals completion (WaitGroup.Done, channel send, or close); join it or annotate the launching function //sanlint:daemon")
		return
	}
	var firstProblem string
	for _, wg := range wgs {
		if !isLocalOf(fd, wg) {
			return // caller-owned WaitGroup: its owner joins
		}
		if callsMethodBefore(pass, fd, wg, "Add", g.Pos()) {
			return
		}
		if firstProblem == "" {
			firstProblem = "goroutine: goroutine calls " + wg.Name() + ".Done but " + wg.Name() + ".Add is not called before the go statement"
		}
	}
	for _, ch := range chans {
		if !isLocalOf(fd, ch) {
			return // caller-owned channel: its owner collects
		}
		if receivesFrom(pass, fd, ch) {
			return
		}
		if firstProblem == "" {
			firstProblem = "goroutine: goroutine signals on " + ch.Name() + " but this function never receives from it"
		}
	}
	pass.Reportf(g.Pos(), "%s", firstProblem)
}

// closureSignals collects the WaitGroups the closure calls Done on and the
// channels it sends on or closes (by terminal object: a variable or a
// struct field).
func closureSignals(pass *analysis.Pass, lit *ast.FuncLit) (wgs, chans []types.Object) {
	seenWG := make(map[types.Object]bool)
	seenCh := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if obj := terminalObject(pass, n.Chan); obj != nil && !seenCh[obj] {
				seenCh[obj] = true
				chans = append(chans, obj)
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && len(n.Args) == 1 {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
					if obj := terminalObject(pass, n.Args[0]); obj != nil && !seenCh[obj] {
						seenCh[obj] = true
						chans = append(chans, obj)
					}
					return true
				}
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
					if obj := terminalObject(pass, sel.X); obj != nil && !seenWG[obj] {
						seenWG[obj] = true
						wgs = append(wgs, obj)
					}
				}
			}
		}
		return true
	})
	return wgs, chans
}

// signalsCompletion reports whether fd's body signals completion through a
// parameter or its receiver: wg.Done on a WaitGroup parameter, a send on /
// close of a channel parameter, or either through a receiver field.
func signalsCompletion(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	owned := make(map[types.Object]bool)
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					owned[obj] = true
				}
			}
		}
	}
	add(fd.Recv)
	add(fd.Type.Params)
	throughOwned := func(e ast.Expr) bool {
		if obj := terminalObject(pass, e); obj != nil {
			if owned[obj] {
				return true
			}
			// A receiver (or parameter) field: root the chain.
			if v, ok := obj.(*types.Var); ok && v.IsField() {
				if base := baseObject(pass, e); base != nil && owned[base] {
					return true
				}
			}
		}
		return false
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = throughOwned(n.Chan)
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && len(n.Args) == 1 {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
					found = throughOwned(n.Args[0])
					return !found
				}
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
					found = throughOwned(sel.X)
				}
			}
		}
		return !found
	})
	return found
}

// isLocalOf reports whether obj is declared inside fd's body (as opposed to
// a parameter, receiver, field, or outer-scope variable).
func isLocalOf(fd *ast.FuncDecl, obj types.Object) bool {
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		return false
	}
	return fd.Body.Pos() <= obj.Pos() && obj.Pos() <= fd.Body.End()
}

// callsMethodBefore reports whether fd's body calls obj.<name>(...) at a
// position before limit.
func callsMethodBefore(pass *analysis.Pass, fd *ast.FuncDecl, obj types.Object, name string, limit token.Pos) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= limit {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == name {
			if terminalObject(pass, sel.X) == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// receivesFrom reports whether fd's body receives from the channel object
// (<-ch or range ch), anywhere — join points usually follow the launch.
func receivesFrom(pass *analysis.Pass, fd *ast.FuncDecl, ch types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && terminalObject(pass, n.X) == ch {
				found = true
			}
		case *ast.RangeStmt:
			if isChan(pass.TypesInfo.TypeOf(n.X)) && terminalObject(pass, n.X) == ch {
				found = true
			}
		}
		return !found
	})
	return found
}

// terminalObject resolves an expression to the object that identifies the
// signalled handle: the variable for a bare identifier, the field for a
// selector chain (so e.yield in a closure and in the launcher match).
func terminalObject(pass *analysis.Pass, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[x]; obj != nil {
			return obj
		}
		return pass.TypesInfo.Defs[x]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[x.Sel]
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return terminalObject(pass, x.X)
		}
	}
	return nil
}

// baseObject walks a selector/index/star chain to its base identifier.
func baseObject(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			return pass.TypesInfo.Uses[x]
		default:
			return nil
		}
	}
}

func isWaitGroupPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	return ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}

func isChan(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

func pkgName(fn *types.Func) string {
	if fn.Pkg() != nil {
		return fn.Pkg().Name()
	}
	return "?"
}
