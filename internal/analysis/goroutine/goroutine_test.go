package goroutine_test

import (
	"testing"

	"sanmap/internal/analysis/analysistest"
	"sanmap/internal/analysis/goroutine"
)

func TestGoroutine(t *testing.T) {
	analysistest.Run(t, analysistest.Testdata(), goroutine.Analyzer, "goroutine")
}
