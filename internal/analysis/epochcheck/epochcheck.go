// Package epochcheck defines the sanlint analyzer that enforces the
// cache-invalidation contract of the route-prefix memo (internal/simnet/
// eval.go): memoized traversal state is keyed on an epoch/version counter,
// so every mutation of the guarded state must bump the counter in the same
// method — a forgotten bump silently serves stale routes.
//
// The contract is declared in the code with field annotations:
//
//	type Net struct {
//		topo *topology.Network //sanlint:topostate
//		...
//		epoch uint64 //sanlint:epoch
//	}
//
// Any method of the annotated struct that writes a //sanlint:topostate
// field of its receiver (plain assignment, op-assignment, ++/--, or
// delete()) must, in the same function body, either write the
// //sanlint:epoch field directly or call another method of the same type
// that does. Constructors and functions building other instances are out of
// scope: only writes rooted at the receiver are checked.
package epochcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"sanmap/internal/analysis"
)

// Analyzer enforces epoch bumps on annotated topology-bearing state.
var Analyzer = &analysis.Analyzer{
	Name: "epochcheck",
	Doc: "methods writing //sanlint:topostate fields must bump the " +
		"//sanlint:epoch counter in the same function (cache invalidation)",
	Run: run,
}

// contract is the annotation set of one struct type.
type contract struct {
	epochField string
	guarded    map[string]bool
}

func run(pass *analysis.Pass) (any, error) {
	contracts := collectContracts(pass)
	if len(contracts) == 0 {
		return nil, nil
	}

	// First pass: which methods bump the epoch field of their receiver
	// (directly) — these are valid bump delegates, e.g. Net.Reconfigure.
	bumpers := make(map[*types.Func]bool)
	forEachMethod(pass, contracts, func(fd *ast.FuncDecl, fn *types.Func, recv types.Object, c *contract) {
		if writesField(pass, fd.Body, recv, c.epochField) {
			bumpers[fn] = true
		}
	})

	// Second pass: guarded writes must be accompanied by a bump (direct
	// write or a call to a bumping method on the same receiver).
	forEachMethod(pass, contracts, func(fd *ast.FuncDecl, fn *types.Func, recv types.Object, c *contract) {
		writes := guardedWrites(pass, fd.Body, recv, c)
		if len(writes) == 0 {
			return
		}
		if bumpers[fn] || callsBumper(pass, fd.Body, recv, bumpers) {
			return
		}
		for _, w := range writes {
			pass.Reportf(w.pos, "method %s writes topology-bearing field %s but never bumps epoch field %s",
				fn.Name(), w.field, c.epochField)
		}
	})
	return nil, nil
}

// collectContracts finds annotated struct types: named type -> contract.
func collectContracts(pass *analysis.Pass) map[*types.TypeName]*contract {
	out := make(map[*types.TypeName]*contract)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				c := &contract{guarded: make(map[string]bool)}
				for _, field := range st.Fields.List {
					epoch := analysis.FieldHasAnnotation(field, "epoch")
					guarded := analysis.FieldHasAnnotation(field, "topostate")
					if !epoch && !guarded {
						continue
					}
					for _, name := range field.Names {
						if epoch {
							c.epochField = name.Name
						}
						if guarded {
							c.guarded[name.Name] = true
						}
					}
				}
				if c.epochField == "" && len(c.guarded) == 0 {
					continue
				}
				tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				if c.epochField == "" {
					pass.Reportf(ts.Pos(), "struct %s has //sanlint:topostate fields but no //sanlint:epoch field", ts.Name.Name)
					continue
				}
				out[tn] = c
			}
		}
	}
	return out
}

// forEachMethod invokes fn for every method declaration whose receiver's
// base type carries a contract.
func forEachMethod(pass *analysis.Pass, contracts map[*types.TypeName]*contract,
	visit func(*ast.FuncDecl, *types.Func, types.Object, *contract)) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			names := fd.Recv.List[0].Names
			if len(names) != 1 || names[0].Name == "_" {
				continue
			}
			recv := pass.TypesInfo.Defs[names[0]]
			if recv == nil {
				continue
			}
			tn := receiverTypeName(recv.Type())
			if tn == nil {
				continue
			}
			c, ok := contracts[tn]
			if !ok {
				continue
			}
			visit(fd, fn, recv, c)
		}
	}
}

// receiverTypeName unwraps *T / T receivers to the named type's TypeName.
func receiverTypeName(t types.Type) *types.TypeName {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

type write struct {
	pos   token.Pos
	field string
}

// guardedWrites returns the guarded-field writes rooted at the receiver.
func guardedWrites(pass *analysis.Pass, body *ast.BlockStmt, recv types.Object, c *contract) []write {
	var out []write
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if f := receiverField(pass, lhs, recv); f != "" && c.guarded[f] {
					out = append(out, write{pos: lhs.Pos(), field: f})
				}
			}
		case *ast.IncDecStmt:
			if f := receiverField(pass, n.X, recv); f != "" && c.guarded[f] {
				out = append(out, write{pos: n.Pos(), field: f})
			}
		case *ast.CallExpr:
			// delete(recv.f, k) mutates a guarded map.
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "delete" && len(n.Args) == 2 {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					if f := receiverField(pass, n.Args[0], recv); f != "" && c.guarded[f] {
						out = append(out, write{pos: n.Pos(), field: f})
					}
				}
			}
		}
		return true
	})
	return out
}

// writesField reports whether body assigns or ++/--es recv.<field>.
func writesField(pass *analysis.Pass, body *ast.BlockStmt, recv types.Object, field string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if receiverField(pass, lhs, recv) == field {
					found = true
				}
			}
		case *ast.IncDecStmt:
			if receiverField(pass, n.X, recv) == field {
				found = true
			}
		}
		return !found
	})
	return found
}

// callsBumper reports whether body calls a method on recv that is known to
// bump the epoch (e.g. n.Reconfigure()).
func callsBumper(pass *analysis.Pass, body *ast.BlockStmt, recv types.Object, bumpers map[*types.Func]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return !found
		}
		base, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[base] != recv {
			return !found
		}
		if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && bumpers[fn] {
			found = true
		}
		return !found
	})
	return found
}

// receiverField returns the first-level field name when expr is a write
// target rooted at the receiver: recv.f, recv.f[i], recv.f[i].g, ... — the
// field of the receiver through which the mutation flows.
func receiverField(pass *analysis.Pass, expr ast.Expr, recv types.Object) string {
	// Walk down to the base, remembering the selector closest to the root.
	var first *ast.SelectorExpr
	e := ast.Unparen(expr)
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			first = x
			e = ast.Unparen(x.X)
		case *ast.IndexExpr:
			e = ast.Unparen(x.X)
		case *ast.SliceExpr:
			e = ast.Unparen(x.X)
		case *ast.StarExpr:
			e = ast.Unparen(x.X)
		case *ast.Ident:
			if first != nil && pass.TypesInfo.Uses[x] == recv {
				return first.Sel.Name
			}
			return ""
		default:
			return ""
		}
	}
}
