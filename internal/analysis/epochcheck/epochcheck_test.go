package epochcheck_test

import (
	"testing"

	"sanmap/internal/analysis/analysistest"
	"sanmap/internal/analysis/epochcheck"
)

func TestEpochcheck(t *testing.T) {
	analysistest.Run(t, analysistest.Testdata(), epochcheck.Analyzer, "epochcheck")
}
