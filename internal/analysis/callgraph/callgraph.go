// Package callgraph defines the shared call-graph input the interprocedural
// sanlint analyzers build on. It is not a check: it reports nothing. Each
// pass computes a lightweight static call graph of the package under
// analysis — one node per declared function or method, edges to every
// statically-resolved callee (direct calls and concrete method calls,
// including cross-package ones) — and returns it as the pass result, so
// analyzers listing callgraph in Requires receive it via Pass.ResultOf.
//
// Dynamic dispatch is out of scope by design: calls through interface
// methods, function-typed variables and fields resolve to no edge. The
// consuming rules treat those the way hotpath's h7 always has — as outside
// the annotation's static reach, guarded instead by the runtime gates.
package callgraph

import (
	"go/ast"
	"go/types"
	"sort"

	"sanmap/internal/analysis"
)

// Analyzer computes the per-package static call graph. It reports no
// diagnostics; its result (*Graph) feeds dependent analyzers.
var Analyzer = &analysis.Analyzer{
	Name: "callgraph",
	Doc: "builds the intra-module static call graph consumed by the " +
		"interprocedural analyzers (hotpath h7, determinism taint, lockcheck)",
	Run: run,
}

// Graph is the static call graph of one package.
type Graph struct {
	// Funcs maps the ObjectKey of every function or method declared in the
	// package to its object.
	Funcs map[string]*types.Func
	// Decls maps the same keys to the declarations, for analyzers that
	// re-walk bodies.
	Decls map[string]*ast.FuncDecl
	// Callees maps a declared function's key to its statically-resolved
	// callees — local and imported — sorted and deduplicated. Values are
	// objects, so consumers can both key on them and import facts.
	Callees map[string][]*types.Func
}

func run(pass *analysis.Pass) (any, error) {
	g := &Graph{
		Funcs:   make(map[string]*types.Func),
		Decls:   make(map[string]*ast.FuncDecl),
		Callees: make(map[string][]*types.Func),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			key := analysis.ObjectKey(fn)
			if key == "" {
				continue
			}
			g.Funcs[key] = fn
			g.Decls[key] = fd
			g.Callees[key] = callees(pass, fd.Body)
		}
	}
	return g, nil
}

// callees collects the statically-resolved callees of one body.
func callees(pass *analysis.Pass, body *ast.BlockStmt) []*types.Func {
	seen := make(map[string]*types.Func)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := analysis.StaticCallee(pass.TypesInfo, call); fn != nil {
			seen[analysis.ObjectKey(fn)] = fn
		}
		return true
	})
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*types.Func, len(keys))
	for i, k := range keys {
		out[i] = seen[k]
	}
	return out
}
