// Package cluster builds the Berkeley NOW networks of the paper's
// evaluation (§5.1): the A, B and C subclusters and their C, C+A, C+A+B
// compositions, with exactly the component counts of Fig 3:
//
//	subcluster  #interfaces  #switches  #links
//	A           34           13         64
//	B           30           14         65
//	C           36           13         64
//	C+A+B       100          40         193
//
// Each subcluster is an incomplete fat tree in the style of Fig 4: a row of
// leaf switches carrying 4-5 hosts each, a middle level, and a root level,
// with irregularities matching the paper's description ("the middle switch
// in the first level only has two links, instead of three ... the third was
// faulty and removed, but never replaced", unused ports on upper levels,
// and a distinguished utility host attached directly to a root). The exact
// cabling of the real machine room is not recorded in the paper; what the
// experiments depend on are the aggregate counts, depths and the fat-tree
// shape, all of which these builders reproduce and the package tests pin.
//
// Compositions preserve Fig 3's totals (the paper's per-subcluster counts
// sum exactly to the full system's): redundant top-level links inside
// subclusters are repurposed as inter-subcluster root links.
//
// The builders accept an optional *rand.Rand to randomise port embeddings
// (nil keeps them deterministic); System.Mapper picks the paper's mapping
// host. Synthetic fabrics beyond the NOW (fat-trees, dragonflies, random
// networks) live in internal/genspec instead.
package cluster
