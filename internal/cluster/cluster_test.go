package cluster

import (
	"math/rand"
	"testing"

	"sanmap/internal/topology"
)

// TestPaperCounts pins Fig 3: each subcluster and each composed system must
// reproduce the paper's exact component counts.
func TestPaperCounts(t *testing.T) {
	for _, s := range []Subcluster{A, B, C} {
		got := Build(nil, s).Net.Stats()
		if want := PaperStats(s); got != want {
			t.Errorf("subcluster %c: stats %+v, want %+v", s, got, want)
		}
	}
	cases := []struct {
		name string
		sys  *System
		want topology.Stats
	}{
		{"C", CConfig(nil), topology.Stats{Hosts: 36, Switches: 13, Links: 64}},
		{"C+A", CAConfig(nil), topology.Stats{Hosts: 70, Switches: 26, Links: 128}},
		{"C+A+B", CABConfig(nil), topology.Stats{Hosts: 100, Switches: 40, Links: 193}},
	}
	for _, c := range cases {
		if got := c.sys.Net.Stats(); got != c.want {
			t.Errorf("%s: stats %+v, want %+v", c.name, got, c.want)
		}
	}
}

// TestStructuralProperties checks the fat-tree shape claims the experiments
// rely on: validity, connectivity, empty F, utility host at a root.
func TestStructuralProperties(t *testing.T) {
	for _, sys := range []*System{CConfig(nil), CAConfig(nil), CABConfig(nil)} {
		net := sys.Net
		if err := net.Validate(); err != nil {
			t.Fatalf("invalid: %v", err)
		}
		if !net.IsConnected() {
			t.Fatal("disconnected")
		}
		if f := net.F(); len(f) != 0 {
			t.Errorf("expected empty F, got %d nodes", len(f))
		}
		if sys.Utility == topology.None {
			t.Fatal("missing utility host")
		}
		sw, _, ok := net.HostSwitch(sys.Utility)
		if !ok {
			t.Fatal("utility host disconnected")
		}
		// The utility machine is attached directly to a root switch: its
		// switch must carry no other hosts... actually it may carry only
		// the utility machine itself.
		for _, h := range net.Hosts() {
			if h == sys.Utility {
				continue
			}
			if hs, _, _ := net.HostSwitch(h); hs == sw {
				t.Errorf("regular host %s shares the utility root switch", net.NameOf(h))
			}
		}
	}
}

// TestPortBudget: no switch may exceed 8 cabled ports (Validate enforces
// structure, this asserts the builders left headroom like the paper's
// "unused switch ports on all level 2 and 3 switches").
func TestPortBudget(t *testing.T) {
	net := CABConfig(nil).Net
	spare := 0
	for _, s := range net.Switches() {
		d := net.Degree(s)
		if d > topology.SwitchPorts {
			t.Fatalf("switch %s degree %d", net.NameOf(s), d)
		}
		spare += topology.SwitchPorts - d
	}
	if spare == 0 {
		t.Error("expected unused switch ports in the composed system")
	}
}

// TestSeedInvariance: random port assignment must not change the graph
// (same stats, same diameter) — only the cabling detail.
func TestSeedInvariance(t *testing.T) {
	base := CABConfig(nil).Net
	for seed := int64(1); seed <= 3; seed++ {
		n := CABConfig(rand.New(rand.NewSource(seed))).Net
		if n.Stats() != base.Stats() {
			t.Fatalf("seed %d changed stats: %+v vs %+v", seed, n.Stats(), base.Stats())
		}
		if n.Diameter() != base.Diameter() {
			t.Errorf("seed %d changed diameter: %d vs %d", seed, n.Diameter(), base.Diameter())
		}
	}
}

// TestDepthScale documents the exploration-depth parameters of the three
// systems (used to size the experiments).
func TestDepthScale(t *testing.T) {
	for _, c := range []struct {
		name string
		sys  *System
	}{{"C", CConfig(nil)}, {"C+A", CAConfig(nil)}, {"C+A+B", CABConfig(nil)}} {
		net := c.sys.Net
		d := net.Diameter()
		if d < 4 || d > 12 {
			t.Errorf("%s: implausible diameter %d for a 3-level fat tree", c.name, d)
		}
	}
}
