package cluster

import (
	"fmt"
	"math/rand"

	"sanmap/internal/topology"
)

// Subcluster identifies one of the three NOW subclusters.
type Subcluster byte

// The three subclusters of the Berkeley NOW.
const (
	A Subcluster = 'A'
	B Subcluster = 'B'
	C Subcluster = 'C'
)

// build describes one subcluster's shape.
type build struct {
	leaves       int
	hostsPerLeaf []int // len == leaves
	mids         int
	roots        int
	// uplinks[i] is the number of leaf->mid links for leaf i.
	uplinks []int
	// midRoot[i] is the number of mid->root links for mid i.
	midRoot []int
	// extraTop is the number of redundant top-level links (doubled
	// mid-root or root-root cables). These are the links the compositions
	// repurpose as inter-subcluster cables.
	extraTop int
	utility  bool // utility host cabled directly to root 0
}

func specOf(s Subcluster) build {
	switch s {
	case C:
		// 36 hosts (35 + utility), 13 switches (8+4+1), 64 links:
		// 36 host + 23 leaf-up (one leaf lost a link) + 4 mid-root + 1 extra.
		return build{
			leaves:       8,
			hostsPerLeaf: []int{4, 4, 4, 5, 5, 4, 4, 5}, // 35
			mids:         4,
			roots:        1,
			uplinks:      []int{3, 3, 3, 3, 2, 3, 3, 3}, // 23: middle leaf irregular
			midRoot:      []int{1, 1, 1, 1},
			extraTop:     1, // doubled mid0-root cable
			utility:      true,
		}
	case A:
		// 34 hosts, 13 switches (8+4+1), 64 links:
		// 34 host + 24 leaf-up + 4 mid-root + 2 extra.
		return build{
			leaves:       8,
			hostsPerLeaf: []int{4, 4, 5, 4, 4, 5, 4, 4}, // 34
			mids:         4,
			roots:        1,
			uplinks:      []int{3, 3, 3, 3, 3, 3, 3, 3}, // 24
			midRoot:      []int{1, 1, 1, 1},
			extraTop:     2,
		}
	case B:
		// 30 hosts, 14 switches (7+5+2), 65 links:
		// 30 host + 24 leaf-up + 10 mid-root + 1 root-root.
		return build{
			leaves:       7,
			hostsPerLeaf: []int{4, 4, 4, 4, 4, 5, 5}, // 30
			mids:         5,
			roots:        2,
			uplinks:      []int{4, 4, 4, 3, 3, 3, 3}, // 24
			midRoot:      []int{2, 2, 2, 2, 2},       // 10
			extraTop:     1,                          // root0-root1 cable
		}
	}
	panic(fmt.Sprintf("cluster: unknown subcluster %q", s))
}

// part holds the switch handles of one built subcluster.
type part struct {
	name  Subcluster
	roots []topology.NodeID
	// extras are wires that compositions may remove (redundant top links).
	extras []int
}

// addSubcluster builds one subcluster into net and returns its handles.
func addSubcluster(net *topology.Network, s Subcluster, hostBase int, rng *rand.Rand) part {
	sp := specOf(s)
	p := part{name: s}
	var leaves, mids, roots []topology.NodeID
	for i := 0; i < sp.leaves; i++ {
		leaves = append(leaves, net.AddSwitch(fmt.Sprintf("%c-L%d", s, i)))
	}
	for i := 0; i < sp.mids; i++ {
		mids = append(mids, net.AddSwitch(fmt.Sprintf("%c-M%d", s, i)))
	}
	for i := 0; i < sp.roots; i++ {
		roots = append(roots, net.AddSwitch(fmt.Sprintf("%c-R%d", s, i)))
	}
	p.roots = roots
	host := hostBase
	for i, leaf := range leaves {
		for k := 0; k < sp.hostsPerLeaf[i]; k++ {
			h := net.AddHost(fmt.Sprintf("Node%d", host))
			host++
			mustConnect(net, h, leaf, rng)
		}
	}
	// Leaf uplinks round-robin over mids.
	next := 0
	for i, leaf := range leaves {
		for k := 0; k < sp.uplinks[i]; k++ {
			mustConnect(net, leaf, mids[next%len(mids)], rng)
			next++
		}
	}
	// Mid uplinks round-robin over roots.
	next = 0
	for i, mid := range mids {
		for k := 0; k < sp.midRoot[i]; k++ {
			mustConnect(net, mid, roots[next%len(roots)], rng)
			next++
		}
	}
	// Redundant top links: doubled mid-root cables, or a root-root cable
	// when the subcluster has two roots.
	for k := 0; k < sp.extraTop; k++ {
		var w int
		if len(roots) > 1 {
			w = mustConnect(net, roots[0], roots[1], rng)
		} else {
			w = mustConnect(net, mids[k%len(mids)], roots[0], rng)
		}
		p.extras = append(p.extras, w)
	}
	if sp.utility {
		u := net.AddHost(fmt.Sprintf("Util%c", s))
		mustConnect(net, u, roots[0], rng)
		host++
	}
	return p
}

func mustConnect(net *topology.Network, a, b topology.NodeID, rng *rand.Rand) int {
	ap := randomFree(net, a, rng, -1)
	bp := randomFree(net, b, rng, ap)
	if ap < 0 || bp < 0 {
		panic(fmt.Sprintf("cluster: no free ports between %d and %d", a, b))
	}
	w, err := net.Connect(a, ap, b, bp)
	if err != nil {
		panic(err)
	}
	return w
}

func randomFree(net *topology.Network, id topology.NodeID, rng *rand.Rand, avoid int) int {
	var free []int
	for p := 0; p < net.NumPorts(id); p++ {
		if net.WireAt(id, p) < 0 && p != avoid {
			free = append(free, p)
		}
	}
	if len(free) == 0 {
		return -1
	}
	if rng == nil {
		return free[0]
	}
	return free[rng.Intn(len(free))]
}

// System is a built NOW configuration.
type System struct {
	Net *topology.Network
	// Utility is the distinguished service host ("a machine dedicated to
	// running system services (e.g., nameservers or the active mapper
	// process)") when present, else topology.None.
	Utility topology.NodeID
	// Parts names the subclusters included, in build order.
	Parts []Subcluster
}

// Mapper returns the host the paper runs the active mapper on: the utility
// machine when present, else the first host.
func (s *System) Mapper() topology.NodeID {
	if s.Utility != topology.None {
		return s.Utility
	}
	return s.Net.Hosts()[0]
}

// Build constructs a NOW configuration from the given subclusters in order
// (use CConfig, CAConfig, CABConfig for the paper's three systems). A nil
// rng yields deterministic first-free-port cabling; a seeded rng randomises
// port assignment without changing the graph.
func Build(rng *rand.Rand, subs ...Subcluster) *System {
	net := &topology.Network{}
	var parts []part
	hostBase := 0
	for _, s := range subs {
		p := addSubcluster(net, s, hostBase, rng)
		parts = append(parts, p)
		hostBase = net.NumHosts()
		if specOf(s).utility {
			hostBase-- // utility hosts are named UtilX, not NodeN
		}
	}
	// Compose: redundant top links inside subclusters are repurposed as
	// inter-subcluster root cables, one addition per removal, so Fig 3's
	// per-subcluster link counts sum exactly to the composed system's.
	switch len(parts) {
	case 1:
		// Standalone subcluster: nothing to do.
	case 2:
		takeExtra(net, &parts[0])
		takeExtra(net, &parts[1])
		r0, r1 := parts[0].roots[0], parts[1].roots[0]
		mustConnect(net, r0, r1, nil)
		mustConnect(net, r0, r1, nil)
	case 3:
		// Drain all four provisioned extras (C:1, A:2, B:1) and wire a
		// multi-root top level in the style of Fig 5.
		total := 0
		for i := range parts {
			for len(parts[i].extras) > 0 {
				takeExtra(net, &parts[i])
				total++
			}
		}
		if total != 4 {
			panic(fmt.Sprintf("cluster: expected 4 redundant links for a 3-part system, had %d", total))
		}
		cr := parts[0].roots[0]
		ar := parts[1].roots[0]
		br0 := parts[2].roots[0]
		br1 := parts[2].roots[len(parts[2].roots)-1]
		mustConnect(net, cr, ar, nil)
		mustConnect(net, ar, br0, nil)
		mustConnect(net, br1, cr, nil)
		mustConnect(net, ar, br1, nil)
	default:
		panic("cluster: at most three subclusters")
	}
	sys := &System{Net: net, Parts: subs, Utility: topology.None}
	for _, s := range subs {
		if u := net.Lookup(fmt.Sprintf("Util%c", s)); u != topology.None {
			sys.Utility = u
			break
		}
	}
	if err := net.Validate(); err != nil {
		panic(fmt.Sprintf("cluster: built invalid network: %v", err))
	}
	if !net.IsConnected() {
		panic("cluster: built disconnected network")
	}
	return sys
}

// takeExtra removes one redundant top link from p (panics if exhausted —
// the specs provision exactly enough for the paper's compositions).
func takeExtra(net *topology.Network, p *part) {
	if len(p.extras) == 0 {
		panic(fmt.Sprintf("cluster: subcluster %c out of redundant links", p.name))
	}
	w := p.extras[len(p.extras)-1]
	p.extras = p.extras[:len(p.extras)-1]
	if err := net.RemoveWire(w); err != nil {
		panic(err)
	}
}

// CConfig builds subcluster C alone (row 1 of Figs 6 and 7).
func CConfig(rng *rand.Rand) *System { return Build(rng, C) }

// CAConfig builds C+A (row 2).
func CAConfig(rng *rand.Rand) *System { return Build(rng, C, A) }

// CABConfig builds the full 100-node C+A+B system (row 3, Fig 5).
func CABConfig(rng *rand.Rand) *System { return Build(rng, C, A, B) }

// PaperStats returns Fig 3's counts for a subcluster.
func PaperStats(s Subcluster) topology.Stats {
	switch s {
	case A:
		return topology.Stats{Hosts: 34, Switches: 13, Links: 64}
	case B:
		return topology.Stats{Hosts: 30, Switches: 14, Links: 65}
	case C:
		return topology.Stats{Hosts: 36, Switches: 13, Links: 64}
	}
	panic("cluster: unknown subcluster")
}
