package dot

import (
	"math/rand"
	"strings"
	"testing"

	"sanmap/internal/topology"
)

func TestGraphDOT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := topology.MustStar(2, 2, rng)
	sw := n.Switches()[0]
	if p := n.FreePort(sw); p >= 0 {
		if err := n.AddReflector(sw, p); err != nil {
			t.Fatal(err)
		}
	}
	out := Graph(n, "test")
	for _, want := range []string{"graph \"test\"", "shape=box", "shape=record", "--", "loop"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	for _, h := range n.Hosts() {
		if !strings.Contains(out, n.NameOf(h)) {
			t.Errorf("DOT missing host %s", n.NameOf(h))
		}
	}
	// Every live wire appears exactly once.
	if got, want := strings.Count(out, " -- "), n.NumWires()+len(n.Reflectors()); got != want {
		t.Errorf("edge lines %d, want %d", got, want)
	}
}

func TestASCII(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := topology.MustStar(2, 2, rng) // hub switch carries no hosts: level 2
	out := ASCII(n)
	if !strings.Contains(out, "4 hosts, 3 switches") {
		t.Errorf("summary missing:\n%s", out)
	}
	if !strings.Contains(out, "level 1:") || !strings.Contains(out, "level 2:") {
		t.Errorf("levels missing:\n%s", out)
	}
	for _, name := range n.SortedHostNames() {
		if !strings.Contains(out, name) {
			t.Errorf("ASCII missing host %s", name)
		}
	}
}
