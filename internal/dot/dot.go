// Package dot renders networks as Graphviz DOT and as indented ASCII — the
// output format of the paper's automatically-generated network maps
// (Figs 4 and 5 show hosts along the top, levels of switches below, port
// numbers on each switch).
package dot

import (
	"fmt"
	"sort"
	"strings"

	"sanmap/internal/topology"
)

// Graph renders the network as a Graphviz DOT document. Hosts are boxes
// labelled with their unique names; switches are records showing their
// cabled ports, in the style of the paper's figures.
func Graph(n *topology.Network, title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", title)
	b.WriteString("  rankdir=TB;\n  node [fontsize=10];\n")
	for _, h := range n.Hosts() {
		fmt.Fprintf(&b, "  n%d [shape=box, label=%q];\n", h, n.NameOf(h))
	}
	for _, s := range n.Switches() {
		label := n.NameOf(s)
		if label == "" {
			label = fmt.Sprintf("sw%d", s)
		}
		var ports []string
		for p := 0; p < n.NumPorts(s); p++ {
			if n.WireAt(s, p) >= 0 || n.ReflectorAt(s, p) {
				ports = append(ports, fmt.Sprintf("<p%d> %d", p, p))
			}
		}
		fmt.Fprintf(&b, "  n%d [shape=record, label=\"{%s|{%s}}\"];\n",
			s, label, strings.Join(ports, "|"))
	}
	n.WiresIndexed(func(_ int, w topology.Wire) {
		a, bnd := w.A, w.B
		fmt.Fprintf(&b, "  n%d%s -- n%d%s;\n",
			a.Node, portRef(n, a), bnd.Node, portRef(n, bnd))
	})
	for _, e := range n.Reflectors() {
		fmt.Fprintf(&b, "  n%d:p%d -- n%d:p%d [style=dashed, label=\"loop\"];\n",
			e.Node, e.Port, e.Node, e.Port)
	}
	b.WriteString("}\n")
	return b.String()
}

func portRef(n *topology.Network, e topology.End) string {
	if n.KindOf(e.Node) == topology.SwitchNode {
		return fmt.Sprintf(":p%d", e.Port)
	}
	return ""
}

// ASCII renders the network as a host-rooted level diagram: hosts first,
// then switches grouped by distance from the hosts, each with its port
// assignments — a terminal approximation of Fig 4.
func ASCII(n *topology.Network) string {
	var b strings.Builder
	s := n.Stats()
	fmt.Fprintf(&b, "network: %d hosts, %d switches, %d links\n", s.Hosts, s.Switches, s.Links)

	// Level = min distance to any host.
	level := make(map[topology.NodeID]int)
	maxLevel := 0
	for _, sw := range n.Switches() {
		dist := n.BFS(sw)
		best := -1
		for _, h := range n.Hosts() {
			if d := dist[h]; d >= 0 && (best < 0 || d < best) {
				best = d
			}
		}
		level[sw] = best
		if best > maxLevel {
			maxLevel = best
		}
	}
	hostNames := n.SortedHostNames()
	fmt.Fprintf(&b, "hosts: %s\n", strings.Join(hostNames, " "))
	for lv := 1; lv <= maxLevel; lv++ {
		var rows []string
		for _, sw := range n.Switches() {
			if level[sw] != lv {
				continue
			}
			name := n.NameOf(sw)
			if name == "" {
				name = fmt.Sprintf("sw%d", sw)
			}
			var ports []string
			for p := 0; p < n.NumPorts(sw); p++ {
				if end, ok := n.Neighbor(sw, p); ok {
					far := n.NameOf(end.Node)
					if far == "" {
						far = fmt.Sprintf("sw%d", end.Node)
					}
					ports = append(ports, fmt.Sprintf("%d->%s:%d", p, far, end.Port))
				} else if n.ReflectorAt(sw, p) {
					ports = append(ports, fmt.Sprintf("%d->loop", p))
				}
			}
			rows = append(rows, fmt.Sprintf("  %-8s [%s]", name, strings.Join(ports, " ")))
		}
		sort.Strings(rows)
		fmt.Fprintf(&b, "level %d:\n%s\n", lv, strings.Join(rows, "\n"))
	}
	return b.String()
}
