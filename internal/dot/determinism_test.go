package dot_test

import (
	"math/rand"
	"testing"

	"sanmap/internal/dot"
	"sanmap/internal/mapper"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// mapToDOT runs the Berkeley mapper from the first host and renders the
// resulting map as DOT and ASCII.
func mapToDOT(t *testing.T, net *topology.Network) (string, string) {
	t.Helper()
	h0 := net.Hosts()[0]
	sn := simnet.NewDefault(net)
	m, err := mapper.Run(sn.Endpoint(h0), mapper.WithDepth(net.DepthBound(h0)))
	if err != nil {
		t.Fatalf("mapper.Run: %v", err)
	}
	return dot.Graph(m.Network, "map"), dot.ASCII(m.Network)
}

// TestRenderByteIdentical is the reproducibility gate the determinism
// analyzer backs statically: two independent mapper runs over the same
// network must render byte-identical DOT and ASCII. Go randomizes map
// iteration order per range statement even within one process, so a single
// re-run catches order-dependent export paths.
func TestRenderByteIdentical(t *testing.T) {
	topos := []struct {
		name  string
		build func() *topology.Network
	}{
		{"mesh", func() *topology.Network {
			return topology.MustMesh(3, 3, 2, rand.New(rand.NewSource(5)))
		}},
		{"fattree", func() *topology.Network {
			return topology.MustRandomConnected(5, 7, 2, rand.New(rand.NewSource(9)))
		}},
	}
	for _, tc := range topos {
		t.Run(tc.name, func(t *testing.T) {
			g1, a1 := mapToDOT(t, tc.build())
			g2, a2 := mapToDOT(t, tc.build())
			if g1 != g2 {
				t.Errorf("DOT output differs between identical runs:\n--- run 1\n%s\n--- run 2\n%s", g1, g2)
			}
			if a1 != a2 {
				t.Errorf("ASCII output differs between identical runs:\n--- run 1\n%s\n--- run 2\n%s", a1, a2)
			}
		})
	}
}
