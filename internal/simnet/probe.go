package simnet

import (
	"errors"
	"fmt"
	"time"
)

// This file defines the unified probe request/response API that subsumes the
// four historical prober interfaces (Prober, RawProber, IDProber,
// TolerantProber). A probe is a value with a Kind; a transport reports which
// kinds it supports through Probes(); and the asynchronous Submit/Collect
// pair decouples issuing a probe from waiting for its response, which is
// what lets the mappers overlap response timeouts (§6's parallel-probing
// direction: sequential round trips, not wire time, dominate mapping cost).

// Sentinel errors for probe outcomes. Transports wrap or return these so
// callers can classify failures with errors.Is.
var (
	// ErrTimeout reports that a probe produced no response within the
	// response timeout (the paper's "nothing" outcome).
	ErrTimeout = errors.New("simnet: probe timed out")
	// ErrNoResponder reports that a probe physically reached a host that
	// runs no responder daemon — it still costs the full timeout, but the
	// failure class matters to robustness analyses (Fig 9).
	ErrNoResponder = errors.New("simnet: probe reached a silent host")
	// ErrUnsupported reports a probe kind the transport cannot execute
	// (see AsyncProber.Probes).
	ErrUnsupported = errors.New("simnet: probe kind not supported by transport")
	// ErrTruncated reports a probe worm cut short in flight — a dropped
	// tail flit or CRC failure destroyed the message before it reached its
	// destination. Observable only under fault injection; the mapper sees
	// it as "nothing" but robustness analyses classify it separately.
	ErrTruncated = errors.New("simnet: probe worm truncated in flight")
)

// ProbeKind enumerates the probe types of the unified API.
type ProbeKind uint8

const (
	// ProbeHost is the §2.3 host probe: deliver along the route, a
	// responding host answers with its name over the reversed route.
	ProbeHost ProbeKind = iota
	// ProbeSwitch is the §2.3 switch probe: the loopback message
	// turns a1..ak 0 −ak..−a1 must return to the sender.
	ProbeSwitch
	// ProbeRaw sends an arbitrary routing address and succeeds when the
	// message returns to the sender (Myricom comparison/loop-cable probes).
	ProbeRaw
	// ProbeID is the §6 self-identifying-switch oracle probe.
	ProbeID
	// ProbeTolerant is the §6 tolerant host probe (hosts answer messages
	// arriving with leftover routing flits).
	ProbeTolerant
)

// String names the kind.
func (k ProbeKind) String() string {
	switch k {
	case ProbeHost:
		return "host"
	case ProbeSwitch:
		return "switch"
	case ProbeRaw:
		return "raw"
	case ProbeID:
		return "id"
	case ProbeTolerant:
		return "tolerant"
	}
	return fmt.Sprintf("probe(%d)", uint8(k))
}

// Probe is one probe request. For ProbeHost, ProbeSwitch, ProbeID and
// ProbeTolerant the Route is the turn prefix a1..ak; for ProbeRaw it is the
// complete routing address.
type Probe struct {
	Kind  ProbeKind
	Route Route
	// Timeout overrides the transport's response timeout when positive.
	Timeout time.Duration
}

// ProbeResult is the response to one Probe.
type ProbeResult struct {
	// Probe echoes the request.
	Probe Probe
	// OK reports a response (host name, returned loopback, or id stamp).
	OK bool
	// Host is the responding host's unique name (ProbeHost/ProbeTolerant).
	Host string
	// Consumed is the number of turns the network applied before the
	// responder was reached (ProbeTolerant).
	Consumed int
	// SwitchID and EntryPort carry the §6 self-identification stamp
	// (ProbeID).
	SwitchID  int
	EntryPort int
	// Err classifies a failure (ErrTimeout, ErrNoResponder,
	// ErrUnsupported); nil when OK.
	Err error
	// Done is the virtual time at which the response (or timeout) completes.
	Done time.Duration
	// Latency is Done minus the submission time.
	Latency time.Duration
	// Cached marks results served from a ProbeWindow cache (no message was
	// sent and no virtual time elapsed).
	Cached bool
}

// ProbeCaps is the capability set a transport reports via Probes().
type ProbeCaps uint16

const (
	// CapHost: the transport executes ProbeHost.
	CapHost ProbeCaps = 1 << iota
	// CapSwitch: the transport executes ProbeSwitch.
	CapSwitch
	// CapRaw: the transport executes ProbeRaw.
	CapRaw
	// CapID: the transport executes ProbeID (§6 hardware extension).
	CapID
	// CapTolerant: the transport executes ProbeTolerant (§6 firmware
	// extension).
	CapTolerant
)

// Has reports whether every capability in want is present.
func (c ProbeCaps) Has(want ProbeCaps) bool { return c&want == want }

// CapOf maps a probe kind to its capability bit.
func CapOf(k ProbeKind) ProbeCaps {
	switch k {
	case ProbeHost:
		return CapHost
	case ProbeSwitch:
		return CapSwitch
	case ProbeRaw:
		return CapRaw
	case ProbeID:
		return CapID
	case ProbeTolerant:
		return CapTolerant
	}
	return 0
}

// AsyncProber is the pipelined probe interface. Submit issues a probe —
// paying only the per-probe host overhead — and returns a channel that
// yields the eventual result; the caller's virtual clock does not wait for
// the response. Collect synchronises the caller's clock with a result's
// completion time; collecting results in submission order keeps every run
// deterministic. The channel is buffered and already holds the result by
// the time Submit returns, so receiving from it never blocks.
//
// Submit-then-immediately-Collect is arithmetically identical to the
// synchronous probe methods, which is how the window=1 configuration
// reproduces the serial transcript byte for byte.
type AsyncProber interface {
	// Submit issues a probe and returns its pending result.
	Submit(p Probe) <-chan ProbeResult
	// Collect advances the caller's virtual clock to the result's Done time
	// (no-op if the clock is already past it).
	Collect(r ProbeResult)
	// Probes reports which probe kinds the transport supports.
	Probes() ProbeCaps
	// LocalHost is the unique name of the probing host.
	LocalHost() string
	// Clock is the prober's elapsed virtual time.
	Clock() time.Duration
}

// DirectProber is the channel-free fast path over AsyncProber. Every
// transport in this repo completes a probe at Submit time (the result
// channel is buffered and already filled when Submit returns), so the
// channel exists only to satisfy the interface — one heap allocation and
// two synchronisation points per probe for nothing. SubmitDirect is the
// same operation returning the result inline; the ProbeWindow detects the
// capability and routes every probe through it. Submit and SubmitDirect
// must be observationally identical: same clock billing, same counters,
// same result.
type DirectProber interface {
	AsyncProber
	// SubmitDirect issues a probe and returns its completed result without
	// channel plumbing.
	SubmitDirect(p Probe) ProbeResult
}

// BatchProber is the batched fast path over AsyncProber: SubmitBatch
// issues len(ps) probes in submission order, filling out[i] with the i-th
// result. It must be observationally identical to len(ps) sequential
// Submit calls; transports use the batch boundary to hoist per-probe
// setup (turn-bound lookups, memo key validation) out of the loop — see
// Net.EvalBatch.
type BatchProber interface {
	AsyncProber
	// SubmitBatch issues every probe in order; out must have len(ps).
	SubmitBatch(ps []Probe, out []ProbeResult)
}

// SyncAdapter exposes the legacy synchronous prober methods on top of any
// AsyncProber, so code written against Prober/RawProber/IDProber/
// TolerantProber runs unchanged over a purely asynchronous transport.
type SyncAdapter struct {
	P AsyncProber
}

// do submits one probe and immediately collects it (the serial pattern).
func (s SyncAdapter) do(p Probe) ProbeResult {
	r := <-s.P.Submit(p)
	s.P.Collect(r)
	return r
}

// SwitchProbe implements Prober.
func (s SyncAdapter) SwitchProbe(turns Route) bool {
	return s.do(Probe{Kind: ProbeSwitch, Route: turns}).OK
}

// HostProbe implements Prober.
func (s SyncAdapter) HostProbe(turns Route) (string, bool) {
	r := s.do(Probe{Kind: ProbeHost, Route: turns})
	return r.Host, r.OK
}

// RawLoopback implements RawProber.
func (s SyncAdapter) RawLoopback(route Route) bool {
	return s.do(Probe{Kind: ProbeRaw, Route: route}).OK
}

// IDProbe implements IDProber.
func (s SyncAdapter) IDProbe(turns Route) (id, entryPort int, ok bool) {
	r := s.do(Probe{Kind: ProbeID, Route: turns})
	return r.SwitchID, r.EntryPort, r.OK
}

// TolerantHostProbe implements TolerantProber.
func (s SyncAdapter) TolerantHostProbe(route Route) (string, int, bool) {
	r := s.do(Probe{Kind: ProbeTolerant, Route: route})
	return r.Host, r.Consumed, r.OK
}

// LocalHost implements Prober.
func (s SyncAdapter) LocalHost() string { return s.P.LocalHost() }

// Clock implements Prober.
func (s SyncAdapter) Clock() time.Duration { return s.P.Clock() }

// MaxPorts forwards the fabric's largest port count when the adapted
// transport exposes it (0 otherwise: callers fall back to the default).
func (s SyncAdapter) MaxPorts() int {
	if mp, ok := s.P.(interface{ MaxPorts() int }); ok {
		return mp.MaxPorts()
	}
	return 0
}

// AsyncAdapter lifts a legacy synchronous Prober into the AsyncProber API.
// The adapted transport executes each probe at Submit time and completes it
// immediately (Done equals the post-probe clock), so it gains the unified
// request type, capability reporting, caching and retry machinery — but not
// the timeout-overlap speedup, which needs native Submit/Collect support.
type AsyncAdapter struct {
	P Prober
}

// Submit implements AsyncProber by running the probe synchronously.
func (a AsyncAdapter) Submit(p Probe) <-chan ProbeResult {
	ch := make(chan ProbeResult, 1)
	ch <- a.SubmitDirect(p)
	close(ch)
	return ch
}

// SubmitDirect implements DirectProber: the synchronous probe result,
// without the channel.
func (a AsyncAdapter) SubmitDirect(p Probe) ProbeResult {
	r := ProbeResult{Probe: p}
	issue := a.P.Clock()
	switch p.Kind {
	case ProbeHost:
		r.Host, r.OK = a.P.HostProbe(p.Route)
	case ProbeSwitch:
		r.OK = a.P.SwitchProbe(p.Route)
	case ProbeRaw:
		if rp, ok := a.P.(RawProber); ok {
			r.OK = rp.RawLoopback(p.Route)
		} else {
			r.Err = ErrUnsupported
		}
	case ProbeID:
		if ip, ok := a.P.(IDProber); ok {
			r.SwitchID, r.EntryPort, r.OK = ip.IDProbe(p.Route)
		} else {
			r.Err = ErrUnsupported
		}
	case ProbeTolerant:
		if tp, ok := a.P.(TolerantProber); ok {
			r.Host, r.Consumed, r.OK = tp.TolerantHostProbe(p.Route)
		} else {
			r.Err = ErrUnsupported
		}
	default:
		r.Err = ErrUnsupported
	}
	if !r.OK && r.Err == nil {
		r.Err = ErrTimeout
	}
	r.Done = a.P.Clock()
	r.Latency = r.Done - issue
	return r
}

// SubmitBatch implements BatchProber by issuing the probes sequentially.
func (a AsyncAdapter) SubmitBatch(ps []Probe, out []ProbeResult) {
	for i, p := range ps {
		out[i] = a.SubmitDirect(p)
	}
}

// Collect implements AsyncProber. The adapted probe already ran to
// completion at Submit time, so there is nothing to wait for.
func (a AsyncAdapter) Collect(ProbeResult) {}

// Probes reports capabilities from the wrapped prober's method set.
func (a AsyncAdapter) Probes() ProbeCaps {
	caps := CapHost | CapSwitch
	if _, ok := a.P.(RawProber); ok {
		caps |= CapRaw
	}
	if _, ok := a.P.(IDProber); ok {
		caps |= CapID
	}
	if _, ok := a.P.(TolerantProber); ok {
		caps |= CapTolerant
	}
	return caps
}

// LocalHost implements AsyncProber.
func (a AsyncAdapter) LocalHost() string { return a.P.LocalHost() }

// Clock implements AsyncProber.
func (a AsyncAdapter) Clock() time.Duration { return a.P.Clock() }

// MaxPorts forwards the fabric's largest port count when the adapted
// transport exposes it (0 otherwise: callers fall back to the default).
func (a AsyncAdapter) MaxPorts() int {
	if mp, ok := a.P.(interface{ MaxPorts() int }); ok {
		return mp.MaxPorts()
	}
	return 0
}
