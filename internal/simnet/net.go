package simnet

import (
	"fmt"
	"time"

	"sanmap/internal/topology"
)

// Timing models the latency constants of the Berkeley NOW's Myrinet
// hardware (§1.1) and of the user-level mapper implementation (§5.2: probe
// timings are dominated by per-probe software overhead, and "probes that do
// not generate responses are more expensive than others because the message
// time-out period is longer than the time of an average round-trip").
type Timing struct {
	// SwitchLatency is the per-hop cut-through latency (paper: worst case
	// 550 ns with no contention).
	SwitchLatency time.Duration
	// ByteTime is the per-byte serialisation time on a link (paper: each
	// link supports 1.28 Gb/s, i.e. 6.25 ns per byte); with cut-through the
	// message pays it once, pipelined across hops.
	ByteTime time.Duration
	// HostOverhead is the per-probe software cost at the mapper: active
	// message send/receive through the SBUS-attached interface.
	HostOverhead time.Duration
	// ResponseTimeout is how long the mapper waits before declaring a probe
	// unanswered ("nothing").
	ResponseTimeout time.Duration
	// BlockedPortReset is the switch firmware timeout after which a blocked
	// worm is cleared with a forward reset message (paper: 55 ms, set in
	// switch ROMs). Used by the discrete-event transport under traffic.
	BlockedPortReset time.Duration
}

// DefaultTiming reproduces the order of magnitude of the paper's Fig 7
// timings when combined with the paper's probe counts.
func DefaultTiming() Timing {
	return Timing{
		SwitchLatency:    550 * time.Nanosecond,
		ByteTime:         6 * time.Nanosecond, // ≈1.28 Gb/s
		HostOverhead:     250 * time.Microsecond,
		ResponseTimeout:  750 * time.Microsecond,
		BlockedPortReset: 55 * time.Millisecond,
	}
}

// probe message sizes in bytes, after the paper's message format (header
// flit, routing flits, payload, 8-bit CRC, tail flit).
const (
	probeEnvelopeBytes = 4  // header + CRC + tail + type
	probePayloadBytes  = 16 // mapper id + sequence + reverse-route room
)

// Stats counts probes and their outcomes, in the categories of Fig 6.
type Stats struct {
	HostProbes   int64 // host-probe messages sent
	HostHits     int64 // ...that produced a host-name response
	SwitchProbes int64 // switch-probe (loopback) messages sent
	SwitchHits   int64 // ...that returned to the mapper
}

// TotalProbes is the total message count (the paper's primary algorithmic
// cost metric).
func (s Stats) TotalProbes() int64 { return s.HostProbes + s.SwitchProbes }

// Hits is the total number of probes that generated responses.
func (s Stats) Hits() int64 { return s.HostHits + s.SwitchHits }

// Net is the quiescent-network transport: probes execute instantaneously
// on a virtual clock, one at a time, exactly matching the paper's §2-§3
// model assumptions ("the network is quiescent during mapping and thus
// worms can only deadlock on themselves").
//
// A Net is not safe for concurrent use; the discrete-event ConcurrentNet
// builds on it for the election, parallel-mapping and cross-traffic
// experiments.
type Net struct {
	topo    *topology.Network //sanlint:topostate
	model   Model             //sanlint:topostate
	timing  Timing            //sanlint:topostate
	clock   time.Duration
	stats   Stats
	scratch evalScratch
	// epoch counts responder/configuration changes; the route-prefix memo in
	// scratch is keyed on it (plus the topology's structural version), so any
	// state change invalidates memoized traversal automatically. epochcheck
	// enforces that every method writing a topostate field bumps it.
	epoch uint64 //sanlint:epoch
	// loopBuf is the reusable buffer for loopback route expansion in submit.
	loopBuf Route
	// mtVal/mtVer cache the topology-derived turn bound (largest radix
	// minus one); derived state, revalidated against the structural
	// version on use, so it is deliberately not topostate.
	mtVal Turn
	mtVer uint64
	mtOK  bool
	// responder marks hosts running a mapper daemon; only they answer
	// host-probes. Hosts absent from the map respond (default true).
	silent map[topology.NodeID]bool //sanlint:topostate
	// probeLog, when non-nil, receives every probe issued (testing hook).
	probeLog func(kind string, from topology.NodeID, r Route, ok bool)
	// selfID enables the §6 self-identifying-switch oracle (IDProbe).
	selfID bool
	// injector, when non-nil, is the fault-injection hook consulted around
	// every probe (see Injector). The nil check keeps the fault-free
	// configuration on the zero-allocation fast path.
	injector Injector
}

// Injector is the fault-injection hook the transport consults around every
// probe. Implementations live outside the evaluation hot path (see
// internal/faults); every use is guarded by a nil check so a transport with
// no injector installed behaves — and allocates — exactly as before.
type Injector interface {
	// Advance applies every scheduled fault with virtual time <= now. It is
	// called before the probe is evaluated, so a fault scheduled at t
	// affects the first probe issued at or after t.
	Advance(now time.Duration)
	// FilterProbe inspects one classified probe and may override its
	// outcome: a non-nil error turns the probe into a miss carrying that
	// error (a response suppressed in flight, or a failure attributed to
	// injected ground truth). kind is the probe kind, route the route the
	// evaluator actually walked (loopback-expanded for switch-class
	// probes), ok the pre-fault verdict; res is the evaluator's result and
	// hops the directed hops the message traversed. route, res and hops
	// alias transport scratch state and are valid only during the call.
	FilterProbe(kind ProbeKind, route Route, ok bool, res Result, hops []DirectedHop) error
}

// New wraps a topology in a quiescent transport with the given collision
// model and timing.
func New(topo *topology.Network, model Model, timing Timing) *Net {
	if model.Span < 1 {
		panic("simnet: Model.Span must be >= 1")
	}
	return &Net{topo: topo, model: model, timing: timing}
}

// NewDefault uses the circuit collision model (the paper's first, stricter
// proof model) and default timing.
func NewDefault(topo *topology.Network) *Net {
	return New(topo, CircuitModel, DefaultTiming())
}

// Topology returns the underlying network (read-only by convention).
func (n *Net) Topology() *topology.Network { return n.topo }

// Model returns the collision model in force.
func (n *Net) Model() Model { return n.model }

// Timing returns the timing constants in force.
func (n *Net) Timing() Timing { return n.timing }

// Clock returns elapsed virtual time.
func (n *Net) Clock() time.Duration { return n.clock }

// ResetClock zeroes the virtual clock and the probe statistics.
func (n *Net) ResetClock() {
	n.clock = 0
	n.stats = Stats{}
}

// AdvanceClock adds dt of non-probe work (e.g. mapper-side computation).
func (n *Net) AdvanceClock(dt time.Duration) { n.clock += dt }

// Stats returns the probe counters.
func (n *Net) Stats() Stats { return n.stats }

// SetResponder marks whether host h runs a mapper daemon and therefore
// answers host-probes. All hosts respond by default. Silent hosts are the
// mechanism behind Fig 9: probes to them cost the full response timeout
// and they contribute no merge anchors.
func (n *Net) SetResponder(h topology.NodeID, responds bool) {
	if n.topo.KindOf(h) != topology.HostNode {
		panic(fmt.Sprintf("simnet: %d is not a host", h))
	}
	if n.silent == nil {
		n.silent = make(map[topology.NodeID]bool)
	}
	if responds {
		delete(n.silent, h)
	} else {
		n.silent[h] = true
	}
	n.epoch++
}

// SetInjector installs (nil removes) the fault-injection hook. The epoch is
// bumped because the injector may mutate routing-relevant state from its
// very first Advance.
func (n *Net) SetInjector(i Injector) {
	n.injector = i
	n.epoch++
}

// Reconfigure bumps the transport's state epoch, invalidating any memoized
// route-traversal state. Structural topology edits (Connect, AddReflector,
// RemoveWire) are detected automatically through the topology's version
// counter; call Reconfigure after out-of-band changes the transport cannot
// observe.
func (n *Net) Reconfigure() { n.epoch++ }

// EvalCacheStats returns the route-prefix memo's hit/miss counters.
func (n *Net) EvalCacheStats() EvalCacheStats { return n.scratch.stats }

// MaxPorts reports the largest port count of any node in the underlying
// topology — the switch radix a mapper must plan for. Probers forward it
// so mapper.Config.MaxPorts can be discovered instead of configured.
func (n *Net) MaxPorts() int { return n.topo.MaxPorts() }

// MaxTurn reports the largest legal turn magnitude on this fabric
// (largest radix minus one, never below the paper's default bound of
// MaxTurn=7 so the zero-value behaviour of small fabrics is unchanged).
// The value is cached and revalidated against the topology's structural
// version.
func (n *Net) MaxTurn() Turn {
	if !n.mtOK || n.mtVer != n.topo.Version() {
		mt := n.topo.MaxPorts() - 1
		if mt < MaxTurn {
			mt = MaxTurn
		}
		n.mtVal = Turn(mt)
		n.mtVer = n.topo.Version()
		n.mtOK = true
	}
	return n.mtVal
}

// Responds reports whether host h answers host-probes.
func (n *Net) Responds(h topology.NodeID) bool { return !n.silent[h] }

// SetProbeLog installs a hook invoked after every probe (nil to remove).
func (n *Net) SetProbeLog(f func(kind string, from topology.NodeID, r Route, ok bool)) {
	n.probeLog = f
}

// Eval evaluates a raw route without sending a probe (no clock or counter
// effects). Exposed for tests, route verification and tooling.
//
//sanlint:hotpath
func (n *Net) Eval(from topology.NodeID, route Route) Result {
	return evalRoute(n.topo, from, route, n.model, &n.scratch, n.epoch)
}

// EvalModel evaluates a route under an explicit collision model.
//
//sanlint:hotpath
func (n *Net) EvalModel(from topology.NodeID, route Route, m Model) Result {
	return evalRoute(n.topo, from, route, m, &n.scratch, n.epoch)
}

// EvalPath evaluates a route and additionally returns the directed hops the
// message traversed before terminating or failing. The returned slice is
// freshly allocated. Used by the discrete-event transport, which needs the
// exact links a worm occupies to model contention.
func (n *Net) EvalPath(from topology.NodeID, route Route) (Result, []DirectedHop) {
	res := evalRoute(n.topo, from, route, n.model, &n.scratch, n.epoch)
	return res, append([]DirectedHop(nil), n.scratch.hops...)
}

// MessageBytes estimates the wire size of a probe message with the given
// number of routing flits, per the paper's message format (header flit,
// routing flits, payload, 8-bit CRC, tail flit).
//
//sanlint:hotpath
func MessageBytes(turns int) int {
	return probeEnvelopeBytes + turns + probePayloadBytes
}

// transitTime is the cut-through latency of a message over the given hop
// count: per-hop switch latency plus one pipelined serialisation.
func (n *Net) transitTime(hops, turns int) time.Duration {
	return time.Duration(hops)*n.timing.SwitchLatency +
		time.Duration(MessageBytes(turns))*n.timing.ByteTime
}

// submit executes one probe of any kind against the quiescent evaluator: it
// classifies the response, bills the per-probe host overhead to the clock,
// and computes the virtual completion time Done — but does NOT wait for the
// response. collect (or the synchronous wrappers) advances the clock to
// Done; keeping the two separate is what lets the pipelined engine overlap
// many response timeouts while the serial methods remain byte-identical to
// their historical accounting (overhead first, then wait).
func (n *Net) submit(from topology.NodeID, p Probe) ProbeResult {
	if n.injector != nil {
		n.injector.Advance(n.clock)
	}
	ver := n.topo.Version()
	return n.submitKeyed(from, p, n.MaxTurn(), ver,
		n.scratch.keyOK(from, n.model, n.epoch, ver))
}

// submitBatch issues ps in order, filling out[i] with the i-th result. It
// is observationally identical to len(ps) sequential submit calls — same
// clock billing, counters and results — but the turn bound, structural
// version and route-memo key are validated once per batch instead of once
// or twice per probe. With a fault injector installed the per-probe path is
// used unchanged: Advance may mutate the topology mid-batch, so nothing is
// safe to hoist (and the fault-free configuration stays on the fast path).
func (n *Net) submitBatch(from topology.NodeID, ps []Probe, out []ProbeResult) {
	if len(ps) != len(out) {
		panic("simnet: submitBatch length mismatch")
	}
	if n.injector != nil {
		for i := range ps {
			out[i] = n.submit(from, ps[i])
		}
		return
	}
	maxTurn := n.MaxTurn()
	ver := n.topo.Version()
	keyed := n.scratch.keyOK(from, n.model, n.epoch, ver)
	for i := range ps {
		out[i] = n.submitKeyed(from, ps[i], maxTurn, ver, keyed)
		if CapOf(ps[i].Kind) != 0 {
			// Every supported kind ran the evaluator, which re-keyed the
			// memo to this batch's key; resumability is now just the valid
			// bit. Unsupported kinds leave the scratch (and keyed) untouched.
			keyed = n.scratch.valid
		}
	}
}

// EvalBatch evaluates a batch of raw routes from one source in a single
// pass over the shared scratch, with no clock or counter effects: the memo
// key is validated once for the whole batch and consecutive routes resume
// from each other's memoized prefixes exactly as in repeated Eval calls.
// out must have len(routes). Results are identical to calling Eval on each
// route in order.
func (n *Net) EvalBatch(from topology.NodeID, routes []Route, out []Result) {
	if len(routes) != len(out) {
		panic("simnet: EvalBatch length mismatch")
	}
	if n.topo.KindOf(from) != topology.HostNode {
		panic(fmt.Sprintf("simnet: source %d is not a host", from))
	}
	ver := n.topo.Version()
	keyed := n.scratch.keyOK(from, n.model, n.epoch, ver)
	for i, rt := range routes {
		out[i] = evalResume(n.topo, from, rt, n.model, &n.scratch, n.epoch, ver, keyed)
		keyed = n.scratch.valid
	}
}

// submitKeyed is the body of submit with the per-probe setup hoisted to the
// caller: maxTurn is the fabric's turn bound, ver the topology's structural
// version, and keyed whether the route memo holds a resumable walk for
// (from, model, epoch, ver) — see evalScratch. submitBatch amortizes all
// three across a window-sized batch.
func (n *Net) submitKeyed(from topology.NodeID, p Probe, maxTurn Turn, ver uint64, keyed bool) ProbeResult {
	if n.topo.KindOf(from) != topology.HostNode {
		panic(fmt.Sprintf("simnet: source %d is not a host", from))
	}
	r := ProbeResult{Probe: p}
	var wait time.Duration
	// eval is the decisive evaluator verdict for the fault filter, and
	// evRoute the route that verdict walked (p.Route, or the loopback
	// expansion for switch-class probes). hostClass selects the Fig 6
	// counter pair, billed after the filter so injected faults are counted
	// as the misses they produce.
	var eval Result
	evRoute := p.Route
	hostClass := false
	logKind := ""
	switch p.Kind {
	case ProbeSwitch:
		if !p.Route.ValidProbeFor(maxTurn) {
			panic(fmt.Sprintf("simnet: invalid probe prefix %v", p.Route))
		}
		n.loopBuf = p.Route.AppendLoopback(n.loopBuf[:0])
		eval = evalResume(n.topo, from, n.loopBuf, n.model, &n.scratch, n.epoch, ver, keyed)
		evRoute = n.loopBuf
		r.OK = eval.Outcome == Delivered && eval.Dest == from
		if r.OK {
			wait = n.transitTime(eval.Hops, len(n.loopBuf))
		} else {
			r.Err = ErrTimeout
		}
		logKind = "switch"
	case ProbeHost:
		if !p.Route.ValidProbeFor(maxTurn) {
			panic(fmt.Sprintf("simnet: invalid probe prefix %v", p.Route))
		}
		eval = evalResume(n.topo, from, p.Route, n.model, &n.scratch, n.epoch, ver, keyed)
		delivered := eval.Outcome == Delivered
		r.OK = delivered && n.Responds(eval.Dest)
		hostClass = true
		if r.OK {
			r.Host = n.topo.NameOf(eval.Dest)
			// Round trip: probe out plus reply back over the reversed route.
			wait = 2 * n.transitTime(eval.Hops, len(p.Route))
		} else if delivered {
			r.Err = ErrNoResponder
		} else {
			r.Err = ErrTimeout
		}
		logKind = "host"
	case ProbeRaw:
		if !p.Route.ValidFor(maxTurn) {
			panic(fmt.Sprintf("simnet: invalid route %v", p.Route))
		}
		eval = evalResume(n.topo, from, p.Route, n.model, &n.scratch, n.epoch, ver, keyed)
		r.OK = eval.Outcome == Delivered && eval.Dest == from
		if r.OK {
			wait = n.transitTime(eval.Hops, len(p.Route))
		} else {
			r.Err = ErrTimeout
		}
		logKind = "raw"
	case ProbeID:
		if !n.selfID {
			panic("simnet: IDProbe requires EnableSelfID (the §6 hardware extension)")
		}
		if !p.Route.ValidProbeFor(maxTurn) {
			panic(fmt.Sprintf("simnet: invalid probe prefix %v", p.Route))
		}
		// The outbound prefix tells us which node reflects; the full
		// loopback decides success exactly like a plain switch probe.
		probe := evalResume(n.topo, from, p.Route, n.model, &n.scratch, n.epoch, ver, keyed)
		n.loopBuf = p.Route.AppendLoopback(n.loopBuf[:0])
		eval = evalResume(n.topo, from, n.loopBuf, n.model, &n.scratch, n.epoch, ver, n.scratch.valid)
		evRoute = n.loopBuf
		r.OK = eval.Outcome == Delivered && eval.Dest == from &&
			probe.Outcome == Stranded // the prefix parks on a switch
		if r.OK {
			wait = n.transitTime(eval.Hops, len(n.loopBuf))
			r.SwitchID, r.EntryPort = int(probe.Dest), probe.EntryPort
		} else {
			r.Err = ErrTimeout
		}
	case ProbeTolerant:
		if !p.Route.ValidProbeFor(maxTurn) {
			panic(fmt.Sprintf("simnet: invalid probe prefix %v", p.Route))
		}
		eval = evalResume(n.topo, from, p.Route, n.model, &n.scratch, n.epoch, ver, keyed)
		delivered := false
		switch eval.Outcome {
		case Delivered:
			r.OK = n.Responds(eval.Dest)
			r.Consumed = len(p.Route)
			delivered = true
		case HitHostTooSoon:
			r.OK = n.Responds(eval.Dest)
			r.Consumed = eval.FailTurn
			delivered = true
		}
		hostClass = true
		if r.OK {
			r.Host = n.topo.NameOf(eval.Dest)
			wait = 2 * n.transitTime(eval.Hops, len(p.Route))
		} else if delivered {
			r.Err = ErrNoResponder
		} else {
			r.Err = ErrTimeout
		}
		logKind = "tolerant"
	default:
		r.Err = ErrUnsupported
		r.Done = n.clock
		return r
	}
	if n.injector != nil {
		if ierr := n.injector.FilterProbe(p.Kind, evRoute, r.OK, eval, n.scratch.hops); ierr != nil {
			// The probe (or its response) was destroyed: everything the
			// evaluation learned is unobservable, and the miss costs the
			// full response timeout.
			r.OK = false
			r.Host = ""
			r.Consumed = 0
			r.SwitchID, r.EntryPort = 0, 0
			r.Err = ierr
			wait = 0
		}
	}
	if hostClass {
		n.stats.HostProbes++
		if r.OK {
			n.stats.HostHits++
		}
	} else {
		n.stats.SwitchProbes++
		if r.OK {
			n.stats.SwitchHits++
		}
	}
	timeout := n.timing.ResponseTimeout
	if p.Timeout > 0 {
		timeout = p.Timeout
	}
	issue := n.clock
	n.clock += n.timing.HostOverhead
	if r.OK {
		r.Done = n.clock + wait
	} else {
		r.Done = n.clock + timeout
	}
	r.Latency = r.Done - issue
	if logKind != "" && n.probeLog != nil {
		n.probeLog(logKind, from, p.Route, r.OK)
	}
	return r
}

// collect advances the clock to a submitted probe's completion time.
func (n *Net) collect(r ProbeResult) {
	if r.Done > n.clock {
		n.clock = r.Done
	}
}

// SwitchProbe sends the loopback probe for the given turn prefix (§2.3):
// turns a1...ak 0 -ak...-a1. It reports whether the mapper received its own
// loopback message, which proves the node k hops beyond the first switch is
// a switch.
func (n *Net) SwitchProbe(from topology.NodeID, turns Route) bool {
	r := n.submit(from, Probe{Kind: ProbeSwitch, Route: turns})
	n.collect(r)
	return r.OK
}

// HostProbe sends the probe a1...ak and reports the name of the responding
// host, if any (§2.3). A response requires the message to be delivered AND
// the destination host to run a responder daemon; the reply retraces the
// probe's route in reverse (it carries its route, so the receiver can
// invert it).
func (n *Net) HostProbe(from topology.NodeID, turns Route) (host string, ok bool) {
	r := n.submit(from, Probe{Kind: ProbeHost, Route: turns})
	n.collect(r)
	return r.Host, r.OK
}

// IDProbe is the §6 "architectural support for self-identifying switches"
// oracle: "if a probe made it to a switch and back, it would carry a unique
// identifier". It behaves like SwitchProbe but, on success, also reports a
// unique identifier for the reflecting switch and the absolute port the
// probe entered it on (what a self-identifying switch would stamp into the
// returning message). Only available when self-identification is enabled
// on the transport; the default Myrinet-faithful configuration has no such
// mechanism ("Myrinet lacks a mechanism to query a switch directly").
func (n *Net) IDProbe(from topology.NodeID, turns Route) (id int, entryPort int, ok bool) {
	r := n.submit(from, Probe{Kind: ProbeID, Route: turns})
	n.collect(r)
	return r.SwitchID, r.EntryPort, r.OK
}

// EnableSelfID turns on the §6 hardware extension for this transport.
func (n *Net) EnableSelfID() { n.selfID = true }

// AccountProbe applies the clock-and-counter effects of one probe of the
// given class without evaluating anything: per-probe host overhead, plus
// the supplied round trip on a hit or the response timeout on a miss.
// External transports that implement their own delivery logic on top of
// Eval (e.g. the amlayer wire prober, which pushes every probe through the
// real message framing and host daemons) use this to bill time and
// statistics identically to the built-in probes.
func (n *Net) AccountProbe(hostClass bool, rtt time.Duration, hit bool) {
	if hostClass {
		n.stats.HostProbes++
		if hit {
			n.stats.HostHits++
		}
	} else {
		n.stats.SwitchProbes++
		if hit {
			n.stats.SwitchHits++
		}
	}
	n.clock += n.timing.HostOverhead
	if hit {
		n.clock += rtt
	} else {
		n.clock += n.timing.ResponseTimeout
	}
}

// TransitTime exposes the cut-through latency model: per-hop switch latency
// plus one pipelined serialisation of msgBytes.
func (t Timing) TransitTime(hops, msgBytes int) time.Duration {
	return time.Duration(hops)*t.SwitchLatency + time.Duration(msgBytes)*t.ByteTime
}

// TolerantHostProbe models the §6 firmware change the randomized hybrid
// mapper assumes: "instead of a 'hit host too soon' error causing a message
// to be discarded, the host could read it and send a response". The probe
// succeeds both when it is delivered exactly and when it reaches a
// responding host with flits left over; consumed reports how many turns the
// network actually applied, i.e. route[:consumed] is a valid host-probe
// route to the responder.
func (n *Net) TolerantHostProbe(from topology.NodeID, route Route) (host string, consumed int, ok bool) {
	r := n.submit(from, Probe{Kind: ProbeTolerant, Route: route})
	n.collect(r)
	return r.Host, r.Consumed, r.OK
}

// RawLoopback sends a message with an arbitrary routing address and reports
// whether it was delivered back to the sending host itself. This is the
// primitive behind the Myricom algorithm's generalised loopback probes
// (§4.1): comparison probes T1..Tn X −Sm..−S1 and loop-cable probes. The
// message is counted as a switch-class probe.
func (n *Net) RawLoopback(from topology.NodeID, route Route) bool {
	r := n.submit(from, Probe{Kind: ProbeRaw, Route: route})
	n.collect(r)
	return r.OK
}

// ProbePair performs the paper's §2.3 "probe": the pair of the two tests on
// the same prefix. It returns the combined response R(a1...ak): a host
// name, "switch", or "nothing".
func (n *Net) ProbePair(from topology.NodeID, turns Route) ProbeResponse {
	if host, ok := n.HostProbe(from, turns); ok {
		return ProbeResponse{Kind: RespHost, Host: host}
	}
	if n.SwitchProbe(from, turns) {
		return ProbeResponse{Kind: RespSwitch}
	}
	return ProbeResponse{Kind: RespNothing}
}

// RespKind is the probe response alphabet H ∪ {"switch", "nothing"}.
type RespKind uint8

const (
	// RespNothing: the probe timed out.
	RespNothing RespKind = iota
	// RespSwitch: the loopback message returned.
	RespSwitch
	// RespHost: a uniquely-named host replied.
	RespHost
)

// String names the kind.
func (k RespKind) String() string {
	switch k {
	case RespNothing:
		return "nothing"
	case RespSwitch:
		return "switch"
	case RespHost:
		return "host"
	}
	return fmt.Sprintf("resp(%d)", uint8(k))
}

// ProbeResponse is the value of the probe-response function R (§2.3).
type ProbeResponse struct {
	Kind RespKind
	Host string // unique host name when Kind == RespHost
}
