package simnet

import (
	"math/rand"
	"testing"

	"sanmap/internal/topology"
)

// randomRoutes generates a deterministic mix of delivering, failing and
// prefix-sharing routes of bounded depth.
func randomRoutes(rng *rand.Rand, count, depth int) []Route {
	routes := make([]Route, 0, count)
	for len(routes) < count {
		r := make(Route, 1+rng.Intn(depth))
		for i := range r {
			t := Turn(rng.Intn(2*MaxTurn+1) - MaxTurn)
			if t == 0 {
				t = 1
			}
			r[i] = t
		}
		routes = append(routes, r)
		// Half the time, follow with a sibling sharing a long prefix — the
		// frontier-probe pattern the memo exists for.
		if rng.Intn(2) == 0 && len(r) > 1 {
			s := append(Route(nil), r...)
			s[len(s)-1] = -s[len(s)-1]
			routes = append(routes, s)
		}
	}
	return routes[:count]
}

// TestEvalCacheMatchesFresh: evaluating any route sequence through one
// warm-memo Net gives exactly the results (and hop traces) a fresh,
// memo-cold Net gives per route — the memo is invisible.
func TestEvalCacheMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	net := topology.MustRandomConnected(6, 8, 4, rng)
	hosts := net.Hosts()
	warm := NewDefault(net)
	routes := randomRoutes(rng, 400, 10)
	for i, r := range routes {
		// Blocks of trials per source: changing the source invalidates the
		// memo, so give each source a run of routes for prefixes to hit in.
		from := hosts[(i/40)%len(hosts)]
		got, gotHops := warm.EvalPath(from, r)
		fresh := NewDefault(net)
		want, wantHops := fresh.EvalPath(from, r)
		if got != want {
			t.Fatalf("route %d (%v from %v): warm %+v, fresh %+v", i, r, from, got, want)
		}
		if len(gotHops) != len(wantHops) {
			t.Fatalf("route %d: warm %d hops, fresh %d", i, len(gotHops), len(wantHops))
		}
		for j := range gotHops {
			if gotHops[j] != wantHops[j] {
				t.Fatalf("route %d hop %d: warm %+v, fresh %+v", i, j, gotHops[j], wantHops[j])
			}
		}
	}
	if st := warm.EvalCacheStats(); st.Hits == 0 || st.TurnsSaved == 0 {
		t.Errorf("memo never hit over a prefix-heavy workload: %+v", st)
	}
}

// TestEvalCacheCounters: exact repeats and prefix extensions hit; new
// sources and changed prefixes miss.
func TestEvalCacheCounters(t *testing.T) {
	n, h0, h1 := lineNet(t)
	sn := NewDefault(n)

	sn.Eval(h0, Route{3, 3})
	st := sn.EvalCacheStats()
	if st.Misses != 1 || st.Hits != 0 || st.TurnsWalked != 2 {
		t.Fatalf("after first eval: %+v", st)
	}

	sn.Eval(h0, Route{3, 3}) // exact repeat: no walking at all
	st = sn.EvalCacheStats()
	if st.Hits != 1 || st.TurnsSaved != 2 || st.TurnsWalked != 2 {
		t.Fatalf("after exact repeat: %+v", st)
	}

	// Shares the 1-turn prefix; the novel turn fails (s1 port 4 is unwired)
	// so it counts as neither saved nor walked.
	sn.Eval(h0, Route{3, 1})
	st = sn.EvalCacheStats()
	if st.Hits != 2 || st.TurnsSaved != 3 || st.TurnsWalked != 2 {
		t.Fatalf("after prefix sibling: %+v", st)
	}

	sn.Eval(h1, Route{3, 3}) // new source: full walk
	st = sn.EvalCacheStats()
	if st.Misses != 2 {
		t.Fatalf("after source change: %+v", st)
	}
	if st.HitRate() <= 0 || st.HitRate() >= 1 {
		t.Errorf("hit rate %v out of (0,1)", st.HitRate())
	}
	if st.String() == "" {
		t.Error("empty stats string")
	}
}

// TestEvalCacheEpochInvalidation: SetResponder (and Reconfigure) bump the
// net's epoch, forcing the next evaluation to re-walk.
func TestEvalCacheEpochInvalidation(t *testing.T) {
	n, h0, h1 := lineNet(t)
	sn := NewDefault(n)
	sn.Eval(h0, Route{3, 3})
	sn.Eval(h0, Route{3, 3})
	if st := sn.EvalCacheStats(); st.Hits != 1 {
		t.Fatalf("warm-up: %+v", st)
	}
	sn.SetResponder(h1, false)
	res := sn.Eval(h0, Route{3, 3})
	if res.Outcome != Delivered { // evaluation itself ignores responders
		t.Fatalf("res = %+v", res)
	}
	if st := sn.EvalCacheStats(); st.Misses != 2 {
		t.Fatalf("SetResponder did not invalidate the memo: %+v", st)
	}
	sn.Eval(h0, Route{3, 3})
	sn.Reconfigure()
	sn.Eval(h0, Route{3, 3})
	if st := sn.EvalCacheStats(); st.Misses != 3 {
		t.Fatalf("Reconfigure did not invalidate the memo: %+v", st)
	}
}

// TestEvalCacheTopologyInvalidation: structural edits (reflectors, wire
// removal) are seen through the topology version counter; cached traversal
// state never leaks a stale wire.
func TestEvalCacheTopologyInvalidation(t *testing.T) {
	n, h0, _ := lineNet(t)
	s0 := n.Lookup("s0")
	sn := NewDefault(n)

	// s0 entry port 2, turn +1 -> port 3: unwired.
	if res := sn.Eval(h0, Route{1}); res.Outcome != NoSuchWire {
		t.Fatalf("pre-reflector: %+v", res)
	}
	if err := n.AddReflector(s0, 3); err != nil {
		t.Fatal(err)
	}
	// Same route, same memo keys except the topology version: the probe now
	// bounces off the plug and strands on s0.
	if res := sn.Eval(h0, Route{1}); res.Outcome != Stranded {
		t.Fatalf("post-reflector: %+v", res)
	}

	if res := sn.Eval(h0, Route{3, 3}); res.Outcome != Delivered {
		t.Fatalf("pre-removal: %+v", res)
	}
	wi := n.WireAt(s0, 5) // the s0—s1 trunk
	if err := n.RemoveWire(wi); err != nil {
		t.Fatal(err)
	}
	if res := sn.Eval(h0, Route{3, 3}); res.Outcome != NoSuchWire {
		t.Fatalf("post-removal: %+v", res)
	}
}

// TestEvalCacheModelKey: interleaving models through EvalModel never
// resumes traversal state recorded under a different collision model.
func TestEvalCacheModelKey(t *testing.T) {
	n, h0, _ := lineNet(t)
	sn := NewDefault(n)
	// Out to s1, back to s0, forward over the trunk again: reuses the
	// s0->s1 direction — legal under the packet model (Span 1), a
	// self-collision under circuit.
	r := Route{3, 0, 0}
	if res := sn.EvalModel(h0, r, PacketModel); res.Outcome == SelfCollision {
		t.Fatalf("packet model: %+v", res)
	}
	if res := sn.EvalModel(h0, r, CircuitModel); res.Outcome != SelfCollision {
		t.Fatalf("circuit model after packet: %+v", res)
	}
	if res := sn.EvalModel(h0, r, PacketModel); res.Outcome == SelfCollision {
		t.Fatalf("packet model after circuit: %+v", res)
	}
}

// TestEvalZeroAllocs locks the tentpole property: steady-state evaluation —
// repeats, prefix extensions, failures, switch-probe loopbacks — performs
// zero heap allocations per probe.
func TestEvalZeroAllocs(t *testing.T) {
	n, h0, _ := lineNet(t)
	sn := NewDefault(n)
	routes := []Route{
		{3, 3},    // delivered
		{3, 1},    // no such wire at s1
		{3, 3, 1}, // hit host too soon
		{3},       // stranded
		{6},       // illegal turn
		{3, 3},    // exact repeat
	}
	// Warm up: grow every scratch buffer to its high-water mark.
	for _, r := range routes {
		sn.Eval(h0, r)
		sn.SwitchProbe(h0, r[:1])
	}
	allocs := testing.AllocsPerRun(200, func() {
		for _, r := range routes {
			sn.Eval(h0, r)
		}
	})
	if allocs != 0 {
		t.Errorf("Eval: AllocsPerRun = %v, want 0", allocs)
	}
	// The probe layer (loopback expansion included) must stay allocation-free
	// too; probe counters and the virtual clock are plain field updates.
	// Routes are hoisted so the slice literals don't charge the closure.
	sw, hp := Route{3}, Route{3, 3}
	allocs = testing.AllocsPerRun(200, func() {
		sn.SwitchProbe(h0, sw)
		sn.HostProbe(h0, hp)
	})
	if allocs != 0 {
		t.Errorf("probe path: AllocsPerRun = %v, want 0", allocs)
	}
}
