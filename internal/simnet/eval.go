package simnet

import (
	"fmt"
	"math"

	"sanmap/internal/topology"
)

// Outcome classifies the fate of a routed message. The four route-failure
// modes are quoted from §2.2 of the paper; SelfCollision is the §2.3.1 worm
// collision ("stepping on one's tail") that the correctness proof revolves
// around.
type Outcome uint8

const (
	// Delivered: the message path ended at a host with all routing flits
	// consumed; the host received the payload.
	Delivered Outcome = iota
	// IllegalTurn: "If pᵢ' is not in {0...7}, we have made a turn resulting
	// in an illegal port."
	IllegalTurn
	// NoSuchWire: "If nᵢ has no wire at port pᵢ + aᵢ."
	NoSuchWire
	// HitHostTooSoon: "If a message arrives at a host and it still contains
	// routing flits."
	HitHostTooSoon
	// Stranded: "If the message path does not end at a host" — all flits
	// consumed at a switch; switches do not consume messages.
	Stranded
	// SelfCollision: the worm attempted to reuse a directed edge still
	// occupied by its own body; hardware deadlock-breaking destroys it.
	SelfCollision
	// SourceUnwired: the sending host has no cable; no message enters the
	// network at all. (Not in the paper's list: its model assumes attached
	// hosts. Needed here for reconfiguration scenarios.)
	SourceUnwired
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Delivered:
		return "delivered"
	case IllegalTurn:
		return "illegal-turn"
	case NoSuchWire:
		return "no-such-wire"
	case HitHostTooSoon:
		return "hit-host-too-soon"
	case Stranded:
		return "stranded"
	case SelfCollision:
		return "self-collision"
	case SourceUnwired:
		return "source-unwired"
	}
	return fmt.Sprintf("outcome(%d)", uint8(o))
}

// Model selects the worm collision semantics of §2.3.1 via the number of
// consecutive directed edges a worm's body occupies at once.
type Model struct {
	// Span is the occupancy window: a message fails when it attempts to
	// reuse a directed edge it traversed fewer than Span hops ago.
	//
	//   Span == 1        — packet (store-and-forward) routing: a message
	//                      occupies one link at a time and may reuse edges
	//                      arbitrarily. This is the trivially-correct regime
	//                      of §1.2.
	//   1 < Span < ∞     — cut-through with finite per-port buffering
	//                      ("probes reusing an edge may or may not fail").
	//   Span == Circuit  — circuit routing: any directed-edge reuse fails.
	Span int
}

// Circuit is the Span value for circuit-switched collision semantics.
const Circuit = math.MaxInt32

// Standard models.
var (
	PacketModel  = Model{Span: 1}
	CircuitModel = Model{Span: Circuit}
	// CutThroughModel approximates Myrinet's 108 bytes of per-port
	// buffering against short probe worms: the body spans a few links.
	CutThroughModel = Model{Span: 3}
)

// DirectedHop identifies one traversal of a wire: the wire index and the
// end the message exited from. Two traversals of one wire in opposite
// directions are distinct directed edges, which is what the circuit model's
// host-probe rule requires.
type DirectedHop struct {
	Wire  int
	FromA bool // true when traversed from end A to end B
}

// Result describes the evaluation of a route.
type Result struct {
	Outcome Outcome
	// Dest is the final node for Delivered and Stranded; the host hit for
	// HitHostTooSoon; the node where the failing hop was attempted for the
	// other failures.
	Dest topology.NodeID
	// EntryPort is the port of Dest on which the message arrived
	// (meaningful for Delivered, Stranded, HitHostTooSoon).
	EntryPort int
	// Hops is the number of wires traversed before termination or failure.
	Hops int
	// FailTurn is the index of the routing flit being applied when the
	// message failed, or -1.
	FailTurn int
}

// OK reports whether the message was delivered to a host.
func (r Result) OK() bool { return r.Outcome == Delivered }

// evalScratch holds reusable buffers for route evaluation.
type evalScratch struct {
	hops []DirectedHop
}

// evalRoute walks the message path of §2.2 from host `from` with the given
// routing address, under collision model m. The traversed directed hops are
// appended into scratch (reused across calls; a Net is not safe for
// concurrent use — see ConcurrentNet).
func evalRoute(topo *topology.Network, from topology.NodeID, route Route, m Model, scratch *evalScratch) Result {
	if topo.KindOf(from) != topology.HostNode {
		panic(fmt.Sprintf("simnet: source %d is not a host", from))
	}
	scratch.hops = scratch.hops[:0]
	wire0 := topo.WireAt(from, topology.HostPort)
	if wire0 < 0 {
		return Result{Outcome: SourceUnwired, Dest: from, FailTurn: -1}
	}
	cur := topology.End{Node: from, Port: topology.HostPort}
	// traverse crosses the wire at (cur.Node, outPort); returns false on
	// self-collision. Loopback plugs reflect the message back into the same
	// port; they occupy a synthetic directed edge so collision semantics
	// still apply.
	traverse := func(outPort int) (topology.End, bool, bool) {
		fromEnd := topology.End{Node: cur.Node, Port: outPort}
		var hop DirectedHop
		var dest topology.End
		wi := topo.WireAt(cur.Node, outPort)
		switch {
		case wi >= 0:
			w := topo.WireByIndex(wi)
			hop = DirectedHop{Wire: wi, FromA: w.A == fromEnd}
			dest = w.Other(fromEnd)
		case topo.ReflectorAt(cur.Node, outPort):
			// A loopback plug is a cable from the port back to itself:
			// successive crossings by one worm alternate direction, exactly
			// like out-and-back over a two-ended wire, so a probe may
			// bounce off it once (out + back) under the circuit model but
			// not twice.
			key := -2 - (int(cur.Node)*topology.SwitchPorts + outPort)
			crossings := 0
			for _, h := range scratch.hops {
				if h.Wire == key {
					crossings++
				}
			}
			hop = DirectedHop{Wire: key, FromA: crossings%2 == 0}
			dest = fromEnd
		default:
			return topology.End{}, false, true // no wire
		}
		// Self-collision: directed edge still occupied by our own body.
		n := len(scratch.hops)
		lo := 0
		if m.Span < n {
			lo = n - (m.Span - 1)
		}
		if m.Span > 1 {
			for i := lo; i < n; i++ {
				if scratch.hops[i] == hop {
					return topology.End{}, false, false // collision
				}
			}
		}
		scratch.hops = append(scratch.hops, hop)
		return dest, true, true
	}

	// First hop: out of the source host.
	next, ok, _ := traverse(topology.HostPort)
	if !ok {
		// A host's only wire cannot self-collide on the first hop.
		return Result{Outcome: NoSuchWire, Dest: from, FailTurn: -1}
	}
	cur = next

	for i, turn := range route {
		if topo.KindOf(cur.Node) == topology.HostNode {
			return Result{Outcome: HitHostTooSoon, Dest: cur.Node, EntryPort: cur.Port,
				Hops: len(scratch.hops), FailTurn: i}
		}
		out := cur.Port + int(turn)
		if out < 0 || out >= topo.NumPorts(cur.Node) {
			return Result{Outcome: IllegalTurn, Dest: cur.Node, EntryPort: cur.Port,
				Hops: len(scratch.hops), FailTurn: i}
		}
		next, wired, noCollision := traverse(out)
		if !noCollision {
			return Result{Outcome: SelfCollision, Dest: cur.Node, EntryPort: cur.Port,
				Hops: len(scratch.hops), FailTurn: i}
		}
		if !wired {
			return Result{Outcome: NoSuchWire, Dest: cur.Node, EntryPort: cur.Port,
				Hops: len(scratch.hops), FailTurn: i}
		}
		cur = next
	}

	out := Result{Dest: cur.Node, EntryPort: cur.Port, Hops: len(scratch.hops), FailTurn: -1}
	if topo.KindOf(cur.Node) == topology.HostNode {
		out.Outcome = Delivered
	} else {
		out.Outcome = Stranded
	}
	return out
}
