package simnet

import (
	"fmt"
	"math"

	"sanmap/internal/topology"
)

// Outcome classifies the fate of a routed message. The four route-failure
// modes are quoted from §2.2 of the paper; SelfCollision is the §2.3.1 worm
// collision ("stepping on one's tail") that the correctness proof revolves
// around.
type Outcome uint8

const (
	// Delivered: the message path ended at a host with all routing flits
	// consumed; the host received the payload.
	Delivered Outcome = iota
	// IllegalTurn: "If pᵢ' is not in {0...7}, we have made a turn resulting
	// in an illegal port."
	IllegalTurn
	// NoSuchWire: "If nᵢ has no wire at port pᵢ + aᵢ."
	NoSuchWire
	// HitHostTooSoon: "If a message arrives at a host and it still contains
	// routing flits."
	HitHostTooSoon
	// Stranded: "If the message path does not end at a host" — all flits
	// consumed at a switch; switches do not consume messages.
	Stranded
	// SelfCollision: the worm attempted to reuse a directed edge still
	// occupied by its own body; hardware deadlock-breaking destroys it.
	SelfCollision
	// SourceUnwired: the sending host has no cable; no message enters the
	// network at all. (Not in the paper's list: its model assumes attached
	// hosts. Needed here for reconfiguration scenarios.)
	SourceUnwired
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Delivered:
		return "delivered"
	case IllegalTurn:
		return "illegal-turn"
	case NoSuchWire:
		return "no-such-wire"
	case HitHostTooSoon:
		return "hit-host-too-soon"
	case Stranded:
		return "stranded"
	case SelfCollision:
		return "self-collision"
	case SourceUnwired:
		return "source-unwired"
	}
	return fmt.Sprintf("outcome(%d)", uint8(o))
}

// Model selects the worm collision semantics of §2.3.1 via the number of
// consecutive directed edges a worm's body occupies at once.
type Model struct {
	// Span is the occupancy window: a message fails when it attempts to
	// reuse a directed edge it traversed fewer than Span hops ago.
	//
	//   Span == 1        — packet (store-and-forward) routing: a message
	//                      occupies one link at a time and may reuse edges
	//                      arbitrarily. This is the trivially-correct regime
	//                      of §1.2.
	//   1 < Span < ∞     — cut-through with finite per-port buffering
	//                      ("probes reusing an edge may or may not fail").
	//   Span == Circuit  — circuit routing: any directed-edge reuse fails.
	Span int
}

// Circuit is the Span value for circuit-switched collision semantics.
const Circuit = math.MaxInt32

// Standard models.
var (
	PacketModel  = Model{Span: 1}
	CircuitModel = Model{Span: Circuit}
	// CutThroughModel approximates Myrinet's 108 bytes of per-port
	// buffering against short probe worms: the body spans a few links.
	CutThroughModel = Model{Span: 3}
)

// DirectedHop identifies one traversal of a wire: the wire index and the
// end the message exited from. Two traversals of one wire in opposite
// directions are distinct directed edges, which is what the circuit model's
// host-probe rule requires.
type DirectedHop struct {
	Wire  int
	FromA bool // true when traversed from end A to end B
}

// Result describes the evaluation of a route.
type Result struct {
	Outcome Outcome
	// Dest is the final node for Delivered and Stranded; the host hit for
	// HitHostTooSoon; the node where the failing hop was attempted for the
	// other failures.
	Dest topology.NodeID
	// EntryPort is the port of Dest on which the message arrived
	// (meaningful for Delivered, Stranded, HitHostTooSoon).
	EntryPort int
	// Hops is the number of wires traversed before termination or failure.
	Hops int
	// FailTurn is the index of the routing flit being applied when the
	// message failed, or -1.
	FailTurn int
}

// OK reports whether the message was delivered to a host.
func (r Result) OK() bool { return r.Outcome == Delivered }

// EvalCacheStats counts the route-prefix memo's behaviour (see evalScratch).
type EvalCacheStats struct {
	// Hits counts evaluations that resumed from memoized traversal state
	// (including exact repeats of the previous route).
	Hits int64
	// Misses counts evaluations walked in full from the source.
	Misses int64
	// TurnsSaved counts routing turns answered from the memo instead of
	// being traversed.
	TurnsSaved int64
	// TurnsWalked counts routing turns actually traversed.
	TurnsWalked int64
}

// HitRate reports Hits / (Hits + Misses), or 0 before any evaluation.
func (s EvalCacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// String renders the counters on one line.
func (s EvalCacheStats) String() string {
	return fmt.Sprintf("evals=%d hits=%d (%.0f%%) turns-saved=%d turns-walked=%d",
		s.Hits+s.Misses, s.Hits, 100*s.HitRate(), s.TurnsSaved, s.TurnsWalked)
}

// stepState is the walker's position after applying some prefix of a route:
// the end the message last arrived at, and how many directed hops it has
// traversed (the prefix of evalScratch.hops that belongs to it).
type stepState struct {
	cur   topology.End
	nhops int32
}

// evalScratch holds the reusable buffers and the route-prefix memo for one
// evaluator. Successive probes from a mapping frontier share long route
// prefixes (every candidate turn extends the same frontier route, and a
// switch probe's loopback starts with the host probe's route), so the memo
// keeps the per-turn traversal state of the most recent walk; the next
// evaluation resumes after the longest common prefix and only walks its
// novel suffix. The memo is keyed on source host, collision model, the
// Net's responder epoch and the topology's structural version, so any
// reconfiguration invalidates it. All buffers are reused across calls; in
// steady state an evaluation performs zero heap allocations. A Net is not
// safe for concurrent use — see ConcurrentNet.
type evalScratch struct {
	// hops is the directed-hop trace of the current walk (shared between
	// the live walk and the memo: a resumed walk truncates it to the common
	// prefix and appends from there).
	hops []DirectedHop

	valid   bool            // memo holds a usable previous walk
	from    topology.NodeID // memo key: source host
	model   Model           // memo key: collision model
	epoch   uint64          // memo key: Net state epoch
	topoVer uint64          // memo key: topology.Network.Version
	route   Route           // the previous route (owned copy, buffer reused)
	// states[i] is the walker position after applying i turns of route;
	// states[0] follows the hop out of the source host. len(states)-1 is the
	// number of turns the previous walk applied before terminating.
	states     []stepState
	result     Result // result of the previous walk (for exact repeats)
	resultHops int    // len(hops) when result was produced
	stats      EvalCacheStats
}

// step outcomes of traverse.
const (
	stepOK = iota
	stepNoWire
	stepCollision
)

// reflectorKeyPortBits is the width of the port field in synthetic
// loopback edge keys; no fabric has 2^16 ports on one node.
const reflectorKeyPortBits = 16

// traverse crosses the wire at (node, outPort), appending the directed hop
// on success. Loopback plugs reflect the message back into the same port;
// they occupy a synthetic directed edge so collision semantics still apply.
//
//sanlint:hotpath
func (s *evalScratch) traverse(topo *topology.Network, node topology.NodeID, outPort int, span int) (topology.End, int) {
	fromEnd := topology.End{Node: node, Port: outPort}
	var hop DirectedHop
	var dest topology.End
	wi := topo.WireAt(node, outPort)
	switch {
	case wi >= 0:
		w := topo.WireByIndex(wi)
		hop = DirectedHop{Wire: wi, FromA: w.A == fromEnd}
		dest = w.Other(fromEnd)
	case topo.ReflectorAt(node, outPort):
		// A loopback plug is a cable from the port back to itself:
		// successive crossings by one worm alternate direction, exactly
		// like out-and-back over a two-ended wire, so a probe may bounce
		// off it once (out + back) under the circuit model but not twice.
		// The synthetic edge key packs (node, port) with the port in the
		// low bits, shifted below -1 to stay disjoint from real wire
		// indices. Ports are bounded far under the field width, so the
		// packing stays unique on variable-radix fabrics (where
		// node*SwitchPorts+port would collide) — and unlike the CSR dense
		// end id it needs no index, keeping this branch allocation-free
		// even when a mutation has staled the cache.
		key := -2 - (int(node)<<reflectorKeyPortBits | outPort)
		crossings := 0
		for _, h := range s.hops {
			if h.Wire == key {
				crossings++
			}
		}
		hop = DirectedHop{Wire: key, FromA: crossings%2 == 0}
		dest = fromEnd
	default:
		return topology.End{}, stepNoWire
	}
	// Self-collision: directed edge still occupied by our own body.
	if span > 1 {
		n := len(s.hops)
		lo := 0
		if span < n {
			lo = n - (span - 1)
		}
		for i := lo; i < n; i++ {
			if s.hops[i] == hop {
				return topology.End{}, stepCollision
			}
		}
	}
	s.hops = append(s.hops, hop)
	return dest, stepOK
}

// finish records the walk's outcome in the memo and returns it.
//
//sanlint:hotpath
func (s *evalScratch) finish(res Result) Result {
	s.result = res
	s.resultHops = len(s.hops)
	s.valid = true
	return res
}

// keyOK reports whether the memo's previous walk is resumable for the
// given key — same source, collision model, responder epoch and structural
// version. Batch evaluation validates the key once and keeps it validated
// across the batch instead of re-deriving it per probe.
//
//sanlint:hotpath
func (s *evalScratch) keyOK(from topology.NodeID, m Model, epoch, topoVer uint64) bool {
	return s.valid && s.from == from && s.model == m && s.epoch == epoch && s.topoVer == topoVer
}

// evalRoute walks the message path of §2.2 from host `from` with the given
// routing address, under collision model m, resuming from the memoized
// prefix of the previous walk when the keys match (see evalScratch).
//
//sanlint:hotpath
func evalRoute(topo *topology.Network, from topology.NodeID, route Route, m Model, s *evalScratch, epoch uint64) Result {
	if topo.KindOf(from) != topology.HostNode {
		panic(fmt.Sprintf("simnet: source %d is not a host", from))
	}
	ver := topo.Version()
	return evalResume(topo, from, route, m, s, epoch, ver, s.keyOK(from, m, epoch, ver))
}

// evalResume is the walk body of evalRoute with the source-kind check and
// memo-key validation hoisted to the caller: keyed reports that the memo
// holds a resumable walk for (from, m, epoch, ver). The batch paths
// (Net.EvalBatch, Net.submitBatch) validate the key once per batch — after
// any completed walk the memo key equals the batch key, so the validation
// collapses to the scratch's valid bit.
//
//sanlint:hotpath
func evalResume(topo *topology.Network, from topology.NodeID, route Route, m Model, s *evalScratch, epoch, ver uint64, keyed bool) Result {
	resume := -1
	if keyed {
		// Longest common prefix with the previous route.
		maxCmp := len(route)
		if len(s.route) < maxCmp {
			maxCmp = len(s.route)
		}
		lcp := 0
		for lcp < maxCmp && route[lcp] == s.route[lcp] {
			lcp++
		}
		if lcp == len(route) && len(route) == len(s.route) {
			// Exact repeat: replay the previous result without walking.
			s.stats.Hits++
			s.stats.TurnsSaved += int64(len(route))
			s.hops = s.hops[:s.resultHops]
			return s.result
		}
		// Resume after the common prefix, bounded by how far the previous
		// walk got before terminating (a failed walk has no state beyond
		// its failure turn).
		resume = lcp
		if walked := len(s.states) - 1; resume > walked {
			resume = walked
		}
	}

	var cur topology.End
	start := 0
	if resume >= 0 {
		s.stats.Hits++
		s.stats.TurnsSaved += int64(resume)
		st := s.states[resume]
		cur = st.cur
		s.hops = s.hops[:st.nhops]
		s.states = s.states[:resume+1]
		s.route = append(s.route[:resume], route[resume:]...)
		start = resume
	} else {
		s.stats.Misses++
		s.valid = false
		s.hops = s.hops[:0]
		if topo.WireAt(from, topology.HostPort) < 0 {
			return Result{Outcome: SourceUnwired, Dest: from, FailTurn: -1}
		}
		// First hop: out of the source host (cannot self-collide).
		next, status := s.traverse(topo, from, topology.HostPort, m.Span)
		if status != stepOK {
			return Result{Outcome: NoSuchWire, Dest: from, FailTurn: -1}
		}
		cur = next
		s.states = append(s.states[:0], stepState{cur: cur, nhops: int32(len(s.hops))})
		s.route = append(s.route[:0], route...)
		s.from, s.model, s.epoch, s.topoVer = from, m, epoch, ver
	}

	for i := start; i < len(route); i++ {
		if topo.KindOf(cur.Node) == topology.HostNode {
			return s.finish(Result{Outcome: HitHostTooSoon, Dest: cur.Node, EntryPort: cur.Port,
				Hops: len(s.hops), FailTurn: i})
		}
		out := cur.Port + int(route[i])
		if out < 0 || out >= topo.NumPorts(cur.Node) {
			return s.finish(Result{Outcome: IllegalTurn, Dest: cur.Node, EntryPort: cur.Port,
				Hops: len(s.hops), FailTurn: i})
		}
		next, status := s.traverse(topo, cur.Node, out, m.Span)
		if status == stepCollision {
			return s.finish(Result{Outcome: SelfCollision, Dest: cur.Node, EntryPort: cur.Port,
				Hops: len(s.hops), FailTurn: i})
		}
		if status == stepNoWire {
			return s.finish(Result{Outcome: NoSuchWire, Dest: cur.Node, EntryPort: cur.Port,
				Hops: len(s.hops), FailTurn: i})
		}
		cur = next
		s.states = append(s.states, stepState{cur: cur, nhops: int32(len(s.hops))})
		s.stats.TurnsWalked++
	}

	res := Result{Dest: cur.Node, EntryPort: cur.Port, Hops: len(s.hops), FailTurn: -1}
	if topo.KindOf(cur.Node) == topology.HostNode {
		res.Outcome = Delivered
	} else {
		res.Outcome = Stranded
	}
	return s.finish(res)
}
