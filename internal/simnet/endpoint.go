package simnet

import (
	"math/rand"
	"time"

	"sanmap/internal/topology"
)

// Prober is the view a mapping algorithm has of the network: the ability to
// send the two §2.3 probe types from one fixed host and observe responses
// and elapsed time. Both the Berkeley and Myricom mappers run against this
// interface, so the same algorithm code runs over the quiescent transport,
// the discrete-event concurrent transport, and fault-injecting wrappers.
//
// Deprecated: new code should use the unified Probe request type through
// AsyncProber (or SyncAdapter over it); Prober and its three extensions
// remain as thin shims so existing call sites migrate incrementally.
type Prober interface {
	// SwitchProbe reports whether the loopback probe for turns returned.
	SwitchProbe(turns Route) bool
	// HostProbe reports the name of the host that answered, if any.
	HostProbe(turns Route) (host string, ok bool)
	// LocalHost is the unique name of the probing host.
	LocalHost() string
	// Clock is the prober's elapsed virtual time.
	Clock() time.Duration
}

// RawProber extends Prober with the raw loopback primitive the Myricom
// algorithm's comparison and loop-cable probes require.
//
// Deprecated: use Probe{Kind: ProbeRaw} through AsyncProber instead.
type RawProber interface {
	Prober
	// RawLoopback sends an arbitrary routing address and reports whether
	// the message came back to the sender.
	RawLoopback(route Route) bool
}

// IDProber extends Prober with the §6 self-identifying-switch oracle: a
// switch probe whose response carries the switch's unique id and the
// absolute entry port.
//
// Deprecated: use Probe{Kind: ProbeID} through AsyncProber instead.
type IDProber interface {
	Prober
	// IDProbe reports the identity and entry port of the switch the probe
	// prefix parks on.
	IDProbe(turns Route) (id, entryPort int, ok bool)
}

// TolerantProber extends Prober with the §6 tolerant host probe (hosts read
// and answer messages that arrive with leftover routing flits).
//
// Deprecated: use Probe{Kind: ProbeTolerant} through AsyncProber instead.
type TolerantProber interface {
	Prober
	// TolerantHostProbe sends a maximal-depth probe; consumed is the number
	// of turns applied before a responding host was reached.
	TolerantHostProbe(route Route) (host string, consumed int, ok bool)
}

// Endpoint binds a Net to a source host, implementing RawProber.
type Endpoint struct {
	net  *Net
	host topology.NodeID
}

// Endpoint returns a Prober sending from host h.
func (n *Net) Endpoint(h topology.NodeID) *Endpoint {
	if n.topo.KindOf(h) != topology.HostNode {
		panic("simnet: endpoint must be a host")
	}
	return &Endpoint{net: n, host: h}
}

// SwitchProbe implements Prober.
func (e *Endpoint) SwitchProbe(turns Route) bool { return e.net.SwitchProbe(e.host, turns) }

// HostProbe implements Prober.
func (e *Endpoint) HostProbe(turns Route) (string, bool) { return e.net.HostProbe(e.host, turns) }

// LocalHost implements Prober.
func (e *Endpoint) LocalHost() string { return e.net.topo.NameOf(e.host) }

// MaxPorts reports the fabric's largest port count, so mappers can
// discover the switch radix to plan for.
func (e *Endpoint) MaxPorts() int { return e.net.MaxPorts() }

// Clock implements Prober.
func (e *Endpoint) Clock() time.Duration { return e.net.Clock() }

// Sleep advances the virtual clock by d without probing, implementing the
// optional Sleeper interface the ProbeWindow uses to realise backoff waits.
func (e *Endpoint) Sleep(d time.Duration) { e.net.AdvanceClock(d) }

// Stats exposes the transport's probe counters (picked up by the mappers'
// run statistics).
func (e *Endpoint) Stats() Stats { return e.net.Stats() }

// RawLoopback implements RawProber.
func (e *Endpoint) RawLoopback(route Route) bool { return e.net.RawLoopback(e.host, route) }

// IDProbe implements IDProber (requires EnableSelfID on the transport).
func (e *Endpoint) IDProbe(turns Route) (id, entryPort int, ok bool) {
	return e.net.IDProbe(e.host, turns)
}

// TolerantHostProbe implements TolerantProber.
func (e *Endpoint) TolerantHostProbe(route Route) (string, int, bool) {
	return e.net.TolerantHostProbe(e.host, route)
}

// Submit implements AsyncProber: the probe is evaluated and its messages
// accounted immediately (paying only the per-probe host overhead), while
// the response completes at the returned result's Done time. The channel
// already holds the result when Submit returns.
func (e *Endpoint) Submit(p Probe) <-chan ProbeResult {
	ch := make(chan ProbeResult, 1)
	ch <- e.net.submit(e.host, p)
	close(ch)
	return ch
}

// SubmitDirect implements DirectProber: identical to Submit, minus the
// channel. The ProbeWindow routes every probe through this path.
func (e *Endpoint) SubmitDirect(p Probe) ProbeResult { return e.net.submit(e.host, p) }

// SubmitBatch implements BatchProber: the probes are issued in order with
// the transport's per-probe setup (turn bound, structural version, route
// memo key) validated once for the whole batch.
func (e *Endpoint) SubmitBatch(ps []Probe, out []ProbeResult) {
	e.net.submitBatch(e.host, ps, out)
}

// Collect implements AsyncProber: advance the clock to the result's
// completion time.
func (e *Endpoint) Collect(r ProbeResult) { e.net.collect(r) }

// Probes implements AsyncProber: the quiescent transport executes every
// probe kind; the §6 oracle kinds require their hardware switches.
func (e *Endpoint) Probes() ProbeCaps {
	caps := CapHost | CapSwitch | CapRaw | CapTolerant
	if e.net.selfID {
		caps |= CapID
	}
	return caps
}

// Host returns the bound host id.
func (e *Endpoint) Host() topology.NodeID { return e.host }

// Net returns the underlying transport.
func (e *Endpoint) Net() *Net { return e.net }

// FlakyProber wraps a Prober and drops each response with probability
// DropRate — message corruption and loss, the error class the paper's model
// explicitly leaves out ("Other errors such as message corruption are not
// addressed in the model") but that a deployed mapper must tolerate.
// Dropped responses still cost the response timeout.
type FlakyProber struct {
	Inner    Prober
	DropRate float64
	Rng      *rand.Rand
	Dropped  int64
}

// SwitchProbe implements Prober with random response loss.
func (f *FlakyProber) SwitchProbe(turns Route) bool {
	ok := f.Inner.SwitchProbe(turns)
	if ok && f.Rng.Float64() < f.DropRate {
		f.Dropped++
		return false
	}
	return ok
}

// HostProbe implements Prober with random response loss.
func (f *FlakyProber) HostProbe(turns Route) (string, bool) {
	host, ok := f.Inner.HostProbe(turns)
	if ok && f.Rng.Float64() < f.DropRate {
		f.Dropped++
		return "", false
	}
	return host, ok
}

// LocalHost implements Prober.
func (f *FlakyProber) LocalHost() string { return f.Inner.LocalHost() }

// Clock implements Prober.
func (f *FlakyProber) Clock() time.Duration { return f.Inner.Clock() }

// MaxPorts forwards the fabric's largest port count when the inner
// transport exposes it (0 otherwise: callers fall back to the default).
func (f *FlakyProber) MaxPorts() int {
	if mp, ok := f.Inner.(interface{ MaxPorts() int }); ok {
		return mp.MaxPorts()
	}
	return 0
}

// Stats forwards the inner transport's counters when available.
func (f *FlakyProber) Stats() Stats {
	if s, ok := f.Inner.(interface{ Stats() Stats }); ok {
		return s.Stats()
	}
	return Stats{}
}
