package simnet

import (
	"math/rand"
	"testing"
	"time"

	"sanmap/internal/topology"
)

func probeNet(t *testing.T) (*Net, topology.NodeID, topology.NodeID) {
	t.Helper()
	n := &topology.Network{}
	s0 := n.AddSwitch("s0")
	s1 := n.AddSwitch("s1")
	h0 := n.AddHost("h0")
	h1 := n.AddHost("h1")
	n.MustConnect(h0, 0, s0, 2)
	n.MustConnect(s0, 5, s1, 3)
	n.MustConnect(s1, 6, h1, 0)
	return NewDefault(n), h0, h1
}

func TestHostProbeAndCounters(t *testing.T) {
	sn, h0, _ := probeNet(t)
	host, ok := sn.HostProbe(h0, Route{3, 3})
	if !ok || host != "h1" {
		t.Fatalf("HostProbe = %q %v", host, ok)
	}
	if _, ok := sn.HostProbe(h0, Route{1}); ok {
		t.Fatal("probe into empty port answered")
	}
	st := sn.Stats()
	if st.HostProbes != 2 || st.HostHits != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestSwitchProbe(t *testing.T) {
	sn, h0, _ := probeNet(t)
	if !sn.SwitchProbe(h0, Route{3}) {
		t.Error("switch-probe to s1 failed")
	}
	if sn.SwitchProbe(h0, Route{3, 3}) {
		t.Error("switch-probe onto a host succeeded")
	}
	st := sn.Stats()
	if st.SwitchProbes != 2 || st.SwitchHits != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestProbePair(t *testing.T) {
	sn, h0, _ := probeNet(t)
	if r := sn.ProbePair(h0, Route{3, 3}); r.Kind != RespHost || r.Host != "h1" {
		t.Errorf("pair host: %+v", r)
	}
	if r := sn.ProbePair(h0, Route{3}); r.Kind != RespSwitch {
		t.Errorf("pair switch: %+v", r)
	}
	if r := sn.ProbePair(h0, Route{1}); r.Kind != RespNothing {
		t.Errorf("pair nothing: %+v", r)
	}
}

func TestClockAccounting(t *testing.T) {
	sn, h0, _ := probeNet(t)
	tm := sn.Timing()
	sn.HostProbe(h0, Route{3, 3}) // hit: overhead + 2*transit
	hit := sn.Clock()
	if hit <= tm.HostOverhead || hit >= tm.HostOverhead+tm.ResponseTimeout {
		t.Errorf("hit cost %v implausible", hit)
	}
	sn.ResetClock()
	sn.HostProbe(h0, Route{1}) // miss: overhead + timeout
	miss := sn.Clock()
	if miss != tm.HostOverhead+tm.ResponseTimeout {
		t.Errorf("miss cost %v, want %v", miss, tm.HostOverhead+tm.ResponseTimeout)
	}
	if miss <= hit {
		t.Error("a timeout must cost more than a round trip")
	}
	sn.AdvanceClock(time.Millisecond)
	if sn.Clock() != miss+time.Millisecond {
		t.Error("AdvanceClock broken")
	}
}

func TestSilentHostsDoNotAnswer(t *testing.T) {
	sn, h0, h1 := probeNet(t)
	sn.SetResponder(h1, false)
	if _, ok := sn.HostProbe(h0, Route{3, 3}); ok {
		t.Error("silent host answered")
	}
	sn.SetResponder(h1, true)
	if _, ok := sn.HostProbe(h0, Route{3, 3}); !ok {
		t.Error("re-enabled host did not answer")
	}
}

func TestTolerantHostProbe(t *testing.T) {
	sn, h0, _ := probeNet(t)
	// Overshooting route: reaches h1 after 2 turns with 3 left over.
	host, consumed, ok := sn.TolerantHostProbe(h0, Route{3, 3, 1, 1, 1})
	if !ok || host != "h1" || consumed != 2 {
		t.Fatalf("tolerant = %q %d %v", host, consumed, ok)
	}
	// Exact delivery also works and consumes everything.
	host, consumed, ok = sn.TolerantHostProbe(h0, Route{3, 3})
	if !ok || host != "h1" || consumed != 2 {
		t.Fatalf("tolerant exact = %q %d %v", host, consumed, ok)
	}
	// Dead-end routes still fail.
	if _, _, ok := sn.TolerantHostProbe(h0, Route{1}); ok {
		t.Error("tolerant probe into empty port answered")
	}
}

func TestRawLoopback(t *testing.T) {
	sn, h0, _ := probeNet(t)
	if !sn.RawLoopback(h0, Route{3}.Loopback()) {
		t.Error("raw loopback of a valid switch probe failed")
	}
	if sn.RawLoopback(h0, Route{3, 3}) {
		t.Error("raw loopback delivered to another host counted as loopback")
	}
}

func TestFlakyProber(t *testing.T) {
	sn, h0, _ := probeNet(t)
	f := &FlakyProber{Inner: sn.Endpoint(h0), DropRate: 1.0, Rng: rand.New(rand.NewSource(1))}
	if _, ok := f.HostProbe(Route{3, 3}); ok {
		t.Error("drop-rate-1 prober returned a response")
	}
	if f.SwitchProbe(Route{3}) {
		t.Error("drop-rate-1 switch probe returned")
	}
	if f.Dropped != 2 {
		t.Errorf("dropped = %d", f.Dropped)
	}
	if f.LocalHost() != "h0" {
		t.Errorf("LocalHost = %q", f.LocalHost())
	}
	f.DropRate = 0
	if _, ok := f.HostProbe(Route{3, 3}); !ok {
		t.Error("drop-rate-0 prober lost a response")
	}
}

func TestProbeLogHook(t *testing.T) {
	sn, h0, _ := probeNet(t)
	var kinds []string
	sn.SetProbeLog(func(kind string, _ topology.NodeID, _ Route, _ bool) {
		kinds = append(kinds, kind)
	})
	sn.HostProbe(h0, Route{3, 3})
	sn.SwitchProbe(h0, Route{3})
	sn.RawLoopback(h0, Route{3}.Loopback())
	sn.SetProbeLog(nil)
	sn.HostProbe(h0, Route{3, 3})
	if len(kinds) != 3 || kinds[0] != "host" || kinds[1] != "switch" || kinds[2] != "raw" {
		t.Errorf("kinds = %v", kinds)
	}
}

func TestEndpointBinding(t *testing.T) {
	sn, h0, _ := probeNet(t)
	ep := sn.Endpoint(h0)
	if ep.LocalHost() != "h0" || ep.Host() != h0 || ep.Net() != sn {
		t.Error("endpoint identity broken")
	}
	if host, ok := ep.HostProbe(Route{3, 3}); !ok || host != "h1" {
		t.Errorf("endpoint host probe: %q %v", host, ok)
	}
	if !ep.SwitchProbe(Route{3}) {
		t.Error("endpoint switch probe")
	}
	if ep.Stats().TotalProbes() != 2 {
		t.Errorf("endpoint stats %+v", ep.Stats())
	}
	defer func() {
		if recover() == nil {
			t.Error("endpoint on a switch should panic")
		}
	}()
	sn.Endpoint(sn.Topology().Lookup("s0"))
}
