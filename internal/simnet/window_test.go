package simnet

import (
	"errors"
	"fmt"
	"testing"

	"sanmap/internal/topology"
)

// transcript records every probe a Net issues, as the serial/pipelined
// equivalence oracle.
func transcript(sn *Net) *[]string {
	var log []string
	sn.SetProbeLog(func(kind string, _ topology.NodeID, r Route, ok bool) {
		log = append(log, fmt.Sprintf("%s %s %v", kind, r, ok))
	})
	return &log
}

// TestWindowOneMatchesSerial: a ProbeWindow with window 1 reproduces the
// synchronous methods' transcript byte for byte — same probes in the same
// order, same message counters, same virtual clock.
func TestWindowOneMatchesSerial(t *testing.T) {
	serial, sh0, _ := probeNet(t)
	piped, ph0, _ := probeNet(t)
	slog, plog := transcript(serial), transcript(piped)

	serial.HostProbe(sh0, Route{3, 3})
	serial.HostProbe(sh0, Route{1})
	serial.SwitchProbe(sh0, Route{3})
	serial.SwitchProbe(sh0, Route{3, 3})
	serial.RawLoopback(sh0, Route{3, 1, -1, -3})

	w := NewProbeWindow(piped.Endpoint(ph0), WindowConfig{Window: 1})
	w.Do([]Probe{
		{Kind: ProbeHost, Route: Route{3, 3}},
		{Kind: ProbeHost, Route: Route{1}},
		{Kind: ProbeSwitch, Route: Route{3}},
		{Kind: ProbeSwitch, Route: Route{3, 3}},
		{Kind: ProbeRaw, Route: Route{3, 1, -1, -3}},
	})

	if fmt.Sprint(*slog) != fmt.Sprint(*plog) {
		t.Errorf("transcripts differ:\nserial:    %v\npipelined: %v", *slog, *plog)
	}
	if serial.Clock() != piped.Clock() {
		t.Errorf("clocks differ: serial %v, pipelined %v", serial.Clock(), piped.Clock())
	}
	if serial.Stats() != piped.Stats() {
		t.Errorf("counters differ: serial %+v, pipelined %+v", serial.Stats(), piped.Stats())
	}
}

// TestWindowOverlapsTimeouts: with W probes in flight, W misses cost about
// one timeout instead of W — §5.2's dominant cost term, overlapped.
func TestWindowOverlapsTimeouts(t *testing.T) {
	misses := []Probe{
		{Kind: ProbeHost, Route: Route{1}},
		{Kind: ProbeHost, Route: Route{2}},
		{Kind: ProbeHost, Route: Route{4}},
		{Kind: ProbeHost, Route: Route{5}},
		{Kind: ProbeHost, Route: Route{-1}},
		{Kind: ProbeHost, Route: Route{-2}},
		{Kind: ProbeHost, Route: Route{-3}},
		{Kind: ProbeHost, Route: Route{6}},
	}
	serial, sh0, _ := probeNet(t)
	ws := NewProbeWindow(serial.Endpoint(sh0), WindowConfig{Window: 1})
	ws.Do(misses)

	piped, ph0, _ := probeNet(t)
	wp := NewProbeWindow(piped.Endpoint(ph0), WindowConfig{Window: 8})
	wp.Do(misses)

	tm := serial.Timing()
	wantSerial := 8 * (tm.HostOverhead + tm.ResponseTimeout)
	if serial.Clock() != wantSerial {
		t.Errorf("serial clock %v, want %v", serial.Clock(), wantSerial)
	}
	wantPiped := 8*tm.HostOverhead + tm.ResponseTimeout
	if piped.Clock() != wantPiped {
		t.Errorf("pipelined clock %v, want %v", piped.Clock(), wantPiped)
	}
	if 2*piped.Clock() >= serial.Clock() {
		t.Errorf("pipelining did not halve the batch time: %v vs %v",
			piped.Clock(), serial.Clock())
	}
	if got := wp.Stats().MaxInFlight; got != 8 {
		t.Errorf("MaxInFlight = %d, want 8", got)
	}
	if got := wp.Stats().TimeoutCost; got != 8*(tm.HostOverhead+tm.ResponseTimeout) {
		t.Errorf("TimeoutCost = %v, want %v", got, 8*(tm.HostOverhead+tm.ResponseTimeout))
	}
}

// TestWindowCache: a repeated probe is answered from the cache — identical
// response, no message, no virtual time.
func TestWindowCache(t *testing.T) {
	sn, h0, _ := probeNet(t)
	w := NewProbeWindow(sn.Endpoint(h0), WindowConfig{Window: 4, Cache: true})
	first := w.DoOne(Probe{Kind: ProbeHost, Route: Route{3, 3}})
	if !first.OK || first.Host != "h1" || first.Cached {
		t.Fatalf("first probe: %+v", first)
	}
	mark := sn.Clock()
	again := w.DoOne(Probe{Kind: ProbeHost, Route: Route{3, 3}})
	if !again.Cached || !again.OK || again.Host != first.Host || again.Latency != 0 {
		t.Errorf("cached probe: %+v", again)
	}
	if sn.Clock() != mark {
		t.Errorf("cache hit advanced the clock by %v", sn.Clock()-mark)
	}
	st := w.Stats()
	if st.Submitted != 1 || st.CacheHits != 1 {
		t.Errorf("stats %+v, want 1 submitted / 1 cache hit", st)
	}
	if sn.Stats().HostProbes != 1 {
		t.Errorf("transport saw %d host probes, want 1", sn.Stats().HostProbes)
	}
}

// dropFirst fails the first host probe (after paying its real cost), then
// behaves normally — a deterministic single-loss transport.
type dropFirst struct {
	*Endpoint
	dropped bool
}

func (d *dropFirst) HostProbe(turns Route) (string, bool) {
	if !d.dropped {
		d.dropped = true
		d.Endpoint.HostProbe(turns)
		return "", false
	}
	return d.Endpoint.HostProbe(turns)
}

// TestWindowRetryAfterTimeout: the bounded retry resubmits a missed probe
// and surfaces the eventual response.
func TestWindowRetryAfterTimeout(t *testing.T) {
	sn, h0, _ := probeNet(t)
	w := NewProbeWindow(AsyncAdapter{P: &dropFirst{Endpoint: sn.Endpoint(h0)}},
		WindowConfig{Window: 4, Retries: 1})
	r := w.DoOne(Probe{Kind: ProbeHost, Route: Route{3, 3}})
	if !r.OK || r.Host != "h1" {
		t.Fatalf("retried probe: %+v", r)
	}
	st := w.Stats()
	if st.Retries != 1 || st.Submitted != 2 {
		t.Errorf("stats %+v, want 1 retry / 2 submitted", st)
	}
}

// TestProbeErrorClassification: the sentinel errors distinguish the three
// failure classes.
func TestProbeErrorClassification(t *testing.T) {
	sn, h0, h1 := probeNet(t)
	ep := sn.Endpoint(h0)
	do := func(p Probe) ProbeResult {
		r := <-ep.Submit(p)
		ep.Collect(r)
		return r
	}
	if r := do(Probe{Kind: ProbeHost, Route: Route{1}}); !errors.Is(r.Err, ErrTimeout) {
		t.Errorf("dead-end probe: err = %v, want ErrTimeout", r.Err)
	}
	sn.SetResponder(h1, false)
	if r := do(Probe{Kind: ProbeHost, Route: Route{3, 3}}); !errors.Is(r.Err, ErrNoResponder) {
		t.Errorf("silent-host probe: err = %v, want ErrNoResponder", r.Err)
	}
	if r := do(Probe{Kind: ProbeKind(99)}); !errors.Is(r.Err, ErrUnsupported) {
		t.Errorf("bogus kind: err = %v, want ErrUnsupported", r.Err)
	}
}

// TestWindowMixedRetryTimeoutCache drives one window through every outcome
// class at once — a retried-then-successful probe, a permanent timeout that
// exhausts its retry budget, and a plain success — and checks the counters
// and the cache's treatment of each.
func TestWindowMixedRetryTimeoutCache(t *testing.T) {
	sn, h0, _ := probeNet(t)
	w := NewProbeWindow(AsyncAdapter{P: &dropFirst{Endpoint: sn.Endpoint(h0)}},
		WindowConfig{Window: 4, Retries: 1, Cache: true})

	batch := []Probe{
		{Kind: ProbeHost, Route: Route{3, 3}}, // dropped once, succeeds on retry
		{Kind: ProbeHost, Route: Route{1}},    // dead end: times out, retries, times out
		{Kind: ProbeSwitch, Route: Route{3}},  // succeeds outright
	}
	res := w.Do(batch)
	if !res[0].OK || res[0].Host != "h1" {
		t.Fatalf("retried probe: %+v", res[0])
	}
	if res[1].OK || !errors.Is(res[1].Err, ErrTimeout) {
		t.Fatalf("dead-end probe: %+v", res[1])
	}
	if !res[2].OK {
		t.Fatalf("switch probe: %+v", res[2])
	}
	st := w.Stats()
	// 3 first attempts + 2 retries (the dropped probe and the dead end).
	if st.Submitted != 5 || st.Retries != 2 || st.CacheHits != 0 {
		t.Fatalf("after mixed batch: %+v", st)
	}

	// Replays: every final outcome — success AND exhausted failure — was
	// cached, so the same batch costs no messages and no virtual time.
	mark := sn.Clock()
	res = w.Do(batch)
	if !res[0].Cached || !res[0].OK || res[0].Host != "h1" {
		t.Errorf("cached success: %+v", res[0])
	}
	if !res[1].Cached || res[1].OK || !errors.Is(res[1].Err, ErrTimeout) {
		t.Errorf("cached failure: %+v", res[1])
	}
	if !res[2].Cached || !res[2].OK {
		t.Errorf("cached switch probe: %+v", res[2])
	}
	for i, r := range res {
		if r.Latency != 0 {
			t.Errorf("cached probe %d paid latency %v", i, r.Latency)
		}
	}
	if sn.Clock() != mark {
		t.Errorf("cache replay advanced the clock by %v", sn.Clock()-mark)
	}
	st = w.Stats()
	if st.Submitted != 5 || st.CacheHits != 3 {
		t.Errorf("after replay: %+v", st)
	}
	if sn.Stats().HostProbes != 4 {
		t.Errorf("transport saw %d host probes, want 4", sn.Stats().HostProbes)
	}
}
