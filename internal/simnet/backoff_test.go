package simnet

import (
	"testing"
	"time"
)

// missProbe is a probe no network in probeNet answers (turn 7 off the first
// switch is unwired there), so every submission costs the full timeout.
var missProbe = Probe{Kind: ProbeHost, Route: Route{7}}

func TestBackoffChargesVirtualTime(t *testing.T) {
	plain, ph0, _ := probeNet(t)
	backed, bh0, _ := probeNet(t)

	wPlain := NewProbeWindow(plain.Endpoint(ph0), WindowConfig{Window: 1, Retries: 2})
	wBacked := NewProbeWindow(backed.Endpoint(bh0), WindowConfig{
		Window: 1, Retries: 2,
		Backoff: time.Millisecond, Seed: 9,
	})
	wPlain.DoOne(missProbe)
	wBacked.DoOne(missProbe)

	bs := wBacked.Stats()
	if bs.BackoffWait <= 0 {
		t.Fatalf("backoff retries recorded no wait: %+v", bs)
	}
	// The waits advance the transport's virtual clock (Endpoint implements
	// Sleeper) and are charged to TimeoutCost on top of the miss timeouts.
	if got, want := backed.Clock()-plain.Clock(), bs.BackoffWait; got != want {
		t.Errorf("clock advanced by %v, BackoffWait says %v", got, want)
	}
	if bs.TimeoutCost != wPlain.Stats().TimeoutCost+bs.BackoffWait {
		t.Errorf("TimeoutCost %v does not include backoff (plain %v + wait %v)",
			bs.TimeoutCost, wPlain.Stats().TimeoutCost, bs.BackoffWait)
	}
	if bs.Retries != wPlain.Stats().Retries {
		t.Errorf("backoff changed the retry count: %d vs %d", bs.Retries, wPlain.Stats().Retries)
	}
}

func TestBackoffDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) WindowStats {
		sn, h0, _ := probeNet(t)
		w := NewProbeWindow(sn.Endpoint(h0), WindowConfig{
			Window: 1, Retries: 3,
			Backoff: time.Millisecond, Seed: seed,
		})
		w.DoOne(missProbe)
		return w.Stats()
	}
	a, b := run(1), run(1)
	if a != b {
		t.Errorf("same seed, different schedules: %+v vs %+v", a, b)
	}
	c := run(2)
	if a.BackoffWait == c.BackoffWait {
		t.Errorf("different seeds drew identical jitter %v — jitter looks unseeded", a.BackoffWait)
	}
}

func TestBackoffCapBoundsGrowth(t *testing.T) {
	sn, h0, _ := probeNet(t)
	base := 100 * time.Microsecond
	cap := 200 * time.Microsecond
	w := NewProbeWindow(sn.Endpoint(h0), WindowConfig{
		Window: 1, Retries: 8,
		Backoff: base, BackoffCap: cap, Seed: 3,
	})
	w.DoOne(missProbe)
	// Worst case per wait is cap + ¼cap of jitter; 8 retries stay under
	// 8 × 1.25 × cap, where uncapped exponential growth would blow past it.
	if limit := time.Duration(8) * (cap + cap/4); w.Stats().BackoffWait > limit {
		t.Errorf("BackoffWait %v exceeds capped bound %v", w.Stats().BackoffWait, limit)
	}
}

func TestRouteBudgetStopsRetries(t *testing.T) {
	sn, h0, _ := probeNet(t)
	w := NewProbeWindow(sn.Endpoint(h0), WindowConfig{
		Window: 1, Retries: 4, RouteBudget: 3,
	})
	// Two passes over the same dead route: 4 retries would be spent per
	// pass, but the budget admits only 3 in total.
	w.DoOne(missProbe)
	w.DoOne(missProbe)
	st := w.Stats()
	if st.Retries != 3 {
		t.Errorf("route budget of 3 spent %d retries", st.Retries)
	}
	if st.BudgetDenied == 0 {
		t.Errorf("exhausted budget recorded no denials: %+v", st)
	}
}

func TestNoBackoffZeroIsByteIdentical(t *testing.T) {
	a, ah0, _ := probeNet(t)
	b, bh0, _ := probeNet(t)
	wa := NewProbeWindow(a.Endpoint(ah0), WindowConfig{Window: 2, Retries: 1})
	wb := NewProbeWindow(b.Endpoint(bh0), WindowConfig{Window: 2, Retries: 1, Seed: 77})
	probes := []Probe{missProbe, {Kind: ProbeSwitch, Route: Route{3}}}
	wa.Do(probes)
	wb.Do(probes)
	if a.Clock() != b.Clock() || a.Stats() != b.Stats() {
		t.Errorf("zero-backoff config with a seed diverged: clocks %v/%v", a.Clock(), b.Clock())
	}
	if wa.Stats().String() != wb.Stats().String() {
		t.Errorf("WindowStats rendering changed without backoff: %q vs %q",
			wa.Stats().String(), wb.Stats().String())
	}
}

// sleepRecorder wraps an endpoint transport and records every backoff
// wait the window realises, tagged with the virtual time it fired at.
type sleepRecorder struct {
	*Endpoint
	waits []time.Duration
	at    []time.Duration
}

func (r *sleepRecorder) Sleep(d time.Duration) {
	r.at = append(r.at, r.Endpoint.Clock())
	r.waits = append(r.waits, d)
	r.Endpoint.Sleep(d)
}

// TestBackoffJitterScheduleDeterministic replays the same probe load on
// two same-seed windows and requires the full retry schedule — each
// backoff duration and the virtual instant it was charged at — to match
// exactly, not just the aggregate stats. This is the property sanmapd's
// crash/restart harness leans on: a resumed run re-derives the identical
// virtual-time schedule.
func TestBackoffJitterScheduleDeterministic(t *testing.T) {
	run := func(seed uint64) ([]time.Duration, []time.Duration) {
		sn, h0, _ := probeNet(t)
		rec := &sleepRecorder{Endpoint: sn.Endpoint(h0)}
		w := NewProbeWindow(rec, WindowConfig{
			Window: 1, Retries: 4,
			Backoff: time.Millisecond, BackoffCap: 4 * time.Millisecond, Seed: seed,
		})
		w.DoOne(missProbe)
		w.DoOne(Probe{Kind: ProbeSwitch, Route: Route{7}})
		w.DoOne(missProbe)
		return rec.waits, rec.at
	}
	w1, at1 := run(42)
	w2, at2 := run(42)
	if len(w1) == 0 {
		t.Fatal("no backoff waits recorded — misses are not retrying")
	}
	if len(w1) != len(w2) {
		t.Fatalf("same seed, different retry counts: %d vs %d", len(w1), len(w2))
	}
	for i := range w1 {
		if w1[i] != w2[i] || at1[i] != at2[i] {
			t.Fatalf("retry %d diverged: %v@%v vs %v@%v", i, w1[i], at1[i], w2[i], at2[i])
		}
	}
	// A different seed must produce a different jitter schedule (same
	// count — the load is identical — but different waits).
	w3, _ := run(43)
	same := len(w3) == len(w1)
	if same {
		for i := range w1 {
			if w1[i] != w3[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("seeds 42 and 43 drew identical schedules — jitter looks unseeded")
	}
}
