// Package simnet executes the formal system model of §2 of the SPAA'97
// mapping paper: source-routed messages ("worms") that traverse a
// topology.Network of anonymous 8-port switches using relative,
// non-modular port addressing, under configurable collision models
// (packet, cut-through, circuit), with a virtual clock calibrated to the
// paper's Myrinet hardware constants.
//
// The mapping algorithms in internal/mapper and internal/myricom observe
// the network exclusively through this package's probe transport, exactly
// as the paper's mappers observe the real network through probe responses.
package simnet

import (
	"fmt"
	"strconv"
	"strings"

	"sanmap/internal/topology"
)

// Turn is one routing flit: an output-port offset relative to the input
// port (§2.2). On a switch of radix R the offset lies in {-(R-1), ...,
// +(R-1)}; the addition is not performed modulo the switch degree. The
// int8 representation covers every radix up to topology.MaxSwitchRadix. A
// zero turn sends the message back out of the port it arrived on; probe
// strings use it only as the reflection point of switch-probes.
type Turn int8

// MaxTurn is the largest turn magnitude on the paper's 8-port switches.
// Larger-radix fabrics use the per-network bound Net.MaxTurn instead.
const MaxTurn = 7

// maxParseTurn bounds turns accepted from the wire formats: the largest
// offset any switch of radix topology.MaxSwitchRadix can route.
const maxParseTurn = topology.MaxSwitchRadix - 1

// Route is a routing address: the string a1...ak of turns a message
// carries (§2.2).
type Route []Turn

// Valid reports whether every turn is within {-7..+7}, the bound of the
// paper's 8-port switches. Zero turns are permitted; ValidProbe
// additionally rejects them. For other radices use ValidFor.
func (r Route) Valid() bool { return r.ValidFor(MaxTurn) }

// ValidFor reports whether every turn magnitude is at most maxTurn
// (typically radix-1 of the largest switch in the fabric).
func (r Route) ValidFor(maxTurn Turn) bool {
	for _, t := range r {
		if t < -maxTurn || t > maxTurn {
			return false
		}
	}
	return true
}

// ValidProbe reports whether the route is a legal probe prefix on 8-port
// switches: all turns within {-7..+7} and non-zero (§2.3 requires aᵢ ≠ 0
// for probe strings). For other radices use ValidProbeFor.
func (r Route) ValidProbe() bool { return r.ValidProbeFor(MaxTurn) }

// ValidProbeFor reports whether the route is a legal probe prefix under
// the given turn bound: all magnitudes at most maxTurn and non-zero.
func (r Route) ValidProbeFor(maxTurn Turn) bool {
	for _, t := range r {
		if t == 0 || t < -maxTurn || t > maxTurn {
			return false
		}
	}
	return true
}

// Reversed returns the route -ak ... -a1 that retraces r hop by hop.
func (r Route) Reversed() Route {
	out := make(Route, len(r))
	for i, t := range r {
		out[len(r)-1-i] = -t
	}
	return out
}

// Loopback returns the switch-probe route a1...ak 0 -ak...-a1 (§2.3): out
// to the node k hops past the first switch, reflect off it with a 0 turn,
// and retrace home. The mapper receiving this message back proves the
// reflecting node is a switch.
func (r Route) Loopback() Route {
	return r.AppendLoopback(make(Route, 0, 2*len(r)+1))
}

// AppendLoopback appends the loopback expansion of r (§2.3: r, 0, reversed
// r) to dst and returns the extended slice. It is the allocation-free form
// of Loopback for hot paths that own a reusable buffer.
func (r Route) AppendLoopback(dst Route) Route {
	dst = append(dst, r...)
	dst = append(dst, 0)
	for i := len(r) - 1; i >= 0; i-- {
		dst = append(dst, -r[i])
	}
	return dst
}

// Extend returns a copy of r with turn t appended.
func (r Route) Extend(t Turn) Route {
	out := make(Route, len(r)+1)
	copy(out, r)
	out[len(r)] = t
	return out
}

// Clone returns an independent copy.
func (r Route) Clone() Route { return append(Route(nil), r...) }

// Equal reports turn-wise equality.
func (r Route) Equal(o Route) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if r[i] != o[i] {
			return false
		}
	}
	return true
}

// String renders the route as explicit signed turns, e.g. "+1-3+2";
// the empty route renders as "ε". Route strings key the probe caches and
// the mapper's prefetch tables, so the rendering is hand-rolled: the fmt
// machinery used to dominate the pipelined engine's wall-clock profile.
func (r Route) String() string {
	if len(r) == 0 {
		return "ε"
	}
	return string(r.AppendText(make([]byte, 0, 3*len(r))))
}

// AppendText appends the String rendering of r to dst and returns the
// extended slice — the allocation-free form for hot paths that own a
// reusable key buffer (map lookups via string(dst) do not allocate).
//
//sanlint:hotpath
func (r Route) AppendText(dst []byte) []byte {
	for _, t := range r {
		v := int(t)
		if v >= 0 {
			dst = append(dst, '+')
		} else {
			dst = append(dst, '-')
			v = -v
		}
		// Turn magnitudes are < topology.MaxSwitchRadix (three digits).
		if v >= 100 {
			dst = append(dst, byte('0'+v/100))
		}
		if v >= 10 {
			dst = append(dst, byte('0'+(v/10)%10))
		}
		dst = append(dst, byte('0'+v%10))
	}
	return dst
}

// ParseRoute parses the String format ("+1-3+2", or "ε"/"" for the empty
// route). Each turn must carry an explicit sign except a bare "0".
func ParseRoute(s string) (Route, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "ε" {
		return Route{}, nil
	}
	var out Route
	for i := 0; i < len(s); {
		j := i + 1
		if s[i] != '+' && s[i] != '-' && s[i] != '0' {
			return nil, fmt.Errorf("simnet: route %q: turn must start with sign at offset %d", s, i)
		}
		for j < len(s) && s[j] >= '0' && s[j] <= '9' {
			j++
		}
		v, err := strconv.Atoi(s[i:j])
		if err != nil {
			return nil, fmt.Errorf("simnet: route %q: %v", s, err)
		}
		if v < -maxParseTurn || v > maxParseTurn {
			return nil, fmt.Errorf("simnet: route %q: turn %d out of range", s, v)
		}
		out = append(out, Turn(v))
		i = j
	}
	return out, nil
}
