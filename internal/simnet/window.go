package simnet

import (
	"errors"
	"fmt"
	"time"

	"sanmap/internal/obs"
)

// WindowConfig parameterises a ProbeWindow.
type WindowConfig struct {
	// Window is the maximum number of in-flight probes. Values <= 1 degrade
	// to strict submit-then-collect serial operation, which reproduces the
	// synchronous transcript byte for byte.
	Window int
	// Retries is how many times a missed probe is re-submitted (serially,
	// at collection time) before its failure is accepted. Useful over lossy
	// transports; pointless over the deterministic quiescent net.
	Retries int
	// Timeout, when positive, overrides the transport's response timeout
	// for every probe issued through the window.
	Timeout time.Duration
	// Cache enables the probe-response cache keyed by probe kind and route
	// string: a repeated probe is answered from the cache at zero virtual
	// cost and without sending a message.
	Cache bool
	// Backoff, when positive, replaces immediate retry resubmission with
	// capped exponential backoff: the k-th retry of a probe waits
	// Backoff<<k (bounded by BackoffCap) plus a deterministic jitter of up
	// to ±¼ of that base before resubmitting. The wait is virtual time —
	// transports implementing Sleeper consume it on their clock — and is
	// charged to WindowStats.TimeoutCost either way.
	Backoff time.Duration
	// BackoffCap bounds the exponential growth (default 8×Backoff).
	BackoffCap time.Duration
	// Seed drives the deterministic backoff jitter; windows created with
	// the same seed replay the same retry schedule.
	Seed uint64
	// RouteBudget, when positive, bounds the total retries spent on any
	// single route over the window's lifetime: a persistently dead route
	// stops consuming retry probes once its budget is exhausted.
	RouteBudget int
	// Metrics, when non-nil, is the obs registry the window registers its
	// counters in (names under "probe.window.", see internal/obs). Several
	// windows handed the same registry share handles and therefore
	// aggregate; nil gets a private registry, preserving the historical
	// per-window Stats semantics.
	Metrics *obs.Registry
}

// Sleeper is optionally implemented by transports whose virtual clock can
// advance without probing; the window uses it to realise backoff waits.
type Sleeper interface {
	Sleep(d time.Duration)
}

// WindowStats counts what a ProbeWindow did.
type WindowStats struct {
	// Submitted counts probes actually handed to the transport (retries
	// included, cache hits excluded).
	Submitted int64
	// CacheHits counts probes answered from the response cache.
	CacheHits int64
	// Retries counts re-submissions after a miss.
	Retries int64
	// MaxInFlight is the in-flight high-water mark.
	MaxInFlight int
	// TimeoutCost is virtual time spent waiting on probes that missed —
	// the cost pipelining overlaps, and exactly what the window buys back.
	// Backoff waits are included (they are time lost to misses too).
	TimeoutCost time.Duration
	// BackoffWait is the portion of TimeoutCost spent in retry backoff.
	BackoffWait time.Duration
	// BudgetDenied counts retries suppressed by an exhausted route budget.
	BudgetDenied int64
}

// String renders the counters on one line.
func (s WindowStats) String() string {
	out := fmt.Sprintf("submitted=%d cache=%d retries=%d inflight≤%d timeout-cost=%v",
		s.Submitted, s.CacheHits, s.Retries, s.MaxInFlight, s.TimeoutCost)
	if s.BackoffWait > 0 || s.BudgetDenied > 0 {
		out += fmt.Sprintf(" backoff=%v budget-denied=%d", s.BackoffWait, s.BudgetDenied)
	}
	return out
}

// ProbeWindow is the batching scheduler of the pipelined probe engine: it
// slides a bounded window of in-flight probes over a batch, collecting
// results strictly in submission order so that runs stay deterministic. The
// point is §5.2's observation inverted: unanswered probes cost the full
// response timeout, but with W probes in flight those timeouts overlap, so
// a batch with many misses completes in roughly max(issue time, longest
// wait) instead of their sum.
//
// A ProbeWindow is not safe for concurrent use; like the transports, its
// concurrency is virtual.
type ProbeWindow struct {
	p     AsyncProber
	cfg   WindowConfig
	cache map[string]ProbeResult
	m     windowMetrics
	// routeSpent tracks retries charged per route (RouteBudget > 0 only);
	// jitterSeq numbers backoff draws so jitter is deterministic per window.
	routeSpent map[string]int
	jitterSeq  uint64
}

// windowMetrics holds the window's pre-registered obs handles — the
// counters behind WindowStats. Handles, not fields: the hot path updates
// them with zero allocation, and a shared registry (WindowConfig.Metrics)
// aggregates several windows into one telemetry sidecar.
type windowMetrics struct {
	submitted    *obs.Counter
	cacheHits    *obs.Counter
	retries      *obs.Counter
	budgetDenied *obs.Counter
	timeoutCost  *obs.Counter // virtual ns lost to misses
	backoffWait  *obs.Counter // portion of the above spent in backoff
	maxInFlight  *obs.Gauge
	missWait     *obs.Histogram
}

// registerWindowMetrics resolves the window's handles in reg.
func registerWindowMetrics(reg *obs.Registry) windowMetrics {
	return windowMetrics{
		submitted:    reg.Counter("probe.window.submitted"),
		cacheHits:    reg.Counter("probe.window.cache.hits"),
		retries:      reg.Counter("probe.window.retries"),
		budgetDenied: reg.Counter("probe.window.budget.denied"),
		timeoutCost:  reg.Counter("probe.window.timeout.cost.ns"),
		backoffWait:  reg.Counter("probe.window.backoff.wait.ns"),
		maxInFlight:  reg.Gauge("probe.window.inflight.max"),
		missWait:     reg.Histogram("probe.window.miss.wait", obs.DefaultBuckets()),
	}
}

// NewProbeWindow builds a window over a transport.
func NewProbeWindow(p AsyncProber, cfg WindowConfig) *ProbeWindow {
	if cfg.Window < 1 {
		cfg.Window = 1
	}
	if cfg.Backoff > 0 && cfg.BackoffCap <= 0 {
		cfg.BackoffCap = 8 * cfg.Backoff
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	w := &ProbeWindow{p: p, cfg: cfg, m: registerWindowMetrics(reg)}
	if cfg.Cache {
		w.cache = make(map[string]ProbeResult)
	}
	if cfg.RouteBudget > 0 {
		w.routeSpent = make(map[string]int)
	}
	return w
}

// mix64 is the splitmix64 finalizer: a deterministic seeded hash used for
// backoff jitter (no global rand, no wall clock — the runs stay replayable).
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// backoffWait computes the capped exponential base for retry attempt (0-based)
// and applies the window's deterministic jitter of up to ±¼ of the base.
func (w *ProbeWindow) backoffWait(attempt int) time.Duration {
	base := w.cfg.BackoffCap
	if attempt < 16 {
		if b := w.cfg.Backoff << uint(attempt); b < base {
			base = b
		}
	}
	w.jitterSeq++
	if span := int64(base) / 2; span > 0 {
		jitter := time.Duration(mix64(w.cfg.Seed+w.jitterSeq)%uint64(span+1)) - base/4
		base += jitter
	}
	return base
}

// Stats returns the engine counters accumulated so far, assembled from
// the obs handles. With a shared WindowConfig.Metrics registry the values
// aggregate across every window registered in it.
func (w *ProbeWindow) Stats() WindowStats {
	return WindowStats{
		Submitted:    w.m.submitted.Value(),
		CacheHits:    w.m.cacheHits.Value(),
		Retries:      w.m.retries.Value(),
		MaxInFlight:  int(w.m.maxInFlight.Value()),
		TimeoutCost:  w.m.timeoutCost.DurationValue(),
		BackoffWait:  w.m.backoffWait.DurationValue(),
		BudgetDenied: w.m.budgetDenied.Value(),
	}
}

// Prober returns the underlying transport.
func (w *ProbeWindow) Prober() AsyncProber { return w.p }

// cacheKey identifies a probe for the response cache: kind plus route
// string (the route string is unique per turn sequence).
func cacheKey(p Probe) string { return p.Kind.String() + "|" + p.Route.String() }

// Do issues the batch through the sliding window and returns one result per
// probe, in submission order. Results for probes answered from the cache
// carry Cached=true and zero latency.
func (w *ProbeWindow) Do(batch []Probe) []ProbeResult {
	out := make([]ProbeResult, len(batch))
	st := w.Stream()
	for i, p := range batch {
		for st.Free() <= 0 {
			tag, r := st.Collect()
			out[tag] = r
		}
		st.Submit(p, i)
	}
	for st.Len() > 0 {
		tag, r := st.Collect()
		out[tag] = r
	}
	return out
}

// spending is one queued Stream entry: either a live in-flight probe (ch,
// with peek holding its result once NextDone looked at it) or an instant
// cache answer (cached) kept in the queue for ordering.
type spending struct {
	p      Probe
	tag    int
	ch     <-chan ProbeResult
	peek   *ProbeResult
	cached *ProbeResult
}

// Stream is the incremental interface to a ProbeWindow — the fully general
// form of Do, for pipelines whose later probes depend on earlier responses
// (e.g. a follow-up probe submitted the moment its predecessor's miss is
// collected, while the rest of the window stays in flight). Callers submit
// tagged probes as Free() allows and Collect results strictly in submission
// order; cache and bounded retry apply exactly as in Do.
type Stream struct {
	w        *ProbeWindow
	inflight []spending
}

// Stream opens an incremental submission stream over the window.
func (w *ProbeWindow) Stream() *Stream { return &Stream{w: w} }

// live counts entries occupying transport window slots (cache answers are
// free).
func (s *Stream) live() int {
	n := 0
	for _, e := range s.inflight {
		if e.ch != nil {
			n++
		}
	}
	return n
}

// Free reports the remaining window capacity.
func (s *Stream) Free() int { return s.w.cfg.Window - s.live() }

// Len reports queued entries awaiting Collect.
func (s *Stream) Len() int { return len(s.inflight) }

// Submit enqueues one probe. A cache hit retires instantly without sending
// a message; otherwise the probe is handed to the transport. Submit never
// blocks — callers wanting overlap should stay within Free().
func (s *Stream) Submit(p Probe, tag int) {
	if s.w.cache != nil {
		if c, ok := s.w.cache[cacheKey(p)]; ok {
			s.w.m.cacheHits.Inc()
			c.Cached = true
			c.Done = s.w.p.Clock()
			c.Latency = 0
			s.inflight = append(s.inflight, spending{p: p, tag: tag, cached: &c})
			return
		}
	}
	s.inflight = append(s.inflight, spending{p: p, tag: tag, ch: s.w.p.Submit(s.w.withTimeout(p))})
	s.w.m.submitted.Inc()
	s.w.m.maxInFlight.SetMax(int64(s.live()))
}

// NextDone peeks at the completion time of the oldest queued entry without
// collecting it (the transport fills the result channel at Submit time, so
// the peek never blocks). Schedulers use it to decide whether a further
// speculative submission rides for free: as long as the clock has not
// reached the oldest completion, issuing another probe overlaps time the
// stream would spend waiting anyway.
func (s *Stream) NextDone() (time.Duration, bool) {
	if len(s.inflight) == 0 {
		return 0, false
	}
	e := &s.inflight[0]
	if e.cached != nil {
		return e.cached.Done, true
	}
	if e.peek == nil {
		r := <-e.ch
		e.peek = &r
	}
	return e.peek.Done, true
}

// Collect retires the oldest entry: synchronise the clock with its
// completion, run the bounded retry loop on a miss, cache the final result
// and return it with the submitter's tag.
func (s *Stream) Collect() (int, ProbeResult) {
	e := s.inflight[0]
	s.inflight = s.inflight[1:]
	if e.cached != nil {
		return e.tag, *e.cached
	}
	var r ProbeResult
	if e.peek != nil {
		r = *e.peek
	} else {
		r = <-e.ch
	}
	s.w.p.Collect(r)
	if !r.OK {
		s.w.m.timeoutCost.AddDuration(r.Latency)
		s.w.m.missWait.Observe(r.Latency)
	}
	for attempt := 0; !r.OK && !errors.Is(r.Err, ErrUnsupported) && attempt < s.w.cfg.Retries; attempt++ {
		if s.w.routeSpent != nil {
			key := cacheKey(e.p)
			if s.w.routeSpent[key] >= s.w.cfg.RouteBudget {
				s.w.m.budgetDenied.Inc()
				break
			}
			s.w.routeSpent[key]++
		}
		if s.w.cfg.Backoff > 0 {
			wait := s.w.backoffWait(attempt)
			if sl, ok := s.w.p.(Sleeper); ok {
				sl.Sleep(wait)
			}
			s.w.m.timeoutCost.AddDuration(wait)
			s.w.m.backoffWait.AddDuration(wait)
		}
		s.w.m.retries.Inc()
		s.w.m.submitted.Inc()
		r = <-s.w.p.Submit(s.w.withTimeout(e.p))
		s.w.p.Collect(r)
		if !r.OK {
			s.w.m.timeoutCost.AddDuration(r.Latency)
			s.w.m.missWait.Observe(r.Latency)
		}
	}
	if s.w.cache != nil {
		s.w.cache[cacheKey(e.p)] = r
	}
	return e.tag, r
}

// Abandon drops every queued entry without collecting it: the messages were
// sent and their overhead paid, but nobody waits for the responses. Used
// when the consumer loses interest in its speculative lookahead.
func (s *Stream) Abandon() { s.inflight = nil }

// DoOne runs a single probe through the window (cache and retry apply; no
// overlap, since there is nothing to overlap with).
func (w *ProbeWindow) DoOne(p Probe) ProbeResult {
	return w.Do([]Probe{p})[0]
}

// withTimeout applies the window-level timeout override.
func (w *ProbeWindow) withTimeout(p Probe) Probe {
	if w.cfg.Timeout > 0 && p.Timeout == 0 {
		p.Timeout = w.cfg.Timeout
	}
	return p
}
