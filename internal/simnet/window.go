package simnet

import (
	"errors"
	"fmt"
	"time"

	"sanmap/internal/obs"
)

// WindowConfig parameterises a ProbeWindow.
type WindowConfig struct {
	// Window is the maximum number of in-flight probes. Values <= 1 degrade
	// to strict submit-then-collect serial operation, which reproduces the
	// synchronous transcript byte for byte.
	Window int
	// Retries is how many times a missed probe is re-submitted (serially,
	// at collection time) before its failure is accepted. Useful over lossy
	// transports; pointless over the deterministic quiescent net.
	Retries int
	// Timeout, when positive, overrides the transport's response timeout
	// for every probe issued through the window.
	Timeout time.Duration
	// Cache enables the probe-response cache keyed by probe kind and route
	// string: a repeated probe is answered from the cache at zero virtual
	// cost and without sending a message.
	Cache bool
	// Backoff, when positive, replaces immediate retry resubmission with
	// capped exponential backoff: the k-th retry of a probe waits
	// Backoff<<k (bounded by BackoffCap) plus a deterministic jitter of up
	// to ±¼ of that base before resubmitting. The wait is virtual time —
	// transports implementing Sleeper consume it on their clock — and is
	// charged to WindowStats.TimeoutCost either way.
	Backoff time.Duration
	// BackoffCap bounds the exponential growth (default 8×Backoff).
	BackoffCap time.Duration
	// Seed drives the deterministic backoff jitter; windows created with
	// the same seed replay the same retry schedule.
	Seed uint64
	// RouteBudget, when positive, bounds the total retries spent on any
	// single route over the window's lifetime: a persistently dead route
	// stops consuming retry probes once its budget is exhausted.
	RouteBudget int
	// Metrics, when non-nil, is the obs registry the window registers its
	// counters in (names under "probe.window.", see internal/obs). Several
	// windows handed the same registry share handles and therefore
	// aggregate; nil gets a private registry, preserving the historical
	// per-window Stats semantics.
	Metrics *obs.Registry
}

// Sleeper is optionally implemented by transports whose virtual clock can
// advance without probing; the window uses it to realise backoff waits.
type Sleeper interface {
	Sleep(d time.Duration)
}

// WindowStats counts what a ProbeWindow did.
type WindowStats struct {
	// Submitted counts probes actually handed to the transport (retries
	// included, cache hits excluded).
	Submitted int64
	// CacheHits counts probes answered from the response cache.
	CacheHits int64
	// Retries counts re-submissions after a miss.
	Retries int64
	// MaxInFlight is the in-flight high-water mark.
	MaxInFlight int
	// TimeoutCost is virtual time spent waiting on probes that missed —
	// the cost pipelining overlaps, and exactly what the window buys back.
	// Backoff waits are included (they are time lost to misses too).
	TimeoutCost time.Duration
	// BackoffWait is the portion of TimeoutCost spent in retry backoff.
	BackoffWait time.Duration
	// BudgetDenied counts retries suppressed by an exhausted route budget.
	BudgetDenied int64
}

// String renders the counters on one line.
func (s WindowStats) String() string {
	out := fmt.Sprintf("submitted=%d cache=%d retries=%d inflight≤%d timeout-cost=%v",
		s.Submitted, s.CacheHits, s.Retries, s.MaxInFlight, s.TimeoutCost)
	if s.BackoffWait > 0 || s.BudgetDenied > 0 {
		out += fmt.Sprintf(" backoff=%v budget-denied=%d", s.BackoffWait, s.BudgetDenied)
	}
	return out
}

// ProbeWindow is the batching scheduler of the pipelined probe engine: it
// slides a bounded window of in-flight probes over a batch, collecting
// results strictly in submission order so that runs stay deterministic. The
// point is §5.2's observation inverted: unanswered probes cost the full
// response timeout, but with W probes in flight those timeouts overlap, so
// a batch with many misses completes in roughly max(issue time, longest
// wait) instead of their sum.
//
// A ProbeWindow is not safe for concurrent use; like the transports, its
// concurrency is virtual.
type ProbeWindow struct {
	p AsyncProber
	// dp/bp are the transport's channel-free and batched fast paths (nil
	// when unsupported). Every transport in this repo implements at least
	// DirectProber, so the channel machinery below is a compatibility
	// fallback, not the common case.
	dp    DirectProber
	bp    BatchProber
	cfg   WindowConfig
	cache map[string]cacheEntry
	m     windowMetrics
	// routeSpent tracks retries charged per route (RouteBudget > 0 only);
	// jitterSeq numbers backoff draws so jitter is deterministic per window.
	routeSpent map[string]int
	jitterSeq  uint64
	// keyBuf is the reusable cache/budget key scratch (probe kind byte plus
	// raw turn bytes); map lookups through string(keyBuf) do not allocate.
	keyBuf []byte
	// batchBuf/batchRes are the reusable staging slices for transport-level
	// SubmitBatch calls.
	batchBuf []Probe
	batchRes []ProbeResult
	// spare/spareStream recycle the ring buffer and Stream header between
	// streams: Abandon returns them, the next Stream picks them up. Only
	// one stream is live at a time in every engine in this repo, so one
	// slot suffices; concurrent streams simply fall back to allocating.
	// A Stream must not be used after Abandon.
	spare       []spending
	spareStream *Stream
}

// windowMetrics holds the window's pre-registered obs handles — the
// counters behind WindowStats. Handles, not fields: the hot path updates
// them with zero allocation, and a shared registry (WindowConfig.Metrics)
// aggregates several windows into one telemetry sidecar.
type windowMetrics struct {
	submitted    *obs.Counter
	cacheHits    *obs.Counter
	retries      *obs.Counter
	budgetDenied *obs.Counter
	timeoutCost  *obs.Counter // virtual ns lost to misses
	backoffWait  *obs.Counter // portion of the above spent in backoff
	maxInFlight  *obs.Gauge
	missWait     *obs.Histogram
}

// registerWindowMetrics resolves the window's handles in reg.
func registerWindowMetrics(reg *obs.Registry) windowMetrics {
	return windowMetrics{
		submitted:    reg.Counter("probe.window.submitted"),
		cacheHits:    reg.Counter("probe.window.cache.hits"),
		retries:      reg.Counter("probe.window.retries"),
		budgetDenied: reg.Counter("probe.window.budget.denied"),
		timeoutCost:  reg.Counter("probe.window.timeout.cost.ns"),
		backoffWait:  reg.Counter("probe.window.backoff.wait.ns"),
		maxInFlight:  reg.Gauge("probe.window.inflight.max"),
		missWait:     reg.Histogram("probe.window.miss.wait", obs.DefaultBuckets()),
	}
}

// NewProbeWindow builds a window over a transport.
func NewProbeWindow(p AsyncProber, cfg WindowConfig) *ProbeWindow {
	if cfg.Window < 1 {
		cfg.Window = 1
	}
	if cfg.Backoff > 0 && cfg.BackoffCap <= 0 {
		cfg.BackoffCap = 8 * cfg.Backoff
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	w := &ProbeWindow{p: p, cfg: cfg, m: registerWindowMetrics(reg)}
	if dp, ok := p.(DirectProber); ok {
		w.dp = dp
	}
	if bp, ok := p.(BatchProber); ok {
		w.bp = bp
	}
	if cfg.Cache {
		// Pre-sized: response caches on real mapping runs hold thousands of
		// entries, and incremental map growth (rehash + table copies) was a
		// measurable slice of the pipelined engine's wall-clock overhead.
		w.cache = make(map[string]cacheEntry, 2048)
	}
	if cfg.RouteBudget > 0 {
		w.routeSpent = make(map[string]int)
	}
	return w
}

// mix64 is the splitmix64 finalizer: a deterministic seeded hash used for
// backoff jitter (no global rand, no wall clock — the runs stay replayable).
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// backoffWait computes the capped exponential base for retry attempt (0-based)
// and applies the window's deterministic jitter of up to ±¼ of the base.
func (w *ProbeWindow) backoffWait(attempt int) time.Duration {
	base := w.cfg.BackoffCap
	if attempt < 16 {
		if b := w.cfg.Backoff << uint(attempt); b < base {
			base = b
		}
	}
	w.jitterSeq++
	if span := int64(base) / 2; span > 0 {
		jitter := time.Duration(mix64(w.cfg.Seed+w.jitterSeq)%uint64(span+1)) - base/4
		base += jitter
	}
	return base
}

// Stats returns the engine counters accumulated so far, assembled from
// the obs handles. With a shared WindowConfig.Metrics registry the values
// aggregate across every window registered in it.
func (w *ProbeWindow) Stats() WindowStats {
	return WindowStats{
		Submitted:    w.m.submitted.Value(),
		CacheHits:    w.m.cacheHits.Value(),
		Retries:      w.m.retries.Value(),
		MaxInFlight:  int(w.m.maxInFlight.Value()),
		TimeoutCost:  w.m.timeoutCost.DurationValue(),
		BackoffWait:  w.m.backoffWait.DurationValue(),
		BudgetDenied: w.m.budgetDenied.Value(),
	}
}

// Prober returns the underlying transport.
func (w *ProbeWindow) Prober() AsyncProber { return w.p }

// appendProbeKey appends the probe's cache/budget identity to dst: the kind
// byte followed by the raw turn bytes. It replaces the old
// kind.String()+"|"+route.String() key: same uniqueness (turns are int8, one
// byte each), none of the fmt machinery, and map lookups through
// string(keyBuf) compile to zero-allocation access.
//
//sanlint:hotpath
func appendProbeKey(dst []byte, p Probe) []byte {
	dst = append(dst, byte(p.Kind))
	for _, t := range p.Route {
		dst = append(dst, byte(t))
	}
	return dst
}

// probeKey rebuilds the window's reusable key scratch for p and returns it.
func (w *ProbeWindow) probeKey(p Probe) []byte {
	w.keyBuf = appendProbeKey(w.keyBuf[:0], p)
	return w.keyBuf
}

// cacheEntry is the compact stored form of a cached response — only the
// fields a repeat probe's answer carries forward. The rest of the hit's
// ProbeResult is rebuilt at hit time (the probe is the repeat submission's
// own, completion is the current clock, latency zero), so the cache map
// stays a third the width of full results.
type cacheEntry struct {
	ok   bool
	host string
	err  error
}

// hit materialises the cached answer for a repeat submission of p.
func (c cacheEntry) hit(p Probe, now time.Duration) ProbeResult {
	return ProbeResult{Probe: p, OK: c.ok, Host: c.host, Err: c.err, Done: now, Cached: true}
}

// Do issues the batch through the sliding window and returns one result per
// probe, in submission order. Results for probes answered from the cache
// carry Cached=true and zero latency.
//
// Contiguous submissions (the initial window fill, and window-sized refills
// after drains) go through the transport's batch path when it has one; the
// submit/collect interleaving — and with it every virtual timestamp — is
// identical to the one-at-a-time loop.
func (w *ProbeWindow) Do(batch []Probe) []ProbeResult {
	out := make([]ProbeResult, len(batch))
	st := w.Stream()
	i := 0
	for i < len(batch) {
		free := st.Free()
		if free <= 0 {
			tag, r := st.Collect()
			out[tag] = r
			continue
		}
		if rem := len(batch) - i; rem < free {
			free = rem
		}
		st.SubmitBatch(batch[i:i+free], i)
		i += free
	}
	for st.Len() > 0 {
		tag, r := st.Collect()
		out[tag] = r
	}
	st.Abandon() // empty: recycles the ring
	return out
}

// spending is one queued Stream entry. On the direct/batch fast paths the
// result is already in res (done=true) when the entry is queued; the channel
// is only used for transports without SubmitDirect, and drains into res the
// first time NextDone or Collect looks at the entry. The probe itself lives
// in res.Probe — every transport echoes the submitted probe there — so the
// entry is one ProbeResult wide, not two.
type spending struct {
	tag    int
	ch     <-chan ProbeResult // pending result; nil once res is filled
	res    ProbeResult
	done   bool // res holds the completed transport result
	cached bool // res came from the window cache (no transport slot held)
}

// Stream is the incremental interface to a ProbeWindow — the fully general
// form of Do, for pipelines whose later probes depend on earlier responses
// (e.g. a follow-up probe submitted the moment its predecessor's miss is
// collected, while the rest of the window stays in flight). Callers submit
// tagged probes as Free() allows and Collect results strictly in submission
// order; cache and bounded retry apply exactly as in Do.
//
// Entries live in a power-of-two-free ring buffer: push/pop are O(1) with no
// per-entry allocation, and the live (slot-holding) count is tracked
// incrementally instead of rescanned.
type Stream struct {
	w       *ProbeWindow
	ring    []spending
	head    int // index of the oldest entry
	n       int // queued entries
	live    int // entries occupying transport window slots
	maxSeen int // high-water mark already pushed to the gauge
}

// Stream opens an incremental submission stream over the window, adopting
// the recycled Stream header and ring buffer if free.
func (w *ProbeWindow) Stream() *Stream {
	s := w.spareStream
	if s == nil {
		s = &Stream{w: w}
	} else {
		w.spareStream = nil
		s.head, s.n, s.live, s.maxSeen = 0, 0, 0, 0
	}
	s.ring, w.spare = w.spare, nil
	return s
}

// Free reports the remaining window capacity.
func (s *Stream) Free() int { return s.w.cfg.Window - s.live }

// Len reports queued entries awaiting Collect.
func (s *Stream) Len() int { return s.n }

// push appends an entry at the ring's tail, growing if full.
func (s *Stream) push(e spending) {
	if s.n == len(s.ring) {
		s.grow()
	}
	s.ring[(s.head+s.n)%len(s.ring)] = e
	s.n++
}

// pop removes and returns the oldest entry.
func (s *Stream) pop() spending {
	e := s.ring[s.head]
	s.ring[s.head] = spending{}
	s.head = (s.head + 1) % len(s.ring)
	s.n--
	return e
}

// grow doubles the ring (initially sizing it to hold a full window plus
// cache-hit slack) and linearises the live entries at the front.
func (s *Stream) grow() {
	size := 2 * len(s.ring)
	if min := s.w.cfg.Window + 8; size < min {
		size = min
	}
	buf := make([]spending, size)
	for i := 0; i < s.n; i++ {
		buf[i] = s.ring[(s.head+i)%len(s.ring)]
	}
	s.ring = buf
	s.head = 0
}

// Submit enqueues one probe. A cache hit retires instantly without sending
// a message; otherwise the probe is handed to the transport. Submit never
// blocks — callers wanting overlap should stay within Free().
func (s *Stream) Submit(p Probe, tag int) {
	w := s.w
	if w.cache != nil {
		if c, ok := w.cache[string(w.probeKey(p))]; ok {
			w.m.cacheHits.Inc()
			s.push(spending{tag: tag, res: c.hit(p, w.p.Clock()), done: true, cached: true})
			return
		}
	}
	e := spending{tag: tag}
	if w.dp != nil {
		e.res = w.dp.SubmitDirect(w.withTimeout(p))
		e.done = true
	} else {
		e.ch = w.p.Submit(w.withTimeout(p))
		e.res.Probe = p
	}
	s.live++
	s.push(e)
	w.m.submitted.Inc()
	if s.live > s.maxSeen {
		s.maxSeen = s.live
		w.m.maxInFlight.SetMax(int64(s.live))
	}
}

// SubmitBatch enqueues a contiguous run of probes with tags base, base+1, …
// Maximal runs of consecutive cache misses go through the transport's
// SubmitBatch (amortising its per-probe setup over the run); cache hits are
// interleaved at exactly the position — and therefore the clock reading —
// the equivalent Submit loop would give them.
func (s *Stream) SubmitBatch(ps []Probe, base int) {
	w := s.w
	if w.bp == nil || len(ps) < 2 {
		for i := range ps {
			s.Submit(ps[i], base+i)
		}
		return
	}
	start := 0
	for i := 0; i <= len(ps); i++ {
		var c cacheEntry
		hit := false
		if i < len(ps) {
			if w.cache != nil {
				c, hit = w.cache[string(w.probeKey(ps[i]))]
			}
			if !hit {
				continue
			}
		}
		if run := i - start; run > 0 {
			buf, res := w.batchScratch(run)
			for j := 0; j < run; j++ {
				buf[j] = w.withTimeout(ps[start+j])
			}
			w.bp.SubmitBatch(buf, res)
			for j := 0; j < run; j++ {
				s.live++
				s.push(spending{tag: base + start + j, res: res[j], done: true})
				w.m.submitted.Inc()
				if s.live > s.maxSeen {
					s.maxSeen = s.live
					w.m.maxInFlight.SetMax(int64(s.live))
				}
			}
		}
		if hit {
			w.m.cacheHits.Inc()
			s.push(spending{tag: base + i, res: c.hit(ps[i], w.p.Clock()), done: true, cached: true})
		}
		start = i + 1
	}
}

// batchScratch returns the window's reusable batch staging slices sized n.
func (w *ProbeWindow) batchScratch(n int) ([]Probe, []ProbeResult) {
	if cap(w.batchBuf) < n {
		w.batchBuf = make([]Probe, n)
		w.batchRes = make([]ProbeResult, n)
	}
	return w.batchBuf[:n], w.batchRes[:n]
}

// NextDone peeks at the completion time of the oldest queued entry without
// collecting it (the transport fills the result at Submit time, so the peek
// never blocks). Schedulers use it to decide whether a further speculative
// submission rides for free: as long as the clock has not reached the oldest
// completion, issuing another probe overlaps time the stream would spend
// waiting anyway.
func (s *Stream) NextDone() (time.Duration, bool) {
	if s.n == 0 {
		return 0, false
	}
	e := &s.ring[s.head]
	if !e.done {
		e.res = <-e.ch
		e.ch = nil
		e.done = true
	}
	return e.res.Done, true
}

// Collect retires the oldest entry: synchronise the clock with its
// completion, run the bounded retry loop on a miss, cache the final result
// and return it with the submitter's tag.
func (s *Stream) Collect() (int, ProbeResult) {
	e := s.pop()
	if e.cached {
		return e.tag, e.res
	}
	s.live--
	w := s.w
	p0 := e.res.Probe
	r := e.res
	if !e.done {
		r = <-e.ch
	}
	w.p.Collect(r)
	if !r.OK {
		w.m.timeoutCost.AddDuration(r.Latency)
		w.m.missWait.Observe(r.Latency)
	}
	for attempt := 0; !r.OK && !errors.Is(r.Err, ErrUnsupported) && attempt < w.cfg.Retries; attempt++ {
		if w.routeSpent != nil {
			key := string(w.probeKey(p0))
			if w.routeSpent[key] >= w.cfg.RouteBudget {
				w.m.budgetDenied.Inc()
				break
			}
			w.routeSpent[key]++
		}
		if w.cfg.Backoff > 0 {
			wait := w.backoffWait(attempt)
			if sl, ok := w.p.(Sleeper); ok {
				sl.Sleep(wait)
			}
			w.m.timeoutCost.AddDuration(wait)
			w.m.backoffWait.AddDuration(wait)
		}
		w.m.retries.Inc()
		w.m.submitted.Inc()
		if w.dp != nil {
			r = w.dp.SubmitDirect(w.withTimeout(p0))
		} else {
			r = <-w.p.Submit(w.withTimeout(p0))
		}
		w.p.Collect(r)
		if !r.OK {
			w.m.timeoutCost.AddDuration(r.Latency)
			w.m.missWait.Observe(r.Latency)
		}
	}
	if w.cache != nil {
		w.cache[string(w.probeKey(p0))] = cacheEntry{ok: r.OK, host: r.Host, err: r.Err}
	}
	return e.tag, r
}

// Abandon drops every queued entry without collecting it: the messages were
// sent and their overhead paid, but nobody waits for the responses. Used
// when the consumer loses interest in its speculative lookahead. The ring
// and the Stream itself are recycled to the window for the next stream, so
// a Stream must not be used after Abandon.
func (s *Stream) Abandon() {
	for i := range s.ring {
		s.ring[i] = spending{}
	}
	s.head, s.n, s.live = 0, 0, 0
	if s.ring != nil {
		s.w.spare = s.ring
		s.ring = nil
	}
	s.w.spareStream = s
}

// DoOne runs a single probe through the window (cache and retry apply; no
// overlap, since there is nothing to overlap with).
func (w *ProbeWindow) DoOne(p Probe) ProbeResult {
	return w.Do([]Probe{p})[0]
}

// withTimeout applies the window-level timeout override.
func (w *ProbeWindow) withTimeout(p Probe) Probe {
	if w.cfg.Timeout > 0 && p.Timeout == 0 {
		p.Timeout = w.cfg.Timeout
	}
	return p
}
