package simnet

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRouteReversed(t *testing.T) {
	r := Route{1, -3, 7}
	if got, want := r.Reversed(), (Route{-7, 3, -1}); !got.Equal(want) {
		t.Errorf("Reversed = %v, want %v", got, want)
	}
	if empty := (Route{}); !empty.Reversed().Equal(empty) {
		t.Error("empty reverse")
	}
}

func TestRouteReverseInvolution(t *testing.T) {
	f := func(turns []int8) bool {
		r := make(Route, len(turns))
		for i, v := range turns {
			r[i] = Turn(v % 8)
		}
		return r.Reversed().Reversed().Equal(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLoopbackShape(t *testing.T) {
	r := Route{2, -1}
	lb := r.Loopback()
	want := Route{2, -1, 0, 1, -2}
	if !lb.Equal(want) {
		t.Errorf("Loopback = %v, want %v", lb, want)
	}
	if lb0 := (Route{}).Loopback(); len(lb0) != 1 {
		t.Error("empty loopback should be the single 0 turn")
	}
}

func TestValidProbe(t *testing.T) {
	cases := []struct {
		r    Route
		want bool
	}{
		{Route{1, 2, 3}, true},
		{Route{}, true},
		{Route{0}, false},
		{Route{8}, false},
		{Route{-8}, false},
		{Route{7, -7}, true},
	}
	for _, c := range cases {
		if got := c.r.ValidProbe(); got != c.want {
			t.Errorf("ValidProbe(%v) = %v", c.r, got)
		}
	}
}

func TestParseRouteRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		r := make(Route, rng.Intn(12))
		for j := range r {
			r[j] = Turn(rng.Intn(15) - 7)
		}
		back, err := ParseRoute(r.String())
		if err != nil {
			t.Fatalf("parse %q: %v", r.String(), err)
		}
		if !back.Equal(r) {
			t.Fatalf("round trip %v -> %q -> %v", r, r.String(), back)
		}
	}
}

func TestParseRouteErrors(t *testing.T) {
	for _, bad := range []string{"x", "+128", "-130", "1+2", "+", "+1garbage"} {
		if r, err := ParseRoute(bad); err == nil {
			t.Errorf("ParseRoute(%q) accepted as %v", bad, r)
		}
	}
	// Turns beyond the 8-port bound but within MaxSwitchRadix parse fine
	// (large-radix fabrics route them); per-fabric validation happens in
	// the transport, not the wire format.
	if r, err := ParseRoute("+8-100"); err != nil || !r.Equal(Route{8, -100}) {
		t.Errorf("ParseRoute(\"+8-100\") = %v, %v", r, err)
	}
	big := Route{8}
	if big.Valid() || !big.ValidFor(8) || big.ValidProbeFor(7) {
		t.Error("radix-aware validation bounds wrong")
	}
	if r, err := ParseRoute("ε"); err != nil || len(r) != 0 {
		t.Errorf("epsilon parse: %v %v", r, err)
	}
}

func TestExtendDoesNotAlias(t *testing.T) {
	r := make(Route, 1, 8)
	r[0] = 1
	a := r.Extend(2)
	b := r.Extend(3)
	if a[1] == b[1] {
		t.Error("Extend aliased the backing array")
	}
}
