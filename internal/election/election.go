// Package election implements the mapping system's second operational mode
// (§4.2): "all interfaces or hosts actively map the network and in the
// process the participants elect a leader by comparing network interface
// addresses carried in every message. The master/slave mode is faster but
// introduces a single point of failure, whereas the election mode is more
// robust ... but has a performance cost."
//
// Every host starts an active Berkeley mapper (one desim process per host)
// over the contended transport. Host-probe traffic carries the sender's
// interface address; whenever a host learns of a higher address — either by
// being probed or from a probe response — it passivates (keeps answering
// probes, stops mapping). The highest-address host is never passivated and
// its completed map wins.
package election

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"sanmap/internal/connet"
	"sanmap/internal/desim"
	"sanmap/internal/mapper"
	"sanmap/internal/myricom"
	"sanmap/internal/obs"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// Algo runs one host's mapping algorithm over the contended transport;
// cancel is the passivation poll the election machinery supplies. Both the
// Berkeley and the Myricom algorithm fit ("both algorithms have two
// operational modes", §4.2); see BerkeleyAlgo and MyricomAlgo.
type Algo func(ep simnet.RawProber, cancel func() bool) (*mapper.Result, error)

// BerkeleyAlgo adapts the Berkeley mapper for election mode.
func BerkeleyAlgo(cfg mapper.Config) Algo {
	return func(ep simnet.RawProber, cancel func() bool) (*mapper.Result, error) {
		cfg := cfg
		cfg.Cancel = cancel
		m, err := mapper.RunConfig(ep, cfg)
		if errors.Is(err, mapper.ErrCanceled) {
			return nil, errPassivated
		}
		if err != nil {
			return nil, err
		}
		return &mapper.Result{Map: m, Confidence: 1}, nil
	}
}

// MyricomAlgo adapts the Myricom mapper for election mode.
func MyricomAlgo(cfg myricom.Config) Algo {
	return func(ep simnet.RawProber, cancel func() bool) (*mapper.Result, error) {
		cfg := cfg
		cfg.Cancel = cancel
		m, err := myricom.Run(ep, cfg)
		if errors.Is(err, myricom.ErrCanceled) {
			return nil, errPassivated
		}
		if err != nil {
			return nil, err
		}
		return &mapper.Result{Map: &mapper.Map{Network: m.Network, Mapper: m.Mapper}, Confidence: 1}, nil
	}
}

// errPassivated is the internal signal that a mapper yielded.
var errPassivated = errors.New("election: passivated")

// electionMetrics is the run's obs handle set (nil no-op handles when
// Config.Metrics is nil), mirroring the Result counters.
type electionMetrics struct {
	passivated *obs.Counter
	crashed    *obs.Counter
	completed  *obs.Counter
	transfers  *obs.Counter
}

// Config parameterises an election-mode run.
type Config struct {
	Model  simnet.Model
	Timing simnet.Timing
	// Mapper is the per-host Berkeley configuration (depth etc.) used when
	// Algorithm is nil; the Cancel hook is managed by the election
	// machinery.
	Mapper mapper.Config
	// Algorithm overrides the per-host mapping algorithm (default:
	// BerkeleyAlgo(Mapper)).
	Algorithm Algo
	// Rng drives interface-address assignment and start staggering; it must
	// be non-nil (the variance it induces is Fig 7's point).
	Rng *rand.Rand
	// MaxStagger bounds the random daemon start offsets.
	MaxStagger time.Duration
	// Crash schedules host failures by host name: at the given virtual
	// time the host stops mapping AND stops answering probes — the single
	// point of failure §4.2's election mode exists to survive. When the
	// crashed host held the leadership lease, its lease entries are reset
	// so passivated mappers can detect the vacancy and resume.
	Crash map[string]time.Duration
	// ResumePoll is how often a passivated mapper re-checks its leadership
	// lease when crashes are scheduled (default 5ms). Without scheduled
	// crashes passivation is final and the poll never runs, preserving the
	// historical behaviour exactly.
	ResumePoll time.Duration
	// Tracer, when non-nil, records the run onto the unified observability
	// layer (internal/obs): one cat-"election" span per participant
	// mapper, each host on its own track so the virtually-concurrent
	// lifetimes render as separate rows, plus instants "passivate",
	// "resume", "crash", "complete" and "lead".
	Tracer *obs.Tracer
	// Metrics, when non-nil, counts the run into the registry (names
	// under "election.") and is inherited by the per-host Mapper config
	// unless that sets its own.
	Metrics *obs.Registry
}

// Result summarises one election run.
type Result struct {
	// Winner is the elected leader's host name.
	Winner string
	// Map is the leader's completed map, with its degradation report.
	Map *mapper.Result
	// Elapsed is the virtual time at which the leader finished mapping.
	Elapsed time.Duration
	// Passivated counts mappers that yielded before completing.
	Passivated int
	// Crashed counts mappers lost to scheduled host crashes.
	Crashed int
	// Completed counts mappers that ran to completion (the winner, plus any
	// that finished before hearing from a better one).
	Completed int
	// Probes aggregates probe counts across all participants.
	Probes simnet.Stats
}

// Run executes one election-mode mapping of the network.
func Run(net *topology.Network, cfg Config) (*Result, error) {
	if cfg.Rng == nil {
		return nil, fmt.Errorf("election: Config.Rng is required")
	}
	if cfg.MaxStagger == 0 {
		cfg.MaxStagger = 500 * time.Microsecond
	}
	if cfg.ResumePoll == 0 {
		cfg.ResumePoll = 5 * time.Millisecond
	}
	hosts := net.Hosts()
	if len(hosts) < 2 {
		return nil, fmt.Errorf("election: need at least two hosts")
	}
	crashing := 0
	for _, h := range hosts {
		if _, ok := cfg.Crash[net.NameOf(h)]; ok {
			crashing++
		}
	}
	if crashing != len(cfg.Crash) {
		return nil, fmt.Errorf("election: Crash names a host the network does not have")
	}
	if crashing >= len(hosts) {
		return nil, fmt.Errorf("election: every host is scheduled to crash")
	}
	// resume turns on the self-healing protocol: passivated mappers poll
	// their lease and take over when the leader dies. Off without crashes,
	// keeping the historical single-pass behaviour byte for byte.
	resume := crashing > 0

	// Interface addresses: a random permutation; the maximum wins.
	addr := make(map[topology.NodeID]uint64, len(hosts))
	perm := cfg.Rng.Perm(len(hosts))
	var winner topology.NodeID
	for i, h := range hosts {
		addr[h] = uint64(perm[i]) + 1
		if perm[i] == len(hosts)-1 {
			winner = h
		}
	}

	algo := cfg.Algorithm
	if algo == nil {
		if cfg.Mapper.Metrics == nil {
			cfg.Mapper.Metrics = cfg.Metrics
		}
		algo = BerkeleyAlgo(cfg.Mapper)
	}
	em := electionMetrics{
		passivated: cfg.Metrics.Counter("election.passivated"),
		crashed:    cfg.Metrics.Counter("election.crashed"),
		completed:  cfg.Metrics.Counter("election.completed"),
		transfers:  cfg.Metrics.Counter("election.transfers"),
	}
	eng := desim.New()
	cn := connet.New(net, cfg.Model, cfg.Timing)
	// heard[h] is the highest interface address host h has seen.
	heard := make(map[topology.NodeID]uint64, len(hosts))
	crashed := make(map[topology.NodeID]bool, crashing)

	res := &Result{Winner: net.NameOf(winner)}
	var runErr error
	var done bool       // some mapper ran to completion
	var bestAddr uint64 // highest completer address (resume mode)

	for hi, h := range hosts {
		hi, h := hi, h
		at, doomed := cfg.Crash[net.NameOf(h)]
		if !doomed {
			continue
		}
		eng.SpawnAt(at, net.NameOf(h)+".crash", func(p *desim.Proc) {
			crashed[h] = true
			cfg.Tracer.OnTrack(hi+1).Instant("election", "crash", p.Now(), obs.String("host", net.NameOf(h)))
			cn.Quiet().SetResponder(h, false)
			// Revoke the dead host's leases in deterministic host order, so
			// passivated mappers notice the vacancy at their next poll.
			for _, x := range hosts {
				if heard[x] == addr[h] {
					heard[x] = 0
				}
			}
		})
	}

	for hi, h := range hosts {
		hi, h := hi, h
		start := time.Duration(cfg.Rng.Int63n(int64(cfg.MaxStagger)))
		eng.SpawnAt(start, net.NameOf(h), func(p *desim.Proc) {
			// Each participant records onto its own track: the mapper
			// lifetimes are virtually concurrent and would otherwise
			// overlap unreadably on one Chrome row.
			track := cfg.Tracer.OnTrack(hi + 1)
			began := p.Now()
			defer func() {
				track.Span("election", "mapper", began, p.Now(), obs.String("host", net.NameOf(h)))
			}()
			ep := cn.Endpoint(h, p)
			ep.OnHostProbe = func(src, dst topology.NodeID) {
				// The probe carries src's address; the response carries
				// dst's. Both sides learn.
				if addr[src] > heard[dst] {
					heard[dst] = addr[src]
				}
				if addr[dst] > heard[src] {
					heard[src] = addr[dst]
				}
			}
			defer func() {
				st := ep.Stats()
				res.Probes.HostProbes += st.HostProbes
				res.Probes.HostHits += st.HostHits
				res.Probes.SwitchProbes += st.SwitchProbes
				res.Probes.SwitchHits += st.SwitchHits
			}()
			for {
				m, err := algo(ep, func() bool { return crashed[h] || heard[h] > addr[h] })
				switch {
				case err == errPassivated:
					if crashed[h] {
						res.Crashed++
						em.crashed.Inc()
						return
					}
					track.Instant("election", "passivate", p.Now(), obs.String("host", net.NameOf(h)))
					if !resume {
						res.Passivated++
						em.passivated.Inc()
						return
					}
					// Hold as a warm standby: if the lease clears (the
					// leader died before anyone completed), restart mapping.
					for heard[h] > addr[h] && !done && !crashed[h] {
						p.Sleep(cfg.ResumePoll)
					}
					if heard[h] > addr[h] || done || crashed[h] {
						res.Passivated++
						em.passivated.Inc()
						return
					}
					track.Instant("election", "resume", p.Now(), obs.String("host", net.NameOf(h)))
					continue
				case err != nil:
					if runErr == nil {
						runErr = fmt.Errorf("election: mapper at %s: %w", net.NameOf(h), err)
					}
					return
				default:
					res.Completed++
					em.completed.Inc()
					track.Instant("election", "complete", p.Now(), obs.String("host", net.NameOf(h)))
					done = true
					if resume {
						// The planned winner may be dead; leadership goes to
						// the highest-addressed mapper that finished.
						if addr[h] > bestAddr {
							bestAddr = addr[h]
							res.Winner = net.NameOf(h)
							res.Map = m
							res.Elapsed = p.Now()
							if h != winner {
								// Leadership moved off the planned winner —
								// the crash the election mode survives.
								em.transfers.Inc()
							}
							track.Instant("election", "lead", p.Now(), obs.String("host", net.NameOf(h)))
						}
					} else if h == winner {
						res.Map = m
						res.Elapsed = p.Now()
						track.Instant("election", "lead", p.Now(), obs.String("host", net.NameOf(h)))
					}
					return
				}
			}
		})
	}
	eng.Run()
	if runErr != nil {
		return nil, runErr
	}
	if res.Map == nil {
		return nil, fmt.Errorf("election: winner %s produced no map", res.Winner)
	}
	return res, nil
}
