// Package election implements the mapping system's second operational mode
// (§4.2): "all interfaces or hosts actively map the network and in the
// process the participants elect a leader by comparing network interface
// addresses carried in every message. The master/slave mode is faster but
// introduces a single point of failure, whereas the election mode is more
// robust ... but has a performance cost."
//
// Every host starts an active Berkeley mapper (one desim process per host)
// over the contended transport. Host-probe traffic carries the sender's
// interface address; whenever a host learns of a higher address — either by
// being probed or from a probe response — it passivates (keeps answering
// probes, stops mapping). The highest-address host is never passivated and
// its completed map wins.
package election

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"sanmap/internal/connet"
	"sanmap/internal/desim"
	"sanmap/internal/mapper"
	"sanmap/internal/myricom"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// Algo runs one host's mapping algorithm over the contended transport;
// cancel is the passivation poll the election machinery supplies. Both the
// Berkeley and the Myricom algorithm fit ("both algorithms have two
// operational modes", §4.2); see BerkeleyAlgo and MyricomAlgo.
type Algo func(ep simnet.RawProber, cancel func() bool) (*mapper.Map, error)

// BerkeleyAlgo adapts the Berkeley mapper for election mode.
func BerkeleyAlgo(cfg mapper.Config) Algo {
	return func(ep simnet.RawProber, cancel func() bool) (*mapper.Map, error) {
		cfg := cfg
		cfg.Cancel = cancel
		m, err := mapper.RunConfig(ep, cfg)
		if errors.Is(err, mapper.ErrCanceled) {
			return nil, errPassivated
		}
		return m, err
	}
}

// MyricomAlgo adapts the Myricom mapper for election mode.
func MyricomAlgo(cfg myricom.Config) Algo {
	return func(ep simnet.RawProber, cancel func() bool) (*mapper.Map, error) {
		cfg := cfg
		cfg.Cancel = cancel
		m, err := myricom.Run(ep, cfg)
		if errors.Is(err, myricom.ErrCanceled) {
			return nil, errPassivated
		}
		if err != nil {
			return nil, err
		}
		return &mapper.Map{Network: m.Network, Mapper: m.Mapper}, nil
	}
}

// errPassivated is the internal signal that a mapper yielded.
var errPassivated = errors.New("election: passivated")

// Config parameterises an election-mode run.
type Config struct {
	Model  simnet.Model
	Timing simnet.Timing
	// Mapper is the per-host Berkeley configuration (depth etc.) used when
	// Algorithm is nil; the Cancel hook is managed by the election
	// machinery.
	Mapper mapper.Config
	// Algorithm overrides the per-host mapping algorithm (default:
	// BerkeleyAlgo(Mapper)).
	Algorithm Algo
	// Rng drives interface-address assignment and start staggering; it must
	// be non-nil (the variance it induces is Fig 7's point).
	Rng *rand.Rand
	// MaxStagger bounds the random daemon start offsets.
	MaxStagger time.Duration
}

// Result summarises one election run.
type Result struct {
	// Winner is the elected leader's host name.
	Winner string
	// Map is the leader's completed map.
	Map *mapper.Map
	// Elapsed is the virtual time at which the leader finished mapping.
	Elapsed time.Duration
	// Passivated counts mappers that yielded before completing.
	Passivated int
	// Completed counts mappers that ran to completion (the winner, plus any
	// that finished before hearing from a better one).
	Completed int
	// Probes aggregates probe counts across all participants.
	Probes simnet.Stats
}

// Run executes one election-mode mapping of the network.
func Run(net *topology.Network, cfg Config) (*Result, error) {
	if cfg.Rng == nil {
		return nil, fmt.Errorf("election: Config.Rng is required")
	}
	if cfg.MaxStagger == 0 {
		cfg.MaxStagger = 500 * time.Microsecond
	}
	hosts := net.Hosts()
	if len(hosts) < 2 {
		return nil, fmt.Errorf("election: need at least two hosts")
	}

	// Interface addresses: a random permutation; the maximum wins.
	addr := make(map[topology.NodeID]uint64, len(hosts))
	perm := cfg.Rng.Perm(len(hosts))
	var winner topology.NodeID
	for i, h := range hosts {
		addr[h] = uint64(perm[i]) + 1
		if perm[i] == len(hosts)-1 {
			winner = h
		}
	}

	algo := cfg.Algorithm
	if algo == nil {
		algo = BerkeleyAlgo(cfg.Mapper)
	}
	eng := desim.New()
	cn := connet.New(net, cfg.Model, cfg.Timing)
	// heard[h] is the highest interface address host h has seen.
	heard := make(map[topology.NodeID]uint64, len(hosts))

	res := &Result{Winner: net.NameOf(winner)}
	var runErr error
	for _, h := range hosts {
		h := h
		start := time.Duration(cfg.Rng.Int63n(int64(cfg.MaxStagger)))
		eng.SpawnAt(start, net.NameOf(h), func(p *desim.Proc) {
			ep := cn.Endpoint(h, p)
			ep.OnHostProbe = func(src, dst topology.NodeID) {
				// The probe carries src's address; the response carries
				// dst's. Both sides learn.
				if addr[src] > heard[dst] {
					heard[dst] = addr[src]
				}
				if addr[dst] > heard[src] {
					heard[src] = addr[dst]
				}
			}
			m, err := algo(ep, func() bool { return heard[h] > addr[h] })
			switch {
			case err == errPassivated:
				res.Passivated++
			case err != nil:
				if runErr == nil {
					runErr = fmt.Errorf("election: mapper at %s: %w", net.NameOf(h), err)
				}
			default:
				res.Completed++
				if h == winner {
					res.Map = m
					res.Elapsed = p.Now()
				}
			}
			st := ep.Stats()
			res.Probes.HostProbes += st.HostProbes
			res.Probes.HostHits += st.HostHits
			res.Probes.SwitchProbes += st.SwitchProbes
			res.Probes.SwitchHits += st.SwitchHits
		})
	}
	eng.Run()
	if runErr != nil {
		return nil, runErr
	}
	if res.Map == nil {
		return nil, fmt.Errorf("election: winner %s produced no map", res.Winner)
	}
	return res, nil
}
