package election

import (
	"math/rand"
	"testing"
	"time"

	"sanmap/internal/cluster"
	"sanmap/internal/isomorph"
	"sanmap/internal/mapper"
	"sanmap/internal/myricom"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

func runElection(t *testing.T, net *topology.Network, seed int64) *Result {
	t.Helper()
	depth := net.DepthBound(net.Hosts()[0])
	cfg := Config{
		Model:  simnet.CircuitModel,
		Timing: simnet.DefaultTiming(),
		Mapper: mapper.DefaultConfig(depth),
		Rng:    rand.New(rand.NewSource(seed)),
	}
	res, err := Run(net, cfg)
	if err != nil {
		t.Fatalf("election: %v", err)
	}
	return res
}

// TestElectionProducesCorrectMap: the winner's map must satisfy Theorem 1
// despite contention with the other (eventually passivated) mappers.
func TestElectionProducesCorrectMap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := topology.MustStar(4, 3, rng)
	res := runElection(t, net, 42)
	if err := isomorph.MustEqualCore(res.Map.Network, net); err != nil {
		t.Fatalf("winner's map: %v", err)
	}
	if res.Passivated+res.Completed != net.NumHosts() {
		t.Errorf("accounting: %d passivated + %d completed != %d hosts",
			res.Passivated, res.Completed, net.NumHosts())
	}
	if res.Passivated == 0 {
		t.Error("expected most mappers to passivate")
	}
}

// TestElectionSlowerThanMaster reproduces Fig 7's comparison: election-mode
// mapping takes longer than a single master on the same network.
func TestElectionSlowerThanMaster(t *testing.T) {
	sys := cluster.CConfig(nil)
	net := sys.Net
	depth := net.DepthBound(sys.Mapper())

	sn := simnet.NewDefault(net)
	if _, err := mapper.Run(sn.Endpoint(sys.Mapper()), mapper.WithDepth(depth)); err != nil {
		t.Fatalf("master: %v", err)
	}
	masterTime := sn.Clock()

	res := runElection(t, net, 7)
	if err := isomorph.MustEqualCore(res.Map.Network, net); err != nil {
		t.Fatalf("winner's map: %v", err)
	}
	if res.Elapsed <= masterTime {
		t.Errorf("election (%v) should be slower than master (%v)", res.Elapsed, masterTime)
	}
	if res.Elapsed > 20*masterTime {
		t.Errorf("election (%v) implausibly slow vs master (%v)", res.Elapsed, masterTime)
	}
	t.Logf("C: master=%v election=%v (paper: 248ms vs 277ms)", masterTime, res.Elapsed)
}

// TestElectionVariance: different address assignments move the winner and
// therefore the completion time — the variance Fig 7 reports for the
// election mode.
func TestElectionVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := topology.MustStar(3, 3, rng)
	times := map[time.Duration]bool{}
	for seed := int64(0); seed < 4; seed++ {
		res := runElection(t, net, seed)
		times[res.Elapsed] = true
		if err := isomorph.MustEqualCore(res.Map.Network, net); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	if len(times) < 2 {
		t.Error("expected completion-time variance across elections")
	}
}

// TestMyricomElection: the §4.2 claim that both algorithms support the
// election mode — the Myricom mapper wins an election and produces a
// correct map over the contended transport.
func TestMyricomElection(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := topology.MustStar(3, 3, rng)
	depth := net.DepthBound(net.Hosts()[0])
	res, err := Run(net, Config{
		Model:     simnet.PacketModel,
		Timing:    simnet.DefaultTiming(),
		Algorithm: MyricomAlgo(myricom.DefaultConfig(depth)),
		Rng:       rand.New(rand.NewSource(11)),
	})
	if err != nil {
		t.Fatalf("myricom election: %v", err)
	}
	if err := isomorph.MustEqualCore(res.Map.Network, net); err != nil {
		t.Fatalf("winner's map: %v", err)
	}
	if res.Passivated == 0 {
		t.Error("expected passivations")
	}
}
