package election

import (
	"math/rand"
	"testing"
	"time"

	"sanmap/internal/isomorph"
	"sanmap/internal/mapper"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// TestElectionSurvivesLeaderCrash is the failure mode election mode exists
// for (§4.2): the would-be leader — the highest-addressed host — dies while
// mapping. Its lease is revoked, a passivated mapper notices the vacancy,
// resumes, and completes the map; the network still gets mapped with no
// single point of failure.
func TestElectionSurvivesLeaderCrash(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := topology.MustStar(4, 3, rng)
	depth := net.DepthBound(net.Hosts()[0])
	const seed = 42

	mkConfig := func() Config {
		return Config{
			Model:  simnet.CircuitModel,
			Timing: simnet.DefaultTiming(),
			Mapper: mapper.DefaultConfig(depth),
			Rng:    rand.New(rand.NewSource(seed)),
		}
	}

	// Dry run with the same seed to learn which host draws the highest
	// address: that planned winner is the one we kill mid-map.
	dry, err := Run(net, mkConfig())
	if err != nil {
		t.Fatalf("dry run: %v", err)
	}
	doomed := dry.Winner

	cfg := mkConfig()
	cfg.Crash = map[string]time.Duration{doomed: 2 * time.Millisecond}
	res, err := Run(net, cfg)
	if err != nil {
		t.Fatalf("election with crash: %v", err)
	}

	if res.Crashed != 1 {
		t.Fatalf("expected the leader's mapper to die mid-map, Crashed=%d "+
			"(crash scheduled too late?)", res.Crashed)
	}
	if res.Winner == doomed {
		t.Fatalf("dead host %s won the election", doomed)
	}
	if res.Completed == 0 {
		t.Fatalf("no mapper completed after the leader crash")
	}
	if res.Crashed+res.Passivated+res.Completed != net.NumHosts() {
		t.Errorf("accounting: %d crashed + %d passivated + %d completed != %d hosts",
			res.Crashed, res.Passivated, res.Completed, net.NumHosts())
	}
	if err := res.Map.Network.Validate(); err != nil {
		t.Fatalf("survivor's map invalid: %v", err)
	}
	// The dead host answers nothing, so the survivor's map legitimately
	// omits it; everything else must match the real network.
	if err := isomorph.MustEqualCoreIgnoring(res.Map.Network, net,
		map[string]bool{doomed: true}); err != nil {
		t.Errorf("survivor's map (ignoring crashed %s): %v", doomed, err)
	}
}

// TestElectionCrashOfLoser: a crash of a host that was going to passivate
// anyway must not disturb the outcome — same winner, correct map.
func TestElectionCrashOfLoser(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := topology.MustStar(4, 3, rng)
	depth := net.DepthBound(net.Hosts()[0])
	const seed = 7

	mkConfig := func() Config {
		return Config{
			Model:  simnet.CircuitModel,
			Timing: simnet.DefaultTiming(),
			Mapper: mapper.DefaultConfig(depth),
			Rng:    rand.New(rand.NewSource(seed)),
		}
	}
	dry, err := Run(net, mkConfig())
	if err != nil {
		t.Fatalf("dry run: %v", err)
	}
	// Kill any host that is not the planned winner.
	victim := ""
	for _, h := range net.Hosts() {
		if name := net.NameOf(h); name != dry.Winner {
			victim = name
			break
		}
	}

	cfg := mkConfig()
	cfg.Crash = map[string]time.Duration{victim: 1 * time.Millisecond}
	res, err := Run(net, cfg)
	if err != nil {
		t.Fatalf("election with loser crash: %v", err)
	}
	if res.Winner != dry.Winner {
		t.Errorf("loser crash changed the winner: %s vs %s", res.Winner, dry.Winner)
	}
	if err := isomorph.MustEqualCoreIgnoring(res.Map.Network, net,
		map[string]bool{victim: true}); err != nil {
		t.Errorf("winner's map (ignoring crashed %s): %v", victim, err)
	}
}
