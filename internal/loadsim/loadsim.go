package loadsim

import (
	"fmt"
	"time"

	"sanmap/internal/eventq"
	"sanmap/internal/obs"
	"sanmap/internal/routes"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
	"sanmap/internal/workload"
)

// linkID names one directed link occupancy: wire index doubled, plus one
// for the B→A direction. It indexes every per-link accumulator array.
type linkID = int32

// Engine replays workload plans over a frozen route table with connet's
// link-reservation fidelity, flattened for throughput: routes are
// precompiled into directed-hop arrays once, and the per-worm walk touches
// only preallocated slices — no goroutines, no channels, no maps. The same
// Engine can replay many plans; accumulators reset at each Run.
//
// An Engine snapshots its route table at New/Revalidate time. After the
// underlying network mutates (link cuts), Revalidate re-checks each
// compiled route against the live wires: traffic on broken routes counts
// as lost, which is exactly the "stale table after a fault, before route
// recomputation" regime sanload measures.
type Engine struct {
	net    *topology.Network
	tab    *routes.Table
	timing simnet.Timing

	hosts []topology.NodeID
	hidx  []int32 // NodeID -> dense host index, -1 for non-plan nodes
	nh    int

	// Compiled routes: pair (si*nh+di) p covers hops[pairStart[p]:pairStart[p+1]].
	pairStart []int32
	hops      []linkID
	valid     []bool  // route exists and every wire is alive
	wormBytes []int32 // full worm size: envelope + routing flits + payload

	nLinks int
	// busyUntil is the per-directed-link reservation horizon, in ns.
	busyUntil []int64

	// Per-run accumulators.
	linkBusy  []int64 // reserved occupancy per directed link, ns
	linkWorms []int64
	linkWait  []int64 // head blocking time per directed link, ns
	pairBytes []int64 // delivered payload per pair
	lat       []int64 // per-delivered-worm latency, ns

	q *eventq.Bucketed[inj]

	sent, delivered, lost, blocked, delayed int64
	payload                                 int64
	makespan                                int64

	deadlockFree bool

	m metrics
}

// metrics is the engine's obs handle set (nil-safe no-ops when
// uninstrumented).
type metrics struct {
	sent      *obs.Counter
	delivered *obs.Counter
	lost      *obs.Counter
	blocked   *obs.Counter
	delayed   *obs.Counter
	latency   *obs.Histogram
	waitHist  *obs.Histogram
	peakUtil  *obs.Gauge
	peakWait  *obs.Gauge
	makespan  *obs.Gauge
}

// inj is one pending injection: the scheduled time, the sending host's
// dense index, and the position in that host's schedule. Ordering is
// (time, host, seq) — a strict total order, so replay is deterministic.
type inj struct {
	at   int64
	host int32
	seq  int32
}

func injLess(a, b inj) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.host != b.host {
		return a.host < b.host
	}
	return a.seq < b.seq
}

// New compiles the route table into a replay engine. The table must have
// been computed on net (wire indices are shared); msgBytes is the payload
// size worms carry. Deadlock freedom of the table is verified once here and
// reported on every Report.
func New(net *topology.Network, tab *routes.Table, timing simnet.Timing, msgBytes int) (*Engine, error) {
	if msgBytes <= 0 {
		msgBytes = 512
	}
	e := &Engine{
		net:    net,
		tab:    tab,
		timing: timing,
		hosts:  net.Hosts(),
	}
	e.nh = len(e.hosts)
	if e.nh < 2 {
		return nil, fmt.Errorf("loadsim: need at least two hosts, have %d", e.nh)
	}
	e.hidx = make([]int32, net.NumNodes())
	for i := range e.hidx {
		e.hidx[i] = -1
	}
	for i, h := range e.hosts {
		e.hidx[h] = int32(i)
	}
	e.nLinks = 2 * net.NumWireSlots()
	e.pairStart = make([]int32, e.nh*e.nh+1)
	e.valid = make([]bool, e.nh*e.nh)
	e.wormBytes = make([]int32, e.nh*e.nh)
	for si, s := range e.hosts {
		for di, d := range e.hosts {
			p := si*e.nh + di
			e.pairStart[p] = int32(len(e.hops))
			if si == di {
				continue
			}
			wires, ok := tab.WirePath(s, d)
			if !ok {
				continue
			}
			cur := s
			for _, wi := range wires {
				w := net.WireByIndex(wi)
				var from topology.End
				if w.A.Node == cur {
					from = w.A
				} else {
					from = w.B
				}
				id := linkID(2 * wi)
				if from != w.A {
					id++
				}
				e.hops = append(e.hops, id)
				cur = w.Other(from).Node
			}
			if cur != d {
				return nil, fmt.Errorf("loadsim: table path %s -> %s ends at node %d",
					net.NameOf(s), net.NameOf(d), cur)
			}
			e.valid[p] = true
			// Worm size matches connet.SendWorm: envelope + one routing
			// flit per transited switch + payload.
			e.wormBytes[p] = int32(simnet.MessageBytes(len(wires)-1) + msgBytes)
		}
	}
	e.pairStart[e.nh*e.nh] = int32(len(e.hops))
	e.busyUntil = make([]int64, e.nLinks)
	e.linkBusy = make([]int64, e.nLinks)
	e.linkWorms = make([]int64, e.nLinks)
	e.linkWait = make([]int64, e.nLinks)
	e.pairBytes = make([]int64, e.nh*e.nh)
	e.deadlockFree = tab.VerifyDeadlockFree() == nil
	return e, nil
}

// Instrument mirrors replay outcomes onto the unified observability layer:
// per-worm counters and latency/wait histograms update during the replay
// loop, per-link peak gauges at its end. A nil registry is a no-op.
// Returns the engine for chaining.
func (e *Engine) Instrument(reg *obs.Registry) *Engine {
	e.m = metrics{
		sent:      reg.Counter("load.worms.sent"),
		delivered: reg.Counter("load.worms.delivered"),
		lost:      reg.Counter("load.worms.lost"),
		blocked:   reg.Counter("load.worms.blocked"),
		delayed:   reg.Counter("load.worms.delayed"),
		latency:   reg.Histogram("load.latency.ns", obs.DefaultBuckets()),
		waitHist:  reg.Histogram("load.link.wait.ns", obs.DefaultBuckets()),
		peakUtil:  reg.Gauge("load.link.peak_util_ppm"),
		peakWait:  reg.Gauge("load.link.peak_wait.ns"),
		makespan:  reg.Gauge("load.makespan.ns"),
	}
	return e
}

// Revalidate re-checks every compiled route against the live network:
// routes crossing a since-removed wire flip to invalid (their worms count
// as lost), routes whose wires all survive stay valid. Call it after
// mutating the network an Engine was built on.
func (e *Engine) Revalidate() {
	for si := range e.hosts {
		for di := range e.hosts {
			p := si*e.nh + di
			if si == di || e.pairStart[p] == e.pairStart[p+1] {
				continue
			}
			ok := true
			for _, id := range e.hops[e.pairStart[p]:e.pairStart[p+1]] {
				if !e.net.WireAlive(int(id) / 2) {
					ok = false
					break
				}
			}
			e.valid[p] = ok
		}
	}
}

// reset clears all per-run state.
func (e *Engine) reset() {
	for i := range e.busyUntil {
		e.busyUntil[i] = 0
		e.linkBusy[i] = 0
		e.linkWorms[i] = 0
		e.linkWait[i] = 0
	}
	for i := range e.pairBytes {
		e.pairBytes[i] = 0
	}
	e.lat = e.lat[:0]
	e.sent, e.delivered, e.lost, e.blocked, e.delayed = 0, 0, 0, 0, 0
	e.payload = 0
	e.makespan = 0
}

// inject walks one worm through the link reservations — the loadsim twin
// of connet's send, with the blocking, the forward-reset kill and the
// reservation side effects of a killed worm's earlier hops all identical.
// It returns the delivery completion time in ns and whether the worm
// survived, and charges the per-link accumulators as it goes.
//
//sanlint:hotpath
func (e *Engine) inject(at int64, p int, payload int64) (int64, bool) {
	occupancy := int64(e.wormBytes[p]) * int64(e.timing.ByteTime)
	reset := int64(e.timing.BlockedPortReset)
	latency := int64(e.timing.SwitchLatency)
	arr := at
	wasDelayed := false
	for _, id := range e.hops[e.pairStart[p]:e.pairStart[p+1]] {
		if b := e.busyUntil[id]; b > arr {
			wait := b - arr
			if wait > reset {
				e.blocked++
				e.m.blocked.Inc()
				return 0, false
			}
			e.linkWait[id] += wait
			e.m.waitHist.Observe(time.Duration(wait))
			arr = b
			wasDelayed = true
		}
		e.busyUntil[id] = arr + occupancy
		e.linkBusy[id] += occupancy
		e.linkWorms[id]++
		arr += latency
	}
	if wasDelayed {
		e.delayed++
		e.m.delayed.Inc()
	}
	done := arr + occupancy
	e.pairBytes[p] += payload
	return done, true
}

// Run replays the plan and returns its report. The replay is a pure
// function of (engine state, plan): repeated Runs of one plan produce
// byte-identical reports.
func (e *Engine) Run(plan *workload.Plan) (*Report, error) {
	e.reset()
	if len(plan.Hosts) > e.nh {
		return nil, fmt.Errorf("loadsim: plan has %d hosts, network %d", len(plan.Hosts), e.nh)
	}
	total := plan.TotalSends()
	if cap(e.lat) < total {
		e.lat = make([]int64, 0, total)
	}
	// sender[i] maps plan host i to its dense engine index.
	sender := make([]int32, len(plan.Hosts))
	for i, h := range plan.Hosts {
		if int(h) >= len(e.hidx) || e.hidx[h] < 0 {
			return nil, fmt.Errorf("loadsim: plan host %d not in network", h)
		}
		sender[i] = e.hidx[h]
	}
	if e.q == nil {
		// Bucket width near the per-host serialisation scale keeps pops
		// O(1); the far-future overflow heap absorbs the tail.
		width := int64(e.timing.SwitchLatency)
		if width <= 0 {
			width = 1
		}
		e.q = eventq.NewBucketed[inj](width*64, 1024, func(v inj) int64 { return v.at },
			injLess)
	} else {
		e.q.Reset()
	}
	for i := range plan.Hosts {
		if len(plan.Sends[i]) > 0 {
			e.q.Push(inj{at: int64(plan.Sends[i][0].At), host: int32(i), seq: 0})
		}
	}
	payload := int64(plan.MsgBytes)
	for e.q.Len() > 0 {
		v := e.q.Pop()
		sends := plan.Sends[v.host]
		if int(v.seq+1) < len(sends) {
			e.q.Push(inj{at: int64(sends[v.seq+1].At), host: v.host, seq: v.seq + 1})
		}
		s := sends[v.seq]
		e.sent++
		e.m.sent.Inc()
		di := e.hidx[s.Dst]
		if di < 0 {
			return nil, fmt.Errorf("loadsim: plan destination %d not in network", s.Dst)
		}
		p := int(sender[v.host])*e.nh + int(di)
		if !e.valid[p] {
			e.lost++
			e.m.lost.Inc()
			continue
		}
		done, alive := e.inject(v.at, p, payload)
		if !alive {
			continue
		}
		e.delivered++
		e.m.delivered.Inc()
		e.payload += payload
		e.lat = append(e.lat, done-v.at)
		e.m.latency.Observe(time.Duration(done - v.at))
		if done > e.makespan {
			e.makespan = done
		}
	}
	return e.report(plan)
}
