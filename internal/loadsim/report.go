package loadsim

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"time"

	"sanmap/internal/topology"
	"sanmap/internal/workload"
)

// LinkLoad is one directed link's congestion summary.
type LinkLoad struct {
	Wire  int
	FromA bool // traversal direction: true = A-end toward B-end
	// Busy is the total occupancy reserved on the link.
	Busy time.Duration
	// Wait is the total head-blocking time worms spent queued for it.
	Wait time.Duration
	// Worms counts traversals.
	Worms int64
	// UtilPPM is Busy over the replay makespan, in parts per million.
	UtilPPM int64
}

// Report is the outcome of one replay: aggregate worm accounting, the
// latency distribution, and per-link congestion. All fields derive
// deterministically from the replay, so equal (engine, plan) pairs render
// byte-identical reports — the property the load-smoke CI lane pins.
type Report struct {
	Hosts int
	Sent  int64
	// Delivered worms reached their destination; Lost worms followed a
	// route the current network no longer has (stale table after a cut);
	// Blocked worms were destroyed by the blocked-port forward reset.
	Delivered, Lost, Blocked int64
	// Delayed counts delivered worms that waited for at least one link.
	Delayed int64
	// PayloadBytes is the delivered application payload volume.
	PayloadBytes int64
	// Makespan is the virtual time of the last delivery.
	Makespan time.Duration
	// ThroughputBps is delivered payload over the makespan, bytes/second.
	ThroughputBps int64
	// Latency percentiles over delivered worms (injection to tail
	// delivery), plus mean and max.
	P50, P90, P99, Mean, MaxLatency time.Duration
	// DeadlockFree records the channel-dependency-graph verdict for the
	// replayed route table.
	DeadlockFree bool
	// Links lists every directed link that carried traffic, ordered by
	// busy time descending (ties: wire then direction ascending).
	Links []LinkLoad

	// wireBusy sums both directions' busy time per wire index, kept for
	// BusyOn aggregation over link sets (e.g. the cut-adjacent links).
	wireBusy map[int]time.Duration
}

// report assembles the Report from the engine's accumulators.
func (e *Engine) report(plan *workload.Plan) (*Report, error) {
	r := &Report{
		Hosts:        e.nh,
		Sent:         e.sent,
		Delivered:    e.delivered,
		Lost:         e.lost,
		Blocked:      e.blocked,
		Delayed:      e.delayed,
		PayloadBytes: e.payload,
		Makespan:     time.Duration(e.makespan),
		DeadlockFree: e.deadlockFree,
		wireBusy:     make(map[int]time.Duration),
	}
	if e.makespan > 0 {
		r.ThroughputBps = e.payload * int64(time.Second) / e.makespan
	}
	if n := len(e.lat); n > 0 {
		sorted := append([]int64(nil), e.lat...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		var sum int64
		for _, v := range sorted {
			sum += v
		}
		pct := func(p int) time.Duration {
			i := (n*p + 99) / 100
			if i > 0 {
				i--
			}
			return time.Duration(sorted[i])
		}
		r.P50, r.P90, r.P99 = pct(50), pct(90), pct(99)
		r.Mean = time.Duration(sum / int64(n))
		r.MaxLatency = time.Duration(sorted[n-1])
	}
	var peakUtil, peakWait int64
	for id := 0; id < e.nLinks; id++ {
		if e.linkWorms[id] == 0 {
			continue
		}
		ll := LinkLoad{
			Wire:  id / 2,
			FromA: id%2 == 0,
			Busy:  time.Duration(e.linkBusy[id]),
			Wait:  time.Duration(e.linkWait[id]),
			Worms: e.linkWorms[id],
		}
		if e.makespan > 0 {
			ll.UtilPPM = e.linkBusy[id] * 1_000_000 / e.makespan
		}
		if ll.UtilPPM > peakUtil {
			peakUtil = ll.UtilPPM
		}
		if w := int64(ll.Wait); w > peakWait {
			peakWait = w
		}
		r.Links = append(r.Links, ll)
		r.wireBusy[ll.Wire] += ll.Busy
	}
	sort.Slice(r.Links, func(i, j int) bool {
		a, b := r.Links[i], r.Links[j]
		if a.Busy != b.Busy {
			return a.Busy > b.Busy
		}
		if a.Wire != b.Wire {
			return a.Wire < b.Wire
		}
		return a.FromA && !b.FromA
	})
	e.m.peakUtil.Set(peakUtil)
	e.m.peakWait.Set(peakWait)
	e.m.makespan.Set(e.makespan)
	return r, nil
}

// BusyOn sums both directions' busy time over a set of wire indices — the
// aggregation sanload uses to compare congestion on the links around a cut
// between the healthy and healed replays.
func (r *Report) BusyOn(wires []int) time.Duration {
	var sum time.Duration
	seen := make(map[int]bool, len(wires))
	for _, w := range wires {
		if seen[w] {
			continue
		}
		seen[w] = true
		sum += r.wireBusy[w]
	}
	return sum
}

// MaxUtilPPM returns the most loaded directed link's utilisation (0 when
// nothing flowed).
func (r *Report) MaxUtilPPM() int64 {
	if len(r.Links) == 0 || r.Makespan == 0 {
		return 0
	}
	return r.Links[0].Busy.Nanoseconds() * 1_000_000 / r.Makespan.Nanoseconds()
}

// Matrix returns the measured demand matrix: delivered payload bytes per
// ordered host pair, over the engine's host set. Valid after Run; this is
// the traffic matrix the placement optimizer consumes.
func (e *Engine) Matrix() *workload.Matrix {
	m := workload.NewMatrix(e.hosts)
	for si := range e.hosts {
		for di := range e.hosts {
			m.Bytes[si][di] = e.pairBytes[si*e.nh+di]
		}
	}
	return m
}

// WriteText renders the report deterministically: the aggregate block,
// the latency distribution, and the topK most congested directed links
// (topK <= 0 means all). Link lines name the wire's switch endpoints.
func (r *Report) WriteText(w io.Writer, net *topology.Network, topK int) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "worms sent=%d delivered=%d lost=%d blocked=%d delayed=%d\n",
		r.Sent, r.Delivered, r.Lost, r.Blocked, r.Delayed)
	fmt.Fprintf(bw, "payload %d bytes in %v (%d bytes/s)\n",
		r.PayloadBytes, r.Makespan, r.ThroughputBps)
	fmt.Fprintf(bw, "latency p50=%v p90=%v p99=%v mean=%v max=%v\n",
		r.P50, r.P90, r.P99, r.Mean, r.MaxLatency)
	fmt.Fprintf(bw, "deadlock-free=%v congested-links=%d\n", r.DeadlockFree, len(r.Links))
	n := len(r.Links)
	if topK > 0 && topK < n {
		n = topK
	}
	for _, ll := range r.Links[:n] {
		wire := net.WireByIndex(ll.Wire)
		from, to := wire.A, wire.B
		if !ll.FromA {
			from, to = to, from
		}
		fmt.Fprintf(bw, "link %d %s/%d->%s/%d util=%dppm worms=%d wait=%v\n",
			ll.Wire, endName(net, from.Node), from.Port, endName(net, to.Node), to.Port,
			ll.UtilPPM, ll.Worms, ll.Wait)
	}
	return bw.Flush()
}

// endName labels a node for link lines: its name when it has one, else its
// id (anonymous switches on generated fabrics).
func endName(net *topology.Network, id topology.NodeID) string {
	if n := net.NameOf(id); n != "" {
		return n
	}
	return fmt.Sprintf("sw%d", id)
}
