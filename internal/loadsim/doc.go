// Package loadsim replays materialised traffic plans over a computed route
// table at millions-of-worms throughput, and reports route quality under
// load: delivered/lost/blocked accounting, the latency distribution,
// per-directed-link congestion, and the table's deadlock-freedom verdict.
//
// It answers the question the mapper's output exists to serve: not "is the
// map correct" (isomorph does that) but "how good are the routes the map
// yields when real traffic flows over them" — on a healthy fabric, on a
// degraded fabric still running a stale table, and on a healed fabric after
// route recomputation. cmd/sanload drives all three regimes over one plan.
//
// Fidelity matches the connet transport exactly at link-reservation level:
// a worm reserves each directed link for its full serialisation time from
// the head's arrival, waits behind earlier reservations, and dies to the
// blocked-port forward reset when a wait exceeds the 55 ms ROM timeout —
// with the killed worm's earlier reservations left in place, as the
// hardware leaves flits strung through upstream switches. What loadsim
// drops is the process machinery: no goroutines, no channels, no maps in
// the replay loop. Routes compile once into flat directed-hop arrays; a
// calendar queue (internal/eventq) orders injections by (time, host, seq);
// the per-worm walk is a zero-allocation array scan. That flattening is
// what buys 1M+ worms per run where desim/connet tops out around thousands
// of processes.
//
// Determinism: a replay is a pure function of (engine, plan). The injection
// order is a strict total order, aggregation never iterates a map, and
// Report.WriteText renders integers and sorted link lists only — so equal
// seeds yield byte-identical reports, the property the load-smoke CI lane
// pins. workload.SpawnPlan replays the same plans over desim/connet when
// contended-transport cross-checking is wanted.
package loadsim
