package loadsim

import (
	"bytes"
	"testing"
	"time"

	"sanmap/internal/genspec"
	"sanmap/internal/obs"
	"sanmap/internal/routes"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
	"sanmap/internal/workload"
)

// line3 builds h0,h1 -> s0 -- s1 <- h2: two senders sharing one inter-switch
// wire, small enough to hand-compute every reservation.
func line3(t *testing.T) (*topology.Network, *routes.Table) {
	t.Helper()
	net := &topology.Network{}
	h0, h1, h2 := net.AddHost("h0"), net.AddHost("h1"), net.AddHost("h2")
	s0, s1 := net.AddSwitch("s0"), net.AddSwitch("s1")
	for _, c := range [][2]topology.NodeID{{h0, s0}, {h1, s0}, {h2, s1}, {s0, s1}} {
		if _, _, _, err := net.ConnectFree(c[0], c[1]); err != nil {
			t.Fatal(err)
		}
	}
	tab, err := routes.Compute(net, routes.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return net, tab
}

// plan2 schedules h0 and h1 each sending one worm to h2, offset ns apart.
func plan2(net *topology.Network, offset time.Duration) *workload.Plan {
	h2 := net.Lookup("h2")
	return &workload.Plan{
		MsgBytes: 512,
		Hosts:    []topology.NodeID{net.Lookup("h0"), net.Lookup("h1")},
		Sends: [][]workload.Send{
			{{At: 0, Dst: h2}},
			{{At: offset, Dst: h2}},
		},
	}
}

// TestHandComputedContention pins the reservation semantics against values
// worked out by hand from the timing constants — the same arithmetic
// connet.send performs, so a divergence here means the flat replay no
// longer mirrors the contended transport.
func TestHandComputedContention(t *testing.T) {
	net, tab := line3(t)
	timing := simnet.DefaultTiming()
	e, err := New(net, tab, timing, 512)
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run(plan2(net, 100))
	if err != nil {
		t.Fatal(err)
	}
	// Worm bytes: envelope 4 + 2 routing flits (two transited switches) +
	// payload tag 16 + 512 payload = 534; occupancy 534×ByteTime.
	occ := 534 * timing.ByteTime
	lat := timing.SwitchLatency
	// Worm A (h0 at t=0): three uncontended hops.
	wantA := 3*lat + occ
	// Worm B (h1 at t=100ns): waits for A's s0->s1 reservation, which ends
	// at lat+occ; then the s1->h2 link frees exactly as B's head arrives.
	wantB := (lat + occ) + 2*lat + occ - 100
	if r.Sent != 2 || r.Delivered != 2 || r.Blocked != 0 || r.Lost != 0 {
		t.Fatalf("accounting: %+v", r)
	}
	if r.Delayed != 1 {
		t.Errorf("delayed = %d, want 1", r.Delayed)
	}
	if r.P50 != wantA || r.MaxLatency != wantB {
		t.Errorf("latency p50=%v max=%v, want %v / %v", r.P50, r.MaxLatency, wantA, wantB)
	}
	if want := (wantA + wantB) / 2; r.Mean != want {
		t.Errorf("mean latency %v, want %v", r.Mean, want)
	}
	if want := 100 + wantB; r.Makespan != want {
		t.Errorf("makespan %v, want %v", r.Makespan, want)
	}
	// Both worms crossed the shared s0--s1 wire once each.
	w, _ := tab.WirePath(net.Lookup("h0"), net.Lookup("h2"))
	shared := w[1]
	if got := r.BusyOn([]int{shared}); got != 2*occ {
		t.Errorf("BusyOn(shared) = %v, want %v", got, 2*occ)
	}
	if !r.DeadlockFree {
		t.Error("tree table reported deadlock-prone")
	}
}

// TestForwardResetKill: with a tiny blocked-port reset, the waiting worm is
// destroyed — and its first-hop reservation must persist, as the hardware
// leaves the killed worm's flits strung through upstream switches.
func TestForwardResetKill(t *testing.T) {
	net, tab := line3(t)
	timing := simnet.DefaultTiming()
	timing.BlockedPortReset = time.Microsecond // < the ~3.2µs occupancy wait
	e, err := New(net, tab, timing, 512)
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run(plan2(net, 100))
	if err != nil {
		t.Fatal(err)
	}
	if r.Sent != 2 || r.Delivered != 1 || r.Blocked != 1 {
		t.Fatalf("accounting: %+v", r)
	}
	// The killed worm still reserved h1->s0 before dying at s0->s1.
	w, _ := tab.WirePath(net.Lookup("h1"), net.Lookup("h2"))
	first := w[0]
	found := false
	for _, ll := range r.Links {
		if ll.Wire == first && ll.Worms == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("killed worm's first-hop reservation missing from links: %+v", r.Links)
	}
}

// TestStaleTableLosses: cutting a wire and Revalidating flips routes over it
// to lost, without touching surviving routes.
func TestStaleTableLosses(t *testing.T) {
	net, tab := line3(t)
	e, err := New(net, tab, simnet.DefaultTiming(), 512)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := tab.WirePath(net.Lookup("h0"), net.Lookup("h2"))
	shared := w[1] // the s0--s1 wire both routes need
	if err := net.RemoveWire(shared); err != nil {
		t.Fatal(err)
	}
	e.Revalidate()
	r, err := e.Run(plan2(net, 100))
	if err != nil {
		t.Fatal(err)
	}
	if r.Sent != 2 || r.Lost != 2 || r.Delivered != 0 {
		t.Fatalf("stale accounting: %+v", r)
	}
	if got := r.BusyOn([]int{shared}); got != 0 {
		t.Errorf("lost worms reserved the cut wire: %v", got)
	}
}

// TestDeterministicReplay: two engines built independently over two builds
// of the same fabric replay one plan to byte-identical reports, and a
// second Run on the same engine matches too.
func TestDeterministicReplay(t *testing.T) {
	render := func() []byte {
		res, err := genspec.Build("fattree2:4x2", nil)
		if err != nil {
			t.Fatal(err)
		}
		tab, err := routes.Compute(res.Net, routes.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		plan := workload.NewPlan(res.Net, workload.PlanConfig{
			Pattern:  workload.Uniform,
			Load:     0.3,
			MsgBytes: 256,
			Duration: 200 * time.Microsecond,
			ByteTime: simnet.DefaultTiming().ByteTime,
			Seed:     7,
		})
		e, err := New(res.Net, tab, simnet.DefaultTiming(), plan.MsgBytes)
		if err != nil {
			t.Fatal(err)
		}
		e.Instrument(obs.NewRegistry())
		var bufs [2]bytes.Buffer
		for i := range bufs {
			r, err := e.Run(plan)
			if err != nil {
				t.Fatal(err)
			}
			if err := r.WriteText(&bufs[i], res.Net, 0); err != nil {
				t.Fatal(err)
			}
		}
		if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
			t.Fatal("same engine, same plan, different reports")
		}
		return bufs[0].Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Errorf("independent builds diverge:\n%s\n--- vs ---\n%s", a, b)
	}
	if len(a) == 0 || !bytes.Contains(a, []byte("worms sent=")) {
		t.Errorf("report looks empty: %q", a)
	}
}

// TestInjectZeroAlloc guards the hot loop: walking a worm through the
// reservations must not allocate, instrumented or not.
func TestInjectZeroAlloc(t *testing.T) {
	net, tab := line3(t)
	e, err := New(net, tab, simnet.DefaultTiming(), 512)
	if err != nil {
		t.Fatal(err)
	}
	e.Instrument(obs.NewRegistry())
	p := 0*e.nh + 2 // h0 -> h2
	var at int64
	if avg := testing.AllocsPerRun(1000, func() {
		at += int64(time.Millisecond)
		e.inject(at, p, 512)
	}); avg != 0 {
		t.Errorf("inject allocates %.1f per worm", avg)
	}
}
