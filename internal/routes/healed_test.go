package routes

import (
	"testing"

	"sanmap/internal/faults"
	"sanmap/internal/genspec"
	"sanmap/internal/mapper"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// TestHealedTableDeadlockFree computes routes from a *healed* map — the
// suspect-annotated Result a mapper Session produces after link cuts and an
// incremental Remap — and verifies the table is still UP*/DOWN* compliant
// and deadlock free. This is the property cmd/sanload and the mapd `load`
// query lean on: healing may detour traffic and shed confidence, but it
// must never hand out a route set that can wedge the fabric.
func TestHealedTableDeadlockFree(t *testing.T) {
	for _, spec := range []string{"fattree2:8x2", "dragonfly:2,2,2"} {
		for seed := uint64(1); seed <= 3; seed++ {
			res, err := genspec.Build(spec, nil)
			if err != nil {
				t.Fatal(err)
			}
			net := res.Net
			h0 := net.Hosts()[0]
			sn := simnet.NewDefault(net)
			sess, err := mapper.NewSession(sn.Endpoint(h0),
				mapper.WithDepth(net.DepthBound(h0)+net.NumSwitches()),
				mapper.WithConfirm(2))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sess.Map(); err != nil {
				t.Fatalf("%s seed %d: map: %v", spec, seed, err)
			}
			sched := faults.Generate(net, seed, faults.Profile{Cuts: 2, Protect: h0})
			faults.NewInjector(sn, sched).ApplyAll()
			healed, err := sess.Remap()
			if err != nil {
				t.Fatalf("%s seed %d: remap: %v", spec, seed, err)
			}
			if healed.Partial {
				t.Fatalf("%s seed %d: healed map unexpectedly partial", spec, seed)
			}
			tab, err := Compute(healed.Network, DefaultConfig())
			if err != nil {
				t.Fatalf("%s seed %d: compute on healed map: %v", spec, seed, err)
			}
			if err := tab.VerifyUpDown(); err != nil {
				t.Errorf("%s seed %d: healed table violates UP*/DOWN*: %v", spec, seed, err)
			}
			if err := tab.VerifyDeadlockFree(); err != nil {
				t.Errorf("%s seed %d (suspects=%d, confidence=%.2f): %v",
					spec, seed, len(healed.Suspect), healed.Confidence, err)
			}
			// Every map-derived route must still deliver on the mutated
			// actual network (translated by host name, as the distribution
			// path would).
			actual := simnet.New(net, simnet.PacketModel, simnet.DefaultTiming())
			checked := 0
			tab.Pairs(func(src, dst topology.NodeID, _ []int, turns simnet.Route) {
				aSrc := net.Lookup(healed.Network.NameOf(src))
				aDst := net.Lookup(healed.Network.NameOf(dst))
				if aSrc == topology.None || aDst == topology.None {
					t.Fatalf("%s seed %d: host translation failed", spec, seed)
				}
				if r := actual.Eval(aSrc, turns); r.Outcome != simnet.Delivered || r.Dest != aDst {
					t.Fatalf("%s seed %d: healed route %s->%s fails on actual network: %v",
						spec, seed, net.NameOf(aSrc), net.NameOf(aDst), r.Outcome)
				}
				checked++
			})
			if checked == 0 {
				t.Fatalf("%s seed %d: no routes checked", spec, seed)
			}
		}
	}
}
