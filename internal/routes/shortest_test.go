package routes

import (
	"math/rand"
	"testing"

	"sanmap/internal/cluster"
	"sanmap/internal/mapper"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// TestShortestPathsDeliver: the naive routes are at least functional.
func TestShortestPathsDeliver(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := topology.MustTorus(3, 3, 1, rng)
	tab, err := ShortestPaths(net)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.VerifyDelivery(net); err != nil {
		t.Fatal(err)
	}
}

// TestShortestPathsDeadlockOnTorus is the negative control for the
// deadlock verifier: unrestricted shortest paths on a torus produce a
// channel-dependency cycle, while UP*/DOWN* on the same network does not.
// (This is why the paper computes UP*/DOWN* rather than plain shortest
// paths from its maps.)
func TestShortestPathsDeadlockOnTorus(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := topology.MustTorus(4, 4, 1, rng)

	naive, err := ShortestPaths(net)
	if err != nil {
		t.Fatal(err)
	}
	if err := naive.VerifyDeadlockFree(); err == nil {
		t.Error("expected a channel-dependency cycle in naive torus routes")
	}
	safe, err := Compute(net, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := safe.VerifyDeadlockFree(); err != nil {
		t.Errorf("UP*/DOWN* on the same torus deadlocked: %v", err)
	}
}

// TestRootCongestion reproduces the paper's §5.5 remark that "the goodness
// of UP*/DOWN* routes is known to be highly topology-dependant" with
// "increased congestion about the root" as a common effect: on a star every
// inter-leaf route must climb to the hub (the root), which therefore
// carries most traversals; on the NOW fat tree, middle-level bypass keeps
// the root share low. Both facts are asserted.
func TestRootCongestion(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	star := topology.MustStar(4, 3, rng)
	tabStar, err := Compute(star, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	repStar := tabStar.Congestion()
	if repStar.RootShare < 0.4 {
		t.Errorf("star root share %.2f; every inter-leaf route crosses the hub", repStar.RootShare)
	}
	if repStar.MaxLoad <= int(repStar.MeanLoad) {
		t.Errorf("expected hot wires at the star root: %+v", repStar)
	}

	sys := cluster.CConfig(nil)
	cfg := DefaultConfig()
	cfg.IgnoreHosts = []topology.NodeID{sys.Utility}
	tabC, err := Compute(sys.Net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	repC := tabC.Congestion()
	if repC.RootShare >= repStar.RootShare {
		t.Errorf("fat-tree root share %.2f should undercut the star's %.2f (mid-level bypass)",
			repC.RootShare, repStar.RootShare)
	}
	t.Logf("root share: star %.0f%%, fat-tree C %.0f%% (max load %d vs mean %.1f)",
		100*repStar.RootShare, 100*repC.RootShare, repC.MaxLoad, repC.MeanLoad)
}

// TestMappedRoutesWorkOnActualNetwork is the system's operational
// centrepiece: routes are computed from the *map* (anonymous switches,
// arbitrary per-switch port offsets) and must work verbatim on the *actual*
// network, because relative turns are invariant under the per-switch frame
// rotations Lemma 2 leaves undetermined. "From such maps, the system
// computes mutually deadlock-free routes and distributes them to all
// network interfaces."
func TestMappedRoutesWorkOnActualNetwork(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		net := topology.MustRandomConnected(4+rng.Intn(4), 4+rng.Intn(6), rng.Intn(4), rng)
		if len(net.F()) > 0 {
			continue // routes need the full network mapped
		}
		h0 := net.Hosts()[0]
		sn := simnet.NewDefault(net)
		m, err := mapper.Run(sn.Endpoint(h0), mapper.WithDepth(net.DepthBound(h0)))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		tab, err := Compute(m.Network, DefaultConfig())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Evaluate every turn route on the ACTUAL network, translating
		// endpoints by host name.
		actual := simnet.New(net, simnet.PacketModel, simnet.DefaultTiming())
		checked := 0
		tab.Pairs(func(src, dst topology.NodeID, _ []int, turns simnet.Route) {
			aSrc := net.Lookup(m.Network.NameOf(src))
			aDst := net.Lookup(m.Network.NameOf(dst))
			if aSrc == topology.None || aDst == topology.None {
				t.Fatalf("seed %d: host translation failed", seed)
			}
			res := actual.Eval(aSrc, turns)
			if res.Outcome != simnet.Delivered || res.Dest != aDst {
				t.Fatalf("seed %d: map-derived route %v from %s to %s fails on the actual network: %v at node %d",
					seed, turns, net.NameOf(aSrc), net.NameOf(aDst), res.Outcome, res.Dest)
			}
			checked++
		})
		if checked == 0 {
			t.Fatalf("seed %d: no routes checked", seed)
		}
	}
}

// TestMappedRoutesOnNOW runs the same transfer check on the paper's own
// 100-node configuration.
func TestMappedRoutesOnNOW(t *testing.T) {
	sys := cluster.CABConfig(nil)
	net := sys.Net
	h0 := sys.Mapper()
	sn := simnet.NewDefault(net)
	m, err := mapper.Run(sn.Endpoint(h0), mapper.WithDepth(net.DepthBound(h0)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.IgnoreHosts = []topology.NodeID{m.Network.Lookup(net.NameOf(sys.Utility))}
	tab, err := Compute(m.Network, cfg)
	if err != nil {
		t.Fatal(err)
	}
	actual := simnet.New(net, simnet.PacketModel, simnet.DefaultTiming())
	failures := 0
	tab.Pairs(func(src, dst topology.NodeID, _ []int, turns simnet.Route) {
		aSrc := net.Lookup(m.Network.NameOf(src))
		aDst := net.Lookup(m.Network.NameOf(dst))
		res := actual.Eval(aSrc, turns)
		if res.Outcome != simnet.Delivered || res.Dest != aDst {
			failures++
		}
	})
	if failures != 0 {
		t.Fatalf("%d of 9900 map-derived routes failed on the actual network", failures)
	}
}
