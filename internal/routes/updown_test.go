package routes

import (
	"math/rand"
	"testing"

	"sanmap/internal/cluster"
	"sanmap/internal/mapper"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// computeOn builds a default-config table over net, failing the test on
// any error.
func computeOn(t *testing.T, net *topology.Network, cfg Config) *Table {
	t.Helper()
	tab, err := Compute(net, cfg)
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	return tab
}

// verifyAll runs the three §5.5 checks.
func verifyAll(t *testing.T, tab *Table) {
	t.Helper()
	if err := tab.VerifyUpDown(); err != nil {
		t.Errorf("up/down violation: %v", err)
	}
	if err := tab.VerifyDeadlockFree(); err != nil {
		t.Errorf("deadlock: %v", err)
	}
	if err := tab.VerifyDelivery(tab.Net); err != nil {
		t.Errorf("delivery: %v", err)
	}
}

func TestRoutesGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	nets := map[string]*topology.Network{
		"line":      topology.MustLine(4, 2, rng),
		"ring":      topology.MustRing(5, 2, rng),
		"star":      topology.MustStar(4, 3, rng),
		"mesh":      topology.MustMesh(3, 3, 2, rng),
		"torus":     topology.MustTorus(3, 3, 2, rng),
		"hypercube": topology.MustHypercube(3, 2, rng),
	}
	for name, net := range nets {
		net := net
		t.Run(name, func(t *testing.T) {
			tab := computeOn(t, net, DefaultConfig())
			verifyAll(t, tab)
			// Every ordered host pair must have a route.
			hosts := net.Hosts()
			for _, s := range hosts {
				for _, d := range hosts {
					if s == d {
						continue
					}
					if _, ok := tab.Route(s, d); !ok {
						t.Fatalf("missing route %s -> %s", net.NameOf(s), net.NameOf(d))
					}
				}
			}
		})
	}
}

func TestRoutesRandom(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		net := topology.MustRandomConnected(3+rng.Intn(6), 2+rng.Intn(10), rng.Intn(4), rng)
		cfg := DefaultConfig()
		cfg.Rng = rng
		tab := computeOn(t, net, cfg)
		verifyAll(t, tab)
	}
}

// TestRoutesOnMappedNetwork is the paper's full §5.5 flow: map the C
// subcluster with the Berkeley algorithm, compute UP*/DOWN* routes on the
// *map*, then verify delivery and deadlock freedom.
func TestRoutesOnMappedNetwork(t *testing.T) {
	sys := cluster.CConfig(nil)
	h0 := sys.Mapper()
	sn := simnet.NewDefault(sys.Net)
	m, err := mapper.Run(sn.Endpoint(h0), mapper.WithDepth(sys.Net.DepthBound(h0)))
	if err != nil {
		t.Fatalf("mapping: %v", err)
	}
	cfg := DefaultConfig()
	cfg.IgnoreHosts = []topology.NodeID{m.Network.Lookup(sys.Net.NameOf(sys.Utility))}
	tab := computeOn(t, m.Network, cfg)
	verifyAll(t, tab)
	if n := len(tab.Distribute()); n != m.Network.NumHosts() {
		t.Errorf("distributed %d host tables, want %d", n, m.Network.NumHosts())
	}
}

// TestChooseRootFarFromHosts: on a fat tree the root switch must be at the
// top level (maximally distant from hosts), and the utility host must be
// ignorable.
func TestChooseRootFarFromHosts(t *testing.T) {
	sys := cluster.CConfig(nil)
	net := sys.Net
	root := ChooseRoot(net, sys.Utility)
	if root == topology.None {
		t.Fatal("no root chosen")
	}
	dist := net.BFS(root)
	minD := 1 << 30
	for _, h := range net.Hosts() {
		if h == sys.Utility {
			continue
		}
		if dist[h] < minD {
			minD = dist[h]
		}
	}
	if minD < 3 {
		t.Errorf("root only %d hops from nearest host; expected a top-level switch", minD)
	}
	// Ignoring the utility host "picks a natural root of the network": the
	// top-level switch the utility machine is cabled to.
	usw, _, _ := net.HostSwitch(sys.Utility)
	if root != usw {
		t.Errorf("chose root %s, want the utility machine's switch %s",
			net.NameOf(root), net.NameOf(usw))
	}
	// Without ignoring it, that switch is disqualified (the utility host
	// sits one hop away).
	if rootAll := ChooseRoot(net); rootAll == usw {
		t.Errorf("without ignoring, the utility switch should not win")
	}
}

// TestDominantRelabel builds a topology with a locally dominant switch (a
// high-BFS-numbered hostless switch whose neighbours all have smaller
// labels) and checks the fix makes it usable while staying deadlock-free.
func TestDominantRelabel(t *testing.T) {
	// Two hosts on two switches joined both directly and through a third
	// hostless switch: BFS from the root labels the hostless switch last,
	// making it dominant (all neighbours smaller).
	net := &topology.Network{}
	s1 := net.AddSwitch("s1")
	s2 := net.AddSwitch("s2")
	s3 := net.AddSwitch("s3") // candidate dominant transit switch
	h1 := net.AddHost("h1")
	h2 := net.AddHost("h2")
	net.MustConnect(h1, 0, s1, 0)
	net.MustConnect(h2, 0, s2, 0)
	net.MustConnect(s1, 1, s2, 1)
	net.MustConnect(s1, 2, s3, 0)
	net.MustConnect(s2, 2, s3, 1)

	cfg := DefaultConfig()
	cfg.Root = s1
	tab := computeOn(t, net, cfg)
	verifyAll(t, tab)
	if len(tab.Dominant) == 0 {
		t.Skip("BFS order did not produce a dominant switch in this embedding")
	}
	// After relabelling, s3 must be usable: its label sits below both
	// neighbours, so routes may go up into it and down out of it.
	for _, d := range tab.Dominant {
		for p := 0; p < net.NumPorts(d); p++ {
			if end, ok := net.Neighbor(d, p); ok {
				if tab.Labels[end.Node] <= tab.Labels[d] {
					t.Errorf("dominant switch %d still above neighbour %d", d, end.Node)
				}
			}
		}
	}
}

// TestNoRouteThroughLoopback: loopback cables must never appear on routes.
func TestNoRouteThroughLoopback(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := topology.MustLine(3, 2, rng)
	sw := net.Switches()
	// Add a loopback cable on the middle switch.
	if _, _, _, err := net.ConnectFree(sw[1], sw[1]); err != nil {
		t.Fatal(err)
	}
	loop := net.NumWires() - 1
	tab := computeOn(t, net, DefaultConfig())
	verifyAll(t, tab)
	tab.Pairs(func(s, d topology.NodeID, wires []int, _ simnet.Route) {
		for _, wi := range wires {
			if wi == loop {
				t.Errorf("route %s->%s uses loopback cable", net.NameOf(s), net.NameOf(d))
			}
		}
	})
}
