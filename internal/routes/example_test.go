package routes_test

import (
	"fmt"
	"math/rand"

	"sanmap/internal/routes"
	"sanmap/internal/topology"
)

// ExampleCompute derives verified UP*/DOWN* routes for a small torus — a
// cyclic topology where naive routing could deadlock.
func ExampleCompute() {
	net := topology.MustTorus(3, 3, 1, rand.New(rand.NewSource(5)))
	tab, err := routes.Compute(net, routes.DefaultConfig())
	if err != nil {
		fmt.Println("failed:", err)
		return
	}
	fmt.Println("up*/down* compliant:", tab.VerifyUpDown() == nil)
	fmt.Println("deadlock free:", tab.VerifyDeadlockFree() == nil)
	fmt.Println("all routes deliver:", tab.VerifyDelivery(net) == nil)
	// Output:
	// up*/down* compliant: true
	// deadlock free: true
	// all routes deliver: true
}

// ExampleShortestPaths shows the baseline that motivates UP*/DOWN*: its
// dependency graph on the same torus has a cycle.
func ExampleShortestPaths() {
	net := topology.MustTorus(3, 3, 1, rand.New(rand.NewSource(5)))
	naive, err := routes.ShortestPaths(net)
	if err != nil {
		fmt.Println("failed:", err)
		return
	}
	fmt.Println("deadlock free:", naive.VerifyDeadlockFree() == nil)
	// Output:
	// deadlock free: false
}
