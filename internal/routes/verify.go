package routes

import (
	"fmt"

	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// VerifyUpDown checks that every route follows zero or more up edges and
// then zero or more down edges ("A valid route never turns from a down edge
// onto an up edge").
func (t *Table) VerifyUpDown() error {
	var firstErr error
	t.Pairs(func(src, dst topology.NodeID, wires []int, _ simnet.Route) {
		if firstErr != nil {
			return
		}
		cur := src
		wentDown := false
		for _, wi := range wires {
			w := t.Net.WireByIndex(wi)
			var from topology.End
			if w.A.Node == cur {
				from = w.A
			} else {
				from = w.B
			}
			up := t.upEnd(w, from)
			if up && wentDown {
				firstErr = fmt.Errorf("routes: %s -> %s turns from down onto up at wire %d",
					t.Net.NameOf(src), t.Net.NameOf(dst), wi)
				return
			}
			if !up {
				wentDown = true
			}
			cur = w.Other(from).Node
		}
		if cur != dst {
			firstErr = fmt.Errorf("routes: %s -> %s path ends at node %d",
				t.Net.NameOf(src), t.Net.NameOf(dst), cur)
		}
	})
	return firstErr
}

// channel identifies a directed link occupancy: a wire plus the traversal
// direction, the unit of the Dally-Seitz dependency analysis the paper
// invokes for deadlock freedom.
type channel struct {
	wire  int
	fromA bool
}

// VerifyDeadlockFree builds the channel dependency graph induced by the
// route set — an arc from channel c1 to c2 whenever some route occupies c2
// while holding c1 — and reports an error if it contains a cycle (a
// potential wormhole deadlock).
func (t *Table) VerifyDeadlockFree() error {
	deps := make(map[channel]map[channel]bool)
	t.Pairs(func(src, dst topology.NodeID, wires []int, _ simnet.Route) {
		cur := src
		var prev *channel
		for _, wi := range wires {
			w := t.Net.WireByIndex(wi)
			var from topology.End
			if w.A.Node == cur {
				from = w.A
			} else {
				from = w.B
			}
			ch := channel{wire: wi, fromA: from == w.A}
			if prev != nil {
				m := deps[*prev]
				if m == nil {
					m = make(map[channel]bool)
					deps[*prev] = m
				}
				m[ch] = true
			}
			p := ch
			prev = &p
			cur = w.Other(from).Node
		}
	})
	// Iterative DFS cycle detection (colours: 0 white, 1 grey, 2 black).
	colour := make(map[channel]int, len(deps))
	var stack []channel
	for start := range deps {
		if colour[start] != 0 {
			continue
		}
		stack = append(stack[:0], start)
		path := []channel{}
		for len(stack) > 0 {
			c := stack[len(stack)-1]
			switch colour[c] {
			case 0:
				colour[c] = 1
				path = append(path, c)
				for next := range deps[c] {
					if colour[next] == 1 {
						return fmt.Errorf("routes: channel dependency cycle through wire %d", next.wire)
					}
					if colour[next] == 0 {
						stack = append(stack, next)
					}
				}
			case 1:
				colour[c] = 2
				stack = stack[:len(stack)-1]
				if len(path) > 0 && path[len(path)-1] == c {
					path = path[:len(path)-1]
				}
			default:
				stack = stack[:len(stack)-1]
			}
		}
	}
	return nil
}

// VerifyDelivery evaluates every turn route on the given network under the
// packet model (legal routes are simple paths, so the model is irrelevant)
// and checks it is delivered to the intended destination host. When the
// table was computed from a *mapped* network, pass the mapped network's
// simulator: delivery there transfers to the actual network because the two
// are isomorphic with identical relative turns (Lemma 2).
func (t *Table) VerifyDelivery(net *topology.Network) error {
	sn := simnet.New(net, simnet.PacketModel, simnet.DefaultTiming())
	var firstErr error
	t.Pairs(func(src, dst topology.NodeID, _ []int, turns simnet.Route) {
		if firstErr != nil {
			return
		}
		res := sn.Eval(src, turns)
		if res.Outcome != simnet.Delivered || res.Dest != dst {
			firstErr = fmt.Errorf("routes: route %v from %s to %s: %s at node %d",
				turns, net.NameOf(src), net.NameOf(dst), res.Outcome, res.Dest)
		}
	})
	return firstErr
}

// HostTable is the per-interface route database the system "distributes ...
// to all network interfaces": destination host name → source route.
type HostTable struct {
	Host   string
	Routes map[string]simnet.Route
}

// Distribute produces one HostTable per host, keyed by host name.
func (t *Table) Distribute() map[string]*HostTable {
	out := make(map[string]*HostTable, len(t.turns))
	for src, row := range t.turns {
		ht := &HostTable{Host: t.Net.NameOf(src), Routes: make(map[string]simnet.Route, len(row))}
		for dst, r := range row {
			ht.Routes[t.Net.NameOf(dst)] = r
		}
		out[ht.Host] = ht
	}
	return out
}
