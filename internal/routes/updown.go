package routes

import (
	"fmt"
	"math"
	"math/rand"

	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// Config parameterises route computation.
type Config struct {
	// Root forces the UP*/DOWN* root switch; topology.None selects the
	// paper's natural root (the switch as far away from all hosts as
	// possible, ignoring the utility host).
	Root topology.NodeID
	// IgnoreHosts are excluded when choosing the root ("we ignore the
	// specially-designated utility host when picking a switch distant from
	// all hosts").
	IgnoreHosts []topology.NodeID
	// Rng randomises the choice among equal-cost parallel edges for load
	// balance; nil picks deterministically.
	Rng *rand.Rand
	// RelabelDominant applies the paper's fix for locally dominant
	// switches ("relabelling them with the minimum of their neighbors' BFS
	// labels minus one").
	RelabelDominant bool
}

// DefaultConfig enables the paper's full §5.5 pipeline.
func DefaultConfig() Config {
	return Config{Root: topology.None, RelabelDominant: true}
}

// Table is a computed route set: one relative-turn source route per ordered
// host pair.
type Table struct {
	Net    *topology.Network
	Root   topology.NodeID
	Labels []int64 // BFS labels after dominant relabelling
	// routes[src][dst] is the wire sequence from host src to host dst.
	paths map[topology.NodeID]map[topology.NodeID][]int
	turns map[topology.NodeID]map[topology.NodeID]simnet.Route
	// Dominant lists switches that were locally dominant before the fix.
	Dominant []topology.NodeID
}

// ChooseRoot picks the UP*/DOWN* root: the switch maximising the minimum
// distance to any (non-ignored) host, tie-broken by maximum total distance
// then lowest id. This "picks a natural root of the network and allows
// packets to flow up to the least common ancestor of a source and
// destination".
func ChooseRoot(net *topology.Network, ignore ...topology.NodeID) topology.NodeID {
	skip := make(map[topology.NodeID]bool, len(ignore))
	for _, h := range ignore {
		skip[h] = true
	}
	best := topology.None
	bestMin, bestSum := -1, -1
	// One BFS per switch over the CSR index, reusing a single distance
	// buffer — the dominant cost of route computation on large fabrics.
	ix := net.Index()
	dist := make([]int32, ix.NumNodes())
	for _, s := range net.Switches() {
		ix.BFSInto(s, dist)
		minD, sumD := math.MaxInt, 0
		for _, h := range net.Hosts() {
			if skip[h] || dist[h] < 0 {
				continue
			}
			if int(dist[h]) < minD {
				minD = int(dist[h])
			}
			sumD += int(dist[h])
		}
		if minD == math.MaxInt {
			continue
		}
		if minD > bestMin || (minD == bestMin && sumD > bestSum) {
			best, bestMin, bestSum = s, minD, sumD
		}
	}
	return best
}

// Compute runs the §5.5 pipeline on a network (typically a mapper output)
// and returns the route table.
func Compute(net *topology.Network, cfg Config) (*Table, error) {
	if net.NumHosts() < 2 {
		return nil, fmt.Errorf("routes: need at least two hosts, have %d", net.NumHosts())
	}
	if !net.IsConnected() {
		return nil, fmt.Errorf("routes: network is disconnected")
	}
	root := cfg.Root
	if root == topology.None {
		root = ChooseRoot(net, cfg.IgnoreHosts...)
	}
	if root == topology.None || net.KindOf(root) != topology.SwitchNode {
		return nil, fmt.Errorf("routes: no usable root switch")
	}
	t := &Table{Net: net, Root: root}
	t.label(cfg)
	if err := t.allPairs(cfg); err != nil {
		return nil, err
	}
	t.buildTurns()
	return t, nil
}

// label assigns BFS numbers from the root ("a breadth-first labeling of the
// network map") and optionally applies the dominant-switch relabelling.
// Labels are int64 so relabelled switches can sink below 0 without clashes.
func (t *Table) label(cfg Config) {
	n := t.Net.NumNodes()
	t.Labels = make([]int64, n)
	ix := t.Net.Index()
	order := make([]topology.NodeID, 0, n)
	seen := make([]bool, n)
	queue := []topology.NodeID{t.Root}
	seen[t.Root] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		// CSR adjacency lists cabled ports in port order — the same visit
		// order as the historical per-port scan.
		for _, v := range ix.Neighbors(u) {
			if !seen[v] {
				seen[v] = true
				queue = append(queue, topology.NodeID(v))
			}
		}
	}
	for i, u := range order {
		t.Labels[u] = int64(i)
	}
	if !cfg.RelabelDominant {
		return
	}
	// A locally dominant switch has a larger label than every neighbour:
	// all its links run down into it, so no UP*/DOWN* route can transit it.
	// Relabel with min(neighbour labels) − 1; iterate (bounded) because a
	// fix can expose a new dominant switch.
	for iter := 0; iter < n*n; iter++ {
		fixed := false
		for _, s := range t.Net.Switches() {
			if s == t.Root {
				continue
			}
			minN, dominant := int64(math.MaxInt64), true
			for _, v := range ix.Neighbors(s) {
				if topology.NodeID(v) == s {
					continue
				}
				if t.Labels[v] < minN {
					minN = t.Labels[v]
				}
				if t.Labels[v] > t.Labels[s] {
					dominant = false
				}
			}
			if dominant && minN != math.MaxInt64 {
				if iter == 0 {
					t.Dominant = append(t.Dominant, s)
				}
				t.Labels[s] = minN - 1
				fixed = true
			}
		}
		if !fixed {
			return
		}
	}
}

// upEnd reports whether traversing wire w from end e is an "up" move
// (toward a smaller label; a valid route is up moves then down moves).
func (t *Table) upEnd(w topology.Wire, from topology.End) bool {
	to := w.Other(from)
	return t.Labels[to.Node] < t.Labels[from.Node]
}

// allPairs computes shortest compliant paths with the Floyd-Warshall
// construction the paper cites: FW over up-only arcs gives U[i][j]; a
// compliant s→t path is up to some meeting node w then down, and a down
// path w→t is an up path t→w reversed, so cost(s,t) = min_w U[s][w]+U[t][w].
func (t *Table) allPairs(cfg Config) error {
	n := t.Net.NumNodes()
	const inf = int32(math.MaxInt32 / 4)
	up := make([][]int32, n)  // up[i][j]: shortest up-only distance
	via := make([][]int32, n) // via[i][j]: first wire on that path
	for i := range up {
		up[i] = make([]int32, n)
		via[i] = make([]int32, n)
		for j := range up[i] {
			up[i][j] = inf
			via[i][j] = -1
		}
		up[i][i] = 0
	}
	// Direct up arcs. Parallel wires: keep one; remember all for load
	// balancing at extraction time.
	t.Net.WiresIndexed(func(wi int, w topology.Wire) {
		for _, from := range []topology.End{w.A, w.B} {
			if w.A.Node == w.B.Node {
				continue // loopback cables are never on shortest paths
			}
			if !t.upEnd(w, from) {
				continue
			}
			to := w.Other(from)
			i, j := int(from.Node), int(to.Node)
			if up[i][j] > 1 {
				up[i][j] = 1
				via[i][j] = int32(wi)
			} else if up[i][j] == 1 && cfg.Rng != nil && cfg.Rng.Intn(2) == 0 {
				via[i][j] = int32(wi) // random choice among parallel wires
			}
		}
	})
	for k := 0; k < n; k++ {
		upk := up[k]
		for i := 0; i < n; i++ {
			if up[i][k] == inf {
				continue
			}
			uik := up[i][k]
			for j := 0; j < n; j++ {
				if d := uik + upk[j]; d < up[i][j] {
					up[i][j] = d
					via[i][j] = via[i][k]
				}
			}
		}
	}

	// For each host pair, pick the best meeting node and extract the path.
	// Candidate meeting nodes for s are exactly its up-reachable ancestors —
	// a short list on real fabrics, against n for the naive scan — so
	// precompute each host's ancestor list once. Ascending node order is
	// preserved, which keeps the first-strict-minimum choice (and therefore
	// every extracted path) identical to the full scan's.
	hosts := t.Net.Hosts()
	anc := make(map[topology.NodeID][]int32, len(hosts))
	for _, s := range hosts {
		var a []int32
		for w := 0; w < n; w++ {
			if up[s][w] < inf {
				a = append(a, int32(w))
			}
		}
		anc[s] = a
	}
	t.paths = make(map[topology.NodeID]map[topology.NodeID][]int, len(hosts))
	for _, s := range hosts {
		t.paths[s] = make(map[topology.NodeID][]int, len(hosts))
		for _, d := range hosts {
			if s == d {
				continue
			}
			bestW, bestC := -1, inf
			for _, w32 := range anc[s] {
				w := int(w32)
				if up[d][w] == inf {
					continue
				}
				if c := up[s][w] + up[d][w]; c < bestC {
					bestC, bestW = c, w
				}
			}
			if bestW < 0 {
				return fmt.Errorf("routes: no compliant path %s -> %s",
					t.Net.NameOf(s), t.Net.NameOf(d))
			}
			upPath := t.extract(via, int(s), bestW)
			downPath := t.extract(via, int(d), bestW)
			reverseInts(downPath)
			t.paths[s][d] = append(upPath, downPath...)
		}
	}
	return nil
}

// extract returns the wire sequence of the up path i→j recorded in via.
// First-hop extraction is sound because up distances strictly decrease
// along recorded first hops.
func (t *Table) extract(via [][]int32, i, j int) []int {
	var out []int
	for i != j {
		w := via[i][j]
		if w < 0 {
			return nil
		}
		out = append(out, int(w))
		i = t.across(int(w), i)
	}
	return out
}

// across returns the node on the far side of wire wi from node `from`.
func (t *Table) across(wi, from int) int {
	w := t.Net.WireByIndex(wi)
	if int(w.A.Node) == from {
		return int(w.B.Node)
	}
	return int(w.A.Node)
}

func reverseInts(s []int) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// buildTurns converts wire paths into the relative-turn source routes the
// interfaces consume: at each intermediate switch the turn is the signed
// difference between the output and input ports (§2.2's addressing).
func (t *Table) buildTurns() {
	t.turns = make(map[topology.NodeID]map[topology.NodeID]simnet.Route, len(t.paths))
	for s, row := range t.paths {
		t.turns[s] = make(map[topology.NodeID]simnet.Route, len(row))
		for d, wires := range row {
			t.turns[s][d] = t.TurnsFor(s, wires)
		}
	}
}

// TurnsFor converts a wire path starting at host src into a turn route:
// at each intermediate switch the routing flit is outPort − inPort.
func (t *Table) TurnsFor(src topology.NodeID, wires []int) simnet.Route {
	var route simnet.Route
	curNode := src
	inPort := topology.HostPort
	for i, wi := range wires {
		w := t.Net.WireByIndex(wi)
		var from, to topology.End
		if w.A.Node == curNode {
			from, to = w.A, w.B
		} else {
			from, to = w.B, w.A
		}
		if i > 0 {
			route = append(route, simnet.Turn(from.Port-inPort))
		}
		curNode, inPort = to.Node, to.Port
	}
	return route
}

// Route returns the turn route from src to dst.
func (t *Table) Route(src, dst topology.NodeID) (simnet.Route, bool) {
	row, ok := t.turns[src]
	if !ok {
		return nil, false
	}
	r, ok := row[dst]
	return r, ok
}

// WirePath returns the wire sequence from src to dst.
func (t *Table) WirePath(src, dst topology.NodeID) ([]int, bool) {
	row, ok := t.paths[src]
	if !ok {
		return nil, false
	}
	p, ok := row[dst]
	return p, ok
}

// Pairs calls f for every ordered host pair with a route.
func (t *Table) Pairs(f func(src, dst topology.NodeID, wires []int, turns simnet.Route)) {
	for s, row := range t.paths {
		for d, wires := range row {
			f(s, d, wires, t.turns[s][d])
		}
	}
}
