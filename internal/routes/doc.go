// Package routes computes mutually deadlock-free source routes from a
// network map, as §5.5 of the SPAA'97 mapping paper: UP*/DOWN* edge
// ordering rooted at a switch far from all hosts, all-pairs compliant
// shortest paths, random tie-breaking for load balance, relabelling of
// locally dominant switches, and conversion to the relative-turn source
// routes Myrinet interfaces consume.
//
// The pipeline is Compute(net, cfg) → *Table: ChooseRoot picks the natural
// root (maximum minimum distance to any non-ignored host), BFS labels
// orient every edge up or down, and the all-pairs pass restricts paths to
// the UP*/DOWN* form — zero or more up edges followed by zero or more down
// edges — by closing up-only distances and meeting each (s,t) pair at the
// ancestor w minimising U[s][w]+U[t][w]. On datacenter-scale fabrics the
// meeting-node scan walks per-host ascending ancestor lists rather than all
// switches, preserving the first-strict-minimum tie-break byte for byte.
//
// Consumers read the result three ways: WirePath for analyses (loadsim,
// place), Route for the relative-turn strings the simulated interfaces
// consume, and VerifyDeadlockFree, a channel-dependency-graph cycle check
// over any route set — including tables recomputed on healed maps after
// fault injection, where deadlock freedom must survive the missing links.
package routes
