package routes

import (
	"fmt"
	"sanmap/internal/topology"
)

// ShortestPaths computes unrestricted shortest-path routes between all host
// pairs — the naive baseline that ignores the turn model entirely. On
// cyclic topologies (rings, tori, hypercubes) the resulting channel
// dependency graph contains cycles, i.e. the routes can wormhole-deadlock;
// VerifyDeadlockFree exists to catch exactly that, and the §5.5 pipeline's
// point is that UP*/DOWN* routes never trigger it.
//
// The returned table has no UP*/DOWN* labelling: VerifyUpDown and the
// Dominant field are meaningless for it (Labels is nil); VerifyDeadlockFree,
// VerifyDelivery, Route, LinkLoads and Distribute work as usual.
func ShortestPaths(net *topology.Network) (*Table, error) {
	if net.NumHosts() < 2 {
		return nil, fmt.Errorf("routes: need at least two hosts, have %d", net.NumHosts())
	}
	if !net.IsConnected() {
		return nil, fmt.Errorf("routes: network is disconnected")
	}
	t := &Table{Net: net, Root: topology.None}
	t.paths = make(map[topology.NodeID]map[topology.NodeID][]int)
	hosts := net.Hosts()
	// Per-host BFS over the CSR index (adjacency in port order, matching
	// the historical per-port scan); the buffers are reused across hosts.
	ix := net.Index()
	prevWire := make([]int, net.NumNodes())
	dist := make([]int, net.NumNodes())
	queue := make([]topology.NodeID, 0, net.NumNodes())
	for _, s := range hosts {
		// BFS recording the first wire on a shortest path to each node.
		for i := range dist {
			dist[i] = -1
			prevWire[i] = -1
		}
		dist[s] = 0
		queue = append(queue[:0], s)
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			nbrs := ix.Neighbors(u)
			wires := ix.Wires(u)
			for k, v := range nbrs {
				if topology.NodeID(v) == u || dist[v] >= 0 {
					continue
				}
				dist[v] = dist[u] + 1
				prevWire[v] = int(wires[k])
				queue = append(queue, topology.NodeID(v))
			}
		}
		t.paths[s] = make(map[topology.NodeID][]int, len(hosts))
		for _, d := range hosts {
			if d == s {
				continue
			}
			if dist[d] < 0 {
				return nil, fmt.Errorf("routes: no path %s -> %s", net.NameOf(s), net.NameOf(d))
			}
			// Walk back from d to s collecting wires.
			wires := make([]int, dist[d])
			cur := d
			for i := dist[d] - 1; i >= 0; i-- {
				wi := prevWire[cur]
				wires[i] = wi
				cur = net.WireByIndex(wi).Other(endOn(net, wi, cur)).Node
			}
			t.paths[s][d] = wires
		}
	}
	t.buildTurns()
	return t, nil
}

// endOn returns the end of wire wi that sits on node v.
func endOn(net *topology.Network, wi int, v topology.NodeID) topology.End {
	w := net.WireByIndex(wi)
	if w.A.Node == v {
		return w.A
	}
	return w.B
}

// LinkLoads returns, per wire index, the number of routes in the table that
// traverse the wire (both directions combined). UP*/DOWN* is known to pile
// load onto the root's links ("increased congestion about the root", §5.5);
// this is the measurement.
func (t *Table) LinkLoads() map[int]int {
	loads := make(map[int]int)
	for _, row := range t.paths {
		for _, wires := range row {
			for _, wi := range wires {
				loads[wi]++
			}
		}
	}
	return loads
}

// CongestionReport summarises LinkLoads.
type CongestionReport struct {
	MaxLoad     int     // heaviest wire
	MeanLoad    float64 // over wires carrying any route
	MaxAtRoot   bool    // the heaviest wire touches the UP*/DOWN* root
	RootShare   float64 // fraction of total traversals on root-incident wires
	LoadedWires int
}

// Congestion computes the report; for ShortestPaths tables (no root) the
// root-related fields are zero.
func (t *Table) Congestion() CongestionReport {
	loads := t.LinkLoads()
	var rep CongestionReport
	total := 0
	maxWire := -1
	for wi, l := range loads {
		total += l
		rep.LoadedWires++
		if l > rep.MaxLoad {
			rep.MaxLoad = l
			maxWire = wi
		}
	}
	if rep.LoadedWires > 0 {
		rep.MeanLoad = float64(total) / float64(rep.LoadedWires)
	}
	if t.Root == topology.None || maxWire < 0 {
		return rep
	}
	rootTotal := 0
	for wi, l := range loads {
		if t.Net.WireByIndex(wi).Touches(t.Root) {
			rootTotal += l
		}
	}
	if total > 0 {
		rep.RootShare = float64(rootTotal) / float64(total)
	}
	rep.MaxAtRoot = t.Net.WireByIndex(maxWire).Touches(t.Root)
	return rep
}
