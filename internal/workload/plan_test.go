package workload

import (
	"bytes"
	"testing"
	"time"

	"sanmap/internal/genspec"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

func planConfig(pat Pattern, seed uint64) PlanConfig {
	return PlanConfig{
		Pattern:  pat,
		Load:     0.3,
		MsgBytes: 512,
		Duration: 300 * time.Microsecond,
		ByteTime: simnet.DefaultTiming().ByteTime,
		Seed:     seed,
	}
}

func planBytes(t *testing.T, net *topology.Network, cfg PlanConfig) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := NewPlan(net, cfg).Write(net, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestPlanDeterministicUnderParallel is the property the load-smoke lane
// rests on: a Plan is a pure function of (host set, PlanConfig), so
// materialising the same plan from many goroutines at once — as `go test
// -parallel` does — must yield byte-identical schedules. Hotspot and
// Permutation are the patterns with global and per-host stochastic choices
// respectively, so they are the ones that would betray any hidden shared
// rng state.
func TestPlanDeterministicUnderParallel(t *testing.T) {
	res, err := genspec.Build("fattree2:8x2", nil)
	if err != nil {
		t.Fatal(err)
	}
	net := res.Net
	for _, pat := range []Pattern{Hotspot, Permutation} {
		pat := pat
		want := planBytes(t, net, planConfig(pat, 42))
		if len(want) == 0 {
			t.Fatalf("%v: empty plan", pat)
		}
		for i := 0; i < 4; i++ {
			i := i
			t.Run(pat.String(), func(t *testing.T) {
				t.Parallel()
				// Each subtest builds on its own topology copy so even
				// host-slice sharing cannot mask an ordering dependence.
				res, err := genspec.Build("fattree2:8x2", nil)
				if err != nil {
					t.Fatal(err)
				}
				got := planBytes(t, res.Net, planConfig(pat, 42))
				if !bytes.Equal(got, want) {
					t.Errorf("replica %d: %v plan differs from reference (%d vs %d bytes)",
						i, pat, len(got), len(want))
				}
			})
		}
	}
}

// TestPlanSeedSensitivity: different seeds must actually move the schedule
// (otherwise determinism tests prove nothing).
func TestPlanSeedSensitivity(t *testing.T) {
	res, err := genspec.Build("fattree2:4x2", nil)
	if err != nil {
		t.Fatal(err)
	}
	a := planBytes(t, res.Net, planConfig(Hotspot, 1))
	b := planBytes(t, res.Net, planConfig(Hotspot, 2))
	if bytes.Equal(a, b) {
		t.Fatal("seeds 1 and 2 produced identical Hotspot plans")
	}
}

// TestPlanMatrixConsistent: the demand matrix must account exactly for the
// scheduled sends.
func TestPlanMatrixConsistent(t *testing.T) {
	res, err := genspec.Build("fattree2:4x2", nil)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlan(res.Net, planConfig(Permutation, 7))
	m := p.Matrix()
	var total int64
	for i := range m.Bytes {
		for j := range m.Bytes[i] {
			total += m.Bytes[i][j]
		}
	}
	if want := int64(p.TotalSends()) * int64(p.MsgBytes); total != want {
		t.Fatalf("matrix volume %d, want %d", total, want)
	}
}
