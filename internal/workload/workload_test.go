package workload

import (
	"math/rand"
	"testing"
	"time"

	"sanmap/internal/cluster"
	"sanmap/internal/connet"
	"sanmap/internal/desim"
	"sanmap/internal/isomorph"
	"sanmap/internal/mapper"
	"sanmap/internal/routes"
	"sanmap/internal/simnet"
)

// TestTrafficDelivers: on an idle network, routed traffic worms deliver.
func TestTrafficDelivers(t *testing.T) {
	sys := cluster.CConfig(nil)
	tab, err := routes.Compute(sys.Net, routes.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng := desim.New()
	cn := connet.New(sys.Net, simnet.CircuitModel, simnet.DefaultTiming())
	stats := Spawn(eng, cn, tab, Config{
		Pattern:  Uniform,
		Load:     0.05,
		MsgBytes: 256,
		Duration: 2 * time.Millisecond,
		Rng:      rand.New(rand.NewSource(1)),
	})
	eng.Run()
	if stats.Sent == 0 {
		t.Fatal("no traffic sent")
	}
	if frac := float64(stats.Delivered) / float64(stats.Sent); frac < 0.95 {
		t.Errorf("delivery fraction %.2f at light load; want near 1 (%+v)", frac, *stats)
	}
}

// TestMapUnderLightTraffic: at light load the map is usually still exact —
// the paper's §7 observation ("the algorithm can oftentimes correctly map
// the network even in the face of heavy application cross-traffic").
func TestMapUnderLightTraffic(t *testing.T) {
	sys := cluster.CConfig(nil)
	h0 := sys.Mapper()
	depth := sys.Net.DepthBound(h0)
	m, _, took, err := MapUnderTraffic(sys.Net, h0,
		simnet.CircuitModel, simnet.DefaultTiming(),
		mapper.DefaultConfig(depth), Config{
			Pattern:  Uniform,
			Load:     0.01,
			MsgBytes: 256,
			Duration: 5 * time.Second,
			Rng:      rand.New(rand.NewSource(2)),
		})
	if err != nil {
		t.Fatalf("map under traffic: %v", err)
	}
	core, _ := sys.Net.Core()
	sim := isomorph.Compare(m.Network, core)
	if sim.Score() < 0.9 {
		t.Errorf("light-load map score %.2f; want ≥0.9 (%+v)", sim.Score(), sim)
	}
	if took == 0 {
		t.Error("mapping took no virtual time")
	}
}

// TestAccuracyDegradesWithLoad: heavier cross-traffic must not improve
// accuracy, and heavy load should cost mapping time.
func TestAccuracyDegradesWithLoad(t *testing.T) {
	sys := cluster.CConfig(nil)
	h0 := sys.Mapper()
	depth := sys.Net.DepthBound(h0)
	core, _ := sys.Net.Core()
	var scores []float64
	var times []time.Duration
	for _, load := range []float64{0.001, 0.5} {
		m, _, took, err := MapUnderTraffic(sys.Net, h0,
			simnet.CircuitModel, simnet.DefaultTiming(),
			mapper.DefaultConfig(depth), Config{
				Pattern:  Uniform,
				Load:     load,
				MsgBytes: 4096,
				Duration: 10 * time.Second,
				Rng:      rand.New(rand.NewSource(3)),
			})
		if err != nil {
			// A failed export under heavy traffic counts as accuracy 0.
			scores = append(scores, 0)
			times = append(times, took)
			continue
		}
		scores = append(scores, isomorph.Compare(m.Network, core).Score())
		times = append(times, took)
	}
	if scores[1] > scores[0] {
		t.Errorf("accuracy improved with load: %.2f -> %.2f", scores[0], scores[1])
	}
	t.Logf("load sweep: light score=%.2f time=%v, heavy score=%.2f time=%v",
		scores[0], times[0], scores[1], times[1])
}

// TestPatterns: all patterns run and account consistently.
func TestPatterns(t *testing.T) {
	sys := cluster.CConfig(nil)
	tab, err := routes.Compute(sys.Net, routes.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, pat := range []Pattern{Uniform, Hotspot, Permutation} {
		eng := desim.New()
		cn := connet.New(sys.Net, simnet.CircuitModel, simnet.DefaultTiming())
		stats := Spawn(eng, cn, tab, Config{
			Pattern:  pat,
			Load:     0.2,
			MsgBytes: 512,
			Duration: time.Millisecond,
			Rng:      rand.New(rand.NewSource(4)),
		})
		eng.Run()
		if stats.Sent != stats.Delivered+stats.Lost {
			t.Errorf("%v: accounting: %+v", pat, *stats)
		}
		if stats.Sent == 0 {
			t.Errorf("%v: no traffic", pat)
		}
	}
}
