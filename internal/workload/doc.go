// Package workload generates application cross-traffic over the mapped
// network, for the paper's §6 future-work question: "the accurate mapping
// of system area networks in the presence of application cross-traffic".
// Traffic worms follow deadlock-free source routes (as real applications
// would) and contend for links with mapping probes.
//
// The package offers the same traffic mixes in two forms:
//
//   - Spawn attaches live traffic processes to a desim engine over the
//     contended connet transport — closed-loop senders whose next draw
//     depends on when the previous worm got out. This is the original
//     cross-traffic mode the mapping-under-load experiments use.
//
//   - NewPlan materialises the mix into a Plan: per-host injection times
//     and destinations precomputed from (Seed, host index) alone, so the
//     exact same offered traffic can be replayed over a healthy map, a
//     healed map, and a stale route table and the results compared
//     link-for-link (internal/loadsim consumes plans; SpawnPlan replays
//     one over connet). Plans serialise to the sanplan v1 text format —
//     see WORKLOADS.md at the repository root.
//
// Three destination patterns are provided: Uniform (uniformly random
// destination per message), Hotspot (a fraction of all traffic aimed at
// one hot host), and Permutation (one fixed destination per source, the
// classic adversarial pattern for interconnects). Aggregated demand is
// exposed as a Matrix, the interface the branch-and-bound placement
// optimizer (internal/place) consumes.
//
// Determinism: plan materialisation draws every host's schedule from its
// own splitmix64 stream keyed on the plan seed and the host's index (the
// faults.NewSource convention), so building plans concurrently — or only
// for a subset of hosts — yields byte-identical schedules.
package workload
