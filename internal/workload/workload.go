package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"sanmap/internal/connet"
	"sanmap/internal/desim"
	"sanmap/internal/mapper"
	"sanmap/internal/routes"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// Pattern selects how traffic destinations are drawn.
type Pattern uint8

const (
	// Uniform draws a fresh uniformly-random destination per message.
	Uniform Pattern = iota
	// Hotspot sends a fraction of traffic to one hot destination.
	Hotspot
	// Permutation fixes one destination per source (a classic adversarial
	// pattern for interconnects).
	Permutation
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case Uniform:
		return "uniform"
	case Hotspot:
		return "hotspot"
	case Permutation:
		return "permutation"
	}
	return fmt.Sprintf("pattern(%d)", uint8(p))
}

// Config parameterises a traffic mix.
type Config struct {
	Pattern Pattern
	// Load is the offered load per host as a fraction of link bandwidth
	// (0..1): a host sends MsgBytes every MsgBytes×ByteTime/Load.
	Load float64
	// MsgBytes is the payload size per worm.
	MsgBytes int
	// HotFraction is the share of traffic aimed at the hotspot (Hotspot
	// pattern only; default 0.5).
	HotFraction float64
	// Duration is how long each host keeps sending.
	Duration time.Duration
	// Rng seeds per-host generators; required.
	Rng *rand.Rand
}

// Stats aggregates traffic outcomes.
type Stats struct {
	Sent      int64
	Delivered int64
	Lost      int64 // destroyed by contention (forward reset)
}

// Spawn starts one traffic process per host on the engine. Traffic follows
// the given route table (computed on the actual network, as resident
// applications would have it). It returns the shared Stats, valid after
// eng.Run() completes.
func Spawn(eng *desim.Engine, cn *connet.Net, tab *routes.Table, cfg Config) *Stats {
	if cfg.Rng == nil {
		panic("workload: Config.Rng is required")
	}
	if cfg.MsgBytes <= 0 {
		cfg.MsgBytes = 512
	}
	if cfg.HotFraction == 0 {
		cfg.HotFraction = 0.5
	}
	stats := &Stats{}
	net := cn.Topology()
	hosts := net.Hosts()
	if len(hosts) < 2 || cfg.Load <= 0 {
		return stats
	}
	hot := hosts[cfg.Rng.Intn(len(hosts))]
	gap := time.Duration(float64(cfg.MsgBytes) * float64(cn.Quiet().Timing().ByteTime) / cfg.Load)
	if gap <= 0 {
		gap = time.Nanosecond
	}
	for i, h := range hosts {
		h := h
		seed := cfg.Rng.Int63()
		perm := hosts[(i+1+cfg.Rng.Intn(len(hosts)-1))%len(hosts)]
		eng.Spawn("traffic-"+net.NameOf(h), func(p *desim.Proc) {
			rng := rand.New(rand.NewSource(seed))
			ep := cn.Endpoint(h, p)
			for p.Now() < cfg.Duration {
				dst := pickDest(cfg, rng, hosts, h, hot, perm)
				if dst == h {
					p.Sleep(gap)
					continue
				}
				route, ok := tab.Route(h, dst)
				if !ok {
					p.Sleep(gap)
					continue
				}
				stats.Sent++
				if ep.SendWorm(route, cfg.MsgBytes) {
					stats.Delivered++
				} else {
					stats.Lost++
				}
				// Exponential-ish inter-send gap for a Poisson-like offered
				// load, deterministic per seed.
				jitter := -math.Log(1 - rng.Float64())
				p.Sleep(time.Duration(float64(gap) * jitter))
			}
		})
	}
	return stats
}

func pickDest(cfg Config, rng *rand.Rand, hosts []topology.NodeID, self, hot, perm topology.NodeID) topology.NodeID {
	switch cfg.Pattern {
	case Hotspot:
		if rng.Float64() < cfg.HotFraction && hot != self {
			return hot
		}
		return hosts[rng.Intn(len(hosts))]
	case Permutation:
		return perm
	default:
		return hosts[rng.Intn(len(hosts))]
	}
}

// MapUnderTraffic runs a Berkeley mapping while cross-traffic flows and
// returns the resulting map — which may be wrong or incomplete; measuring
// how wrong, as a function of offered load, is the experiment — together
// with the traffic stats and the mapping duration in virtual time.
func MapUnderTraffic(net *topology.Network, mapperHost topology.NodeID,
	model simnet.Model, timing simnet.Timing,
	mcfg mapper.Config, wcfg Config) (*mapper.Map, *Stats, time.Duration, error) {

	tab, err := routes.Compute(net, routes.DefaultConfig())
	if err != nil {
		return nil, nil, 0, fmt.Errorf("workload: routes for traffic: %w", err)
	}
	eng := desim.New()
	cn := connet.New(net, model, timing)
	stats := Spawn(eng, cn, tab, wcfg)
	var out *mapper.Map
	var mapErr error
	var took time.Duration
	eng.Spawn("mapper", func(p *desim.Proc) {
		out, mapErr = mapper.RunConfig(cn.Endpoint(mapperHost, p), mcfg)
		took = p.Now()
	})
	eng.Run()
	if mapErr != nil {
		return nil, stats, took, mapErr
	}
	return out, stats, took, nil
}
