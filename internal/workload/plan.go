package workload

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"sanmap/internal/connet"
	"sanmap/internal/desim"
	"sanmap/internal/faults"
	"sanmap/internal/routes"
	"sanmap/internal/topology"
)

// Send is one scheduled worm injection: a virtual time and a destination.
type Send struct {
	At  time.Duration
	Dst topology.NodeID
}

// PlanConfig parameterises plan materialisation. Unlike Config it carries
// no *rand.Rand: every stochastic choice derives from Seed and the sending
// host's index alone, so two hosts' schedules can be materialised in any
// order — or concurrently — and still come out byte-identical.
type PlanConfig struct {
	Pattern Pattern
	// Load is the offered load per host as a fraction of link bandwidth
	// (0..1): a host offers MsgBytes every MsgBytes×ByteTime/Load on
	// average.
	Load float64
	// MsgBytes is the payload size per worm (default 512).
	MsgBytes int
	// HotFraction is the share of traffic aimed at the hotspot (Hotspot
	// pattern only; default 0.5).
	HotFraction float64
	// Duration is the injection horizon: sends are scheduled in
	// [0, Duration).
	Duration time.Duration
	// ByteTime is the per-byte link serialisation time the gap derives
	// from (use the transport's Timing.ByteTime).
	ByteTime time.Duration
	// Seed drives every stochastic decision.
	Seed uint64
}

// Plan is a fully materialised, replayable traffic schedule: for every
// sending host, the precomputed injection times and destinations. A Plan is
// a pure function of (host set, PlanConfig) — the same inputs always yield
// the same plan, independent of goroutine scheduling — which is what makes
// load replays comparable across healthy and healed maps: the offered
// traffic is held fixed while only the network underneath changes.
type Plan struct {
	Pattern  Pattern
	Seed     uint64
	MsgBytes int
	// Hosts lists the senders in topology insertion order; Sends[i] is
	// host i's schedule in ascending time order.
	Hosts []topology.NodeID
	Sends [][]Send
}

// hostStream returns host i's private generator: the plan seed advanced by
// a per-host golden-ratio offset, per the faults.NewSource convention, so
// schedules are independent of the order hosts are materialised in.
func hostStream(seed uint64, i int) *rand.Rand {
	return rand.New(faults.NewSource(seed + uint64(i+1)*0x9e3779b97f4a7c15))
}

// NewPlan materialises a plan over the network's hosts. The per-send gap,
// destination draws and Poisson-like jitter match Spawn's generation
// process; the difference is that every host's schedule comes from its own
// seeded stream, keyed on (cfg.Seed, host index), instead of a shared
// *rand.Rand consumed in spawn order.
func NewPlan(net *topology.Network, cfg PlanConfig) *Plan {
	if cfg.MsgBytes <= 0 {
		cfg.MsgBytes = 512
	}
	if cfg.HotFraction == 0 {
		cfg.HotFraction = 0.5
	}
	p := &Plan{Pattern: cfg.Pattern, Seed: cfg.Seed, MsgBytes: cfg.MsgBytes, Hosts: net.Hosts()}
	p.Sends = make([][]Send, len(p.Hosts))
	if len(p.Hosts) < 2 || cfg.Load <= 0 || cfg.Duration <= 0 {
		return p
	}
	gap := time.Duration(float64(cfg.MsgBytes) * float64(cfg.ByteTime) / cfg.Load)
	if gap <= 0 {
		gap = time.Nanosecond
	}
	// Global choices (the hotspot) come from the bare seed's stream; they
	// must not depend on any host's draw position.
	global := rand.New(faults.NewSource(cfg.Seed))
	hot := p.Hosts[global.Intn(len(p.Hosts))]
	for i, h := range p.Hosts {
		rng := hostStream(cfg.Seed, i)
		perm := p.Hosts[(i+1+rng.Intn(len(p.Hosts)-1))%len(p.Hosts)]
		var sends []Send
		for t := time.Duration(0); t < cfg.Duration; {
			dst := pickDest(Config{Pattern: cfg.Pattern, HotFraction: cfg.HotFraction},
				rng, p.Hosts, h, hot, perm)
			if dst != h {
				sends = append(sends, Send{At: t, Dst: dst})
			}
			jitter := -math.Log(1 - rng.Float64())
			t += time.Duration(float64(gap) * jitter)
		}
		p.Sends[i] = sends
	}
	return p
}

// TotalSends counts the scheduled injections across all hosts.
func (p *Plan) TotalSends() int {
	n := 0
	for _, s := range p.Sends {
		n += len(s)
	}
	return n
}

// Matrix is an aggregated demand matrix: payload bytes offered between
// ordered host pairs. It is the "measured traffic matrix" interface between
// workload replay and placement: loadsim produces one from delivered
// traffic, place consumes one as its communication-cost input.
type Matrix struct {
	Hosts []topology.NodeID
	// Bytes[si][di] is the payload volume from Hosts[si] to Hosts[di].
	Bytes [][]int64
}

// NewMatrix returns a zeroed demand matrix over the given hosts.
func NewMatrix(hosts []topology.NodeID) *Matrix {
	m := &Matrix{Hosts: append([]topology.NodeID(nil), hosts...)}
	m.Bytes = make([][]int64, len(m.Hosts))
	for i := range m.Bytes {
		m.Bytes[i] = make([]int64, len(m.Hosts))
	}
	return m
}

// Matrix aggregates the plan's offered traffic into a demand matrix.
func (p *Plan) Matrix() *Matrix {
	m := NewMatrix(p.Hosts)
	idx := make(map[topology.NodeID]int, len(p.Hosts))
	for i, h := range p.Hosts {
		idx[h] = i
	}
	for si, sends := range p.Sends {
		for _, s := range sends {
			m.Bytes[si][idx[s.Dst]] += int64(p.MsgBytes)
		}
	}
	return m
}

// Write serialises the plan in the sanplan v1 text format (see
// WORKLOADS.md): a header, then per host one "host <name> <sends>" line
// followed by one "send <at_ns> <dst>" line per scheduled injection, and a
// trailing "end". Hosts appear in plan order, sends in time order, so equal
// plans serialise byte-identically.
func (p *Plan) Write(net *topology.Network, w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "sanplan v1\npattern %s\nseed %d\nmsg %d\n", p.Pattern, p.Seed, p.MsgBytes)
	for i, h := range p.Hosts {
		fmt.Fprintf(bw, "host %s %d\n", net.NameOf(h), len(p.Sends[i]))
		for _, s := range p.Sends[i] {
			fmt.Fprintf(bw, "send %d %s\n", int64(s.At), net.NameOf(s.Dst))
		}
	}
	fmt.Fprintln(bw, "end")
	return bw.Flush()
}

// ReadPlan parses the sanplan v1 format against the network that named its
// hosts. It rejects unknown hosts, malformed counts and a missing trailer.
func ReadPlan(net *topology.Network, r io.Reader) (*Plan, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	p := &Plan{}
	line := func() (string, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return "", err
			}
			return "", io.ErrUnexpectedEOF
		}
		return sc.Text(), nil
	}
	l, err := line()
	if err != nil || l != "sanplan v1" {
		return nil, fmt.Errorf("workload: bad plan header %q", l)
	}
	var patName string
	for _, parse := range []struct {
		key string
		dst any
	}{{"pattern", &patName}, {"seed", &p.Seed}, {"msg", &p.MsgBytes}} {
		if l, err = line(); err != nil {
			return nil, fmt.Errorf("workload: truncated plan header: %w", err)
		}
		if _, err := fmt.Sscanf(l, parse.key+" %v", parse.dst); err != nil {
			return nil, fmt.Errorf("workload: bad plan line %q: %w", l, err)
		}
	}
	switch patName {
	case Uniform.String():
		p.Pattern = Uniform
	case Hotspot.String():
		p.Pattern = Hotspot
	case Permutation.String():
		p.Pattern = Permutation
	default:
		return nil, fmt.Errorf("workload: unknown pattern %q", patName)
	}
	lookup := func(name string) (topology.NodeID, error) {
		id := net.Lookup(name)
		if id == topology.None {
			return id, fmt.Errorf("workload: plan names unknown host %q", name)
		}
		return id, nil
	}
	for {
		if l, err = line(); err != nil {
			return nil, fmt.Errorf("workload: truncated plan: %w", err)
		}
		if l == "end" {
			return p, nil
		}
		var name string
		var count int
		if _, err := fmt.Sscanf(l, "host %s %d", &name, &count); err != nil {
			return nil, fmt.Errorf("workload: bad host line %q: %w", l, err)
		}
		h, err := lookup(name)
		if err != nil {
			return nil, err
		}
		sends := make([]Send, 0, count)
		for k := 0; k < count; k++ {
			if l, err = line(); err != nil {
				return nil, fmt.Errorf("workload: truncated sends for %s: %w", name, err)
			}
			var at int64
			var dst string
			if _, err := fmt.Sscanf(l, "send %d %s", &at, &dst); err != nil {
				return nil, fmt.Errorf("workload: bad send line %q: %w", l, err)
			}
			d, err := lookup(dst)
			if err != nil {
				return nil, err
			}
			if len(sends) > 0 && time.Duration(at) < sends[len(sends)-1].At {
				return nil, fmt.Errorf("workload: sends for %s out of order at %d", name, at)
			}
			sends = append(sends, Send{At: time.Duration(at), Dst: d})
		}
		p.Hosts = append(p.Hosts, h)
		p.Sends = append(p.Sends, sends)
	}
}

// SpawnPlan starts one open-loop replay process per plan host on the
// engine: each process injects its scheduled worms at their planned times
// (or as soon after as the host's interface frees up), following the given
// route table. It is the contended-transport twin of loadsim's flat replay:
// same plan in, desim/connet fidelity out. Returns the shared Stats, valid
// after eng.Run() completes.
func SpawnPlan(eng *desim.Engine, cn *connet.Net, tab *routes.Table, p *Plan) *Stats {
	stats := &Stats{}
	net := cn.Topology()
	for i, h := range p.Hosts {
		h := h
		sends := p.Sends[i]
		if len(sends) == 0 {
			continue
		}
		eng.Spawn("replay-"+net.NameOf(h), func(proc *desim.Proc) {
			ep := cn.Endpoint(h, proc)
			for _, s := range sends {
				if d := s.At - proc.Now(); d > 0 {
					proc.Sleep(d)
				}
				route, ok := tab.Route(h, s.Dst)
				if !ok {
					stats.Lost++
					stats.Sent++
					continue
				}
				stats.Sent++
				if ep.SendWorm(route, p.MsgBytes) {
					stats.Delivered++
				} else {
					stats.Lost++
				}
			}
		})
	}
	return stats
}
