// Package isomorph decides isomorphism between two host/switch networks.
//
// The SPAA'97 mapping paper's Theorem 1 states that the model graph modulo
// labelling, M/L, "is isomorphic to N − F". This package provides the
// checker the test-suite and experiments use to verify that claim for the
// implemented algorithms: hosts are labelled by their unique names and must
// map to the identically-named host; switches are anonymous; port numbers
// are ignored (the theorem is about graphs, and Lemma 2 makes port frames
// unobservable up to rotation); wire multiplicity (parallel cables) and
// self-loop cables must be preserved.
//
// The search is signature-refined backtracking: every node gets an
// invariant signature (kind, degree, loop count, distances to every named
// host), candidates are grouped by signature, and a most-constrained-first
// backtracking search completes the switch correspondence. Host anchors
// make this effectively polynomial on the paper's networks.
package isomorph

import (
	"fmt"
	"sort"
	"strings"

	"sanmap/internal/topology"
)

// Check reports whether a and b are isomorphic in the sense above. When
// they are not, the returned reason sketches the first obstruction found.
func Check(a, b *topology.Network) (ok bool, reason string) {
	sa, sb := a.Stats(), b.Stats()
	if sa != sb {
		return false, fmt.Sprintf("component counts differ: %+v vs %+v", sa, sb)
	}
	an, bn := a.SortedHostNames(), b.SortedHostNames()
	if len(an) != len(bn) {
		return false, "host counts differ"
	}
	for i := range an {
		if an[i] != bn[i] {
			return false, fmt.Sprintf("host name sets differ at %q vs %q", an[i], bn[i])
		}
	}

	ga := newGraph(a)
	gb := newGraph(b)

	// Signatures must match as multisets.
	countA := map[string]int{}
	countB := map[string]int{}
	for _, s := range ga.sig {
		countA[s]++
	}
	for _, s := range gb.sig {
		countB[s]++
	}
	// Report the lexically first differing signature so the reason string is
	// stable across runs (map iteration order is randomized).
	sigs := make([]string, 0, len(countA))
	for s := range countA {
		sigs = append(sigs, s)
	}
	sort.Strings(sigs)
	for _, s := range sigs {
		if countB[s] != countA[s] {
			return false, fmt.Sprintf("signature multiset differs for %q: %d vs %d", s, countA[s], countB[s])
		}
	}

	m := &matcher{a: ga, b: gb,
		ab: make([]topology.NodeID, a.NumNodes()),
		ba: make([]topology.NodeID, b.NumNodes()),
	}
	for i := range m.ab {
		m.ab[i] = topology.None
	}
	for i := range m.ba {
		m.ba[i] = topology.None
	}
	// Anchor hosts by name.
	for _, name := range an {
		ha, hb := a.Lookup(name), b.Lookup(name)
		if !m.assign(ha, hb) {
			return false, fmt.Sprintf("host %q cannot map to its counterpart", name)
		}
	}
	// Order unmatched switches most-constrained-first (rarest signature).
	var order []topology.NodeID
	for _, s := range a.Switches() {
		if m.ab[s] == topology.None {
			order = append(order, s)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		ci := countA[ga.sig[order[i]]]
		cj := countA[ga.sig[order[j]]]
		if ci != cj {
			return ci < cj
		}
		return order[i] < order[j]
	})
	if m.search(order, 0) {
		return true, ""
	}
	return false, "no switch correspondence found"
}

// graph is the preprocessed view of a network.
type graph struct {
	net *topology.Network
	// mult[u] maps neighbour v to the number of wires between u and v
	// (self-loops stored under u itself, counted once per cable).
	mult []map[topology.NodeID]int
	sig  []string
}

func newGraph(n *topology.Network) *graph {
	g := &graph{net: n, mult: make([]map[topology.NodeID]int, n.NumNodes()),
		sig: make([]string, n.NumNodes())}
	for i := range g.mult {
		g.mult[i] = make(map[topology.NodeID]int)
	}
	for _, w := range n.Wires() {
		if w.A.Node == w.B.Node {
			g.mult[w.A.Node][w.A.Node]++
			continue
		}
		g.mult[w.A.Node][w.B.Node]++
		g.mult[w.B.Node][w.A.Node]++
	}
	// Distance vectors to hosts in name order.
	names := n.SortedHostNames()
	dists := make([][]int, len(names))
	for i, name := range names {
		dists[i] = n.BFS(n.Lookup(name))
	}
	for i := 0; i < n.NumNodes(); i++ {
		id := topology.NodeID(i)
		refl := 0
		for p := 0; p < n.NumPorts(id); p++ {
			if n.ReflectorAt(id, p) {
				refl++
			}
		}
		var b strings.Builder
		fmt.Fprintf(&b, "%s/deg%d/loop%d/refl%d:", n.KindOf(id), n.Degree(id), g.mult[i][id], refl)
		if n.KindOf(id) == topology.HostNode {
			fmt.Fprintf(&b, "name=%s:", n.NameOf(id))
		}
		for h := range names {
			fmt.Fprintf(&b, "%d,", dists[h][i])
		}
		g.sig[i] = b.String()
	}
	return g
}

type matcher struct {
	a, b *graph
	ab   []topology.NodeID // a-node -> b-node
	ba   []topology.NodeID
}

// assign tentatively maps ua to ub, checking signature equality and
// adjacency-multiplicity consistency against already-mapped nodes.
func (m *matcher) assign(ua, ub topology.NodeID) bool {
	if m.a.sig[ua] != m.b.sig[ub] {
		return false
	}
	if m.ab[ua] != topology.None || m.ba[ub] != topology.None {
		return false
	}
	for v, c := range m.a.mult[ua] {
		if v == ua {
			// Self-loop count already encoded in the signature.
			continue
		}
		if mv := m.ab[v]; mv != topology.None {
			if m.b.mult[ub][mv] != c {
				return false
			}
		}
	}
	// Also check mapped b-side neighbours that should correspond back.
	for v, c := range m.b.mult[ub] {
		if v == ub {
			continue
		}
		if mv := m.ba[v]; mv != topology.None {
			if m.a.mult[ua][mv] != c {
				return false
			}
		}
	}
	m.ab[ua] = ub
	m.ba[ub] = ua
	return true
}

func (m *matcher) unassign(ua topology.NodeID) {
	ub := m.ab[ua]
	m.ab[ua] = topology.None
	m.ba[ub] = topology.None
}

// search extends the mapping over order[i:] by backtracking.
func (m *matcher) search(order []topology.NodeID, i int) bool {
	if i == len(order) {
		return true
	}
	ua := order[i]
	for _, ub := range m.b.net.Switches() {
		if m.ba[ub] != topology.None {
			continue
		}
		if m.assign(ua, ub) {
			if m.search(order, i+1) {
				return true
			}
			m.unassign(ua)
		}
	}
	return false
}

// MustEqualCore asserts that mapped is isomorphic to the core (N−F) of
// actual; it returns a descriptive error otherwise. This is the Theorem 1
// check used throughout the tests and experiments.
func MustEqualCore(mapped, actual *topology.Network) error {
	core, _ := actual.Core()
	if ok, reason := Check(mapped, core); !ok {
		return fmt.Errorf("map is not isomorphic to N-F: %s", reason)
	}
	return nil
}

// Similarity quantifies how close a (possibly wrong) map is to a reference
// network — the accuracy metric for the mapping-under-cross-traffic
// experiments, where probe loss yields incomplete maps.
type Similarity struct {
	Isomorphic bool
	// HostRecall is the fraction of reference hosts present in the map.
	HostRecall float64
	// SwitchRatio and LinkRatio are mapped counts over reference counts
	// (can exceed 1 when unmerged replicates survive).
	SwitchRatio float64
	LinkRatio   float64
}

// Score is a scalar in [0,1]: 1 for isomorphic, otherwise the host recall
// discounted by count mismatches.
func (s Similarity) Score() float64 {
	if s.Isomorphic {
		return 1
	}
	penalty := func(r float64) float64 {
		if r > 1 {
			r = 1 / r
		}
		return r
	}
	return s.HostRecall * penalty(s.SwitchRatio) * penalty(s.LinkRatio)
}

// Compare computes the similarity of mapped against ref.
func Compare(mapped, ref *topology.Network) Similarity {
	var s Similarity
	if ok, _ := Check(mapped, ref); ok {
		s.Isomorphic = true
	}
	refHosts := make(map[string]bool)
	for _, name := range ref.SortedHostNames() {
		refHosts[name] = true
	}
	found := 0
	for _, name := range mapped.SortedHostNames() {
		if refHosts[name] {
			found++
		}
	}
	if len(refHosts) > 0 {
		s.HostRecall = float64(found) / float64(len(refHosts))
	}
	if n := ref.NumSwitches(); n > 0 {
		s.SwitchRatio = float64(mapped.NumSwitches()) / float64(n)
	}
	if n := ref.NumWires(); n > 0 {
		s.LinkRatio = float64(mapped.NumWires()) / float64(n)
	}
	return s
}

// MustEqualCoreIgnoring is MustEqualCore with a set of host names excluded
// from the reference — used to verify maps taken while those hosts were
// silent (not running responder daemons) and therefore invisible.
func MustEqualCoreIgnoring(mapped, actual *topology.Network, ignore map[string]bool) error {
	core, _ := actual.Core()
	ref, _ := core.Filter(func(id topology.NodeID) bool {
		return core.KindOf(id) != topology.HostNode || !ignore[core.NameOf(id)]
	})
	if ok, reason := Check(mapped, ref); !ok {
		return fmt.Errorf("map is not isomorphic to N-F minus silent hosts: %s", reason)
	}
	return nil
}
