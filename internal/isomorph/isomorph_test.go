package isomorph

import (
	"math/rand"
	"testing"

	"sanmap/internal/topology"
)

// scramble rebuilds net with node insertion order and port numbers
// permuted — an isomorphic copy that shares nothing positional.
func scramble(net *topology.Network, rng *rand.Rand) *topology.Network {
	out := &topology.Network{}
	n := net.NumNodes()
	perm := rng.Perm(n)
	ids := make([]topology.NodeID, n)
	// Create nodes in permuted order.
	for _, i := range perm {
		id := topology.NodeID(i)
		if net.KindOf(id) == topology.HostNode {
			ids[i] = out.AddHost(net.NameOf(id))
		} else {
			ids[i] = out.AddSwitch("")
		}
	}
	// Per-switch random port rotation.
	rot := make([]int, n)
	for i := range rot {
		rot[i] = rng.Intn(topology.SwitchPorts)
	}
	portOf := func(e topology.End) int {
		if net.KindOf(e.Node) == topology.HostNode {
			return 0
		}
		return (e.Port + rot[e.Node]) % topology.SwitchPorts
	}
	for _, w := range net.Wires() {
		out.MustConnect(ids[w.A.Node], portOf(w.A), ids[w.B.Node], portOf(w.B))
	}
	return out
}

func TestIsomorphicScrambles(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		net := topology.MustRandomConnected(3+rng.Intn(5), 2+rng.Intn(6), rng.Intn(4), rng)
		copyNet := scramble(net, rng)
		if ok, reason := Check(net, copyNet); !ok {
			t.Fatalf("seed %d: scrambled copy not isomorphic: %s", seed, reason)
		}
	}
}

func TestNotIsomorphicAfterMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := topology.MustMesh(3, 2, 2, rng)
	mutations := []struct {
		name   string
		mutate func(*topology.Network) bool
	}{
		{"remove a wire", func(c *topology.Network) bool {
			// Remove a switch-switch wire (keep host names intact).
			removed := false
			c.WiresIndexed(func(wi int, w topology.Wire) {
				if removed {
					return
				}
				if c.KindOf(w.A.Node) == topology.SwitchNode && c.KindOf(w.B.Node) == topology.SwitchNode {
					if err := c.RemoveWire(wi); err == nil {
						removed = true
					}
				}
			})
			return removed
		}},
		{"add a switch", func(c *topology.Network) bool {
			s := c.AddSwitch("")
			for _, other := range c.Switches() {
				if other != s && c.FreePort(other) >= 0 {
					_, _, _, err := c.ConnectFree(s, other)
					return err == nil
				}
			}
			return false
		}},
		{"rewire", func(c *topology.Network) bool {
			// Move one switch-switch wire to different endpoints, changing
			// the multiset of adjacencies.
			var cand int = -1
			c.WiresIndexed(func(wi int, w topology.Wire) {
				if cand >= 0 {
					return
				}
				if c.KindOf(w.A.Node) == topology.SwitchNode && c.KindOf(w.B.Node) == topology.SwitchNode {
					cand = wi
				}
			})
			if cand < 0 {
				return false
			}
			w := c.WireByIndex(cand)
			sw := c.Switches()
			for _, a := range sw {
				for _, b := range sw {
					if a == b || (a == w.A.Node && b == w.B.Node) || (a == w.B.Node && b == w.A.Node) {
						continue
					}
					if c.FreePort(a) >= 0 && c.FreePort(b) >= 0 {
						if err := c.RemoveWire(cand); err != nil {
							return false
						}
						_, _, _, err := c.ConnectFree(a, b)
						return err == nil
					}
				}
			}
			return false
		}},
	}
	for _, m := range mutations {
		c := net.Clone()
		if !m.mutate(c) {
			t.Fatalf("%s: mutation did not apply", m.name)
		}
		if ok, _ := Check(net, c); ok {
			// The rewire mutation can occasionally produce a graph that is
			// genuinely isomorphic; the others cannot.
			if m.name != "rewire" {
				t.Errorf("%s: mutated copy still isomorphic", m.name)
			}
		}
	}
}

func TestHostNamesMatter(t *testing.T) {
	a := &topology.Network{}
	s := a.AddSwitch("s")
	a.MustConnect(a.AddHost("x"), 0, s, 0)
	a.MustConnect(a.AddHost("y"), 0, s, 1)

	b := &topology.Network{}
	sb := b.AddSwitch("s")
	b.MustConnect(b.AddHost("x"), 0, sb, 0)
	b.MustConnect(b.AddHost("z"), 0, sb, 1)
	if ok, _ := Check(a, b); ok {
		t.Error("different host names accepted")
	}
}

func TestParallelWiresAndLoops(t *testing.T) {
	build := func(parallel int, loop bool) *topology.Network {
		n := &topology.Network{}
		s0 := n.AddSwitch("")
		s1 := n.AddSwitch("")
		n.MustConnect(n.AddHost("a"), 0, s0, 0)
		n.MustConnect(n.AddHost("b"), 0, s1, 0)
		for i := 0; i < parallel; i++ {
			n.MustConnect(s0, 1+i, s1, 1+i)
		}
		if loop {
			n.MustConnect(s0, 6, s0, 7)
		}
		return n
	}
	if ok, _ := Check(build(2, false), build(2, false)); !ok {
		t.Error("identical parallel builds differ")
	}
	if ok, _ := Check(build(1, false), build(2, false)); ok {
		t.Error("wire multiplicity ignored")
	}
	if ok, _ := Check(build(2, true), build(2, false)); ok {
		t.Error("self-loop ignored")
	}
	if ok, _ := Check(build(2, true), build(2, true)); !ok {
		t.Error("identical loop builds differ")
	}
}

func TestSimilarity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := topology.MustStar(3, 2, rng)
	same := Compare(net, net)
	if !same.Isomorphic || same.Score() != 1 {
		t.Errorf("self comparison: %+v", same)
	}
	// Remove one host: recall drops.
	partial := net.Clone()
	h := partial.Hosts()[0]
	if w := partial.WireAt(h, 0); w >= 0 {
		if err := partial.RemoveWire(w); err != nil {
			t.Fatal(err)
		}
	}
	smaller, _ := partial.Filter(func(id topology.NodeID) bool { return id != h })
	sim := Compare(smaller, net)
	if sim.Isomorphic {
		t.Error("partial map reported isomorphic")
	}
	if sim.HostRecall >= 1 || sim.HostRecall <= 0 {
		t.Errorf("host recall %v", sim.HostRecall)
	}
	if sim.Score() >= 1 || sim.Score() <= 0 {
		t.Errorf("score %v", sim.Score())
	}
}
