package topology

import (
	"fmt"

	"sanmap/internal/flow"
)

// This file computes the paper's probe-depth parameters (§3.1.4):
//
//   Definition 2: Q(v) is the length of the shortest path from the mapper
//   h0 to v and then on to any host that does not repeat an edge in either
//   direction, except that the first and last edge may be the same.
//
//   Definition 3: Q = max{ Q(v) | v ∈ N−F }.
//
// The algorithm's exploration depth bound is Q+D (the paper proves Q+D+1
// and then tightens by one). Q(v) is a 2-unit minimum-cost flow: reversing
// the path, we need two edge-disjoint unit paths out of v — one to h0 and
// one to any host — where h0's single host wire may carry both units (that
// is exactly the "first and last may be the same" anomaly).

// qGraph builds the flow network shared by Q(v) and FByFlow. Node ids map
// directly to flow vertices; the sink is vertex NumNodes().
func (n *Network) qGraph(h0 NodeID) *flow.Graph {
	g := flow.New(len(n.nodes) + 1)
	sink := len(n.nodes)
	h0Wire := n.WireAt(h0, HostPort)
	for wi, w := range n.wires {
		if n.dead[wi] {
			continue
		}
		capacity := int64(1)
		if wi == h0Wire {
			capacity = 2
		}
		g.AddEdge(int(w.A.Node), int(w.B.Node), capacity, 1)
	}
	// One unit must return to the mapper...
	g.AddArc(int(h0), sink, 1, 0)
	// ...and one unit must reach any host (h0 included: the anomalous case).
	for i := range n.nodes {
		if n.nodes[i].kind == HostNode {
			g.AddArc(i, sink, 1, 0)
		}
	}
	return g
}

// QOf computes Q(v) for the given mapper host h0. ok is false when Q(v) is
// undefined, i.e. v ∈ F.
func (n *Network) QOf(h0, v NodeID) (q int, ok bool) {
	if n.nodes[h0].kind != HostNode {
		panic(fmt.Sprintf("topology: mapper %d is not a host", h0))
	}
	g := n.qGraph(h0)
	pushed, cost, err := g.MinCostFlow(int(v), len(n.nodes), 2)
	if err != nil {
		panic(err) // positive costs: unreachable
	}
	if pushed < 2 {
		return 0, false
	}
	return int(cost), true
}

// Q computes Definition 3's bound: the maximum Q(v) over the core N−F.
// The second result is the set of nodes with undefined Q — by Lemma 1 this
// equals F, which TestLemma1 verifies against the switch-bridge definition.
func (n *Network) Q(h0 NodeID) (q int, undefined map[NodeID]bool) {
	undefined = make(map[NodeID]bool)
	for i := range n.nodes {
		qi, ok := n.QOf(h0, NodeID(i))
		if !ok {
			undefined[NodeID(i)] = true
			continue
		}
		if qi > q {
			q = qi
		}
	}
	return q, undefined
}

// FByFlow computes F with the Max-Flow Min-Cut argument of Lemma 1, as an
// independent cross-check of the switch-bridge-based F().
func (n *Network) FByFlow(h0 NodeID) map[NodeID]bool {
	out := make(map[NodeID]bool)
	for i := range n.nodes {
		g := n.qGraph(h0)
		if g.MaxFlow(i, len(n.nodes), 2) < 2 {
			out[NodeID(i)] = true
		}
	}
	return out
}

// DepthBound returns the paper's exploration depth Q+D for a mapper at h0.
// Probe strings of this length suffice for Theorem 1's reconstruction
// guarantee.
func (n *Network) DepthBound(h0 NodeID) int {
	q, _ := n.Q(h0)
	return q + n.Diameter()
}
