package topology

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Textual network format for the command-line tools:
//
//	# comment / blank lines ignored
//	host <name>
//	switch <name> [radix]
//	wire <nodeA> <portA> <nodeB> <portB>
//	reflector <switch> <port>
//
// Nodes are referenced by name; switches that were built unnamed are
// emitted as sw<N>. The radix field appears only for switches whose port
// count differs from the default SwitchPorts, keeping legacy files and
// their byte-identical round-trips unchanged. Write output is stable
// (sorted) and round-trips through ReadFrom.

// Write serialises the network. Unnamed switches get synthetic names.
func (n *Network) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	names := make(map[NodeID]string, len(n.nodes))
	for i := range n.nodes {
		id := NodeID(i)
		name := n.nodes[i].name
		if name == "" {
			name = fmt.Sprintf("sw%d", i)
		}
		names[id] = name
	}
	fmt.Fprintf(bw, "# %d hosts, %d switches, %d links\n",
		n.NumHosts(), n.NumSwitches(), n.NumWires())
	var lines []string
	for i := range n.nodes {
		switch {
		case n.nodes[i].kind == HostNode:
			lines = append(lines, fmt.Sprintf("host %s", names[NodeID(i)]))
		case len(n.nodes[i].ports) != SwitchPorts:
			lines = append(lines, fmt.Sprintf("switch %s %d", names[NodeID(i)], len(n.nodes[i].ports)))
		default:
			lines = append(lines, fmt.Sprintf("switch %s", names[NodeID(i)]))
		}
	}
	// Node lines keep insertion order (hosts may depend on it); wires and
	// reflectors are sorted for stability.
	for _, l := range lines {
		fmt.Fprintln(bw, l)
	}
	var wires []string
	n.WiresIndexed(func(_ int, w Wire) {
		wires = append(wires, fmt.Sprintf("wire %s %d %s %d",
			names[w.A.Node], w.A.Port, names[w.B.Node], w.B.Port))
	})
	sort.Strings(wires)
	for _, l := range wires {
		fmt.Fprintln(bw, l)
	}
	var refl []string
	for _, e := range n.Reflectors() {
		refl = append(refl, fmt.Sprintf("reflector %s %d", names[e.Node], e.Port))
	}
	sort.Strings(refl)
	for _, l := range refl {
		fmt.Fprintln(bw, l)
	}
	return bw.Flush()
}

// ReadFrom parses the textual format into a fresh network.
func ReadFrom(r io.Reader) (*Network, error) {
	n := &Network{}
	byName := make(map[string]NodeID)
	sc := bufio.NewScanner(r)
	lineNo := 0
	lookup := func(name string) (NodeID, error) {
		if id, ok := byName[name]; ok {
			return id, nil
		}
		return None, fmt.Errorf("line %d: unknown node %q", lineNo, name)
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		switch f[0] {
		case "host", "switch":
			if len(f) != 2 && !(f[0] == "switch" && len(f) == 3) {
				return nil, fmt.Errorf("line %d: want '%s <name>'", lineNo, f[0])
			}
			if _, dup := byName[f[1]]; dup {
				return nil, fmt.Errorf("line %d: duplicate node %q", lineNo, f[1])
			}
			var id NodeID
			switch {
			case f[0] == "host":
				id = n.AddHost(f[1])
			case len(f) == 3:
				radix, err := strconv.Atoi(f[2])
				if err != nil || radix < 1 || radix > MaxSwitchRadix {
					return nil, fmt.Errorf("line %d: bad switch radix %q", lineNo, f[2])
				}
				id = n.AddSwitchRadix(f[1], radix)
			default:
				id = n.AddSwitch(f[1])
			}
			byName[f[1]] = id
		case "wire":
			if len(f) != 5 {
				return nil, fmt.Errorf("line %d: want 'wire <a> <pa> <b> <pb>'", lineNo)
			}
			a, err := lookup(f[1])
			if err != nil {
				return nil, err
			}
			b, err := lookup(f[3])
			if err != nil {
				return nil, err
			}
			pa, err1 := strconv.Atoi(f[2])
			pb, err2 := strconv.Atoi(f[4])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("line %d: bad port number", lineNo)
			}
			if _, err := n.Connect(a, pa, b, pb); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
		case "reflector":
			if len(f) != 3 {
				return nil, fmt.Errorf("line %d: want 'reflector <switch> <port>'", lineNo)
			}
			id, err := lookup(f[1])
			if err != nil {
				return nil, err
			}
			p, err := strconv.Atoi(f[2])
			if err != nil {
				return nil, fmt.Errorf("line %d: bad port number", lineNo)
			}
			if err := n.AddReflector(id, p); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("line %d: unknown directive %q", lineNo, f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return n, nil
}
