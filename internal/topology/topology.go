// Package topology models the system area networks of the SPAA'97 mapping
// paper: finite multigraphs over hosts and switches whose wire-ends carry
// port numbers (§2.1 of the paper).
//
// A switch has eight ports numbered 0..7 (higher radices up to
// MaxSwitchRadix are available for datacenter fabrics); a host has a
// single port 0. A wire
// joins two (node, port) ends; no two wire-ends on the same node share a
// port. Self-loop cables (both ends on one switch) are permitted — Myrinet
// installations used loopback cables, and the Myricom mapping algorithm
// probes for them explicitly (§4.1).
//
// The package also provides the graph analyses the paper relies on: the
// diameter D, bridges and switch-bridges, the unmappable set F, the core
// N−F (Lemma 1), and the probe-depth parameter Q (Definitions 2 and 3).
package topology

import (
	"fmt"
	"sort"
)

// SwitchPorts is the default number of ports on a switch (§2.1: "A switch
// has eight allowable port-numbers: {0, ..., 7}"). Datacenter-scale
// generators build higher-radix switches via AddSwitchRadix.
const SwitchPorts = 8

// MaxSwitchRadix bounds the port count of a switch. Relative turns are
// signed port differences carried in an int8 routing flit, so a radix
// beyond 128 would overflow the turn encoding.
const MaxSwitchRadix = 128

// HostPort is the single port number of a host.
const HostPort = 0

// NoWire marks an unconnected port.
const NoWire = int32(-1)

// Kind distinguishes the two node types of the model.
type Kind uint8

const (
	// HostNode is a workstation with one network interface (one port).
	HostNode Kind = iota
	// SwitchNode is an anonymous crossbar switch (8 ports by default).
	SwitchNode
)

// String returns "host" or "switch".
func (k Kind) String() string {
	if k == HostNode {
		return "host"
	}
	return "switch"
}

// NodeID identifies a node within a Network. IDs are dense indices assigned
// in insertion order.
type NodeID int32

// None is the invalid node id.
const None NodeID = -1

// End is one end of a wire: a (node, port) pair (§2.1).
type End struct {
	Node NodeID
	Port int
}

// Wire is an undirected edge between two wire-ends. For self-loop cables
// A.Node == B.Node with distinct ports.
type Wire struct {
	A, B End
}

// Other returns the end of w opposite to the given end. It panics if from is
// not an end of w.
//
//sanlint:hotpath
func (w Wire) Other(from End) End {
	switch from {
	case w.A:
		return w.B
	case w.B:
		return w.A
	}
	panic(fmt.Sprintf("topology: %v is not an end of wire %v", from, w))
}

// Touches reports whether the wire has an end on node n.
func (w Wire) Touches(n NodeID) bool { return w.A.Node == n || w.B.Node == n }

// node is the internal node record.
type node struct {
	kind  Kind
	name  string
	ports []int32 // wire index per port, NoWire if empty
	// reflect marks ports carrying a loopback plug: a terminator that sends
	// anything exiting the port straight back in. Myrinet installations
	// used loopback cables on unused switch ports, and the Myricom mapping
	// algorithm probes for them explicitly (§4.1's "loop" probes).
	reflect []bool
}

// Network is a mutable multigraph of hosts and switches.
//
// The zero value is an empty network ready for use. Networks are not safe
// for concurrent mutation; the simulator and mappers treat them as
// read-only once built.
type Network struct {
	nodes []node //sanlint:topostate
	wires []Wire //sanlint:topostate
	// dead marks wires removed by RemoveWire so indices stay stable.
	dead   []bool            //sanlint:topostate
	nDead  int               //sanlint:topostate
	byName map[string]NodeID //sanlint:topostate
	// version counts structural mutations (nodes, wires, reflectors). Route
	// evaluators key their memoized traversal state on it, so reconfiguring
	// a network invalidates caches automatically. epochcheck enforces that
	// every method writing a topostate field bumps it.
	version uint64 //sanlint:epoch
	// csr is the cached flat-adjacency view (csr.go). It is derived state
	// keyed on version, rebuilt lazily by Index(); updating it is not a
	// structural mutation.
	csr *Index
}

// Version reports the structural mutation counter: it changes whenever a
// node, wire or loopback plug is added or a wire removed. Equal versions of
// the same Network value guarantee identical routing behaviour.
//
//sanlint:hotpath
func (n *Network) Version() uint64 { return n.version }

// AddHost appends a host with the given unique name and returns its id.
// Host names are the unique identifiers probes report (§2.3: "Hosts are
// uniquely identified").
func (n *Network) AddHost(name string) NodeID {
	return n.addNode(HostNode, name, 1)
}

// AddSwitch appends an anonymous switch and returns its id. The name is a
// label for rendering and debugging only; the mapping algorithms never see
// it (Myrinet "lacks a mechanism to query a switch ... for a unique id").
func (n *Network) AddSwitch(name string) NodeID {
	return n.addNode(SwitchNode, name, SwitchPorts)
}

// AddSwitchRadix appends a switch with the given port count, for the
// datacenter fabrics whose spine and group switches exceed eight ports.
// It panics when radix is outside [1, MaxSwitchRadix]; generators validate
// their parameters before calling.
func (n *Network) AddSwitchRadix(name string, radix int) NodeID {
	if radix < 1 || radix > MaxSwitchRadix {
		panic(fmt.Sprintf("topology: switch radix %d outside [1, %d]", radix, MaxSwitchRadix))
	}
	return n.addNode(SwitchNode, name, radix)
}

// MaxPorts reports the largest port count of any node (0 for an empty
// network). Simulators and mappers derive their turn windows from it: a
// radix-r switch admits relative turns in [-(r-1), r-1].
func (n *Network) MaxPorts() int {
	m := 0
	for i := range n.nodes {
		if p := len(n.nodes[i].ports); p > m {
			m = p
		}
	}
	return m
}

func (n *Network) addNode(kind Kind, name string, ports int) NodeID {
	if name != "" {
		if n.byName == nil {
			n.byName = make(map[string]NodeID)
		}
		if _, dup := n.byName[name]; dup {
			panic(fmt.Sprintf("topology: duplicate node name %q", name))
		}
		n.byName[name] = NodeID(len(n.nodes))
	}
	p := make([]int32, ports)
	for i := range p {
		p[i] = NoWire
	}
	n.nodes = append(n.nodes, node{kind: kind, name: name, ports: p})
	n.version++
	return NodeID(len(n.nodes) - 1)
}

// Connect joins (a, ap) to (b, bp) with a new wire and returns its index.
// It returns an error if either end is out of range or already cabled, or
// if the two ends are the same port of the same node.
func (n *Network) Connect(a NodeID, ap int, b NodeID, bp int) (int, error) {
	if err := n.checkEnd(a, ap); err != nil {
		return 0, err
	}
	if err := n.checkEnd(b, bp); err != nil {
		return 0, err
	}
	if a == b && ap == bp {
		return 0, fmt.Errorf("topology: cannot cable port %d of node %d to itself", ap, a)
	}
	w := int32(len(n.wires))
	n.wires = append(n.wires, Wire{A: End{a, ap}, B: End{b, bp}})
	n.dead = append(n.dead, false)
	n.nodes[a].ports[ap] = w
	n.nodes[b].ports[bp] = w
	n.version++
	return int(w), nil
}

// MustConnect is Connect that panics on error; intended for generators and
// tests where the caller controls both ends.
func (n *Network) MustConnect(a NodeID, ap int, b NodeID, bp int) int {
	w, err := n.Connect(a, ap, b, bp)
	if err != nil {
		panic(err)
	}
	return w
}

// ConnectFree cables the lowest-numbered free ports of a and b and returns
// the wire index and the ports used.
func (n *Network) ConnectFree(a, b NodeID) (wire, ap, bp int, err error) {
	ap = n.FreePort(a)
	if ap < 0 {
		return 0, 0, 0, fmt.Errorf("topology: node %d has no free port", a)
	}
	bp = n.FreePort(b)
	if a == b {
		// A self-loop cable needs two distinct free ports.
		for bp == ap || (bp >= 0 && n.nodes[b].ports[bp] != NoWire) {
			bp++
			if bp >= len(n.nodes[b].ports) {
				bp = -1
				break
			}
		}
	}
	if bp < 0 {
		return 0, 0, 0, fmt.Errorf("topology: node %d has no free port", b)
	}
	wire, err = n.Connect(a, ap, b, bp)
	return wire, ap, bp, err
}

func (n *Network) checkEnd(id NodeID, port int) error {
	if id < 0 || int(id) >= len(n.nodes) {
		return fmt.Errorf("topology: node %d out of range", id)
	}
	nd := &n.nodes[id]
	if port < 0 || port >= len(nd.ports) {
		return fmt.Errorf("topology: port %d out of range for %s %d", port, nd.kind, id)
	}
	if nd.ports[port] != NoWire {
		return fmt.Errorf("topology: port %d of %s %d already cabled", port, nd.kind, id)
	}
	if nd.reflect != nil && nd.reflect[port] {
		return fmt.Errorf("topology: port %d of %s %d carries a loopback plug", port, nd.kind, id)
	}
	return nil
}

// AddReflector installs a loopback plug on a free switch port: messages
// exiting the port re-enter it immediately.
func (n *Network) AddReflector(id NodeID, port int) error {
	if err := n.checkEnd(id, port); err != nil {
		return err
	}
	if n.nodes[id].kind != SwitchNode {
		return fmt.Errorf("topology: loopback plugs go on switches, not %s %d", n.nodes[id].kind, id)
	}
	if n.nodes[id].reflect == nil {
		n.nodes[id].reflect = make([]bool, len(n.nodes[id].ports))
	}
	n.nodes[id].reflect[port] = true
	n.version++
	return nil
}

// ReflectorAt reports whether (id, port) carries a loopback plug.
//
//sanlint:hotpath
func (n *Network) ReflectorAt(id NodeID, port int) bool {
	nd := &n.nodes[id]
	return nd.reflect != nil && port >= 0 && port < len(nd.reflect) && nd.reflect[port]
}

// Reflectors returns all loopback-plugged ends.
func (n *Network) Reflectors() []End {
	var out []End
	for i := range n.nodes {
		for p, r := range n.nodes[i].reflect {
			if r {
				out = append(out, End{NodeID(i), p})
			}
		}
	}
	return out
}

// RemoveWire disconnects the wire with the given index. Wire indices of
// other wires are unchanged. Removing an already-removed wire is an error.
func (n *Network) RemoveWire(w int) error {
	if w < 0 || w >= len(n.wires) || n.dead[w] {
		return fmt.Errorf("topology: no wire %d", w)
	}
	wire := n.wires[w]
	n.nodes[wire.A.Node].ports[wire.A.Port] = NoWire
	n.nodes[wire.B.Node].ports[wire.B.Port] = NoWire
	n.dead[w] = true
	n.nDead++
	n.version++
	return nil
}

// NumNodes reports the total node count (hosts + switches).
func (n *Network) NumNodes() int { return len(n.nodes) }

// NumWires reports the number of live wires ("links" in the paper's
// component tables, Fig 3).
func (n *Network) NumWires() int { return len(n.wires) - n.nDead }

// NumHosts reports the number of hosts ("interfaces" in Fig 3; each host
// has exactly one network interface).
func (n *Network) NumHosts() int {
	c := 0
	for i := range n.nodes {
		if n.nodes[i].kind == HostNode {
			c++
		}
	}
	return c
}

// NumSwitches reports the number of switches.
func (n *Network) NumSwitches() int { return len(n.nodes) - n.NumHosts() }

// KindOf reports the kind of node id.
//
//sanlint:hotpath
func (n *Network) KindOf(id NodeID) Kind { return n.nodes[id].kind }

// NameOf reports the node's name ("" for unnamed switches).
func (n *Network) NameOf(id NodeID) string { return n.nodes[id].name }

// Lookup returns the node with the given name, or None.
func (n *Network) Lookup(name string) NodeID {
	if id, ok := n.byName[name]; ok {
		return id
	}
	return None
}

// NumPorts reports the port count of node id (8 for switches, 1 for hosts).
//
//sanlint:hotpath
func (n *Network) NumPorts(id NodeID) int { return len(n.nodes[id].ports) }

// WireAt returns the index of the wire cabled to (id, port), or -1.
//
//sanlint:hotpath
func (n *Network) WireAt(id NodeID, port int) int {
	nd := &n.nodes[id]
	if port < 0 || port >= len(nd.ports) {
		return -1
	}
	return int(nd.ports[port])
}

// Neighbor follows the wire at (id, port) and returns the opposite end.
// ok is false when the port is empty or out of range.
func (n *Network) Neighbor(id NodeID, port int) (End, bool) {
	w := n.WireAt(id, port)
	if w < 0 {
		return End{}, false
	}
	return n.wires[w].Other(End{id, port}), true
}

// WireAlive reports whether wire index w names a live wire: in range and
// not removed. Replay engines holding wire indices from a route table
// computed on an earlier structural version use it to detect routes that a
// link cut has since broken, without tripping WireByIndex's panic.
//
//sanlint:hotpath
func (n *Network) WireAlive(w int) bool {
	return w >= 0 && w < len(n.wires) && !n.dead[w]
}

// NumWireSlots reports the length of the wire index space: live and removed
// wires together. Indices in [0, NumWireSlots()) are the stable identifiers
// WiresIndexed hands out; per-wire accumulator arrays size themselves here.
func (n *Network) NumWireSlots() int { return len(n.wires) }

// WireByIndex returns wire w. It panics for removed or out-of-range wires.
//
//sanlint:hotpath
func (n *Network) WireByIndex(w int) Wire {
	if w < 0 || w >= len(n.wires) || n.dead[w] {
		panic(fmt.Sprintf("topology: no wire %d", w))
	}
	return n.wires[w]
}

// Wires returns the live wires in index order. The slice is freshly
// allocated; indices in the result do not correspond to wire indices when
// wires have been removed — use WiresIndexed for that.
func (n *Network) Wires() []Wire {
	out := make([]Wire, 0, n.NumWires())
	for i, w := range n.wires {
		if !n.dead[i] {
			out = append(out, w)
		}
	}
	return out
}

// WiresIndexed calls f for every live wire with its stable index.
func (n *Network) WiresIndexed(f func(index int, w Wire)) {
	for i, w := range n.wires {
		if !n.dead[i] {
			f(i, w)
		}
	}
}

// Degree reports the number of cabled ports of node id. A self-loop cable
// contributes two.
func (n *Network) Degree(id NodeID) int {
	d := 0
	for _, w := range n.nodes[id].ports {
		if w != NoWire {
			d++
		}
	}
	return d
}

// FreePort returns the lowest-numbered empty port of id, or -1.
func (n *Network) FreePort(id NodeID) int {
	for p, w := range n.nodes[id].ports {
		if w == NoWire {
			return p
		}
	}
	return -1
}

// Hosts returns the ids of all hosts in insertion order.
func (n *Network) Hosts() []NodeID {
	var out []NodeID
	for i := range n.nodes {
		if n.nodes[i].kind == HostNode {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// Switches returns the ids of all switches in insertion order.
func (n *Network) Switches() []NodeID {
	var out []NodeID
	for i := range n.nodes {
		if n.nodes[i].kind == SwitchNode {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// HostSwitch returns the switch a host is cabled to and the switch-side
// port, or (None, 0, false) for a disconnected host. Every host has a single
// network connection (§1.2), which is what makes hosts usable as merge
// anchors by the mapping algorithm.
func (n *Network) HostSwitch(h NodeID) (sw NodeID, port int, ok bool) {
	if n.nodes[h].kind != HostNode {
		return None, 0, false
	}
	end, ok := n.Neighbor(h, HostPort)
	if !ok {
		return None, 0, false
	}
	return end.Node, end.Port, true
}

// Clone returns a deep copy of the network.
func (n *Network) Clone() *Network {
	c := &Network{
		nodes:   make([]node, len(n.nodes)),
		wires:   append([]Wire(nil), n.wires...),
		dead:    append([]bool(nil), n.dead...),
		nDead:   n.nDead,
		version: n.version,
	}
	for i, nd := range n.nodes {
		c.nodes[i] = node{kind: nd.kind, name: nd.name, ports: append([]int32(nil), nd.ports...)}
		if nd.reflect != nil {
			c.nodes[i].reflect = append([]bool(nil), nd.reflect...)
		}
	}
	if n.byName != nil {
		c.byName = make(map[string]NodeID, len(n.byName))
		for k, v := range n.byName {
			c.byName[k] = v
		}
	}
	return c
}

// Validate checks the structural invariants of the model: port ranges,
// mutual consistency of wires and ports, unique host names, and hosts having
// at most one wire. It returns the first violation found.
func (n *Network) Validate() error {
	names := make(map[string]NodeID)
	for i := range n.nodes {
		nd := &n.nodes[i]
		if nd.kind == HostNode {
			if len(nd.ports) != 1 {
				return fmt.Errorf("node %d: host has %d ports, want 1", i, len(nd.ports))
			}
		} else if len(nd.ports) < 1 || len(nd.ports) > MaxSwitchRadix {
			return fmt.Errorf("node %d: switch has %d ports, want 1..%d", i, len(nd.ports), MaxSwitchRadix)
		}
		if nd.name != "" {
			if prev, dup := names[nd.name]; dup {
				return fmt.Errorf("nodes %d and %d share name %q", prev, i, nd.name)
			}
			names[nd.name] = NodeID(i)
		}
		for p, wi := range nd.ports {
			if wi == NoWire {
				continue
			}
			if wi < 0 || int(wi) >= len(n.wires) || n.dead[wi] {
				return fmt.Errorf("node %d port %d references missing wire %d", i, p, wi)
			}
			w := n.wires[wi]
			e := End{NodeID(i), p}
			if w.A != e && w.B != e {
				return fmt.Errorf("node %d port %d references wire %d that does not touch it", i, p, wi)
			}
		}
	}
	for wi, w := range n.wires {
		if n.dead[wi] {
			continue
		}
		for _, e := range []End{w.A, w.B} {
			if e.Node < 0 || int(e.Node) >= len(n.nodes) {
				return fmt.Errorf("wire %d end %v: node out of range", wi, e)
			}
			if got := n.nodes[e.Node].ports[e.Port]; got != int32(wi) {
				return fmt.Errorf("wire %d end %v: port table says wire %d", wi, e, got)
			}
		}
	}
	return nil
}

// Stats summarises the component counts the paper tabulates in Fig 3.
type Stats struct {
	Hosts    int // network interfaces (one per host)
	Switches int
	Links    int // wires, including host links and loopback cables
}

// Stats returns the component counts of the network.
func (n *Network) Stats() Stats {
	return Stats{Hosts: n.NumHosts(), Switches: n.NumSwitches(), Links: n.NumWires()}
}

// String renders a short human-readable summary.
func (n *Network) String() string {
	s := n.Stats()
	return fmt.Sprintf("network{hosts: %d, switches: %d, links: %d}", s.Hosts, s.Switches, s.Links)
}

// SortedHostNames returns all host names in lexicographic order; handy for
// deterministic iteration in tests and tools.
func (n *Network) SortedHostNames() []string {
	var names []string
	for i := range n.nodes {
		if n.nodes[i].kind == HostNode {
			names = append(names, n.nodes[i].name)
		}
	}
	sort.Strings(names)
	return names
}
