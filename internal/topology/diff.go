package topology

import (
	"fmt"
	"sort"
	"strings"
)

// Diff summarises how a network changed between two maps — the operational
// output of the periodic remapping the paper motivates ("automatically
// adapting to the addition or removal of hosts, switches and links").
// Hosts are identified by their unique names; anonymous switches can only
// be counted, so switch- and link-level changes are reported as deltas plus
// per-host attachment changes (a moved host shows up as a changed
// neighbourhood fingerprint).
type Diff struct {
	HostsAdded   []string
	HostsRemoved []string
	// HostsMoved lists hosts whose switch siblings changed — the host was
	// re-cabled onto a different switch (or its switch gained/lost hosts).
	HostsMoved []string
	// SwitchDelta and LinkDelta are new minus old counts.
	SwitchDelta int
	LinkDelta   int
	// ReflectorDelta is the change in loopback plug count.
	ReflectorDelta int
}

// Empty reports whether the diff shows no change.
func (d Diff) Empty() bool {
	return len(d.HostsAdded) == 0 && len(d.HostsRemoved) == 0 && len(d.HostsMoved) == 0 &&
		d.SwitchDelta == 0 && d.LinkDelta == 0 && d.ReflectorDelta == 0
}

// String renders a one-line-per-change report.
func (d Diff) String() string {
	if d.Empty() {
		return "no change"
	}
	var parts []string
	add := func(format string, args ...any) { parts = append(parts, fmt.Sprintf(format, args...)) }
	if len(d.HostsAdded) > 0 {
		add("hosts added: %s", strings.Join(d.HostsAdded, " "))
	}
	if len(d.HostsRemoved) > 0 {
		add("hosts removed: %s", strings.Join(d.HostsRemoved, " "))
	}
	if len(d.HostsMoved) > 0 {
		add("hosts rehomed: %s", strings.Join(d.HostsMoved, " "))
	}
	if d.SwitchDelta != 0 {
		add("switches %+d", d.SwitchDelta)
	}
	if d.LinkDelta != 0 {
		add("links %+d", d.LinkDelta)
	}
	if d.ReflectorDelta != 0 {
		add("loopback plugs %+d", d.ReflectorDelta)
	}
	return strings.Join(parts, "; ")
}

// Compare computes the Diff from old to new.
func Compare(oldNet, newNet *Network) Diff {
	var d Diff
	oldHosts := hostSet(oldNet)
	newHosts := hostSet(newNet)
	for name := range newHosts {
		if !oldHosts[name] {
			d.HostsAdded = append(d.HostsAdded, name)
		}
	}
	for name := range oldHosts {
		if !newHosts[name] {
			d.HostsRemoved = append(d.HostsRemoved, name)
		}
	}
	sort.Strings(d.HostsAdded)
	sort.Strings(d.HostsRemoved)
	for name := range newHosts {
		if !oldHosts[name] {
			continue
		}
		if neighbourhood(oldNet, name) != neighbourhood(newNet, name) {
			d.HostsMoved = append(d.HostsMoved, name)
		}
	}
	sort.Strings(d.HostsMoved)
	d.SwitchDelta = newNet.NumSwitches() - oldNet.NumSwitches()
	d.LinkDelta = newNet.NumWires() - oldNet.NumWires()
	d.ReflectorDelta = len(newNet.Reflectors()) - len(oldNet.Reflectors())
	return d
}

func hostSet(n *Network) map[string]bool {
	out := make(map[string]bool, n.NumHosts())
	for _, h := range n.Hosts() {
		out[n.NameOf(h)] = true
	}
	return out
}

// neighbourhood fingerprints a host by its switch siblings — the sorted
// names of hosts sharing its switch. Stable across anonymous-switch
// renamings and port rotations, changed when the host is re-cabled onto a
// different switch. (A host moved to a switch with the identical sibling
// set is indistinguishable by construction: switches are anonymous.)
func neighbourhood(n *Network, name string) string {
	h := n.Lookup(name)
	if h == None {
		return ""
	}
	dist := n.BFS(h)
	var near []string
	for _, other := range n.Hosts() {
		if other != h && dist[other] == 2 {
			near = append(near, n.NameOf(other))
		}
	}
	sort.Strings(near)
	return strings.Join(near, ",")
}
