package topology

import (
	"fmt"
	"math/rand"
)

// Generators for the network families the paper discusses: fat-tree-like
// NOW clusters (§5.1), classic MPP interconnects that SANs generalise away
// from (§1: hypercubes, meshes, ...), and arbitrary random graphs, which is
// the regime the mapping algorithm is actually designed for ("their
// topologies ... may be arbitrary graphs that change over time").
//
// All generators validate their parameters and return an error for
// infeasible requests; the Must* wrappers panic instead, for tests and
// examples where the caller controls the arguments. All generated networks
// satisfy Validate. Host names follow the paper's figures: "Node0",
// "Node1", ... When a generator takes an *rand.Rand it uses random free
// ports so that consumers (above all the mapper, with its relative,
// non-modular port addressing) never get to rely on tidy port numbering.
//
// The datacenter-scale families (two-layer fat-trees, dragonflies,
// multistage networks) live in fabric.go.

// namer hands out sequential host names.
type namer struct {
	prefix string
	n      int
}

func (nm *namer) next() string {
	s := fmt.Sprintf("%s%d", nm.prefix, nm.n)
	nm.n++
	return s
}

// randomFreePort picks a uniformly random free port of id, or -1.
func randomFreePort(n *Network, id NodeID, rng *rand.Rand) int {
	var free []int
	for p := 0; p < n.NumPorts(id); p++ {
		if n.WireAt(id, p) < 0 {
			free = append(free, p)
		}
	}
	if len(free) == 0 {
		return -1
	}
	if rng == nil {
		return free[0]
	}
	return free[rng.Intn(len(free))]
}

// connectRandomPorts cables a and b on random free ports.
func connectRandomPorts(n *Network, a, b NodeID, rng *rand.Rand) error {
	ap := randomFreePort(n, a, rng)
	if ap < 0 {
		return fmt.Errorf("topology: node %d full", a)
	}
	bp := randomFreePort(n, b, rng)
	for b == a && bp == ap {
		bp = randomFreePort(n, b, rng)
	}
	if bp < 0 {
		return fmt.Errorf("topology: node %d full", b)
	}
	_, err := n.Connect(a, ap, b, bp)
	return err
}

// Line returns switches in a path, each with hostsPer hosts attached.
func Line(switches, hostsPer int, rng *rand.Rand) (*Network, error) {
	if switches < 1 {
		return nil, fmt.Errorf("topology: Line needs at least 1 switch")
	}
	if hostsPer < 0 || hostsPer > SwitchPorts-2 {
		return nil, fmt.Errorf("topology: Line: at most %d hosts per switch", SwitchPorts-2)
	}
	n := &Network{}
	nm := namer{prefix: "Node"}
	var prev NodeID = None
	for i := 0; i < switches; i++ {
		s := n.AddSwitch(fmt.Sprintf("S%d", i))
		if prev != None {
			must(connectRandomPorts(n, prev, s, rng))
		}
		for h := 0; h < hostsPer; h++ {
			host := n.AddHost(nm.next())
			must(connectRandomPorts(n, host, s, rng))
		}
		prev = s
	}
	return n, nil
}

// MustLine is Line that panics on error.
func MustLine(switches, hostsPer int, rng *rand.Rand) *Network {
	return mustNet(Line(switches, hostsPer, rng))
}

// Ring returns switches in a cycle, each with hostsPer hosts.
func Ring(switches, hostsPer int, rng *rand.Rand) (*Network, error) {
	if switches < 3 {
		return nil, fmt.Errorf("topology: Ring needs at least 3 switches")
	}
	n, err := Line(switches, hostsPer, rng)
	if err != nil {
		return nil, err
	}
	first, last := NodeID(0), None
	for _, s := range n.Switches() {
		last = s
	}
	must(connectRandomPorts(n, last, first, rng))
	return n, nil
}

// MustRing is Ring that panics on error.
func MustRing(switches, hostsPer int, rng *rand.Rand) *Network {
	return mustNet(Ring(switches, hostsPer, rng))
}

// Star returns one hub switch cabled to leaf switches, each leaf carrying
// hostsPer hosts. leaves must be at most 8.
func Star(leaves, hostsPer int, rng *rand.Rand) (*Network, error) {
	if leaves < 1 || leaves > SwitchPorts {
		return nil, fmt.Errorf("topology: Star: between 1 and %d leaves", SwitchPorts)
	}
	if hostsPer < 0 || hostsPer > SwitchPorts-1 {
		return nil, fmt.Errorf("topology: Star: at most %d hosts per leaf", SwitchPorts-1)
	}
	n := &Network{}
	nm := namer{prefix: "Node"}
	hub := n.AddSwitch("Hub")
	for i := 0; i < leaves; i++ {
		leaf := n.AddSwitch(fmt.Sprintf("L%d", i))
		must(connectRandomPorts(n, hub, leaf, rng))
		for h := 0; h < hostsPer; h++ {
			host := n.AddHost(nm.next())
			must(connectRandomPorts(n, host, leaf, rng))
		}
	}
	return n, nil
}

// MustStar is Star that panics on error.
func MustStar(leaves, hostsPer int, rng *rand.Rand) *Network {
	return mustNet(Star(leaves, hostsPer, rng))
}

// Mesh returns a w×h grid of switches with hostsPer hosts each.
// Interior switches use 4 ports for the grid; hostsPer must fit alongside.
func Mesh(w, h, hostsPer int, rng *rand.Rand) (*Network, error) {
	if w < 1 || h < 1 {
		return nil, fmt.Errorf("topology: Mesh needs positive dimensions")
	}
	if hostsPer < 0 || hostsPer > SwitchPorts-4 {
		return nil, fmt.Errorf("topology: Mesh: at most %d hosts per switch", SwitchPorts-4)
	}
	n := &Network{}
	nm := namer{prefix: "Node"}
	grid := make([][]NodeID, h)
	for y := 0; y < h; y++ {
		grid[y] = make([]NodeID, w)
		for x := 0; x < w; x++ {
			s := n.AddSwitch(fmt.Sprintf("S%d-%d", x, y))
			grid[y][x] = s
			if x > 0 {
				must(connectRandomPorts(n, grid[y][x-1], s, rng))
			}
			if y > 0 {
				must(connectRandomPorts(n, grid[y-1][x], s, rng))
			}
			for k := 0; k < hostsPer; k++ {
				host := n.AddHost(nm.next())
				must(connectRandomPorts(n, host, s, rng))
			}
		}
	}
	return n, nil
}

// MustMesh is Mesh that panics on error.
func MustMesh(w, h, hostsPer int, rng *rand.Rand) *Network {
	return mustNet(Mesh(w, h, hostsPer, rng))
}

// Torus is Mesh with wraparound links; needs w,h ≥ 3 to avoid parallel
// wrap edges colliding with grid edges on tiny sizes.
func Torus(w, h, hostsPer int, rng *rand.Rand) (*Network, error) {
	if w < 3 || h < 3 {
		return nil, fmt.Errorf("topology: Torus needs w,h >= 3")
	}
	if hostsPer < 0 || hostsPer > SwitchPorts-4 {
		return nil, fmt.Errorf("topology: Torus: at most %d hosts per switch", SwitchPorts-4)
	}
	n, err := Mesh(w, h, hostsPer, rng)
	if err != nil {
		return nil, err
	}
	// Switch ids in Mesh are interleaved with host ids; look up by name.
	at := func(x, y int) NodeID { return n.Lookup(fmt.Sprintf("S%d-%d", x, y)) }
	for y := 0; y < h; y++ {
		must(connectRandomPorts(n, at(w-1, y), at(0, y), rng))
	}
	for x := 0; x < w; x++ {
		must(connectRandomPorts(n, at(x, h-1), at(x, 0), rng))
	}
	return n, nil
}

// MustTorus is Torus that panics on error.
func MustTorus(w, h, hostsPer int, rng *rand.Rand) *Network {
	return mustNet(Torus(w, h, hostsPer, rng))
}

// Hypercube returns a dim-dimensional hypercube of switches (dim ≤ 7) with
// hostsPer hosts on each switch (dim+hostsPer ≤ 8).
func Hypercube(dim, hostsPer int, rng *rand.Rand) (*Network, error) {
	if dim < 1 {
		return nil, fmt.Errorf("topology: Hypercube needs dimension >= 1")
	}
	if hostsPer < 0 || dim+hostsPer > SwitchPorts {
		return nil, fmt.Errorf("topology: Hypercube: dim+hostsPer exceeds %d ports", SwitchPorts)
	}
	n := &Network{}
	nm := namer{prefix: "Node"}
	size := 1 << dim
	sw := make([]NodeID, size)
	for i := 0; i < size; i++ {
		sw[i] = n.AddSwitch(fmt.Sprintf("S%0*b", dim, i))
	}
	for i := 0; i < size; i++ {
		for b := 0; b < dim; b++ {
			j := i ^ (1 << b)
			if j > i {
				must(connectRandomPorts(n, sw[i], sw[j], rng))
			}
		}
		for k := 0; k < hostsPer; k++ {
			host := n.AddHost(nm.next())
			must(connectRandomPorts(n, host, sw[i], rng))
		}
	}
	return n, nil
}

// MustHypercube is Hypercube that panics on error.
func MustHypercube(dim, hostsPer int, rng *rand.Rand) *Network {
	return mustNet(Hypercube(dim, hostsPer, rng))
}

// FatTreeSpec configures an incomplete fat tree in the style of the NOW
// subclusters (Fig 4): a row of leaf switches carrying hosts, a middle
// level, and a root level, with a configurable number of uplinks.
type FatTreeSpec struct {
	LeafSwitches   int
	HostsPerLeaf   int
	MidSwitches    int
	RootSwitches   int
	UplinksPerLeaf int // leaf -> mid links per leaf
	UplinksPerMid  int // mid -> root links per mid
	HostPrefix     string
}

// FatTree builds the specified tree. Uplinks are spread round-robin across
// the next level. It rejects specs that exceed port budgets.
func FatTree(spec FatTreeSpec, rng *rand.Rand) (*Network, error) {
	if spec.LeafSwitches < 1 || spec.MidSwitches < 1 || spec.RootSwitches < 1 {
		return nil, fmt.Errorf("topology: FatTree: every level needs at least one switch")
	}
	if spec.HostsPerLeaf < 0 || spec.HostsPerLeaf+spec.UplinksPerLeaf > SwitchPorts {
		return nil, fmt.Errorf("topology: FatTree: leaf ports exceeded")
	}
	if spec.UplinksPerLeaf < 1 || spec.UplinksPerMid < 1 {
		return nil, fmt.Errorf("topology: FatTree: uplink counts must be at least 1")
	}
	if spec.HostPrefix == "" {
		spec.HostPrefix = "Node"
	}
	n := &Network{}
	nm := namer{prefix: spec.HostPrefix}
	leaves := make([]NodeID, spec.LeafSwitches)
	mids := make([]NodeID, spec.MidSwitches)
	roots := make([]NodeID, spec.RootSwitches)
	for i := range leaves {
		leaves[i] = n.AddSwitch(fmt.Sprintf("%sL%d", spec.HostPrefix, i))
	}
	for i := range mids {
		mids[i] = n.AddSwitch(fmt.Sprintf("%sM%d", spec.HostPrefix, i))
	}
	for i := range roots {
		roots[i] = n.AddSwitch(fmt.Sprintf("%sR%d", spec.HostPrefix, i))
	}
	for i, leaf := range leaves {
		for h := 0; h < spec.HostsPerLeaf; h++ {
			host := n.AddHost(nm.next())
			must(connectRandomPorts(n, host, leaf, rng))
		}
		for u := 0; u < spec.UplinksPerLeaf; u++ {
			mid := mids[(i*spec.UplinksPerLeaf+u)%len(mids)]
			if err := connectRandomPorts(n, leaf, mid, rng); err != nil {
				return nil, err
			}
		}
	}
	for i, mid := range mids {
		for u := 0; u < spec.UplinksPerMid; u++ {
			root := roots[(i*spec.UplinksPerMid+u)%len(roots)]
			if err := connectRandomPorts(n, mid, root, rng); err != nil {
				return nil, err
			}
		}
	}
	// Sparse uplink fan-outs with several roots can yield parallel disjoint
	// trees; join the roots into one top level like real installations do
	// ("additional switches can be added to increase the number of roots").
	if len(roots) > 1 && !n.IsConnected() {
		for i := 1; i < len(roots); i++ {
			if err := connectRandomPorts(n, roots[i-1], roots[i], rng); err != nil {
				return nil, err
			}
		}
	}
	return n, nil
}

// MustFatTree is FatTree that panics on error.
func MustFatTree(spec FatTreeSpec, rng *rand.Rand) *Network {
	return mustNet(FatTree(spec, rng))
}

// RandomConnected returns a connected random network with the requested
// switch and host counts plus extraLinks additional random switch-to-switch
// wires (parallel wires allowed, giving true multigraphs). Hosts attach to
// uniformly random switches with free ports. The result always validates
// and is connected; link placement respects the 8-port budget.
func RandomConnected(switches, hosts, extraLinks int, rng *rand.Rand) (*Network, error) {
	if switches < 1 {
		return nil, fmt.Errorf("topology: RandomConnected needs at least one switch")
	}
	if hosts < 0 || extraLinks < 0 {
		return nil, fmt.Errorf("topology: RandomConnected: negative counts")
	}
	// Spanning tree uses one port on each non-root switch plus one on its
	// parent; the remaining budget must cover the hosts.
	if hosts > switches*SwitchPorts-2*(switches-1) {
		return nil, fmt.Errorf("topology: RandomConnected: no free switch ports for %d hosts", hosts)
	}
	n := &Network{}
	nm := namer{prefix: "Node"}
	sw := make([]NodeID, switches)
	for i := range sw {
		sw[i] = n.AddSwitch(fmt.Sprintf("S%d", i))
	}
	// Random spanning tree: connect each switch to a random earlier one.
	for i := 1; i < switches; i++ {
		j := rng.Intn(i)
		must(connectRandomPorts(n, sw[i], sw[j], rng))
	}
	freePorts := func() int {
		total := 0
		for _, s := range sw {
			total += SwitchPorts - n.Degree(s)
		}
		return total
	}
	for i := 0; i < extraLinks; i++ {
		// Reserve enough free ports for the hosts still to be attached.
		if freePorts()-2 < hosts {
			break
		}
		a := sw[rng.Intn(switches)]
		b := sw[rng.Intn(switches)]
		if a == b && n.Degree(a) >= SwitchPorts-1 {
			continue
		}
		if n.FreePort(a) < 0 || n.FreePort(b) < 0 {
			continue // port budget exhausted; skip rather than fail
		}
		if err := connectRandomPorts(n, a, b, rng); err != nil {
			continue
		}
	}
	for h := 0; h < hosts; h++ {
		// Find a switch with a free port; bounded retries then linear scan.
		var target NodeID = None
		for try := 0; try < 8; try++ {
			c := sw[rng.Intn(switches)]
			if n.FreePort(c) >= 0 {
				target = c
				break
			}
		}
		if target == None {
			for _, c := range sw {
				if n.FreePort(c) >= 0 {
					target = c
					break
				}
			}
		}
		if target == None {
			return nil, fmt.Errorf("topology: RandomConnected: no free switch ports for hosts")
		}
		host := n.AddHost(nm.next())
		must(connectRandomPorts(n, host, target, rng))
	}
	return n, nil
}

// MustRandomConnected is RandomConnected that panics on error.
func MustRandomConnected(switches, hosts, extraLinks int, rng *rand.Rand) *Network {
	return mustNet(RandomConnected(switches, hosts, extraLinks, rng))
}

// WithTail attaches a hostless chain of `tail` switches behind the given
// switch, creating a switch-bridge and therefore a non-empty F — the
// configuration Lemma 1 and the prune stage are about. When the given
// switch has no free port, another switch with one is used; when none has,
// the network is returned unchanged.
func WithTail(n *Network, behind NodeID, tail int, rng *rand.Rand) *Network {
	if n.FreePort(behind) < 0 {
		behind = None
		for _, s := range n.Switches() {
			if n.FreePort(s) >= 0 {
				behind = s
				break
			}
		}
		if behind == None {
			return n
		}
	}
	prev := behind
	for i := 0; i < tail; i++ {
		s := n.AddSwitch(fmt.Sprintf("F%d-%d", behind, i))
		must(connectRandomPorts(n, prev, s, rng))
		prev = s
	}
	return n
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

func mustNet(n *Network, err error) *Network {
	must(err)
	return n
}
