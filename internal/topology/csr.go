package topology

// CSR (compressed sparse row) view of a Network.
//
// The pointer/map representation of Network is convenient to mutate but
// costly to traverse: every BFS allocates its own distance and queue
// slices, and every neighbour step chases node -> ports -> wires. At
// datacenter scale (1k-10k switches) those allocations dominate the graph
// analyses, so the analyses run on a flat index instead: adjacency entries
// packed in port order with per-node offsets, built once per Version() and
// cached on the Network. The index also carries reusable scratch arenas
// (distances, queues, DFS frames) sized at build time, so the traversals
// themselves stay allocation-free under the hotpath gates.
//
// The index is derived state: building or refreshing it does not count as
// a structural mutation and leaves Version() unchanged. Like the Network
// itself it is not safe for concurrent use — the analyses share the
// scratch arenas. Build (or Clone) before handing a network to concurrent
// readers.

// Index is the flat adjacency view of a Network at one Version().
type Index struct {
	version uint64
	// off[i]..off[i+1] bounds node i's adjacency entries (cabled ports in
	// port order); nbr and wire give the neighbour node and wire index of
	// each entry.
	off  []int32
	nbr  []int32
	wire []int32
	// portOff[i] is the dense end id of (node i, port 0); every (node,
	// port) pair, cabled or not, has the unique id portOff[node]+port.
	portOff []int32
	kinds   []Kind
	// Scratch arenas, reused across analyses.
	dist    []int32
	queue   []int32
	disc    []int32
	low     []int32
	frames  []dfsFrame
	bridges []int32
}

type dfsFrame struct {
	node   int32
	inWire int32 // wire used to enter node, -1 for roots
	next   int32 // next adjacency entry to scan
}

// Index returns the CSR view of the network, rebuilding it only when the
// structural version has changed since the last call.
func (n *Network) Index() *Index {
	if n.csr != nil && n.csr.version == n.version {
		return n.csr
	}
	nn := len(n.nodes)
	ix := &Index{
		version: n.version,
		off:     make([]int32, nn+1),
		portOff: make([]int32, nn+1),
		kinds:   make([]Kind, nn),
		dist:    make([]int32, nn),
		queue:   make([]int32, 0, nn),
		disc:    make([]int32, nn),
		low:     make([]int32, nn),
		frames:  make([]dfsFrame, 0, nn),
	}
	entries := 0
	ends := int32(0)
	for i := range n.nodes {
		nd := &n.nodes[i]
		ix.kinds[i] = nd.kind
		ix.portOff[i] = ends
		ends += int32(len(nd.ports))
		for _, w := range nd.ports {
			if w != NoWire {
				entries++
			}
		}
		ix.off[i+1] = int32(entries)
	}
	ix.portOff[nn] = ends
	ix.nbr = make([]int32, entries)
	ix.wire = make([]int32, entries)
	k := 0
	for i := range n.nodes {
		for p, wi := range n.nodes[i].ports {
			if wi == NoWire {
				continue
			}
			other := n.wires[wi].Other(End{NodeID(i), p})
			ix.nbr[k] = int32(other.Node)
			ix.wire[k] = wi
			k++
		}
	}
	n.csr = ix
	return ix
}

// Version reports the Network version the index was built from.
func (ix *Index) Version() uint64 { return ix.version }

// NumNodes reports the node count.
//
//sanlint:hotpath
func (ix *Index) NumNodes() int { return len(ix.off) - 1 }

// Neighbors returns node id's neighbour nodes, one entry per cabled port
// in port order. The slice aliases the index; callers must not modify it.
//
//sanlint:hotpath
func (ix *Index) Neighbors(id NodeID) []int32 {
	return ix.nbr[ix.off[id]:ix.off[id+1]]
}

// Wires returns the wire index of each of node id's adjacency entries,
// parallel to Neighbors. The slice aliases the index.
//
//sanlint:hotpath
func (ix *Index) Wires(id NodeID) []int32 {
	return ix.wire[ix.off[id]:ix.off[id+1]]
}

// Degree reports the number of cabled ports of node id.
//
//sanlint:hotpath
func (ix *Index) Degree(id NodeID) int {
	return int(ix.off[id+1] - ix.off[id])
}

// KindOf reports the node kind.
//
//sanlint:hotpath
func (ix *Index) KindOf(id NodeID) Kind { return ix.kinds[id] }

// EndID returns the dense id of the (node, port) pair: ids enumerate every
// port of every node consecutively, so they index flat per-end tables.
//
//sanlint:hotpath
func (ix *Index) EndID(id NodeID, port int) int32 {
	return ix.portOff[id] + int32(port)
}

// NumEnds reports the total (node, port) pair count.
//
//sanlint:hotpath
func (ix *Index) NumEnds() int { return int(ix.portOff[len(ix.portOff)-1]) }

// BFSInto runs a breadth-first search from src and fills dist with hop
// distances (-1 when unreachable), reusing the index's queue arena. dist
// must have NumNodes entries; the filled slice is returned.
//
//sanlint:hotpath
func (ix *Index) BFSInto(src NodeID, dist []int32) []int32 {
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || int(src) >= ix.NumNodes() {
		return dist
	}
	dist[src] = 0
	ix.queue = append(ix.queue[:0], int32(src))
	for head := 0; head < len(ix.queue); head++ {
		u := ix.queue[head]
		du := dist[u]
		for _, v := range ix.nbr[ix.off[u]:ix.off[u+1]] {
			if dist[v] == -1 {
				dist[v] = du + 1
				ix.queue = append(ix.queue, v)
			}
		}
	}
	return dist
}

// bfsArena runs BFSInto on the index's own distance arena. The result is
// valid until the next arena-based analysis.
//
//sanlint:hotpath
func (ix *Index) bfsArena(src NodeID) []int32 {
	return ix.BFSInto(src, ix.dist)
}

// Eccentricity returns the largest finite BFS distance from src.
//
//sanlint:hotpath
func (ix *Index) Eccentricity(src NodeID) int {
	e := int32(0)
	for _, d := range ix.bfsArena(src) {
		if d > e {
			e = d
		}
	}
	return int(e)
}

// Diameter returns the largest finite BFS distance between any node pair,
// considering each component separately.
//
//sanlint:hotpath
func (ix *Index) Diameter() int {
	d := 0
	for i := 0; i < ix.NumNodes(); i++ {
		if e := ix.Eccentricity(NodeID(i)); e > d {
			d = e
		}
	}
	return d
}

// ComponentsInto fills label with a component id per node and returns the
// component count. label must have NumNodes entries.
//
//sanlint:hotpath
func (ix *Index) ComponentsInto(label []int32) int {
	for i := range label {
		label[i] = -1
	}
	count := int32(0)
	for i := range label {
		if label[i] != -1 {
			continue
		}
		label[i] = count
		ix.queue = append(ix.queue[:0], int32(i))
		for head := 0; head < len(ix.queue); head++ {
			u := ix.queue[head]
			for _, v := range ix.nbr[ix.off[u]:ix.off[u+1]] {
				if label[v] == -1 {
					label[v] = count
					ix.queue = append(ix.queue, v)
				}
			}
		}
		count++
	}
	return int(count)
}

// BridgesInto appends the indices of all bridge wires to out (in the same
// DFS discovery order as Network.Bridges) and returns it. Self-loop cables
// and wires with a parallel twin are never bridges; the DFS tracks the
// wire used to enter a node rather than the parent node, which makes it
// correct on multigraphs.
//
//sanlint:hotpath
func (ix *Index) BridgesInto(out []int32) []int32 {
	const unvisited = -1
	for i := range ix.disc {
		ix.disc[i] = unvisited
	}
	timer := int32(0)
	for root := 0; root < ix.NumNodes(); root++ {
		if ix.disc[root] != unvisited {
			continue
		}
		ix.frames = append(ix.frames[:0], dfsFrame{node: int32(root), inWire: -1, next: ix.off[root]})
		ix.disc[root] = timer
		ix.low[root] = timer
		timer++
		for len(ix.frames) > 0 {
			f := &ix.frames[len(ix.frames)-1]
			u := f.node
			advanced := false
			for ; f.next < ix.off[u+1]; f.next++ {
				wi := ix.wire[f.next]
				if wi == f.inWire {
					continue
				}
				v := ix.nbr[f.next]
				if v == u {
					continue // self-loop cable: irrelevant to connectivity
				}
				if ix.disc[v] == unvisited {
					ix.disc[v] = timer
					ix.low[v] = timer
					timer++
					f.next++
					ix.frames = append(ix.frames, dfsFrame{node: v, inWire: wi, next: ix.off[v]})
					advanced = true
					break
				}
				if ix.disc[v] < ix.low[u] {
					ix.low[u] = ix.disc[v]
				}
			}
			if advanced {
				continue
			}
			// u is fully explored; pop and propagate low-link.
			inWire := f.inWire
			ix.frames = ix.frames[:len(ix.frames)-1]
			if len(ix.frames) > 0 {
				p := ix.frames[len(ix.frames)-1].node
				if ix.low[u] < ix.low[p] {
					ix.low[p] = ix.low[u]
				}
				if ix.low[u] > ix.disc[p] {
					out = append(out, inWire)
				}
			}
		}
	}
	return out
}
