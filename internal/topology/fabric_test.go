package topology

import (
	"bytes"
	"testing"
)

func TestFatTree2Structure(t *testing.T) {
	net := MustFatTree2(FatTree2Spec{LeafSwitches: 12, HostsPerLeaf: 2}, nil)
	// Auto spine count for 12 leaves is ceil(sqrt(24)) = 5.
	if got, want := net.Stats(), (Stats{Hosts: 24, Switches: 17, Links: 48}); got != want {
		t.Fatalf("stats %+v, want %+v", got, want)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	if !net.IsConnected() {
		t.Fatal("fat-tree is disconnected")
	}
	// Leaves stay radix-8, so they bound the port count here.
	if got := net.MaxPorts(); got != SwitchPorts {
		t.Fatalf("MaxPorts = %d, want %d", got, SwitchPorts)
	}
	// Host to host in at most six wires once every spine pair is covered
	// (12 leaves cycle through all C(5,2)=10 pairs).
	if d := net.Diameter(); d > 6 {
		t.Fatalf("diameter %d > 6", d)
	}
	// A fixed spine count is honoured exactly.
	fixed := MustFatTree2(FatTree2Spec{LeafSwitches: 4, HostsPerLeaf: 2, Spines: 3}, nil)
	if got, want := fixed.Stats(), (Stats{Hosts: 8, Switches: 7, Links: 16}); got != want {
		t.Fatalf("fixed-spine stats %+v, want %+v", got, want)
	}
}

func TestDragonflyStructure(t *testing.T) {
	// a=3, p=2, h=1: 4 complete groups of 3 switches, radix 2+2+1 = 5.
	net := MustDragonfly(3, 2, 1, nil)
	// 24 host links + 4*C(3,2) intra + C(4,2) global = 42.
	if got, want := net.Stats(), (Stats{Hosts: 24, Switches: 12, Links: 42}); got != want {
		t.Fatalf("stats %+v, want %+v", got, want)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	if !net.IsConnected() {
		t.Fatal("dragonfly is disconnected")
	}
	if got := net.MaxPorts(); got != 5 {
		t.Fatalf("MaxPorts = %d, want 5", got)
	}
	// Switch-to-switch is at most intra + global + intra = 3 wires.
	if d := net.Diameter(); d > 5 {
		t.Fatalf("diameter %d > 5", d)
	}
}

func TestSwappedDragonflyStructure(t *testing.T) {
	// D3(4,3) with one host per switch: radix 4+1 = 5.
	net := MustSwappedDragonfly(4, 3, 1, nil)
	// 12 host links + 3*C(4,2) intra + C(3,2) swap = 33.
	if got, want := net.Stats(), (Stats{Hosts: 12, Switches: 12, Links: 33}); got != want {
		t.Fatalf("stats %+v, want %+v", got, want)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	if !net.IsConnected() {
		t.Fatal("swapped dragonfly is disconnected")
	}
	if got := net.MaxPorts(); got != 5 {
		t.Fatalf("MaxPorts = %d, want 5", got)
	}
	// The family's point: switch diameter 3, so host-host is at most 5.
	if d := net.Diameter(); d > 5 {
		t.Fatalf("diameter %d > 5", d)
	}
	// M can grow without rewiring: D3(4,1) is a single complete group.
	small := MustSwappedDragonfly(4, 1, 1, nil)
	if got, want := small.Stats(), (Stats{Hosts: 4, Switches: 4, Links: 10}); got != want {
		t.Fatalf("D3(4,1) stats %+v, want %+v", got, want)
	}
}

func TestButterflyStructure(t *testing.T) {
	// 2-ary 3-fly: 3 stages of 2^2 = 4 radix-4 switches, hosts on the
	// first and last stages.
	net := MustButterfly(2, 3, nil)
	// 16 host links + 2 stage gaps * 4 switches * 2 links = 32.
	if got, want := net.Stats(), (Stats{Hosts: 16, Switches: 12, Links: 32}); got != want {
		t.Fatalf("stats %+v, want %+v", got, want)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	if !net.IsConnected() {
		t.Fatal("butterfly is disconnected")
	}
	if got := net.MaxPorts(); got != 4 {
		t.Fatalf("MaxPorts = %d, want 4", got)
	}
	// Input-side to input-side worst case is 2*(stages-1) switch hops.
	if d := net.Diameter(); d > 2*(3-1)+2 {
		t.Fatalf("diameter %d > %d", d, 2*(3-1)+2)
	}
}

func TestFabricErrors(t *testing.T) {
	cases := []struct {
		name string
		err  error
	}{
		{"fattree2 no leaves", errOf(FatTree2(FatTree2Spec{LeafSwitches: 0, HostsPerLeaf: 1}, nil))},
		{"fattree2 too many hosts", errOf(FatTree2(FatTree2Spec{LeafSwitches: 4, HostsPerLeaf: SwitchPorts - 1}, nil))},
		{"fattree2 unreachable spines", errOf(FatTree2(FatTree2Spec{LeafSwitches: 2, HostsPerLeaf: 1, Spines: 8}, nil))},
		{"dragonfly radix", errOf(Dragonfly(MaxSwitchRadix, 1, 1, nil))},
		{"dragonfly zero hosts", errOf(Dragonfly(3, 0, 1, nil))},
		{"d3 m>k", errOf(SwappedDragonfly(4, 5, 1, nil))},
		{"d3 radix", errOf(SwappedDragonfly(MaxSwitchRadix, 2, 1, nil))},
		{"butterfly arity", errOf(Butterfly(1, 3, nil))},
		{"butterfly cap", errOf(Butterfly(2, 17, nil))},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func errOf(_ *Network, err error) error { return err }

// TestFabricRoundTrip is the satellite property test: rendering a large
// generated fabric, reading it back, and rendering again must produce
// byte-identical text, and the reread network must agree on the structural
// summary. This is what lets 1k-switch maps live on disk as fixtures.
func TestFabricRoundTrip(t *testing.T) {
	fabrics := []struct {
		name string
		net  *Network
	}{
		{"fattree2-1k", MustFatTree2(FatTree2Spec{LeafSwitches: 960, HostsPerLeaf: 1}, nil)},
		{"dragonfly-264", MustDragonfly(8, 1, 4, nil)},
		{"d3-1k", MustSwappedDragonfly(32, 32, 1, nil)},
		{"butterfly-1280", MustButterfly(4, 5, nil)},
	}
	for _, f := range fabrics {
		var first bytes.Buffer
		if err := f.net.Write(&first); err != nil {
			t.Fatalf("%s: write: %v", f.name, err)
		}
		back, err := ReadFrom(&first)
		if err != nil {
			t.Fatalf("%s: reread: %v", f.name, err)
		}
		var second bytes.Buffer
		if err := back.Write(&second); err != nil {
			t.Fatalf("%s: rewrite: %v", f.name, err)
		}
		var again bytes.Buffer
		if err := f.net.Write(&again); err != nil {
			t.Fatalf("%s: rerender: %v", f.name, err)
		}
		if !bytes.Equal(again.Bytes(), second.Bytes()) {
			t.Fatalf("%s: re-render differs after a read/write cycle", f.name)
		}
		if got, want := back.Stats(), f.net.Stats(); got != want {
			t.Fatalf("%s: reread stats %+v, want %+v", f.name, got, want)
		}
		if got, want := back.MaxPorts(), f.net.MaxPorts(); got != want {
			t.Fatalf("%s: reread MaxPorts %d, want %d", f.name, got, want)
		}
	}
}

// TestIndexZeroAlloc gates the CSR arena contract: after the index is
// built, the core traversals must not allocate. These mirror the
// //sanlint:hotpath annotations on the Index methods with a runtime check.
func TestIndexZeroAlloc(t *testing.T) {
	net := MustFatTree2(FatTree2Spec{LeafSwitches: 60, HostsPerLeaf: 2}, nil)
	ix := net.Index()
	dist := make([]int32, ix.NumNodes())
	label := make([]int32, ix.NumNodes())
	bridges := ix.BridgesInto(nil) // sized once; reused below
	checks := []struct {
		name string
		runs int
		f    func()
	}{
		{"BFSInto", 20, func() { ix.BFSInto(0, dist) }},
		{"ComponentsInto", 20, func() { ix.ComponentsInto(label) }},
		{"BridgesInto", 20, func() { bridges = ix.BridgesInto(bridges[:0]) }},
		{"Eccentricity", 20, func() { _ = ix.Eccentricity(0) }},
		{"Diameter", 2, func() { _ = ix.Diameter() }},
	}
	for _, c := range checks {
		c.f() // warm up
		if n := testing.AllocsPerRun(c.runs, c.f); n != 0 {
			t.Errorf("%s: %.1f allocs per run, want 0", c.name, n)
		}
	}
}
