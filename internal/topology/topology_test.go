package topology

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestAddAndConnect(t *testing.T) {
	n := &Network{}
	h := n.AddHost("h0")
	s := n.AddSwitch("s0")
	if n.KindOf(h) != HostNode || n.KindOf(s) != SwitchNode {
		t.Fatal("kinds wrong")
	}
	if n.NumPorts(h) != 1 || n.NumPorts(s) != SwitchPorts {
		t.Fatal("port counts wrong")
	}
	w, err := n.Connect(h, 0, s, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.WireAt(h, 0); got != w {
		t.Errorf("WireAt(h,0)=%d want %d", got, w)
	}
	end, ok := n.Neighbor(h, 0)
	if !ok || end.Node != s || end.Port != 3 {
		t.Errorf("Neighbor = %+v", end)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := n.Stats(); got != (Stats{Hosts: 1, Switches: 1, Links: 1}) {
		t.Errorf("stats %+v", got)
	}
}

func TestConnectErrors(t *testing.T) {
	n := &Network{}
	h := n.AddHost("h0")
	s := n.AddSwitch("s0")
	n.MustConnect(h, 0, s, 0)
	cases := []struct {
		name string
		a    NodeID
		ap   int
		b    NodeID
		bp   int
	}{
		{"occupied host port", h, 0, s, 1},
		{"occupied switch port", s, 0, h, 0},
		{"port out of range high", s, 8, s, 1},
		{"port out of range neg", s, -1, s, 1},
		{"node out of range", 99, 0, s, 1},
		{"same end to itself", s, 1, s, 1},
	}
	for _, c := range cases {
		if _, err := n.Connect(c.a, c.ap, c.b, c.bp); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestSelfLoopCable(t *testing.T) {
	n := &Network{}
	s := n.AddSwitch("s0")
	w, err := n.Connect(s, 2, s, 5)
	if err != nil {
		t.Fatal(err)
	}
	if n.Degree(s) != 2 {
		t.Errorf("self-loop degree %d, want 2", n.Degree(s))
	}
	wire := n.WireByIndex(w)
	if other := wire.Other(End{s, 2}); other != (End{s, 5}) {
		t.Errorf("Other = %+v", other)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveWire(t *testing.T) {
	n := &Network{}
	h := n.AddHost("h0")
	s := n.AddSwitch("s0")
	w := n.MustConnect(h, 0, s, 0)
	if err := n.RemoveWire(w); err != nil {
		t.Fatal(err)
	}
	if n.NumWires() != 0 {
		t.Errorf("NumWires = %d", n.NumWires())
	}
	if n.WireAt(h, 0) != -1 {
		t.Error("port still cabled")
	}
	if err := n.RemoveWire(w); err == nil {
		t.Error("double remove accepted")
	}
	// Port is reusable after removal.
	if _, err := n.Connect(h, 0, s, 4); err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	n := &Network{}
	n.AddHost("dup")
	n.AddHost("dup")
}

func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := MustStar(3, 2, rng)
	c := n.Clone()
	if c.Stats() != n.Stats() {
		t.Fatal("clone stats differ")
	}
	// Mutate the clone; original must not change.
	sw := c.Switches()[0]
	if p := c.FreePort(sw); p >= 0 {
		c.MustConnect(c.AddHost("extra"), 0, sw, p)
	}
	if c.NumHosts() == n.NumHosts() {
		t.Error("clone mutation affected nothing")
	}
	if n.Lookup("extra") != None {
		t.Error("original gained the clone's host")
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHostSwitch(t *testing.T) {
	n := &Network{}
	h := n.AddHost("h0")
	s := n.AddSwitch("s0")
	if _, _, ok := n.HostSwitch(h); ok {
		t.Error("disconnected host reported a switch")
	}
	n.MustConnect(h, 0, s, 6)
	sw, port, ok := n.HostSwitch(h)
	if !ok || sw != s || port != 6 {
		t.Errorf("HostSwitch = %v %d %v", sw, port, ok)
	}
	if _, _, ok := n.HostSwitch(s); ok {
		t.Error("HostSwitch accepted a switch")
	}
}

func TestReflectors(t *testing.T) {
	n := &Network{}
	s := n.AddSwitch("s0")
	h := n.AddHost("h0")
	if err := n.AddReflector(s, 3); err != nil {
		t.Fatal(err)
	}
	if !n.ReflectorAt(s, 3) || n.ReflectorAt(s, 2) {
		t.Error("ReflectorAt wrong")
	}
	if err := n.AddReflector(h, 0); err == nil {
		t.Error("reflector on host accepted")
	}
	if _, err := n.Connect(h, 0, s, 3); err == nil {
		t.Error("cable onto reflectored port accepted")
	}
	if err := n.AddReflector(s, 3); err == nil {
		t.Error("double reflector accepted")
	}
	if got := len(n.Reflectors()); got != 1 {
		t.Errorf("Reflectors count %d", got)
	}
	c := n.Clone()
	if !c.ReflectorAt(s, 3) {
		t.Error("clone lost reflector")
	}
}

func TestFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := MustMesh(3, 2, 2, rng)
	sw := n.Switches()[0]
	if p := n.FreePort(sw); p >= 0 {
		if err := n.AddReflector(sw, p); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := n.Write(&buf); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	back, err := ReadFrom(strings.NewReader(first))
	if err != nil {
		t.Fatalf("ReadFrom: %v\n%s", err, first)
	}
	if back.Stats() != n.Stats() {
		t.Errorf("round trip stats: %+v vs %+v", back.Stats(), n.Stats())
	}
	if len(back.Reflectors()) != len(n.Reflectors()) {
		t.Error("round trip lost reflectors")
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	// Second serialisation must be byte-identical (stable output).
	var buf2 bytes.Buffer
	if err := back.Write(&buf2); err != nil {
		t.Fatal(err)
	}
	if first == "" || buf2.String() != first {
		t.Fatalf("serialisation not stable:\n%s\nvs\n%s", first, buf2.String())
	}
}

func TestReadFromErrors(t *testing.T) {
	cases := map[string]string{
		"unknown directive": "frobnicate x",
		"bad wire arity":    "wire a 0 b",
		"unknown node":      "wire a 0 b 0",
		"dup node":          "host a\nhost a",
		"bad port":          "host a\nswitch s\nwire a x s 0",
		"occupied":          "host a\nswitch s\nwire a 0 s 0\nwire a 0 s 1",
	}
	for name, in := range cases {
		if _, err := ReadFrom(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := MustStar(3, 2, rng)
	hosts, _ := n.Filter(func(id NodeID) bool { return n.KindOf(id) == HostNode })
	if hosts.NumSwitches() != 0 || hosts.NumHosts() != n.NumHosts() {
		t.Errorf("filter: %v", hosts)
	}
	if hosts.NumWires() != 0 {
		t.Error("host-only filter kept wires")
	}
	all, back := n.Filter(func(NodeID) bool { return true })
	if all.Stats() != n.Stats() {
		t.Errorf("identity filter changed stats")
	}
	for nid, oid := range back {
		if all.NameOf(nid) != n.NameOf(oid) {
			t.Error("id translation broken")
		}
	}
}
