package topology

import (
	"math/rand"
	"strings"
	"testing"
)

func TestDiffEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := MustStar(3, 2, rng)
	d := Compare(n, n.Clone())
	if !d.Empty() || d.String() != "no change" {
		t.Errorf("self diff: %v", d)
	}
}

func TestDiffHostChanges(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	oldNet := MustStar(3, 2, rng)
	newNet := oldNet.Clone()

	// Remove one host, add another.
	victim := newNet.Hosts()[0]
	victimName := newNet.NameOf(victim)
	if w := newNet.WireAt(victim, HostPort); w >= 0 {
		if err := newNet.RemoveWire(w); err != nil {
			t.Fatal(err)
		}
	}
	reduced, _ := newNet.Filter(func(id NodeID) bool { return id != victim })
	fresh := reduced.AddHost("Fresh")
	sw := reduced.Switches()[1]
	if _, _, _, err := reduced.ConnectFree(fresh, sw); err != nil {
		t.Fatal(err)
	}

	d := Compare(oldNet, reduced)
	if len(d.HostsAdded) != 1 || d.HostsAdded[0] != "Fresh" {
		t.Errorf("added: %v", d.HostsAdded)
	}
	if len(d.HostsRemoved) != 1 || d.HostsRemoved[0] != victimName {
		t.Errorf("removed: %v", d.HostsRemoved)
	}
	if !strings.Contains(d.String(), "Fresh") {
		t.Errorf("report: %s", d)
	}
}

func TestDiffMovedHost(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	oldNet := MustStar(3, 3, rng)
	newNet := oldNet.Clone()
	mover := newNet.Hosts()[0]
	if w := newNet.WireAt(mover, HostPort); w >= 0 {
		if err := newNet.RemoveWire(w); err != nil {
			t.Fatal(err)
		}
	}
	// Re-cable onto a different leaf switch.
	var target NodeID = None
	oldSw, _, _ := oldNet.HostSwitch(oldNet.Hosts()[0])
	for _, s := range newNet.Switches() {
		if s != oldSw && newNet.Degree(s) > 1 && newNet.FreePort(s) >= 0 {
			target = s
			break
		}
	}
	if target == None {
		t.Fatal("no target switch")
	}
	if _, _, _, err := newNet.ConnectFree(mover, target); err != nil {
		t.Fatal(err)
	}
	d := Compare(oldNet, newNet)
	if len(d.HostsMoved) == 0 {
		t.Errorf("move not detected: %v", d)
	}
	if len(d.HostsAdded) != 0 || len(d.HostsRemoved) != 0 {
		t.Errorf("move misreported as add/remove: %v", d)
	}
}

func TestDiffCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	oldNet := MustLine(3, 2, rng)
	newNet := oldNet.Clone()
	s := newNet.AddSwitch("extra")
	if _, _, _, err := newNet.ConnectFree(s, newNet.Switches()[0]); err != nil {
		t.Fatal(err)
	}
	if err := newNet.AddReflector(s, newNet.FreePort(s)); err != nil {
		t.Fatal(err)
	}
	d := Compare(oldNet, newNet)
	if d.SwitchDelta != 1 || d.LinkDelta != 1 || d.ReflectorDelta != 1 {
		t.Errorf("deltas: %+v", d)
	}
}
