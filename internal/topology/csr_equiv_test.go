// CSR-vs-pointer equivalence: the flat Index must report exactly what a
// reference traversal of the public pointer API reports — same adjacency
// order, same BFS distances, same component labelling, same bridge list in
// the same discovery order — on every registered generator family. The
// test lives in an external package so it can import genspec (which itself
// imports topology) without a cycle.
package topology_test

import (
	"math/rand"
	"reflect"
	"testing"

	"sanmap/internal/genspec"
	"sanmap/internal/topology"
)

// sampleSpecs names one representative spec per registered generator; the
// test fails if the registry and this table ever disagree, so adding a
// generator forces an equivalence sample.
var sampleSpecs = map[string]string{
	"butterfly": "butterfly:2x3",
	"d3":        "d3:4,3",
	"dragonfly": "dragonfly:3,2,1",
	"fattree":   "fattree:4x3",
	"fattree2":  "fattree2:12x2",
	"hypercube": "hypercube:4",
	"line":      "line:5",
	"mesh":      "mesh:4x3",
	"now-c":     "now-c",
	"now-ca":    "now-ca",
	"now-cab":   "now-cab",
	"random":    "random:8,10,4",
	"ring":      "ring:6",
	"star":      "star:4",
	"torus":     "torus:3x4",
}

func TestCSREquivalence(t *testing.T) {
	names := genspec.Names()
	if len(names) != len(sampleSpecs) {
		t.Fatalf("registry has %d generators, sample table has %d — add a sample for every generator", len(names), len(sampleSpecs))
	}
	rng := rand.New(rand.NewSource(7))
	for _, name := range names {
		spec, ok := sampleSpecs[name]
		if !ok {
			t.Fatalf("no sample spec for registered generator %q", name)
		}
		res, err := genspec.Build(spec, rng)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		t.Run(name, func(t *testing.T) { checkEquivalence(t, res.Net) })
	}
}

func checkEquivalence(t *testing.T, net *topology.Network) {
	t.Helper()
	ix := net.Index()
	n := net.NumNodes()

	// Adjacency: the CSR lists cabled ports in port order, which is what
	// makes every index-based traversal visit nodes in the same order as
	// the historical per-port scan.
	for u := 0; u < n; u++ {
		var wantNbr, wantWire []int32
		for p := 0; p < net.NumPorts(topology.NodeID(u)); p++ {
			wi := net.WireAt(topology.NodeID(u), p)
			if wi < 0 {
				continue
			}
			end, ok := net.Neighbor(topology.NodeID(u), p)
			if !ok {
				t.Fatalf("node %d port %d: cabled but no neighbor", u, p)
			}
			wantNbr = append(wantNbr, int32(end.Node))
			wantWire = append(wantWire, int32(wi))
		}
		if got := ix.Neighbors(topology.NodeID(u)); !equalInt32(got, wantNbr) {
			t.Fatalf("node %d: Neighbors %v, want %v", u, got, wantNbr)
		}
		if got := ix.Wires(topology.NodeID(u)); !equalInt32(got, wantWire) {
			t.Fatalf("node %d: Wires %v, want %v", u, got, wantWire)
		}
		if got := ix.Degree(topology.NodeID(u)); got != len(wantNbr) {
			t.Fatalf("node %d: Degree %d, want %d", u, got, len(wantNbr))
		}
		if got := ix.KindOf(topology.NodeID(u)); got != net.KindOf(topology.NodeID(u)) {
			t.Fatalf("node %d: KindOf %v, want %v", u, got, net.KindOf(topology.NodeID(u)))
		}
	}

	// Dense end ids enumerate every (node, port) pair uniquely.
	seen := make(map[int32]bool)
	for u := 0; u < n; u++ {
		for p := 0; p < net.NumPorts(topology.NodeID(u)); p++ {
			id := ix.EndID(topology.NodeID(u), p)
			if id < 0 || int(id) >= ix.NumEnds() {
				t.Fatalf("EndID(%d,%d) = %d outside [0,%d)", u, p, id, ix.NumEnds())
			}
			if seen[id] {
				t.Fatalf("EndID(%d,%d) = %d collides", u, p, id)
			}
			seen[id] = true
		}
	}
	if len(seen) != ix.NumEnds() {
		t.Fatalf("%d end ids assigned, NumEnds = %d", len(seen), ix.NumEnds())
	}

	// BFS distances from every node.
	for src := 0; src < n; src++ {
		want := refBFS(net, topology.NodeID(src))
		if got := net.BFS(topology.NodeID(src)); !reflect.DeepEqual(got, want) {
			t.Fatalf("BFS(%d) = %v, want %v", src, got, want)
		}
	}

	// Components and connectivity.
	wantLabel, wantCount := refComponents(net)
	gotLabel, gotCount := net.Components()
	if gotCount != wantCount || !reflect.DeepEqual(gotLabel, wantLabel) {
		t.Fatalf("Components = %v/%d, want %v/%d", gotLabel, gotCount, wantLabel, wantCount)
	}
	if got, want := net.IsConnected(), wantCount <= 1; got != want {
		t.Fatalf("IsConnected = %v, want %v", got, want)
	}

	// Bridges, including discovery order.
	if got, want := net.Bridges(), refBridges(net); !reflect.DeepEqual(got, want) {
		t.Fatalf("Bridges = %v, want %v", got, want)
	}

	// Diameter and eccentricities.
	wantD := 0
	for src := 0; src < n; src++ {
		e := 0
		for _, d := range refBFS(net, topology.NodeID(src)) {
			if d > e {
				e = d
			}
		}
		if got := net.Eccentricity(topology.NodeID(src)); got != e {
			t.Fatalf("Eccentricity(%d) = %d, want %d", src, got, e)
		}
		if e > wantD {
			wantD = e
		}
	}
	if got := net.Diameter(); got != wantD {
		t.Fatalf("Diameter = %d, want %d", got, wantD)
	}
}

// refBFS is the reference breadth-first search over the public pointer API,
// scanning ports in order exactly as the pre-CSR implementation did.
func refBFS(net *topology.Network, src topology.NodeID) []int {
	dist := make([]int, net.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []topology.NodeID{src}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for p := 0; p < net.NumPorts(u); p++ {
			end, ok := net.Neighbor(u, p)
			if !ok {
				continue
			}
			if dist[end.Node] == -1 {
				dist[end.Node] = dist[u] + 1
				queue = append(queue, end.Node)
			}
		}
	}
	return dist
}

// refComponents floods from each unlabelled node in increasing id order.
func refComponents(net *topology.Network) ([]int, int) {
	n := net.NumNodes()
	label := make([]int, n)
	for i := range label {
		label[i] = -1
	}
	count := 0
	for i := 0; i < n; i++ {
		if label[i] != -1 {
			continue
		}
		label[i] = count
		queue := []topology.NodeID{topology.NodeID(i)}
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for p := 0; p < net.NumPorts(u); p++ {
				if end, ok := net.Neighbor(u, p); ok && label[end.Node] == -1 {
					label[end.Node] = count
					queue = append(queue, end.Node)
				}
			}
		}
		count++
	}
	return label, count
}

// refBridges is the recursive multigraph bridge DFS over the public API:
// it tracks the wire used to enter a node (not the parent node), skips
// self-loop cables, and emits a bridge when a child subtree cannot reach
// above its entry wire — the same order Index.BridgesInto produces.
func refBridges(net *topology.Network) []int {
	n := net.NumNodes()
	disc := make([]int, n)
	low := make([]int, n)
	for i := range disc {
		disc[i] = -1
	}
	timer := 0
	var out []int
	var dfs func(u topology.NodeID, inWire int)
	dfs = func(u topology.NodeID, inWire int) {
		disc[u] = timer
		low[u] = timer
		timer++
		for p := 0; p < net.NumPorts(u); p++ {
			wi := net.WireAt(u, p)
			if wi < 0 || wi == inWire {
				continue
			}
			v := net.WireByIndex(wi).Other(topology.End{Node: u, Port: p}).Node
			if v == u {
				continue // self-loop cable
			}
			if disc[v] == -1 {
				dfs(v, wi)
				if low[v] < low[u] {
					low[u] = low[v]
				}
				if low[v] > disc[u] {
					out = append(out, wi)
				}
			} else if disc[v] < low[u] {
				low[u] = disc[v]
			}
		}
	}
	for i := 0; i < n; i++ {
		if disc[i] == -1 {
			dfs(topology.NodeID(i), -1)
		}
	}
	return out
}

func equalInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
