package topology

// Graph analyses used by the paper:
//
//   - BFS distances and the network diameter D (§2.1, "Let D be its
//     diameter"), measured in wires between nodes.
//   - Bridges and switch-bridges (§3.1.4): a bridge is an edge whose removal
//     disconnects the graph; a switch-bridge has switches at both ends.
//   - The set F of nodes separated from the hosts H by a switch-bridge, and
//     the core N−F (Lemma 1). The mapping algorithm provably reconstructs
//     the core, so experiments compare against it.
//
// All traversals run on the CSR Index (csr.go); the methods here are the
// compatibility wrappers that allocate the caller-owned result slices.

// BFS returns the hop distance from src to every node (-1 if unreachable).
func (n *Network) BFS(src NodeID) []int {
	dist := make([]int, len(n.nodes))
	d32 := n.Index().bfsArena(src)
	for i, d := range d32 {
		dist[i] = int(d)
	}
	return dist
}

// IsConnected reports whether all nodes are mutually reachable.
func (n *Network) IsConnected() bool {
	if len(n.nodes) == 0 {
		return true
	}
	for _, d := range n.Index().bfsArena(0) {
		if d == -1 {
			return false
		}
	}
	return true
}

// Components returns a component label per node and the component count.
func (n *Network) Components() (label []int, count int) {
	ix := n.Index()
	count = ix.ComponentsInto(ix.dist)
	label = make([]int, len(n.nodes))
	for i, l := range ix.dist {
		label[i] = int(l)
	}
	return label, count
}

// Diameter returns the largest finite BFS distance between any node pair.
// For a disconnected network it considers each component separately.
func (n *Network) Diameter() int { return n.Index().Diameter() }

// Bridges returns the indices of all bridge wires. Self-loop cables and
// wires with a parallel twin are never bridges; see Index.BridgesInto for
// the multigraph-correct DFS.
func (n *Network) Bridges() []int {
	ix := n.Index()
	ix.bridges = ix.BridgesInto(ix.bridges[:0])
	var out []int
	for _, wi := range ix.bridges {
		out = append(out, int(wi))
	}
	return out
}

// SwitchBridges returns the bridges whose both endpoints are switches
// (Definition preceding Definition 2 in §3.1.4).
func (n *Network) SwitchBridges() []int {
	var out []int
	for _, wi := range n.Bridges() {
		w := n.wires[wi]
		if n.nodes[w.A.Node].kind == SwitchNode && n.nodes[w.B.Node].kind == SwitchNode {
			out = append(out, wi)
		}
	}
	return out
}

// F returns the set of nodes separated from the hosts by a switch-bridge
// (Lemma 1: "F = the set of all nodes that are separated by a switch-bridge
// from H"). A node is in F when the removal of one switch-bridge alone
// disconnects it from every host; a hostless region held to the rest of the
// network by two or more independent switch-bridges is still mappable.
// These are exactly the nodes the mapping algorithm cannot be expected to
// reconstruct; the prune stage removes their replicates.
func (n *Network) F() map[NodeID]bool {
	out := make(map[NodeID]bool)
	for _, wi := range n.SwitchBridges() {
		// Remove this bridge alone: the side without hosts is in F.
		w := n.wires[wi]
		for _, start := range []NodeID{w.A.Node, w.B.Node} {
			side := n.sideOf(start, wi)
			hasHost := false
			for _, v := range side {
				if n.nodes[v].kind == HostNode {
					hasHost = true
					break
				}
			}
			if !hasHost {
				for _, v := range side {
					out[v] = true
				}
			}
		}
	}
	return out
}

// sideOf floods from start without crossing wire blocked and returns the
// reached nodes.
func (n *Network) sideOf(start NodeID, blocked int) []NodeID {
	reached := make(map[NodeID]bool, 16)
	reached[start] = true
	queue := []NodeID{start}
	var out []NodeID
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		out = append(out, u)
		for p := range n.nodes[u].ports {
			wi := int(n.nodes[u].ports[p])
			if wi < 0 || wi == blocked {
				continue
			}
			v := n.wires[wi].Other(End{u, p}).Node
			if !reached[v] {
				reached[v] = true
				queue = append(queue, v)
			}
		}
	}
	return out
}

// Core returns a copy of the network with F (and any wires touching F)
// removed, together with the mapping from new ids to original ids. This is
// the graph N−F that Theorem 1 proves the mapper reconstructs.
func (n *Network) Core() (*Network, map[NodeID]NodeID) {
	f := n.F()
	core := &Network{}
	old2new := make(map[NodeID]NodeID, len(n.nodes))
	new2old := make(map[NodeID]NodeID, len(n.nodes))
	for i := range n.nodes {
		id := NodeID(i)
		if f[id] {
			continue
		}
		var nid NodeID
		if n.nodes[i].kind == HostNode {
			nid = core.AddHost(n.nodes[i].name)
		} else {
			nid = core.AddSwitchRadix(n.nodes[i].name, len(n.nodes[i].ports))
		}
		old2new[id] = nid
		new2old[nid] = id
	}
	for wi, w := range n.wires {
		if n.dead[wi] {
			continue
		}
		na, aok := old2new[w.A.Node]
		nb, bok := old2new[w.B.Node]
		if !aok || !bok {
			continue
		}
		core.MustConnect(na, w.A.Port, nb, w.B.Port)
	}
	for _, e := range n.Reflectors() {
		if nid, ok := old2new[e.Node]; ok {
			if err := core.AddReflector(nid, e.Port); err != nil {
				panic(err)
			}
		}
	}
	return core, new2old
}

// Filter returns a copy of the network containing only the nodes for which
// keep returns true, plus the wires whose both endpoints survive. Node ids
// are renumbered; the returned map translates new ids to originals.
func (n *Network) Filter(keep func(NodeID) bool) (*Network, map[NodeID]NodeID) {
	out := &Network{}
	old2new := make(map[NodeID]NodeID)
	new2old := make(map[NodeID]NodeID)
	for i := range n.nodes {
		id := NodeID(i)
		if !keep(id) {
			continue
		}
		var nid NodeID
		if n.nodes[i].kind == HostNode {
			nid = out.AddHost(n.nodes[i].name)
		} else {
			nid = out.AddSwitchRadix(n.nodes[i].name, len(n.nodes[i].ports))
		}
		old2new[id] = nid
		new2old[nid] = id
	}
	for wi, w := range n.wires {
		if n.dead[wi] {
			continue
		}
		na, aok := old2new[w.A.Node]
		nb, bok := old2new[w.B.Node]
		if aok && bok {
			out.MustConnect(na, w.A.Port, nb, w.B.Port)
		}
	}
	for _, e := range n.Reflectors() {
		if nid, ok := old2new[e.Node]; ok {
			if err := out.AddReflector(nid, e.Port); err != nil {
				panic(err)
			}
		}
	}
	return out, new2old
}

// Eccentricity returns the largest finite BFS distance from src.
func (n *Network) Eccentricity(src NodeID) int {
	return n.Index().Eccentricity(src)
}
