package topology

import (
	"fmt"
	"math"
	"math/rand"
)

// Datacenter-scale fabric generators (ROADMAP item 1: 1k-10k switch
// networks). Three families from the literature:
//
//   - FatTree2: two-layer (leaf/spine) fat-trees after Solnushkin's
//     automated design method (arXiv:1301.6179). Leaves stay radix-8 and
//     carry the hosts; spines are high-radix.
//   - Dragonfly: the canonical group-based dragonfly (complete groups,
//     one global link between every group pair), and SwappedDragonfly,
//     the diameter-3 two-parameter D3(K,M) family of Draper
//     (arXiv:2202.01843), linearly scalable in the group count M.
//   - Butterfly: the k-ary n-fly multistage network, the wormhole-routed
//     MIN family surveyed by Stergiou et al. (arXiv:2007.02550).
//
// Unlike the paper-era generators in gen.go these reach thousands of
// switches, which is exactly what the CSR topology index and the
// radix-aware mapper exist for.

// maxFabricSwitches bounds generated fabric sizes so malformed specs fail
// fast instead of exhausting memory.
const maxFabricSwitches = 1 << 16

// FatTree2Spec configures a two-layer leaf/spine fat-tree.
type FatTree2Spec struct {
	// LeafSwitches is the number of radix-8 leaf (edge) switches.
	LeafSwitches int
	// HostsPerLeaf hosts attach to every leaf (at most SwitchPorts-2:
	// each leaf also carries two spine uplinks).
	HostsPerLeaf int
	// Spines is the spine switch count; 0 picks ~sqrt(2*LeafSwitches),
	// which balances spine radix against path diversity.
	Spines int
}

// FatTree2 builds a two-layer fat-tree: every leaf carries its hosts plus
// two uplinks to a distinct pair of spines, cycling through all spine
// pairs so that any two spines share at least one leaf once
// LeafSwitches >= Spines-1. Spines take exactly the radix they need. The
// diameter is small and independent of scale (host to host in at most six
// wires once every spine pair is covered), which keeps million-probe maps
// tractable.
func FatTree2(spec FatTree2Spec, rng *rand.Rand) (*Network, error) {
	l := spec.LeafSwitches
	if l < 1 {
		return nil, fmt.Errorf("topology: FatTree2 needs at least one leaf switch")
	}
	if spec.HostsPerLeaf < 1 || spec.HostsPerLeaf > SwitchPorts-2 {
		return nil, fmt.Errorf("topology: FatTree2: between 1 and %d hosts per leaf", SwitchPorts-2)
	}
	s := spec.Spines
	if s == 0 {
		s = int(math.Ceil(math.Sqrt(float64(2 * l))))
		if s < 2 {
			s = 2
		}
		if s > l+1 {
			s = l + 1
		}
	}
	if s < 2 || s > MaxSwitchRadix {
		return nil, fmt.Errorf("topology: FatTree2: spine count %d outside [2, %d]", s, MaxSwitchRadix)
	}
	if l < s-1 {
		return nil, fmt.Errorf("topology: FatTree2: %d leaves cannot reach all %d spines", l, s)
	}
	if l+s > maxFabricSwitches {
		return nil, fmt.Errorf("topology: FatTree2: %d switches exceeds the %d cap", l+s, maxFabricSwitches)
	}
	// Assign each leaf a spine pair, cycling through all pairs in
	// lexicographic order; tally spine degrees first so every spine is
	// built with exactly the radix it needs.
	pairs := make([][2]int, 0, s*(s-1)/2)
	for i := 0; i < s; i++ {
		for j := i + 1; j < s; j++ {
			pairs = append(pairs, [2]int{i, j})
		}
	}
	deg := make([]int, s)
	pairOf := make([][2]int, l)
	for i := 0; i < l; i++ {
		p := pairs[i%len(pairs)]
		pairOf[i] = p
		deg[p[0]]++
		deg[p[1]]++
	}
	for i, d := range deg {
		if d > MaxSwitchRadix {
			return nil, fmt.Errorf("topology: FatTree2: spine %d needs radix %d > %d; add spines", i, d, MaxSwitchRadix)
		}
	}
	n := &Network{}
	nm := namer{prefix: "Node"}
	spines := make([]NodeID, s)
	for i := range spines {
		spines[i] = n.AddSwitchRadix(fmt.Sprintf("S%d", i), deg[i])
	}
	for i := 0; i < l; i++ {
		leaf := n.AddSwitch(fmt.Sprintf("L%d", i))
		for h := 0; h < spec.HostsPerLeaf; h++ {
			host := n.AddHost(nm.next())
			must(connectRandomPorts(n, host, leaf, rng))
		}
		must(connectRandomPorts(n, leaf, spines[pairOf[i][0]], rng))
		must(connectRandomPorts(n, leaf, spines[pairOf[i][1]], rng))
	}
	return n, nil
}

// MustFatTree2 is FatTree2 that panics on error.
func MustFatTree2(spec FatTree2Spec, rng *rand.Rand) *Network {
	return mustNet(FatTree2(spec, rng))
}

// Dragonfly builds the canonical maximal dragonfly: groups of groupSize
// switches in a complete graph, hostsPer hosts and globalLinks global
// ports per switch, and groupSize*globalLinks+1 groups so that every pair
// of groups is joined by exactly one global link. Switch radix is
// hostsPer + (groupSize-1) + globalLinks.
func Dragonfly(groupSize, hostsPer, globalLinks int, rng *rand.Rand) (*Network, error) {
	a, p, h := groupSize, hostsPer, globalLinks
	if a < 1 || h < 1 || p < 1 {
		return nil, fmt.Errorf("topology: Dragonfly needs positive group size, hosts and global links")
	}
	radix := p + (a - 1) + h
	if radix > MaxSwitchRadix {
		return nil, fmt.Errorf("topology: Dragonfly: radix %d exceeds %d", radix, MaxSwitchRadix)
	}
	g := a*h + 1
	if a*g > maxFabricSwitches {
		return nil, fmt.Errorf("topology: Dragonfly: %d switches exceeds the %d cap", a*g, maxFabricSwitches)
	}
	n := &Network{}
	nm := namer{prefix: "Node"}
	sw := make([][]NodeID, g)
	for i := 0; i < g; i++ {
		sw[i] = make([]NodeID, a)
		for j := 0; j < a; j++ {
			sw[i][j] = n.AddSwitchRadix(fmt.Sprintf("G%dS%d", i, j), radix)
			for k := 0; k < p; k++ {
				host := n.AddHost(nm.next())
				must(connectRandomPorts(n, host, sw[i][j], rng))
			}
		}
		for j := 0; j < a; j++ {
			for k := j + 1; k < a; k++ {
				must(connectRandomPorts(n, sw[i][j], sw[i][k], rng))
			}
		}
	}
	// Global endpoint e of group i (e in 0..a*h-1, owned by switch e/h)
	// reaches group (i+e+1) mod g; the arrangement is an involution, so
	// connect each pair once from the lower-numbered group.
	for i := 0; i < g; i++ {
		for e := 0; e < a*h; e++ {
			t := (i + e + 1) % g
			if i >= t {
				continue
			}
			back := (i - t - 1 + g) % g
			must(connectRandomPorts(n, sw[i][e/h], sw[t][back/h], rng))
		}
	}
	return n, nil
}

// MustDragonfly is Dragonfly that panics on error.
func MustDragonfly(groupSize, hostsPer, globalLinks int, rng *rand.Rand) *Network {
	return mustNet(Dragonfly(groupSize, hostsPer, globalLinks, rng))
}

// SwappedDragonfly builds Draper's diameter-3 swapped dragonfly D3(K,M):
// M complete groups of K switches where switch s of group g is joined to
// switch g of group s by a transpose ("swap") link. Any two switches are
// within three wires (intra, swap, intra). M may grow from 1 to K without
// rewiring existing groups, which is the family's linear-scalability
// point. Switch radix is K + hostsPer.
func SwappedDragonfly(k, m, hostsPer int, rng *rand.Rand) (*Network, error) {
	if k < 2 || m < 1 || m > k {
		return nil, fmt.Errorf("topology: SwappedDragonfly needs 2 <= K and 1 <= M <= K")
	}
	if hostsPer < 1 {
		return nil, fmt.Errorf("topology: SwappedDragonfly needs at least one host per switch")
	}
	radix := k + hostsPer // K-1 intra + 1 swap + hosts
	if radix > MaxSwitchRadix {
		return nil, fmt.Errorf("topology: SwappedDragonfly: radix %d exceeds %d", radix, MaxSwitchRadix)
	}
	if k*m > maxFabricSwitches {
		return nil, fmt.Errorf("topology: SwappedDragonfly: %d switches exceeds the %d cap", k*m, maxFabricSwitches)
	}
	n := &Network{}
	nm := namer{prefix: "Node"}
	sw := make([][]NodeID, m)
	for g := 0; g < m; g++ {
		sw[g] = make([]NodeID, k)
		for s := 0; s < k; s++ {
			sw[g][s] = n.AddSwitchRadix(fmt.Sprintf("G%dS%d", g, s), radix)
			for i := 0; i < hostsPer; i++ {
				host := n.AddHost(nm.next())
				must(connectRandomPorts(n, host, sw[g][s], rng))
			}
		}
		for s := 0; s < k; s++ {
			for t := s + 1; t < k; t++ {
				must(connectRandomPorts(n, sw[g][s], sw[g][t], rng))
			}
		}
	}
	for g := 0; g < m; g++ {
		for s := g + 1; s < m; s++ {
			must(connectRandomPorts(n, sw[g][s], sw[s][g], rng))
		}
	}
	return n, nil
}

// MustSwappedDragonfly is SwappedDragonfly that panics on error.
func MustSwappedDragonfly(k, m, hostsPer int, rng *rand.Rand) *Network {
	return mustNet(SwappedDragonfly(k, m, hostsPer, rng))
}

// Butterfly builds a k-ary n-fly: n stages of k^(n-1) radix-2k switches.
// Between stages s and s+1 the links realise the butterfly permutation on
// digit n-2-s of the switch index; k hosts attach to every first-stage and
// every last-stage switch (the MIN's input and output terminals).
func Butterfly(k, stages int, rng *rand.Rand) (*Network, error) {
	if k < 2 || stages < 2 {
		return nil, fmt.Errorf("topology: Butterfly needs arity >= 2 and >= 2 stages")
	}
	if 2*k > MaxSwitchRadix {
		return nil, fmt.Errorf("topology: Butterfly: radix %d exceeds %d", 2*k, MaxSwitchRadix)
	}
	width := 1
	for i := 1; i < stages; i++ {
		if width > maxFabricSwitches/(k*stages) {
			return nil, fmt.Errorf("topology: Butterfly: %d-ary %d-fly exceeds the %d-switch cap", k, stages, maxFabricSwitches)
		}
		width *= k
	}
	if width*stages > maxFabricSwitches {
		return nil, fmt.Errorf("topology: Butterfly: %d switches exceeds the %d cap", width*stages, maxFabricSwitches)
	}
	n := &Network{}
	nm := namer{prefix: "Node"}
	sw := make([][]NodeID, stages)
	for s := 0; s < stages; s++ {
		sw[s] = make([]NodeID, width)
		for j := 0; j < width; j++ {
			sw[s][j] = n.AddSwitchRadix(fmt.Sprintf("B%d-%d", s, j), 2*k)
		}
	}
	for j := 0; j < width; j++ {
		for i := 0; i < k; i++ {
			host := n.AddHost(nm.next())
			must(connectRandomPorts(n, host, sw[0][j], rng))
		}
	}
	stride := width / k // digit n-2 is the most significant of n-1 digits
	for s := 0; s+1 < stages; s++ {
		for j := 0; j < width; j++ {
			c := (j / stride) % k
			for d := 0; d < k; d++ {
				must(connectRandomPorts(n, sw[s][j], sw[s+1][j+(d-c)*stride], rng))
			}
		}
		stride /= k
	}
	for j := 0; j < width; j++ {
		for i := 0; i < k; i++ {
			host := n.AddHost(nm.next())
			must(connectRandomPorts(n, host, sw[stages-1][j], rng))
		}
	}
	return n, nil
}

// MustButterfly is Butterfly that panics on error.
func MustButterfly(k, stages int, rng *rand.Rand) *Network {
	return mustNet(Butterfly(k, stages, rng))
}
