package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBFSAndDiameter(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := MustLine(4, 1, rng) // S0-S1-S2-S3, one host each
	h0 := n.Hosts()[0]
	dist := n.BFS(h0)
	// Host on S3 is 1 (host-S0... host0-S0) + 3 (S0..S3) + 1 = 5 away.
	far := n.Hosts()[3]
	if dist[far] != 5 {
		t.Errorf("dist to far host = %d, want 5", dist[far])
	}
	if d := n.Diameter(); d != 5 {
		t.Errorf("diameter %d, want 5", d)
	}
}

func TestComponents(t *testing.T) {
	n := &Network{}
	a := n.AddSwitch("a")
	b := n.AddSwitch("b")
	h1 := n.AddHost("h1")
	h2 := n.AddHost("h2")
	n.MustConnect(h1, 0, a, 0)
	n.MustConnect(h2, 0, b, 0)
	if n.IsConnected() {
		t.Error("disconnected network reported connected")
	}
	if _, count := n.Components(); count != 2 {
		t.Errorf("components = %d, want 2", count)
	}
	n.MustConnect(a, 1, b, 1)
	if !n.IsConnected() {
		t.Error("connected network reported disconnected")
	}
}

// bruteBridges recomputes bridges by deleting each wire and checking
// connectivity — the oracle for the Tarjan implementation.
func bruteBridges(n *Network) map[int]bool {
	out := make(map[int]bool)
	_, base := n.Components()
	n.WiresIndexed(func(wi int, w Wire) {
		c := n.Clone()
		if err := c.RemoveWire(wi); err != nil {
			panic(err)
		}
		if _, count := c.Components(); count > base {
			out[wi] = true
		}
	})
	return out
}

func TestBridgesAgainstBruteForce(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := MustRandomConnected(2+rng.Intn(6), rng.Intn(8), rng.Intn(5), rng)
		if seed%3 == 0 {
			// Mix in self-loops and parallel edges.
			sw := n.Switches()
			s := sw[rng.Intn(len(sw))]
			if n.Degree(s) <= SwitchPorts-2 {
				_, _, _, _ = n.ConnectFree(s, s)
			}
		}
		want := bruteBridges(n)
		got := make(map[int]bool)
		for _, wi := range n.Bridges() {
			got[wi] = true
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: bridges %v, want %v (%v)", seed, got, want, n)
		}
		for wi := range want {
			if !got[wi] {
				t.Fatalf("seed %d: missing bridge %d", seed, wi)
			}
		}
	}
}

func TestSwitchBridges(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := MustStar(3, 1, rng)
	// Every hub-leaf link is a switch-bridge; every host link is a bridge
	// but not a switch-bridge.
	sb := n.SwitchBridges()
	if len(sb) != 3 {
		t.Fatalf("switch-bridges %d, want 3", len(sb))
	}
	all := n.Bridges()
	if len(all) != 3+3 {
		t.Fatalf("bridges %d, want 6", len(all))
	}
}

// TestLemma1 is the paper's Lemma 1 as a property test: the switch-bridge
// characterisation of F must equal the max-flow characterisation, for
// every choice of mapper host.
func TestLemma1(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := MustRandomConnected(3+rng.Intn(4), 2+rng.Intn(5), rng.Intn(3), rng)
		if seed%2 == 0 {
			if s := switchWithFreePort(n, rng); s != None {
				WithTail(n, s, 1+rng.Intn(2), rng)
			}
		}
		fBridge := n.F()
		h0 := n.Hosts()[0]
		fFlow := n.FByFlow(h0)
		if len(fBridge) != len(fFlow) {
			t.Fatalf("seed %d: |F| bridge=%d flow=%d", seed, len(fBridge), len(fFlow))
		}
		for v := range fBridge {
			if !fFlow[v] {
				t.Fatalf("seed %d: node %d in bridge-F but not flow-F", seed, v)
			}
		}
		// Q must be defined exactly outside F.
		_, undef := n.Q(h0)
		if len(undef) != len(fBridge) {
			t.Fatalf("seed %d: Q undefined on %d nodes, F has %d", seed, len(undef), len(fBridge))
		}
	}
}

// randomFeasible draws RandomConnected parameters that cannot exhaust the
// switch port budget (each switch has 8 ports; the spanning tree uses ~2).
func randomFeasible(rng *rand.Rand) *Network {
	sw := 1 + rng.Intn(8)
	hosts := rng.Intn(4*sw + 1)
	return MustRandomConnected(sw, hosts, rng.Intn(6), rng)
}

// feasibleFatTree draws a random spec that respects every port budget.
func feasibleFatTree(rng *rand.Rand) FatTreeSpec {
	spec := FatTreeSpec{
		LeafSwitches:   2 + rng.Intn(4),
		HostsPerLeaf:   1 + rng.Intn(4),
		RootSwitches:   1 + rng.Intn(2),
		UplinksPerLeaf: 1 + rng.Intn(2),
		UplinksPerMid:  1,
	}
	// Enough mids that each takes at most 6 downlinks + 1 uplink.
	need := spec.LeafSwitches * spec.UplinksPerLeaf
	spec.MidSwitches = (need+5)/6 + rng.Intn(2)
	if spec.MidSwitches < 1 {
		spec.MidSwitches = 1
	}
	// Every root needs at least one mid uplink, and no root may exceed its
	// port budget.
	if spec.RootSwitches > spec.MidSwitches*spec.UplinksPerMid {
		spec.RootSwitches = spec.MidSwitches * spec.UplinksPerMid
	}
	for (spec.MidSwitches*spec.UplinksPerMid+spec.RootSwitches-1)/spec.RootSwitches > SwitchPorts {
		spec.RootSwitches++
	}
	return spec
}

// switchWithFreePort returns a random switch with an uncabled port, or None.
func switchWithFreePort(n *Network, rng *rand.Rand) NodeID {
	var candidates []NodeID
	for _, s := range n.Switches() {
		if n.FreePort(s) >= 0 {
			candidates = append(candidates, s)
		}
	}
	if len(candidates) == 0 {
		return None
	}
	return candidates[rng.Intn(len(candidates))]
}

func TestCore(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := MustRandomConnected(4, 4, 2, rng)
	s := switchWithFreePort(n, rng)
	if s == None {
		t.Skip("no free port")
	}
	WithTail(n, s, 2, rng)
	f := n.F()
	if len(f) != 2 {
		t.Fatalf("|F| = %d, want 2", len(f))
	}
	core, back := n.Core()
	if core.NumNodes() != n.NumNodes()-2 {
		t.Errorf("core nodes %d", core.NumNodes())
	}
	if err := core.Validate(); err != nil {
		t.Fatal(err)
	}
	for nid, oid := range back {
		if core.KindOf(nid) != n.KindOf(oid) {
			t.Error("core id translation broken")
		}
	}
	// Hosts are never in F.
	for v := range f {
		if n.KindOf(v) != SwitchNode {
			t.Errorf("host %d in F", v)
		}
	}
}

// TestQKnownValues pins Q on a hand-analysable topology.
func TestQKnownValues(t *testing.T) {
	// h0 - S0 - S1 - h1: Q(S1) = path h0,S0,S1,h1 = 3 edges.
	n := &Network{}
	s0 := n.AddSwitch("s0")
	s1 := n.AddSwitch("s1")
	h0 := n.AddHost("h0")
	h1 := n.AddHost("h1")
	n.MustConnect(h0, 0, s0, 0)
	n.MustConnect(s0, 1, s1, 1)
	n.MustConnect(h1, 0, s1, 0)
	if q, ok := n.QOf(h0, s1); !ok || q != 3 {
		t.Errorf("Q(s1) = %d,%v want 3,true", q, ok)
	}
	if q, ok := n.QOf(h0, s0); !ok || q != 2 {
		// Definition 2's anomaly: h0->s0 then straight back to h0, the
		// first and last edge being the same wire — length 2.
		t.Errorf("Q(s0) = %d,%v want 2,true", q, ok)
	}
	q, undef := n.Q(h0)
	if q != 3 || len(undef) != 0 {
		t.Errorf("Q = %d undef=%d", q, len(undef))
	}
	if db := n.DepthBound(h0); db != 3+n.Diameter() {
		t.Errorf("DepthBound = %d", db)
	}
}

// TestQAnomalyFirstLastEdge: Definition 2 allows the first and last edge to
// coincide — a switch whose only host is the mapper itself must still have
// Q defined (path h0 -> v -> back to h0 reusing h0's wire).
func TestQAnomalyFirstLastEdge(t *testing.T) {
	// h0 - S0 - S1 (ring of two switches, no other host... need 2 hosts for
	// the model; put h1 far behind a switch-bridge so the anomalous path is
	// the only short one).
	n := &Network{}
	s0 := n.AddSwitch("s0")
	s1 := n.AddSwitch("s1")
	h0 := n.AddHost("h0")
	n.MustConnect(h0, 0, s0, 0)
	// Two parallel cables s0-s1 so s1 is not behind a bridge.
	n.MustConnect(s0, 1, s1, 1)
	n.MustConnect(s0, 2, s1, 2)
	h1 := n.AddHost("h1")
	n.MustConnect(h1, 0, s1, 0)
	// Q(s1): h0,s0,s1 then on to h1: length 3; no anomaly needed.
	if q, ok := n.QOf(h0, s1); !ok || q != 3 {
		t.Errorf("Q(s1) = %d,%v", q, ok)
	}
	// Now make h0 the only host near s0: Q(s0) via h0 itself: h0->s0->h0
	// would reuse the wire (allowed): Q(s0) could be 2... but s0 also
	// reaches h1 in 3 (s0->s1->h1): edge-disjoint with h0->s0. So Q(s0)=3.
	if q, ok := n.QOf(h0, s0); !ok || q > 3 {
		t.Errorf("Q(s0) = %d,%v", q, ok)
	}
}

// TestGeneratorsValidate: every generator yields a valid, connected network
// within port budgets (property test over seeds).
func TestGeneratorsValidate(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nets := []*Network{
			MustLine(2+rng.Intn(5), 1+rng.Intn(3), rng),
			MustRing(3+rng.Intn(5), 1+rng.Intn(3), rng),
			MustStar(1+rng.Intn(8), 1+rng.Intn(3), rng),
			MustMesh(2+rng.Intn(3), 2+rng.Intn(3), 1+rng.Intn(3), rng),
			MustHypercube(1+rng.Intn(3), 1+rng.Intn(2), rng),
			randomFeasible(rng),
			MustFatTree(feasibleFatTree(rng), rng),
		}
		if seed%2 == 0 {
			nets = append(nets, MustTorus(3, 3, 1+rng.Intn(3), rng))
		}
		for _, n := range nets {
			if err := n.Validate(); err != nil {
				t.Logf("invalid: %v", err)
				return false
			}
			if !n.IsConnected() {
				t.Logf("disconnected: %v", n)
				return false
			}
			for _, s := range n.Switches() {
				if n.Degree(s) > SwitchPorts {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHypercubeStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := MustHypercube(3, 1, rng)
	if n.NumSwitches() != 8 || n.NumHosts() != 8 {
		t.Fatalf("hypercube(3): %v", n)
	}
	// Switch-switch links: 8*3/2 = 12.
	if links := n.NumWires() - n.NumHosts(); links != 12 {
		t.Errorf("switch links %d, want 12", links)
	}
	if d := n.Diameter(); d != 3+2 {
		t.Errorf("diameter %d, want 5 (3 cube hops + 2 host links)", d)
	}
}

func TestEccentricity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := MustLine(3, 1, rng)
	h0 := n.Hosts()[0]
	if e := n.Eccentricity(h0); e != n.Diameter() {
		t.Errorf("line eccentricity from end host %d, diameter %d", e, n.Diameter())
	}
}
