package genspec

import (
	"math/rand"
	"strings"
	"testing"
)

func TestBuildValidSpecs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := map[string]struct{ hosts, switches int }{
		"now-c":       {36, 13},
		"now-ca":      {70, 26},
		"now-cab":     {100, 40},
		"fattree:4x3": {12, 7},
		// Datacenter-scale families (small instances; fabric_test.go has
		// the structural detail).
		"fattree2:12x2":   {24, 17},
		"fattree2:4x2,3":  {8, 7},
		"dragonfly:3,2,1": {24, 12},
		"d3:4,3":          {24, 12},
		"d3:4,3,1":        {12, 12},
		"butterfly:2x3":   {16, 12},
		"random:5,8,2":    {8, 5},
		"hypercube:3":     {8, 8},
		"mesh:3x3":        {18, 9},
		"torus:3x3":       {18, 9},
		"ring:4":          {8, 4},
		"star:3":          {6, 4},
		"line:3":          {6, 3},
	}
	for spec, want := range cases {
		res, err := Build(spec, rng)
		if err != nil {
			t.Errorf("%s: %v", spec, err)
			continue
		}
		if got := res.Net.NumHosts(); got != want.hosts {
			t.Errorf("%s: %d hosts, want %d", spec, got, want.hosts)
		}
		if got := res.Net.NumSwitches(); got != want.switches {
			t.Errorf("%s: %d switches, want %d", spec, got, want.switches)
		}
		if err := res.Net.Validate(); err != nil {
			t.Errorf("%s: %v", spec, err)
		}
		if strings.HasPrefix(spec, "now-") && res.Utility == "" {
			t.Errorf("%s: missing utility host", spec)
		}
	}
}

func TestBuildInvalidSpecs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, spec := range []string{
		"", "frobnicate", "fattree", "fattree:4", "fattree:4x9",
		"random:1,2", "random:2,99,0", "hypercube:9", "ring:2",
		"torus:2x5", "star:9", "mesh:axb", "line:0", "line:-3",
		// Embedded ':' separators are rejected before the generator parses.
		"fattree:2:3", "now-c:x", "d3:4:3",
		// Datacenter families validate their parameters.
		"fattree2:2x2,8", "dragonfly:200,1,1",
		"d3:4,5", "butterfly:1x3", "butterfly:2x17",
	} {
		if res, err := Build(spec, rng); err == nil {
			t.Errorf("Build(%q) accepted: %v", spec, res.Net)
		}
	}
}

func TestBuildNilRngDeterministic(t *testing.T) {
	a, err := Build("now-cab", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build("now-cab", nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Net.Stats() != b.Net.Stats() || a.Net.Diameter() != b.Net.Diameter() {
		t.Error("nil-rng builds differ")
	}
}
