package genspec

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"sanmap/internal/cluster"
	"sanmap/internal/topology"
)

// Built-in generators. Each is a builtin value wrapping one of the
// topology/cluster constructors; all register in init, so every tool
// linking genspec accepts the same family names.

// builtin adapts a parse/build function pair to the Generator interface.
type builtin struct {
	name  string
	usage string
	desc  string
	parse func(spec, arg string) (Spec, error)
	build func(s Spec, rng *rand.Rand) (*topology.Network, error)
}

func (b *builtin) Name() string  { return b.name }
func (b *builtin) Usage() string { return b.usage }
func (b *builtin) Describe() string {
	return b.desc
}
func (b *builtin) Parse(arg string) (Spec, error) {
	return b.parse(b.name+":"+arg, arg)
}
func (b *builtin) Build(s Spec, rng *rand.Rand) (*topology.Network, error) {
	return b.build(s, rng)
}

// nowGen wraps the NOW cluster configurations, which take no argument and
// carry a distinguished utility host.
type nowGen struct {
	name string
	desc string
	sys  func(*rand.Rand) *cluster.System
}

func (g *nowGen) Name() string     { return g.name }
func (g *nowGen) Usage() string    { return g.name }
func (g *nowGen) Describe() string { return g.desc }
func (g *nowGen) Parse(arg string) (Spec, error) {
	if arg != "" {
		return nil, fmt.Errorf("genspec: %q takes no argument (got %q)", g.name, arg)
	}
	return nil, nil
}
func (g *nowGen) Build(_ Spec, rng *rand.Rand) (*topology.Network, error) {
	return g.sys(rng).Net, nil
}

// UtilityName scans for the utility hosts in subcluster order, matching
// cluster.Build's selection.
func (g *nowGen) UtilityName(net *topology.Network) string {
	for _, name := range []string{"UtilC", "UtilA", "UtilB"} {
		if net.Lookup(name) != topology.None {
			return name
		}
	}
	return ""
}

// nums parses between min and max positive integers separated by ',' or
// 'x'.
func nums(spec, arg string, min, max int) ([]int, error) {
	parts := strings.FieldsFunc(arg, func(r rune) bool { return r == ',' || r == 'x' })
	if len(parts) < min || len(parts) > max {
		if min == max {
			return nil, fmt.Errorf("genspec: %q: want %d numbers, have %d", spec, min, len(parts))
		}
		return nil, fmt.Errorf("genspec: %q: want %d to %d numbers, have %d", spec, min, max, len(parts))
	}
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("genspec: %q: %v", spec, err)
		}
		if v < 1 {
			return nil, fmt.Errorf("genspec: %q: numbers must be positive", spec)
		}
		out[i] = v
	}
	return out, nil
}

// fixedNums returns a parse function expecting exactly want numbers.
func fixedNums(want int) func(spec, arg string) (Spec, error) {
	return func(spec, arg string) (Spec, error) {
		v, err := nums(spec, arg, want, want)
		if err != nil {
			return nil, err
		}
		return v, nil
	}
}

// rangeNums returns a parse function expecting min..max numbers.
func rangeNums(min, max int) func(spec, arg string) (Spec, error) {
	return func(spec, arg string) (Spec, error) {
		v, err := nums(spec, arg, min, max)
		if err != nil {
			return nil, err
		}
		return v, nil
	}
}

func init() {
	Register(&nowGen{name: "now-c", desc: "NOW subcluster C (Fig 3)", sys: cluster.CConfig})
	Register(&nowGen{name: "now-ca", desc: "NOW subclusters C+A (Fig 3)", sys: cluster.CAConfig})
	Register(&nowGen{name: "now-cab", desc: "full NOW system C+A+B (Fig 3)", sys: cluster.CABConfig})
	Register(&builtin{
		name: "fattree", usage: "fattree:LxH",
		desc:  "NOW-style incomplete fat tree: L leaves with H hosts each",
		parse: fixedNums(2),
		build: func(s Spec, rng *rand.Rand) (*topology.Network, error) {
			v := s.([]int)
			return topology.FatTree(topology.FatTreeSpec{
				LeafSwitches: v[0], HostsPerLeaf: v[1],
				MidSwitches: (v[0] + 1) / 2, RootSwitches: 1,
				UplinksPerLeaf: 2, UplinksPerMid: 1,
			}, rng)
		},
	})
	Register(&builtin{
		name: "fattree2", usage: "fattree2:LxH[,S]",
		desc:  "two-layer leaf/spine fat-tree (Solnushkin), S spines auto-sized when omitted",
		parse: rangeNums(2, 3),
		build: func(s Spec, rng *rand.Rand) (*topology.Network, error) {
			v := s.([]int)
			spec := topology.FatTree2Spec{LeafSwitches: v[0], HostsPerLeaf: v[1]}
			if len(v) == 3 {
				spec.Spines = v[2]
			}
			return topology.FatTree2(spec, rng)
		},
	})
	Register(&builtin{
		name: "dragonfly", usage: "dragonfly:A,P,H",
		desc:  "maximal dragonfly: A*H+1 complete groups of A switches, P hosts and H global links each",
		parse: fixedNums(3),
		build: func(s Spec, rng *rand.Rand) (*topology.Network, error) {
			v := s.([]int)
			return topology.Dragonfly(v[0], v[1], v[2], rng)
		},
	})
	Register(&builtin{
		name: "d3", usage: "d3:K,M[,P]",
		desc:  "swapped dragonfly D3(K,M) (Draper): M complete K-switch groups with transpose links, P hosts per switch (default 2)",
		parse: rangeNums(2, 3),
		build: func(s Spec, rng *rand.Rand) (*topology.Network, error) {
			v := s.([]int)
			hosts := 2
			if len(v) == 3 {
				hosts = v[2]
			}
			return topology.SwappedDragonfly(v[0], v[1], hosts, rng)
		},
	})
	Register(&builtin{
		name: "butterfly", usage: "butterfly:KxN",
		desc:  "k-ary n-fly multistage network: N stages of K^(N-1) radix-2K switches",
		parse: fixedNums(2),
		build: func(s Spec, rng *rand.Rand) (*topology.Network, error) {
			v := s.([]int)
			return topology.Butterfly(v[0], v[1], rng)
		},
	})
	Register(&builtin{
		name: "random", usage: "random:S,H,E",
		desc:  "connected random multigraph: S switches, H hosts, E extra links",
		parse: fixedNums(3),
		build: func(s Spec, rng *rand.Rand) (*topology.Network, error) {
			v := s.([]int)
			if v[1] > 4*v[0] {
				return nil, fmt.Errorf("genspec: at most %d hosts for %d switches", 4*v[0], v[0])
			}
			if rng == nil {
				rng = rand.New(rand.NewSource(1))
			}
			return topology.RandomConnected(v[0], v[1], v[2], rng)
		},
	})
	Register(&builtin{
		name: "hypercube", usage: "hypercube:D",
		desc:  "D-dimensional hypercube of switches, one host each",
		parse: fixedNums(1),
		build: func(s Spec, rng *rand.Rand) (*topology.Network, error) {
			return topology.Hypercube(s.([]int)[0], 1, rng)
		},
	})
	Register(&builtin{
		name: "mesh", usage: "mesh:WxH",
		desc:  "WxH switch grid, two hosts per switch",
		parse: fixedNums(2),
		build: func(s Spec, rng *rand.Rand) (*topology.Network, error) {
			v := s.([]int)
			return topology.Mesh(v[0], v[1], 2, rng)
		},
	})
	Register(&builtin{
		name: "torus", usage: "torus:WxH",
		desc:  "WxH switch torus (wraparound mesh), two hosts per switch",
		parse: fixedNums(2),
		build: func(s Spec, rng *rand.Rand) (*topology.Network, error) {
			v := s.([]int)
			return topology.Torus(v[0], v[1], 2, rng)
		},
	})
	Register(&builtin{
		name: "ring", usage: "ring:N",
		desc:  "N switches in a cycle, two hosts per switch",
		parse: fixedNums(1),
		build: func(s Spec, rng *rand.Rand) (*topology.Network, error) {
			return topology.Ring(s.([]int)[0], 2, rng)
		},
	})
	Register(&builtin{
		name: "star", usage: "star:N",
		desc:  "hub switch with N leaf switches, two hosts per leaf",
		parse: fixedNums(1),
		build: func(s Spec, rng *rand.Rand) (*topology.Network, error) {
			return topology.Star(s.([]int)[0], 2, rng)
		},
	})
	Register(&builtin{
		name: "line", usage: "line:N",
		desc:  "N switches in a path, two hosts per switch",
		parse: fixedNums(1),
		build: func(s Spec, rng *rand.Rand) (*topology.Network, error) {
			return topology.Line(s.([]int)[0], 2, rng)
		},
	})
}
