// Package genspec parses the compact topology-generator specifications the
// command-line tools share, e.g. "now-cab", "fattree:6x4", "fattree2:64x4",
// "dragonfly:8,4,4", "random:8,20,4", "mesh:3x4".
//
// Generators are registered, not hard-coded: a specification "name:arg" is
// resolved against the registry, the named Generator parses its own
// argument, and Build reports the registered names when the lookup fails.
// The built-in families live in builtin.go; external packages add their own
// via Register.
package genspec

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"sanmap/internal/topology"
)

// Spec is a generator-specific parsed argument, produced by
// Generator.Parse and consumed by the same generator's Build.
type Spec any

// Generator builds one family of networks from a compact textual argument
// (the part after the colon in "name:arg"; "" when absent).
type Generator interface {
	// Name is the registry key, e.g. "fattree2". It must be non-empty
	// and contain no ':' or whitespace.
	Name() string
	// Parse validates the textual argument and returns the parsed spec.
	Parse(arg string) (Spec, error)
	// Build constructs the network. rng randomises port embeddings (nil
	// keeps them deterministic).
	Build(spec Spec, rng *rand.Rand) (*topology.Network, error)
}

// UtilityNamer is implemented by generators whose networks contain a
// distinguished utility host (the NOW configurations).
type UtilityNamer interface {
	UtilityName(net *topology.Network) string
}

// Usager is implemented by generators that document their argument form,
// e.g. "mesh:WxH". Name() is used otherwise.
type Usager interface {
	Usage() string
}

// Describer is implemented by generators with a one-line description for
// listings such as `sangen -list`.
type Describer interface {
	Describe() string
}

var registry = map[string]Generator{}

// Register adds a generator to the registry. It panics on duplicate or
// malformed names — registration happens in package init, where a bad
// generator is a programming error.
func Register(g Generator) {
	name := g.Name()
	if name == "" || strings.ContainsAny(name, ": \t\r\n") {
		panic(fmt.Sprintf("genspec: invalid generator name %q", name))
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("genspec: duplicate generator %q", name))
	}
	registry[name] = g
}

// Lookup returns the registered generator with the given name.
func Lookup(name string) (Generator, bool) {
	g, ok := registry[name]
	return g, ok
}

// Names returns the registered generator names in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// UsageOf returns the argument form of a registered generator, falling
// back to its bare name.
func UsageOf(g Generator) string {
	if u, ok := g.(Usager); ok {
		return u.Usage()
	}
	return g.Name()
}

// Specs describes all registered forms, for flag usage strings.
func Specs() string {
	var forms []string
	for _, name := range Names() {
		forms = append(forms, UsageOf(registry[name]))
	}
	return strings.Join(forms, ", ")
}

// Result is a parsed and built specification.
type Result struct {
	Net *topology.Network
	// Utility is the name of the distinguished service host for the NOW
	// configurations, "" otherwise.
	Utility string
}

// Build resolves spec ("name" or "name:arg") against the registry and
// constructs the network. rng randomises port embeddings (nil keeps them
// deterministic).
func Build(spec string, rng *rand.Rand) (Result, error) {
	name, arg, _ := strings.Cut(spec, ":")
	if strings.Contains(arg, ":") {
		return Result{}, fmt.Errorf("genspec: %q: unexpected ':' in argument %q", spec, arg)
	}
	g, ok := registry[name]
	if !ok {
		return Result{}, fmt.Errorf("genspec: unknown generator %q (registered: %s)", name, strings.Join(Names(), ", "))
	}
	parsed, err := g.Parse(arg)
	if err != nil {
		return Result{}, err
	}
	net, err := g.Build(parsed, rng)
	if err != nil {
		return Result{}, err
	}
	res := Result{Net: net}
	if un, ok := g.(UtilityNamer); ok {
		res.Utility = un.UtilityName(net)
	}
	return res, nil
}
