// Package genspec parses the compact topology-generator specifications the
// command-line tools share, e.g. "now-cab", "fattree:6x4", "random:8,20,4",
// "hypercube:3", "mesh:3x4", "torus:4x4", "ring:5", "star:4", "line:6".
package genspec

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"sanmap/internal/cluster"
	"sanmap/internal/topology"
)

// Result is a parsed and built specification.
type Result struct {
	Net *topology.Network
	// Utility is the name of the distinguished service host for the NOW
	// configurations, "" otherwise.
	Utility string
}

// Specs describes the accepted forms, for usage strings.
const Specs = "now-c, now-ca, now-cab, fattree:LxH, random:S,H,E, hypercube:D, mesh:WxH, torus:WxH, ring:N, star:N, line:N"

// Build parses spec and constructs the network. rng randomises port
// embeddings (nil keeps them deterministic).
func Build(spec string, rng *rand.Rand) (Result, error) {
	name, arg, _ := strings.Cut(spec, ":")
	nums := func(want int) ([]int, error) {
		parts := strings.FieldsFunc(arg, func(r rune) bool { return r == ',' || r == 'x' })
		if len(parts) != want {
			return nil, fmt.Errorf("genspec: %q: want %d numbers, have %d", spec, want, len(parts))
		}
		out := make([]int, want)
		for i, p := range parts {
			v, err := strconv.Atoi(p)
			if err != nil {
				return nil, fmt.Errorf("genspec: %q: %v", spec, err)
			}
			if v < 1 {
				return nil, fmt.Errorf("genspec: %q: numbers must be positive", spec)
			}
			out[i] = v
		}
		return out, nil
	}
	sys := func(s *cluster.System) (Result, error) {
		return Result{Net: s.Net, Utility: s.Net.NameOf(s.Utility)}, nil
	}
	switch name {
	case "now-c":
		return sys(cluster.CConfig(rng))
	case "now-ca":
		return sys(cluster.CAConfig(rng))
	case "now-cab":
		return sys(cluster.CABConfig(rng))
	case "fattree":
		v, err := nums(2)
		if err != nil {
			return Result{}, err
		}
		if v[1] > topology.SwitchPorts-2 {
			return Result{}, fmt.Errorf("genspec: %q: at most %d hosts per leaf", spec, topology.SwitchPorts-2)
		}
		return Result{Net: topology.FatTree(topology.FatTreeSpec{
			LeafSwitches: v[0], HostsPerLeaf: v[1],
			MidSwitches: (v[0] + 1) / 2, RootSwitches: 1,
			UplinksPerLeaf: 2, UplinksPerMid: 1,
		}, rng)}, nil
	case "random":
		v, err := nums(3)
		if err != nil {
			return Result{}, err
		}
		if v[1] > 4*v[0] {
			return Result{}, fmt.Errorf("genspec: %q: at most %d hosts for %d switches", spec, 4*v[0], v[0])
		}
		if rng == nil {
			rng = rand.New(rand.NewSource(1))
		}
		return Result{Net: topology.RandomConnected(v[0], v[1], v[2], rng)}, nil
	case "hypercube":
		v, err := nums(1)
		if err != nil {
			return Result{}, err
		}
		if v[0] > topology.SwitchPorts-1 {
			return Result{}, fmt.Errorf("genspec: %q: dimension at most %d", spec, topology.SwitchPorts-1)
		}
		return Result{Net: topology.Hypercube(v[0], 1, rng)}, nil
	case "mesh":
		v, err := nums(2)
		if err != nil {
			return Result{}, err
		}
		return Result{Net: topology.Mesh(v[0], v[1], 2, rng)}, nil
	case "torus":
		v, err := nums(2)
		if err != nil {
			return Result{}, err
		}
		if v[0] < 3 || v[1] < 3 {
			return Result{}, fmt.Errorf("genspec: %q: torus needs sides of at least 3", spec)
		}
		return Result{Net: topology.Torus(v[0], v[1], 2, rng)}, nil
	case "ring":
		v, err := nums(1)
		if err != nil {
			return Result{}, err
		}
		if v[0] < 3 {
			return Result{}, fmt.Errorf("genspec: %q: ring needs at least 3 switches", spec)
		}
		return Result{Net: topology.Ring(v[0], 2, rng)}, nil
	case "star":
		v, err := nums(1)
		if err != nil {
			return Result{}, err
		}
		if v[0] > topology.SwitchPorts {
			return Result{}, fmt.Errorf("genspec: %q: at most %d leaves", spec, topology.SwitchPorts)
		}
		return Result{Net: topology.Star(v[0], 2, rng)}, nil
	case "line":
		v, err := nums(1)
		if err != nil {
			return Result{}, err
		}
		return Result{Net: topology.Line(v[0], 2, rng)}, nil
	}
	return Result{}, fmt.Errorf("genspec: unknown generator %q (want one of: %s)", name, Specs)
}
