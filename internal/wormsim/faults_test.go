package wormsim

import (
	"math/rand"
	"testing"

	"sanmap/internal/routes"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// TestLinkFilterKillsWorms: with a link taken out of service after route
// computation, worms whose path crosses it are destroyed instead of
// delivered; worms avoiding the link are unaffected, and a nil filter
// restores full delivery.
func TestLinkFilterKillsWorms(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := topology.MustRing(5, 1, rng)
	tab, err := routes.Compute(net, routes.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	run := func(deadWire int) Stats {
		s := New(net, simnet.DefaultTiming())
		if deadWire >= 0 {
			s.SetLinkFilter(func(h simnet.DirectedHop) bool { return h.Wire == deadWire })
		}
		injectPermutation(t, s, net, tab, 1)
		return s.Run()
	}

	clean := run(-1)
	if clean.Delivered != clean.Injected {
		t.Fatalf("nil filter run lost worms: %+v", clean)
	}

	// Find a wire at least one route crosses: use the first hop of the
	// first host's route to its shifted partner.
	hosts := net.Hosts()
	route, _ := tab.Route(hosts[0], hosts[1%len(hosts)])
	eval := simnet.New(net, simnet.PacketModel, simnet.DefaultTiming())
	_, hops := eval.EvalPath(hosts[0], route)
	if len(hops) == 0 {
		t.Fatalf("route has no hops")
	}
	dead := hops[1].Wire // a switch-side link, not the host's own cable

	faulty := run(dead)
	if faulty.Deadlocked == 0 {
		t.Errorf("no worm died crossing the dead link: %+v", faulty)
	}
	if faulty.Delivered == 0 {
		t.Errorf("every worm died — the filter killed paths that avoid the link: %+v", faulty)
	}
	if faulty.Delivered+faulty.Deadlocked != faulty.Injected {
		t.Errorf("worms unaccounted for: %+v", faulty)
	}
}
