package wormsim

import (
	"math/rand"
	"testing"
	"time"

	"sanmap/internal/routes"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// injectPermutation launches one worm per host to a shifted partner, all at
// t=0 — the classic all-at-once permutation that exposes routing deadlock.
func injectPermutation(t *testing.T, s *Sim, net *topology.Network, tab *routes.Table, shift int) {
	t.Helper()
	hosts := net.Hosts()
	for i, src := range hosts {
		dst := hosts[(i+shift)%len(hosts)]
		if dst == src {
			continue
		}
		route, ok := tab.Route(src, dst)
		if !ok {
			t.Fatalf("no route %s -> %s", net.NameOf(src), net.NameOf(dst))
		}
		if err := s.Inject(0, src, route); err != nil {
			t.Fatal(err)
		}
	}
}

// TestUpDownNeverDeadlocks: hold-and-wait circuit acquisition with
// UP*/DOWN* routes delivers every worm on every topology tried — the
// operational meaning of the acyclic channel-dependency graph.
func TestUpDownNeverDeadlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	nets := map[string]*topology.Network{
		"torus":     topology.MustTorus(4, 4, 1, rng),
		"hypercube": topology.MustHypercube(3, 1, rng),
		"ring":      topology.MustRing(6, 1, rng),
		"mesh":      topology.MustMesh(3, 3, 1, rng),
	}
	for name, net := range nets {
		net := net
		t.Run(name, func(t *testing.T) {
			tab, err := routes.Compute(net, routes.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			for shift := 1; shift < net.NumHosts(); shift++ {
				s := New(net, simnet.DefaultTiming())
				injectPermutation(t, s, net, tab, shift)
				st := s.Run()
				if st.Deadlocked != 0 {
					t.Fatalf("shift %d: %d worms deadlocked under UP*/DOWN*", shift, st.Deadlocked)
				}
				if st.Delivered != st.Injected {
					t.Fatalf("shift %d: delivered %d of %d", shift, st.Delivered, st.Injected)
				}
			}
		})
	}
}

// TestShortestPathsDeadlock: the same experiment with naive shortest-path
// routes must produce at least one actual deadlock on a cyclic topology for
// some permutation — the reason the §5.5 pipeline exists.
func TestShortestPathsDeadlock(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := topology.MustTorus(4, 4, 1, rng)
	tab, err := routes.ShortestPaths(net)
	if err != nil {
		t.Fatal(err)
	}
	// The dependency graph is cyclic; confirm that translates into real
	// deadlock under some permutation.
	if err := tab.VerifyDeadlockFree(); err == nil {
		t.Fatal("expected a cyclic dependency graph on the torus")
	}
	deadlocks := 0
	for shift := 1; shift < net.NumHosts(); shift++ {
		s := New(net, simnet.DefaultTiming())
		injectPermutation(t, s, net, tab, shift)
		st := s.Run()
		deadlocks += st.Deadlocked
		if st.Delivered+st.Deadlocked != st.Injected {
			t.Fatalf("shift %d: %d delivered + %d dead != %d injected",
				shift, st.Delivered, st.Deadlocked, st.Injected)
		}
	}
	if deadlocks == 0 {
		t.Fatal("no permutation deadlocked naive torus routes; expected at least one")
	}
	t.Logf("naive shortest paths on a 4x4 torus: %d worms deadlock-broken across all shifts", deadlocks)
}

// TestDeadlockBreakUnblocksOthers: after the hardware break, the surviving
// worms of the cycle complete.
func TestDeadlockBreakUnblocksOthers(t *testing.T) {
	// Hand-built 3-switch ring with one host each; three worms chase each
	// other around the ring: a guaranteed 3-cycle.
	net := &topology.Network{}
	var sw [3]topology.NodeID
	var hs [3]topology.NodeID
	for i := range sw {
		sw[i] = net.AddSwitch("")
	}
	for i := range hs {
		hs[i] = net.AddHost(string(rune('a' + i)))
		net.MustConnect(hs[i], 0, sw[i], 0)
	}
	net.MustConnect(sw[0], 1, sw[1], 2)
	net.MustConnect(sw[1], 1, sw[2], 2)
	net.MustConnect(sw[2], 1, sw[0], 2)

	s := New(net, simnet.DefaultTiming())
	// Each host sends to the next host clockwise THROUGH the third switch
	// (the long way), so every worm holds one ring link and wants the next.
	longWay := func(i int) simnet.Route {
		// host i -> sw i (entry 0): exit port 2 is the "counter-clockwise"
		// wire toward sw (i-1)... build by evaluation: exit 1 then 1 then
		// into host: sw i (entry 0) turn +1 -> port 1 -> next switch
		// (entry 2): turn -1 -> port 1 -> next-next switch (entry 2):
		// turn -2 -> port 0 -> host.
		return simnet.Route{1, -1, -2}
	}
	for i := range hs {
		if err := s.Inject(0, hs[i], longWay(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Run()
	if st.Deadlocked == 0 {
		t.Fatalf("expected the 3-cycle to deadlock: %+v", st)
	}
	if st.Delivered+st.Deadlocked != 3 {
		t.Fatalf("worms unaccounted for: %+v", st)
	}
	if st.Delivered == 0 {
		t.Fatalf("breaking the deadlock should let survivors finish: %+v", st)
	}
	if st.End < simnet.DefaultTiming().BlockedPortReset {
		t.Fatalf("break fired before the deadlock timeout: %+v", st)
	}
}

// TestStaggeredInjectionAvoidsWaits: worms injected far apart never
// contend.
func TestStaggeredInjectionAvoidsWaits(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := topology.MustRing(4, 1, rng)
	tab, err := routes.Compute(net, routes.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := New(net, simnet.DefaultTiming())
	hosts := net.Hosts()
	gap := time.Millisecond
	for i, src := range hosts {
		dst := hosts[(i+1)%len(hosts)]
		route, _ := tab.Route(src, dst)
		if err := s.Inject(time.Duration(i)*gap, src, route); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Run()
	if st.Waits != 0 || st.Deadlocked != 0 || st.Delivered != st.Injected {
		t.Fatalf("staggered worms should glide through: %+v", st)
	}
}

// TestInjectRejectsBadRoute.
func TestInjectRejectsBadRoute(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := topology.MustLine(2, 1, rng)
	s := New(net, simnet.DefaultTiming())
	if err := s.Inject(0, net.Hosts()[0], simnet.Route{7, 7, 7}); err == nil {
		t.Fatal("accepted an undeliverable route")
	}
}
