// Package wormsim simulates wormhole/circuit switching with hold-and-wait
// link acquisition — the regime in which routing deadlock physically
// happens, and therefore the reason the paper derives UP*/DOWN* routes
// from its maps instead of plain shortest paths (§5.5).
//
// Each worm acquires the directed links of its path in order and holds
// everything acquired until it is delivered ("a message can form a circuit
// from the source to destination", §1.1); a worm that needs a busy link
// waits. Circular waits are true deadlocks: the simulator detects them on
// the wait-for graph and, like the Myrinet hardware, breaks them after the
// deadlock timeout ("Switches automatically detect and break message
// deadlock in 50 ms") by destroying a participant.
//
// The headline experiment (wormsim_test.go, examples): permutation traffic
// on a torus deadlocks under shortest-path routes and never under
// UP*/DOWN* — the Dally-Seitz channel-dependency argument made executable.
package wormsim

import (
	"fmt"
	"time"

	"sanmap/internal/eventq"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// Stats summarises a run.
type Stats struct {
	Injected  int
	Delivered int
	// Deadlocked counts worms destroyed by deadlock breaking.
	Deadlocked int
	// CyclesBroken counts distinct circular waits resolved.
	CyclesBroken int
	// Waits counts link-acquisition attempts that had to wait.
	Waits int
	// MaxWait is the longest successful (non-fatal) wait.
	MaxWait time.Duration
	// End is the virtual time at which the last event fired.
	End time.Duration
}

// worm is one in-flight message.
type worm struct {
	id      int
	src     topology.NodeID
	dst     topology.NodeID
	hops    []simnet.DirectedHop
	next    int // index of the next link to acquire
	holding []simnet.DirectedHop
	// waiting is the link the worm is blocked on (next hop) when blocked.
	blocked   bool
	waitStart time.Duration
	dead      bool
	done      bool
	// mark is the cycle-detection stamp: equal to Sim.cycleGen when this
	// worm was visited by the current inCycle walk.
	mark uint32
}

// Sim is a one-shot wormhole simulation: inject worms, Run, read Stats.
type Sim struct {
	net    *topology.Network
	eval   *simnet.Net
	timing simnet.Timing

	owner   map[simnet.DirectedHop]*worm
	waiters map[simnet.DirectedHop][]*worm
	worms   []*worm

	events *eventq.Bucketed[event]
	seq    int64
	now    time.Duration
	// down, when non-nil, reports links the fault layer has taken out of
	// service; a worm that tries to acquire one is destroyed on the spot
	// (the flit hits a dead port and the hardware drops the message).
	down func(simnet.DirectedHop) bool
	// cycleGen is bumped per inCycle walk; worms stamped with it are the
	// walk's visited set (no per-call map allocation).
	cycleGen uint32

	stats Stats
}

// New creates a simulation over the network.
func New(net *topology.Network, timing simnet.Timing) *Sim {
	// The event times cluster at now+SwitchLatency (hop acquisitions) and
	// now+serialisation (deliveries), so a calendar queue pops in O(1); the
	// sparse BlockedPortReset break timers (55 ms out) ride in its overflow
	// heap. Buckets an eighth of a SwitchLatency wide keep the population
	// of any one bucket small even when a release storm wakes many blocked
	// worms at the same instant (a wake lands at "now", the front of its
	// bucket, and pays for every event sorted after it in that bucket).
	width := int64(timing.SwitchLatency) / 8
	if width <= 0 {
		width = 1
	}
	return &Sim{
		net: net,
		// Path evaluation uses packet semantics: legal routes are simple
		// paths; occupancy is modelled here, not in the evaluator.
		eval:    simnet.New(net, simnet.PacketModel, timing),
		timing:  timing,
		owner:   make(map[simnet.DirectedHop]*worm),
		waiters: make(map[simnet.DirectedHop][]*worm),
		events:  eventq.NewBucketed(width, 256, eventAt, eventLess),
	}
}

// SetLinkFilter installs the link-outage predicate consulted on every
// acquisition. A nil filter (the default) restores fault-free behaviour;
// the nil check is a branch on a cold field, so the acquire hot path stays
// allocation-free and analyzer-clean either way.
func (s *Sim) SetLinkFilter(down func(simnet.DirectedHop) bool) { s.down = down }

type event struct {
	at   time.Duration
	seq  int64
	w    *worm
	kind eventKind
}

type eventKind uint8

const (
	evAcquire eventKind = iota // try to take the worm's next link
	evDeliver                  // tail drained: release everything
	evBreak                    // deadlock timeout fired
)

// eventAt is the calendar queue's bucketing key.
//
//sanlint:hotpath
func eventAt(e event) int64 { return int64(e.at) }

// eventLess orders by virtual time, sequence number breaking ties so equal
// timestamps dispatch in scheduling order.
func eventLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

//sanlint:hotpath
func (s *Sim) push(at time.Duration, w *worm, kind eventKind) {
	s.events.Push(event{at: at, seq: s.seq, w: w, kind: kind})
	s.seq++
}

// Inject schedules a worm from src along the given source route at time at.
// The route must evaluate to a delivery on the quiescent network.
func (s *Sim) Inject(at time.Duration, src topology.NodeID, route simnet.Route) error {
	res, hops := s.eval.EvalPath(src, route)
	if res.Outcome != simnet.Delivered {
		return fmt.Errorf("wormsim: route %v from %s does not deliver: %v",
			route, s.net.NameOf(src), res.Outcome)
	}
	w := &worm{id: len(s.worms), src: src, dst: res.Dest, hops: hops}
	s.worms = append(s.worms, w)
	if n := len(s.worms); n&(n-1) == 0 {
		// Track the break-timer high-water mark (at most one pending per
		// worm) in power-of-two steps; Reserve's doubling keeps this O(n).
		s.events.Reserve(n)
	}
	s.stats.Injected++
	s.push(at, w, evAcquire)
	return nil
}

// Run processes events to completion and returns the statistics.
//
//sanlint:hotpath
func (s *Sim) Run() Stats {
	for s.events.Len() > 0 {
		ev := s.events.Pop()
		s.now = ev.at
		w := ev.w
		if w.dead || w.done {
			continue
		}
		switch ev.kind {
		case evAcquire:
			s.acquire(w)
		case evDeliver:
			s.deliver(w)
		case evBreak:
			if w.blocked && s.now-w.waitStart >= s.timing.BlockedPortReset {
				s.kill(w)
			}
		}
	}
	s.stats.End = s.now
	return s.stats
}

// acquire attempts to take w's next link.
//
//sanlint:hotpath
func (s *Sim) acquire(w *worm) {
	if w.next >= len(w.hops) {
		// All links held; the head is at the destination. Deliver after
		// the serialisation time.
		s.push(s.now+time.Duration(simnet.MessageBytes(len(w.hops)))*s.timing.ByteTime,
			w, evDeliver)
		return
	}
	link := w.hops[w.next]
	if s.down != nil && s.down(link) {
		s.kill(w)
		return
	}
	if holder, busy := s.owner[link]; busy && holder != w {
		if !w.blocked {
			w.blocked = true
			w.waitStart = s.now
			s.stats.Waits++
			s.waiters[link] = append(s.waiters[link], w)
			// Deadlock detection on the wait-for graph; true cycles get a
			// break timer, acyclic waits simply queue.
			if s.inCycle(w) {
				s.stats.CyclesBroken++
				s.push(s.now+s.timing.BlockedPortReset, w, evBreak)
			}
		}
		return
	}
	if w.blocked {
		if wait := s.now - w.waitStart; wait > s.stats.MaxWait {
			s.stats.MaxWait = wait
		}
		w.blocked = false
	}
	s.owner[link] = w
	w.holding = append(w.holding, link)
	w.next++
	s.push(s.now+s.timing.SwitchLatency, w, evAcquire)
}

// deliver completes a worm and releases its circuit.
//
//sanlint:hotpath
func (s *Sim) deliver(w *worm) {
	w.done = true
	s.stats.Delivered++
	s.release(w)
}

// kill destroys a deadlocked worm (the hardware's deadlock break).
//
//sanlint:hotpath
func (s *Sim) kill(w *worm) {
	w.dead = true
	w.blocked = false
	s.stats.Deadlocked++
	s.release(w)
}

// release frees all links w holds and reschedules the first waiter of each.
//
//sanlint:hotpath
func (s *Sim) release(w *worm) {
	for _, link := range w.holding {
		if s.owner[link] == w {
			delete(s.owner, link)
		}
		// Wake waiters: the first live one gets an immediate acquire try.
		q := s.waiters[link]
		for len(q) > 0 {
			cand := q[0]
			q = q[1:]
			if !cand.dead && !cand.done {
				s.push(s.now, cand, evAcquire)
				break
			}
		}
		s.waiters[link] = q
	}
	w.holding = nil
}

// inCycle reports whether w participates in a circular wait: follow
// "waits-for link owned by" edges from w; a return to w is a deadlock.
//
//sanlint:hotpath
func (s *Sim) inCycle(w *worm) bool {
	// Generation stamps replace a per-call visited map: a worm whose mark
	// equals the current generation has been seen in this walk.
	s.cycleGen++
	cur := w
	for {
		if cur.next >= len(cur.hops) || !cur.blocked {
			return false
		}
		holder, busy := s.owner[cur.hops[cur.next]]
		if !busy {
			return false
		}
		if holder == w {
			return true
		}
		if holder.mark == s.cycleGen {
			return false // a cycle not through w; its own detection handles it
		}
		holder.mark = s.cycleGen
		cur = holder
	}
}
