// Package place optimizes task-to-host placement against a measured demand
// matrix: given the routes a mapped fabric actually yields, where should
// communicating tasks live so their traffic crosses the fewest (and least
// shared) links?
//
// This closes the map→traffic loop from the placement side: sanmap produces
// the topology, routes derives deadlock-free paths, loadsim measures the
// demand matrix under load — and place consumes all three to relocate work.
// The optimizer is an exact branch-and-bound over permutations of the host
// set: a best-first search ordered by an admissible communication-cost lower
// bound, pruned by per-link bandwidth constraints, with an incumbent seeded
// from the better of identity and greedy placement so the result can never
// be worse than leaving tasks where they are. All tie-breaks are
// deterministic (bound, then insertion sequence), so equal inputs yield
// equal placements.
package place

import (
	"fmt"
	"math"
	"sort"

	"sanmap/internal/eventq"
	"sanmap/internal/faults"
	"sanmap/internal/routes"
	"sanmap/internal/topology"
	"sanmap/internal/workload"
)

// Config bounds the search.
type Config struct {
	// LinkCapacity, when positive, is the per-directed-link demand budget in
	// bytes: placements routing more aggregate demand than this over any
	// single link are pruned as infeasible.
	LinkCapacity int64
	// MaxExpand caps node expansions; past it the search returns the best
	// incumbent with Optimal=false. Default 200000.
	MaxExpand int
}

// DefaultConfig returns the default search bounds.
func DefaultConfig() Config { return Config{MaxExpand: 200000} }

// Result is a placement: task i (row i of the demand matrix) runs on
// Hosts[i].
type Result struct {
	Hosts []topology.NodeID
	// Cost is the total communication cost: demand bytes × route hops,
	// summed over ordered task pairs.
	Cost int64
	// Expanded counts branch-and-bound node expansions.
	Expanded int
	// Optimal reports whether the search ran to completion (false when the
	// MaxExpand budget cut it short — Hosts is still the best found, and
	// never worse than identity).
	Optimal bool
}

// problem is the shared precomputed state: directed-link paths and hop
// distances between every host pair, and the demand volumes.
type problem struct {
	hosts []topology.NodeID
	n     int
	dist  [][]int32 // hops between host i and host j
	paths [][]int32 // directed link ids (2*wire+dir) per ordered pair i*n+j
	// vol[t][u] is the demand between tasks t and u in both directions —
	// cost is symmetric in the hop metric, so fold once here.
	vol [][]int64
	// order is the branching order: tasks by total volume descending.
	order []int
	// minHop is the smallest nonzero inter-host distance, the admissible
	// stand-in for pairs of still-unplaced tasks.
	minHop int64
	cap    int64
}

// build precomputes the problem from the route table and demand matrix.
func build(tab *routes.Table, m *workload.Matrix, cfg Config) (*problem, error) {
	n := len(m.Hosts)
	if n < 2 {
		return nil, fmt.Errorf("place: need at least two hosts, have %d", n)
	}
	p := &problem{hosts: m.Hosts, n: n, cap: cfg.LinkCapacity, minHop: math.MaxInt64}
	p.dist = make([][]int32, n)
	p.paths = make([][]int32, n*n)
	for i := range p.dist {
		p.dist[i] = make([]int32, n)
		for j := range p.dist[i] {
			if i == j {
				continue
			}
			wires, ok := tab.WirePath(m.Hosts[i], m.Hosts[j])
			if !ok {
				return nil, fmt.Errorf("place: no route %d -> %d", m.Hosts[i], m.Hosts[j])
			}
			path := make([]int32, len(wires))
			cur := m.Hosts[i]
			for k, wi := range wires {
				w := tab.Net.WireByIndex(wi)
				id := int32(2 * wi)
				if w.A.Node != cur {
					id++
					cur = w.A.Node
				} else {
					cur = w.B.Node
				}
				path[k] = id
			}
			p.paths[i*n+j] = path
			p.dist[i][j] = int32(len(wires))
			if d := int64(len(wires)); d > 0 && d < p.minHop {
				p.minHop = d
			}
		}
	}
	p.vol = make([][]int64, n)
	totals := make([]int64, n)
	for t := range p.vol {
		p.vol[t] = make([]int64, n)
		for u := range p.vol[t] {
			if t == u {
				continue
			}
			p.vol[t][u] = m.Bytes[t][u] + m.Bytes[u][t]
			totals[t] += p.vol[t][u]
		}
	}
	p.order = make([]int, n)
	for i := range p.order {
		p.order[i] = i
	}
	// Branch the heaviest communicators first: their placement moves the
	// bound most, so bad subtrees die early (ties: task index).
	sort.SliceStable(p.order, func(a, b int) bool {
		return totals[p.order[a]] > totals[p.order[b]]
	})
	return p, nil
}

// cost evaluates a complete placement: perm[t] is the host index task t
// runs on. Each unordered pair is counted once with its folded volume.
func (p *problem) cost(perm []int) int64 {
	var c int64
	for t := 0; t < p.n; t++ {
		for u := t + 1; u < p.n; u++ {
			c += p.vol[t][u] * int64(p.dist[perm[t]][perm[u]])
		}
	}
	return c
}

// feasible checks the per-link bandwidth budget over the first k placed
// tasks (in branching order). Directed demand routes over the directed
// path, so both directions of a pair load their own links.
func (p *problem) feasible(perm []int, k int, m *workload.Matrix, use map[int32]int64) bool {
	if p.cap <= 0 {
		return true
	}
	for id := range use {
		delete(use, id)
	}
	for a := 0; a < k; a++ {
		t := p.order[a]
		for b := 0; b < k; b++ {
			if a == b {
				continue
			}
			u := p.order[b]
			d := m.Bytes[t][u]
			if d == 0 {
				continue
			}
			for _, id := range p.paths[perm[t]*p.n+perm[u]] {
				use[id] += d
				if use[id] > p.cap {
					return false
				}
			}
		}
	}
	return true
}

// node is one partial assignment in the search tree.
type node struct {
	perm  []int // perm[t] = host index, -1 unassigned; indexed by task
	used  []bool
	depth int   // tasks placed, in p.order order
	g     int64 // exact cost among placed tasks
	f     int64 // g + admissible remainder bound
	seq   int64 // insertion order, the deterministic tie-break
}

func nodeLess(a, b *node) bool {
	if a.f != b.f {
		return a.f < b.f
	}
	if a.depth != b.depth {
		return a.depth > b.depth // deeper first: reach incumbents sooner
	}
	return a.seq < b.seq
}

// bound completes g with an admissible estimate of the unplaced remainder:
// placed↔unplaced volume travels at least the placed host's distance to its
// nearest free host; unplaced↔unplaced volume at least minHop.
func (p *problem) bound(nd *node) int64 {
	b := nd.g
	// Nearest free host per placed task, computed once per node.
	for a := 0; a < nd.depth; a++ {
		t := p.order[a]
		ht := nd.perm[t]
		var nearest int64 = math.MaxInt64
		for h := 0; h < p.n; h++ {
			if nd.used[h] || int64(p.dist[ht][h]) >= nearest {
				continue
			}
			nearest = int64(p.dist[ht][h])
		}
		if nearest == math.MaxInt64 {
			continue
		}
		for bi := nd.depth; bi < p.n; bi++ {
			b += p.vol[t][p.order[bi]] * nearest
		}
	}
	for a := nd.depth; a < p.n; a++ {
		for bi := a + 1; bi < p.n; bi++ {
			b += p.vol[p.order[a]][p.order[bi]] * p.minHop
		}
	}
	return b
}

// Identity returns the do-nothing placement: task i stays on m.Hosts[i].
func Identity(m *workload.Matrix) []topology.NodeID {
	return append([]topology.NodeID(nil), m.Hosts...)
}

// Shuffled returns a seeded random permutation placement — the baseline a
// scheduler ignorant of topology would produce.
func Shuffled(m *workload.Matrix, seed uint64) []topology.NodeID {
	rng := faults.NewSource(seed)
	out := Identity(m)
	r := func(n int) int { return int(rng.Uint64() % uint64(n)) }
	for i := len(out) - 1; i > 0; i-- {
		j := r(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// Cost evaluates a placement against the demand matrix over the table's
// routes: demand bytes × route hops, summed over ordered task pairs.
func Cost(tab *routes.Table, m *workload.Matrix, hosts []topology.NodeID) (int64, error) {
	if len(hosts) != len(m.Hosts) {
		return 0, fmt.Errorf("place: placement has %d hosts, matrix %d", len(hosts), len(m.Hosts))
	}
	var c int64
	for t := range hosts {
		for u := range hosts {
			if t == u || m.Bytes[t][u] == 0 {
				continue
			}
			wires, ok := tab.WirePath(hosts[t], hosts[u])
			if !ok {
				return 0, fmt.Errorf("place: no route %d -> %d", hosts[t], hosts[u])
			}
			c += m.Bytes[t][u] * int64(len(wires))
		}
	}
	return c, nil
}

// MaxLinkDemand returns the heaviest per-directed-link aggregated demand a
// placement routes — the quantity Config.LinkCapacity bounds. Useful for
// checking a placement against a budget after the fact.
func MaxLinkDemand(tab *routes.Table, m *workload.Matrix, hosts []topology.NodeID) (int64, error) {
	if len(hosts) != len(m.Hosts) {
		return 0, fmt.Errorf("place: placement has %d hosts, matrix %d", len(hosts), len(m.Hosts))
	}
	use := make(map[int64]int64)
	for t := range hosts {
		for u := range hosts {
			if t == u || m.Bytes[t][u] == 0 {
				continue
			}
			wires, ok := tab.WirePath(hosts[t], hosts[u])
			if !ok {
				return 0, fmt.Errorf("place: no route %d -> %d", hosts[t], hosts[u])
			}
			cur := hosts[t]
			for _, wi := range wires {
				w := tab.Net.WireByIndex(wi)
				id := int64(2 * wi)
				if w.A.Node != cur {
					id++
					cur = w.A.Node
				} else {
					cur = w.B.Node
				}
				use[id] += m.Bytes[t][u]
			}
		}
	}
	var max int64
	for _, v := range use {
		if v > max {
			max = v
		}
	}
	return max, nil
}

// greedy places tasks in branching order, each on the free host minimizing
// the incremental cost against already-placed tasks (ties: lowest host
// index). It seeds the incumbent together with identity.
func (p *problem) greedy() []int {
	perm := make([]int, p.n)
	used := make([]bool, p.n)
	for i := range perm {
		perm[i] = -1
	}
	for a := 0; a < p.n; a++ {
		t := p.order[a]
		bestH, bestC := -1, int64(math.MaxInt64)
		for h := 0; h < p.n; h++ {
			if used[h] {
				continue
			}
			var c int64
			for b := 0; b < a; b++ {
				u := p.order[b]
				c += p.vol[t][u] * int64(p.dist[h][perm[u]])
			}
			if c < bestC {
				bestH, bestC = h, c
			}
		}
		perm[t] = bestH
		used[bestH] = true
	}
	return perm
}

// Optimize runs the branch-and-bound search and returns the best placement
// found. The incumbent starts at the better of identity and greedy, so the
// returned cost is never above the identity placement's.
func Optimize(tab *routes.Table, m *workload.Matrix, cfg Config) (*Result, error) {
	if cfg.MaxExpand <= 0 {
		cfg.MaxExpand = DefaultConfig().MaxExpand
	}
	p, err := build(tab, m, cfg)
	if err != nil {
		return nil, err
	}
	use := make(map[int32]int64)
	// Incumbent: identity, improved by greedy — each only when it fits the
	// bandwidth budget. With no feasible seed the search starts unbounded.
	var best []int
	bestCost := int64(math.MaxInt64)
	id := make([]int, p.n)
	for i := range id {
		id[i] = i
	}
	if p.feasible(id, p.n, m, use) {
		best, bestCost = id, p.cost(id)
	}
	if g := p.greedy(); p.feasible(g, p.n, m, use) {
		if c := p.cost(g); c < bestCost {
			best, bestCost = g, c
		}
	}
	q := eventq.New(nodeLess)
	root := &node{perm: make([]int, p.n), used: make([]bool, p.n)}
	for i := range root.perm {
		root.perm[i] = -1
	}
	root.f = p.bound(root)
	q.Push(root)
	var seq int64
	expanded := 0
	optimal := true
	for q.Len() > 0 {
		nd := q.Pop()
		if nd.f >= bestCost {
			// Best-first: every remaining node is at least as bad.
			break
		}
		if expanded >= cfg.MaxExpand {
			optimal = false
			break
		}
		expanded++
		t := p.order[nd.depth]
		for h := 0; h < p.n; h++ {
			if nd.used[h] {
				continue
			}
			g := nd.g
			for b := 0; b < nd.depth; b++ {
				u := p.order[b]
				g += p.vol[t][u] * int64(p.dist[h][nd.perm[u]])
			}
			if g >= bestCost {
				continue
			}
			child := &node{
				perm:  append([]int(nil), nd.perm...),
				used:  append([]bool(nil), nd.used...),
				depth: nd.depth + 1,
				g:     g,
			}
			child.perm[t] = h
			child.used[h] = true
			if !p.feasible(child.perm, child.depth, m, use) {
				continue
			}
			if child.depth == p.n {
				if g < bestCost {
					best, bestCost = child.perm, g
				}
				continue
			}
			child.f = p.bound(child)
			if child.f >= bestCost {
				continue
			}
			seq++
			child.seq = seq
			q.Push(child)
		}
	}
	if best == nil {
		return nil, fmt.Errorf("place: no placement satisfies link capacity %d within budget", cfg.LinkCapacity)
	}
	res := &Result{Cost: bestCost, Expanded: expanded, Optimal: optimal}
	res.Hosts = make([]topology.NodeID, p.n)
	for t, h := range best {
		res.Hosts[t] = p.hosts[h]
	}
	return res, nil
}
