package place

import (
	"testing"

	"sanmap/internal/genspec"
	"sanmap/internal/routes"
	"sanmap/internal/topology"
	"sanmap/internal/workload"
)

// fabric builds a generated topology and its route table.
func fabric(t *testing.T, spec string) *routes.Table {
	t.Helper()
	res, err := genspec.Build(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := routes.Compute(res.Net, routes.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// antiLocal pairs host i with host n-1-i at heavy volume: adjacent in the
// matrix but far apart on pod-structured fabrics, so identity placement is
// deliberately bad and co-location pays.
func antiLocal(hosts []topology.NodeID) *workload.Matrix {
	m := workload.NewMatrix(hosts)
	n := len(hosts)
	for i := 0; i < n/2; i++ {
		m.Bytes[i][n-1-i] = 1 << 20
		m.Bytes[n-1-i][i] = 1 << 20
	}
	return m
}

// TestBeatsIdentityAndRandom: on fat-tree and dragonfly fabrics the
// optimizer must strictly beat the identity placement on an adversarial
// demand matrix, and never lose to the random baseline.
func TestBeatsIdentityAndRandom(t *testing.T) {
	for _, spec := range []string{"fattree2:8x2", "dragonfly:2,2,1"} {
		tab := fabric(t, spec)
		m := antiLocal(tab.Net.Hosts())
		res, err := Optimize(tab, m, DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		idCost, err := Cost(tab, m, Identity(m))
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost >= idCost {
			t.Errorf("%s: optimized %d !< identity %d", spec, res.Cost, idCost)
		}
		got, err := Cost(tab, m, res.Hosts)
		if err != nil {
			t.Fatal(err)
		}
		if got != res.Cost {
			t.Errorf("%s: reported cost %d, recomputed %d", spec, res.Cost, got)
		}
		for _, seed := range []uint64{1, 2, 3} {
			rndCost, err := Cost(tab, m, Shuffled(m, seed))
			if err != nil {
				t.Fatal(err)
			}
			if res.Cost > rndCost {
				t.Errorf("%s: optimized %d > random(seed=%d) %d", spec, res.Cost, seed, rndCost)
			}
		}
		t.Logf("%s: hosts=%d identity=%d optimized=%d expanded=%d optimal=%v",
			spec, len(m.Hosts), idCost, res.Cost, res.Expanded, res.Optimal)
	}
}

// TestOptimalOnTinyFabric: small enough to enumerate, the search must find
// the true optimum — co-locating the one hot pair on the same switch.
func TestOptimalOnTinyFabric(t *testing.T) {
	net := &topology.Network{}
	var hosts []topology.NodeID
	s0, s1 := net.AddSwitch("s0"), net.AddSwitch("s1")
	for i, sw := range []topology.NodeID{s0, s0, s1, s1} {
		h := net.AddHost(string(rune('a' + i)))
		hosts = append(hosts, h)
		if _, _, _, err := net.ConnectFree(h, sw); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, _, err := net.ConnectFree(s0, s1); err != nil {
		t.Fatal(err)
	}
	tab, err := routes.Compute(net, routes.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Only tasks 0 and 2 talk; identity puts them across the s0--s1 wire
	// (4 hops), optimal co-locates them on one switch (2 hops).
	m := workload.NewMatrix(hosts)
	m.Bytes[0][2] = 1000
	res, err := Optimize(tab, m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal {
		t.Error("tiny search did not complete")
	}
	if res.Cost != 2000 {
		t.Errorf("cost %d, want 2000 (co-located pair)", res.Cost)
	}
}

// TestDeterministicPlacement: equal inputs yield equal placements.
func TestDeterministicPlacement(t *testing.T) {
	tab := fabric(t, "fattree2:8x2")
	m := antiLocal(tab.Net.Hosts())
	a, err := Optimize(tab, m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Optimize(tab, m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost || a.Expanded != b.Expanded {
		t.Fatalf("nondeterministic search: %+v vs %+v", a, b)
	}
	for i := range a.Hosts {
		if a.Hosts[i] != b.Hosts[i] {
			t.Fatalf("placements differ at task %d: %v vs %v", i, a.Hosts, b.Hosts)
		}
	}
}

// TestBandwidthPruning: a link capacity below the hot pair's demand forces
// the optimizer away from placements feasible only without the cap, and the
// returned placement must respect the cap.
func TestBandwidthPruning(t *testing.T) {
	tab := fabric(t, "fattree2:4x2")
	hosts := tab.Net.Hosts()
	m := workload.NewMatrix(hosts)
	// Every ordered pair among the first four tasks exchanges 100 bytes.
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j {
				m.Bytes[i][j] = 100
			}
		}
	}
	unconstrained, err := Optimize(tab, m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	// Each task's host link carries exactly 300 per direction regardless of
	// placement, so 300 is the tightest satisfiable cap — it forbids any
	// shared inter-switch link from carrying more than three pair flows.
	cfg.LinkCapacity = 300
	constrained, err := Optimize(tab, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if constrained.Cost < unconstrained.Cost {
		t.Errorf("constrained cost %d below unconstrained optimum %d",
			constrained.Cost, unconstrained.Cost)
	}
	peak, err := MaxLinkDemand(tab, m, constrained.Hosts)
	if err != nil {
		t.Fatal(err)
	}
	if peak > cfg.LinkCapacity {
		t.Errorf("constrained placement routes %d bytes over one link, cap %d", peak, cfg.LinkCapacity)
	}
	freePeak, err := MaxLinkDemand(tab, m, unconstrained.Hosts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("unconstrained cost=%d peak=%d; constrained cost=%d peak=%d",
		unconstrained.Cost, freePeak, constrained.Cost, peak)
}
