// Package mapper implements the Berkeley network mapping algorithm of the
// SPAA'97 paper "System Area Network Mapping" (§3): breadth-first-like
// exploration of an anonymous-switch network with host and switch probes,
// deductive replicate detection anchored at uniquely-named hosts, object
// merging with index-offset normalisation, and pruning. Respecting the
// paper's parameters it produces a graph isomorphic to N−F.
//
// The package contains the production variant of §3.3 (vertex objects are
// merged directly, driven by a merge list) and, in labels.go, the simplified
// §3.1 variant used in the paper's proof (vertices are never merged, only
// relabelled); tests check the two agree.
package mapper

import (
	"fmt"
	"sort"

	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// Vertex is a model-graph vertex: the record created for each non-null
// probe response (§3.1.1). Indices into the neighbour slots are *relative
// port numbers*: the turn that discovered the edge, normalised across
// merges so that replicates share a single indexing offset (Lemma 2).
type Vertex struct {
	id    int
	kind  topology.Kind
	name  string       // host name; "" for switches
	probe simnet.Route // the successful probe string that created the vertex

	// slots maps a relative port index to the edges currently claiming it.
	// The merge engine drives every slot towards at most one edge; two
	// distinct edges in a slot is the structural impossibility ("an actual
	// switch port has a single cable") that identifies more replicates.
	slots map[int][]*Edge

	explored bool
	deleted  bool

	// winLo/winHi memoize the §3.3 feasible window for this vertex; the
	// memo is valid while winGen equals the model's editGen (0 = never
	// computed). The pipelined engine re-evaluates the window for every
	// speculative submission and staleness check, so this turns an
	// O(|slots|) map walk into a pair of loads on the hot path.
	winLo, winHi int
	winGen       uint64

	// forward/fshift implement a union-find with offsets: when non-nil,
	// index i in this vertex's frame is index i+fshift in forward's frame.
	forward *Vertex
	fshift  int
}

// ID returns the vertex's creation sequence number (stable, unique).
func (v *Vertex) ID() int { return v.id }

// Kind reports host or switch.
func (v *Vertex) Kind() topology.Kind { return v.kind }

// Name reports the host name ("" for switches).
func (v *Vertex) Name() string { return v.name }

// ProbeString returns the probe string that created the vertex.
func (v *Vertex) ProbeString() simnet.Route { return v.probe }

// Edge is a model-graph edge: endpoints plus the relative port indices at
// which it attaches (§3.1.1 "edge is an object containing a reference to
// the vertex at each end of it, and the associated indices").
type Edge struct {
	a, b    *Vertex
	ai, bi  int
	deleted bool
	// mark is the edge-enumeration stamp: equal to Model.markGen when this
	// edge was visited by the current walk (no per-walk map allocations).
	mark uint32
}

// otherSide returns the endpoint of e opposite to (v, idx).
func (e *Edge) otherSide(v *Vertex, idx int) (*Vertex, int) {
	if e.a == v && e.ai == idx {
		return e.b, e.bi
	}
	return e.a, e.ai
}

// sameAs reports whether two edges connect the same (vertex, index) pairs.
func (e *Edge) sameAs(o *Edge) bool {
	if e.a == o.a && e.ai == o.ai && e.b == o.b && e.bi == o.bi {
		return true
	}
	return e.a == o.b && e.ai == o.bi && e.b == o.a && e.bi == o.ai
}

// Model is the model graph M under construction, together with the merge
// machinery of §3.3.
type Model struct {
	verts      []*Vertex
	hostByName map[string]*Vertex
	nextID     int

	// maxPorts is the switch radix the model plans for: the feasible-port
	// windows pin relative indices into {0..maxPorts-1}. newModel defaults
	// it to the paper's 8; runs override it from Config.MaxPorts.
	maxPorts int

	liveVerts int
	liveEdges int

	// editGen numbers the model's structural states: every mutation that
	// can move a feasible window (slot insertion, edge deletion, merge,
	// vertex deletion) bumps it, invalidating the per-vertex window memos.
	editGen uint64

	merges []mergeTask

	// markGen is bumped per edge-enumeration walk (merge, degree, delete);
	// edges stamped with it form the walk's visited set. edgeScratch is the
	// reusable buffer those walks collect into, and slotScratch holds the
	// sorted slot indices that keep those walks independent of map
	// iteration order.
	markGen     uint32
	edgeScratch []*Edge
	slotScratch []int

	// Inconsistencies counts deductions that contradicted each other — a
	// vertex asked to merge with itself under a non-zero offset, which is
	// impossible in a quiescent network (Lemma 2) but can happen when probe
	// responses are lost or forged (cross-traffic / fault injection).
	Inconsistencies int

	// onMerge and onDelete are optional observability hooks (trace.go).
	onMerge  func(into, victim, shift int)
	onDelete func(id int)
	// onInconsistency, when non-nil, observes every contradictory deduction
	// as it is counted, with the two (root) vertices involved. The
	// self-healing run uses it to mark the contradicted region stale and
	// schedule a scoped re-explore.
	onInconsistency func(a, b *Vertex)
}

// noteInconsistency counts one contradictory deduction and notifies the
// observer hook.
func (m *Model) noteInconsistency(a, b *Vertex) {
	m.Inconsistencies++
	if m.onInconsistency != nil {
		m.onInconsistency(a, b)
	}
}

type mergeTask struct {
	a, b  *Vertex
	shift int // index j in b's frame equals index j+shift in a's frame
}

// newModel returns an empty model graph planning for the paper's 8-port
// switches; runs override maxPorts from their configuration.
func newModel() *Model {
	return &Model{hostByName: make(map[string]*Vertex), maxPorts: topology.SwitchPorts, editGen: 1}
}

// find resolves v to its surviving root and the offset translating v-frame
// indices into root-frame indices, with path compression.
func find(v *Vertex) (*Vertex, int) {
	if v.forward == nil {
		return v, 0
	}
	root, s := find(v.forward)
	v.forward = root
	v.fshift += s
	return root, v.fshift
}

// NumVertices reports live (unmerged, unpruned) vertices.
func (m *Model) NumVertices() int { return m.liveVerts }

// NumEdges reports live model edges.
func (m *Model) NumEdges() int { return m.liveEdges }

// newVertex creates a fresh live vertex.
func (m *Model) newVertex(kind topology.Kind, name string, probe simnet.Route) *Vertex {
	v := &Vertex{id: m.nextID, kind: kind, name: name, probe: probe, slots: make(map[int][]*Edge)}
	m.nextID++
	m.verts = append(m.verts, v)
	m.liveVerts++
	return v
}

// hostVertex returns the canonical vertex for host name, creating it if
// needed. Host vertices carry the unique host id as their label (§3.1.1),
// which is why a second discovery of the same name immediately identifies
// replicates.
func (m *Model) hostVertex(name string, probe simnet.Route) (v *Vertex, created bool) {
	if hv, ok := m.hostByName[name]; ok {
		root, _ := find(hv)
		return root, false
	}
	hv := m.newVertex(topology.HostNode, name, probe)
	m.hostByName[name] = hv
	return hv, true
}

// addEdge inserts an edge between (a, ai) and (b, bi), both given in the
// frames of the (root) vertices supplied, and enqueues any merge deductions
// the insertion exposes. It returns the edge (or the existing identical
// edge if the discovery is a duplicate).
func (m *Model) addEdge(a *Vertex, ai int, b *Vertex, bi int) *Edge {
	e := &Edge{a: a, ai: ai, b: b, bi: bi}
	// Duplicate check first: rediscovering a known wire is a no-op.
	for _, prev := range a.slots[ai] {
		if prev.sameAs(e) {
			return prev
		}
	}
	m.liveEdges++
	m.insertSide(e, a, ai)
	if !(e.a == e.b && e.ai == e.bi) {
		m.insertSide(e, b, bi)
	}
	return e
}

// insertSide files edge e into v.slots[idx] and enqueues replicate
// deductions against the edges already claiming that slot: "multiple links
// incident to a switch port identify additional replicates" (§1.2).
func (m *Model) insertSide(e *Edge, v *Vertex, idx int) {
	m.editGen++
	for _, prev := range v.slots[idx] {
		if prev.deleted || prev == e {
			continue
		}
		w1, k1 := prev.otherSide(v, idx)
		w2, k2 := e.otherSide(v, idx)
		// (v, idx) has one actual cable; its far end is both (w1,k1) and
		// (w2,k2), so w1 and w2 are replicates with w2-frame shifted by
		// k1−k2 (the paper's mergeLabels re-indexing).
		m.merges = append(m.merges, mergeTask{a: w1, b: w2, shift: k1 - k2})
	}
	v.slots[idx] = append(v.slots[idx], e)
}

// processMerges drains the merge list (§3.3's mergelist loop), performing
// object merges that may themselves enqueue further merges, until the
// labelling process has stabilised.
func (m *Model) processMerges() {
	for len(m.merges) > 0 {
		t := m.merges[len(m.merges)-1]
		m.merges = m.merges[:len(m.merges)-1]
		ra, sa := find(t.a)
		rb, sb := find(t.b)
		// Translate the task into root frames: rb-frame + s ≡ ra-frame.
		s := t.shift + sa - sb
		if ra == rb {
			if s != 0 {
				m.noteInconsistency(ra, rb)
			}
			continue
		}
		// Survivor preference: explored beats unexplored (keeps the
		// exploration bookkeeping monotone), then the vertex created first.
		if (rb.explored && !ra.explored) || (rb.explored == ra.explored && rb.id < ra.id) {
			ra, rb, s = rb, ra, -s
		}
		if m.onMerge != nil {
			m.onMerge(ra.id, rb.id, s)
		}
		m.mergeInto(ra, rb, s)
	}
}

// mergeInto merges victim rb into survivor ra; index j in rb's frame
// becomes j+s in ra's.
func (m *Model) mergeInto(ra, rb *Vertex, s int) {
	m.editGen++
	if ra.kind != rb.kind {
		// A switch claimed to be a host (or vice versa): impossible under
		// quiescent probing; count and refuse.
		m.noteInconsistency(ra, rb)
		return
	}
	if rb.name != "" && ra.name != "" && ra.name != rb.name {
		// Two distinct uniquely-named hosts asked to merge: the anchors the
		// whole deduction scheme rests on (§2.3 "hosts are uniquely
		// identified") contradict each other. Count and refuse.
		m.noteInconsistency(ra, rb)
		return
	}
	if rb.name != "" && ra.name == "" {
		ra.name = rb.name
	}
	// Detach rb's edges, rewrite their rb sides, and re-file them under ra.
	// Slots are walked in sorted index order so the re-filing order (and
	// with it the exported wire order) is reproducible.
	m.markGen++
	edges := m.edgeScratch[:0]
	slots := m.slotScratch[:0]
	for i := range rb.slots {
		slots = append(slots, i)
	}
	sort.Ints(slots)
	m.slotScratch = slots
	for _, i := range slots {
		for _, e := range rb.slots[i] {
			if !e.deleted && e.mark != m.markGen {
				e.mark = m.markGen
				edges = append(edges, e)
			}
		}
	}
	m.edgeScratch = edges
	rb.slots = nil
	rb.forward = ra
	rb.fshift = s
	rb.deleted = true
	m.liveVerts--
	if rb.explored {
		ra.explored = true
	}
	for _, e := range edges {
		if e.a == rb {
			e.a, e.ai = ra, e.ai+s
		}
		if e.b == rb {
			e.b, e.bi = ra, e.bi+s
		}
		// Re-file under ra; drop if it collapses onto an identical edge.
		dup := false
		for _, prev := range ra.slots[slotOf(e, ra)] {
			if prev != e && !prev.deleted && prev.sameAs(e) {
				dup = true
				break
			}
		}
		if dup {
			e.deleted = true
			m.liveEdges--
			continue
		}
		m.insertSide(e, ra, slotOf(e, ra))
		if e.a == e.b && e.ai != e.bi {
			// A model self-loop (loopback cable): file the second side too.
			m.insertSide(e, ra, e.bi)
		}
	}
}

// slotOf returns the ra-side index of e (the a side if it is ra, else b).
func slotOf(e *Edge, v *Vertex) int {
	if e.a == v {
		return e.ai
	}
	return e.bi
}

// window returns the feasible range [lo, hi] of the absolute port number
// corresponding to relative index 0 of v, derived from the occupied slots:
// each known index i pins p0+i into {0..maxPorts-1} (§3.3's provably-safe
// probe elimination and Lemma 2's indexing offsets).
func (m *Model) window(v *Vertex) (lo, hi int) {
	if v.winGen == m.editGen {
		return v.winLo, v.winHi
	}
	lo, hi = 0, m.maxPorts-1
	for i, es := range v.slots {
		if !liveAny(es) {
			continue
		}
		if l := -i; l > lo {
			lo = l
		}
		if h := m.maxPorts - 1 - i; h < hi {
			hi = h
		}
	}
	v.winLo, v.winHi, v.winGen = lo, hi, m.editGen
	return lo, hi
}

func liveAny(es []*Edge) bool {
	for _, e := range es {
		if !e.deleted {
			return true
		}
	}
	return false
}

// feasible reports whether relative index j can possibly be a legal port
// given the window: ∃ p0 ∈ [lo,hi] with 0 ≤ p0+j ≤ maxPorts-1.
func (m *Model) feasible(j, lo, hi int) bool {
	return j >= -hi && j <= m.maxPorts-1-lo
}

// occupied reports whether slot j holds a live edge.
func (v *Vertex) occupied(j int) bool { return liveAny(v.slots[j]) }

// degree counts live edges incident to v (self-loops count twice, matching
// switch-port usage).
func (m *Model) degree(v *Vertex) int {
	d := 0
	m.markGen++
	for _, es := range v.slots {
		for _, e := range es {
			if e.deleted || e.mark == m.markGen {
				continue
			}
			e.mark = m.markGen
			d++
			if e.a == e.b {
				d++
			}
		}
	}
	return d
}

// liveVertices returns the current live vertex set.
func (m *Model) liveVertices() []*Vertex {
	out := make([]*Vertex, 0, m.liveVerts)
	for _, v := range m.verts {
		if !v.deleted {
			out = append(out, v)
		}
	}
	return out
}

// deleteVertex removes v and all its incident edges (the prune step).
func (m *Model) deleteVertex(v *Vertex) {
	if v.deleted {
		return
	}
	m.editGen++
	m.markGen++
	for _, es := range v.slots {
		for _, e := range es {
			if !e.deleted && e.mark != m.markGen {
				e.mark = m.markGen
				e.deleted = true
				m.liveEdges--
				// Remove from the far side's slot list lazily: liveAny and
				// iteration skip deleted edges.
			}
		}
	}
	v.deleted = true
	v.slots = nil
	m.liveVerts--
	if v.name != "" {
		delete(m.hostByName, v.name)
	}
	if m.onDelete != nil {
		m.onDelete(v.id)
	}
}

// check verifies internal invariants (test hook).
func (m *Model) check() error {
	for _, v := range m.verts {
		if v.deleted {
			continue
		}
		// Sorted slot order keeps the reported violation stable across runs.
		idxs := make([]int, 0, len(v.slots))
		for idx := range v.slots {
			idxs = append(idxs, idx)
		}
		sort.Ints(idxs)
		for _, idx := range idxs {
			for _, e := range v.slots[idx] {
				if e.deleted {
					continue
				}
				if (e.a == v && e.ai == idx) || (e.b == v && e.bi == idx) {
					continue
				}
				return fmt.Errorf("vertex %d slot %d holds foreign edge (%d@%d-%d@%d)",
					v.id, idx, e.a.id, e.ai, e.b.id, e.bi)
			}
		}
	}
	return nil
}
