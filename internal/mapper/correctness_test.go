package mapper

import (
	"math/rand"
	"testing"

	"sanmap/internal/isomorph"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// TestMapRandomMany is the headline Theorem 1 property test: on a spread of
// random connected multigraphs, circuit-model probing reconstructs a graph
// isomorphic to N−F.
func TestMapRandomMany(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		switches := 3 + rng.Intn(6)
		hosts := 2 + rng.Intn(2*switches)
		extra := rng.Intn(switches)
		net := topology.MustRandomConnected(switches, hosts, extra, rng)
		mapAndVerify(t, net, simnet.CircuitModel, nil)
	}
}

// TestMapWithF attaches hostless switch tails (switch-bridge-separated
// regions): the mapper must reproduce the core and prune every replica of
// the tail.
func TestMapWithF(t *testing.T) {
	for seed := int64(100); seed < 110; seed++ {
		rng := rand.New(rand.NewSource(seed))
		net := topology.MustRandomConnected(4, 5, 2, rng)
		sw := net.Switches()
		topology.WithTail(net, sw[rng.Intn(len(sw))], 1+rng.Intn(2), rng)
		f := net.F()
		if len(f) == 0 {
			t.Fatalf("seed %d: expected non-empty F", seed)
		}
		mapAndVerify(t, net, simnet.CircuitModel, nil)
	}
}

// TestMapCollisionModels verifies Theorem 1's second sentence: under
// cut-through (and trivially packet) routing with F empty, the map is
// isomorphic to the full network.
func TestMapCollisionModels(t *testing.T) {
	models := []struct {
		name  string
		model simnet.Model
	}{
		{"packet", simnet.PacketModel},
		{"cutthrough", simnet.CutThroughModel},
		{"circuit", simnet.CircuitModel},
	}
	for _, tc := range models {
		model := tc.model
		t.Run(tc.name, func(t *testing.T) {
			tested := 0
			for seed := int64(200); seed < 230 && tested < 12; seed++ {
				rng := rand.New(rand.NewSource(seed))
				net := topology.MustRandomConnected(3+rng.Intn(4), 3+rng.Intn(6), rng.Intn(3), rng)
				// Theorem 1's cut-through guarantee requires F empty ("In
				// the second collision model when F is empty, M/L is
				// isomorphic to N"); with F non-empty only the circuit
				// model is covered, so skip those networks here.
				if len(net.F()) > 0 {
					continue
				}
				tested++
				mapAndVerify(t, net, model, nil)
			}
			if tested == 0 {
				t.Fatal("no F-free networks generated")
			}
		})
	}
}

// TestReplicatePolicies checks that all three frontier policies reconstruct
// the same graph (they trade probes, not correctness, on these networks).
func TestReplicatePolicies(t *testing.T) {
	policies := []ReplicatePolicy{DedupFrontier, RetryUnknown, ExploreAll}
	for seed := int64(300); seed < 308; seed++ {
		rng := rand.New(rand.NewSource(seed))
		net := topology.MustRandomConnected(4, 5, 2, rng)
		var probes []int64
		for _, pol := range policies {
			pol := pol
			m := mapAndVerify(t, net, simnet.CircuitModel, func(c *Config) { c.Policy = pol })
			probes = append(probes, m.Stats.Probes.TotalProbes())
		}
		// DedupFrontier must never send more probes than ExploreAll.
		if probes[0] > probes[2] {
			t.Errorf("seed %d: dedup sent %d probes, explore-all %d", seed, probes[0], probes[2])
		}
	}
}

// TestLabelMatchesMerge cross-checks the §3.1 label algorithm (the proof's
// executable specification) against the §3.3 production algorithm.
func TestLabelMatchesMerge(t *testing.T) {
	for seed := int64(400); seed < 408; seed++ {
		rng := rand.New(rand.NewSource(seed))
		net := topology.MustRandomConnected(3, 4, 1, rng)
		h0 := net.Hosts()[0]
		depth := net.DepthBound(h0)
		if depth > 9 {
			depth = 9 // keep the exponential label run bounded
		}

		snA := simnet.NewDefault(net)
		prod, err := Run(snA.Endpoint(h0), WithDepth(depth))
		if err != nil {
			t.Fatalf("seed %d: Run: %v", seed, err)
		}
		snB := simnet.NewDefault(net)
		lab, err := LabelRun(snB.Endpoint(h0), depth)
		if err != nil {
			t.Fatalf("seed %d: LabelRun: %v", seed, err)
		}
		if ok, reason := isomorph.Check(prod.Network, lab.Network); !ok {
			t.Fatalf("seed %d: production %v and label %v maps differ: %s",
				seed, prod.Network, lab.Network, reason)
		}
		if err := isomorph.MustEqualCore(lab.Network, net); err != nil {
			t.Fatalf("seed %d: label map: %v", seed, err)
		}
	}
}

// TestSilentHosts: hosts that do not run a responder are invisible; the map
// must equal the core of the network with those hosts deleted.
func TestSilentHosts(t *testing.T) {
	rng := rand.New(rand.NewSource(500))
	net := topology.MustStar(4, 3, rng)
	hosts := net.Hosts()
	h0 := hosts[0]
	sn := simnet.NewDefault(net)
	// Silence two hosts on a far switch.
	silent := []topology.NodeID{hosts[len(hosts)-1], hosts[len(hosts)-2]}
	for _, h := range silent {
		sn.SetResponder(h, false)
	}
	m, err := Run(sn.Endpoint(h0), WithDepth(net.DepthBound(h0)))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, h := range silent {
		if m.Network.Lookup(net.NameOf(h)) != topology.None {
			t.Errorf("silent host %s appeared in the map", net.NameOf(h))
		}
	}
	// Build the reference: the same network with silent hosts removed.
	ref := net.Clone()
	for _, h := range silent {
		if w := ref.WireAt(h, topology.HostPort); w >= 0 {
			if err := ref.RemoveWire(w); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Mapped network must be isomorphic to the core of ref restricted to
	// connected-to-h0 portion; with a Star and 2 silenced hosts on one
	// leaf, that leaf keeps one host so nothing else disappears.
	if err := isomorph.MustEqualCoreIgnoring(m.Network, ref, silentNames(net, silent)); err != nil {
		t.Fatalf("silent map mismatch: %v", err)
	}
}

func silentNames(net *topology.Network, ids []topology.NodeID) map[string]bool {
	out := make(map[string]bool)
	for _, id := range ids {
		out[net.NameOf(id)] = true
	}
	return out
}

// TestDepthTooShallow documents the failure mode when the depth bound is
// violated: distant parts of the network are missing (the algorithm is
// silent about it — exactly why the paper proves the Q+D bound).
func TestDepthTooShallow(t *testing.T) {
	rng := rand.New(rand.NewSource(600))
	net := topology.MustLine(6, 1, rng) // long thin chain: depth matters
	h0 := net.Hosts()[0]
	sn := simnet.NewDefault(net)
	m, err := Run(sn.Endpoint(h0), WithDepth(2))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got, want := m.Network.NumSwitches(), net.NumSwitches(); got >= want {
		t.Errorf("depth-2 map found %d switches, expected fewer than %d", got, want)
	}
}

// TestModelInvariants runs the internal consistency check after a mapping.
func TestModelInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(700))
	net := topology.MustRandomConnected(5, 6, 3, rng)
	h0 := net.Hosts()[0]
	sn := simnet.NewDefault(net)
	cfg := DefaultConfig(net.DepthBound(h0))
	cfg.MaxVertices = 1 << 20
	ep := sn.Endpoint(h0)
	if err := resolveMaxPorts(&cfg, ep); err != nil {
		t.Fatal(err)
	}
	r := &run{cfg: cfg, p: ep, model: newModel()}
	r.model.maxPorts = cfg.MaxPorts
	h0v, _ := r.model.hostVertex(r.p.LocalHost(), simnet.Route{})
	if len(r.turnSequence()) == 0 {
		t.Fatal("empty turn sequence")
	}
	root := r.model.newVertex(topology.SwitchNode, "", simnet.Route{})
	r.model.addEdge(h0v, 0, root, 0)
	r.front = append(r.front, job{v: root, route: simnet.Route{}})
	for len(r.front) > 0 {
		jb := r.front[0]
		r.front = r.front[1:]
		if err := r.explore(jb); err != nil {
			t.Fatal(err)
		}
		if err := r.model.check(); err != nil {
			t.Fatalf("invariant violated mid-run: %v", err)
		}
	}
	if r.model.Inconsistencies != 0 {
		t.Errorf("quiescent run recorded %d inconsistencies", r.model.Inconsistencies)
	}
}
