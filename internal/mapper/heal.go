package mapper

import (
	"errors"
	"sort"

	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// Session is a fault-tolerant mapping session: a run whose model graph
// survives across calls, so a network change can be healed incrementally
// (§5: "it is possible to update an existing map much faster than mapping
// from scratch"). Map performs the initial exploration; Remap verifies the
// committed map against the live network, drops edges that no longer
// answer, re-explores the contradicted regions over fresh routes, and
// deletes whatever the surviving map can no longer reach.
type Session struct {
	r *run
	// hook is the step observer installed by OnStep: it fires after every
	// completed heal phase (sweep, explore drain, map completion) at a
	// point where Checkpoint captures a resumable state. A hook error
	// aborts the call with the session still intact and checkpointable —
	// returning ErrSuspended is the cooperative-suspend protocol.
	hook func(Step) error
	// heal is the Remap state machine position, persisted by Checkpoint so
	// a restored session resumes mid-Remap instead of starting over.
	heal healState
}

// healState is the resumable position inside one Remap call.
type healState struct {
	round     int  // verify→re-explore rounds completed or in progress
	sweepDone bool // this round's sweep ran; the explore drain has not
	dropped   int  // edges dropped by this round's sweep
	done      bool // a sweep found nothing wrong; Remap only needs result()
}

// NewSession builds a self-healing session over the prober. SelfHeal is
// forced on (it is the session's reason to exist); the remaining options
// are as for Run.
func NewSession(p simnet.Prober, opts ...Option) (*Session, error) {
	cfg := BuildConfig(opts...)
	cfg.SelfHeal = true
	r, err := newRun(p, cfg)
	if err != nil {
		return nil, err
	}
	return &Session{r: r}, nil
}

// Map runs the initial exploration and returns the tolerant Result. The
// session keeps the model for later Remap calls. The step hook (OnStep)
// fires once with StepMap after the frontier drains; on a session restored
// from a post-map checkpoint the drain is a no-op and Map just re-derives
// the Result.
func (s *Session) Map() (*Result, error) {
	if err := s.r.runLoop(); err != nil {
		return nil, err
	}
	if err := s.emitStep(StepMap); err != nil {
		return nil, err
	}
	return s.r.result()
}

// healRounds bounds the verify→re-explore iterations of one Remap: each
// round can only churn regions another fault touched, so a handful suffices
// on any schedule the fault budget would tolerate anyway.
const healRounds = 4

// Remap heals the committed map against the current network: it sweeps the
// model (verifying every committed edge with a freshly derived route),
// drops edges that fail twice, re-explores the switches they touched, and
// repeats until a sweep finds nothing wrong, the round bound trips, or the
// fault budget is spent. Because occupied surviving slots are skipped and
// verification costs one probe per live edge, an incremental Remap after a
// small fault is far cheaper than a from-scratch run.
// Remap is a resumable state machine over Session.heal: the step hook
// fires after each sweep (StepSweep) and each explore drain (StepExplore),
// and a checkpoint taken at either boundary restores to exactly this
// position — a resumed Remap re-issues no probe an interrupted one already
// paid for. The probe sequence is byte-identical to the pre-checkpoint
// single-loop implementation.
func (s *Session) Remap() (*Result, error) {
	for !s.heal.done && s.heal.round < healRounds {
		if s.r.budgetExhausted() {
			s.r.partial = true
			s.r.observe("budget-exhausted", nil)
			break
		}
		if !s.heal.sweepDone {
			dropped, err := s.r.sweep()
			if err != nil {
				return nil, err
			}
			s.heal.dropped = dropped
			s.heal.sweepDone = true
			if err := s.emitStep(StepSweep); err != nil {
				return nil, err
			}
		}
		if err := s.r.runLoop(); err != nil {
			return nil, err
		}
		s.heal.sweepDone = false
		s.heal.done = s.heal.dropped == 0
		s.heal.round++
		if err := s.emitStep(StepExplore); err != nil {
			return nil, err
		}
	}
	s.heal = healState{}
	return s.r.result()
}

// RunResult is the tolerant analogue of Run: one self-healing Map() over a
// fresh session.
func RunResult(p simnet.Prober, opts ...Option) (*Result, error) {
	s, err := NewSession(p, opts...)
	if err != nil {
		return nil, err
	}
	return s.Map()
}

// sweepItem is one BFS visit of the verification sweep: a committed switch
// vertex, the fresh route that reaches it, and the frame index of the port
// that route enters through.
type sweepItem struct {
	v     *Vertex
	entry int
	route simnet.Route
}

// sweep walks the committed model breadth-first from the mapper's
// attachment switch, re-deriving a fresh route for every vertex it reaches
// (the committed edges themselves define the route: slot i out of a vertex
// entered at index e is turn i−e), and verifies each committed edge with
// one expected-kind probe. An edge that fails twice is dropped and both
// ends are re-enqueued for scoped re-exploration over their fresh routes —
// NOT their (possibly fault-crossing) discovery routes. Live switch
// vertices the BFS never reaches are unreachable over committed edges and
// are deleted; prune cleans up the stranded hosts. Returns the number of
// edges dropped.
func (r *run) sweep() (int, error) {
	if r.cfg.Tracer != nil {
		r.cfg.Tracer.Begin("mapper", "sweep", r.p.Clock())
		defer func() { r.cfg.Tracer.End(r.p.Clock()) }()
	}
	hv, ok := r.model.hostByName[r.p.LocalHost()]
	if !ok {
		return 0, errors.New("mapper: mapping host missing from session model")
	}
	h0, _ := find(hv)
	var rootEdge *Edge
	for _, e := range h0.slots[0] {
		if !e.deleted {
			rootEdge = e
			break
		}
	}
	if rootEdge == nil {
		return 0, nil // never attached; nothing committed to verify
	}
	rootV, rootIdx := rootEdge.otherSide(h0, 0)
	rootV, shift := find(rootV)
	rootIdx += shift

	dropped := 0
	queue := []sweepItem{{v: rootV, entry: rootIdx, route: simnet.Route{}}}
	visited := map[*Vertex]bool{rootV: true}
	checked := map[*Edge]bool{rootEdge: true}
	var slotIdx []int
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		v := it.v
		if v.deleted {
			continue
		}
		// Sorted slot order: the sweep's probe sequence must not depend on
		// map iteration order.
		slotIdx = slotIdx[:0]
		for i := range v.slots {
			slotIdx = append(slotIdx, i)
		}
		sort.Ints(slotIdx)
		for _, i := range slotIdx {
			for _, e := range v.slots[i] {
				if e.deleted || checked[e] {
					continue
				}
				checked[e] = true
				if e.a == e.b {
					continue // loopback cable: no distinct far side to confirm
				}
				t := i - it.entry
				if mt := r.cfg.MaxPorts - 1; t == 0 || t > mt || t < -mt {
					continue // unroutable from this entry; another visit may cover it
				}
				if len(it.route) >= r.cfg.Depth {
					continue
				}
				far, fidx := e.otherSide(v, i)
				far, fshift := find(far)
				fidx += fshift
				probeStr := it.route.Extend(simnet.Turn(t))
				ok := r.verifyEdge(far, probeStr)
				if !ok {
					ok = r.verifyEdge(far, probeStr) // one confirmation retry
				}
				if !ok {
					r.model.dropEdge(e)
					dropped++
					r.stats.Contradictions++
					r.m.contradictions.Inc()
					r.observe("edge-drop", probeStr)
					r.reexploreAt(v, it.route, it.entry)
					continue
				}
				if far.kind == topology.SwitchNode && !visited[far] {
					visited[far] = true
					queue = append(queue, sweepItem{v: far, entry: fidx, route: probeStr})
				}
			}
		}
	}

	for _, v := range r.model.liveVertices() {
		if v.kind == topology.SwitchNode && !visited[v] {
			r.observe("unreachable-drop", v.probe)
			r.model.deleteVertex(v)
		}
	}
	return dropped, nil
}

// verifyEdge sends the one probe whose answer the committed edge predicts:
// the far host's name for host edges, a switch loopback for switch edges.
func (r *run) verifyEdge(far *Vertex, s simnet.Route) bool {
	if far.kind == topology.HostNode {
		host, ok := r.p.HostProbe(s)
		return ok && host == far.name
	}
	return r.p.SwitchProbe(s)
}

// reexploreAt re-enqueues v for exploration over a known-fresh route,
// subject to the same per-vertex staleness cap as markStale.
func (r *run) reexploreAt(v *Vertex, route simnet.Route, entry int) {
	if v.deleted || v.kind != topology.SwitchNode {
		return
	}
	if r.staleCount == nil || r.staleCount[v] >= staleLimit {
		return
	}
	r.staleCount[v]++
	v.explored = false
	r.stats.Reexplored++
	r.m.reexplored.Inc()
	r.observe("re-explore", route)
	r.front = append(r.front, job{v: v, route: route, entry: entry})
}

// dropEdge deletes one committed edge in place (both slot lists skip
// deleted edges lazily, exactly as deleteVertex relies on).
func (m *Model) dropEdge(e *Edge) {
	if e.deleted {
		return
	}
	e.deleted = true
	m.liveEdges--
}
