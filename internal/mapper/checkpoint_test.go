package mapper

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"sanmap/internal/faults"
	"sanmap/internal/genspec"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// goldenChaos are the seed pairs the checkpoint/restore suite replays:
// every (topology seed, fault profile) here must heal with at least one
// dropped edge so the resumable state machine is actually exercised.
var goldenChaos = []struct {
	topoSeed uint64
	profile  string
}{
	{1, "seed=5,cuts=2"},
	{3, "seed=11,cuts=3"},
	{7, "seed=2,cuts=1,kills=1"},
}

// ckptProber records every probe a session issues so interrupted and
// uninterrupted runs can be compared probe for probe.
type ckptProber struct {
	p   simnet.Prober
	log *[]string
}

func (r *ckptProber) SwitchProbe(t simnet.Route) bool {
	ok := r.p.SwitchProbe(t)
	*r.log = append(*r.log, fmt.Sprintf("S %v -> %v", t, ok))
	return ok
}

func (r *ckptProber) HostProbe(t simnet.Route) (string, bool) {
	h, ok := r.p.HostProbe(t)
	*r.log = append(*r.log, fmt.Sprintf("H %v -> %q %v", t, h, ok))
	return h, ok
}

func (r *ckptProber) LocalHost() string    { return r.p.LocalHost() }
func (r *ckptProber) Clock() time.Duration { return r.p.Clock() }

// ckptWorld builds the daemon's scenario: structural chaos events are
// withheld while the initial map runs (rates-only injector) and are
// force-applied between Map and Remap, exactly like sanmapd does between
// epoch one and the first heal.
func ckptWorld(t *testing.T, topoSeed uint64, profile string) (*simnet.Net, *faults.Injector, topology.NodeID, int) {
	t.Helper()
	rng := rand.New(faults.NewSource(topoSeed))
	res, err := genspec.Build("now-c", rng)
	if err != nil {
		t.Fatal(err)
	}
	topo := res.Net
	h0 := topo.Lookup(res.Utility)
	depth := topo.DepthBound(h0) + topo.NumSwitches()
	sn := simnet.NewDefault(topo)
	p, seed, err := faults.ParseProfile(profile)
	if err != nil {
		t.Fatal(err)
	}
	p.Protect = h0
	sched := faults.Generate(topo, seed, p)
	rates := sched
	rates.Events = nil
	faults.Attach(sn, rates)
	inj := faults.NewInjector(sn, sched)
	return sn, inj, h0, depth
}

func arm(sn *simnet.Net, inj *faults.Injector) {
	sn.SetInjector(inj)
	inj.ApplyAll()
	sn.Reconfigure()
}

func ckptNetBytes(t *testing.T, n *topology.Network) string {
	t.Helper()
	var b bytes.Buffer
	if err := n.Write(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// refRun maps and heals one golden world uninterrupted, returning the
// session's remap probe log, the map probe count and the healed network.
func refRun(t *testing.T, topoSeed uint64, profile string) (remapLog []string, mapProbes int, net string) {
	t.Helper()
	var log []string
	sn, inj, h0, depth := ckptWorld(t, topoSeed, profile)
	pr := &ckptProber{p: sn.Endpoint(h0), log: &log}
	s, err := NewSession(pr, WithDepth(depth), WithConfirm(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Map(); err != nil {
		t.Fatal(err)
	}
	mapProbes = len(log)
	arm(sn, inj)
	res, err := s.Remap()
	if err != nil {
		t.Fatal(err)
	}
	return log[mapProbes:], mapProbes, ckptNetBytes(t, res.Network)
}

// TestCheckpointEncodeDecodeEncode asserts the image is a fixpoint:
// restoring a checkpoint and re-serializing it reproduces the bytes.
func TestCheckpointEncodeDecodeEncode(t *testing.T) {
	for _, g := range goldenChaos {
		var log []string
		sn, _, h0, depth := ckptWorld(t, g.topoSeed, g.profile)
		pr := &ckptProber{p: sn.Endpoint(h0), log: &log}
		s, err := NewSession(pr, WithDepth(depth), WithConfirm(2))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Map(); err != nil {
			t.Fatal(err)
		}
		img, err := s.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		s2, err := RestoreSession(pr, img, WithDepth(depth), WithConfirm(2))
		if err != nil {
			t.Fatalf("seed=%d restore: %v", g.topoSeed, err)
		}
		img2, err := s2.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(img, img2) {
			t.Fatalf("seed=%d: checkpoint not a fixpoint (%d vs %d bytes)",
				g.topoSeed, len(img), len(img2))
		}
	}
}

// TestCheckpointRestoreRemap checkpoints after the map, restores into a
// fresh process image (new world, new session), heals, and asserts the
// resumed run issues exactly the reference probes and exports the same
// bytes.
func TestCheckpointRestoreRemap(t *testing.T) {
	for _, g := range goldenChaos {
		refRemap, _, refNet := refRun(t, g.topoSeed, g.profile)

		var log []string
		sn, _, h0, depth := ckptWorld(t, g.topoSeed, g.profile)
		pr := &ckptProber{p: sn.Endpoint(h0), log: &log}
		s, err := NewSession(pr, WithDepth(depth), WithConfirm(2))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Map(); err != nil {
			t.Fatal(err)
		}
		img, err := s.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}

		sn2, inj2, h02, depth2 := ckptWorld(t, g.topoSeed, g.profile)
		var rlog []string
		pr2 := &ckptProber{p: sn2.Endpoint(h02), log: &rlog}
		s2, err := RestoreSession(pr2, img, WithDepth(depth2), WithConfirm(2))
		if err != nil {
			t.Fatalf("seed=%d restore: %v", g.topoSeed, err)
		}
		arm(sn2, inj2)
		res, err := s2.Remap()
		if err != nil {
			t.Fatalf("seed=%d resumed remap: %v", g.topoSeed, err)
		}
		if got, want := strings.Join(rlog, "\n"), strings.Join(refRemap, "\n"); got != want {
			t.Fatalf("seed=%d: restored remap probes diverge (%d vs %d probes)",
				g.topoSeed, len(rlog), len(refRemap))
		}
		if ckptNetBytes(t, res.Network) != refNet {
			t.Fatalf("seed=%d: restored remap network differs", g.topoSeed)
		}
	}
}

// TestCheckpointSuspendEveryStep interrupts the heal at every step
// boundary in turn, restores the mid-heal image into a fresh world, and
// asserts the stitched probe sequence and the final export are identical
// to the uninterrupted run — the property sanmapd's crash harness depends
// on.
func TestCheckpointSuspendEveryStep(t *testing.T) {
	for _, g := range goldenChaos {
		refRemap, mapProbes, refNet := refRun(t, g.topoSeed, g.profile)
		resumedOnce := false
		for k := 1; k <= 16; k++ {
			var log []string
			sn, inj, h0, depth := ckptWorld(t, g.topoSeed, g.profile)
			pr := &ckptProber{p: sn.Endpoint(h0), log: &log}
			s, err := NewSession(pr, WithDepth(depth), WithConfirm(2))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Map(); err != nil {
				t.Fatal(err)
			}
			mapLen := len(log)
			arm(sn, inj)
			steps := 0
			var img []byte
			s.OnStep(func(Step) error {
				steps++
				if steps == k {
					var cerr error
					img, cerr = s.Checkpoint()
					if cerr != nil {
						return cerr
					}
					return ErrSuspended
				}
				return nil
			})
			res, err := s.Remap()
			if err == nil {
				// Fewer than k steps: the whole remap ran uninterrupted.
				if got, want := strings.Join(log[mapLen:], "\n"), strings.Join(refRemap, "\n"); got != want {
					t.Fatalf("seed=%d k=%d: uninterrupted rerun diverged", g.topoSeed, k)
				}
				if ckptNetBytes(t, res.Network) != refNet {
					t.Fatalf("seed=%d k=%d: uninterrupted rerun network differs", g.topoSeed, k)
				}
				break
			}
			if !errors.Is(err, ErrSuspended) {
				t.Fatalf("seed=%d k=%d: %v", g.topoSeed, k, err)
			}
			pre := append([]string(nil), log[mapLen:]...)

			sn2, inj2, h02, depth2 := ckptWorld(t, g.topoSeed, g.profile)
			var post []string
			pr2 := &ckptProber{p: sn2.Endpoint(h02), log: &post}
			s2, err := RestoreSession(pr2, img, WithDepth(depth2), WithConfirm(2))
			if err != nil {
				t.Fatalf("seed=%d k=%d restore: %v", g.topoSeed, k, err)
			}
			arm(sn2, inj2)
			res2, err := s2.Remap()
			if err != nil {
				t.Fatalf("seed=%d k=%d resumed remap: %v", g.topoSeed, k, err)
			}
			stitched := strings.Join(append(pre, post...), "\n")
			if want := strings.Join(refRemap, "\n"); stitched != want {
				t.Fatalf("seed=%d k=%d: stitched probe sequence diverges (%d+%d probes, want %d)",
					g.topoSeed, k, len(pre), len(post), len(refRemap))
			}
			if ckptNetBytes(t, res2.Network) != refNet {
				t.Fatalf("seed=%d k=%d: resumed network differs", g.topoSeed, k)
			}
			// Resuming must be cheaper than remapping from scratch, which
			// in turn is far cheaper than a cold map of the healed network.
			if len(post) >= mapProbes {
				t.Fatalf("seed=%d k=%d: resume spent %d probes, cold map costs %d",
					g.topoSeed, k, len(post), mapProbes)
			}
			if len(post) < len(refRemap) {
				resumedOnce = true
			}
		}
		if !resumedOnce {
			t.Fatalf("seed=%d: no suspension point saved probes — profile too weak", g.topoSeed)
		}
	}
}

// TestCheckpointResumeSavesProbes quantifies the resume win: continuing a
// half-done heal must cost strictly fewer probes than running the whole
// heal again and far fewer than a cold map.
func TestCheckpointResumeSavesProbes(t *testing.T) {
	g := goldenChaos[0]
	refRemap, mapProbes, _ := refRun(t, g.topoSeed, g.profile)

	var log []string
	sn, inj, h0, depth := ckptWorld(t, g.topoSeed, g.profile)
	pr := &ckptProber{p: sn.Endpoint(h0), log: &log}
	s, err := NewSession(pr, WithDepth(depth), WithConfirm(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Map(); err != nil {
		t.Fatal(err)
	}
	arm(sn, inj)
	steps := 0
	var img []byte
	s.OnStep(func(Step) error {
		steps++
		if steps == 2 {
			var cerr error
			img, cerr = s.Checkpoint()
			if cerr != nil {
				return cerr
			}
			return ErrSuspended
		}
		return nil
	})
	if _, err := s.Remap(); !errors.Is(err, ErrSuspended) {
		t.Fatalf("want ErrSuspended, got %v", err)
	}

	sn2, inj2, h02, depth2 := ckptWorld(t, g.topoSeed, g.profile)
	var post []string
	pr2 := &ckptProber{p: sn2.Endpoint(h02), log: &post}
	s2, err := RestoreSession(pr2, img, WithDepth(depth2), WithConfirm(2))
	if err != nil {
		t.Fatal(err)
	}
	arm(sn2, inj2)
	if _, err := s2.Remap(); err != nil {
		t.Fatal(err)
	}
	if len(post) >= len(refRemap) {
		t.Fatalf("resume spent %d probes, full heal spends %d", len(post), len(refRemap))
	}
	if len(post) >= mapProbes {
		t.Fatalf("resume spent %d probes, cold map spends %d", len(post), mapProbes)
	}
}

// TestCheckpointUnsupportedConfigs: sessions tuned for pipelined or
// cached probing refuse to checkpoint rather than lie about resumability.
func TestCheckpointUnsupportedConfigs(t *testing.T) {
	sn, _, h0, depth := ckptWorld(t, 1, "seed=5,cuts=2")
	for _, opts := range [][]Option{
		{WithDepth(depth), WithPipeline(4)},
		{WithDepth(depth), WithPipelineConfig(simnet.WindowConfig{Window: 1, Cache: true})},
		{WithDepth(depth), WithSnapshots(true)},
	} {
		s, err := NewSession(sn.Endpoint(h0), opts...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Checkpoint(); !errors.Is(err, ErrUncheckpointable) {
			t.Fatalf("want ErrUncheckpointable, got %v", err)
		}
	}
}
