package mapper

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"sanmap/internal/obs"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// TestTraceEvents: a traced run emits every event class, in a plausible
// order (probes precede discoveries, prunes come last in the instant
// stream), and the rendered lines carry the content.
func TestTraceEvents(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// A ring guarantees replicates (two directions around the cycle), so
	// merge events appear; the hostless tail provides prune events.
	net := topology.MustRing(4, 2, rng)
	topology.WithTail(net, net.Switches()[0], 1, rng)
	h0 := net.Hosts()[0]
	sn := simnet.NewDefault(net)
	tr := obs.NewTracer()
	if _, err := Run(sn.Endpoint(h0), WithDepth(net.DepthBound(h0)), WithTracer(tr)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	// The mapper instants in the text log, in recording order.
	var events []string
	for _, line := range strings.Split(buf.String(), "\n") {
		for _, kind := range []string{"probe", "discover", "merge", "prune", "explore-done"} {
			if strings.Contains(line, "mapper."+kind+" ") {
				events = append(events, kind)
			}
		}
	}
	counts := map[string]int{}
	firstDiscover, firstPrune, lastNonPrune := -1, -1, -1
	for i, k := range events {
		counts[k]++
		switch k {
		case "discover":
			if firstDiscover < 0 {
				firstDiscover = i
			}
		case "prune":
			if firstPrune < 0 {
				firstPrune = i
			}
		}
		if k != "prune" {
			lastNonPrune = i
		}
	}
	for _, k := range []string{"probe", "discover", "merge", "prune", "explore-done"} {
		if counts[k] == 0 {
			t.Errorf("no %v events:\n%s", k, buf.String())
		}
	}
	if firstDiscover >= 0 && firstDiscover == 0 {
		t.Error("discovery before any probe")
	}
	if firstPrune >= 0 && firstPrune < lastNonPrune {
		t.Error("prune events interleaved with exploration")
	}
	if !strings.Contains(buf.String(), "route=") || !strings.Contains(buf.String(), "resp=") {
		t.Errorf("rendered trace lacks probe payloads:\n%s", buf.String())
	}
}

// TestTraceChromeByteIdentity: two identical seeded runs recorded onto
// fresh tracers export byte-identical Chrome trace_event JSON — the
// property the trace-smoke CI lane and the golden fixtures build on.
func TestTraceChromeByteIdentity(t *testing.T) {
	record := func() []byte {
		rng := rand.New(rand.NewSource(7))
		net := topology.MustRing(4, 2, rng)
		h0 := net.Hosts()[0]
		sn := simnet.NewDefault(net)
		tr := obs.NewTracer()
		reg := obs.NewRegistry()
		if _, err := Run(sn.Endpoint(h0), WithDepth(net.DepthBound(h0)),
			WithTracer(tr), WithMetrics(reg), WithPipeline(4)); err != nil {
			t.Fatal(err)
		}
		var trace, metrics bytes.Buffer
		if err := tr.WriteChrome(&trace); err != nil {
			t.Fatal(err)
		}
		if err := reg.WriteText(&metrics); err != nil {
			t.Fatal(err)
		}
		if tr.Len() == 0 {
			t.Fatal("traced run recorded no events")
		}
		return append(trace.Bytes(), metrics.Bytes()...)
	}
	if a, b := record(), record(); !bytes.Equal(a, b) {
		t.Errorf("identical seeded runs diverged:\n%s\nvs\n%s", a, b)
	}
}

// TestTracerSeesSpans: the obs tracer receives the phase spans and the
// per-event instants, and the registry the mapper.* counters.
func TestTracerSeesSpans(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := topology.MustRing(4, 2, rng)
	h0 := net.Hosts()[0]
	sn := simnet.NewDefault(net)
	tr := obs.NewTracer()
	reg := obs.NewRegistry()
	m, err := Run(sn.Endpoint(h0), WithDepth(net.DepthBound(h0)), WithTracer(tr), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"mapper.explore-phase", "mapper.explore ", "mapper.prune", "mapper.probe", "mapper.discover", "mapper.explore-done",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace text lacks %q:\n%s", want, out)
		}
	}
	if got := reg.Counter("mapper.explorations").Value(); got != int64(m.Stats.Explorations) {
		t.Errorf("mapper.explorations=%d, Stats.Explorations=%d", got, m.Stats.Explorations)
	}
	if got := reg.Counter("mapper.merges").Value(); got != int64(m.Stats.Merges) {
		t.Errorf("mapper.merges=%d, Stats.Merges=%d", got, m.Stats.Merges)
	}
}

// TestTraceDisabledIsFree: without a tracer no events accumulate and
// results are identical.
func TestTraceDisabledIsFree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := topology.MustLine(3, 2, rng)
	h0 := net.Hosts()[0]
	run := func(trace bool) Stats {
		sn := simnet.NewDefault(net)
		opts := []Option{WithDepth(net.DepthBound(h0))}
		if trace {
			opts = append(opts, WithTracer(obs.NewTracer()))
		}
		m, err := Run(sn.Endpoint(h0), opts...)
		if err != nil {
			t.Fatal(err)
		}
		return m.Stats
	}
	if a, b := run(false), run(true); a.Probes != b.Probes || a.Merges != b.Merges {
		t.Errorf("tracing changed behaviour: %+v vs %+v", a, b)
	}
}
