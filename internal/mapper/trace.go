package mapper

import (
	"fmt"
	"io"
	"time"

	"sanmap/internal/obs"
	"sanmap/internal/simnet"
)

// TraceEvent is one step of a mapping run, for observability and debugging
// — the kind of log the paper's own Fig 8 instrumentation recorded ("the
// number of nodes and edges in the model graph ... were recorded after a
// frontier switch was explored").
//
// TraceEvent predates the unified observability layer and is kept as a
// thin shim over it: the run records every event onto Config.Tracer (an
// obs.Tracer, cat "mapper") and additionally converts it into a TraceEvent
// for the legacy Config.Trace hook. New callers should prefer WithTracer;
// the Chrome trace_event export and the deterministic text log both come
// from the tracer, not from this type.
type TraceEvent struct {
	Kind TraceKind
	// At is the virtual time of the event.
	At time.Duration
	// Probe is the probe string involved (Probe/Discover events).
	Probe simnet.Route
	// Response describes the probe outcome ("host:<name>", "switch",
	// "nothing") for Probe events.
	Response string
	// Vertex and Other are model vertex ids (creation order) for
	// Discover/Merge/Prune events.
	Vertex, Other int
	// Shift is the frame offset applied by a Merge.
	Shift int
}

// TraceKind classifies trace events.
type TraceKind uint8

// Trace event kinds.
const (
	// TraceProbe: a probe pair was answered (or timed out).
	TraceProbe TraceKind = iota
	// TraceDiscover: a model vertex was created for a response.
	TraceDiscover
	// TraceMerge: Other merged into Vertex with frame offset Shift.
	TraceMerge
	// TracePrune: Vertex was deleted by the prune stage.
	TracePrune
	// TraceExplore: a frontier switch finished exploration.
	TraceExplore
	// TracePipeline: the pipelined probe engine's end-of-run counters
	// (Response carries the formatted simnet.WindowStats).
	TracePipeline
)

// String names the kind.
func (k TraceKind) String() string {
	switch k {
	case TraceProbe:
		return "probe"
	case TraceDiscover:
		return "discover"
	case TraceMerge:
		return "merge"
	case TracePrune:
		return "prune"
	case TraceExplore:
		return "explore"
	case TracePipeline:
		return "pipeline"
	}
	return fmt.Sprintf("trace(%d)", uint8(k))
}

// obsEvent converts the event into its obs representation: the instant
// name under cat "mapper" plus the key=value args. This is the one place
// the per-kind payloads are spelled out; both renderings (the tracer's
// exports and the legacy Format) go through it.
func (e TraceEvent) obsEvent() (name string, args []obs.Arg) {
	switch e.Kind {
	case TraceProbe:
		return "probe", []obs.Arg{obs.String("route", e.Probe.String()), obs.String("resp", e.Response)}
	case TraceDiscover:
		return "discover", []obs.Arg{obs.Int("vertex", e.Vertex), obs.String("route", e.Probe.String())}
	case TraceMerge:
		return "merge", []obs.Arg{obs.Int("into", e.Vertex), obs.Int("victim", e.Other), obs.String("shift", fmt.Sprintf("%+d", e.Shift))}
	case TracePrune:
		return "prune", []obs.Arg{obs.Int("vertex", e.Vertex)}
	case TraceExplore:
		return "explore-done", []obs.Arg{obs.Int("vertex", e.Vertex)}
	case TracePipeline:
		return "pipeline", []obs.Arg{obs.String("stats", e.Response)}
	}
	return e.Kind.String(), nil
}

// Format renders the event as one log line.
//
// Deprecated: the line is obs.FormatLine over the event's obs
// representation; use Config.Tracer and Tracer.WriteText for whole-run
// logs.
func (e TraceEvent) Format() string {
	name, args := e.obsEvent()
	return obs.FormatLine(e.At, "mapper", name, args...)
}

// TraceWriter returns a trace hook that writes formatted events to w —
// plug it into Config.Trace.
//
// Deprecated: prefer WithTracer plus Tracer.WriteText, which also covers
// phase spans and the other subsystems' categories.
func TraceWriter(w io.Writer) func(TraceEvent) {
	return func(e TraceEvent) {
		fmt.Fprintln(w, e.Format())
	}
}

// tracing reports whether emit has anywhere to deliver events, so probe
// sites can skip building descriptions nobody will read.
func (r *run) tracing() bool {
	return r.cfg.Trace != nil || r.cfg.Tracer != nil
}

// emit timestamps an event and delivers it: as an instant on the obs
// tracer and, when the legacy hook is installed, as a TraceEvent.
func (r *run) emit(e TraceEvent) {
	if !r.tracing() {
		return
	}
	e.At = r.p.Clock()
	if r.cfg.Tracer != nil {
		name, args := e.obsEvent()
		r.cfg.Tracer.Instant("mapper", name, e.At, args...)
	}
	if r.cfg.Trace != nil {
		r.cfg.Trace(e)
	}
}
