package mapper

import (
	"fmt"
	"io"
	"time"

	"sanmap/internal/simnet"
)

// TraceEvent is one step of a mapping run, for observability and debugging
// — the kind of log the paper's own Fig 8 instrumentation recorded ("the
// number of nodes and edges in the model graph ... were recorded after a
// frontier switch was explored").
type TraceEvent struct {
	Kind TraceKind
	// At is the virtual time of the event.
	At time.Duration
	// Probe is the probe string involved (Probe/Discover events).
	Probe simnet.Route
	// Response describes the probe outcome ("host:<name>", "switch",
	// "nothing") for Probe events.
	Response string
	// Vertex and Other are model vertex ids (creation order) for
	// Discover/Merge/Prune events.
	Vertex, Other int
	// Shift is the frame offset applied by a Merge.
	Shift int
}

// TraceKind classifies trace events.
type TraceKind uint8

// Trace event kinds.
const (
	// TraceProbe: a probe pair was answered (or timed out).
	TraceProbe TraceKind = iota
	// TraceDiscover: a model vertex was created for a response.
	TraceDiscover
	// TraceMerge: Other merged into Vertex with frame offset Shift.
	TraceMerge
	// TracePrune: Vertex was deleted by the prune stage.
	TracePrune
	// TraceExplore: a frontier switch finished exploration.
	TraceExplore
	// TracePipeline: the pipelined probe engine's end-of-run counters
	// (Response carries the formatted simnet.WindowStats).
	TracePipeline
)

// String names the kind.
func (k TraceKind) String() string {
	switch k {
	case TraceProbe:
		return "probe"
	case TraceDiscover:
		return "discover"
	case TraceMerge:
		return "merge"
	case TracePrune:
		return "prune"
	case TraceExplore:
		return "explore"
	case TracePipeline:
		return "pipeline"
	}
	return fmt.Sprintf("trace(%d)", uint8(k))
}

// Format renders the event as one log line.
func (e TraceEvent) Format() string {
	switch e.Kind {
	case TraceProbe:
		return fmt.Sprintf("%12v probe    %-18s -> %s", e.At, e.Probe, e.Response)
	case TraceDiscover:
		return fmt.Sprintf("%12v discover v%-4d via %s", e.At, e.Vertex, e.Probe)
	case TraceMerge:
		return fmt.Sprintf("%12v merge    v%-4d <- v%d (shift %+d)", e.At, e.Vertex, e.Other, e.Shift)
	case TracePrune:
		return fmt.Sprintf("%12v prune    v%-4d", e.At, e.Vertex)
	case TraceExplore:
		return fmt.Sprintf("%12v explore  v%-4d done", e.At, e.Vertex)
	case TracePipeline:
		return fmt.Sprintf("%12v pipeline %s", e.At, e.Response)
	}
	return fmt.Sprintf("%12v %s", e.At, e.Kind)
}

// TraceWriter returns a trace hook that writes formatted events to w —
// plug it into Config.Trace.
func TraceWriter(w io.Writer) func(TraceEvent) {
	return func(e TraceEvent) {
		fmt.Fprintln(w, e.Format())
	}
}

// emit sends an event to the configured trace hook.
func (r *run) emit(e TraceEvent) {
	if r.cfg.Trace == nil {
		return
	}
	e.At = r.p.Clock()
	r.cfg.Trace(e)
}
