package mapper

import (
	"fmt"

	"sanmap/internal/obs"
	"sanmap/internal/simnet"
)

// TraceEvent is one step of a mapping run, for observability and debugging
// — the kind of log the paper's own Fig 8 instrumentation recorded ("the
// number of nodes and edges in the model graph ... were recorded after a
// frontier switch was explored"). Events are recorded as instants on the
// run's obs.Tracer under cat "mapper" (see Config.Tracer / WithTracer);
// the Chrome trace_event export and the deterministic text log both come
// from the tracer.
type TraceEvent struct {
	Kind TraceKind
	// Probe is the probe string involved (Probe/Discover events).
	Probe simnet.Route
	// Response describes the probe outcome ("host:<name>", "switch",
	// "nothing") for Probe events.
	Response string
	// Vertex and Other are model vertex ids (creation order) for
	// Discover/Merge/Prune events.
	Vertex, Other int
	// Shift is the frame offset applied by a Merge.
	Shift int
}

// TraceKind classifies trace events.
type TraceKind uint8

// Trace event kinds.
const (
	// TraceProbe: a probe pair was answered (or timed out).
	TraceProbe TraceKind = iota
	// TraceDiscover: a model vertex was created for a response.
	TraceDiscover
	// TraceMerge: Other merged into Vertex with frame offset Shift.
	TraceMerge
	// TracePrune: Vertex was deleted by the prune stage.
	TracePrune
	// TraceExplore: a frontier switch finished exploration.
	TraceExplore
	// TracePipeline: the pipelined probe engine's end-of-run counters
	// (Response carries the formatted simnet.WindowStats).
	TracePipeline
)

// String names the kind.
func (k TraceKind) String() string {
	switch k {
	case TraceProbe:
		return "probe"
	case TraceDiscover:
		return "discover"
	case TraceMerge:
		return "merge"
	case TracePrune:
		return "prune"
	case TraceExplore:
		return "explore"
	case TracePipeline:
		return "pipeline"
	}
	return fmt.Sprintf("trace(%d)", uint8(k))
}

// tracing reports whether emit has anywhere to deliver events, so probe
// sites can skip building descriptions nobody will read.
func (r *run) tracing() bool {
	return r.cfg.Tracer != nil
}

// emit timestamps an event and records it as an instant on the obs tracer
// under cat "mapper". This is the one place the per-kind payloads are
// spelled out; every rendering (Chrome export, text log, goldens) flows
// from these names and args.
func (r *run) emit(e TraceEvent) {
	if r.cfg.Tracer == nil {
		return
	}
	at := r.p.Clock()
	switch e.Kind {
	case TraceProbe:
		r.cfg.Tracer.Instant("mapper", "probe", at, obs.String("route", e.Probe.String()), obs.String("resp", e.Response))
	case TraceDiscover:
		r.cfg.Tracer.Instant("mapper", "discover", at, obs.Int("vertex", e.Vertex), obs.String("route", e.Probe.String()))
	case TraceMerge:
		r.cfg.Tracer.Instant("mapper", "merge", at, obs.Int("into", e.Vertex), obs.Int("victim", e.Other), obs.String("shift", fmt.Sprintf("%+d", e.Shift)))
	case TracePrune:
		r.cfg.Tracer.Instant("mapper", "prune", at, obs.Int("vertex", e.Vertex))
	case TraceExplore:
		r.cfg.Tracer.Instant("mapper", "explore-done", at, obs.Int("vertex", e.Vertex))
	case TracePipeline:
		r.cfg.Tracer.Instant("mapper", "pipeline", at, obs.String("stats", e.Response))
	default:
		r.cfg.Tracer.Instant("mapper", e.Kind.String(), at)
	}
}
