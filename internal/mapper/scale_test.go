package mapper

import (
	"fmt"
	"testing"

	"sanmap/internal/cluster"
	"sanmap/internal/isomorph"
	"sanmap/internal/simnet"
)

func TestScaleClusters(t *testing.T) {
	for _, c := range []struct {
		name string
		sys  *cluster.System
	}{{"C", cluster.CConfig(nil)}, {"C+A", cluster.CAConfig(nil)}, {"C+A+B", cluster.CABConfig(nil)}} {
		net := c.sys.Net
		h0 := c.sys.Mapper()
		depth := net.DepthBound(h0)
		sn := simnet.NewDefault(net)
		m, err := Run(sn.Endpoint(h0), WithDepth(depth))
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if err := isomorph.MustEqualCore(m.Network, net); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		s := m.Stats
		fmt.Printf("%-6s depth=%d host=%d/%d (%.0f%%) switch=%d/%d (%.0f%%) total=%d expl=%d merges=%d elim=%d time=%v\n",
			c.name, depth,
			s.Probes.HostHits, s.Probes.HostProbes, 100*float64(s.Probes.HostHits)/float64(s.Probes.HostProbes),
			s.Probes.SwitchHits, s.Probes.SwitchProbes, 100*float64(s.Probes.SwitchHits)/float64(s.Probes.SwitchProbes),
			s.Probes.TotalProbes(), s.Explorations, s.Merges, s.EliminatedPro, s.Elapsed)
	}
}
