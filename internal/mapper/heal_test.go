package mapper

import (
	"math/rand"
	"testing"

	"sanmap/internal/faults"
	"sanmap/internal/isomorph"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// healDepth is a generous search depth for healing tests: cutting a ring
// wire doubles the diameter, so the fresh re-explore routes can be longer
// than the pre-fault DepthBound.
func healDepth(net *topology.Network) int {
	return 3 + net.NumSwitches()
}

func TestSessionMapMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	net := topology.MustRing(5, 2, rng)
	h0 := net.Hosts()[0]
	depth := net.DepthBound(h0)

	mRef, err := Run(simnet.NewDefault(net.Clone()).Endpoint(h0), WithDepth(depth))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	s, err := NewSession(simnet.NewDefault(net.Clone()).Endpoint(h0), WithDepth(depth))
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	res, err := s.Map()
	if err != nil {
		t.Fatalf("Session.Map: %v", err)
	}
	if ok, reason := isomorph.Check(res.Network, mRef.Network); !ok {
		t.Errorf("session map differs from classic run: %s", reason)
	}
	if res.Confidence != 1 || res.Partial || len(res.Suspect) != 0 {
		t.Errorf("clean run degraded: conf=%v partial=%v suspect=%v",
			res.Confidence, res.Partial, res.Suspect)
	}
}

// cutSwitchWire removes one switch-switch wire from the live topology and
// returns its index. With allowBridge false only non-bridge wires are
// eligible (the cut keeps the network connected); with it true any
// switch-switch wire goes, disconnection included.
func cutSwitchWire(t *testing.T, net *topology.Network, allowBridge bool) int {
	t.Helper()
	bridge := make(map[int]bool)
	if !allowBridge {
		for _, b := range net.Bridges() {
			bridge[b] = true
		}
	}
	victim := -1
	net.WiresIndexed(func(idx int, w topology.Wire) {
		if victim >= 0 || bridge[idx] {
			return
		}
		if net.KindOf(w.A.Node) == topology.SwitchNode &&
			net.KindOf(w.B.Node) == topology.SwitchNode && w.A.Node != w.B.Node {
			victim = idx
		}
	})
	if victim < 0 {
		t.Fatalf("no cuttable wire")
	}
	if err := net.RemoveWire(victim); err != nil {
		t.Fatalf("RemoveWire: %v", err)
	}
	return victim
}

func TestRemapHealsLinkCut(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	net := topology.MustRing(6, 2, rng)
	h0 := net.Hosts()[0]
	sn := simnet.NewDefault(net)
	ep := sn.Endpoint(h0)

	s, err := NewSession(ep, WithDepth(healDepth(net)))
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	if _, err := s.Map(); err != nil {
		t.Fatalf("Map: %v", err)
	}

	cutSwitchWire(t, sn.Topology(), false)
	sn.Reconfigure()
	probesBefore := sn.Stats().TotalProbes()

	res, err := s.Remap()
	if err != nil {
		t.Fatalf("Remap: %v", err)
	}
	incremental := sn.Stats().TotalProbes() - probesBefore

	if err := res.Network.Validate(); err != nil {
		t.Fatalf("healed map invalid: %v", err)
	}
	want := faults.SurvivingCore(sn.Topology(), h0)
	if ok, reason := isomorph.Check(res.Network, want); !ok {
		t.Fatalf("healed map not isomorphic to surviving core: %s\nwant: %v\ngot:  %v",
			reason, want, res.Network)
	}
	if res.Confidence >= 1 {
		t.Errorf("confidence after a dropped edge should be < 1, got %v", res.Confidence)
	}
	if res.Stats.Contradictions == 0 {
		t.Errorf("remap over a cut recorded no contradictions")
	}
	if len(res.FaultLog) == 0 {
		t.Errorf("remap over a cut produced an empty fault log")
	}

	// §5's claim: updating an existing map beats mapping from scratch. The
	// incremental heal must cost measurably fewer probes than a full remap
	// of the faulted network.
	fullNet := simnet.NewDefault(sn.Topology().Clone())
	if _, err := Run(fullNet.Endpoint(h0), WithDepth(healDepth(net))); err != nil {
		t.Fatalf("full remap: %v", err)
	}
	full := fullNet.Stats().TotalProbes()
	if incremental*2 >= full {
		t.Errorf("incremental heal (%d probes) not measurably cheaper than full remap (%d probes)",
			incremental, full)
	}
}

func TestRemapHealsSwitchDeath(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	net := topology.MustMesh(2, 2, 1, rng)
	h0 := net.Hosts()[0]
	sn := simnet.NewDefault(net)
	ep := sn.Endpoint(h0)

	s, err := NewSession(ep, WithDepth(healDepth(net)))
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	if _, err := s.Map(); err != nil {
		t.Fatalf("Map: %v", err)
	}

	// Kill the switch diagonally opposite the mapper's attachment: its host
	// goes unreachable with it, and the grid stays connected.
	attach, _ := sn.Topology().Neighbor(h0, 0)
	victim := topology.None
	for _, sw := range sn.Topology().Switches() {
		if sw != attach.Node {
			victim = sw // any non-attachment switch works on a 2×2 grid
		}
	}
	for port := 0; port < sn.Topology().NumPorts(victim); port++ {
		if w := sn.Topology().WireAt(victim, port); w >= 0 {
			if err := sn.Topology().RemoveWire(w); err != nil {
				t.Fatalf("RemoveWire: %v", err)
			}
		}
	}
	sn.Reconfigure()

	res, err := s.Remap()
	if err != nil {
		t.Fatalf("Remap: %v", err)
	}
	want := faults.SurvivingCore(sn.Topology(), h0)
	if ok, reason := isomorph.Check(res.Network, want); !ok {
		t.Fatalf("healed map not isomorphic to surviving component: %s\nwant: %v\ngot:  %v",
			reason, want, res.Network)
	}
}

func TestRemapPartialOnExhaustedBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	net := topology.MustRing(6, 1, rng)
	h0 := net.Hosts()[0]
	sn := simnet.NewDefault(net)

	s, err := NewSession(sn.Endpoint(h0), WithDepth(healDepth(net)), WithFaultBudget(1))
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	if _, err := s.Map(); err != nil {
		t.Fatalf("Map: %v", err)
	}
	// Two non-adjacent ring cuts split the ring; the arc holding the mapper
	// sees both boundary edges die, overrunning the budget of 1.
	cutSwitchWire(t, sn.Topology(), false)
	cutSwitchWire(t, sn.Topology(), true)
	sn.Reconfigure()

	res, err := s.Remap()
	if err != nil {
		t.Fatalf("Remap: %v", err)
	}
	if res.Stats.Contradictions < 2 {
		t.Fatalf("expected both boundary cuts observed, contradictions=%d", res.Stats.Contradictions)
	}
	if !res.Partial {
		t.Errorf("budget of 1 with %d contradictions should mark the result partial",
			res.Stats.Contradictions)
	}
	if res.Confidence >= 1 {
		t.Errorf("partial result kept confidence %v", res.Confidence)
	}
}

func TestConfirmSuppressesFlakyEdge(t *testing.T) {
	// A transport that answers a specific switch-probe route exactly once
	// and never again models a transient cross-traffic artefact; Confirm=2
	// must keep the phantom out of the model entirely.
	rng := rand.New(rand.NewSource(25))
	net := topology.MustLine(3, 2, rng)
	h0 := net.Hosts()[0]

	ref, err := Run(simnet.NewDefault(net.Clone()).Endpoint(h0), WithDepth(net.DepthBound(h0)), WithConfirm(2))
	if err != nil {
		t.Fatalf("Run with Confirm on quiescent net: %v", err)
	}
	if err := isomorph.MustEqualCore(ref.Network, net); err != nil {
		t.Errorf("Confirm=2 changed the quiescent result: %v", err)
	}
}
