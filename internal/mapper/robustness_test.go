package mapper

import (
	"errors"
	"math/rand"
	"testing"

	"sanmap/internal/isomorph"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// TestSentinelErrors: the typed sentinels classify configuration and probe
// failures through their wrapped chains, assertable with errors.Is.
func TestSentinelErrors(t *testing.T) {
	n := &topology.Network{}
	s0 := n.AddSwitch("s0")
	s1 := n.AddSwitch("s1")
	h0 := n.AddHost("h0")
	h1 := n.AddHost("h1")
	n.MustConnect(h0, 0, s0, 2)
	n.MustConnect(s0, 5, s1, 3)
	n.MustConnect(s1, 6, h1, 0)
	sn := simnet.NewDefault(n)
	ep := sn.Endpoint(h0)

	if _, err := Run(ep); !errors.Is(err, ErrDepthExceeded) {
		t.Errorf("Run without WithDepth: err = %v, want ErrDepthExceeded", err)
	}

	do := func(p simnet.Probe) simnet.ProbeResult {
		r := <-ep.Submit(p)
		ep.Collect(r)
		return r
	}
	if r := do(simnet.Probe{Kind: simnet.ProbeHost, Route: simnet.Route{1}}); !errors.Is(r.Err, simnet.ErrTimeout) {
		t.Errorf("dead-end probe: err = %v, want simnet.ErrTimeout", r.Err)
	}
	sn.SetResponder(h1, false)
	if r := do(simnet.Probe{Kind: simnet.ProbeHost, Route: simnet.Route{3, 3}}); !errors.Is(r.Err, simnet.ErrNoResponder) {
		t.Errorf("silent host: err = %v, want simnet.ErrNoResponder", r.Err)
	}
}

// TestMapMoreTopologyFamilies extends the Theorem 1 property test to the
// classic interconnects the paper's introduction contrasts SANs with.
func TestMapMoreTopologyFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	nets := []struct {
		name string
		net  *topology.Network
	}{
		{"mesh", topology.MustMesh(3, 3, 2, rng)},
		{"torus", topology.MustTorus(3, 3, 2, rng)},
		{"hypercube", topology.MustHypercube(3, 2, rng)},
		{"line-long", topology.MustLine(7, 1, rng)},
	}
	for _, tc := range nets {
		net := tc.net
		t.Run(tc.name, func(t *testing.T) {
			mapAndVerify(t, net, simnet.CircuitModel, nil)
		})
	}
}

// TestMapWithFlakyResponses: dropped probe responses must never corrupt the
// map — the deductions are conservative (a lost response is a lost edge,
// not a wrong one), so the result is a subgraph-shaped map and the run
// never reports contradictory merges.
func TestMapWithFlakyResponses(t *testing.T) {
	for _, rate := range []float64{0.05, 0.2, 0.5} {
		for seed := int64(0); seed < 6; seed++ {
			rng := rand.New(rand.NewSource(seed))
			net := topology.MustRandomConnected(4, 6, 2, rng)
			h0 := net.Hosts()[0]
			sn := simnet.NewDefault(net)
			fp := &simnet.FlakyProber{
				Inner:    sn.Endpoint(h0),
				DropRate: rate,
				Rng:      rand.New(rand.NewSource(seed + 99)),
			}
			m, err := Run(fp, WithDepth(net.DepthBound(h0)))
			if err != nil {
				// An export failure would indicate a corrupted model; a
				// clean error is acceptable only for vertex-budget aborts,
				// which cannot happen at this scale.
				t.Fatalf("rate %.2f seed %d: %v", rate, seed, err)
			}
			if err := m.Network.Validate(); err != nil {
				t.Fatalf("rate %.2f seed %d: invalid map: %v", rate, seed, err)
			}
			if m.Stats.Inconsistent != 0 {
				t.Errorf("rate %.2f seed %d: %d contradictory deductions from conservative losses",
					rate, seed, m.Stats.Inconsistent)
			}
			// Whatever was mapped must be consistent with the actual
			// network: every mapped host exists, counts never exceed the
			// combinatorial bound of the real network... at minimum the
			// host set is a subset.
			for _, name := range m.Network.SortedHostNames() {
				if net.Lookup(name) == topology.None {
					t.Errorf("rate %.2f seed %d: phantom host %q", rate, seed, name)
				}
			}
			if fp.Dropped == 0 && rate >= 0.5 {
				t.Errorf("rate %.2f seed %d: flaky prober dropped nothing", rate, seed)
			}
		}
	}
}

// TestMapZeroDropIsExact: a FlakyProber with rate 0 changes nothing.
func TestMapZeroDropIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	net := topology.MustStar(3, 3, rng)
	h0 := net.Hosts()[0]
	sn := simnet.NewDefault(net)
	fp := &simnet.FlakyProber{Inner: sn.Endpoint(h0), DropRate: 0, Rng: rng}
	m, err := Run(fp, WithDepth(net.DepthBound(h0)))
	if err != nil {
		t.Fatal(err)
	}
	if err := isomorph.MustEqualCore(m.Network, net); err != nil {
		t.Fatal(err)
	}
}

// TestCancelAborts: the election passivation hook stops a run cleanly.
func TestCancelAborts(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	net := topology.MustStar(4, 3, rng)
	h0 := net.Hosts()[0]
	sn := simnet.NewDefault(net)
	calls := 0
	cancel := func() bool {
		calls++
		return calls > 3
	}
	if _, err := Run(sn.Endpoint(h0), WithDepth(net.DepthBound(h0)), WithCancel(cancel)); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestDeterminism: two identical runs produce identical probe counts and
// isomorphic maps (the simulator and mapper are fully deterministic).
func TestDeterminism(t *testing.T) {
	build := func() *Map {
		rng := rand.New(rand.NewSource(55))
		net := topology.MustRandomConnected(5, 7, 3, rng)
		h0 := net.Hosts()[0]
		sn := simnet.NewDefault(net)
		m, err := Run(sn.Endpoint(h0), WithDepth(net.DepthBound(h0)))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := build(), build()
	if a.Stats.Probes != b.Stats.Probes {
		t.Errorf("probe stats differ: %+v vs %+v", a.Stats.Probes, b.Stats.Probes)
	}
	if a.Stats.Elapsed != b.Stats.Elapsed {
		t.Errorf("elapsed differ: %v vs %v", a.Stats.Elapsed, b.Stats.Elapsed)
	}
	if ok, reason := isomorph.Check(a.Network, b.Network); !ok {
		t.Errorf("maps differ: %s", reason)
	}
}

// TestSwitchFirstProbeOrder: the alternative probe-pair order produces the
// same map with a different probe mix (more switch probes, fewer host
// probes).
func TestSwitchFirstProbeOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	net := topology.MustRandomConnected(5, 7, 2, rng)
	run := func(order ProbeOrder) *Map {
		sn := simnet.NewDefault(net)
		m, err := Run(sn.Endpoint(net.Hosts()[0]),
			WithDepth(net.DepthBound(net.Hosts()[0])), WithProbeOrder(order))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	hf, sf := run(HostFirst), run(SwitchFirst)
	if ok, reason := isomorph.Check(hf.Network, sf.Network); !ok {
		t.Fatalf("probe order changed the map: %s", reason)
	}
	if sf.Stats.Probes.SwitchProbes <= hf.Stats.Probes.SwitchProbes {
		t.Errorf("switch-first should send more switch probes: %+v vs %+v",
			sf.Stats.Probes, hf.Stats.Probes)
	}
}

// TestNaiveScanSameMap: disabling the §3.3 heuristics costs probes, never
// correctness.
func TestNaiveScanSameMap(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	net := topology.MustRandomConnected(4, 6, 2, rng)
	h0 := net.Hosts()[0]
	base := mapAndVerify(t, net, simnet.CircuitModel, nil)
	naive := mapAndVerify(t, net, simnet.CircuitModel, func(c *Config) {
		c.TurnOrder = NaiveScan
		c.EliminateProbes = false
	})
	if ok, reason := isomorph.Check(base.Network, naive.Network); !ok {
		t.Fatalf("heuristics changed the map: %s", reason)
	}
	if naive.Stats.Probes.TotalProbes() < base.Stats.Probes.TotalProbes() {
		t.Errorf("naive scan should not be cheaper: %d vs %d",
			naive.Stats.Probes.TotalProbes(), base.Stats.Probes.TotalProbes())
	}
	_ = h0
}
