package mapper

import (
	"math/rand"
	"testing"

	"sanmap/internal/isomorph"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// mapAndVerify runs the production algorithm over net from its first host
// and asserts Theorem 1: the result is isomorphic to N−F.
func mapAndVerify(t *testing.T, net *topology.Network, model simnet.Model, extra Option) *Map {
	t.Helper()
	if err := net.Validate(); err != nil {
		t.Fatalf("generator produced invalid network: %v", err)
	}
	hosts := net.Hosts()
	if len(hosts) < 2 {
		t.Fatalf("need at least two hosts, have %d", len(hosts))
	}
	h0 := hosts[0]
	sn := simnet.New(net, model, simnet.DefaultTiming())
	m, err := Run(sn.Endpoint(h0),
		WithDepth(net.DepthBound(h0)), WithSnapshots(true), extra)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := m.Network.Validate(); err != nil {
		t.Fatalf("mapped network invalid: %v", err)
	}
	if err := isomorph.MustEqualCore(m.Network, net); err != nil {
		core, _ := net.Core()
		t.Fatalf("%v\nactual core: %v\nmapped:      %v", err, core, m.Network)
	}
	return m
}

func TestMapLine(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mapAndVerify(t, topology.MustLine(4, 2, rng), simnet.CircuitModel, nil)
}

func TestMapStar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	mapAndVerify(t, topology.MustStar(4, 3, rng), simnet.CircuitModel, nil)
}

func TestMapRing(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mapAndVerify(t, topology.MustRing(5, 2, rng), simnet.CircuitModel, nil)
}

func TestMapFatTree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	spec := topology.FatTreeSpec{
		LeafSwitches: 4, HostsPerLeaf: 4,
		MidSwitches: 2, RootSwitches: 1,
		UplinksPerLeaf: 2, UplinksPerMid: 2,
	}
	mapAndVerify(t, topology.MustFatTree(spec, rng), simnet.CircuitModel, nil)
}

func TestMapRandomSmall(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		net := topology.MustRandomConnected(4, 6, 2, rng)
		mapAndVerify(t, net, simnet.CircuitModel, nil)
	}
}
