package mapper

import (
	"math/rand"
	"testing"

	"sanmap/internal/isomorph"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// effectiveCore computes what a correct mapper converges to: the network
// with degree-≤1 switches iteratively removed (the algorithm's own prune
// rule applied to ground truth) and then stranded hosts dropped. For bare
// switch-bridge tails this equals the paper's core N−F; decorations change
// the picture in ways the theorem's N−F understates: a tail switch that
// carries a self-loop cable or plug is *mappable* even under circuit
// switching (probes cross its bridge once per direction and anchor it at a
// host), and has degree ≥ 3, so it survives the prune on both sides.
// Self-loop cables and loopback plugs count twice toward degree, mirroring
// the model graph's accounting.
func effectiveCore(net *topology.Network) *topology.Network {
	dead := make(map[topology.NodeID]bool)
	for {
		removed := false
		for _, s := range net.Switches() {
			if dead[s] {
				continue
			}
			deg := 0
			for p := 0; p < net.NumPorts(s); p++ {
				if net.ReflectorAt(s, p) {
					deg += 2
					continue
				}
				if end, ok := net.Neighbor(s, p); ok && !dead[end.Node] {
					deg++
				}
			}
			if deg <= 1 {
				dead[s] = true
				removed = true
			}
		}
		if !removed {
			break
		}
	}
	// Drop hosts whose switch died.
	for _, h := range net.Hosts() {
		if sw, _, ok := net.HostSwitch(h); ok && dead[sw] {
			dead[h] = true
		}
	}
	out, _ := net.Filter(func(id topology.NodeID) bool { return !dead[id] })
	return out
}

// TestTortureSweep is the widest Theorem 1 property test: random connected
// multigraphs decorated with every feature the model supports — parallel
// wires, two-port self-loop cables, hostless switch-bridge tails (F), and
// loopback plugs — mapped under all three collision models and compared
// against the effective core.
func TestTortureSweep(t *testing.T) {
	models := []struct {
		name  string
		model simnet.Model
	}{
		{"packet", simnet.PacketModel},
		{"cutthrough", simnet.CutThroughModel},
		{"circuit", simnet.CircuitModel},
	}
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		net := topology.MustRandomConnected(3+rng.Intn(5), 2+rng.Intn(6), rng.Intn(4), rng)
		if rng.Intn(2) == 0 {
			topology.WithTail(net, net.Switches()[rng.Intn(net.NumSwitches())], 1+rng.Intn(2), rng)
		}
		if rng.Intn(2) == 0 {
			for _, s := range net.Switches() {
				if net.Degree(s) <= topology.SwitchPorts-2 {
					_, _, _, _ = net.ConnectFree(s, s) // self-loop cable
					break
				}
			}
		}
		if rng.Intn(2) == 0 {
			for _, s := range net.Switches() {
				if p := net.FreePort(s); p >= 0 {
					_ = net.AddReflector(s, p)
					break
				}
			}
		}
		if err := net.Validate(); err != nil {
			t.Fatalf("seed %d: generator: %v", seed, err)
		}
		// Two sanctioned outcomes: the theorem guarantees the core N−F;
		// decorated F regions (looped tails) are mapped opportunistically
		// when the probe depth covers their longer anchor paths — Q is
		// computed over N−F, so that is not guaranteed. Anything between
		// or beyond is a bug.
		refFull := effectiveCore(net)
		refCore, _ := net.Core()

		for _, mc := range models {
			h0 := net.Hosts()[0]
			sn := simnet.New(net, mc.model, simnet.DefaultTiming())
			m, err := Run(sn.Endpoint(h0), WithDepth(net.DepthBound(h0)))
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, mc.name, err)
			}
			okFull, _ := isomorph.Check(m.Network, refFull)
			okCore, _ := isomorph.Check(m.Network, refCore)
			if !okFull && !okCore {
				t.Fatalf("seed %d %s: map matches neither N-F nor the effective core\nactual: %v (F=%d)\ncore:   %v\nfull:   %v\nmapped: %v",
					seed, mc.name, net, len(net.F()), refCore, refFull, m.Network)
			}
		}
	}
}
