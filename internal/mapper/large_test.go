// Datacenter-scale integration gate (external test package: wall-clock
// timing is fine here, and the mapper is exercised purely through its
// public API). The PR-6 acceptance bar: a ~1k-switch two-layer fat-tree
// maps in well under ten seconds and the resulting map survives a
// write/read/write cycle byte-identically.
package mapper_test

import (
	"bytes"
	"testing"
	"time"

	"sanmap/internal/mapper"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

func TestMapFatTree1k(t *testing.T) {
	net := topology.MustFatTree2(topology.FatTree2Spec{LeafSwitches: 960, HostsPerLeaf: 1}, nil)
	if s := net.NumSwitches(); s < 1000 {
		t.Fatalf("fabric has %d switches, want >= 1000", s)
	}
	// On a fat tree the diameter bounds route length far better than the
	// generic depth bound; +2 gives the frontier slack at the edge.
	depth := net.Diameter() + 2

	sn := simnet.NewDefault(net)
	h0 := net.Hosts()[0]
	start := time.Now()
	m, err := mapper.Run(sn.Endpoint(h0), mapper.WithDepth(depth))
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed > 10*time.Second {
		t.Fatalf("mapping took %v, want < 10s", elapsed)
	}
	t.Logf("mapped %d switches / %d hosts in %v (%d probes)",
		m.Network.NumSwitches(), m.Network.NumHosts(), elapsed, m.Stats.Probes.TotalProbes())

	// A fat tree has no switch-bridges, so the core is the whole network:
	// the map must recover every switch and host.
	if got, want := m.Network.NumSwitches(), net.NumSwitches(); got != want {
		t.Fatalf("mapped %d switches, want %d", got, want)
	}
	if got, want := m.Network.NumHosts(), net.NumHosts(); got != want {
		t.Fatalf("mapped %d hosts, want %d", got, want)
	}
	if got, want := m.Network.Diameter(), net.Diameter(); got != want {
		t.Fatalf("mapped diameter %d, want %d", got, want)
	}
	if err := m.Network.Validate(); err != nil {
		t.Fatal(err)
	}

	// Byte-identity through the file format.
	var first bytes.Buffer
	if err := m.Network.Write(&first); err != nil {
		t.Fatal(err)
	}
	back, err := topology.ReadFrom(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := back.Write(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("mapped fabric re-renders differently after a read/write cycle")
	}
}
