package mapper

import (
	"fmt"
	"sort"

	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// This file implements the simplified algorithm of §3.1 exactly as used in
// the paper's proof of Theorem 1: the model graph M stays a tree (one
// vertex per successful probe string), replicates are never merged as
// objects — they are only given equal labels — and the final answer is the
// quotient graph M / L. It is exponential in the depth bound and exists as
// an executable specification against which tests check the production
// algorithm in mapper.go.

// tnode is a vertex of the probe tree M.
type tnode struct {
	id     int
	kind   topology.Kind
	name   string
	route  simnet.Route
	parent *tnode
	// turn is the turn under which this node hangs off its parent (0 for
	// the root host and the root switch).
	turn simnet.Turn
	// children maps the discovering turn to the child vertex; together with
	// the parent edge at relative index 0 this is the neighbors array.
	children map[simnet.Turn]*tnode

	// Union-find over labels, with the Lemma 2 indexing offsets: index i in
	// this node's frame is index i+lshift in lforward's frame.
	lforward *tnode
	lshift   int
}

func lfind(n *tnode) (*tnode, int) {
	if n.lforward == nil {
		return n, 0
	}
	root, s := lfind(n.lforward)
	n.lforward = root
	n.lshift += s
	return root, n.lshift
}

// LabelRun executes the §3.1 algorithm: EXPLORE (full tree to the depth
// bound), MERGE (label propagation to a fixed point), PRUNE, and returns
// the quotient M/L as a network. It sends every probe pair for every tree
// vertex and is therefore only suitable for small networks and tests.
func LabelRun(p simnet.Prober, depth int) (*Map, error) {
	if depth < 1 {
		return nil, fmt.Errorf("mapper: depth must be >= 1, got %d: %w", depth, ErrDepthExceeded)
	}
	start := p.Clock()
	nextID := 0
	newNode := func(kind topology.Kind, name string, route simnet.Route, parent *tnode) *tnode {
		n := &tnode{id: nextID, kind: kind, name: name, route: route, parent: parent,
			children: make(map[simnet.Turn]*tnode)}
		nextID++
		return n
	}

	// INITIALIZATION: root host-vertex and its adjacent switch-vertex.
	h0 := newNode(topology.HostNode, p.LocalHost(), simnet.Route{}, nil)
	root := newNode(topology.SwitchNode, "", simnet.Route{}, h0)
	h0.children[0] = root // host's single port; turn key unused for hosts
	var all []*tnode
	all = append(all, h0, root)

	// EXPLORE: plain BFS over probe strings, no dedup, no elimination.
	frontier := []*tnode{root}
	for len(frontier) > 0 {
		v := frontier[0]
		frontier = frontier[1:]
		if len(v.route) >= depth {
			continue
		}
		for t := simnet.Turn(-simnet.MaxTurn); t <= simnet.MaxTurn; t++ {
			if t == 0 {
				continue
			}
			probeStr := v.route.Extend(t)
			var child *tnode
			if host, ok := p.HostProbe(probeStr); ok {
				child = newNode(topology.HostNode, host, probeStr, v)
			} else if p.SwitchProbe(probeStr) {
				child = newNode(topology.SwitchNode, "", probeStr, v)
				frontier = append(frontier, child)
			} else {
				continue
			}
			child.turn = t
			v.children[t] = child
			all = append(all, child)
		}
	}

	// MERGE: seed with host-name equalities, then propagate until stable.
	// Host vertices have a single port, so same-name hosts union at shift 0.
	byName := make(map[string]*tnode)
	for _, n := range all {
		if n.kind != topology.HostNode {
			continue
		}
		if prev, ok := byName[n.name]; ok {
			unionLabels(prev, n, 0)
		} else {
			byName[n.name] = n
		}
	}
	for {
		changed := false
		// For every class, collect the edges incident to its members keyed
		// by class-frame index; two members reaching differently-labelled
		// far ends through one index is the mergeLabels deduction.
		type farRef struct {
			node *tnode
			idx  int // far-end index in the far node's own frame
		}
		classSlots := make(map[*tnode]map[int]farRef)
		consider := func(u *tnode, iu int, w *tnode, iw int) {
			ru, su := lfind(u)
			slot := iu + su
			slots := classSlots[ru]
			if slots == nil {
				slots = make(map[int]farRef)
				classSlots[ru] = slots
			}
			prev, ok := slots[slot]
			if !ok {
				slots[slot] = farRef{node: w, idx: iw}
				return
			}
			rw1, _ := lfind(prev.node)
			rw2, _ := lfind(w)
			// Both far ends are the one actual port cabled to this slot, so
			// their classes merge, aligning w-frame index iw with
			// prev-frame index prev.idx (unionLabels handles class shifts).
			if rw1 != rw2 {
				unionLabels(prev.node, w, prev.idx-iw)
				changed = true
			}
		}
		for _, n := range all {
			// Parent edge: at n's frame index 0, at parent's frame index =
			// discovering turn (or 0 when the parent is the root host).
			if n.parent != nil {
				pt := turnOf(n)
				consider(n, 0, n.parent, int(pt))
				consider(n.parent, int(pt), n, 0)
			}
		}
		if !changed {
			break
		}
	}

	// Quotient M/L, then PRUNE degree-1 switch classes iteratively.
	type cedge struct {
		a, b   *tnode
		ai, bi int
	}
	edgeSet := make(map[[4]int]cedge) // canonical key: ids+indices
	classID := make(map[*tnode]int)
	for _, n := range all {
		r, _ := lfind(n)
		if _, ok := classID[r]; !ok {
			classID[r] = len(classID)
		}
	}
	addQuotientEdge := func(u *tnode, iu int, w *tnode, iw int) {
		ru, su := lfind(u)
		rw, sw := lfind(w)
		a, ai, b, bi := ru, iu+su, rw, iw+sw
		if classID[a] > classID[b] || (classID[a] == classID[b] && ai > bi) {
			a, ai, b, bi = b, bi, a, ai
		}
		key := [4]int{classID[a], ai, classID[b], bi}
		edgeSet[key] = cedge{a: a, ai: ai, b: b, bi: bi}
	}
	for _, n := range all {
		if n.parent != nil {
			addQuotientEdge(n, 0, n.parent, int(turnOf(n)))
		}
	}

	// Prune: degree per class, delete degree<=1 switch classes repeatedly.
	dead := make(map[*tnode]bool)
	for {
		deg := make(map[*tnode]int)
		for _, e := range edgeSet {
			if dead[e.a] || dead[e.b] {
				continue
			}
			deg[e.a]++
			deg[e.b]++
		}
		deleted := false
		for _, n := range all {
			r, _ := lfind(n)
			if dead[r] || r.kindOfClass() != topology.SwitchNode {
				continue
			}
			if deg[r] <= 1 {
				dead[r] = true
				deleted = true
			}
		}
		if !deleted {
			break
		}
	}

	// Export to a topology.Network, normalising indices per class window.
	// Iterate edges by sorted canonical key so switch naming and wire order
	// do not depend on map iteration order.
	edgeKeys := make([][4]int, 0, len(edgeSet))
	for k := range edgeSet {
		edgeKeys = append(edgeKeys, k)
	}
	sort.Slice(edgeKeys, func(i, j int) bool {
		for x := 0; x < 4; x++ {
			if edgeKeys[i][x] != edgeKeys[j][x] {
				return edgeKeys[i][x] < edgeKeys[j][x]
			}
		}
		return false
	})
	net := &topology.Network{}
	classNode := make(map[*tnode]topology.NodeID)
	classLo := make(map[*tnode]int)
	// Window per class from the surviving quotient edges.
	minIdx := make(map[*tnode]int)
	maxIdx := make(map[*tnode]int)
	note := func(c *tnode, i int) {
		if _, ok := minIdx[c]; !ok {
			minIdx[c], maxIdx[c] = i, i
			return
		}
		if i < minIdx[c] {
			minIdx[c] = i
		}
		if i > maxIdx[c] {
			maxIdx[c] = i
		}
	}
	for _, k := range edgeKeys {
		e := edgeSet[k]
		if dead[e.a] || dead[e.b] {
			continue
		}
		note(e.a, e.ai)
		note(e.b, e.bi)
	}
	sw := 0
	getNode := func(c *tnode) topology.NodeID {
		if id, ok := classNode[c]; ok {
			return id
		}
		var id topology.NodeID
		if c.kindOfClass() == topology.HostNode {
			id = net.AddHost(c.classHostName())
		} else {
			id = net.AddSwitch(fmt.Sprintf("l%d", sw))
			sw++
		}
		classNode[c] = id
		classLo[c] = -minIdx[c]
		return id
	}
	for _, k := range edgeKeys {
		e := edgeSet[k]
		if dead[e.a] || dead[e.b] {
			continue
		}
		a := getNode(e.a)
		b := getNode(e.b)
		pa, pb := 0, 0
		if e.a.kindOfClass() == topology.SwitchNode {
			pa = e.ai + classLo[e.a]
		}
		if e.b.kindOfClass() == topology.SwitchNode {
			pb = e.bi + classLo[e.b]
		}
		if _, err := net.Connect(a, pa, b, pb); err != nil {
			return nil, fmt.Errorf("mapper: label export: %w", err)
		}
	}
	mapperID := net.Lookup(p.LocalHost())
	if mapperID == topology.None {
		return nil, fmt.Errorf("mapper: label algorithm lost the mapping host")
	}
	st := Stats{Elapsed: p.Clock() - start}
	if ns, ok := p.(interface{ Stats() simnet.Stats }); ok {
		st.Probes = ns.Stats()
	}
	return &Map{Network: net, Mapper: mapperID, Stats: st}, nil
}

// unionLabels merges the class of b into the class of a such that b-frame
// index j equals a-frame index j+shift.
func unionLabels(a, b *tnode, shift int) {
	ra, sa := lfind(a)
	rb, sb := lfind(b)
	s := shift + sa - sb
	if ra == rb {
		return
	}
	if rb.id < ra.id {
		ra, rb, s = rb, ra, -s
	}
	rb.lforward = ra
	rb.lshift = s
}

// turnOf returns the turn under which n hangs off its parent (0 when the
// parent is the mapper host).
func turnOf(n *tnode) simnet.Turn {
	if n.parent == nil {
		return 0
	}
	return n.turn
}

// kindOfClass returns the node kind of the class root.
func (n *tnode) kindOfClass() topology.Kind { return n.kind }

// classHostName returns the host name of the class root.
func (n *tnode) classHostName() string { return n.name }
